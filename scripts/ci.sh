#!/bin/sh
# ci.sh — the full verification pipeline. Everything here must pass before
# a change lands: formatting, build, vet, the complete test suite, the race
# detector on the concurrent packages, and a single pass of every benchmark.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== tests =="
go test ./...

echo "== race (concurrent packages) =="
go test -race ./internal/core/ ./internal/httpsim/ ./internal/webserve/ ./internal/experiments/ ./internal/telemetry/ ./internal/accesslog/

echo "== benchmarks (one pass) =="
go test -bench=. -benchmem -benchtime=1x -run='^$' ./...

echo "== metrics endpoint smoke =="
go test -count=1 -run TestMetricsEndpoint ./internal/webserve/

echo "CI OK"
