#!/bin/sh
# ci.sh — the full verification pipeline. Everything here must pass before
# a change lands: formatting, build, vet, the complete test suite, the race
# detector on the concurrent packages, coverage on the planner core, and a
# single pinned-GOMAXPROCS pass of every benchmark followed by a regression
# diff against the previous snapshot.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt (simplify) =="
unformatted=$(gofmt -s -l .)
if [ -n "$unformatted" ]; then
    echo "unformatted files (gofmt -s):" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== build =="
go build ./...

echo "== vet =="
go vet ./...

echo "== repllint (repo invariants) =="
# The custom analyzer suite (internal/lint): determinism, rng-stream
# labels, sorted iteration, float compares, telemetry naming, error
# discipline, span balance. Any finding fails the build; see DESIGN.md §11
# for the rules and the //repllint:allow escape hatch.
go run ./cmd/repllint ./...

echo "== tests =="
go test ./...

echo "== race (all packages) =="
# Module-wide, not a hand-picked list, so a new concurrent package can
# never silently skip the race detector.
go test -race ./...

echo "== chaos / degraded-mode (race) =="
# The robustness surface end to end under the race detector: fault-plan
# determinism, injector middleware, client retry + repository fallback, the
# full-outage acceptance path, cluster kill/restart, and the simulator's
# degraded mode.
go test -race -count=1 -run 'Fault|Generate|Injector|Middleware|Retr|Fall|Backoff|Timeout|Outage|Chaos|Degraded|KillAndRestart|GracefulShutdown|Healthz|WriteError' \
    ./internal/faults/ ./internal/webserve/ ./internal/httpsim/ ./internal/experiments/

echo "== self-healing (race) =="
# The control plane end to end under the race detector: repair-plan
# determinism at several worker counts, the supervisor state machine, the
# heal-under-kill acceptance path, the circuit breaker, and the jitter
# stream isolation.
go test -race -count=1 ./internal/repair/ ./internal/controller/
go test -race -count=1 -run 'Breaker|Jitter|KillSiteRaces|Recovery' \
    ./internal/webserve/ ./internal/experiments/

echo "== coverage (internal/core floor ${CI_CORE_COVER_FLOOR:=90}%) =="
cover_out=$(mktemp)
trap 'rm -f "$cover_out"' EXIT
go test -count=1 -coverprofile="$cover_out" ./internal/core/
core_cover=$(go tool cover -func="$cover_out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
echo "internal/core statement coverage: ${core_cover}%"
if awk -v c="$core_cover" -v floor="$CI_CORE_COVER_FLOOR" 'BEGIN { exit !(c < floor) }'; then
    echo "internal/core coverage ${core_cover}% is below the ${CI_CORE_COVER_FLOOR}% floor" >&2
    exit 1
fi

echo "== benchmarks (GOMAXPROCS pinned) =="
# Pin GOMAXPROCS so ns/op numbers are comparable across runners of different
# widths, and -count=1 so a warm test cache can never skip the pass. The
# results land in a fresh BENCH_<stamp>.json for the diff below. Local runs
# take one pass; the CI workflow sets CI_BENCHTIME=3x to average the noise
# down before the fatal gate.
GOMAXPROCS=4 scripts/bench.sh . "${CI_BENCHTIME:-1x}"

echo "== benchdiff (planner regression gate) =="
# A single -benchtime=1x pass is too noisy to block local work on, so the
# diff only warns here; the CI workflow exports CI_BENCHDIFF_FATAL=1 to make
# a >15 % ns/op regression on the planner benchmarks fail the build.
if [ "${CI_BENCHDIFF_FATAL:-0}" = "1" ]; then
    scripts/benchdiff.sh
else
    scripts/benchdiff.sh || echo "benchdiff: regression reported (non-fatal locally; CI_BENCHDIFF_FATAL=1 enforces)"
fi

echo "== metrics endpoint smoke =="
go test -count=1 -run TestMetricsEndpoint ./internal/webserve/

echo "== trace golden (span determinism pin) =="
# A cold -count=1 re-run of the span-forest determinism pins, outside any
# warm test cache: the same seed must yield a byte-identical httpsim span
# export (TestTraceGolden), deterministic trace IDs, and stable JSONL and
# Chrome trace-event encodings.
go test -count=1 -run 'TestTraceGolden|TestIDGenDeterministicAndNonZero|TestJSONLRoundTripAndDeterminism|TestChromeExportValidAndDeterministic' \
    ./internal/httpsim/ ./internal/trace/

echo "CI OK"
