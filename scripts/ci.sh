#!/bin/sh
# ci.sh — the full verification pipeline, tiered into named stages.
# Everything here must pass before a change lands: formatting, build + vet +
# the repllint analyzer suite, the complete test suite, the race detector on
# every package, the chaos / self-healing / adaptive-loop / integrity /
# overload passes under -race, coverage on the planner core, and a single pinned-GOMAXPROCS pass
# of every benchmark followed by a regression diff against the previous
# snapshot.
#
# CI_STAGES selects a subset, e.g.:
#
#	CI_STAGES="fmt lint test" scripts/ci.sh
#
# Stages: fmt lint lintx test race chaos heal adapt scrub overload cover bench.
# The default runs them all, in order, and prints a wall-clock summary at the
# end (the PR-gate workflow runs each stage as its own named step instead).
set -eu

cd "$(dirname "$0")/.."

CI_STAGES="${CI_STAGES:-fmt lint lintx test race chaos heal adapt scrub overload cover bench}"

# gofmt with -s: any unformatted file fails the stage.
stage_fmt() {
    unformatted=$(gofmt -s -l .)
    if [ -n "$unformatted" ]; then
        echo "unformatted files (gofmt -s):" >&2
        echo "$unformatted" >&2
        return 1
    fi
}

# Build, vet, and the custom analyzer suite (internal/lint): determinism,
# rng-stream labels, sorted iteration, float compares, telemetry naming,
# error discipline, span balance. Any finding fails the build; see
# DESIGN.md §11 for the rules and the //repllint:allow escape hatch.
stage_lint() {
    go build ./...
    go vet ./...
    go run ./cmd/repllint ./...
}

# The interprocedural suite as a strict gate, with the machine-readable
# finding stream archived next to the BENCH_*.json snapshots: the whole-
# module run (determinism taint, goroutine leaks, hotpath-alloc against the
# committed .repllint-hotpath.json baseline) plus -strict-allow, which turns
# any //repllint:allow that suppresses nothing into an error. A failure
# reprints the findings with their full call chains for the log.
stage_lintx() {
    stamp=$(date -u +%Y%m%dT%H%M%SZ)
    out="REPLLINT_${stamp}.json"
    if go run ./cmd/repllint -strict-allow -json ./... >"$out"; then
        echo "repllint strict run clean; archived $out"
    else
        echo "repllint strict run failed (archived $out):" >&2
        go run ./cmd/repllint -strict-allow -chains ./... >&2 || true
        return 1
    fi
}

# The complete test suite, plus two cold -count=1 pins outside any warm
# test cache: the metrics endpoint smoke test and the span-forest
# determinism goldens (same seed ⇒ byte-identical httpsim span export,
# deterministic trace IDs, stable JSONL and Chrome encodings).
stage_test() {
    go test ./...
    go test -count=1 -run TestMetricsEndpoint ./internal/webserve/
    go test -count=1 -run 'TestTraceGolden|TestIDGenDeterministicAndNonZero|TestJSONLRoundTripAndDeterminism|TestChromeExportValidAndDeterministic' \
        ./internal/httpsim/ ./internal/trace/
}

# Module-wide race detector, not a hand-picked list, so a new concurrent
# package can never silently skip it.
stage_race() {
    go test -race ./...
}

# The robustness surface end to end under the race detector: fault-plan
# determinism, injector middleware, client retry + repository fallback, the
# full-outage acceptance path, cluster kill/restart, and the simulator's
# degraded mode.
stage_chaos() {
    go test -race -count=1 -run 'Fault|Generate|Injector|Middleware|Retr|Fall|Backoff|Timeout|Outage|Chaos|Degraded|KillAndRestart|GracefulShutdown|Healthz|WriteError' \
        ./internal/faults/ ./internal/webserve/ ./internal/httpsim/ ./internal/experiments/
}

# The self-healing control plane end to end under the race detector:
# repair-plan determinism at several worker counts, the supervisor state
# machine, the heal-under-kill acceptance path, the circuit breaker, and
# the jitter stream isolation.
stage_heal() {
    go test -race -count=1 ./internal/repair/ ./internal/controller/
    go test -race -count=1 -run 'Breaker|Jitter|KillSiteRaces|Recovery' \
        ./internal/webserve/ ./internal/experiments/
}

# The adaptive planning loop under the race detector: the streaming
# estimator (concurrent tap ingestion, snapshot determinism, the count-min
# sketch), the drift detector's hysteresis, the access-log taps on the live
# server and the simulator, the adapter's delta-only shipping, and the
# flash-crowd study's tracking + bit-reproducibility pins.
stage_adapt() {
    go test -race -count=1 ./internal/estimate/
    go test -race -count=1 -run 'Adapt|AccessTap|ChangeDelta|FlashCrowd' \
        ./internal/controller/ ./internal/webserve/ ./internal/httpsim/ \
        ./internal/repair/ ./internal/experiments/
}

# The end-to-end integrity surface under the race detector: the
# self-verifying payload codec (round-trip, provenance, forged-checksum
# rejection), the gray-failure modes (rot, limping, partial partitions),
# checksum-mismatch-is-retryable on the client, hedged requests, the
# latency-aware supervisor, the scrubber's find/repair/converge loop with
# its chaos soak, and the scrub study's acceptance + reproducibility pins.
stage_scrub() {
    go test -race -count=1 -run 'Payload|Verify|Corrupt|Rot|Limp|Partition|Gray|Hedge|Scrub|Latency' \
        ./internal/webserve/ ./internal/faults/ ./internal/controller/ \
        ./internal/experiments/
}

# The overload-robustness surface end to end under the race detector: the
# admission primitives (CoDel sojourn control, AIMD concurrency limits,
# retry budgets, brownout tiers), the 429 + Retry-After and deadline-
# propagation paths through the live cluster, half-open breaker concurrency,
# hedge-leg shutdown hygiene, the flash-crowd load-spike plans, and the
# metastable-failure study's acceptance + bit-reproducibility pins.
stage_overload() {
    go test -race -count=1 ./internal/admission/
    go test -race -count=1 -run 'Admission|CoDel|AIMD|RetryBudget|RetryAfter|Deadline|Brownout|Overload|LoadSpike|Breaker|HedgeShutdown' \
        ./internal/webserve/ ./internal/faults/ ./internal/controller/ ./internal/experiments/
}

# Planner-core statement coverage against a floor.
stage_cover() {
    : "${CI_CORE_COVER_FLOOR:=90}"
    echo "(internal/core floor ${CI_CORE_COVER_FLOOR}%)"
    cover_out=$(mktemp)
    go test -count=1 -coverprofile="$cover_out" ./internal/core/
    core_cover=$(go tool cover -func="$cover_out" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
    rm -f "$cover_out"
    echo "internal/core statement coverage: ${core_cover}%"
    if awk -v c="$core_cover" -v floor="$CI_CORE_COVER_FLOOR" 'BEGIN { exit !(c < floor) }'; then
        echo "internal/core coverage ${core_cover}% is below the ${CI_CORE_COVER_FLOOR}% floor" >&2
        return 1
    fi
}

# Every benchmark once, GOMAXPROCS pinned so ns/op numbers are comparable
# across runners of different widths and -count=1 so a warm test cache can
# never skip the pass; then the regression diff against the previous
# BENCH_<stamp>.json snapshot. A single -benchtime=1x pass is too noisy to
# block local work on, so the diff only warns here; the CI workflow exports
# CI_BENCHDIFF_FATAL=1 (and CI_BENCHTIME=3x to average the noise down) to
# make a >15 % ns/op regression fail the build.
stage_bench() {
    GOMAXPROCS=4 scripts/bench.sh . "${CI_BENCHTIME:-1x}"
    if [ "${CI_BENCHDIFF_FATAL:-0}" = "1" ]; then
        scripts/benchdiff.sh
    else
        scripts/benchdiff.sh || echo "benchdiff: regression reported (non-fatal locally; CI_BENCHDIFF_FATAL=1 enforces)"
    fi
}

summary=""
for stage in $CI_STAGES; do
    case "$stage" in
    fmt | lint | lintx | test | race | chaos | heal | adapt | scrub | overload | cover | bench) ;;
    *)
        echo "ci.sh: unknown stage \"$stage\" (stages: fmt lint lintx test race chaos heal adapt scrub overload cover bench)" >&2
        exit 2
        ;;
    esac
    echo "== $stage =="
    stage_start=$(date +%s)
    "stage_$stage"
    stage_secs=$(($(date +%s) - stage_start))
    summary="$summary$(printf '  %-6s %4ss' "$stage" "$stage_secs")
"
done

echo "== stage timings =="
printf '%s' "$summary"
echo "CI OK ($CI_STAGES)"
