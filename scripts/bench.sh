#!/bin/sh
# bench.sh — run the benchmark suite with -benchmem and write the results as
# machine-readable JSON to BENCH_<stamp>.json in the repo root, so successive
# runs can be diffed for ns/op and allocs/op regressions (the telemetry layer
# must stay free when disabled — watch allocs/op on the planner/simulator
# benchmarks in particular).
#
# Usage:
#
#	scripts/bench.sh [bench-regexp] [benchtime]
#
# bench-regexp defaults to '.' (everything); benchtime to 1x (one pass — raise
# to e.g. 2s for stable ns/op numbers).
set -eu

cd "$(dirname "$0")/.."

pattern="${1:-.}"
benchtime="${2:-1x}"
stamp=$(date -u +%Y%m%dT%H%M%SZ)
out="BENCH_${stamp}.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

echo "== go test -count=1 -bench=$pattern -benchmem -benchtime=$benchtime (GOMAXPROCS=${GOMAXPROCS:-unset}) =="
go test -count=1 -bench="$pattern" -benchmem -benchtime="$benchtime" -run='^$' ./... | tee "$raw"

# Turn the standard benchmark lines
#   BenchmarkName-8  10  12345 ns/op  678 B/op  9 allocs/op
# (interleaved with "pkg: ..." headers) into a JSON document.
awk -v stamp="$stamp" -v goversion="$(go version)" -v benchtime="$benchtime" '
BEGIN {
    printf "{\n  \"stamp\": \"%s\",\n  \"go\": \"%s\",\n  \"benchtime\": \"%s\",\n  \"benchmarks\": [", stamp, goversion, benchtime
    n = 0
}
$1 == "pkg:" { pkg = $2 }
$1 ~ /^Benchmark/ && $4 == "ns/op" {
    name = $1
    sub(/-[0-9]+$/, "", name)
    bytes = "null"; allocs = "null"
    for (i = 4; i <= NF; i++) {
        if ($i == "B/op")      bytes  = $(i - 1)
        if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (n++) printf ","
    printf "\n    {\"package\": \"%s\", \"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", pkg, name, $2, $3, bytes, allocs
}
END { printf "\n  ]\n}\n" }
' "$raw" > "$out"

count=$(grep -c '"name"' "$out" || true)
echo ""
echo "wrote $count benchmark results to $out"
