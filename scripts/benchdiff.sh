#!/bin/sh
# benchdiff.sh — compare the newest two BENCH_*.json snapshots (as written
# by scripts/bench.sh) with cmd/benchdiff and fail on a gated planner
# benchmark regression. With fewer than two snapshots there is nothing to
# compare: print a note and exit 0, so fresh checkouts pass trivially.
#
# Usage:
#
#	scripts/benchdiff.sh [benchdiff flags...]
#
# Extra arguments are passed through to cmd/benchdiff (e.g. -threshold 10,
# -filter 'Plan'). Exit status is benchdiff's: 0 ok, 1 regression.
set -eu

cd "$(dirname "$0")/.."

# Newest two by the UTC stamp embedded in the name (lexicographic ==
# chronological for BENCH_<ISO-stamp>.json).
files=$(ls BENCH_*.json 2>/dev/null | sort | tail -2)
count=$(printf '%s\n' "$files" | grep -c . || true)
if [ "$count" -lt 2 ]; then
    echo "benchdiff: fewer than two BENCH_*.json snapshots — nothing to compare"
    exit 0
fi
old=$(printf '%s\n' "$files" | head -1)
new=$(printf '%s\n' "$files" | tail -1)

echo "benchdiff: $old -> $new"
exec go run ./cmd/benchdiff "$@" "$old" "$new"
