package repro

import (
	"strings"
	"testing"
)

// TestFacadeEndToEnd exercises the documented public-API flow: generate →
// estimates → env → plan → simulate → compare against baselines.
func TestFacadeEndToEnd(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 42)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(42))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	placement, result, err := Plan(env, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !result.Feasible {
		t.Fatalf("plan infeasible: %v", result.Report.Violations())
	}

	cfg := DefaultSimConfig(w)
	cfg.RequestsPerSite = 200
	ours, err := Simulate(w, est, NewStaticPolicy("Proposed", placement), cfg, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Simulate(w, est, NewRemotePolicy(w), cfg, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	local, err := Simulate(w, est, NewLocalPolicy(w), cfg, NewStream(7))
	if err != nil {
		t.Fatal(err)
	}
	if ours.CompositeMean() <= 0 {
		t.Fatal("non-positive response time")
	}
	if ours.CompositeMean() > remote.CompositeMean() {
		t.Errorf("proposed (%.1fs) worse than Remote (%.1fs)", ours.CompositeMean(), remote.CompositeMean())
	}
	if ours.CompositeMean() > local.CompositeMean()*1.05 {
		t.Errorf("proposed (%.1fs) clearly worse than Local (%.1fs)", ours.CompositeMean(), local.CompositeMean())
	}
}

func TestFacadeLRUPolicy(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 43)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(43))
	if err != nil {
		t.Fatal(err)
	}
	lru, err := NewLRUPolicy(w, FullBudgets(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(w)
	cfg.RequestsPerSite = 150
	cfg.Warmup = true
	res, err := Simulate(w, est, lru, cfg, NewStream(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "LRU" || res.PageRT.N() == 0 {
		t.Error("LRU simulation incomplete")
	}
}

func TestFacadeExperiment(t *testing.T) {
	opts := QuickExperiment()
	opts.Runs = 1
	opts.RequestsPerSite = 80
	fig, err := Figure2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 1 || len(fig.Series[0].X) == 0 {
		t.Error("figure empty")
	}
	sum, err := Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Pages == 0 {
		t.Error("empty workload summary")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 44)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(44))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	r := Evaluate(env, AllLocal(w))
	if !r.Feasible() {
		t.Errorf("all-local under full budgets infeasible: %v", r.Violations())
	}
	if Evaluate(env, AllRemote(w)).D <= r.D {
		t.Error("all-remote should cost more than all-local here")
	}
	if InfiniteCapacity() <= 1e18 {
		t.Error("InfiniteCapacity not infinite")
	}
}

func TestFacadeTraceRoundTrip(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 45)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(45))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSimConfig(w)
	cfg.RequestsPerSite = 60
	tr, err := RecordTrace(w, est, cfg, NewStream(3))
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReplayTrace(w, tr, NewLocalPolicy(w))
	if err != nil {
		t.Fatal(err)
	}
	if res.PageRT.N() != int64(60*w.NumSites()) {
		t.Errorf("replayed %d views", res.PageRT.N())
	}
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTrace(w, path); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeDriftAndThreshold(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 46)
	d, err := DriftWorkload(w, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != w.NumPages() {
		t.Error("drift changed shape")
	}
	pol, err := NewThresholdPolicy(w, FullBudgets(w), 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() == "" {
		t.Error("unnamed policy")
	}
}

func TestFacadePlacementPersistence(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 47)
	p := AllLocal(w)
	path := t.TempDir() + "/p.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacement(w, path)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(p) {
		t.Error("persistence round trip lost state")
	}
}

func TestFacadeExperimentWrappers(t *testing.T) {
	opts := QuickExperiment()
	opts.Runs = 1
	opts.RequestsPerSite = 50

	if _, err := Figure1(opts); err != nil {
		t.Errorf("Figure1: %v", err)
	}
	if _, err := Figure3(opts); err != nil {
		t.Errorf("Figure3: %v", err)
	}
	if _, err := StorageEquivalence(opts); err != nil {
		t.Errorf("StorageEquivalence: %v", err)
	}
	if _, err := Ablations(opts); err != nil {
		t.Errorf("Ablations: %v", err)
	}
	if _, err := RedirectStudy(opts); err != nil {
		t.Errorf("RedirectStudy: %v", err)
	}
	if _, err := Sensitivity(opts); err != nil {
		t.Errorf("Sensitivity: %v", err)
	}
	if _, err := ThresholdStudy(opts); err != nil {
		t.Errorf("ThresholdStudy: %v", err)
	}
	if _, err := QueueingStudy(opts); err != nil {
		t.Errorf("QueueingStudy: %v", err)
	}
	if _, err := WeightsStudy(opts); err != nil {
		t.Errorf("WeightsStudy: %v", err)
	}
	if _, err := DriftFigure(opts); err != nil {
		t.Errorf("DriftFigure: %v", err)
	}
	p := PaperExperiment()
	if p.Runs != 20 || p.Workload.Sites != 10 {
		t.Error("PaperExperiment defaults wrong")
	}
}

func TestFacadeExplainAndPerturb(t *testing.T) {
	w := MustGenerateWorkload(SmallWorkloadConfig(), 48)
	est, err := DrawEstimates(DefaultNetConfig(), w.NumSites(), NewStream(48))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := Plan(env, PlanOptions{Workers: 1, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ExplainPage(env, p, 0, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "chains:") {
		t.Error("explanation incomplete")
	}
	if id := NoPerturbConfig(); len(id.LocalRate) == 0 {
		t.Error("NoPerturbConfig empty")
	}
	if def := DefaultPerturbConfig(); len(def.LocalRate) != 3 {
		t.Error("DefaultPerturbConfig shape wrong")
	}
}
