// Package repro is the public API of the reproduction of Loukopoulos &
// Ahmad, "Replicating the Contents of a WWW Multimedia Repository to
// Minimize Download Time" (IPPS 2000).
//
// The library models a company with one central multimedia repository and s
// local web sites. Each page's multimedia objects are split between a local
// download chain and a repository download chain fetched in parallel; the
// planner (the paper's contribution) chooses the split and the replica set
// per site to minimize the weighted response-time objective under storage
// and processing-capacity constraints, and a simulator measures the
// resulting response times under realistic deviations from the planner's
// network estimates.
//
// Typical use:
//
//	w := repro.MustGenerateWorkload(repro.DefaultWorkloadConfig(), 42)
//	est, _ := repro.DrawEstimates(repro.DefaultNetConfig(), w.NumSites(), repro.NewStream(42))
//	env, _ := repro.NewEnv(w, est, repro.FullBudgets(w))
//	placement, result, _ := repro.Plan(env, repro.PlanOptions{})
//	sim, _ := repro.Simulate(w, est, repro.NewStaticPolicy("Proposed", placement),
//		repro.DefaultSimConfig(w), repro.NewStream(7))
//	fmt.Println(sim.CompositeMean())
//
// The experiment harness that regenerates every table and figure of the
// paper's evaluation is exposed through Figure1/Figure2/Figure3/Table1 and
// StorageEquivalence; see EXPERIMENTS.md for the recorded paper-vs-measured
// comparison.
package repro

import (
	"io"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/policies"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Core identifier and value types.
type (
	// ObjectID identifies a multimedia object M_k.
	ObjectID = workload.ObjectID
	// PageID identifies a web page W_j.
	PageID = workload.PageID
	// SiteID identifies a local server S_i.
	SiteID = workload.SiteID
	// ByteSize is a size in bytes.
	ByteSize = units.ByteSize
	// Rate is a transfer rate in bytes/second.
	Rate = units.Rate
	// Seconds is a duration in seconds.
	Seconds = units.Seconds
	// ReqPerSec is an HTTP request rate.
	ReqPerSec = units.ReqPerSec
)

// Byte-size constants.
const (
	Byte = units.Byte
	KB   = units.KB
	MB   = units.MB
	GB   = units.GB
)

// Workload types and generation.
type (
	// Workload is the generated environment: objects, pages, sites.
	Workload = workload.Workload
	// WorkloadConfig holds the Table-1 generator parameters.
	WorkloadConfig = workload.Config
	// WorkloadSummary is the generator audit (realized Table-1 values).
	WorkloadSummary = workload.Summary
)

// DefaultWorkloadConfig returns the paper's Table-1 parameters.
func DefaultWorkloadConfig() WorkloadConfig { return workload.DefaultConfig() }

// SmallWorkloadConfig returns a reduced configuration for quick experiments.
func SmallWorkloadConfig() WorkloadConfig { return workload.SmallConfig() }

// GenerateWorkload builds a workload from a configuration and seed.
func GenerateWorkload(cfg WorkloadConfig, seed uint64) (*Workload, error) {
	return workload.Generate(cfg, seed)
}

// MustGenerateWorkload is GenerateWorkload panicking on error.
func MustGenerateWorkload(cfg WorkloadConfig, seed uint64) *Workload {
	return workload.MustGenerate(cfg, seed)
}

// SummarizeWorkload computes the Table-1 audit of a workload.
func SummarizeWorkload(w *Workload) *WorkloadSummary { return workload.Summarize(w) }

// LoadWorkload reads a workload from a JSON file.
func LoadWorkload(path string) (*Workload, error) { return workload.LoadFile(path) }

// Network estimates and perturbation.
type (
	// NetConfig holds the Table-1 network attribute ranges.
	NetConfig = netsim.Config
	// Estimates is the per-site set of estimated network attributes.
	Estimates = netsim.Estimates
	// PerturbConfig is the §5.1 estimate-vs-actual deviation model.
	PerturbConfig = netsim.PerturbConfig
	// Stream is a deterministic random stream.
	Stream = rng.Stream
)

// DefaultNetConfig returns the Table-1 network parameter ranges.
func DefaultNetConfig() NetConfig { return netsim.DefaultConfig() }

// DefaultPerturbConfig returns the §5.1 perturbation model.
func DefaultPerturbConfig() PerturbConfig { return netsim.DefaultPerturbConfig() }

// NoPerturbConfig returns the identity perturbation (actual == estimate).
func NoPerturbConfig() PerturbConfig { return netsim.NoPerturbConfig() }

// NewStream returns a deterministic random stream.
func NewStream(seed uint64) *Stream { return rng.New(seed) }

// DrawEstimates draws per-site network estimates.
func DrawEstimates(cfg NetConfig, numSites int, s *Stream) (*Estimates, error) {
	return netsim.DrawEstimates(cfg, numSites, s)
}

// Cost model.
type (
	// Env bundles workload, estimates, budgets and objective weights.
	Env = model.Env
	// Budgets holds the Eq. 8-10 constraint right-hand sides.
	Budgets = model.Budgets
	// Placement is an assignment of the X/X' matrices plus replica sets.
	Placement = model.Placement
	// ConstraintReport evaluates a placement against every constraint.
	ConstraintReport = model.Report
)

// NewEnv builds a planning environment.
func NewEnv(w *Workload, est *Estimates, b Budgets) (*Env, error) {
	return model.NewEnv(w, est, b)
}

// FullBudgets returns 100 % storage, configured capacities, unconstrained
// repository.
func FullBudgets(w *Workload) Budgets { return model.FullBudgets(w) }

// InfiniteCapacity is the sentinel for an unconstrained processing capacity.
func InfiniteCapacity() ReqPerSec { return model.Infinite() }

// Evaluate produces a full cost/constraint report for a placement.
func Evaluate(e *Env, p *Placement) *ConstraintReport { return model.Evaluate(e, p) }

// AllLocal returns the placement downloading every object locally.
func AllLocal(w *Workload) *Placement { return model.AllLocal(w) }

// AllRemote returns the placement downloading every object remotely.
func AllRemote(w *Workload) *Placement { return model.AllRemote(w) }

// Planner (the paper's contribution).
type (
	// PlanOptions controls plan execution.
	PlanOptions = core.Options
	// PlanResult reports a planning run.
	PlanResult = core.Result
	// OffloadStats summarizes the off-loading negotiation.
	OffloadStats = core.OffloadStats
)

// Plan runs PARTITION, the constraint restorations and the off-loading
// negotiation, returning the placement and a report.
func Plan(env *Env, opts PlanOptions) (*Placement, *PlanResult, error) {
	return core.Plan(env, opts)
}

// Simulation.
type (
	// SimConfig controls a simulation run.
	SimConfig = httpsim.Config
	// SimResult aggregates simulated response times.
	SimResult = httpsim.Result
	// Policy decides, per page view, which objects are served locally.
	Policy = httpsim.Decider
	// OutageConfig arms the simulator's degraded mode: page views find
	// their local site down with probability 1-Availability and are served
	// entirely by the repository.
	OutageConfig = httpsim.OutageConfig
)

// DefaultSimConfig returns the paper's simulation parameters.
func DefaultSimConfig(w *Workload) SimConfig { return httpsim.DefaultConfig(w) }

// Simulate runs a policy over the workload's request streams.
func Simulate(w *Workload, est *Estimates, pol Policy, cfg SimConfig, s *Stream) (*SimResult, error) {
	return httpsim.Run(w, est, pol, cfg, s)
}

// Policies.
type (
	// StaticPolicy serves requests according to a fixed placement.
	StaticPolicy = policies.Static
	// LRUPolicy is the ideal LRU caching/redirection baseline.
	LRUPolicy = policies.LRU
)

// NewStaticPolicy wraps a placement as a simulation policy.
func NewStaticPolicy(name string, p *Placement) *StaticPolicy {
	return policies.NewStatic(name, p)
}

// NewRemotePolicy returns the "download all from the repository" baseline.
func NewRemotePolicy(w *Workload) *StaticPolicy { return policies.NewRemote(w) }

// NewLocalPolicy returns the "download all from the local servers" baseline.
func NewLocalPolicy(w *Workload) *StaticPolicy { return policies.NewLocal(w) }

// NewLRUPolicy returns the ideal LRU baseline for the given budgets.
func NewLRUPolicy(w *Workload, b Budgets, seed uint64) (*LRUPolicy, error) {
	return policies.NewLRU(w, b, seed)
}

// Experiments (the paper's evaluation).
type (
	// ExperimentOptions configures an experiment.
	ExperimentOptions = experiments.Options
	// Figure is a renderable set of experiment series.
	Figure = stats.Figure
	// EquivalenceResult reports the §5.2 storage-equivalence claim.
	EquivalenceResult = experiments.EquivalenceResult
)

// PaperExperiment returns the full Table-1 experiment configuration.
func PaperExperiment() ExperimentOptions { return experiments.Paper() }

// QuickExperiment returns a reduced experiment configuration.
func QuickExperiment() ExperimentOptions { return experiments.Quick() }

// Figure1 regenerates the paper's Figure 1 (response time vs storage).
func Figure1(opts ExperimentOptions) (*Figure, error) { return experiments.Figure1(opts) }

// Figure2 regenerates Figure 2 (response time vs processing capacity).
func Figure2(opts ExperimentOptions) (*Figure, error) { return experiments.Figure2(opts) }

// Figure3 regenerates Figure 3 (constrained repository capacities).
func Figure3(opts ExperimentOptions) (*Figure, error) { return experiments.Figure3(opts) }

// Table1 regenerates the Table-1 workload audit.
func Table1(opts ExperimentOptions) (*WorkloadSummary, error) { return experiments.Table1(opts) }

// StorageEquivalence measures the §5.2 "same response time with ~65 % of
// the storage" claim.
func StorageEquivalence(opts ExperimentOptions) (*EquivalenceResult, error) {
	return experiments.StorageEquivalence(opts)
}

// AblationResult compares the algorithm with its design-choice ablations.
type AblationResult = experiments.AblationResult

// Ablations measures the planner against its ablations (unsorted
// PARTITION, no re-partitioning) and the naive splits on identical traffic.
func Ablations(opts ExperimentOptions) (*AblationResult, error) {
	return experiments.Ablations(opts)
}

// DriftFigure measures how stale plans age as the hot set rotates — the
// Section-4.1 motivation for periodic re-execution.
func DriftFigure(opts ExperimentOptions) (*Figure, error) {
	return experiments.Drift(opts)
}

// RedirectStudy quantifies the Section-6 argument: server-side URL
// rewriting vs per-access redirection latency.
func RedirectStudy(opts ExperimentOptions) (*Figure, error) {
	return experiments.RedirectStudy(opts)
}

// Sensitivity measures how the proposed policy's advantage survives as
// actual network conditions drift from the planner's estimates (§5.1).
func Sensitivity(opts ExperimentOptions) (*Figure, error) {
	return experiments.Sensitivity(opts)
}

// ThresholdStudy sweeps a threshold-driven dynamic replication baseline
// against the static plan (the paper's other Section-6 critique).
func ThresholdStudy(opts ExperimentOptions) (*Figure, error) {
	return experiments.ThresholdStudy(opts)
}

// QueueingStudy isolates the queueing overhead an Eq. 8-aware plan avoids
// versus a capacity-ignorant plan, under the fluid-queue extension.
func QueueingStudy(opts ExperimentOptions) (*Figure, error) {
	return experiments.QueueingStudy(opts)
}

// PeriodStudy quantifies the re-planning period trade-off (responsiveness
// vs replica churn) under continuously drifting traffic.
func PeriodStudy(opts ExperimentOptions) (*Figure, error) {
	return experiments.PeriodStudy(opts)
}

// WeightsStudy probes the (α1, α2) objective weights' page-vs-optional
// trade-off under tight storage.
func WeightsStudy(opts ExperimentOptions) (*Figure, error) {
	return experiments.WeightsStudy(opts)
}

// DegradedMode sweeps site availability and compares replication policies
// against the repository-only floor (the robustness study behind the live
// cluster's repository fallback).
func DegradedMode(opts ExperimentOptions) (*Figure, error) {
	return experiments.DegradedMode(opts)
}

// Recovery study: the self-healing control plane's scripted-outage
// timeline (MTTD/MTTR accounting plus the D-over-time trajectory).
type (
	// RecoveryResult is the recovery study's output.
	RecoveryResult = experiments.RecoveryResult
	// RecoveryRun is one run's scripted-outage accounting.
	RecoveryRun = experiments.RecoveryRun
)

// Recovery plays a scripted worst-case site outage through the repair
// planner and reports detection and repair times plus the objective's
// trajectory for a self-healing cluster versus a fallback-only client.
func Recovery(opts ExperimentOptions) (*RecoveryResult, error) {
	return experiments.Recovery(opts)
}

// Flash-crowd study: the adaptive planning loop under hot-page rotation
// (§4.1's "breaking news" drift) — static plan vs detector-gated online
// re-planning vs a clairvoyant oracle.
type (
	// FlashCrowdResult is the flash-crowd study's output.
	FlashCrowdResult = experiments.FlashCrowdResult
	// FlashCrowdRun is one run's full episode.
	FlashCrowdRun = experiments.FlashCrowdRun
	// FlashCrowdEpoch is one epoch's accounting within a run.
	FlashCrowdEpoch = experiments.FlashCrowdEpoch
)

// FlashCrowd plays cumulative hot-page rotation against the streaming
// estimator and drift detector, re-planning online from estimated traffic
// and shipping only placement deltas, and reports how closely the online
// planner tracks the oracle while the static plan degrades.
func FlashCrowd(opts ExperimentOptions) (*FlashCrowdResult, error) {
	return experiments.FlashCrowd(opts)
}

// Scrub study: the end-to-end integrity layer under gray failure — replica
// rot, a limping site and a control partition against live clusters, with
// self-verifying payloads, the anti-entropy scrubber and the latency-aware
// supervisor closing the loop.
type (
	// ScrubResult is the integrity soak's output.
	ScrubResult = experiments.ScrubResult
	// ScrubRun is one run's chaos-soak accounting.
	ScrubRun = experiments.ScrubRun
)

// Scrub runs the integrity chaos soak: seeded replica rot, a permanently
// limping site and a control-partitioned site against a live cluster,
// proving zero undetected integrity violations (every corruption caught at
// fetch time or within one scrub cycle) with detection and repair accounted
// per run.
func Scrub(opts ExperimentOptions) (*ScrubResult, error) {
	return experiments.Scrub(opts)
}

// Overload study: admission control, retry budgets and deadline
// propagation against a 10× flash crowd, including the metastable-failure
// demonstration (protections off: goodput stays collapsed after the spike;
// on: recovery within one drain window).
type (
	// OverloadResult is the overload study's output.
	OverloadResult = experiments.OverloadResult
	// OverloadRun is one run: the same arrival ramp, protections off and on.
	OverloadRun = experiments.OverloadRun
	// OverloadPass is one pass's accounting.
	OverloadPass = experiments.OverloadPass
)

// Overload runs the metastable-failure study: a seeded open-loop arrival
// ramp against a single server on a virtual clock, once unprotected (the
// post-spike retry storm keeps effective load above capacity forever) and
// once under the admission stack (bounded queue, CoDel sojourn shedding,
// deadline drops, shared retry budget), bit-reproducible per seed.
func Overload(opts ExperimentOptions) (*OverloadResult, error) {
	return experiments.Overload(opts)
}

// Repair planning: deterministic re-replication plans for a down-set
// (internal/repair), the machinery behind the self-healing supervisor.
type (
	// RepairPlan is a computed repair: the re-planned environment and
	// placement over the survivors plus the delta from the healthy state.
	RepairPlan = repair.Plan
	// RepairDelta summarizes a repair: pages re-homed, replicas copied,
	// and the objective before/after.
	RepairDelta = repair.Delta
	// RepairOptions tunes the repair planner.
	RepairOptions = repair.Options
)

// ComputeRepair plans around the down sites: their pages are re-homed onto
// survivors and the compulsory/optional split re-run under the surviving
// budgets. Deterministic for a fixed (env, placement, down) at any worker
// count.
func ComputeRepair(env *Env, p *Placement, down []SiteID, opts RepairOptions) (*RepairPlan, error) {
	return repair.Compute(env, p, down, opts)
}

// Telemetry: the instrumentation substrate (internal/telemetry).
type (
	// Span is a nestable concurrency-safe phase timer; pass one as
	// PlanOptions.Trace to trace the planner's phases. The nil Span is a
	// valid no-op sink.
	Span = telemetry.Span
	// MetricsRegistry names and owns counters, gauges and latency
	// histograms; pass one as SimConfig.Telemetry for per-request
	// distributions. The nil registry disables instrumentation for free.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a point-in-time, deterministic-order copy of a
	// registry (the /metrics JSON payload).
	MetricsSnapshot = telemetry.Snapshot
)

// NewSpan starts a new root tracing span.
func NewSpan(name string) *Span { return telemetry.NewSpan(name) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// ProgressWriter returns an ExperimentOptions.Progress sink writing one
// line per harness event to w, serialized across concurrent runs.
func ProgressWriter(w io.Writer) func(format string, args ...interface{}) {
	return experiments.ProgressWriter(w)
}

// NewThresholdPolicy returns the threshold-driven dynamic replication
// baseline.
func NewThresholdPolicy(w *Workload, b Budgets, replicateAt, decayEvery int64) (Policy, error) {
	return policies.NewThreshold(w, b, replicateAt, decayEvery)
}

// DriftWorkload returns a copy of the workload with a rotated hot set.
func DriftWorkload(w *Workload, swapFrac float64, seed uint64) (*Workload, error) {
	return workload.Drift(w, swapFrac, seed)
}

// Trace record/replay: a trace pins the traffic and the per-request network
// conditions so different policies (or policy versions) can be measured on
// byte-identical inputs, including across processes.
type Trace = httpsim.Trace

// RecordTrace draws a request trace for the workload.
func RecordTrace(w *Workload, est *Estimates, cfg SimConfig, s *Stream) (*Trace, error) {
	return httpsim.Record(w, est, cfg, s)
}

// ReplayTrace measures a policy over a recorded trace.
func ReplayTrace(w *Workload, tr *Trace, pol Policy) (*SimResult, error) {
	return httpsim.Replay(w, tr, pol)
}

// LoadTrace reads a trace for the workload from a JSON file.
func LoadTrace(w *Workload, path string) (*Trace, error) {
	return httpsim.LoadTraceFile(w, path)
}

// Request tracing (internal/trace): deterministic span forests from the
// simulator (SimConfig.Trace) and the live cluster, the control-plane event
// journal, and the Eq. 5 critical-path analyzer behind cmd/repltrace.
type (
	// RequestSpan is one timed operation in a request's span tree.
	RequestSpan = trace.Span
	// SpanBuffer is a bounded concurrency-safe span sink; arm one via
	// SimConfig.Trace (nil disables tracing for free).
	SpanBuffer = trace.Buffer
	// EventJournal is the bounded control-plane flight recorder.
	EventJournal = trace.Journal
	// JournalEvent is one structured flight-recorder entry.
	JournalEvent = trace.Event
	// JournalTypeCount is one event type's tally.
	JournalTypeCount = trace.TypeCount
	// TraceAnalysis is the per-page Eq. 5 critical-path breakdown of a
	// recorded span forest.
	TraceAnalysis = trace.Analysis
)

// CountJournalEvents tallies journal events by type, descending by count.
func CountJournalEvents(events []JournalEvent) []JournalTypeCount {
	return trace.CountEventTypes(events)
}

// NewSpanBuffer returns a span sink holding at most capacity spans
// (0 = default).
func NewSpanBuffer(capacity int) *SpanBuffer { return trace.NewBuffer(capacity) }

// NewEventJournal returns a flight recorder holding the last capacity
// events (0 = default).
func NewEventJournal(capacity int) *EventJournal { return trace.NewJournal(capacity) }

// AnalyzeSpans reduces a span forest to its Eq. 5 critical paths.
func AnalyzeSpans(spans []RequestSpan) *TraceAnalysis { return trace.Analyze(spans) }

// LoadSpans reads a JSONL span file (from replsim -spans or replserve -trace).
func LoadSpans(path string) ([]RequestSpan, error) { return trace.LoadJSONL(path) }

// SaveSpans writes spans as JSONL, the repo's canonical trace form.
func SaveSpans(path string, spans []RequestSpan) error { return trace.SaveJSONL(path, spans) }

// SaveChromeTrace writes spans as Chrome trace-event JSON (Perfetto-loadable).
func SaveChromeTrace(path string, spans []RequestSpan) error { return trace.SaveChrome(path, spans) }

// CriticalPathResult is the observed-vs-predicted-D study's output.
type CriticalPathResult = experiments.CriticalPathResult

// CriticalPathStudy simulates the proposed policy with tracing armed and
// compares every page's observed Eq. 5 critical path against the planner's
// prediction, flagging the pages the §5.1 deviations hurt most.
func CriticalPathStudy(opts ExperimentOptions) (*CriticalPathResult, error) {
	return experiments.CriticalPath(opts)
}

// LoadPlacement reads a placement for the workload from a JSON file.
func LoadPlacement(w *Workload, path string) (*Placement, error) {
	return model.LoadPlacementFile(w, path)
}

// PlacementDiff reports the migration between two placements.
type PlacementDiff = model.DiffReport

// DiffPlacements computes what applying placement b after placement a
// costs: replicas copied in, replicas deleted, reference marks flipped.
func DiffPlacements(a, b *Placement) (*PlacementDiff, error) {
	return model.Diff(a, b)
}

// ExplainPage writes the decision rationale for one page under a placement:
// chain times, the binding chain, and each compulsory object's side, size
// and single-flip ΔD — the operator's answer to "why is this object
// remote?".
func ExplainPage(env *Env, p *Placement, j PageID, w io.Writer) error {
	pl := core.NewPlanner(env)
	// Rebuild the planner's incremental state from the given placement.
	if err := pl.AdoptPlacement(p); err != nil {
		return err
	}
	return pl.Explain(j).Write(w)
}
