package rng

import (
	"fmt"
	"sort"
)

// HotCold models the paper's skewed page popularity: a "hot" fraction of the
// population receives a "hot" share of the traffic (Table 1: 10 % of pages
// account for 60 % of requests), uniform within each class.
type HotCold struct {
	n        int // population size
	hotCount int // number of hot members (the first hotCount indices)
	hotShare float64
}

// NewHotCold builds a hot/cold selector over a population of n items where
// hotFrac of them (at least one, when n > 0) draw hotShare of the traffic.
// The hot items are indices [0, hotCount); callers who need a random hot set
// should permute their population first.
func NewHotCold(n int, hotFrac, hotShare float64) (*HotCold, error) {
	if n <= 0 {
		return nil, fmt.Errorf("rng: HotCold population must be positive, got %d", n)
	}
	if hotFrac < 0 || hotFrac > 1 || hotShare < 0 || hotShare > 1 {
		return nil, fmt.Errorf("rng: HotCold fractions must be in [0,1], got frac=%v share=%v", hotFrac, hotShare)
	}
	hot := int(float64(n)*hotFrac + 0.5)
	if hot == 0 && hotFrac > 0 {
		hot = 1
	}
	if hot > n {
		hot = n
	}
	if hot == n || hot == 0 {
		// Degenerate: everything is one class; fall back to uniform.
		return &HotCold{n: n, hotCount: n, hotShare: 1}, nil
	}
	return &HotCold{n: n, hotCount: hot, hotShare: hotShare}, nil
}

// Draw returns a random index in [0, n) following the hot/cold mixture.
func (h *HotCold) Draw(s *Stream) int {
	if h.hotCount == h.n {
		return s.IntN(h.n)
	}
	if s.Bool(h.hotShare) {
		return s.IntN(h.hotCount)
	}
	return h.hotCount + s.IntN(h.n-h.hotCount)
}

// Weight returns the probability mass of index i under the mixture.
func (h *HotCold) Weight(i int) float64 {
	if i < 0 || i >= h.n {
		return 0
	}
	if h.hotCount == h.n {
		return 1 / float64(h.n)
	}
	if i < h.hotCount {
		return h.hotShare / float64(h.hotCount)
	}
	return (1 - h.hotShare) / float64(h.n-h.hotCount)
}

// N returns the population size.
func (h *HotCold) N() int { return h.n }

// HotCount returns how many leading indices are hot.
func (h *HotCold) HotCount() int { return h.hotCount }

// SizeClass describes one row of the paper's size tables: a fraction of the
// population whose sizes are uniform in [Lo, Hi].
type SizeClass struct {
	Frac   float64
	Lo, Hi int64 // bytes, inclusive range
}

// ClassedSampler draws sizes from a mixture of uniform ranges, e.g. Table 1's
// "30 % small 40K-300K, 60 % medium 300K-800K, 10 % large 800K-4M".
type ClassedSampler struct {
	classes []SizeClass
	cum     []float64
}

// NewClassedSampler validates the classes and builds a sampler. Fractions
// must be positive and sum to 1 within 1e-9.
func NewClassedSampler(classes []SizeClass) (*ClassedSampler, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("rng: ClassedSampler needs at least one class")
	}
	sum := 0.0
	cum := make([]float64, len(classes))
	for i, c := range classes {
		if c.Frac <= 0 {
			return nil, fmt.Errorf("rng: class %d has non-positive fraction %v", i, c.Frac)
		}
		if c.Lo <= 0 || c.Hi < c.Lo {
			return nil, fmt.Errorf("rng: class %d has invalid range [%d,%d]", i, c.Lo, c.Hi)
		}
		sum += c.Frac
		cum[i] = sum
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return nil, fmt.Errorf("rng: class fractions sum to %v, want 1", sum)
	}
	cum[len(cum)-1] = 1 // absorb rounding
	return &ClassedSampler{classes: classes, cum: cum}, nil
}

// Draw samples a size in bytes.
func (c *ClassedSampler) Draw(s *Stream) int64 {
	u := s.Float64()
	i := sort.SearchFloat64s(c.cum, u)
	if i >= len(c.classes) {
		i = len(c.classes) - 1
	}
	cl := c.classes[i]
	if cl.Hi == cl.Lo {
		return cl.Lo
	}
	return cl.Lo + int64(s.Float64()*float64(cl.Hi-cl.Lo+1))
}

// Mean returns the expected size of a draw in bytes.
func (c *ClassedSampler) Mean() float64 {
	m := 0.0
	for _, cl := range c.classes {
		m += cl.Frac * float64(cl.Lo+cl.Hi) / 2
	}
	return m
}
