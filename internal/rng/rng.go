// Package rng provides the deterministic random-number plumbing used by the
// workload generator and the simulator. Every experiment in the paper is an
// average over independent runs, and every run touches many logical streams
// (one per site, one per request source, one per perturbation kind); to keep
// runs reproducible and streams independent we derive sub-seeds with a
// SplitMix64 mix instead of sharing one *rand.Rand.
package rng

import (
	"math/rand"
)

// Stream is a deterministic random stream. It wraps math/rand with the
// distribution helpers the model needs and with cheap hierarchical seeding.
type Stream struct {
	seed uint64
	r    *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream {
	return &Stream{seed: seed, r: rand.New(rand.NewSource(int64(mix(seed))))}
}

// Seed returns the seed the stream was created with.
func (s *Stream) Seed() uint64 { return s.seed }

// Split derives an independent child stream from this stream's seed and a
// label. Splitting is a pure function of (seed, labels...): it does not
// consume state from the parent, so the order in which children are created
// or used cannot perturb sibling streams.
func (s *Stream) Split(labels ...uint64) *Stream {
	seed := s.seed
	for _, l := range labels {
		seed = mix(seed ^ mix(l+0x9e3779b97f4a7c15))
	}
	return New(seed)
}

// mix is the SplitMix64 finalizer: a bijective avalanche over uint64.
func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uint64 returns a uniform 64-bit value. Trace and span identifiers draw
// from dedicated Split-derived streams through this method, so an ID
// sequence is a pure function of (seed, stream label).
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// Uniform returns a uniform value in [lo, hi). It also accepts lo == hi
// (returns lo) so degenerate config ranges behave.
func (s *Stream) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo + (hi-lo)*s.r.Float64()
}

// IntN returns a uniform int in [0, n). n must be positive.
func (s *Stream) IntN(n int) int { return s.r.Intn(n) }

// IntRange returns a uniform int in [lo, hi] inclusive; lo > hi is treated
// as the single value lo.
func (s *Stream) IntRange(lo, hi int) int {
	if hi <= lo {
		return lo
	}
	return lo + s.r.Intn(hi-lo+1)
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle shuffles n elements using the provided swap function.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }

// SampleWithoutReplacement returns k distinct values from [0, n). If k >= n
// it returns all of [0, n) in random order. The result order is random.
func (s *Stream) SampleWithoutReplacement(n, k int) []int {
	if k >= n {
		return s.Perm(n)
	}
	// Partial Fisher-Yates: only the first k slots of the virtual
	// permutation are materialized, via a sparse overlay map.
	overlay := make(map[int]int, k)
	out := make([]int, k)
	get := func(i int) int {
		if v, ok := overlay[i]; ok {
			return v
		}
		return i
	}
	for i := 0; i < k; i++ {
		j := i + s.r.Intn(n-i)
		out[i] = get(j)
		overlay[j] = get(i)
	}
	return out
}
