package rng

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("streams with equal seeds diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds matched on %d/100 draws", same)
	}
}

func TestSplitIsPure(t *testing.T) {
	parent := New(7)
	// Consuming draws from the parent must not change what Split yields.
	before := parent.Split(3).Float64()
	parent.Float64()
	parent.Float64()
	after := parent.Split(3).Float64()
	if before != after {
		t.Error("Split depends on parent's consumed state")
	}
}

func TestSplitChildrenIndependent(t *testing.T) {
	parent := New(7)
	a := parent.Split(1)
	b := parent.Split(2)
	if a.Seed() == b.Seed() {
		t.Error("children with different labels share a seed")
	}
	// Multi-label splits must differ from their prefixes.
	c := parent.Split(1, 2)
	if c.Seed() == a.Seed() || c.Seed() == b.Seed() {
		t.Error("multi-label split collides with single-label splits")
	}
}

func TestUniformBounds(t *testing.T) {
	s := New(11)
	for i := 0; i < 1000; i++ {
		v := s.Uniform(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("Uniform out of range: %v", v)
		}
	}
	if got := s.Uniform(5, 5); got != 5 {
		t.Errorf("degenerate Uniform = %v, want 5", got)
	}
	if got := s.Uniform(5, 4); got != 5 {
		t.Errorf("inverted Uniform = %v, want lo", got)
	}
}

func TestIntRange(t *testing.T) {
	s := New(13)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := s.IntRange(5, 45)
		if v < 5 || v > 45 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 30 {
		t.Errorf("IntRange covered only %d/41 values in 1000 draws", len(seen))
	}
	if got := s.IntRange(9, 9); got != 9 {
		t.Errorf("degenerate IntRange = %d", got)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(17)
	for i := 0; i < 50; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(19)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if s.Bool(0.1) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.1) > 0.01 {
		t.Errorf("Bool(0.1) frequency = %v", got)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	s := New(23)
	for trial := 0; trial < 50; trial++ {
		n := s.IntRange(1, 200)
		k := s.IntRange(0, n+10)
		got := s.SampleWithoutReplacement(n, k)
		wantLen := k
		if k > n {
			wantLen = n
		}
		if len(got) != wantLen {
			t.Fatalf("n=%d k=%d: got %d items", n, k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n {
				t.Fatalf("value %d out of [0,%d)", v, n)
			}
			if seen[v] {
				t.Fatalf("duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleWithoutReplacementUniform(t *testing.T) {
	// Each element of [0,10) should appear in a 3-sample about 30 % of runs.
	s := New(29)
	counts := make([]int, 10)
	const runs = 20000
	for i := 0; i < runs; i++ {
		for _, v := range s.SampleWithoutReplacement(10, 3) {
			counts[v]++
		}
	}
	for i, c := range counts {
		p := float64(c) / runs
		if math.Abs(p-0.3) > 0.02 {
			t.Errorf("element %d sampled with frequency %v, want 0.3", i, p)
		}
	}
}

func TestHotColdWeightsSumToOne(t *testing.T) {
	h, err := NewHotCold(100, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < 100; i++ {
		sum += h.Weight(i)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("weights sum to %v", sum)
	}
	if h.Weight(-1) != 0 || h.Weight(100) != 0 {
		t.Error("out-of-range weight should be 0")
	}
}

func TestHotColdTrafficShare(t *testing.T) {
	h, err := NewHotCold(100, 0.1, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if h.HotCount() != 10 {
		t.Fatalf("HotCount = %d, want 10", h.HotCount())
	}
	s := New(31)
	hot := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if h.Draw(s) < 10 {
			hot++
		}
	}
	share := float64(hot) / n
	if math.Abs(share-0.6) > 0.01 {
		t.Errorf("hot share = %v, want 0.6", share)
	}
}

func TestHotColdDegenerate(t *testing.T) {
	if _, err := NewHotCold(0, 0.1, 0.6); err == nil {
		t.Error("expected error for empty population")
	}
	if _, err := NewHotCold(10, -0.1, 0.6); err == nil {
		t.Error("expected error for negative fraction")
	}
	h, err := NewHotCold(10, 1, 0.6) // all hot → uniform
	if err != nil {
		t.Fatal(err)
	}
	if w := h.Weight(3); math.Abs(w-0.1) > 1e-12 {
		t.Errorf("uniform fallback weight = %v", w)
	}
	// A tiny population with a positive hot fraction keeps at least one hot page.
	h2, err := NewHotCold(3, 0.01, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	if h2.HotCount() < 1 {
		t.Error("positive hot fraction must keep at least one hot member")
	}
}

func TestClassedSamplerValidation(t *testing.T) {
	if _, err := NewClassedSampler(nil); err == nil {
		t.Error("empty classes should error")
	}
	if _, err := NewClassedSampler([]SizeClass{{Frac: 0.5, Lo: 1, Hi: 2}}); err == nil {
		t.Error("fractions not summing to 1 should error")
	}
	if _, err := NewClassedSampler([]SizeClass{{Frac: 1, Lo: 5, Hi: 2}}); err == nil {
		t.Error("inverted range should error")
	}
	if _, err := NewClassedSampler([]SizeClass{{Frac: 1, Lo: 0, Hi: 2}}); err == nil {
		t.Error("zero Lo should error")
	}
}

func TestClassedSamplerRangesAndMix(t *testing.T) {
	cs, err := NewClassedSampler([]SizeClass{
		{Frac: 0.3, Lo: 40, Hi: 300},
		{Frac: 0.6, Lo: 300, Hi: 800},
		{Frac: 0.1, Lo: 800, Hi: 4000},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(37)
	var large int
	const n = 50000
	for i := 0; i < n; i++ {
		v := cs.Draw(s)
		if v < 40 || v > 4000 {
			t.Fatalf("draw %d out of any class range", v)
		}
		if v > 800 {
			large++
		}
	}
	frac := float64(large) / n
	if frac < 0.07 || frac > 0.13 {
		t.Errorf("large-class frequency = %v, want ~0.1", frac)
	}
	wantMean := 0.3*170 + 0.6*550 + 0.1*2400
	if math.Abs(cs.Mean()-wantMean) > 1e-9 {
		t.Errorf("Mean = %v, want %v", cs.Mean(), wantMean)
	}
}

func TestClassedSamplerEmpirralMean(t *testing.T) {
	cs, err := NewClassedSampler([]SizeClass{
		{Frac: 0.5, Lo: 100, Hi: 200},
		{Frac: 0.5, Lo: 1000, Hi: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := New(41)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(cs.Draw(s))
	}
	got := sum / n
	want := cs.Mean()
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("empirical mean %v vs analytic %v", got, want)
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		n := 1 + int(seed%50)
		p := s.Perm(n)
		if len(p) != n {
			return false
		}
		q := append([]int(nil), p...)
		sort.Ints(q)
		for i, v := range q {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitStable(t *testing.T) {
	// Split must be a pure function of seed+labels across process runs:
	// pin a few derived seeds so accidental algorithm changes are caught.
	s := New(12345)
	if s.Split(1).Seed() == 0 || s.Split(1).Seed() == s.Seed() {
		t.Error("suspicious child seed")
	}
	if s.Split(1).Seed() != s.Split(1).Seed() {
		t.Error("Split is not deterministic")
	}
}
