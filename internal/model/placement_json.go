package model

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

// placementJSON is the serialized form of a Placement: per page, the
// indices (into the page's Compulsory/Optional lists) marked local; per
// site, the stored object IDs. It carries the workload's shape for
// validation on load.
type placementJSON struct {
	NumPages   int                   `json:"numPages"`
	NumObjects int                   `json:"numObjects"`
	NumSites   int                   `json:"numSites"`
	LocalComp  [][]int               `json:"localComp"`
	LocalOpt   [][]int               `json:"localOpt"`
	Stored     [][]workload.ObjectID `json:"stored"`
}

// Encode writes the placement as JSON.
func (p *Placement) Encode(dst io.Writer) error {
	out := placementJSON{
		NumPages:   p.w.NumPages(),
		NumObjects: p.w.NumObjects(),
		NumSites:   p.w.NumSites(),
		LocalComp:  make([][]int, len(p.xComp)),
		LocalOpt:   make([][]int, len(p.xOpt)),
		Stored:     make([][]workload.ObjectID, len(p.stored)),
	}
	for j, row := range p.xComp {
		for idx, v := range row {
			if v {
				out.LocalComp[j] = append(out.LocalComp[j], idx)
			}
		}
	}
	for j, row := range p.xOpt {
		for idx, v := range row {
			if v {
				out.LocalOpt[j] = append(out.LocalOpt[j], idx)
			}
		}
	}
	for i, set := range p.stored {
		for _, k := range set.Members() {
			out.Stored[i] = append(out.Stored[i], workload.ObjectID(k))
		}
	}
	enc := json.NewEncoder(dst)
	if err := enc.Encode(&out); err != nil {
		return fmt.Errorf("model: encode placement: %w", err)
	}
	return nil
}

// DecodePlacement reads a placement for the given workload, validating both
// shape and the stored-replica invariants.
func DecodePlacement(w *workload.Workload, src io.Reader) (*Placement, error) {
	var in placementJSON
	if err := json.NewDecoder(src).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decode placement: %w", err)
	}
	if in.NumPages != w.NumPages() || in.NumObjects != w.NumObjects() || in.NumSites != w.NumSites() {
		return nil, fmt.Errorf("model: placement shaped (%d pages, %d objects, %d sites) does not match workload (%d, %d, %d)",
			in.NumPages, in.NumObjects, in.NumSites, w.NumPages(), w.NumObjects(), w.NumSites())
	}
	if len(in.LocalComp) != w.NumPages() || len(in.LocalOpt) != w.NumPages() || len(in.Stored) != w.NumSites() {
		return nil, fmt.Errorf("model: placement arrays mis-sized")
	}
	p := NewPlacement(w)
	for i, stored := range in.Stored {
		for _, k := range stored {
			if k < 0 || int(k) >= w.NumObjects() {
				return nil, fmt.Errorf("model: site %d stores out-of-range object %d", i, k)
			}
			p.Store(workload.SiteID(i), k)
		}
	}
	for j, idxs := range in.LocalComp {
		row := p.xComp[j]
		for _, idx := range idxs {
			if idx < 0 || idx >= len(row) {
				return nil, fmt.Errorf("model: page %d compulsory index %d out of range", j, idx)
			}
			row[idx] = true
		}
	}
	for j, idxs := range in.LocalOpt {
		row := p.xOpt[j]
		for _, idx := range idxs {
			if idx < 0 || idx >= len(row) {
				return nil, fmt.Errorf("model: page %d optional index %d out of range", j, idx)
			}
			row[idx] = true
		}
	}
	if err := p.CheckInvariants(); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveFile writes the placement to path.
func (p *Placement) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("model: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := p.Encode(bw); err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("model: %w", err)
	}
	return f.Close()
}

// LoadPlacementFile reads a placement for the workload from path.
func LoadPlacementFile(w *workload.Workload, path string) (*Placement, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("model: %w", err)
	}
	defer f.Close()
	return DecodePlacement(w, bufio.NewReader(f))
}

// Equal reports whether two placements over the same workload have
// identical marks and stores.
func (p *Placement) Equal(o *Placement) bool {
	if p.w != o.w {
		if p.w.NumPages() != o.w.NumPages() || p.w.NumSites() != o.w.NumSites() {
			return false
		}
	}
	for j := range p.xComp {
		if len(p.xComp[j]) != len(o.xComp[j]) || len(p.xOpt[j]) != len(o.xOpt[j]) {
			return false
		}
		for idx := range p.xComp[j] {
			if p.xComp[j][idx] != o.xComp[j][idx] {
				return false
			}
		}
		for idx := range p.xOpt[j] {
			if p.xOpt[j][idx] != o.xOpt[j][idx] {
				return false
			}
		}
	}
	for i := range p.stored {
		if !p.stored[i].Equal(o.stored[i]) {
			return false
		}
	}
	return true
}
