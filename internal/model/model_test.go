package model

import (
	"math"
	"strings"
	"testing"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// tinyEnv builds a hand-checkable environment: one site, one page with two
// compulsory objects (100 KB, 50 KB) and one optional link (20 KB, p=0.03),
// HTML 10 KB, f = 1 req/s, B(S)=10 KB/s, B(R,S)=1 KB/s, Ovhd(S)=1 s,
// Ovhd(R,S)=2 s.
func tinyEnv(t *testing.T) (*Env, *workload.Workload) {
	t.Helper()
	w := &workload.Workload{
		Config: workload.Config{Alpha1: 2, Alpha2: 1},
		Objects: []workload.Object{
			{ID: 0, Size: 100 * units.KB},
			{ID: 1, Size: 50 * units.KB},
			{ID: 2, Size: 20 * units.KB},
		},
		Pages: []workload.Page{{
			ID: 0, Site: 0, HTMLSize: 10 * units.KB, Freq: 1,
			Compulsory: []workload.ObjectID{0, 1},
			Optional:   []workload.OptionalLink{{Object: 2, Prob: 0.03}},
		}},
		Sites: []workload.Site{{
			ID: 0, Pages: []workload.PageID{0},
			Objects:  []workload.ObjectID{0, 1, 2},
			Capacity: 150,
		}},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	est := &netsim.Estimates{Sites: []netsim.SiteEstimate{{
		LocalRate: 10 * units.KBPerSec,
		RepoRate:  1 * units.KBPerSec,
		LocalOvhd: 1,
		RepoOvhd:  2,
	}}}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	return env, w
}

func almost(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestPageTimesAllRemote(t *testing.T) {
	env, w := tinyEnv(t)
	p := AllRemote(w)
	almost(t, "local", float64(PageLocalTime(env, p, 0)), 2)     // 1 + 10/10
	almost(t, "remote", float64(PageRemoteTime(env, p, 0)), 152) // 2 + 150/1
	almost(t, "page", float64(PageTime(env, p, 0)), 152)
	almost(t, "optional", float64(PageOptionalTime(env, p, 0)), 0.03*(2+20))
}

func TestPageTimesAllLocal(t *testing.T) {
	env, w := tinyEnv(t)
	p := AllLocal(w)
	almost(t, "local", float64(PageLocalTime(env, p, 0)), 17) // 1 + 160/10
	almost(t, "remote", float64(PageRemoteTime(env, p, 0)), 0)
	almost(t, "page", float64(PageTime(env, p, 0)), 17)
	almost(t, "optional", float64(PageOptionalTime(env, p, 0)), 0.03*(1+2))
}

func TestPageTimesMixed(t *testing.T) {
	env, w := tinyEnv(t)
	p := NewPlacement(w)
	p.Store(0, 0)
	p.SetCompLocal(0, 0, true)                                  // 100 KB local, 50 KB remote
	almost(t, "local", float64(PageLocalTime(env, p, 0)), 12)   // 1 + 110/10
	almost(t, "remote", float64(PageRemoteTime(env, p, 0)), 52) // 2 + 50/1
	almost(t, "page", float64(PageTime(env, p, 0)), 52)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestObjectives(t *testing.T) {
	env, w := tinyEnv(t)
	p := AllLocal(w)
	almost(t, "D1", D1(env, p), 17)
	almost(t, "D2", D2(env, p), 0.09)
	almost(t, "D", D(env, p), 2*17+0.09)

	r := AllRemote(w)
	if D(env, r) <= D(env, p) {
		t.Error("with a slow repository, all-remote should have higher D than all-local")
	}
}

func TestLoads(t *testing.T) {
	env, w := tinyEnv(t)
	local := AllLocal(w)
	almost(t, "site load (local)", float64(SiteLoad(env, local, 0)), 1+2+0.03)
	almost(t, "repo load (local)", float64(RepoLoad(env, local)), 0)

	remote := AllRemote(w)
	almost(t, "site load (remote)", float64(SiteLoad(env, remote, 0)), 1)
	almost(t, "repo load (remote)", float64(RepoLoad(env, remote)), 2+0.03)
	almost(t, "site repo load", float64(SiteRepoLoad(env, remote, 0)), 2.03)
}

func TestStorageAccounting(t *testing.T) {
	_, w := tinyEnv(t)
	p := NewPlacement(w)
	if p.StorageUsed(0) != 10*units.KB { // HTML only
		t.Errorf("empty placement storage = %v", p.StorageUsed(0))
	}
	p.Store(0, 0)
	p.Store(0, 0) // idempotent
	if p.StoredMOBytes(0) != 100*units.KB {
		t.Errorf("stored bytes = %v", p.StoredMOBytes(0))
	}
	p.Unstore(0, 0)
	p.Unstore(0, 0)
	if p.StoredMOBytes(0) != 0 {
		t.Errorf("stored bytes after unstore = %v", p.StoredMOBytes(0))
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckInvariantsCatchesDanglingMark(t *testing.T) {
	_, w := tinyEnv(t)
	p := NewPlacement(w)
	p.SetCompLocal(0, 0, true) // marked local but not stored
	if err := p.CheckInvariants(); err == nil {
		t.Error("dangling compulsory mark not caught")
	}
	p = NewPlacement(w)
	p.SetOptLocal(0, 0, true)
	if err := p.CheckInvariants(); err == nil {
		t.Error("dangling optional mark not caught")
	}
}

func TestClone(t *testing.T) {
	_, w := tinyEnv(t)
	p := AllLocal(w)
	c := p.Clone()
	c.SetCompLocal(0, 0, false)
	c.Unstore(0, 0)
	if !p.CompLocal(0, 0) || !p.IsStored(0, 0) {
		t.Error("mutating clone affected original")
	}
	if err := p.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := c.CheckInvariants(); err == nil {
		// c unstored object 0 but page 0 idx 1 still local & stored — fine;
		// idx 0 was unmarked first, so invariants must hold.
		_ = err
	} else {
		t.Errorf("clone invariants: %v", err)
	}
}

func TestBudgetsScale(t *testing.T) {
	_, w := tinyEnv(t)
	full := FullBudgets(w)
	// full storage = 10K HTML + 170K MOs.
	if full.Storage[0] != 180*units.KB {
		t.Errorf("full storage = %v", full.Storage[0])
	}
	half := full.Scale(w, 0.5, 0.4)
	if half.Storage[0] != 10*units.KB+85*units.KB {
		t.Errorf("scaled storage = %v", half.Storage[0])
	}
	almost(t, "scaled capacity", float64(half.SiteCapacity[0]), 60)
	zero := full.Scale(w, 0, 1)
	if zero.Storage[0] != 10*units.KB {
		t.Errorf("0%% storage should keep HTML: %v", zero.Storage[0])
	}
}

func TestBudgetsValidate(t *testing.T) {
	_, w := tinyEnv(t)
	b := FullBudgets(w)
	if err := b.Validate(w); err != nil {
		t.Fatal(err)
	}
	b.Storage = nil
	if err := b.Validate(w); err == nil {
		t.Error("mis-sized budgets accepted")
	}
	b2 := FullBudgets(w)
	b2.Storage[0] = -1
	if err := b2.Validate(w); err == nil {
		t.Error("negative storage accepted")
	}
	b3 := FullBudgets(w)
	b3.RepoCapacity = -5
	if err := b3.Validate(w); err == nil {
		t.Error("negative repo capacity accepted")
	}
}

func TestNewEnvValidation(t *testing.T) {
	_, w := tinyEnv(t)
	est := &netsim.Estimates{Sites: make([]netsim.SiteEstimate, 2)}
	if _, err := NewEnv(w, est, FullBudgets(w)); err == nil {
		t.Error("estimate/site count mismatch accepted")
	}
}

func TestReport(t *testing.T) {
	env, w := tinyEnv(t)
	p := AllLocal(w)
	r := Evaluate(env, p)
	if !r.Feasible() {
		t.Errorf("full budgets should be feasible: %v", r.Violations())
	}
	if !r.RepoOK() {
		t.Error("infinite repo capacity should be OK")
	}
	var sb strings.Builder
	if err := r.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "objective") || !strings.Contains(sb.String(), "∞") {
		t.Errorf("report rendering:\n%s", sb.String())
	}

	// Tighten storage below usage → violation.
	env.Budgets.Storage[0] = 50 * units.KB
	r2 := Evaluate(env, p)
	if r2.Feasible() {
		t.Error("storage violation not detected")
	}
	if len(r2.Violations()) == 0 {
		t.Error("violations list empty")
	}
	// Tight repo capacity with all-remote → violation.
	env2, w2 := tinyEnv(t)
	env2.Budgets.RepoCapacity = 1
	rr := Evaluate(env2, AllRemote(w2))
	if rr.Feasible() || rr.RepoOK() {
		t.Error("repo violation not detected")
	}
}

func TestEvaluateOnGeneratedWorkload(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 17)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	local, remote := AllLocal(w), AllRemote(w)
	if err := local.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	dLocal, dRemote := D(env, local), D(env, remote)
	if dLocal <= 0 || dRemote <= 0 {
		t.Fatal("objectives must be positive")
	}
	// The repository path is ~5× slower per byte; all-remote must lose badly.
	if dRemote < 2*dLocal {
		t.Errorf("expected all-remote ≫ all-local, got D=%v vs %v", dRemote, dLocal)
	}
	// All-local must fit in full storage budgets.
	r := Evaluate(env, local)
	for _, s := range r.Sites {
		if !s.StorageOK() {
			t.Errorf("site %d: all-local exceeds full storage (%v > %v)", s.Site, s.StorageUsed, s.StorageLimit)
		}
	}
	// Counters agree with the marks.
	for j := range w.Pages {
		if local.LocalCompCount(workload.PageID(j)) != len(w.Pages[j].Compulsory) {
			t.Fatalf("page %d comp count mismatch", j)
		}
		if local.LocalOptCount(workload.PageID(j)) != len(w.Pages[j].Optional) {
			t.Fatalf("page %d opt count mismatch", j)
		}
		if remote.LocalCompCount(workload.PageID(j)) != 0 {
			t.Fatalf("page %d remote comp count nonzero", j)
		}
	}
}

func TestPageWithNoRemoteObjectsPaysNoRepoOverhead(t *testing.T) {
	env, w := tinyEnv(t)
	p := AllLocal(w)
	if PageRemoteTime(env, p, 0) != 0 {
		t.Error("all-local page should pay no repository overhead")
	}
}

// TestLoadConservation: for any placement, a page's local and repository
// per-view request counts must sum to the fixed total 1 + |compulsory| +
// Σ U'_jk — requests are conserved, only their destination moves.
func TestLoadConservation(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 83)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(83))
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(w, est, FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	s := rng.New(83)
	p := NewPlacement(w)
	// Random placement.
	for j := range w.Pages {
		pg := &w.Pages[j]
		for idx, k := range pg.Compulsory {
			if s.Bool(0.5) {
				p.Store(pg.Site, k)
				p.SetCompLocal(workload.PageID(j), idx, true)
			}
		}
		for idx, l := range pg.Optional {
			if s.Bool(0.5) {
				p.Store(pg.Site, l.Object)
				p.SetOptLocal(workload.PageID(j), idx, true)
			}
		}
	}
	for j := range w.Pages {
		pg := &w.Pages[j]
		pid := workload.PageID(j)
		want := 1.0 + float64(len(pg.Compulsory))
		for _, l := range pg.Optional {
			want += l.Prob
		}
		want *= float64(pg.Freq)
		got := float64(PageLocalLoad(env, p, pid)) + float64(PageRepoLoad(env, p, pid))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("page %d: local+repo load %v, want %v", j, got, want)
		}
	}
}
