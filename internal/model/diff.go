package model

import (
	"fmt"
	"io"

	"repro/internal/units"
	"repro/internal/workload"
)

// SiteDiff reports how one site's replica set changes between two
// placements: what a re-plan would have to copy in from the repository and
// what it deletes. The transfer bytes are the operational cost of applying
// a plan refresh (the off-peak work the paper's Section 4.1 schedules).
type SiteDiff struct {
	Site           workload.SiteID
	AddedObjects   int
	AddedBytes     units.ByteSize
	RemovedObjects int
	RemovedBytes   units.ByteSize
	// FlippedLocal / FlippedRemote count (page, object) download marks
	// that changed direction (reference-database updates, no data moved).
	FlippedLocal  int
	FlippedRemote int
}

// DiffReport is the full placement delta.
type DiffReport struct {
	Sites []SiteDiff
}

// Diff computes what applying placement b after placement a costs. Both
// must be over the same workload.
func Diff(a, b *Placement) (*DiffReport, error) {
	if a.w != b.w {
		if a.w.NumPages() != b.w.NumPages() || a.w.NumSites() != b.w.NumSites() || a.w.NumObjects() != b.w.NumObjects() {
			return nil, fmt.Errorf("model: placements over different workloads")
		}
	}
	w := a.w
	rep := &DiffReport{Sites: make([]SiteDiff, w.NumSites())}
	for i := range w.Sites {
		id := workload.SiteID(i)
		d := &rep.Sites[i]
		d.Site = id
		added := b.stored[i].Clone()
		added.DifferenceWith(a.stored[i])
		added.ForEach(func(k int) bool {
			d.AddedObjects++
			d.AddedBytes += w.ObjectSize(workload.ObjectID(k))
			return true
		})
		removed := a.stored[i].Clone()
		removed.DifferenceWith(b.stored[i])
		removed.ForEach(func(k int) bool {
			d.RemovedObjects++
			d.RemovedBytes += w.ObjectSize(workload.ObjectID(k))
			return true
		})
		for _, pid := range w.Sites[i].Pages {
			for idx := range w.Pages[pid].Compulsory {
				av, bv := a.CompLocal(pid, idx), b.CompLocal(pid, idx)
				if av != bv {
					if bv {
						d.FlippedLocal++
					} else {
						d.FlippedRemote++
					}
				}
			}
			for idx := range w.Pages[pid].Optional {
				av, bv := a.OptLocal(pid, idx), b.OptLocal(pid, idx)
				if av != bv {
					if bv {
						d.FlippedLocal++
					} else {
						d.FlippedRemote++
					}
				}
			}
		}
	}
	return rep, nil
}

// Changed reports whether the diff moves anything at all: any replica
// additions or removals, or any flipped download marks. An unchanged
// placement costs zero bytes and zero churn to "apply".
func (r *DiffReport) Changed() bool {
	for _, d := range r.Sites {
		if d.AddedObjects != 0 || d.RemovedObjects != 0 || d.FlippedLocal != 0 || d.FlippedRemote != 0 {
			return true
		}
	}
	return false
}

// TotalAddedBytes returns the data the repository must push to the sites.
func (r *DiffReport) TotalAddedBytes() units.ByteSize {
	var t units.ByteSize
	for _, d := range r.Sites {
		t += d.AddedBytes
	}
	return t
}

// TotalRemovedBytes returns the replica bytes freed.
func (r *DiffReport) TotalRemovedBytes() units.ByteSize {
	var t units.ByteSize
	for _, d := range r.Sites {
		t += d.RemovedBytes
	}
	return t
}

// Write renders the report.
func (r *DiffReport) Write(w io.Writer) error {
	for _, d := range r.Sites {
		if _, err := fmt.Fprintf(w, "site %2d: +%d replicas (%v), -%d replicas (%v), %d marks →local, %d →remote\n",
			d.Site, d.AddedObjects, d.AddedBytes, d.RemovedObjects, d.RemovedBytes,
			d.FlippedLocal, d.FlippedRemote); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "total migration: %v in, %v freed\n", r.TotalAddedBytes(), r.TotalRemovedBytes())
	return err
}
