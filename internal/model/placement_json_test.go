package model

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func TestPlacementJSONRoundTrip(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 71)
	p := AllLocal(w)
	// Unmark a few entries so the round trip covers mixed rows.
	p.SetCompLocal(0, 0, false)
	if len(w.Pages[1].Compulsory) > 1 {
		p.SetCompLocal(1, 1, false)
	}

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlacement(w, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(got) {
		t.Error("round trip lost information")
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPlacementJSONRejectsWrongWorkload(t *testing.T) {
	w1 := workload.MustGenerate(workload.SmallConfig(), 72)
	w2 := workload.MustGenerate(workload.SmallConfig(), 73) // different shape
	p := AllLocal(w1)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if w1.NumPages() != w2.NumPages() {
		if _, err := DecodePlacement(w2, &buf); err == nil {
			t.Error("shape mismatch accepted")
		}
	}
}

func TestPlacementJSONRejectsCorruption(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 74)
	if _, err := DecodePlacement(w, strings.NewReader("{broken")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Dangling local mark: object marked local but not stored.
	p := AllLocal(w)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	// Empty every stored list: all marks dangle.
	s = strings.Replace(s, `"stored":[[`, `"stored":[[999999`, 1)
	if _, err := DecodePlacement(w, strings.NewReader(s)); err == nil {
		t.Error("out-of-range stored object accepted")
	}
}

func TestPlacementSaveLoadFile(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 75)
	p := AllLocal(w)
	path := t.TempDir() + "/placement.json"
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPlacementFile(w, path)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(got) {
		t.Error("file round trip lost information")
	}
	if _, err := LoadPlacementFile(w, t.TempDir()+"/missing.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestPlacementEqual(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 76)
	a, b := AllLocal(w), AllLocal(w)
	if !a.Equal(b) {
		t.Error("identical placements not equal")
	}
	b.SetCompLocal(0, 0, false)
	if a.Equal(b) {
		t.Error("different marks reported equal")
	}
	c := AllLocal(w)
	c.Unstore(0, w.Sites[0].Objects[0])
	// c may violate invariants if the object was marked; Equal only
	// compares raw state, which is what we want here.
	if a.Equal(c) && a.StoredSet(0).Equal(c.StoredSet(0)) {
		t.Error("different stores reported equal")
	}
}

func TestDiff(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 77)
	a := AllRemote(w)
	b := AllLocal(w)
	rep, err := Diff(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalAddedBytes() <= 0 || rep.TotalRemovedBytes() != 0 {
		t.Errorf("remote→local diff: added %v removed %v", rep.TotalAddedBytes(), rep.TotalRemovedBytes())
	}
	// Added bytes = sum of per-site stored MO bytes under all-local.
	var want units.ByteSize
	for i := range w.Sites {
		want += b.StoredMOBytes(workload.SiteID(i))
	}
	if rep.TotalAddedBytes() != want {
		t.Errorf("added bytes %v, want %v", rep.TotalAddedBytes(), want)
	}
	// Every compulsory and optional mark flips to local.
	flips := 0
	for _, d := range rep.Sites {
		flips += d.FlippedLocal
		if d.FlippedRemote != 0 {
			t.Errorf("site %d: unexpected remote flips", d.Site)
		}
	}
	wantFlips := 0
	for j := range w.Pages {
		wantFlips += len(w.Pages[j].Compulsory) + len(w.Pages[j].Optional)
	}
	if flips != wantFlips {
		t.Errorf("flips %d, want %d", flips, wantFlips)
	}

	// Reverse direction swaps added/removed.
	rev, err := Diff(b, a)
	if err != nil {
		t.Fatal(err)
	}
	if rev.TotalRemovedBytes() != rep.TotalAddedBytes() {
		t.Error("reverse diff asymmetric")
	}
	// Identity diff is empty.
	same, err := Diff(b, b)
	if err != nil {
		t.Fatal(err)
	}
	if same.TotalAddedBytes() != 0 || same.TotalRemovedBytes() != 0 {
		t.Error("self-diff not empty")
	}

	var sb strings.Builder
	if err := rep.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "total migration") {
		t.Error("report incomplete")
	}
}

func TestDiffRejectsShapeMismatch(t *testing.T) {
	w1 := workload.MustGenerate(workload.SmallConfig(), 78)
	w2 := workload.MustGenerate(workload.SmallConfig(), 79)
	if w1.NumPages() != w2.NumPages() {
		if _, err := Diff(AllLocal(w1), AllLocal(w2)); err == nil {
			t.Error("shape mismatch accepted")
		}
	}
}
