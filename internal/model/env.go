package model

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Budgets holds the constraint right-hand sides of Eqs. 8-10: per-site
// storage (total bytes, HTML included) and processing capacity, and the
// repository's processing capacity (Infinite when unconstrained).
type Budgets struct {
	Storage      []units.ByteSize  // per site, Eq. 10 RHS
	SiteCapacity []units.ReqPerSec // per site, Eq. 8 RHS
	RepoCapacity units.ReqPerSec   // Eq. 9 RHS; Infinite() for none
}

// Infinite returns the sentinel for an unconstrained capacity.
func Infinite() units.ReqPerSec { return units.ReqPerSec(math.Inf(1)) }

// FullBudgets returns budgets with 100 % storage (everything a site's pages
// reference fits), the workload's configured site capacities, and an
// unconstrained repository.
func FullBudgets(w *workload.Workload) Budgets {
	b := Budgets{
		Storage:      make([]units.ByteSize, w.NumSites()),
		SiteCapacity: make([]units.ReqPerSec, w.NumSites()),
		RepoCapacity: Infinite(),
	}
	for i := range b.Storage {
		b.Storage[i] = w.FullStorageBytes(workload.SiteID(i))
		b.SiteCapacity[i] = w.Sites[i].Capacity
	}
	if w.Config.RepoCapacity > 0 {
		b.RepoCapacity = w.Config.RepoCapacity
	}
	return b
}

// Scale returns a copy with the MO part of every storage budget multiplied
// by storageFrac (HTML always fits — pages live on their server) and every
// site capacity multiplied by capFrac. The repository capacity is preserved.
func (b Budgets) Scale(w *workload.Workload, storageFrac, capFrac float64) Budgets {
	out := Budgets{
		Storage:      make([]units.ByteSize, len(b.Storage)),
		SiteCapacity: make([]units.ReqPerSec, len(b.SiteCapacity)),
		RepoCapacity: b.RepoCapacity,
	}
	for i := range b.Storage {
		html := w.HTMLStorageBytes(workload.SiteID(i))
		mo := b.Storage[i] - html
		if mo < 0 {
			mo = 0
		}
		out.Storage[i] = html + units.ByteSize(float64(mo)*storageFrac)
		out.SiteCapacity[i] = units.ReqPerSec(float64(b.SiteCapacity[i]) * capFrac)
	}
	return out
}

// Validate checks dimensional consistency against a workload.
func (b *Budgets) Validate(w *workload.Workload) error {
	if len(b.Storage) != w.NumSites() || len(b.SiteCapacity) != w.NumSites() {
		return fmt.Errorf("model: budgets sized for %d/%d sites, workload has %d",
			len(b.Storage), len(b.SiteCapacity), w.NumSites())
	}
	for i := range b.Storage {
		if b.Storage[i] < 0 {
			return fmt.Errorf("model: site %d has negative storage budget", i)
		}
		if b.SiteCapacity[i] < 0 {
			return fmt.Errorf("model: site %d has negative capacity", i)
		}
	}
	if b.RepoCapacity < 0 {
		return fmt.Errorf("model: negative repository capacity")
	}
	return nil
}

// Env bundles everything the cost model needs: the workload, the network
// estimates the planner sees, the constraint budgets and the objective
// weights (α1, α2).
type Env struct {
	W       *workload.Workload
	Est     *netsim.Estimates
	Budgets Budgets
	Alpha1  float64
	Alpha2  float64
}

// NewEnv builds an environment, defaulting the weights from the workload
// config and validating shapes.
func NewEnv(w *workload.Workload, est *netsim.Estimates, b Budgets) (*Env, error) {
	if len(est.Sites) != w.NumSites() {
		return nil, fmt.Errorf("model: %d site estimates for %d sites", len(est.Sites), w.NumSites())
	}
	if err := b.Validate(w); err != nil {
		return nil, err
	}
	return &Env{
		W:       w,
		Est:     est,
		Budgets: b,
		Alpha1:  w.Config.Alpha1,
		Alpha2:  w.Config.Alpha2,
	}, nil
}

// SiteEst returns the network estimate of the site hosting page j.
func (e *Env) SiteEst(j workload.PageID) netsim.SiteEstimate {
	return e.Est.Sites[e.W.Pages[j].Site]
}
