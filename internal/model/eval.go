package model

import (
	"fmt"
	"io"
	"math"

	"repro/internal/units"
	"repro/internal/workload"
)

// PageLocalTime evaluates Eq. 3 under the planner's estimates: the time to
// fetch page j's HTML plus its locally-assigned compulsory objects over one
// persistent pipelined connection to the local server.
func PageLocalTime(e *Env, p *Placement, j workload.PageID) units.Seconds {
	pg := &e.W.Pages[j]
	est := e.Est.Sites[pg.Site]
	t := est.LocalOvhd + est.LocalRate.TransferTime(pg.HTMLSize)
	for idx, k := range pg.Compulsory {
		if p.CompLocal(j, idx) {
			t += est.LocalRate.TransferTime(e.W.ObjectSize(k))
		}
	}
	return t
}

// PageRemoteTime evaluates Eq. 4: the time for the repository to deliver the
// compulsory objects not assigned locally. A page whose every compulsory
// object is local still pays no repository overhead: the browser opens the
// second connection only when there is something to fetch.
func PageRemoteTime(e *Env, p *Placement, j workload.PageID) units.Seconds {
	pg := &e.W.Pages[j]
	est := e.Est.Sites[pg.Site]
	var bytes units.ByteSize
	any := false
	for idx, k := range pg.Compulsory {
		if !p.CompLocal(j, idx) {
			bytes += e.W.ObjectSize(k)
			any = true
		}
	}
	if !any {
		return 0
	}
	return est.RepoOvhd + est.RepoRate.TransferTime(bytes)
}

// PageTime evaluates Eq. 5: the max of the two parallel chains.
func PageTime(e *Env, p *Placement, j workload.PageID) units.Seconds {
	return units.MaxSeconds(PageLocalTime(e, p, j), PageRemoteTime(e, p, j))
}

// PageOptionalTime evaluates the Eq. 6 inner sum: the expected optional
// download seconds caused by one view of page j. Each optional request pays
// a fresh connection overhead on whichever side serves it.
func PageOptionalTime(e *Env, p *Placement, j workload.PageID) units.Seconds {
	pg := &e.W.Pages[j]
	est := e.Est.Sites[pg.Site]
	var t units.Seconds
	for idx, l := range pg.Optional {
		var one units.Seconds
		if p.OptLocal(j, idx) {
			one = est.LocalOvhd + est.LocalRate.TransferTime(e.W.ObjectSize(l.Object))
		} else {
			one = est.RepoOvhd + est.RepoRate.TransferTime(e.W.ObjectSize(l.Object))
		}
		t += units.Seconds(l.Prob) * one
	}
	return t
}

// D1 evaluates the first target of Eq. 7: Σ_j f(W_j)·Time(W_j).
func D1(e *Env, p *Placement) float64 {
	sum := 0.0
	for j := range e.W.Pages {
		sum += float64(e.W.Pages[j].Freq) * float64(PageTime(e, p, workload.PageID(j)))
	}
	return sum
}

// D2 evaluates the second target: Σ_j f(W_j)·Time(W_j, M), with Eq. 6's
// per-view expected optional time (DESIGN.md §3.9 notes the dimensional
// reading of the paper's f(W_j, M) factor).
func D2(e *Env, p *Placement) float64 {
	sum := 0.0
	for j := range e.W.Pages {
		sum += float64(e.W.Pages[j].Freq) * float64(PageOptionalTime(e, p, workload.PageID(j)))
	}
	return sum
}

// D evaluates the composite weighted objective α1·D1 + α2·D2.
func D(e *Env, p *Placement) float64 {
	return e.Alpha1*D1(e, p) + e.Alpha2*D2(e, p)
}

// PageLocalLoad returns page j's contribution to Eq. 8's left-hand side:
// f(W_j)·(1 + Σ_k X_jk + Σ_k U'_jk·X'_jk) — the HTML request, the local
// compulsory downloads, and the expected local optional downloads.
func PageLocalLoad(e *Env, p *Placement, j workload.PageID) units.ReqPerSec {
	pg := &e.W.Pages[j]
	perView := 1.0
	for idx := range pg.Compulsory {
		if p.CompLocal(j, idx) {
			perView++
		}
	}
	for idx, l := range pg.Optional {
		if p.OptLocal(j, idx) {
			perView += l.Prob
		}
	}
	return units.ReqPerSec(float64(pg.Freq) * perView)
}

// SiteLoad returns the Eq. 8 left-hand side for site i.
func SiteLoad(e *Env, p *Placement, i workload.SiteID) units.ReqPerSec {
	var sum units.ReqPerSec
	for _, pid := range e.W.Sites[i].Pages {
		sum += PageLocalLoad(e, p, pid)
	}
	return sum
}

// PageRepoLoad returns page j's contribution to Eq. 9's left-hand side:
// f(W_j)·(Σ_k U_jk(1−X_jk) + Σ_k U'_jk(1−X'_jk)).
func PageRepoLoad(e *Env, p *Placement, j workload.PageID) units.ReqPerSec {
	pg := &e.W.Pages[j]
	perView := 0.0
	for idx := range pg.Compulsory {
		if !p.CompLocal(j, idx) {
			perView++
		}
	}
	for idx, l := range pg.Optional {
		if !p.OptLocal(j, idx) {
			perView += l.Prob
		}
	}
	return units.ReqPerSec(float64(pg.Freq) * perView)
}

// SiteRepoLoad returns P(S_i, R): the repository workload imposed by site
// i's pages under the placement.
func SiteRepoLoad(e *Env, p *Placement, i workload.SiteID) units.ReqPerSec {
	var sum units.ReqPerSec
	for _, pid := range e.W.Sites[i].Pages {
		sum += PageRepoLoad(e, p, pid)
	}
	return sum
}

// RepoLoad returns the Eq. 9 left-hand side: Σ_i P(S_i, R).
func RepoLoad(e *Env, p *Placement) units.ReqPerSec {
	var sum units.ReqPerSec
	for i := range e.W.Sites {
		sum += SiteRepoLoad(e, p, workload.SiteID(i))
	}
	return sum
}

// SiteReport is the per-site line of a constraint report.
type SiteReport struct {
	Site         workload.SiteID
	StorageUsed  units.ByteSize
	StorageLimit units.ByteSize
	Load         units.ReqPerSec
	Capacity     units.ReqPerSec
}

// StorageOK reports Eq. 10 for this site.
func (r SiteReport) StorageOK() bool { return r.StorageUsed <= r.StorageLimit }

// LoadOK reports Eq. 8 for this site (with a small epsilon: the restoration
// loops stop exactly at the boundary and float accumulation order differs
// between the incremental planner and this pure recomputation).
func (r SiteReport) LoadOK() bool { return float64(r.Load) <= float64(r.Capacity)*(1+1e-9)+1e-9 }

// Report summarizes a placement against an environment: the objective
// values and every constraint of Eqs. 8-10.
type Report struct {
	D1, D2, D float64
	Sites     []SiteReport
	RepoLoad  units.ReqPerSec
	RepoCap   units.ReqPerSec
}

// Evaluate produces a full report.
func Evaluate(e *Env, p *Placement) *Report {
	r := &Report{
		D1:       D1(e, p),
		D2:       D2(e, p),
		RepoLoad: RepoLoad(e, p),
		RepoCap:  e.Budgets.RepoCapacity,
	}
	r.D = e.Alpha1*r.D1 + e.Alpha2*r.D2
	for i := range e.W.Sites {
		id := workload.SiteID(i)
		r.Sites = append(r.Sites, SiteReport{
			Site:         id,
			StorageUsed:  p.StorageUsed(id),
			StorageLimit: e.Budgets.Storage[i],
			Load:         SiteLoad(e, p, id),
			Capacity:     e.Budgets.SiteCapacity[i],
		})
	}
	return r
}

// RepoOK reports Eq. 9 (with the same epsilon rationale as LoadOK).
func (r *Report) RepoOK() bool {
	if math.IsInf(float64(r.RepoCap), 1) {
		return true
	}
	return float64(r.RepoLoad) <= float64(r.RepoCap)*(1+1e-9)+1e-9
}

// Feasible reports whether every constraint holds.
func (r *Report) Feasible() bool {
	if !r.RepoOK() {
		return false
	}
	for _, s := range r.Sites {
		if !s.StorageOK() || !s.LoadOK() {
			return false
		}
	}
	return true
}

// Violations lists human-readable descriptions of every violated constraint.
func (r *Report) Violations() []string {
	var out []string
	for _, s := range r.Sites {
		if !s.StorageOK() {
			out = append(out, fmt.Sprintf("site %d storage %v over limit %v", s.Site, s.StorageUsed, s.StorageLimit))
		}
		if !s.LoadOK() {
			out = append(out, fmt.Sprintf("site %d load %v over capacity %v", s.Site, s.Load, s.Capacity))
		}
	}
	if !r.RepoOK() {
		out = append(out, fmt.Sprintf("repository load %v over capacity %v", r.RepoLoad, r.RepoCap))
	}
	return out
}

// Write renders the report.
func (r *Report) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "objective: D=%.2f (D1=%.2f, D2=%.2f)\n", r.D, r.D1, r.D2); err != nil {
		return err
	}
	for _, s := range r.Sites {
		mark := "ok"
		if !s.StorageOK() || !s.LoadOK() {
			mark = "VIOLATED"
		}
		if _, err := fmt.Fprintf(w, "site %2d: storage %v/%v  load %v/%v  [%s]\n",
			s.Site, s.StorageUsed, s.StorageLimit, s.Load, s.Capacity, mark); err != nil {
			return err
		}
	}
	repoCap := "∞"
	if !math.IsInf(float64(r.RepoCap), 1) {
		repoCap = r.RepoCap.String()
	}
	_, err := fmt.Fprintf(w, "repository: load %v/%s\n", r.RepoLoad, repoCap)
	return err
}
