// Package model implements the paper's cost model (Section 3): the
// placement matrices X and X', the retrieval-time expressions Eq. 3-6, the
// weighted objective D = α1·D1 + α2·D2 (Eq. 7) and the capacity/storage
// constraints Eq. 8-10. Everything here is *pure evaluation* over a
// placement; the algorithms that search placements live in internal/core
// and internal/policies, and validate their incremental bookkeeping against
// this package in tests.
package model

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/units"
	"repro/internal/workload"
)

// Placement is an assignment of the decision matrices for one workload:
// for page j, XComp(j)[idx] is X_jk for the idx-th compulsory object of the
// page, and XOpt(j)[idx] is the optional part of X' for the idx-th optional
// link. Stored(i) is the set of objects replicated at site i. The core
// invariant — any object marked for local download must be stored at the
// page's site — is checked by CheckInvariants; an object may be stored yet
// not marked local on some page (the paper exploits this during
// restoration).
type Placement struct {
	w *workload.Workload

	xComp [][]bool
	xOpt  [][]bool

	stored      []*bitset.Set
	storedBytes []units.ByteSize // MO bytes only; HTML accounted separately
}

// NewPlacement returns an all-remote placement: X = 0, X' covers nothing,
// no objects stored.
func NewPlacement(w *workload.Workload) *Placement {
	p := &Placement{
		w:           w,
		xComp:       make([][]bool, w.NumPages()),
		xOpt:        make([][]bool, w.NumPages()),
		stored:      make([]*bitset.Set, w.NumSites()),
		storedBytes: make([]units.ByteSize, w.NumSites()),
	}
	for j := range p.xComp {
		p.xComp[j] = make([]bool, len(w.Pages[j].Compulsory))
		p.xOpt[j] = make([]bool, len(w.Pages[j].Optional))
	}
	for i := range p.stored {
		p.stored[i] = bitset.New(w.NumObjects())
	}
	return p
}

// Workload returns the workload the placement is over.
func (p *Placement) Workload() *workload.Workload { return p.w }

// CompLocal reports X_jk for page j's idx-th compulsory object.
func (p *Placement) CompLocal(j workload.PageID, idx int) bool { return p.xComp[j][idx] }

// OptLocal reports the optional part of X'_jk for page j's idx-th link.
func (p *Placement) OptLocal(j workload.PageID, idx int) bool { return p.xOpt[j][idx] }

// SetCompLocal sets X_jk. It does not touch the store: callers mark
// downloads and manage replicas explicitly, then CheckInvariants ties the
// two together.
func (p *Placement) SetCompLocal(j workload.PageID, idx int, local bool) { p.xComp[j][idx] = local }

// SetOptLocal sets the optional part of X'_jk.
func (p *Placement) SetOptLocal(j workload.PageID, idx int, local bool) { p.xOpt[j][idx] = local }

// IsStored reports whether object k is replicated at site i.
func (p *Placement) IsStored(i workload.SiteID, k workload.ObjectID) bool {
	return p.stored[i].Test(int(k))
}

// Store replicates object k at site i (idempotent).
func (p *Placement) Store(i workload.SiteID, k workload.ObjectID) {
	if !p.stored[i].Test(int(k)) {
		p.stored[i].Set(int(k))
		p.storedBytes[i] += p.w.ObjectSize(k)
	}
}

// Unstore removes object k from site i's store (idempotent). The caller is
// responsible for clearing any X/X' marks that referenced the replica.
func (p *Placement) Unstore(i workload.SiteID, k workload.ObjectID) {
	if p.stored[i].Test(int(k)) {
		p.stored[i].Clear(int(k))
		p.storedBytes[i] -= p.w.ObjectSize(k)
	}
}

// StoredSet returns (a reference to) the store bitset of site i. Callers
// must treat it as read-only.
func (p *Placement) StoredSet(i workload.SiteID) *bitset.Set { return p.stored[i] }

// StoredMOBytes returns the MO bytes stored at site i.
func (p *Placement) StoredMOBytes(i workload.SiteID) units.ByteSize { return p.storedBytes[i] }

// StorageUsed returns the Eq. 10 left-hand side for site i: HTML documents
// plus stored MOs.
func (p *Placement) StorageUsed(i workload.SiteID) units.ByteSize {
	return p.w.HTMLStorageBytes(i) + p.storedBytes[i]
}

// Clone returns a deep copy of the placement.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		w:           p.w,
		xComp:       make([][]bool, len(p.xComp)),
		xOpt:        make([][]bool, len(p.xOpt)),
		stored:      make([]*bitset.Set, len(p.stored)),
		storedBytes: append([]units.ByteSize(nil), p.storedBytes...),
	}
	for j := range p.xComp {
		c.xComp[j] = append([]bool(nil), p.xComp[j]...)
		c.xOpt[j] = append([]bool(nil), p.xOpt[j]...)
	}
	for i := range p.stored {
		c.stored[i] = p.stored[i].Clone()
	}
	return c
}

// SiteView returns a copy-on-write view of the placement for site i: the X
// and X' rows of the site's own pages plus its store are deep-copied, while
// every other site's rows are shared. Writes confined to site i — the only
// writes the per-site planning phases perform — leave the original placement
// untouched, so views for distinct sites can be mutated concurrently and
// folded back with AdoptSiteView.
func (p *Placement) SiteView(i workload.SiteID) *Placement {
	c := &Placement{
		w:           p.w,
		xComp:       append([][]bool(nil), p.xComp...),
		xOpt:        append([][]bool(nil), p.xOpt...),
		stored:      append([]*bitset.Set(nil), p.stored...),
		storedBytes: append([]units.ByteSize(nil), p.storedBytes...),
	}
	for _, j := range p.w.Sites[i].Pages {
		c.xComp[j] = append([]bool(nil), p.xComp[j]...)
		c.xOpt[j] = append([]bool(nil), p.xOpt[j]...)
	}
	c.stored[i] = p.stored[i].Clone()
	return c
}

// AdoptSiteView copies site i's state — its pages' X/X' rows, its store and
// the stored-bytes accounting — from a SiteView back into p. Everything
// outside site i is ignored, so serially adopting the views of distinct
// sites applies exactly the mutations each view performed.
func (p *Placement) AdoptSiteView(v *Placement, i workload.SiteID) {
	for _, j := range p.w.Sites[i].Pages {
		copy(p.xComp[j], v.xComp[j])
		copy(p.xOpt[j], v.xOpt[j])
	}
	p.stored[i].CopyFrom(v.stored[i])
	p.storedBytes[i] = v.storedBytes[i]
}

// AllLocal returns a placement where every compulsory and optional object is
// downloaded locally and stored (the paper's "Local policy" starting point).
func AllLocal(w *workload.Workload) *Placement {
	p := NewPlacement(w)
	for j := range w.Pages {
		pg := &w.Pages[j]
		for idx, k := range pg.Compulsory {
			p.xComp[j][idx] = true
			p.Store(pg.Site, k)
		}
		for idx, l := range pg.Optional {
			p.xOpt[j][idx] = true
			p.Store(pg.Site, l.Object)
		}
	}
	return p
}

// AllRemote returns the all-remote placement (the "Remote policy").
func AllRemote(w *workload.Workload) *Placement { return NewPlacement(w) }

// CheckInvariants verifies that every locally-marked download is backed by a
// stored replica and that the cached stored-bytes accounting matches the
// bitsets. Algorithms call this in tests after every mutation batch.
func (p *Placement) CheckInvariants() error {
	for j := range p.w.Pages {
		pg := &p.w.Pages[j]
		for idx, k := range pg.Compulsory {
			if p.xComp[j][idx] && !p.IsStored(pg.Site, k) {
				return fmt.Errorf("model: page %d marks compulsory object %d local but site %d does not store it", j, k, pg.Site)
			}
		}
		for idx, l := range pg.Optional {
			if p.xOpt[j][idx] && !p.IsStored(pg.Site, l.Object) {
				return fmt.Errorf("model: page %d marks optional object %d local but site %d does not store it", j, l.Object, pg.Site)
			}
		}
	}
	for i := range p.stored {
		var sum units.ByteSize
		p.stored[i].ForEach(func(k int) bool {
			sum += p.w.ObjectSize(workload.ObjectID(k))
			return true
		})
		if sum != p.storedBytes[i] {
			return fmt.Errorf("model: site %d stored-bytes cache %d != recomputed %d", i, p.storedBytes[i], sum)
		}
	}
	return nil
}

// LocalCompCount returns how many compulsory objects of page j are local.
func (p *Placement) LocalCompCount(j workload.PageID) int {
	n := 0
	for _, v := range p.xComp[j] {
		if v {
			n++
		}
	}
	return n
}

// LocalOptCount returns how many optional links of page j are local.
func (p *Placement) LocalOptCount(j workload.PageID) int {
	n := 0
	for _, v := range p.xOpt[j] {
		if v {
			n++
		}
	}
	return n
}
