package core

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Options controls plan execution.
type Options struct {
	// Workers bounds the planning concurrency: the page-level PARTITION
	// pool, the per-site restoration pool and the off-loading scoring pool.
	// 0 means GOMAXPROCS, 1 forces sequential execution. Every value
	// produces byte-identical placements and an identical D (see
	// parallel.go for why).
	Workers int
	// Distributed runs the off-loading negotiation over channels with one
	// goroutine per site instead of the sequential reference loop. The
	// resulting placement is identical; the message pattern matches the
	// paper's protocol description.
	Distributed bool
	// MessageLog, when non-nil, receives one line per off-loading protocol
	// message.
	MessageLog io.Writer
	// UnsortedPartition and NoRepartition are ablation switches for the
	// two design choices Section 4.2 calls out: the decreasing-size visit
	// order of PARTITION and the re-partitioning step after storage
	// deallocations. Normal planning leaves both false.
	UnsortedPartition bool
	NoRepartition     bool
	// Refine enables the post-restoration improvement sweep (an extension
	// beyond the paper — see Planner.RefineSite): profitable objects that
	// fit in the space freed by the restoration are stored after all.
	Refine bool
	// Trace, when non-nil, receives one child span per planning phase
	// (PARTITION, storage/processing restoration, off-loading) with
	// per-phase busy time and the dealloc/flip/message counters. The nil
	// default keeps the hot path allocation-free.
	Trace *telemetry.Span
}

// lap accumulates the time since from into sp's busy counter and returns
// the new lap start. With tracing off every span is nil and lap reduces to
// returning its argument — no clock reads, no allocations.
func lap(sp *telemetry.Span, from time.Time) time.Time {
	if sp == nil {
		return from
	}
	now := time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
	sp.AddBusy(now.Sub(from))
	return now
}

// SiteStats records what planning did at one site.
type SiteStats struct {
	Site          workload.SiteID
	LocalComp     int // compulsory downloads assigned to the site
	RemoteComp    int // compulsory downloads left on the repository
	LocalOpt      int // optional links assigned to the site
	StoredObjects int // replicas held after planning
	Deallocs      int // storage-restoration deallocations
	ProcFlips     int // processing-restoration flips
}

// Result reports a complete planning run.
type Result struct {
	Sites    []SiteStats
	Offload  OffloadStats
	D        float64 // final composite objective under the estimates
	D1, D2   float64
	Feasible bool
	Report   *model.Report
	// Trace is the span passed via Options.Trace (nil when untraced),
	// populated with the per-phase timings and counters.
	Trace *telemetry.Span
}

// Plan runs the full pipeline of Section 4 over the environment: PARTITION
// fanned out over a page-level worker pool, storage restoration (Eq. 10)
// and processing restoration (Eq. 8) fanned out per site, followed by the
// repository off-loading negotiation (Eq. 9) with its acceptance decisions
// scored concurrently on per-site scratch planners. The placement and the
// objective are byte-identical for every Workers value. It returns the
// placement and a result report.
func Plan(env *model.Env, opts Options) (*model.Placement, *Result, error) {
	pl := NewPlanner(env)
	pl.UnsortedPartition = opts.UnsortedPartition
	pl.NoRepartition = opts.NoRepartition

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	numSites := env.W.NumSites()

	// Phase spans. The phases interleave across workers, so each phase
	// span's wall clock covers the whole section while its busy time sums
	// the per-worker work; counters are filled from the deterministic
	// per-site stats below. All of this is skipped — zero timing calls,
	// zero allocations — when tracing is off.
	trace := opts.Trace
	var spPart, spStore, spProc, spRefine *telemetry.Span
	if trace != nil {
		spPart = trace.Child("PARTITION")
		spStore = trace.Child("storage-restore")
		spProc = trace.Child("processing-restore")
		if opts.Refine {
			spRefine = trace.Child("refine")
		}
	}

	// Phase 1: PARTITION, parallel over pages with a deterministic per-site
	// reduce of the load/storage accounting.
	pl.PartitionParallel(workers, spPart)
	spPart.End()

	// Phase 2: constraint restoration (and the optional refine sweep),
	// parallel over sites — the greedy loops are sequential within a site
	// but distinct sites touch disjoint planner state.
	stats := make([]SiteStats, numSites)
	restoreSite := func(i workload.SiteID) {
		var t time.Time
		if trace != nil {
			t = time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
		}
		d := pl.RestoreStorageSite(i)
		t = lap(spStore, t)
		f := pl.RestoreProcessingSite(i)
		t = lap(spProc, t)
		if opts.Refine {
			pl.RefineSite(i)
			lap(spRefine, t)
		}
		stats[i] = SiteStats{Site: i, Deallocs: d, ProcFlips: f}
	}

	siteWorkers := workers
	if siteWorkers > numSites {
		siteWorkers = numSites
	}
	if siteWorkers <= 1 {
		for i := 0; i < numSites; i++ {
			restoreSite(workload.SiteID(i))
		}
	} else {
		sites := make(chan workload.SiteID)
		var wg sync.WaitGroup
		for w := 0; w < siteWorkers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range sites {
					restoreSite(i)
				}
			}()
		}
		for i := 0; i < numSites; i++ {
			sites <- workload.SiteID(i)
		}
		close(sites)
		wg.Wait()
	}

	spStore.End()
	spProc.End()
	spRefine.End()

	// Phase 3: the off-loading negotiation, acceptance scored concurrently
	// on per-site scratch planners and applied serially by the coordinator.
	spOff := trace.Child("off-loading")
	var off OffloadStats
	if opts.Distributed {
		off = pl.RunOffloadDistributed(opts.MessageLog)
	} else {
		off = pl.OffloadParallel(opts.MessageLog, workers, spOff)
	}
	spOff.End()

	res := &Result{Sites: stats, Offload: off, D: pl.D(), D1: pl.D1(), D2: pl.D2(), Trace: trace}
	fillSiteStats(pl, res)
	res.Report = model.Evaluate(env, pl.p)
	res.Feasible = res.Report.Feasible()

	if trace != nil {
		var deallocs, flips int64
		for _, s := range stats {
			deallocs += int64(s.Deallocs)
			flips += int64(s.ProcFlips)
		}
		var localComp, remoteComp, localOpt int64
		for _, s := range res.Sites {
			localComp += int64(s.LocalComp)
			remoteComp += int64(s.RemoteComp)
			localOpt += int64(s.LocalOpt)
		}
		spPart.Count("pages", int64(env.W.NumPages()))
		// Final assignment shape (after restoration and off-loading).
		trace.Count("local-comp", localComp)
		trace.Count("remote-comp", remoteComp)
		trace.Count("local-opt", localOpt)
		spStore.Count("deallocs", deallocs)
		spProc.Count("flips", flips)
		spOff.Count("rounds", int64(off.Rounds))
		spOff.Count("messages", int64(off.Messages))
		spOff.Count("new-replicas", int64(off.NewReplicas))
		spOff.Count("swaps", int64(off.Swaps))
	}
	return pl.p, res, nil
}

// fillSiteStats counts the final assignment shape per site.
func fillSiteStats(pl *Planner, res *Result) {
	w := pl.env.W
	for i := range w.Sites {
		st := &res.Sites[i]
		st.StoredObjects = pl.p.StoredSet(workload.SiteID(i)).Count()
		for _, pid := range w.Sites[i].Pages {
			pg := &w.Pages[pid]
			for idx := range pg.Compulsory {
				if pl.p.CompLocal(pid, idx) {
					st.LocalComp++
				} else {
					st.RemoteComp++
				}
			}
			for idx := range pg.Optional {
				if pl.p.OptLocal(pid, idx) {
					st.LocalOpt++
				}
			}
		}
	}
}

// Write renders the result as a human-readable report.
func (r *Result) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "plan: D=%.2f (D1=%.2f, D2=%.2f), feasible=%v\n", r.D, r.D1, r.D2, r.Feasible); err != nil {
		return err
	}
	for _, s := range r.Sites {
		if _, err := fmt.Fprintf(w, "site %2d: %d local / %d remote compulsory, %d local optional, %d replicas (deallocs %d, flips %d)\n",
			s.Site, s.LocalComp, s.RemoteComp, s.LocalOpt, s.StoredObjects, s.Deallocs, s.ProcFlips); err != nil {
			return err
		}
	}
	if r.Offload.Ran {
		if _, err := fmt.Fprintf(w, "offload: %d rounds, %d messages, moved %.2f req/s local, restored=%v\n",
			r.Offload.Rounds, r.Offload.Messages, float64(r.Offload.MovedLocal), r.Offload.Restored); err != nil {
			return err
		}
	}
	return nil
}
