// Package core implements the paper's contribution (Section 4): the
// per-page PARTITION heuristic that splits each page's compulsory objects
// between the local server and the repository to minimize the parallel
// download time, the greedy restoration of the storage (Eq. 10) and
// processing (Eq. 8) constraints, and the repository off-loading negotiation
// (Eq. 9) between the repository coordinator and the local servers.
//
// The package keeps an incrementally-maintained view of the cost model —
// per-page chain times, the weighted objective D, and per-site loads — so
// the greedy loops run in near-linear time; tests validate every cached
// quantity against the pure recomputation in internal/model.
package core

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/units"
	"repro/internal/workload"
)

// objRef locates one reference of an object on a page: idx indexes the
// page's Compulsory (optional == false) or Optional (optional == true) list.
type objRef struct {
	page     workload.PageID
	idx      int
	optional bool
}

// Planner carries the incremental planning state for one environment. It is
// created by NewPlanner, driven by Plan (or the individual phases), and is
// not safe for concurrent use except as documented in parallel.go (distinct
// sites touch disjoint state).
type Planner struct {
	env *model.Env
	p   *model.Placement

	// Ablation switches (normally false; see Options and the ablation
	// benchmarks): UnsortedPartition drops PARTITION's decreasing-size
	// visit order; NoRepartition skips the re-partitioning step after a
	// storage deallocation.
	UnsortedPartition bool
	NoRepartition     bool

	// Per-page cached chain state (Eq. 3/4 under the estimates).
	localBytes  []units.ByteSize // HTML + locally-assigned compulsory bytes
	remoteBytes []units.ByteSize // repository-assigned compulsory bytes

	// pageT caches Eq. 5 — the current max of the two chains — per page.
	// flipComp keeps it fresh, so the preview scoring on the restoration and
	// off-loading hot paths reads the "before" time instead of recomputing
	// the whole-page max on every candidate evaluation.
	pageT []units.Seconds

	// Flattened per-link one-download times (Eq. 6 inner terms). Both sides
	// are constants of the environment — overhead plus transfer time of a
	// fixed size at a fixed estimated rate — so they are precomputed once:
	// link idx of page j lives at optOff[j]+idx. flipOpt scoring picks a
	// side by bit instead of redoing the rate arithmetic per evaluation.
	optOff     []int
	optLocalT  []units.Seconds
	optRemoteT []units.Seconds

	// Incremental objective and loads, kept per site so the per-site
	// planning phases can run concurrently without sharing hot words
	// (distinct sites touch disjoint pages).
	d1Site        []float64 // Σ f·Time(W_j) over the site's pages
	d2Site        []float64 // Σ f·Time(W_j, M) over the site's pages
	siteLocalLoad []float64 // Eq. 8 LHS per site
	siteRepoLoad  []float64 // P(S_i, R) per site

	// refs[i][k] lists every reference of object k by a page of site i;
	// localMarks[i][k] counts how many of them are currently marked local
	// (zero marks ⇒ the replica is free to deallocate).
	refs       []map[workload.ObjectID][]objRef
	localMarks []map[workload.ObjectID]int
}

// NewPlanner builds a planner with an all-remote placement.
func NewPlanner(env *model.Env) *Planner {
	w := env.W
	pl := &Planner{
		env:           env,
		p:             model.NewPlacement(w),
		localBytes:    make([]units.ByteSize, w.NumPages()),
		remoteBytes:   make([]units.ByteSize, w.NumPages()),
		pageT:         make([]units.Seconds, w.NumPages()),
		optOff:        make([]int, w.NumPages()+1),
		d1Site:        make([]float64, w.NumSites()),
		d2Site:        make([]float64, w.NumSites()),
		siteLocalLoad: make([]float64, w.NumSites()),
		siteRepoLoad:  make([]float64, w.NumSites()),
		refs:          make([]map[workload.ObjectID][]objRef, w.NumSites()),
		localMarks:    make([]map[workload.ObjectID]int, w.NumSites()),
	}
	for i := range pl.refs {
		pl.refs[i] = make(map[workload.ObjectID][]objRef)
		pl.localMarks[i] = make(map[workload.ObjectID]int)
	}
	links := 0
	for j := range w.Pages {
		pl.optOff[j] = links
		links += len(w.Pages[j].Optional)
	}
	pl.optOff[w.NumPages()] = links
	pl.optLocalT = make([]units.Seconds, links)
	pl.optRemoteT = make([]units.Seconds, links)
	for j := range w.Pages {
		est := pl.env.SiteEst(workload.PageID(j))
		for idx, l := range w.Pages[j].Optional {
			size := w.ObjectSize(l.Object)
			pl.optLocalT[pl.optOff[j]+idx] = est.LocalOvhd + est.LocalRate.TransferTime(size)
			pl.optRemoteT[pl.optOff[j]+idx] = est.RepoOvhd + est.RepoRate.TransferTime(size)
		}
	}
	for j := range w.Pages {
		pg := &w.Pages[j]
		pl.localBytes[j] = pg.HTMLSize
		var rb units.ByteSize
		for idx, k := range pg.Compulsory {
			rb += w.ObjectSize(k)
			pl.refs[pg.Site][k] = append(pl.refs[pg.Site][k], objRef{workload.PageID(j), idx, false})
		}
		for idx, l := range pg.Optional {
			pl.refs[pg.Site][l.Object] = append(pl.refs[pg.Site][l.Object], objRef{workload.PageID(j), idx, true})
		}
		pl.remoteBytes[j] = rb
		pl.pageT[j] = pl.computePageTime(workload.PageID(j))

		f := float64(pg.Freq)
		pl.d1Site[pg.Site] += f * float64(pl.pageTime(workload.PageID(j)))
		pl.d2Site[pg.Site] += f * float64(pl.pageOptTime(workload.PageID(j)))
		pl.siteLocalLoad[pg.Site] += f // the HTML request
		pl.siteRepoLoad[pg.Site] += f * pl.pageRepoPerView(workload.PageID(j))
	}
	return pl
}

// Env returns the planning environment.
func (pl *Planner) Env() *model.Env { return pl.env }

// Placement returns the planner's placement. Callers must not mutate it
// directly while the planner is still in use.
func (pl *Planner) Placement() *model.Placement { return pl.p }

// localTime returns Eq. 3 for page j from the cached byte counts.
func (pl *Planner) localTime(j workload.PageID) units.Seconds {
	est := pl.env.SiteEst(j)
	return est.LocalOvhd + est.LocalRate.TransferTime(pl.localBytes[j])
}

// remoteTime returns Eq. 4 for page j (0 when nothing is remote, matching
// model.PageRemoteTime).
func (pl *Planner) remoteTime(j workload.PageID) units.Seconds {
	if pl.remoteBytes[j] == 0 {
		return 0
	}
	est := pl.env.SiteEst(j)
	return est.RepoOvhd + est.RepoRate.TransferTime(pl.remoteBytes[j])
}

// computePageTime evaluates Eq. 5 for page j from the cached byte counts.
func (pl *Planner) computePageTime(j workload.PageID) units.Seconds {
	return units.MaxSeconds(pl.localTime(j), pl.remoteTime(j))
}

// pageTime returns the cached Eq. 5 value for page j.
func (pl *Planner) pageTime(j workload.PageID) units.Seconds {
	return pl.pageT[j]
}

// optOneTime returns the time of one download of page j's idx-th optional
// link, on the side the placement currently assigns.
func (pl *Planner) optOneTime(j workload.PageID, idx int) units.Seconds {
	return pl.optOneTimeOn(j, idx, pl.p.OptLocal(j, idx))
}

// optOneTimeOn returns the same for an explicit side, from the precomputed
// per-link constants.
func (pl *Planner) optOneTimeOn(j workload.PageID, idx int, local bool) units.Seconds {
	if local {
		return pl.optLocalT[pl.optOff[j]+idx]
	}
	return pl.optRemoteT[pl.optOff[j]+idx]
}

// pageOptTime returns the Eq. 6 per-view expected optional seconds.
func (pl *Planner) pageOptTime(j workload.PageID) units.Seconds {
	pg := &pl.env.W.Pages[j]
	var t units.Seconds
	for idx, l := range pg.Optional {
		t += units.Seconds(l.Prob) * pl.optOneTime(j, idx)
	}
	return t
}

// pageRepoPerView returns page j's per-view repository request count
// (Eq. 9 inner term).
func (pl *Planner) pageRepoPerView(j workload.PageID) float64 {
	pg := &pl.env.W.Pages[j]
	v := 0.0
	for idx := range pg.Compulsory {
		if !pl.p.CompLocal(j, idx) {
			v++
		}
	}
	for idx, l := range pg.Optional {
		if !pl.p.OptLocal(j, idx) {
			v += l.Prob
		}
	}
	return v
}

// D returns the current composite objective α1·D1 + α2·D2.
func (pl *Planner) D() float64 { return pl.env.Alpha1*pl.D1() + pl.env.Alpha2*pl.D2() }

// D1 returns the cached Σ f·Time(W_j).
func (pl *Planner) D1() float64 {
	sum := 0.0
	for _, v := range pl.d1Site {
		sum += v
	}
	return sum
}

// D2 returns the cached Σ f·Time(W_j, M).
func (pl *Planner) D2() float64 {
	sum := 0.0
	for _, v := range pl.d2Site {
		sum += v
	}
	return sum
}

// SiteLoad returns the cached Eq. 8 LHS for site i.
func (pl *Planner) SiteLoad(i workload.SiteID) units.ReqPerSec {
	return units.ReqPerSec(pl.siteLocalLoad[i])
}

// SiteRepoLoad returns the cached P(S_i, R).
func (pl *Planner) SiteRepoLoad(i workload.SiteID) units.ReqPerSec {
	return units.ReqPerSec(pl.siteRepoLoad[i])
}

// RepoLoad returns the cached Eq. 9 LHS.
func (pl *Planner) RepoLoad() units.ReqPerSec {
	sum := 0.0
	for _, v := range pl.siteRepoLoad {
		sum += v
	}
	return units.ReqPerSec(sum)
}

// flipComp moves page j's idx-th compulsory object between the chains and
// updates every cached quantity. It is a no-op if already on that side.
// The caller manages the store (the object must be stored when toLocal).
//
//repllint:hotpath — flip-scoring inner loop (ROADMAP item 5 allocation diet)
func (pl *Planner) flipComp(j workload.PageID, idx int, toLocal bool) {
	if pl.p.CompLocal(j, idx) == toLocal {
		return
	}
	pg := &pl.env.W.Pages[j]
	size := pl.env.W.ObjectSize(pg.Compulsory[idx])
	f := float64(pg.Freq)

	oldT := pl.pageT[j]
	if toLocal {
		pl.localBytes[j] += size
		pl.remoteBytes[j] -= size
		pl.siteLocalLoad[pg.Site] += f
		pl.siteRepoLoad[pg.Site] -= f
		pl.localMarks[pg.Site][pg.Compulsory[idx]]++
	} else {
		pl.localBytes[j] -= size
		pl.remoteBytes[j] += size
		pl.siteLocalLoad[pg.Site] -= f
		pl.siteRepoLoad[pg.Site] += f
		pl.localMarks[pg.Site][pg.Compulsory[idx]]--
	}
	pl.p.SetCompLocal(j, idx, toLocal)
	newT := pl.computePageTime(j)
	pl.pageT[j] = newT
	pl.d1Site[pg.Site] += f * float64(newT-oldT)
}

// flipOpt moves page j's idx-th optional link between the sides and updates
// the caches.
//
//repllint:hotpath — flip-scoring inner loop (ROADMAP item 5 allocation diet)
func (pl *Planner) flipOpt(j workload.PageID, idx int, toLocal bool) {
	if pl.p.OptLocal(j, idx) == toLocal {
		return
	}
	pg := &pl.env.W.Pages[j]
	l := pg.Optional[idx]
	f := float64(pg.Freq)

	oldOne := pl.optOneTime(j, idx)
	pl.p.SetOptLocal(j, idx, toLocal)
	newOne := pl.optOneTime(j, idx)
	pl.d2Site[pg.Site] += f * l.Prob * float64(newOne-oldOne)
	if toLocal {
		pl.siteLocalLoad[pg.Site] += f * l.Prob
		pl.siteRepoLoad[pg.Site] -= f * l.Prob
		pl.localMarks[pg.Site][l.Object]++
	} else {
		pl.siteLocalLoad[pg.Site] -= f * l.Prob
		pl.siteRepoLoad[pg.Site] += f * l.Prob
		pl.localMarks[pg.Site][l.Object]--
	}
}

// previewFlipComp returns the change in D if page j's idx-th compulsory
// object moved to the given side, without mutating anything.
//
//repllint:hotpath — flip-scoring inner loop (ROADMAP item 5 allocation diet)
func (pl *Planner) previewFlipComp(j workload.PageID, idx int, toLocal bool) float64 {
	if pl.p.CompLocal(j, idx) == toLocal {
		return 0
	}
	pg := &pl.env.W.Pages[j]
	est := pl.env.SiteEst(j)
	size := pl.env.W.ObjectSize(pg.Compulsory[idx])

	lb, rb := pl.localBytes[j], pl.remoteBytes[j]
	if toLocal {
		lb += size
		rb -= size
	} else {
		lb -= size
		rb += size
	}
	newLocal := est.LocalOvhd + est.LocalRate.TransferTime(lb)
	var newRemote units.Seconds
	if rb > 0 {
		newRemote = est.RepoOvhd + est.RepoRate.TransferTime(rb)
	}
	newT := units.MaxSeconds(newLocal, newRemote)
	return pl.env.Alpha1 * float64(pg.Freq) * float64(newT-pl.pageT[j])
}

// previewFlipOpt returns the change in D if page j's idx-th optional link
// moved to the given side.
//
//repllint:hotpath — flip-scoring inner loop (ROADMAP item 5 allocation diet)
func (pl *Planner) previewFlipOpt(j workload.PageID, idx int, toLocal bool) float64 {
	if pl.p.OptLocal(j, idx) == toLocal {
		return 0
	}
	pg := &pl.env.W.Pages[j]
	delta := float64(pl.optOneTimeOn(j, idx, toLocal) - pl.optOneTime(j, idx))
	return pl.env.Alpha2 * float64(pg.Freq) * pg.Optional[idx].Prob * delta
}

// VerifyConsistency recomputes every cached quantity with internal/model and
// returns an error on any mismatch. Test-only by convention (it is O(n·m)).
func (pl *Planner) VerifyConsistency() error {
	const eps = 1e-6
	if err := pl.p.CheckInvariants(); err != nil {
		return err
	}
	if d1 := model.D1(pl.env, pl.p); !approxEqual(d1, pl.D1(), eps) {
		return fmt.Errorf("core: cached D1 %v != recomputed %v", pl.D1(), d1)
	}
	if d2 := model.D2(pl.env, pl.p); !approxEqual(d2, pl.D2(), eps) {
		return fmt.Errorf("core: cached D2 %v != recomputed %v", pl.D2(), d2)
	}
	// The mark counters must agree with the placement matrices.
	for i := range pl.env.W.Sites {
		want := make(map[workload.ObjectID]int)
		for _, pid := range pl.env.W.Sites[i].Pages {
			pg := &pl.env.W.Pages[pid]
			for idx, k := range pg.Compulsory {
				if pl.p.CompLocal(pid, idx) {
					want[k]++
				}
			}
			for idx, l := range pg.Optional {
				if pl.p.OptLocal(pid, idx) {
					want[l.Object]++
				}
			}
		}
		for k, n := range pl.localMarks[i] {
			if n != want[k] {
				return fmt.Errorf("core: site %d object %d mark count %d != %d", i, k, n, want[k])
			}
			delete(want, k)
		}
		for k, n := range want {
			if n != 0 {
				return fmt.Errorf("core: site %d object %d has %d marks but no counter", i, k, n)
			}
		}
	}
	for i := range pl.env.W.Sites {
		id := workload.SiteID(i)
		if l := float64(model.SiteLoad(pl.env, pl.p, id)); !approxEqual(l, pl.siteLocalLoad[i], eps) {
			return fmt.Errorf("core: site %d cached load %v != recomputed %v", i, pl.siteLocalLoad[i], l)
		}
		if l := float64(model.SiteRepoLoad(pl.env, pl.p, id)); !approxEqual(l, pl.siteRepoLoad[i], eps) {
			return fmt.Errorf("core: site %d cached repo load %v != recomputed %v", i, pl.siteRepoLoad[i], l)
		}
	}
	for j := range pl.env.W.Pages {
		id := workload.PageID(j)
		if lt := model.PageLocalTime(pl.env, pl.p, id); !approxEqual(float64(lt), float64(pl.localTime(id)), eps) {
			return fmt.Errorf("core: page %d cached local time %v != %v", j, pl.localTime(id), lt)
		}
		if rt := model.PageRemoteTime(pl.env, pl.p, id); !approxEqual(float64(rt), float64(pl.remoteTime(id)), eps) {
			return fmt.Errorf("core: page %d cached remote time %v != %v", j, pl.remoteTime(id), rt)
		}
		if pt := pl.computePageTime(id); pl.pageT[j] != pt { //repllint:allow float-compare — cache-coherence check demands bit-exact equality
			return fmt.Errorf("core: page %d cached page time %v != recomputed %v", j, pl.pageT[j], pt)
		}
	}
	return nil
}

func approxEqual(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if a > scale {
		scale = a
	}
	if b > scale {
		scale = b
	}
	return d <= eps*scale
}

// siteEstimateOf returns the estimate for site i.
func (pl *Planner) siteEstimateOf(i workload.SiteID) netsim.SiteEstimate {
	return pl.env.Est.Sites[i]
}
