package core

import (
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// samePlacement fails the test unless a and b agree on every X/X' mark and
// every site's replica set.
func samePlacement(t *testing.T, a, b *model.Placement, label string) {
	t.Helper()
	w := a.Workload()
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if a.CompLocal(pid, idx) != b.CompLocal(pid, idx) {
				t.Fatalf("%s: page %d comp %d differs", label, j, idx)
			}
		}
		for idx := range w.Pages[j].Optional {
			if a.OptLocal(pid, idx) != b.OptLocal(pid, idx) {
				t.Fatalf("%s: page %d opt %d differs", label, j, idx)
			}
		}
	}
	for i := range w.Sites {
		id := workload.SiteID(i)
		if !a.StoredSet(id).Equal(b.StoredSet(id)) {
			t.Fatalf("%s: site %d stores differ", label, i)
		}
		if a.StoredMOBytes(id) != b.StoredMOBytes(id) {
			t.Fatalf("%s: site %d stored bytes differ", label, i)
		}
	}
}

// TestPartitionParallelMatchesSequential pins the page-pool PARTITION
// against the sequential reference: identical placement bits and store
// sets for any worker count, and site accumulators that agree with the
// model recomputation.
func TestPartitionParallelMatchesSequential(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		env := genEnv(t, 71)
		seq := NewPlanner(env)
		seq.PartitionAll()

		par := NewPlanner(env)
		par.PartitionParallel(workers, nil)

		samePlacement(t, seq.Placement(), par.Placement(), "partition")
		if err := par.VerifyConsistency(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if d1, d2 := seq.D1(), par.D1(); !approxEqual(d1, d2, 1e-9) {
			t.Errorf("workers=%d: D1 %v vs sequential %v", workers, d2, d1)
		}
		for i := range env.W.Sites {
			id := workload.SiteID(i)
			if !approxEqual(float64(seq.SiteLoad(id)), float64(par.SiteLoad(id)), 1e-9) {
				t.Errorf("workers=%d: site %d load differs", workers, i)
			}
		}
	}
}

// TestPartitionParallelUnsorted checks the ablation switch threads through
// the page pool: the unsorted variant must match the sequential unsorted
// reference, not the sorted one.
func TestPartitionParallelUnsorted(t *testing.T) {
	env := genEnv(t, 72)
	seq := NewPlanner(env)
	seq.UnsortedPartition = true
	for j := range env.W.Pages {
		seq.PartitionPageUnsorted(workload.PageID(j))
	}

	par := NewPlanner(env)
	par.UnsortedPartition = true
	par.PartitionParallel(4, nil)
	w := env.W
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if seq.Placement().CompLocal(pid, idx) != par.Placement().CompLocal(pid, idx) {
				t.Fatalf("unsorted partition: page %d comp %d differs", j, idx)
			}
		}
	}
}

// TestOffloadParallelMatchesSequential runs the same constrained
// negotiation through the sequential coordinator and through the
// scratch-planner scoring path, and requires bit-identical stats,
// placements, message logs and caches.
func TestOffloadParallelMatchesSequential(t *testing.T) {
	build := func() *Planner {
		env := genEnv(t, 73)
		env.Budgets = env.Budgets.Scale(env.W, 0.6, 0.7)
		pl := NewPlanner(env)
		pl.PartitionParallel(1, nil)
		for i := range env.W.Sites {
			pl.RestoreStorageSite(workload.SiteID(i))
			pl.RestoreProcessingSite(workload.SiteID(i))
		}
		// Cap the repository at 60 % of its current load so the
		// negotiation has real work, including swaps on tight stores.
		env.Budgets.RepoCapacity = units.ReqPerSec(float64(pl.RepoLoad()) * 0.6)
		return pl
	}

	seq := build()
	var seqLog strings.Builder
	seqStats := seq.Offload(&seqLog)

	par := build()
	var parLog strings.Builder
	parStats := par.OffloadParallel(&parLog, 4, nil)

	if seqStats != parStats {
		t.Errorf("offload stats differ:\nsequential %+v\nparallel   %+v", seqStats, parStats)
	}
	if seqLog.String() != parLog.String() {
		t.Errorf("offload message logs differ:\n--- sequential\n%s--- parallel\n%s", seqLog.String(), parLog.String())
	}
	samePlacement(t, seq.Placement(), par.Placement(), "offload")
	if seq.D() != par.D() {
		t.Errorf("offload D differs: %v vs %v", seq.D(), par.D())
	}
	if err := par.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestScratchCommitRoundTrip mutates a scratch planner for one site and
// commits it back, checking the parent picks up exactly the site's state
// and that other sites' cells never moved.
func TestScratchCommitRoundTrip(t *testing.T) {
	env := genEnv(t, 74)
	pl := NewPlanner(env)
	pl.PartitionParallel(1, nil)

	site := workload.SiteID(1)
	before := pl.Placement().Clone()
	d1Other := pl.d1Site[0]

	sc := pl.scratchFor(site)
	res := sc.AcceptWorkload(site, units.ReqPerSec(math.Inf(1)))
	_ = res
	// Parent untouched while the scratch mutates.
	samePlacement(t, before, pl.Placement(), "pre-commit parent")

	pl.commitScratch(sc, site)
	if pl.d1Site[0] != d1Other {
		t.Error("commit touched another site's objective cell")
	}
	if pl.d1Site[site] != sc.d1Site[site] {
		t.Error("commit did not adopt the site's objective cell")
	}
	if !pl.Placement().StoredSet(site).Equal(sc.Placement().StoredSet(site)) {
		t.Error("commit did not adopt the site's store")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestPlanWorkersDeterminismProperty is the race-detector determinism
// property (run via `go test -race ./internal/core/`): on seeded random
// workloads with random budget scales — including a constrained repository
// so the off-loading scratch path runs — Plan with Workers: 1 and with
// Workers: runtime.NumCPU() (and an oversubscribed pool) must produce
// identical placements and an identical D, bit for bit.
func TestPlanWorkersDeterminismProperty(t *testing.T) {
	workerCounts := []int{1, 4, runtime.NumCPU(), 3 * runtime.NumCPU()}
	for seed := uint64(0); seed < 6; seed++ {
		s := rng.New(900 + seed)
		storage := 0.3 + 0.7*s.Float64()
		capacity := 0.4 + 0.6*s.Float64()
		repo := 0.5 + 0.5*s.Float64()

		build := func() *model.Env {
			w := workload.MustGenerate(workload.SmallConfig(), 900+seed)
			est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(900+seed))
			if err != nil {
				t.Fatal(err)
			}
			env, err := model.NewEnv(w, est, model.FullBudgets(w).Scale(w, storage, capacity))
			if err != nil {
				t.Fatal(err)
			}
			return env
		}

		// Size the repository cap from a probe so the negotiation runs.
		probeEnv := build()
		probe, _, err := Plan(probeEnv, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		pre := model.RepoLoad(probeEnv, probe)

		var refP *model.Placement
		var refD float64
		for wi, workers := range workerCounts {
			env := build()
			env.Budgets.RepoCapacity = units.ReqPerSec(float64(pre) * repo)
			p, res, err := Plan(env, Options{Workers: workers, Refine: seed%2 == 0})
			if err != nil {
				t.Fatal(err)
			}
			if wi == 0 {
				refP, refD = p, res.D
				continue
			}
			if res.D != refD {
				t.Errorf("seed %d: D with workers=%d is %v, workers=1 gave %v", seed, workers, res.D, refD)
			}
			samePlacement(t, refP, p, "plan determinism")
		}
	}
}
