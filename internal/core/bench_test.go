package core

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// benchEnv builds a Table-1-scale environment once per benchmark (workload
// generation is benchmarked at the repo root, not here).
func benchEnv(b *testing.B) *model.Env {
	b.Helper()
	w, err := workload.Generate(workload.DefaultConfig(), 2026)
	if err != nil {
		b.Fatal(err)
	}
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(2026))
	if err != nil {
		b.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// benchWorkerCounts is the ladder the scaling benches sweep: sequential,
// a typical small pool, and everything the machine has.
func benchWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.NumCPU(); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkPlan measures the full planning pipeline — page-pool PARTITION,
// per-site restoration, off-loading coordinator — across worker counts on
// the Table-1 workload. The benchdiff CI gate watches these series.
func BenchmarkPlan(b *testing.B) {
	env := benchEnv(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Plan(env, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanConstrainedWorkers runs both restoration loops (30 %
// storage, 50 % capacity) across worker counts — the restoration pool is
// per-site, so this exposes the site-count ceiling of phase 2.
func BenchmarkPlanConstrainedWorkers(b *testing.B) {
	env := benchEnv(b)
	env.Budgets = env.Budgets.Scale(env.W, 0.3, 0.5)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := Plan(env, Options{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPartitionParallel isolates the page-pool PARTITION phase plus
// its deterministic reduce.
func BenchmarkPartitionParallel(b *testing.B) {
	env := benchEnv(b)
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pl := NewPlanner(env)
				pl.PartitionParallel(workers, nil)
			}
		})
	}
}

// BenchmarkOffloadParallel isolates the negotiation with concurrent
// scratch-planner scoring, repository capped at 60 % of the pre-offload
// load so several rounds of AcceptWorkload run.
func BenchmarkOffloadParallel(b *testing.B) {
	env := benchEnv(b)
	base := NewPlanner(env)
	base.PartitionParallel(runtime.NumCPU(), nil)
	for i := range env.W.Sites {
		base.RestoreStorageSite(workload.SiteID(i))
		base.RestoreProcessingSite(workload.SiteID(i))
	}
	pre := float64(base.RepoLoad())
	for _, workers := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				env.Budgets.RepoCapacity = model.Infinite()
				pl := NewPlanner(env)
				pl.PartitionParallel(runtime.NumCPU(), nil)
				for s := range env.W.Sites {
					pl.RestoreStorageSite(workload.SiteID(s))
					pl.RestoreProcessingSite(workload.SiteID(s))
				}
				env.Budgets.RepoCapacity = units.ReqPerSec(pre * 0.6)
				b.StartTimer()
				st := pl.OffloadParallel(nil, workers, nil)
				if !st.Restored {
					b.Fatal("offload failed")
				}
			}
			env.Budgets.RepoCapacity = model.Infinite()
		})
	}
}

// BenchmarkScratchBuild prices one per-site scratch planner construction —
// the per-dispatch overhead the off-loading scoring pool pays.
func BenchmarkScratchBuild(b *testing.B) {
	env := benchEnv(b)
	pl := NewPlanner(env)
	pl.PartitionParallel(runtime.NumCPU(), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := pl.scratchFor(workload.SiteID(i % env.W.NumSites()))
		if sc == nil {
			b.Fatal("nil scratch")
		}
	}
}
