package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/telemetry"
)

// tracedPlan plans with a trace span attached and returns the ended span
// plus the result, so tests can reconcile the two.
func tracedPlan(t *testing.T, seed uint64, opts Options) (*telemetry.Span, *Result) {
	t.Helper()
	env := genEnv(t, seed)
	env.Budgets = env.Budgets.Scale(env.W, 0.5, 0.5)
	span := telemetry.NewSpan("plan")
	opts.Trace = span
	_, res, err := Plan(env, opts)
	if err != nil {
		t.Fatal(err)
	}
	span.End()
	return span, res
}

func TestPlanTracePhases(t *testing.T) {
	span, res := tracedPlan(t, 51, Options{Workers: 2, Refine: true})
	for _, phase := range []string{"PARTITION", "storage-restore", "processing-restore", "refine", "off-loading"} {
		sp := span.Find(phase)
		if sp == nil {
			t.Fatalf("trace has no %q span", phase)
		}
		if sp.Wall() <= 0 {
			t.Errorf("%s wall time not positive", phase)
		}
	}
	// Trace counters must agree with the result's own accounting.
	var deallocs, flips int64
	for _, s := range res.Sites {
		deallocs += int64(s.Deallocs)
		flips += int64(s.ProcFlips)
	}
	if got := span.Find("storage-restore").CounterValue("deallocs"); got != deallocs {
		t.Errorf("trace deallocs = %d, result says %d", got, deallocs)
	}
	if got := span.Find("processing-restore").CounterValue("flips"); got != flips {
		t.Errorf("trace flips = %d, result says %d", got, flips)
	}
	if span.Find("PARTITION").CounterValue("pages") <= 0 {
		t.Error("PARTITION counted no pages")
	}
	var localComp int64
	for _, s := range res.Sites {
		localComp += int64(s.LocalComp)
	}
	if got := span.CounterValue("local-comp"); got != localComp {
		t.Errorf("trace local-comp = %d, result says %d", got, localComp)
	}
	// The result must hand the trace back to callers.
	if res.Trace != span {
		t.Error("Result.Trace is not the span passed in Options")
	}
	// The rendered tree mentions each phase.
	var sb strings.Builder
	if err := span.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"PARTITION", "deallocs=", "flips="} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("trace rendering missing %q:\n%s", want, sb.String())
		}
	}
}

// traceShape flattens a span tree into names, nesting and counter values —
// everything except durations, which legitimately vary run to run.
func traceShape(span *telemetry.Span) string {
	var sb strings.Builder
	var walk func(sp *telemetry.Span, depth int)
	walk = func(sp *telemetry.Span, depth int) {
		fmt.Fprintf(&sb, "%*s%s", depth*2, "", sp.Name())
		for _, c := range sp.Counters() {
			fmt.Fprintf(&sb, " %s=%d", c.Name, c.Value)
		}
		sb.WriteString("\n")
		for _, ch := range sp.Children() {
			walk(ch, depth+1)
		}
	}
	walk(span, 0)
	return sb.String()
}

// TestPlanTraceDeterministic asserts the trace's event structure — span
// names, nesting and every counter value — is identical across repeat runs
// at a fixed seed, even across worker counts. Only durations may vary.
func TestPlanTraceDeterministic(t *testing.T) {
	a, _ := tracedPlan(t, 52, Options{Workers: 4, Distributed: true})
	b, _ := tracedPlan(t, 52, Options{Workers: 1, Distributed: true})
	if sa, sb := traceShape(a), traceShape(b); sa != sb {
		t.Errorf("trace shapes differ across runs/worker counts:\n--- workers=4\n%s--- workers=1\n%s", sa, sb)
	}
	if na, nb := a.Events(), b.Events(); na != nb {
		t.Errorf("event counts differ: %d vs %d", na, nb)
	}
}

// TestPlanUntracedHasNoTrace pins the nil default: no span, no Result.Trace.
func TestPlanUntracedHasNoTrace(t *testing.T) {
	env := genEnv(t, 53)
	_, res, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil {
		t.Error("untraced plan populated Result.Trace")
	}
}
