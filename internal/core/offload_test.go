package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// planned returns a planner that has completed the per-site phases under
// the given budgets transform.
func planned(t *testing.T, seed uint64, tweak func(*model.Env)) (*Planner, *model.Env) {
	t.Helper()
	env := genEnv(t, seed)
	if tweak != nil {
		tweak(env)
	}
	pl := NewPlanner(env)
	pl.PartitionAll()
	for i := range env.W.Sites {
		pl.RestoreStorageSite(workload.SiteID(i))
		pl.RestoreProcessingSite(workload.SiteID(i))
	}
	return pl, env
}

func TestOffloadNoopWhenUnconstrained(t *testing.T) {
	pl, _ := planned(t, 21, nil)
	st := pl.Offload(nil)
	if st.Ran {
		t.Error("offload ran with infinite repository capacity")
	}
	if !st.Restored {
		t.Error("unconstrained repo should report restored")
	}
}

func TestOffloadRestoresConstraint(t *testing.T) {
	var preLoad units.ReqPerSec
	pl, env := planned(t, 22, nil)
	preLoad = pl.RepoLoad()
	if preLoad <= 0 {
		t.Fatal("expected some repository load after planning")
	}
	// Let the repository serve only 40 % of the workload currently aimed
	// at it (the DESIGN.md §3.7 reading of "central capacity 40 %").
	env.Budgets.RepoCapacity = units.ReqPerSec(float64(preLoad) * 0.4)

	var log strings.Builder
	st := pl.Offload(&log)
	if !st.Ran {
		t.Fatal("offload did not run")
	}
	if !st.Restored {
		t.Fatalf("offload failed to restore Eq. 9: %v > %v\nlog:\n%s",
			pl.RepoLoad(), env.Budgets.RepoCapacity, log.String())
	}
	if float64(pl.RepoLoad()) > float64(env.Budgets.RepoCapacity)*(1+1e-9) {
		t.Errorf("repo load %v over capacity %v", pl.RepoLoad(), env.Budgets.RepoCapacity)
	}
	if st.MovedLocal <= 0 {
		t.Error("no workload moved local")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Sites must stay within their own constraints.
	r := model.Evaluate(env, pl.p)
	for _, s := range r.Sites {
		if !s.StorageOK() {
			t.Errorf("site %d storage violated after offload (%v > %v)", s.Site, s.StorageUsed, s.StorageLimit)
		}
		if !s.LoadOK() {
			t.Errorf("site %d capacity violated after offload (%v > %v)", s.Site, s.Load, s.Capacity)
		}
	}
	for _, want := range []string{"repository: collected", "NewReq", "accepted"} {
		if !strings.Contains(log.String(), want) {
			t.Errorf("log missing %q", want)
		}
	}
}

func TestOffloadDistributedMatchesSequential(t *testing.T) {
	mk := func() (*Planner, *model.Env) {
		pl, env := planned(t, 23, nil)
		env.Budgets.RepoCapacity = units.ReqPerSec(float64(pl.RepoLoad()) * 0.5)
		return pl, env
	}
	seqPl, _ := mk()
	seqSt := seqPl.Offload(nil)

	distPl, _ := mk()
	distSt := distPl.RunOffloadDistributed(nil)

	if seqSt.Restored != distSt.Restored {
		t.Fatalf("restored: seq %v, dist %v", seqSt.Restored, distSt.Restored)
	}
	if math.Abs(float64(seqPl.RepoLoad()-distPl.RepoLoad())) > 1e-6 {
		t.Errorf("repo load: seq %v, dist %v", seqPl.RepoLoad(), distPl.RepoLoad())
	}
	// The placements must be identical: the negotiation is deterministic
	// because phases are barriers and sites touch disjoint state.
	w := seqPl.env.W
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if seqPl.p.CompLocal(pid, idx) != distPl.p.CompLocal(pid, idx) {
				t.Fatalf("page %d comp %d differs between modes", j, idx)
			}
		}
		for idx := range w.Pages[j].Optional {
			if seqPl.p.OptLocal(pid, idx) != distPl.p.OptLocal(pid, idx) {
				t.Fatalf("page %d opt %d differs between modes", j, idx)
			}
		}
	}
	for i := range w.Sites {
		if !seqPl.p.StoredSet(workload.SiteID(i)).Equal(distPl.p.StoredSet(workload.SiteID(i))) {
			t.Fatalf("site %d stores differ between modes", i)
		}
	}
	if err := distPl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadImpossibleConstraint(t *testing.T) {
	// Zero site capacity: nothing can move local, so a tight repository
	// constraint cannot be restored; the loop must terminate and say so.
	pl, env := planned(t, 24, func(e *model.Env) {
		e.Budgets = e.Budgets.Scale(e.W, 1, 0)
	})
	env.Budgets.RepoCapacity = 1
	st := pl.Offload(nil)
	if st.Restored {
		t.Error("impossible constraint reported restored")
	}
	if st.Rounds > maxOffloadRounds {
		t.Errorf("rounds = %d", st.Rounds)
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptWorkloadRespectsCapacity(t *testing.T) {
	pl, env := planned(t, 25, func(e *model.Env) {
		e.Budgets = e.Budgets.Scale(e.W, 1, 0.3)
	})
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		head := pl.freeCapacity(id)
		res := pl.AcceptWorkload(id, units.ReqPerSec(head+1000))
		if float64(res.Accepted) > head+1e-6 {
			t.Errorf("site %d accepted %v with headroom %v", i, res.Accepted, head)
		}
		load := float64(pl.SiteLoad(id))
		cap := float64(env.Budgets.SiteCapacity[i])
		if load > cap*(1+1e-9)+1e-9 {
			t.Errorf("site %d load %v over capacity %v after accept", i, load, cap)
		}
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptWorkloadZeroTarget(t *testing.T) {
	pl, _ := planned(t, 26, nil)
	res := pl.AcceptWorkload(0, 0)
	if res.Accepted != 0 || res.Stored != 0 {
		t.Errorf("zero target accepted %v / stored %d", res.Accepted, res.Stored)
	}
}

func TestAcceptWorkloadStorageConstrained(t *testing.T) {
	// With zero MO storage, accepting can only swap — and with nothing
	// stored the swap phase is the only lever. Assert the site never
	// violates storage.
	pl, env := planned(t, 27, func(e *model.Env) {
		e.Budgets = e.Budgets.Scale(e.W, 0.2, 1)
	})
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		pl.AcceptWorkload(id, 5)
		if pl.p.StorageUsed(id) > env.Budgets.Storage[i] {
			t.Errorf("site %d storage violated after accept (%v > %v)",
				i, pl.p.StorageUsed(id), env.Budgets.Storage[i])
		}
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestOffloadMessagesCounted(t *testing.T) {
	pl, env := planned(t, 28, nil)
	env.Budgets.RepoCapacity = units.ReqPerSec(float64(pl.RepoLoad()) * 0.6)
	st := pl.Offload(nil)
	// At minimum: initial statuses + per-round request/answer pairs + END.
	min := env.W.NumSites()*2 + 2
	if st.Messages < min {
		t.Errorf("messages = %d, want ≥ %d", st.Messages, min)
	}
}

func TestOffloadL2Path(t *testing.T) {
	// Force the L2 branch: sites with spare processing but zero free
	// storage. After planning, pin each site's storage budget to exactly
	// its usage, then constrain the repository.
	pl, env := planned(t, 29, nil)
	for i := range env.W.Sites {
		env.Budgets.Storage[i] = pl.Placement().StorageUsed(workload.SiteID(i))
	}
	env.Budgets.RepoCapacity = units.ReqPerSec(float64(pl.RepoLoad()) * 0.7)

	var log strings.Builder
	st := pl.Offload(&log)
	if !st.Ran {
		t.Fatal("offload did not run")
	}
	if !strings.Contains(log.String(), "(L2)") {
		t.Fatalf("L2 branch not exercised:\n%s", log.String())
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Storage must never grow past the pinned budgets.
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		if pl.Placement().StorageUsed(id) > env.Budgets.Storage[i] {
			t.Errorf("site %d grew its store beyond the pinned budget", i)
		}
	}
	// L2 sites can still absorb workload by marking already-stored objects
	// local (and by swapping); some progress must have happened.
	if st.MovedLocal <= 0 {
		t.Error("L2 sites moved no workload local")
	}
}
