package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// handEnv builds the hand-checkable single-site environment used by the
// partition tests: HTML 10 KB, compulsory objects of 100/50/20 KB, one
// optional 30 KB link, B(S)=10 KB/s, B(R,S)=5 KB/s, Ovhd(S)=1 s,
// Ovhd(R,S)=2 s, f = 1 req/s.
func handEnv(t *testing.T) *model.Env {
	t.Helper()
	w := &workload.Workload{
		Config: workload.Config{Alpha1: 2, Alpha2: 1},
		Objects: []workload.Object{
			{ID: 0, Size: 100 * units.KB},
			{ID: 1, Size: 50 * units.KB},
			{ID: 2, Size: 20 * units.KB},
			{ID: 3, Size: 30 * units.KB},
		},
		Pages: []workload.Page{{
			ID: 0, Site: 0, HTMLSize: 10 * units.KB, Freq: 1,
			Compulsory: []workload.ObjectID{0, 1, 2},
			Optional:   []workload.OptionalLink{{Object: 3, Prob: 0.03}},
		}},
		Sites: []workload.Site{{
			ID: 0, Pages: []workload.PageID{0},
			Objects:  []workload.ObjectID{0, 1, 2, 3},
			Capacity: 150,
		}},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	est := &netsim.Estimates{Sites: []netsim.SiteEstimate{{
		LocalRate: 10 * units.KBPerSec,
		RepoRate:  5 * units.KBPerSec,
		LocalOvhd: 1,
		RepoOvhd:  2,
	}}}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// genEnv builds a generated small environment with realistic estimates.
func genEnv(t *testing.T, seed uint64) *model.Env {
	t.Helper()
	w := workload.MustGenerate(workload.SmallConfig(), seed)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestPartitionPageHandExample(t *testing.T) {
	env := handEnv(t)
	pl := NewPlanner(env)
	pl.PartitionPage(0)

	// Walkthrough (sizes visited 100, 50, 20):
	//   local = 1 + 10/10 = 2, remote = 2
	//   100K: remoteIf = 2+20 = 22, localIf = 2+10 = 12  -> local  (12)
	//    50K: remoteIf = 2+10 = 12, localIf = 12+5 = 17  -> remote (12)
	//    20K: remoteIf = 12+4 = 16, localIf = 12+2 = 14  -> local  (14)
	if !pl.p.CompLocal(0, 0) {
		t.Error("100 KB object should be local")
	}
	if pl.p.CompLocal(0, 1) {
		t.Error("50 KB object should be remote")
	}
	if !pl.p.CompLocal(0, 2) {
		t.Error("20 KB object should be local")
	}
	if got := float64(pl.pageTime(0)); math.Abs(got-14) > 1e-9 {
		t.Errorf("page time = %v, want 14", got)
	}
	// Local objects must be stored; the remote one must not be forced in.
	if !pl.p.IsStored(0, 0) || !pl.p.IsStored(0, 2) {
		t.Error("local objects not stored")
	}
	if pl.p.IsStored(0, 1) {
		t.Error("remote object needlessly stored")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionSiteStoresOptional(t *testing.T) {
	env := handEnv(t)
	pl := NewPlanner(env)
	pl.PartitionSite(0)
	if !pl.p.IsStored(0, 3) {
		t.Error("optional object not stored")
	}
	if !pl.p.OptLocal(0, 0) {
		t.Error("optional link not marked local")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionBeatsBothSingleChainsOnEstimates(t *testing.T) {
	env := genEnv(t, 1)
	pl := NewPlanner(env)
	pl.PartitionAll()
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	d := pl.D()
	dLocal := model.D(env, model.AllLocal(env.W))
	dRemote := model.D(env, model.AllRemote(env.W))
	if d > dLocal+1e-9 {
		t.Errorf("partitioned D %v worse than all-local %v", d, dLocal)
	}
	if d > dRemote+1e-9 {
		t.Errorf("partitioned D %v worse than all-remote %v", d, dRemote)
	}
}

func TestPartitionPageGreedyInvariant(t *testing.T) {
	// For every page, no single compulsory flip may improve the page's
	// retrieval time: PARTITION should land in a 1-flip local optimum of
	// Eq. 5. (The greedy visits objects in decreasing size; a profitable
	// single flip afterwards would contradict its choice structure.)
	env := genEnv(t, 2)
	pl := NewPlanner(env)
	pl.PartitionAll()
	for j := range env.W.Pages {
		pid := workload.PageID(j)
		for idx := range env.W.Pages[j].Compulsory {
			cur := pl.p.CompLocal(pid, idx)
			if delta := pl.previewFlipComp(pid, idx, !cur); delta < -1e-9 {
				t.Fatalf("page %d object idx %d: flipping %v→%v improves D by %v",
					j, idx, cur, !cur, -delta)
			}
		}
	}
}

func TestFlipCompUpdatesCaches(t *testing.T) {
	env := handEnv(t)
	pl := NewPlanner(env)
	pl.p.Store(0, 0)
	pl.flipComp(0, 0, true)
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	pl.flipComp(0, 0, true) // no-op
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	pl.flipComp(0, 0, false)
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if pl.localMarks[0][0] != 0 {
		t.Errorf("mark count = %d after flip round-trip", pl.localMarks[0][0])
	}
}

func TestFlipOptUpdatesCaches(t *testing.T) {
	env := handEnv(t)
	pl := NewPlanner(env)
	pl.p.Store(0, 3)
	pl.flipOpt(0, 0, true)
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	pl.flipOpt(0, 0, false)
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPreviewMatchesFlip(t *testing.T) {
	env := genEnv(t, 3)
	pl := NewPlanner(env)
	pl.PartitionAll()
	// For a sample of pages, previewFlip* must equal the actual ΔD.
	count := 0
	for j := range env.W.Pages {
		if count >= 50 {
			break
		}
		pid := workload.PageID(j)
		pg := &env.W.Pages[j]
		for idx := range pg.Compulsory {
			cur := pl.p.CompLocal(pid, idx)
			preview := pl.previewFlipComp(pid, idx, !cur)
			before := pl.D()
			if !cur {
				pl.p.Store(pg.Site, pg.Compulsory[idx])
			}
			pl.flipComp(pid, idx, !cur)
			got := pl.D() - before
			if math.Abs(got-preview) > 1e-6*(1+math.Abs(preview)) {
				t.Fatalf("page %d idx %d: preview %v actual %v", j, idx, preview, got)
			}
			pl.flipComp(pid, idx, cur) // restore
			count++
		}
		for idx := range pg.Optional {
			cur := pl.p.OptLocal(pid, idx)
			preview := pl.previewFlipOpt(pid, idx, !cur)
			before := pl.D()
			if !cur {
				pl.p.Store(pg.Site, pg.Optional[idx].Object)
			}
			pl.flipOpt(pid, idx, !cur)
			got := pl.D() - before
			if math.Abs(got-preview) > 1e-6*(1+math.Abs(preview)) {
				t.Fatalf("page %d opt %d: preview %v actual %v", j, idx, preview, got)
			}
			pl.flipOpt(pid, idx, cur)
			count++
		}
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRef(t *testing.T) {
	cases := []struct {
		j   workload.PageID
		idx int
		opt bool
	}{{0, 0, false}, {1, 5, true}, {8000, 84, true}, {123456, 2000, false}}
	for _, c := range cases {
		j, idx, opt := decodeRef(encodeRef(c.j, c.idx, c.opt))
		if j != c.j || idx != c.idx || opt != c.opt {
			t.Errorf("roundtrip (%d,%d,%v) -> (%d,%d,%v)", c.j, c.idx, c.opt, j, idx, opt)
		}
	}
}

func TestLazyHeap(t *testing.T) {
	h := newLazyHeap([]heapItem{{key: 3, id: 3}, {key: 1, id: 1}, {key: 2, id: 2}})
	order := []int64{}
	for {
		id, _, ok := h.popFresh(func(id int64) (float64, bool) { return float64(id), true })
		if !ok {
			break
		}
		order = append(order, id)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("pop order = %v", order)
	}
}

func TestLazyHeapStaleKeys(t *testing.T) {
	// Keys recompute to the reverse of the initial order: the heap must
	// re-sort lazily and still drain fully.
	h := newLazyHeap([]heapItem{{key: 1, id: 10}, {key: 2, id: 20}, {key: 3, id: 30}})
	fresh := map[int64]float64{10: 9, 20: 5, 30: 1}
	var order []int64
	for {
		id, key, ok := h.popFresh(func(id int64) (float64, bool) { return fresh[id], true })
		if !ok {
			break
		}
		if key != fresh[id] {
			t.Errorf("returned key %v for id %d, want %v", key, id, fresh[id])
		}
		order = append(order, id)
	}
	if len(order) != 3 || order[0] != 30 || order[1] != 20 || order[2] != 10 {
		t.Errorf("stale-key pop order = %v", order)
	}
}

func TestLazyHeapDropsInvalid(t *testing.T) {
	h := newLazyHeap([]heapItem{{key: 1, id: 1}, {key: 2, id: 2}})
	id, _, ok := h.popFresh(func(id int64) (float64, bool) { return float64(id), id != 1 })
	if !ok || id != 2 {
		t.Errorf("got (%d,%v), want id 2", id, ok)
	}
	if _, _, ok := h.popFresh(func(int64) (float64, bool) { return 0, false }); ok {
		t.Error("exhausted heap returned an item")
	}
}

func TestExplain(t *testing.T) {
	env := genEnv(t, 57)
	pl := NewPlanner(env)
	pl.PartitionAll()

	pid := env.W.Sites[0].Pages[0]
	ex := pl.Explain(pid)
	if ex.Page != pid || ex.Site != 0 {
		t.Fatal("identity fields wrong")
	}
	if len(ex.Objects) != len(env.W.Pages[pid].Compulsory) {
		t.Fatalf("explained %d objects", len(ex.Objects))
	}
	// Sorted by decreasing size.
	for i := 1; i < len(ex.Objects); i++ {
		if ex.Objects[i].Size > ex.Objects[i-1].Size {
			t.Fatal("objects not size-sorted")
		}
	}
	// Page time is the max of the chains and Bound names the larger one.
	if ex.PageTime != units.MaxSeconds(ex.LocalTime, ex.RemoteTime) {
		t.Fatal("page time inconsistent")
	}
	if (ex.Bound == "local") != (ex.LocalTime >= ex.RemoteTime) {
		t.Fatal("bound label wrong")
	}
	// After PARTITION no single flip should improve D.
	for _, o := range ex.Objects {
		if o.FlipDelta < -1e-9 {
			t.Errorf("object %d: profitable flip (ΔD=%v) survived PARTITION", o.Object, o.FlipDelta)
		}
		if o.Local && !o.Stored {
			t.Errorf("object %d local but unstored", o.Object)
		}
	}

	var sb strings.Builder
	if err := ex.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"page W", "chains:", "flip ΔD"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("explanation missing %q", want)
		}
	}
}

func TestAdoptPlacement(t *testing.T) {
	env := genEnv(t, 58)
	// Build a reference plan, then adopt it into a fresh planner.
	ref := NewPlanner(env)
	ref.PartitionAll()

	fresh := NewPlanner(env)
	if err := fresh.AdoptPlacement(ref.Placement()); err != nil {
		t.Fatal(err)
	}
	if err := fresh.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh.D()-ref.D()) > 1e-6 {
		t.Errorf("adopted D %v != reference %v", fresh.D(), ref.D())
	}
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		if !fresh.Placement().StoredSet(id).Equal(ref.Placement().StoredSet(id)) {
			t.Fatalf("site %d store differs after adoption", i)
		}
	}
}
