package core

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

// ObjectExplanation is one compulsory object's line in a page explanation.
type ObjectExplanation struct {
	Object workload.ObjectID
	Size   units.ByteSize
	Local  bool
	Stored bool
	// FlipDelta is the change in D if this object alone moved to the other
	// side right now (negative = the flip would reduce D).
	FlipDelta float64
	// FlipFeasible reports whether that flip respects Eq. 10: a flip to
	// local needs the object stored or storable in the site's free space.
	// A profitable-but-infeasible flip is the storage restoration's doing
	// (the paper's trade of time for space), not a planning defect.
	FlipFeasible bool
}

// PageExplanation is a structured account of why a page's split looks the
// way it does — the operator-facing view of the planner's decision.
type PageExplanation struct {
	Page       workload.PageID
	Site       workload.SiteID
	Freq       units.ReqPerSec
	HTMLSize   units.ByteSize
	LocalTime  units.Seconds // Eq. 3 under the estimates
	RemoteTime units.Seconds // Eq. 4
	PageTime   units.Seconds // Eq. 5
	// Bound names the chain that determines the page time.
	Bound   string
	Objects []ObjectExplanation
}

// AdoptPlacement rebuilds the planner's incremental state from an existing
// placement over the same workload (e.g. one loaded from disk), so
// explanations and further planning phases can run against it. The planner
// must be freshly constructed (all-remote).
func (pl *Planner) AdoptPlacement(p *model.Placement) error {
	w := pl.env.W
	if p.Workload().NumPages() != w.NumPages() || p.Workload().NumSites() != w.NumSites() {
		return fmt.Errorf("core: placement shaped for a different workload")
	}
	if err := p.CheckInvariants(); err != nil {
		return err
	}
	for i := range w.Sites {
		id := workload.SiteID(i)
		p.StoredSet(id).ForEach(func(k int) bool {
			pl.p.Store(id, workload.ObjectID(k))
			return true
		})
	}
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if p.CompLocal(pid, idx) {
				pl.flipComp(pid, idx, true)
			}
		}
		for idx := range w.Pages[j].Optional {
			if p.OptLocal(pid, idx) {
				pl.flipOpt(pid, idx, true)
			}
		}
	}
	return nil
}

// Explain produces the explanation for page j in the planner's current
// state. Objects are listed in decreasing size (PARTITION's visit order).
func (pl *Planner) Explain(j workload.PageID) *PageExplanation {
	pg := &pl.env.W.Pages[j]
	ex := &PageExplanation{
		Page:       j,
		Site:       pg.Site,
		Freq:       pg.Freq,
		HTMLSize:   pg.HTMLSize,
		LocalTime:  pl.localTime(j),
		RemoteTime: pl.remoteTime(j),
		PageTime:   pl.pageTime(j),
	}
	if ex.LocalTime >= ex.RemoteTime {
		ex.Bound = "local"
	} else {
		ex.Bound = "repository"
	}
	for idx, k := range pg.Compulsory {
		local := pl.p.CompLocal(j, idx)
		stored := pl.p.IsStored(pg.Site, k)
		feasible := true
		if !local && !stored && pl.env.W.ObjectSize(k) > pl.freeSpace(pg.Site) {
			feasible = false
		}
		ex.Objects = append(ex.Objects, ObjectExplanation{
			Object:       k,
			Size:         pl.env.W.ObjectSize(k),
			Local:        local,
			Stored:       stored,
			FlipDelta:    pl.previewFlipComp(j, idx, !local),
			FlipFeasible: feasible,
		})
	}
	sort.Slice(ex.Objects, func(a, b int) bool {
		if ex.Objects[a].Size != ex.Objects[b].Size {
			return ex.Objects[a].Size > ex.Objects[b].Size
		}
		return ex.Objects[a].Object < ex.Objects[b].Object
	})
	return ex
}

// Write renders the explanation.
func (ex *PageExplanation) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "page W%d @ S%d  f=%v  HTML %v\n", ex.Page, ex.Site, ex.Freq, ex.HTMLSize); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "chains: local %v | repository %v  ->  page time %v (%s-bound)\n",
		ex.LocalTime, ex.RemoteTime, ex.PageTime, ex.Bound); err != nil {
		return err
	}
	for _, o := range ex.Objects {
		side := "repository"
		if o.Local {
			side = "local     "
		}
		note := ""
		switch {
		case o.FlipDelta < -1e-9 && !o.FlipFeasible:
			note = "  (flip would help but the storage budget forbids it)"
		case o.FlipDelta < -1e-9:
			note = fmt.Sprintf("  (WARNING: feasible flip would improve D by %.3f)", -o.FlipDelta)
		case !o.Local && o.Stored:
			note = "  (stored but repository-assigned: the local chain is the bottleneck)"
		}
		if _, err := fmt.Fprintf(w, "  M%-6d %9v  %s  flip ΔD %+8.3f%s\n", o.Object, o.Size, side, o.FlipDelta, note); err != nil {
			return err
		}
	}
	return nil
}
