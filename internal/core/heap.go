package core

import "container/heap"

// heapItem is one candidate in a lazy-greedy selection: an opaque id with a
// possibly-stale key (smaller = apply earlier).
type heapItem struct {
	key float64
	id  int64
}

// lazyHeap is a min-heap of heapItems supporting the lazy-greedy pattern
// used by the restoration loops: keys are computed when items are pushed and
// may go stale as the state mutates; Pop'd items are re-validated by the
// caller and pushed back with a fresh key when they no longer beat the top.
// Between two state mutations every key recomputation is deterministic, so
// each item is refreshed at most once per mutation and the loop terminates.
type lazyHeap struct {
	items []heapItem
}

func (h *lazyHeap) Len() int           { return len(h.items) }
func (h *lazyHeap) Less(i, j int) bool { return h.items[i].key < h.items[j].key }
func (h *lazyHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *lazyHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *lazyHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

// newLazyHeap heapifies the given items in place.
func newLazyHeap(items []heapItem) *lazyHeap {
	h := &lazyHeap{items: items}
	heap.Init(h)
	return h
}

// push adds an item.
func (h *lazyHeap) push(it heapItem) { heap.Push(h, it) }

// pop removes and returns the minimum item; ok is false when empty.
func (h *lazyHeap) pop() (heapItem, bool) {
	if h.Len() == 0 {
		return heapItem{}, false
	}
	return heap.Pop(h).(heapItem), true
}

// peekKey returns the minimum key, or +inf semantics via ok=false when
// empty.
func (h *lazyHeap) peekKey() (float64, bool) {
	if h.Len() == 0 {
		return 0, false
	}
	return h.items[0].key, true
}

// popFresh implements the lazy-greedy pop: it returns the id whose *fresh*
// key (as computed by recompute) is minimal. Items whose recompute returns
// valid=false are dropped. ok=false when the heap is exhausted.
func (h *lazyHeap) popFresh(recompute func(id int64) (key float64, valid bool)) (int64, float64, bool) {
	const eps = 1e-12
	for {
		it, ok := h.pop()
		if !ok {
			return 0, 0, false
		}
		key, valid := recompute(it.id)
		if !valid {
			continue
		}
		if top, ok := h.peekKey(); ok && key > top+eps {
			// Fresh key no longer beats the rest — refresh and retry.
			// (Between two mutations recomputation is deterministic, so two
			// items cannot alternate indefinitely: A re-pushed over B and B
			// re-pushed over A would need key_A > key_B + eps and vice versa.)
			h.push(heapItem{key: key, id: it.id})
			continue
		}
		return it.id, key, true
	}
}
