package core

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestPlanEndToEndFeasible(t *testing.T) {
	env := genEnv(t, 31)
	env.Budgets = env.Budgets.Scale(env.W, 0.5, 0.5)
	p, res, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("plan infeasible: %v", res.Report.Violations())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Cached objective must match the pure evaluation.
	r := model.Evaluate(env, p)
	if diff := r.D - res.D; diff > 1e-6*r.D || diff < -1e-6*r.D {
		t.Errorf("result D %v != evaluated %v", res.D, r.D)
	}
}

func TestPlanParallelMatchesSequential(t *testing.T) {
	run := func(workers int) (*model.Placement, *Result) {
		env := genEnv(t, 32)
		env.Budgets = env.Budgets.Scale(env.W, 0.4, 0.6)
		// Refine included: it is per-site and must stay deterministic
		// under the parallel planner too.
		p, res, err := Plan(env, Options{Workers: workers, Refine: true})
		if err != nil {
			t.Fatal(err)
		}
		return p, res
	}
	p1, r1 := run(1)
	p4, r4 := run(4)
	if r1.D != r4.D {
		t.Errorf("D differs: sequential %v, parallel %v", r1.D, r4.D)
	}
	w := p1.Workload()
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if p1.CompLocal(pid, idx) != p4.CompLocal(pid, idx) {
				t.Fatalf("page %d comp %d differs between worker counts", j, idx)
			}
		}
	}
	for i := range w.Sites {
		if !p1.StoredSet(workload.SiteID(i)).Equal(p4.StoredSet(workload.SiteID(i))) {
			t.Fatalf("site %d stores differ between worker counts", i)
		}
	}
}

func TestPlanWithOffload(t *testing.T) {
	env := genEnv(t, 33)
	// First find the pre-offload repository load, then re-plan with a
	// 50 % cap on it.
	_, probe, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	pre := probe.Report.RepoLoad

	env2 := genEnv(t, 33)
	env2.Budgets.RepoCapacity = units.ReqPerSec(float64(pre) * 0.5)
	var log strings.Builder
	_, res, err := Plan(env2, Options{Workers: 2, Distributed: true, MessageLog: &log})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Offload.Ran {
		t.Fatal("offload should have run")
	}
	if !res.Feasible {
		t.Fatalf("plan infeasible: %v", res.Report.Violations())
	}
	if !strings.Contains(log.String(), "NewReq") {
		t.Error("distributed offload produced no message log")
	}
}

func TestPlanDeterministic(t *testing.T) {
	run := func() float64 {
		env := genEnv(t, 34)
		env.Budgets = env.Budgets.Scale(env.W, 0.5, 0.4)
		_, res, err := Plan(env, Options{Workers: 4, Distributed: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.D
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("two identical runs gave D=%v and D=%v", a, b)
	}
}

func TestPlanBeatsBaselinesUnconstrained(t *testing.T) {
	env := genEnv(t, 35)
	p, res, err := Plan(env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = p
	dLocal := model.D(env, model.AllLocal(env.W))
	dRemote := model.D(env, model.AllRemote(env.W))
	if res.D > dLocal+1e-9 || res.D > dRemote+1e-9 {
		t.Errorf("unconstrained plan D %v should beat local %v and remote %v", res.D, dLocal, dRemote)
	}
}

func TestPlanResultWrite(t *testing.T) {
	env := genEnv(t, 36)
	_, res, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.Write(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"plan: D=", "site  0", "replicas"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("result report missing %q:\n%s", want, sb.String())
		}
	}
}

func TestPlanSiteStatsConsistent(t *testing.T) {
	env := genEnv(t, 37)
	p, res, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	totalComp := 0
	for j := range env.W.Pages {
		totalComp += len(env.W.Pages[j].Compulsory)
	}
	gotComp := 0
	for _, s := range res.Sites {
		gotComp += s.LocalComp + s.RemoteComp
		if s.StoredObjects != p.StoredSet(s.Site).Count() {
			t.Errorf("site %d stored count mismatch", s.Site)
		}
	}
	if gotComp != totalComp {
		t.Errorf("compulsory accounting: %d != %d", gotComp, totalComp)
	}
}

func TestPlanMirroredWorkload(t *testing.T) {
	// Section 3: page copies are distinct pages. The full pipeline must
	// handle a mirrored workload, and per-copy placements may differ
	// (different sites see different estimates).
	cfg := workload.SmallConfig()
	cfg.MirrorHotPages = 1
	w := workload.MustGenerate(cfg, 122)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(122))
	if err != nil {
		t.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	p, res, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("mirrored plan infeasible: %v", res.Report.Violations())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(env)
	if err := pl.AdoptPlacement(p); err != nil {
		t.Fatal(err)
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}
