package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// tinyPropConfig is a very small workload for the randomized planner
// property test (many instances per run).
func tinyPropConfig() workload.Config {
	c := workload.SmallConfig()
	c.Sites = 2
	c.PagesPerSiteMin = 8
	c.PagesPerSiteMax = 15
	c.GlobalObjects = 200
	c.ObjectsPerSite = 40
	c.ObjectsPerMax = 80
	c.CompulsoryMin = 2
	c.CompulsoryMax = 8
	c.OptionalMin = 2
	c.OptionalMax = 6
	return c
}

// TestPlanPropertyRandomBudgets drives the full pipeline over random
// (workload seed, storage fraction, capacity fraction, repository fraction)
// tuples and asserts the planner's contract on every one:
//
//  1. the placement invariants hold (local marks backed by replicas),
//  2. the planner's cached objective equals the model's recomputation,
//  3. storage budgets are respected whenever they are above the HTML floor,
//  4. site capacity is respected whenever it is above the HTML-rate floor,
//  5. the plan never loses to BOTH baselines at once under the estimates.
func TestPlanPropertyRandomBudgets(t *testing.T) {
	cfg := tinyPropConfig()
	prop := func(seed uint64, sFrac, cFrac, rFrac float64) bool {
		// Map the raw quick inputs into sane ranges.
		storage := math.Abs(math.Mod(sFrac, 1))
		capacity := 0.05 + math.Abs(math.Mod(cFrac, 1))*0.95
		repo := 0.3 + math.Abs(math.Mod(rFrac, 1))*0.7

		w, err := workload.Generate(cfg, seed%1000)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(seed))
		if err != nil {
			t.Logf("estimates: %v", err)
			return false
		}
		budgets := model.FullBudgets(w).Scale(w, storage, capacity)
		env, err := model.NewEnv(w, est, budgets)
		if err != nil {
			t.Logf("env: %v", err)
			return false
		}

		// First plan unconstrained-repo to size C(R), then re-plan with it.
		probe, _, err := Plan(env, Options{Workers: 1})
		if err != nil {
			t.Logf("probe plan: %v", err)
			return false
		}
		pre := model.RepoLoad(env, probe)
		env.Budgets.RepoCapacity = units.ReqPerSec(float64(pre) * repo)

		pl := NewPlanner(env)
		pl.PartitionAll()
		for i := range w.Sites {
			pl.RestoreStorageSite(workload.SiteID(i))
			pl.RestoreProcessingSite(workload.SiteID(i))
		}
		pl.Offload(nil)

		// (1) + (2): cached state consistent with the pure model.
		if err := pl.VerifyConsistency(); err != nil {
			t.Logf("consistency: %v", err)
			return false
		}

		// (3) storage.
		for i := range w.Sites {
			id := workload.SiteID(i)
			if env.Budgets.Storage[i] >= w.HTMLStorageBytes(id) &&
				pl.Placement().StorageUsed(id) > env.Budgets.Storage[i] {
				t.Logf("site %d storage %v over %v (storage=%.2f)", i,
					pl.Placement().StorageUsed(id), env.Budgets.Storage[i], storage)
				return false
			}
		}
		// (4) capacity above the HTML floor.
		for i := range w.Sites {
			id := workload.SiteID(i)
			var htmlRate float64
			for _, pid := range w.Sites[i].Pages {
				htmlRate += float64(w.Pages[pid].Freq)
			}
			capRHS := float64(env.Budgets.SiteCapacity[i])
			if capRHS >= htmlRate && float64(pl.SiteLoad(id)) > capRHS*(1+1e-9)+1e-9 {
				t.Logf("site %d load %v over %v", i, pl.SiteLoad(id), capRHS)
				return false
			}
		}
		// (5) never worse than both baselines simultaneously.
		d := pl.D()
		dLocal := model.D(env, model.AllLocal(w))
		dRemote := model.D(env, model.AllRemote(w))
		if d > dLocal+1e-6 && d > dRemote+1e-6 {
			t.Logf("plan D %v loses to both local %v and remote %v", d, dLocal, dRemote)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
