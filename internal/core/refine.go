package core

import (
	"math"

	"repro/internal/workload"
)

// RefineSite is an extension beyond the paper's algorithm (Options.Refine):
// a post-restoration improvement sweep. The paper's storage restoration
// only ever *removes* replicas, and its re-partitioning step only re-marks
// objects that are still stored — so after evicting a 2 MB replica, a
// profitable 100 KB object that would now fit is never (re)considered.
// RefineSite closes that gap greedily: while some remote-marked reference
// has a negative ΔD and its object is stored or fits in the free space —
// and the site's capacity allows the extra requests — flip the best one
// (ΔD amortized over the bytes it must newly occupy). Each flip strictly
// decreases D, so the sweep terminates. Returns the number of flips.
func (pl *Planner) RefineSite(i workload.SiteID) (flips int) {
	capacity := float64(pl.env.Budgets.SiteCapacity[i])

	var items []heapItem
	for _, pid := range pl.env.W.Sites[i].Pages {
		pg := &pl.env.W.Pages[pid]
		for idx := range pg.Compulsory {
			if !pl.p.CompLocal(pid, idx) {
				items = append(items, heapItem{key: pl.refineKey(pid, idx, false), id: encodeRef(pid, idx, false)})
			}
		}
		for idx := range pg.Optional {
			if !pl.p.OptLocal(pid, idx) {
				items = append(items, heapItem{key: pl.refineKey(pid, idx, true), id: encodeRef(pid, idx, true)})
			}
		}
	}
	h := newLazyHeap(items)

	recompute := func(id int64) (float64, bool) {
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		var k workload.ObjectID
		var gain float64
		if optional {
			if pl.p.OptLocal(j, idx) {
				return 0, false
			}
			k = pg.Optional[idx].Object
			gain = float64(pg.Freq) * pg.Optional[idx].Prob
		} else {
			if pl.p.CompLocal(j, idx) {
				return 0, false
			}
			k = pg.Compulsory[idx]
			gain = float64(pg.Freq)
		}
		if !pl.p.IsStored(i, k) && pl.env.W.ObjectSize(k) > pl.freeSpace(i) {
			return 0, false
		}
		if !math.IsInf(capacity, 1) && pl.siteLocalLoad[i]+gain > capacity+1e-9 {
			return 0, false
		}
		key := pl.refineKey(j, idx, optional)
		if key >= -1e-12 {
			return 0, false // not an improvement (any more)
		}
		return key, true
	}

	for {
		id, _, ok := h.popFresh(recompute)
		if !ok {
			return flips
		}
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		var k workload.ObjectID
		if optional {
			k = pg.Optional[idx].Object
		} else {
			k = pg.Compulsory[idx]
		}
		if !pl.p.IsStored(i, k) {
			pl.p.Store(i, k)
		}
		if optional {
			pl.flipOpt(j, idx, true)
		} else {
			pl.flipComp(j, idx, true)
		}
		flips++
	}
}

// refineKey is ΔD of flipping the reference local, amortized over the new
// bytes the flip must occupy (zero for already-stored objects, which makes
// free improvements sort first).
func (pl *Planner) refineKey(j workload.PageID, idx int, optional bool) float64 {
	pg := &pl.env.W.Pages[j]
	var k workload.ObjectID
	var preview float64
	if optional {
		k = pg.Optional[idx].Object
		preview = pl.previewFlipOpt(j, idx, true)
	} else {
		k = pg.Compulsory[idx]
		preview = pl.previewFlipComp(j, idx, true)
	}
	if pl.p.IsStored(pg.Site, k) {
		return preview // free: no new bytes
	}
	size := float64(pl.env.W.ObjectSize(k))
	if size <= 0 {
		return preview
	}
	// Normalize per MB so stored (free) candidates still dominate.
	return preview / (size / 1e6)
}
