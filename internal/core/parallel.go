// Parallel planning engine. Three pieces let Plan scale to all cores while
// staying deterministic:
//
//   - PartitionParallel fans the PARTITION phase out over a page-level
//     worker pool. Partitioning one page touches only page-local state (its
//     placement row, byte counts and cached chain time), so workers need no
//     locks; each records its page's site-level contribution in a deltas
//     array, and a per-site reduce folds those contributions into the
//     planner's accumulators in the site's fixed page order. Float
//     accumulation order is therefore a function of the workload alone —
//     never of the worker count or the scheduler — so any Workers value
//     produces byte-identical placements and an identical D.
//
//   - scratchFor/commitScratch give the off-loading negotiation per-site
//     scratch planners: copy-on-write views of the placement's X/X' rows
//     plus private copies of the site-local accumulators. Candidate
//     flips/swaps are scored (and tentatively applied) concurrently on the
//     scratches; the coordinator then adopts each site's outcome serially.
//     Distinct sites touch disjoint planner state, so the scratch outcome is
//     bit-identical to running the same AcceptWorkload sequentially.
//
//   - The Planner's pageT / optLocalT / optRemoteT caches (planner.go) make
//     each concurrent evaluation cheap: flip scoring reads the cached
//     whole-page time and the precomputed per-link one-download times
//     instead of recomputing them per candidate.
package core

import (
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workload"
)

// partitionDelta is one page's contribution to its site's accumulators: the
// Eq. 7 objective deltas and the request rate moved from the repository to
// the local server by the page's PARTITION outcome.
type partitionDelta struct {
	d1    float64 // α1-side objective change, f·(T_new − T_old)
	d2    float64 // α2-side objective change over the page's optional links
	moved float64 // req/s moved local (added to Eq. 8, removed from Eq. 9)
}

// partitionPageScratch runs the PARTITION decision loop on page j, touching
// only page-local state: the page's placement row, its byte counts and its
// cached chain time. Site-level accounting is returned as a delta for the
// deterministic per-site reduce. The page must still be in its all-remote
// initial state. buf is the caller's reusable visit-order scratch buffer.
//
// The decision arithmetic — the running chain times and their comparison —
// is expression-for-expression the one in partitionPage, so the chosen split
// is identical to the sequential planner's.
func (pl *Planner) partitionPageScratch(j workload.PageID, buf *[]int) partitionDelta {
	pg := &pl.env.W.Pages[j]
	est := pl.siteEstimateOf(pg.Site)
	f := float64(pg.Freq)
	oldT := pl.pageT[j]

	order := (*buf)[:0]
	for idx := range pg.Compulsory {
		order = append(order, idx)
	}
	if !pl.UnsortedPartition {
		sort.Slice(order, func(a, b int) bool {
			sa := pl.env.W.ObjectSize(pg.Compulsory[order[a]])
			sb := pl.env.W.ObjectSize(pg.Compulsory[order[b]])
			if sa != sb {
				return sa > sb // decreasing size
			}
			return order[a] < order[b] // stable tie-break for determinism
		})
	}
	*buf = order

	local := est.LocalOvhd + est.LocalRate.TransferTime(pg.HTMLSize)
	remote := est.RepoOvhd
	var localB units.ByteSize
	nLocal := 0
	for _, idx := range order {
		size := pl.env.W.ObjectSize(pg.Compulsory[idx])
		remoteIf := remote + est.RepoRate.TransferTime(size)
		localIf := local + est.LocalRate.TransferTime(size)
		if remoteIf < localIf {
			remote = remoteIf // stays on the repository chain (X bit is 0)
		} else {
			local = localIf
			pl.p.SetCompLocal(j, idx, true)
			localB += size
			nLocal++
		}
	}
	pl.localBytes[j] += localB
	pl.remoteBytes[j] -= localB

	// Section 4.2 "store all optional objects": every optional link is
	// marked local; the replica allocation happens in the reduce.
	var d2, optMoved float64
	off := pl.optOff[j]
	for idx, l := range pg.Optional {
		pl.p.SetOptLocal(j, idx, true)
		d2 += f * l.Prob * float64(pl.optLocalT[off+idx]-pl.optRemoteT[off+idx])
		optMoved += f * l.Prob
	}

	newT := pl.computePageTime(j)
	pl.pageT[j] = newT
	return partitionDelta{
		d1:    f * float64(newT-oldT),
		d2:    d2,
		moved: float64(nLocal)*f + optMoved,
	}
}

// reducePartitionSite folds the partition deltas of site i's pages into the
// planner's site accumulators, allocates the replicas the decisions require
// and counts the local marks — always in the site's fixed page order, so the
// result is independent of how the parallel phase scheduled the pages.
func (pl *Planner) reducePartitionSite(i workload.SiteID, deltas []partitionDelta) {
	w := pl.env.W
	marks := pl.localMarks[i]
	for _, pid := range w.Sites[i].Pages {
		d := &deltas[pid]
		pl.d1Site[i] += d.d1
		pl.d2Site[i] += d.d2
		pl.siteLocalLoad[i] += d.moved
		pl.siteRepoLoad[i] -= d.moved
		pg := &w.Pages[pid]
		for idx, k := range pg.Compulsory {
			if pl.p.CompLocal(pid, idx) {
				pl.p.Store(i, k)
				marks[k]++
			}
		}
		for _, l := range pg.Optional {
			pl.p.Store(i, l.Object)
			marks[l.Object]++
		}
	}
}

// partitionChunk is the unit of work the page pool hands out: big enough to
// amortize the atomic fetch, small enough to balance the 400-800 page/site
// skew across workers.
const partitionChunk = 64

// PartitionParallel runs PARTITION over every page (and marks all optional
// links local) using up to workers goroutines, then reduces the site-level
// accounting deterministically. The planner must be freshly constructed
// (all-remote). Workers record their busy time on sp. With workers <= 1
// everything runs inline on the caller's goroutine; the results are
// byte-identical for every worker count.
func (pl *Planner) PartitionParallel(workers int, sp *telemetry.Span) {
	numPages := pl.env.W.NumPages()
	numSites := pl.env.W.NumSites()
	deltas := make([]partitionDelta, numPages)

	partitionRange := func(lo, hi int, buf *[]int) {
		for j := lo; j < hi; j++ {
			deltas[j] = pl.partitionPageScratch(workload.PageID(j), buf)
		}
	}

	if workers <= 1 {
		var t time.Time
		if sp != nil {
			t = time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
		}
		var buf []int
		partitionRange(0, numPages, &buf)
		for i := 0; i < numSites; i++ {
			pl.reducePartitionSite(workload.SiteID(i), deltas)
		}
		if sp != nil {
			sp.AddBusy(time.Since(t)) //repllint:allow determinism — span busy-time telemetry; never feeds planner state
		}
		return
	}

	// Fan out over pages: per-worker scratch buffers, chunked index ranges
	// claimed by an atomic cursor. Pages touch disjoint state, no locks.
	if w := (numPages + partitionChunk - 1) / partitionChunk; workers > w {
		workers = w
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var t time.Time
			if sp != nil {
				t = time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
			}
			var buf []int // per-worker scratch, reused across pages
			for {
				c := int(next.Add(1) - 1)
				lo := c * partitionChunk
				if lo >= numPages {
					break
				}
				hi := lo + partitionChunk
				if hi > numPages {
					hi = numPages
				}
				partitionRange(lo, hi, &buf)
			}
			if sp != nil {
				sp.AddBusy(time.Since(t)) //repllint:allow determinism — span busy-time telemetry; never feeds planner state
			}
		}()
	}
	wg.Wait()

	// Reduce, fanned over sites: each site's accumulators are disjoint and
	// its pages are folded in fixed order, so the reduction is race-free and
	// scheduling-independent.
	rw := workers
	if rw > numSites {
		rw = numSites
	}
	var nextSite atomic.Int64
	for w := 0; w < rw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var t time.Time
			if sp != nil {
				t = time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
			}
			for {
				i := int(nextSite.Add(1) - 1)
				if i >= numSites {
					break
				}
				pl.reducePartitionSite(workload.SiteID(i), deltas)
			}
			if sp != nil {
				sp.AddBusy(time.Since(t)) //repllint:allow determinism — span busy-time telemetry; never feeds planner state
			}
		}()
	}
	wg.Wait()
}

// scratchFor returns a scratch planner for site i: a copy-on-write view of
// the placement plus private copies of every accumulator the site's planning
// phases may write. The scratch shares the immutable environment, the
// reference index and the precomputed per-link times with its parent, so
// building one is O(pages + site state), not O(problem).
func (pl *Planner) scratchFor(i workload.SiteID) *Planner {
	marks := make(map[workload.ObjectID]int, len(pl.localMarks[i]))
	for k, v := range pl.localMarks[i] {
		marks[k] = v
	}
	scratchMarks := append([]map[workload.ObjectID]int(nil), pl.localMarks...)
	scratchMarks[i] = marks
	return &Planner{
		env:               pl.env,
		p:                 pl.p.SiteView(i),
		UnsortedPartition: pl.UnsortedPartition,
		NoRepartition:     pl.NoRepartition,
		localBytes:        append([]units.ByteSize(nil), pl.localBytes...),
		remoteBytes:       append([]units.ByteSize(nil), pl.remoteBytes...),
		pageT:             append([]units.Seconds(nil), pl.pageT...),
		optOff:            pl.optOff,
		optLocalT:         pl.optLocalT,
		optRemoteT:        pl.optRemoteT,
		d1Site:            append([]float64(nil), pl.d1Site...),
		d2Site:            append([]float64(nil), pl.d2Site...),
		siteLocalLoad:     append([]float64(nil), pl.siteLocalLoad...),
		siteRepoLoad:      append([]float64(nil), pl.siteRepoLoad...),
		refs:              pl.refs,
		localMarks:        scratchMarks,
	}
}

// commitScratch folds site i's state from a scratch planner back into pl:
// the site's pages' chain caches, its objective and load cells, its mark
// counters and its placement rows/store. Applied serially by a coordinator,
// commits for distinct sites compose exactly like running the sites'
// mutations sequentially, because no cell outside site i ever changes.
func (pl *Planner) commitScratch(sc *Planner, i workload.SiteID) {
	for _, j := range pl.env.W.Sites[i].Pages {
		pl.localBytes[j] = sc.localBytes[j]
		pl.remoteBytes[j] = sc.remoteBytes[j]
		pl.pageT[j] = sc.pageT[j]
	}
	pl.d1Site[i] = sc.d1Site[i]
	pl.d2Site[i] = sc.d2Site[i]
	pl.siteLocalLoad[i] = sc.siteLocalLoad[i]
	pl.siteRepoLoad[i] = sc.siteRepoLoad[i]
	pl.localMarks[i] = sc.localMarks[i]
	pl.p.AdoptSiteView(sc.p, i)
}

// OffloadParallel runs the off-loading negotiation with each phase's
// AcceptWorkload evaluations scored concurrently on per-site scratch
// planners; the coordinator adopts every site's accepted flips and swaps
// serially, in ascending site order, before starting the next phase. The
// placement, the statistics and the message log are bit-identical to the
// sequential Offload. Per-site scoring busy time accumulates on sp.
func (pl *Planner) OffloadParallel(log io.Writer, workers int, sp *telemetry.Span) OffloadStats {
	if workers <= 1 {
		return pl.Offload(log)
	}
	return pl.offload(log, func(reqs map[workload.SiteID]units.ReqPerSec) []AcceptResult {
		sites := make([]workload.SiteID, 0, len(reqs))
		for i := 0; i < pl.env.W.NumSites(); i++ {
			if _, ok := reqs[workload.SiteID(i)]; ok {
				sites = append(sites, workload.SiteID(i))
			}
		}
		scratches := make([]*Planner, len(sites))
		out := make([]AcceptResult, len(sites))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for s := range sites {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				var t time.Time
				if sp != nil {
					t = time.Now() //repllint:allow determinism — span busy-time telemetry; never feeds planner state
				}
				site := sites[s]
				sc := pl.scratchFor(site)
				out[s] = sc.AcceptWorkload(site, reqs[site])
				scratches[s] = sc
				if sp != nil {
					sp.AddBusy(time.Since(t)) //repllint:allow determinism — span busy-time telemetry; never feeds planner state
				}
			}(s)
		}
		wg.Wait()
		// Serial application by the coordinator, in site order.
		for s, site := range sites {
			pl.commitScratch(scratches[s], site)
		}
		return out
	})
}
