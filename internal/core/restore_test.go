package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestRestoreStorageEnforcesBudget(t *testing.T) {
	env := genEnv(t, 11)
	pl := NewPlanner(env)
	pl.PartitionAll()

	// Tighten every site's storage to 30 % of the MO requirement.
	env.Budgets = env.Budgets.Scale(env.W, 0.3, 1)
	dBefore := pl.D()
	totalDeallocs := 0
	for i := range env.W.Sites {
		totalDeallocs += pl.RestoreStorageSite(workload.SiteID(i))
	}
	if totalDeallocs == 0 {
		t.Fatal("expected deallocations at 30% storage")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		if used, lim := pl.p.StorageUsed(id), env.Budgets.Storage[i]; used > lim {
			t.Errorf("site %d: storage %v over budget %v after restoration", i, used, lim)
		}
	}
	if pl.D() < dBefore-1e-9 {
		// Deallocation should not improve the estimated objective by much —
		// it trades time for space. (Small improvements are possible when a
		// greedy partition left a slightly suboptimal split.)
		t.Logf("note: D improved from %v to %v during restoration", dBefore, pl.D())
	}
}

func TestRestoreStorageNoopWhenFits(t *testing.T) {
	env := genEnv(t, 12)
	pl := NewPlanner(env)
	pl.PartitionAll()
	for i := range env.W.Sites {
		if d := pl.RestoreStorageSite(workload.SiteID(i)); d != 0 {
			t.Errorf("site %d: %d deallocations under full budgets", i, d)
		}
	}
}

func TestRestoreStorageZeroBudgetRemovesEverything(t *testing.T) {
	env := genEnv(t, 13)
	pl := NewPlanner(env)
	pl.PartitionAll()
	env.Budgets = env.Budgets.Scale(env.W, 0, 1) // HTML only
	for i := range env.W.Sites {
		pl.RestoreStorageSite(workload.SiteID(i))
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		if n := pl.p.StoredSet(id).Count(); n != 0 {
			t.Errorf("site %d still stores %d objects at 0%% budget", i, n)
		}
		if pl.p.StorageUsed(id) != env.W.HTMLStorageBytes(id) {
			t.Errorf("site %d storage not reduced to HTML floor", i)
		}
	}
	// With nothing stored, everything is remote: D equals the all-remote D.
	want := model.D(env, model.AllRemote(env.W))
	if got := pl.D(); math.Abs(got-want) > 1e-6*want {
		t.Errorf("0%%-storage D = %v, want all-remote %v", got, want)
	}
}

func TestRestoreStorageRepartitionRecovers(t *testing.T) {
	// Hand-built: two compulsory objects; partition keeps the big one
	// local and the small one remote. Storage forces the big one out; the
	// re-partition step should then pull the (still affordable) small one
	// local if it helps. Sizes chosen so both can't fit.
	w := &workload.Workload{
		Config: workload.Config{Alpha1: 1, Alpha2: 1},
		Objects: []workload.Object{
			{ID: 0, Size: 100 * units.KB},
			{ID: 1, Size: 60 * units.KB},
		},
		Pages: []workload.Page{{
			ID: 0, Site: 0, HTMLSize: 10 * units.KB, Freq: 1,
			Compulsory: []workload.ObjectID{0, 1},
		}},
		Sites: []workload.Site{{ID: 0, Pages: []workload.PageID{0}, Objects: []workload.ObjectID{0, 1}, Capacity: 1000}},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	est := &netsim.Estimates{Sites: []netsim.SiteEstimate{{
		LocalRate: 10 * units.KBPerSec,
		RepoRate:  5 * units.KBPerSec,
		LocalOvhd: 1,
		RepoOvhd:  2,
	}}}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(env)
	pl.PartitionSite(0)
	// partition: local=2,remote=2; 100K: 22 vs 12 → local; 60K: 2+12=14 vs 12+6=18 → remote.
	if !pl.p.CompLocal(0, 0) || pl.p.CompLocal(0, 1) {
		t.Fatalf("unexpected partition: %v %v", pl.p.CompLocal(0, 0), pl.p.CompLocal(0, 1))
	}

	// Storage budget: HTML + 70 KB — the 100 KB replica must go; the 60 KB
	// object fits but is not stored... dealloc of object 0 leaves nothing
	// stored, so the improve step has nothing local to flip. Verify the
	// placement is consistent and within budget anyway.
	env.Budgets.Storage[0] = 10*units.KB + 70*units.KB
	pl.RestoreStorageSite(0)
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	if pl.p.StorageUsed(0) > env.Budgets.Storage[0] {
		t.Error("storage still over budget")
	}
	if pl.p.IsStored(0, 0) {
		t.Error("100 KB object should have been deallocated")
	}
}

func TestRestoreProcessingEnforcesCapacity(t *testing.T) {
	env := genEnv(t, 14)
	pl := NewPlanner(env)
	pl.PartitionAll()

	// Squeeze capacity to 15 % (≈22 req/s against an all-local demand of
	// ≈40 req/s in SmallConfig) — this must force flips.
	env.Budgets = env.Budgets.Scale(env.W, 1, 0.15)
	flips := 0
	for i := range env.W.Sites {
		flips += pl.RestoreProcessingSite(workload.SiteID(i))
	}
	if flips == 0 {
		t.Fatal("expected processing flips at 40% capacity")
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		load, cap := float64(pl.SiteLoad(id)), float64(env.Budgets.SiteCapacity[i])
		if load > cap*(1+1e-9)+1e-9 {
			t.Errorf("site %d: load %v over capacity %v", i, load, cap)
		}
	}
}

func TestRestoreProcessingInfeasibleFloor(t *testing.T) {
	// Capacity below the HTML-request floor: restoration moves every MO
	// remote and stops at the floor.
	env := genEnv(t, 15)
	pl := NewPlanner(env)
	pl.PartitionAll()
	env.Budgets = env.Budgets.Scale(env.W, 1, 0) // zero capacity
	for i := range env.W.Sites {
		pl.RestoreProcessingSite(workload.SiteID(i))
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		// Load should equal the page-request rate (HTML only).
		var htmlRate float64
		for _, pid := range env.W.Sites[i].Pages {
			htmlRate += float64(env.W.Pages[pid].Freq)
		}
		if got := float64(pl.SiteLoad(id)); math.Abs(got-htmlRate) > 1e-9 {
			t.Errorf("site %d: floor load %v, want HTML-only %v", i, got, htmlRate)
		}
		// Everything must be remote and the dead replicas deallocated.
		for _, pid := range env.W.Sites[i].Pages {
			pg := &env.W.Pages[pid]
			for idx := range pg.Compulsory {
				if pl.p.CompLocal(pid, idx) {
					t.Fatalf("page %d still downloads a compulsory object locally", pid)
				}
			}
			for idx := range pg.Optional {
				if pl.p.OptLocal(pid, idx) {
					t.Fatalf("page %d still downloads an optional object locally", pid)
				}
			}
		}
		if n := pl.p.StoredSet(id).Count(); n != 0 {
			t.Errorf("site %d: %d unused replicas survive zero-capacity restoration", i, n)
		}
	}
}

func TestRestoreProcessingNoopUnderCapacity(t *testing.T) {
	env := genEnv(t, 16)
	pl := NewPlanner(env)
	pl.PartitionAll()
	for i := range env.W.Sites {
		if f := pl.RestoreProcessingSite(workload.SiteID(i)); f != 0 {
			t.Errorf("site %d: %d flips under default capacity", i, f)
		}
	}
}

func TestDeallocCostAdditive(t *testing.T) {
	// deallocCost must equal the actual ΔD of deallocate.
	env := genEnv(t, 17)
	pl := NewPlanner(env)
	pl.PartitionAll()
	for i := range env.W.Sites {
		id := workload.SiteID(i)
		checked := 0
		pl.p.StoredSet(id).ForEach(func(kk int) bool {
			k := workload.ObjectID(kk)
			cost := pl.deallocCost(id, k)
			before := pl.D()
			pl.deallocate(id, k)
			got := pl.D() - before
			if math.Abs(got-cost) > 1e-6*(1+math.Abs(cost)) {
				t.Errorf("site %d object %d: deallocCost %v, actual ΔD %v", i, k, cost, got)
			}
			checked++
			return checked < 5
		})
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestImprovePageOnlyImproves(t *testing.T) {
	env := genEnv(t, 18)
	pl := NewPlanner(env)
	pl.PartitionAll()
	// Force a degradation: flip the largest local object of each first page
	// remote (keeping it stored), then improvePage must re-flip it.
	for i := range env.W.Sites {
		pid := env.W.Sites[i].Pages[0]
		pg := &env.W.Pages[pid]
		for idx := range pg.Compulsory {
			if pl.p.CompLocal(pid, idx) {
				before := pl.D()
				pl.flipComp(pid, idx, false)
				if pl.D() < before {
					continue // was actually an improvement; nothing to test
				}
				degraded := pl.D()
				flips := pl.improvePage(pid)
				if flips == 0 {
					t.Errorf("site %d page %d: improvePage recovered nothing", i, pid)
				}
				// improvePage never increases D; it may settle in a 1-flip
				// local optimum different from (and slightly worse than)
				// the pre-degradation assignment.
				if pl.D() > degraded+1e-9 {
					t.Errorf("site %d page %d: improvePage increased D (%v > %v)", i, pid, pl.D(), degraded)
				}
				break
			}
		}
	}
	if err := pl.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestRefineSiteImproves(t *testing.T) {
	env := genEnv(t, 59)
	env.Budgets = env.Budgets.Scale(env.W, 0.4, 1)
	base := NewPlanner(env)
	base.PartitionAll()
	for i := range env.W.Sites {
		base.RestoreStorageSite(workload.SiteID(i))
		base.RestoreProcessingSite(workload.SiteID(i))
	}
	dBefore := base.D()

	flips := 0
	for i := range env.W.Sites {
		flips += base.RefineSite(workload.SiteID(i))
	}
	if flips == 0 {
		t.Fatal("refinement found nothing at 40% storage (expected leftover space)")
	}
	if base.D() >= dBefore {
		t.Errorf("refinement did not reduce D: %v -> %v", dBefore, base.D())
	}
	if err := base.VerifyConsistency(); err != nil {
		t.Fatal(err)
	}
	// Constraints still hold.
	r := model.Evaluate(env, base.Placement())
	for _, s := range r.Sites {
		if !s.StorageOK() || !s.LoadOK() {
			t.Errorf("site %d violated after refinement", s.Site)
		}
	}
	// Idempotent: a second sweep finds nothing.
	again := 0
	for i := range env.W.Sites {
		again += base.RefineSite(workload.SiteID(i))
	}
	if again != 0 {
		t.Errorf("second refinement flipped %d more", again)
	}
}

func TestPlanWithRefineOption(t *testing.T) {
	env := genEnv(t, 60)
	env.Budgets = env.Budgets.Scale(env.W, 0.4, 1)
	_, plain, err := Plan(env, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	env2 := genEnv(t, 60)
	env2.Budgets = env2.Budgets.Scale(env2.W, 0.4, 1)
	_, refined, err := Plan(env2, Options{Workers: 1, Refine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.D > plain.D {
		t.Errorf("refined plan worse: %v vs %v", refined.D, plain.D)
	}
	if !refined.Feasible {
		t.Error("refined plan infeasible")
	}
}
