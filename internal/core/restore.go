package core

import (
	"math"

	"repro/internal/workload"
)

// ref id encoding for the processing-restoration heap: a (page, idx,
// optional) triple packed into an int64. Optional indices go up to the
// workload's optional-per-page maximum; 21 bits of idx is far beyond any
// realistic page.
func encodeRef(j workload.PageID, idx int, optional bool) int64 {
	id := int64(j)<<22 | int64(idx)<<1
	if optional {
		id |= 1
	}
	return id
}

func decodeRef(id int64) (workload.PageID, int, bool) {
	return workload.PageID(id >> 22), int((id >> 1) & ((1 << 21) - 1)), id&1 == 1
}

// deallocCost returns the increase in D caused by deallocating object k at
// site i: every page currently downloading k locally is forced to the
// repository. References live on distinct pages (an object appears at most
// once per page), so the per-reference previews are exactly additive.
func (pl *Planner) deallocCost(i workload.SiteID, k workload.ObjectID) float64 {
	cost := 0.0
	for _, r := range pl.refs[i][k] {
		if r.optional {
			if pl.p.OptLocal(r.page, r.idx) {
				cost += pl.previewFlipOpt(r.page, r.idx, false)
			}
		} else if pl.p.CompLocal(r.page, r.idx) {
			cost += pl.previewFlipComp(r.page, r.idx, false)
		}
	}
	return cost
}

// deallocate removes object k from site i's store, flipping every local
// reference to the repository first. It returns the affected pages.
func (pl *Planner) deallocate(i workload.SiteID, k workload.ObjectID) []workload.PageID {
	var affected []workload.PageID
	for _, r := range pl.refs[i][k] {
		if r.optional {
			if pl.p.OptLocal(r.page, r.idx) {
				pl.flipOpt(r.page, r.idx, false)
				affected = append(affected, r.page)
			}
		} else if pl.p.CompLocal(r.page, r.idx) {
			pl.flipComp(r.page, r.idx, false)
			affected = append(affected, r.page)
		}
	}
	pl.p.Unstore(i, k)
	return affected
}

// improvePage re-examines page j after a deallocation disturbed its chains
// (Section 4.2's re-partitioning step): objects that are stored at the
// page's site but marked for repository download may now reduce the
// retrieval time if flipped local. Flips repeat until none improves D, so
// the page ends in a local optimum of single flips. Only already-stored
// objects are considered — this step never allocates storage.
func (pl *Planner) improvePage(j workload.PageID) (flips int) {
	pg := &pl.env.W.Pages[j]
	site := pg.Site
	for {
		improved := false
		for idx, k := range pg.Compulsory {
			if !pl.p.CompLocal(j, idx) && pl.p.IsStored(site, k) &&
				pl.previewFlipComp(j, idx, true) < -1e-12 {
				pl.flipComp(j, idx, true)
				flips++
				improved = true
			}
		}
		for idx, l := range pg.Optional {
			if !pl.p.OptLocal(j, idx) && pl.p.IsStored(site, l.Object) &&
				pl.previewFlipOpt(j, idx, true) < -1e-12 {
				pl.flipOpt(j, idx, true)
				flips++
				improved = true
			}
		}
		if !improved {
			return flips
		}
	}
}

// RestoreStorageSite enforces Eq. 10 at site i by greedy deallocation: while
// the store exceeds the budget, it removes the stored object with the least
// ΔD per byte freed (the amortization the paper prescribes for judicious
// treatment of large objects), then re-partitions the pages that lost a
// local download. Returns the number of deallocations.
func (pl *Planner) RestoreStorageSite(i workload.SiteID) (deallocs int) {
	budget := pl.env.Budgets.Storage[i]
	if pl.p.StorageUsed(i) <= budget {
		return 0
	}

	var items []heapItem
	pl.p.StoredSet(i).ForEach(func(kk int) bool {
		k := workload.ObjectID(kk)
		size := float64(pl.env.W.ObjectSize(k))
		items = append(items, heapItem{key: pl.deallocCost(i, k) / size, id: int64(k)})
		return true
	})
	h := newLazyHeap(items)

	recompute := func(id int64) (float64, bool) {
		k := workload.ObjectID(id)
		if !pl.p.IsStored(i, k) {
			return 0, false
		}
		return pl.deallocCost(i, k) / float64(pl.env.W.ObjectSize(k)), true
	}

	for pl.p.StorageUsed(i) > budget {
		id, _, ok := h.popFresh(recompute)
		if !ok {
			// Nothing left to deallocate; only HTML remains. The budget is
			// below the HTML floor — report infeasibility via the caller's
			// constraint check.
			return deallocs
		}
		affected := pl.deallocate(i, workload.ObjectID(id))
		deallocs++
		if !pl.NoRepartition {
			for _, j := range affected {
				pl.improvePage(j)
			}
		}
	}
	return deallocs
}

// RestoreProcessingSite enforces Eq. 8 at site i: while the site's request
// load exceeds its capacity, the (page, object) local download whose move to
// the repository costs the least ΔD per req/s freed is flipped remote. An
// object left with no local marks is deallocated, further freeing storage
// (Section 4.2). Returns the number of flips.
func (pl *Planner) RestoreProcessingSite(i workload.SiteID) (flips int) {
	capacity := float64(pl.env.Budgets.SiteCapacity[i])
	if math.IsInf(capacity, 1) || pl.siteLocalLoad[i] <= capacity {
		return 0
	}

	var items []heapItem
	for _, pid := range pl.env.W.Sites[i].Pages {
		pg := &pl.env.W.Pages[pid]
		for idx := range pg.Compulsory {
			if pl.p.CompLocal(pid, idx) {
				key := pl.previewFlipComp(pid, idx, false) / float64(pg.Freq)
				items = append(items, heapItem{key: key, id: encodeRef(pid, idx, false)})
			}
		}
		for idx, l := range pg.Optional {
			if pl.p.OptLocal(pid, idx) {
				freed := float64(pg.Freq) * l.Prob
				key := pl.previewFlipOpt(pid, idx, false) / freed
				items = append(items, heapItem{key: key, id: encodeRef(pid, idx, true)})
			}
		}
	}
	h := newLazyHeap(items)

	recompute := func(id int64) (float64, bool) {
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		if optional {
			if !pl.p.OptLocal(j, idx) {
				return 0, false
			}
			freed := float64(pg.Freq) * pg.Optional[idx].Prob
			return pl.previewFlipOpt(j, idx, false) / freed, true
		}
		if !pl.p.CompLocal(j, idx) {
			return 0, false
		}
		return pl.previewFlipComp(j, idx, false) / float64(pg.Freq), true
	}

	for pl.siteLocalLoad[i] > capacity {
		id, _, ok := h.popFresh(recompute)
		if !ok {
			// Every MO download already goes to the repository; the residual
			// load is the HTML requests themselves, which cannot move.
			return flips
		}
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		var k workload.ObjectID
		if optional {
			k = pg.Optional[idx].Object
			pl.flipOpt(j, idx, false)
		} else {
			k = pg.Compulsory[idx]
			pl.flipComp(j, idx, false)
		}
		flips++
		if pl.localMarks[i][k] == 0 {
			pl.p.Unstore(i, k)
		}
	}
	return flips
}
