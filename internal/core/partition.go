package core

import (
	"sort"

	"repro/internal/workload"
)

// PartitionPage runs the paper's PARTITION(W_j) heuristic on one page:
// compulsory objects are visited in decreasing size order, each tentatively
// added to both chains, and kept on the side that leaves the smaller
// running maximum — exactly the pseudocode of Section 4.2 (the object goes
// to the repository iff RemoteDownload + transfer < LocalDownload +
// transfer). Objects assigned locally are stored at the page's site.
//
// Per the pseudocode the remote running time starts at Ovhd(R, S_i) even if
// no object ends up remote; the planner's cached Eq. 4 value (0 for an
// empty remote chain) is re-established by the flips themselves.
func (pl *Planner) PartitionPage(j workload.PageID) {
	pl.partitionPage(j, !pl.UnsortedPartition)
}

// PartitionPageUnsorted is the ablation of PARTITION's decreasing-size
// visit order: objects are considered in their page order instead. Used by
// the ablation benchmarks to quantify what the sort buys.
func (pl *Planner) PartitionPageUnsorted(j workload.PageID) {
	pl.partitionPage(j, false)
}

func (pl *Planner) partitionPage(j workload.PageID, bySize bool) {
	pg := &pl.env.W.Pages[j]
	est := pl.siteEstimateOf(pg.Site)

	order := make([]int, len(pg.Compulsory))
	for i := range order {
		order[i] = i
	}
	if bySize {
		sort.Slice(order, func(a, b int) bool {
			sa := pl.env.W.ObjectSize(pg.Compulsory[order[a]])
			sb := pl.env.W.ObjectSize(pg.Compulsory[order[b]])
			if sa != sb {
				return sa > sb // decreasing size
			}
			return order[a] < order[b] // stable tie-break for determinism
		})
	}

	local := est.LocalOvhd + est.LocalRate.TransferTime(pg.HTMLSize)
	remote := est.RepoOvhd

	for _, idx := range order {
		size := pl.env.W.ObjectSize(pg.Compulsory[idx])
		remoteIf := remote + est.RepoRate.TransferTime(size)
		localIf := local + est.LocalRate.TransferTime(size)
		if remoteIf < localIf {
			remote = remoteIf
			pl.flipComp(j, idx, false)
		} else {
			local = localIf
			pl.p.Store(pg.Site, pg.Compulsory[idx])
			pl.flipComp(j, idx, true)
		}
	}
}

// AdmitPage runs the full per-page admission of PARTITION on page j at its
// current host site: the compulsory split, then storing every optional
// object locally with its download marked local (Section 4.2's "Store all
// optional objects"). It is PartitionSite restricted to one page — the
// primitive the repair planner uses to re-home a dead site's page onto a
// survivor without disturbing the survivor's other pages. Constraint
// restoration afterwards trims whatever does not fit.
func (pl *Planner) AdmitPage(j workload.PageID) {
	pl.PartitionPage(j)
	pg := &pl.env.W.Pages[j]
	for idx, l := range pg.Optional {
		pl.p.Store(pg.Site, l.Object)
		pl.flipOpt(j, idx, true)
	}
}

// PartitionSite runs PARTITION on every page of site i and then stores all
// optional objects locally (Section 4.2: "Store all optional objects"),
// marking their downloads local. Constraint restoration afterwards trims
// whatever does not fit.
func (pl *Planner) PartitionSite(i workload.SiteID) {
	for _, pid := range pl.env.W.Sites[i].Pages {
		pl.PartitionPage(pid)
	}
	for _, pid := range pl.env.W.Sites[i].Pages {
		pg := &pl.env.W.Pages[pid]
		for idx, l := range pg.Optional {
			pl.p.Store(i, l.Object)
			pl.flipOpt(pid, idx, true)
		}
	}
}

// PartitionAll runs PartitionSite on every site sequentially.
func (pl *Planner) PartitionAll() {
	for i := range pl.env.W.Sites {
		pl.PartitionSite(workload.SiteID(i))
	}
}
