package core

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/units"
	"repro/internal/workload"
)

// OffloadStats summarizes an off-loading negotiation.
type OffloadStats struct {
	Ran            bool // the protocol had to run at all
	Rounds         int  // message-exchange phases
	Messages       int  // total protocol messages
	Restored       bool // Eq. 9 holds on exit
	RepoLoadBefore units.ReqPerSec
	RepoLoadAfter  units.ReqPerSec
	MovedLocal     units.ReqPerSec // workload moved from repository to sites
	NewReplicas    int
	Swaps          int
}

// maxOffloadRounds bounds the negotiation: each round either restores the
// constraint or moves at least one site to L3, so sites+2 rounds suffice;
// the bound is a backstop against pathological float behavior.
const maxOffloadRounds = 64

// Offload runs the repository's OFF_LOADING_REPOSITORY loop (Section 4.2)
// against the planner's sites, sequentially. The distributed variant in
// RunOffloadDistributed exchanges the same messages over channels and
// produces the identical placement; this form is the deterministic
// reference. log, when non-nil, receives a line per protocol message.
func (pl *Planner) Offload(log io.Writer) OffloadStats {
	return pl.offload(log, func(reqs map[workload.SiteID]units.ReqPerSec) []AcceptResult {
		out := make([]AcceptResult, 0, len(reqs))
		for i := 0; i < pl.env.W.NumSites(); i++ {
			if target, ok := reqs[workload.SiteID(i)]; ok {
				out = append(out, pl.AcceptWorkload(workload.SiteID(i), target))
			}
		}
		return out
	})
}

// RunOffloadDistributed runs the same negotiation with one goroutine per
// local server, exchanging request/answer messages over channels — the
// shape the paper describes, where each phase is a round of messages
// between the repository and the servers. Distinct sites mutate disjoint
// planner state, so the concurrent acceptance is race-free, and because the
// coordinator waits for all answers before the next phase the outcome is
// identical to Offload.
func (pl *Planner) RunOffloadDistributed(log io.Writer) OffloadStats {
	type job struct {
		site   workload.SiteID
		target units.ReqPerSec
	}
	return pl.offload(log, func(reqs map[workload.SiteID]units.ReqPerSec) []AcceptResult {
		jobs := make(chan job, len(reqs))
		answers := make(chan AcceptResult, len(reqs))
		var wg sync.WaitGroup
		for w := 0; w < len(reqs); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for jb := range jobs {
					answers <- pl.AcceptWorkload(jb.site, jb.target)
				}
			}()
		}
		for site, target := range reqs {
			jobs <- job{site, target}
		}
		close(jobs)
		wg.Wait()
		close(answers)
		out := make([]AcceptResult, 0, len(reqs))
		for a := range answers {
			out = append(out, a)
		}
		return out
	})
}

// offload is the coordinator loop shared by both execution modes; dispatch
// runs one phase of NewReq messages and returns the sites' answers.
func (pl *Planner) offload(log io.Writer, dispatch func(map[workload.SiteID]units.ReqPerSec) []AcceptResult) OffloadStats {
	stats := OffloadStats{RepoLoadBefore: pl.RepoLoad()}
	capR := float64(pl.env.Budgets.RepoCapacity)
	logf := func(format string, args ...interface{}) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}

	pR := float64(pl.RepoLoad())
	stats.Messages += pl.env.W.NumSites() // the initial status messages
	logf("repository: collected %d status messages, P(R)=%.2f req/s, C(R)=%.2f req/s\n",
		pl.env.W.NumSites(), pR, capR)
	if math.IsInf(capR, 1) || pR <= capR {
		stats.Restored = true
		stats.RepoLoadAfter = units.ReqPerSec(pR)
		return stats
	}
	stats.Ran = true

	exhausted := make(map[workload.SiteID]bool) // the L3 set accumulated across phases

	for stats.Rounds = 1; stats.Rounds <= maxOffloadRounds; stats.Rounds++ {
		pR = float64(pl.RepoLoad())
		if pR <= capR {
			break
		}
		excess := pR - capR

		// Classify sites. An unconstrained site's free capacity is clamped
		// to the excess: it can absorb everything, and the clamp keeps the
		// proportional split finite.
		var l1, l2 []workload.SiteID
		freeCap := make(map[workload.SiteID]float64)
		for i := 0; i < pl.env.W.NumSites(); i++ {
			id := workload.SiteID(i)
			if exhausted[id] {
				continue
			}
			fc := pl.freeCapacity(id)
			if math.IsInf(fc, 1) {
				fc = excess
			}
			if fc <= 1e-9 {
				continue
			}
			freeCap[id] = fc
			if pl.freeSpace(id) > 0 {
				l1 = append(l1, id)
			} else {
				l2 = append(l2, id)
			}
		}
		if len(l1) == 0 && len(l2) == 0 {
			logf("repository: L1 and L2 empty — constraint cannot be restored (%.2f > %.2f)\n", pR, capR)
			break
		}

		pL1 := 0.0
		for _, id := range l1 {
			pL1 += freeCap[id]
		}
		pL2 := 0.0
		for _, id := range l2 {
			pL2 += freeCap[id]
		}

		reqs := make(map[workload.SiteID]units.ReqPerSec)
		if excess <= pL1 {
			for _, id := range l1 {
				reqs[id] = units.ReqPerSec(freeCap[id] * excess / pL1)
			}
		} else {
			for _, id := range l1 {
				reqs[id] = units.ReqPerSec(freeCap[id])
			}
			if pL2 > 0 {
				over := math.Min(excess-pL1, pL2)
				for _, id := range l2 {
					reqs[id] = units.ReqPerSec(freeCap[id] * over / pL2)
				}
			}
		}
		logf("repository: round %d, excess %.2f req/s, |L1|=%d (P=%.2f), |L2|=%d (P=%.2f)\n",
			stats.Rounds, excess, len(l1), pL1, len(l2), pL2)
		for _, id := range l1 {
			logf("  -> S%d (L1): NewReq %.3f req/s\n", id, float64(reqs[id]))
		}
		for _, id := range l2 {
			if r, ok := reqs[id]; ok {
				logf("  -> S%d (L2): NewReq %.3f req/s\n", id, float64(r))
			}
		}

		answers := dispatch(reqs)
		stats.Messages += 2 * len(reqs) // NewReq out + answer back
		for _, a := range answers {
			stats.MovedLocal += a.Accepted
			stats.NewReplicas += a.Stored
			stats.Swaps += a.Swapped
			logf("  <- S%d: accepted %.3f of %.3f req/s (stored %d, swapped %d)\n",
				a.Site, float64(a.Accepted), float64(a.Target), a.Stored, a.Swapped)
			if float64(a.Accepted) < float64(a.Target)-1e-6 {
				exhausted[a.Site] = true // the site reports it now belongs to L3
				logf("     S%d moves to L3\n", a.Site)
			}
		}
	}

	stats.RepoLoadAfter = pl.RepoLoad()
	stats.Restored = float64(stats.RepoLoadAfter) <= capR*(1+1e-9)+1e-9
	stats.Messages += pl.env.W.NumSites() // Off_Loading_END broadcast
	logf("repository: done after %d rounds, P(R)=%.2f req/s (restored=%v)\n",
		stats.Rounds, float64(stats.RepoLoadAfter), stats.Restored)
	return stats
}
