package core

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestOptimalPagePartitionHandExample(t *testing.T) {
	env := handEnv(t) // objects 100/50/20 KB, B_S=10, B_R=5 KB/s, Ovhd 1/2 s
	pl := NewPlanner(env)
	mask, best := OptimalPagePartition(pl, 0)

	// Exhaustive check over all 8 subsets at exact sizes.
	sizes := []units.ByteSize{100 * units.KB, 50 * units.KB, 20 * units.KB}
	bestExact := math.Inf(1)
	var bestMask uint64
	for m := uint64(0); m < 8; m++ {
		var lb, rb units.ByteSize
		for i, s := range sizes {
			if m&(1<<uint(i)) != 0 {
				lb += s
			} else {
				rb += s
			}
		}
		local := 1 + float64(10*units.KB+lb)/float64(10*units.KBPerSec)
		remote := 0.0
		if rb > 0 {
			remote = 2 + float64(rb)/float64(5*units.KBPerSec)
		}
		v := math.Max(local, remote)
		if v < bestExact {
			bestExact = v
			bestMask = m
		}
	}
	if math.Abs(float64(best)-bestExact) > 0.5 { // within quantization slack
		t.Errorf("optimal time %v, exhaustive %v", best, bestExact)
	}
	if mask != bestMask {
		// Equal-value ties are acceptable; verify values instead of masks.
		t.Logf("mask %b differs from exhaustive %b (tie or quantization)", mask, bestMask)
	}
}

func TestGreedyGapSmall(t *testing.T) {
	env := genEnv(t, 55)
	pl := NewPlanner(env)
	pl.PartitionAll()
	mean, max := GreedyGap(pl)
	if mean < 0 || max < mean {
		t.Fatalf("nonsensical gaps: mean %v max %v", mean, max)
	}
	// PARTITION is a strong heuristic for this objective: on Table-1-style
	// instances its mean per-page gap stays within a few percent and no
	// page should be off by more than ~25 %.
	if mean > 3 {
		t.Errorf("mean greedy gap %.2f%%, expected ≤3%%", mean)
	}
	if max > 25 {
		t.Errorf("max greedy gap %.2f%%, expected ≤25%%", max)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	env := genEnv(t, 56)
	pl := NewPlanner(env)
	pl.PartitionAll()
	checked := 0
	for j := range env.W.Pages {
		pid := workload.PageID(j)
		_, opt := OptimalPagePartition(pl, pid)
		greedy := pl.pageTime(pid)
		// Allow the quantization slack: one bucket across both chains.
		slack := units.Seconds(float64(optimalBucket)/float64(env.Est.Sites[env.W.Pages[j].Site].RepoRate)) + 1
		if opt > greedy+slack {
			t.Fatalf("page %d: 'optimal' %v worse than greedy %v", j, opt, greedy)
		}
		checked++
		if checked >= 100 {
			break
		}
	}
}

func TestOptimalAllLocalWhenRepoUseless(t *testing.T) {
	// A repository so slow that any remote byte dominates: optimum = all
	// local.
	w := &workload.Workload{
		Config: workload.Config{Alpha1: 1, Alpha2: 1},
		Objects: []workload.Object{
			{ID: 0, Size: 10 * units.KB},
			{ID: 1, Size: 20 * units.KB},
		},
		Pages: []workload.Page{{
			ID: 0, Site: 0, HTMLSize: units.KB, Freq: 1,
			Compulsory: []workload.ObjectID{0, 1},
		}},
		Sites: []workload.Site{{ID: 0, Pages: []workload.PageID{0}, Objects: []workload.ObjectID{0, 1}, Capacity: 100}},
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	est := &netsim.Estimates{Sites: []netsim.SiteEstimate{{
		LocalRate: 100 * units.KBPerSec,
		RepoRate:  0.01 * units.KBPerSec,
		LocalOvhd: 1,
		RepoOvhd:  2,
	}}}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	pl := NewPlanner(env)
	mask, _ := OptimalPagePartition(pl, 0)
	if mask != 0b11 {
		t.Errorf("optimal mask %b, want all-local", mask)
	}
}
