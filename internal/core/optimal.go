package core

import (
	"math"

	"repro/internal/units"
	"repro/internal/workload"
)

// optimalBucket is the subset-sum quantization of the exact per-page
// optimizer: 1 KiB. The response-time error this can introduce is bounded
// by bucket/B(S_i) + bucket/B(R,S_i) ≈ 0.4 s at Table-1 rates — negligible
// against page times of tens to hundreds of seconds, and the verification
// recomputes candidate subsets at exact byte sizes anyway.
const optimalBucket = 1024

// OptimalPagePartition computes the (bucket-quantized) optimal split of
// page j's compulsory objects between the two chains — the exact reference
// PARTITION approximates. It enumerates achievable local-byte sums with a
// subset-sum dynamic program that retains one representative subset per
// bucket (pages have ≤45 compulsory objects, so a subset fits a uint64
// mask), then evaluates Eq. 5 exactly for every representative. It ignores
// the cross-page constraints (storage/capacity), exactly like PARTITION
// itself. The returned mask has bit idx set iff compulsory object idx is
// local; the returned time is the page's Eq. 5 value under the estimates.
func OptimalPagePartition(pl *Planner, j workload.PageID) (localMask uint64, best units.Seconds) {
	pg := &pl.env.W.Pages[j]
	if len(pg.Compulsory) > 64 {
		panic("core: OptimalPagePartition supports at most 64 compulsory objects")
	}
	est := pl.siteEstimateOf(pg.Site)

	sizes := make([]units.ByteSize, len(pg.Compulsory))
	var total units.ByteSize
	for idx, k := range pg.Compulsory {
		sizes[idx] = pl.env.W.ObjectSize(k)
		total += sizes[idx]
	}

	nBuckets := int(total/optimalBucket) + 2
	// reach[b] holds a representative subset whose size lands in bucket b;
	// reachOK marks valid entries (bucket 0 = empty set).
	reach := make([]uint64, nBuckets)
	reachOK := make([]bool, nBuckets)
	reachOK[0] = true

	for idx, size := range sizes {
		step := int(size / optimalBucket)
		bit := uint64(1) << uint(idx)
		// Descend so each object is used at most once.
		for b := nBuckets - 1; b >= 0; b-- {
			if !reachOK[b] {
				continue
			}
			nb := b + step
			if nb < nBuckets && !reachOK[nb] {
				reachOK[nb] = true
				reach[nb] = reach[b] | bit
			}
		}
	}

	evalMask := func(mask uint64) units.Seconds {
		var localBytes units.ByteSize
		remoteAny := false
		var remoteBytes units.ByteSize
		for idx, size := range sizes {
			if mask&(1<<uint(idx)) != 0 {
				localBytes += size
			} else {
				remoteBytes += size
				remoteAny = true
			}
		}
		localT := est.LocalOvhd + est.LocalRate.TransferTime(pg.HTMLSize+localBytes)
		var remoteT units.Seconds
		if remoteAny {
			remoteT = est.RepoOvhd + est.RepoRate.TransferTime(remoteBytes)
		}
		return units.MaxSeconds(localT, remoteT)
	}

	best = units.Seconds(math.Inf(1))
	for b := 0; b < nBuckets; b++ {
		if !reachOK[b] {
			continue
		}
		if t := evalMask(reach[b]); t < best {
			best = t
			localMask = reach[b]
		}
	}
	return localMask, best
}

// GreedyGap measures PARTITION's per-page optimality gap over every page:
// it returns the mean and max of (greedy − optimal)/optimal across pages,
// where greedy is the planner's current per-page time (call after
// PartitionAll). Used by tests and the ablation benchmarks to certify the
// heuristic's quality.
func GreedyGap(pl *Planner) (meanPct, maxPct float64) {
	n := 0
	for j := range pl.env.W.Pages {
		pid := workload.PageID(j)
		_, opt := OptimalPagePartition(pl, pid)
		greedy := pl.pageTime(pid)
		if opt <= 0 {
			continue
		}
		gap := (float64(greedy) - float64(opt)) / float64(opt) * 100
		if gap < 0 {
			// The quantized "optimal" can sit a hair above the true optimum;
			// the greedy beating it by the quantization margin is fine.
			gap = 0
		}
		meanPct += gap
		if gap > maxPct {
			maxPct = gap
		}
		n++
	}
	if n > 0 {
		meanPct /= float64(n)
	}
	return meanPct, maxPct
}
