package core

import (
	"math"
	"sort"

	"repro/internal/units"
	"repro/internal/workload"
)

// AcceptResult reports how a site responded to an off-loading request.
type AcceptResult struct {
	Site     workload.SiteID
	Target   units.ReqPerSec // workload the repository asked the site to take
	Accepted units.ReqPerSec // workload actually moved local
	Stored   int             // new replicas created while accepting
	Swapped  int             // replicas exchanged by the swap phase
}

// freeCapacity returns P(S_i): the processing capacity left at site i.
// An unconstrained site reports +Inf; the coordinator clamps it.
func (pl *Planner) freeCapacity(i workload.SiteID) float64 {
	c := float64(pl.env.Budgets.SiteCapacity[i])
	if math.IsInf(c, 1) {
		return math.Inf(1)
	}
	v := c - pl.siteLocalLoad[i]
	if v < 0 {
		return 0
	}
	return v
}

// freeSpace returns Space(S_i): the storage left at site i in bytes.
func (pl *Planner) freeSpace(i workload.SiteID) units.ByteSize {
	v := pl.env.Budgets.Storage[i] - pl.p.StorageUsed(i)
	if v < 0 {
		return 0
	}
	return v
}

// AcceptWorkload implements the local server's side of the off-loading
// protocol (Section 4.2): move up to target req/s of repository downloads to
// the local server, choosing the (W_j, M_k) pairs with the minimum increase
// in response time per req/s gained — the mirror of the processing-
// restoration criterion. Three escalating sources are used, per the paper:
// already-stored objects first (always allowed), then newly stored objects
// when storage permits (the L1 case), then a swap phase that deallocates
// low-traffic replicas to make room for higher-traffic ones (the L2 last
// resort). The site never exceeds its own processing capacity.
func (pl *Planner) AcceptWorkload(i workload.SiteID, target units.ReqPerSec) AcceptResult {
	res := AcceptResult{Site: i, Target: target}
	// soft is the repository's quota; hard is the site's own Eq. 8
	// headroom. A flip may overshoot the quota (the last pair rarely lands
	// exactly on it) but never the capacity.
	soft := float64(target)
	hard := pl.freeCapacity(i)
	if soft <= 1e-12 || hard <= 1e-12 {
		return res
	}
	if soft > hard {
		soft = hard
	}
	gained := pl.acceptByFlipping(i, soft, hard, &res)
	if soft-gained > 1e-9 {
		gained += pl.acceptBySwapping(i, soft-gained, hard-gained, &res)
	}
	res.Accepted = units.ReqPerSec(gained)
	return res
}

// acceptByFlipping flips repository downloads local, storing new objects as
// space allows, until the soft quota is met (possibly overshooting it by
// one flip, within the hard capacity headroom) or candidates run out.
// Returns the req/s gained.
func (pl *Planner) acceptByFlipping(i workload.SiteID, soft, hard float64, res *AcceptResult) float64 {
	var items []heapItem
	for _, pid := range pl.env.W.Sites[i].Pages {
		pg := &pl.env.W.Pages[pid]
		for idx := range pg.Compulsory {
			if !pl.p.CompLocal(pid, idx) {
				key := pl.previewFlipComp(pid, idx, true) / float64(pg.Freq)
				items = append(items, heapItem{key: key, id: encodeRef(pid, idx, false)})
			}
		}
		for idx, l := range pg.Optional {
			if !pl.p.OptLocal(pid, idx) {
				gain := float64(pg.Freq) * l.Prob
				key := pl.previewFlipOpt(pid, idx, true) / gain
				items = append(items, heapItem{key: key, id: encodeRef(pid, idx, true)})
			}
		}
	}
	h := newLazyHeap(items)

	recompute := func(id int64) (float64, bool) {
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		var k workload.ObjectID
		var gain float64
		if optional {
			if pl.p.OptLocal(j, idx) {
				return 0, false
			}
			k = pg.Optional[idx].Object
			gain = float64(pg.Freq) * pg.Optional[idx].Prob
		} else {
			if pl.p.CompLocal(j, idx) {
				return 0, false
			}
			k = pg.Compulsory[idx]
			gain = float64(pg.Freq)
		}
		// A flip needs the object stored, or storable within free space.
		if !pl.p.IsStored(i, k) && pl.env.W.ObjectSize(k) > pl.freeSpace(i) {
			return 0, false
		}
		if optional {
			return pl.previewFlipOpt(j, idx, true) / gain, true
		}
		return pl.previewFlipComp(j, idx, true) / gain, true
	}

	gained := 0.0
	for soft-gained > 1e-9 {
		id, _, ok := h.popFresh(recompute)
		if !ok {
			return gained
		}
		j, idx, optional := decodeRef(id)
		pg := &pl.env.W.Pages[j]
		var k workload.ObjectID
		var gain float64
		if optional {
			k = pg.Optional[idx].Object
			gain = float64(pg.Freq) * pg.Optional[idx].Prob
		} else {
			k = pg.Compulsory[idx]
			gain = float64(pg.Freq)
		}
		if gain > hard-gained+1e-9 {
			// Taking this pair would violate the site's own capacity; a
			// later candidate may carry a smaller gain (optional links),
			// so skip this one permanently rather than stopping.
			continue
		}
		if !pl.p.IsStored(i, k) {
			pl.p.Store(i, k)
			res.Stored++
		}
		if optional {
			pl.flipOpt(j, idx, true)
		} else {
			pl.flipComp(j, idx, true)
		}
		gained += gain
	}
	return gained
}

// acceptBySwapping implements the paper's last resort: deallocating stored
// objects and allocating others can raise the site's local workload when
// the store is full. Stored replicas are ranked by the local request rate
// they carry (ascending); absent objects by the rate they could carry
// (descending). A swap happens when the incoming object gains strictly more
// workload than the outgoing one loses and the space works out. Returns the
// net req/s gained.
func (pl *Planner) acceptBySwapping(i workload.SiteID, soft, hard float64, res *AcceptResult) float64 {
	type entry struct {
		k    workload.ObjectID
		rate float64
		size units.ByteSize
	}

	// Local request rate currently carried by each stored object / gainable
	// by each absent object.
	carried := make(map[workload.ObjectID]float64)
	potential := make(map[workload.ObjectID]float64)
	for _, pid := range pl.env.W.Sites[i].Pages {
		pg := &pl.env.W.Pages[pid]
		for idx, k := range pg.Compulsory {
			if pl.p.CompLocal(pid, idx) {
				carried[k] += float64(pg.Freq)
			} else if !pl.p.IsStored(i, k) {
				potential[k] += float64(pg.Freq)
			}
		}
		for idx, l := range pg.Optional {
			if pl.p.OptLocal(pid, idx) {
				carried[l.Object] += float64(pg.Freq) * l.Prob
			} else if !pl.p.IsStored(i, l.Object) {
				potential[l.Object] += float64(pg.Freq) * l.Prob
			}
		}
	}

	var outs, ins []entry
	pl.p.StoredSet(i).ForEach(func(kk int) bool {
		k := workload.ObjectID(kk)
		outs = append(outs, entry{k, carried[k], pl.env.W.ObjectSize(k)})
		return true
	})
	for k, rate := range potential {
		ins = append(ins, entry{k, rate, pl.env.W.ObjectSize(k)})
	}
	sort.Slice(outs, func(a, b int) bool {
		if outs[a].rate != outs[b].rate { //repllint:allow float-compare — exact-bits tie-break keeps the comparator a strict weak order
			return outs[a].rate < outs[b].rate
		}
		return outs[a].k < outs[b].k
	})
	sort.Slice(ins, func(a, b int) bool {
		if ins[a].rate != ins[b].rate { //repllint:allow float-compare — exact-bits tie-break keeps the comparator a strict weak order
			return ins[a].rate > ins[b].rate
		}
		return ins[a].k < ins[b].k
	})

	gained := 0.0
	for _, in := range ins {
		if soft-gained <= 1e-9 {
			break
		}
		if in.rate <= 1e-12 || in.rate > hard-gained+1e-9 {
			continue
		}
		// Free space for the incoming object by evicting the cheapest
		// replicas whose combined carried rate stays strictly below the
		// gain (outs is sorted ascending, so once the cumulative lost rate
		// reaches the gain no later candidate can help either).
		var evict []entry
		freed := pl.freeSpace(i)
		lost := 0.0
		for _, cand := range outs {
			if freed >= in.size {
				break
			}
			if !pl.p.IsStored(i, cand.k) {
				continue // already evicted by an earlier swap
			}
			if lost+cand.rate >= in.rate {
				break
			}
			evict = append(evict, cand)
			freed += cand.size
			lost += cand.rate
		}
		if freed < in.size {
			continue // cannot make room profitably
		}
		for _, e := range evict {
			pl.deallocate(i, e.k)
		}
		pl.p.Store(i, in.k)
		res.Stored++
		res.Swapped += len(evict)
		// Flip every repository reference of the incoming object local.
		for _, r := range pl.refs[i][in.k] {
			if r.optional {
				pl.flipOpt(r.page, r.idx, true)
			} else {
				pl.flipComp(r.page, r.idx, true)
			}
		}
		gained += in.rate - lost
	}
	return gained
}
