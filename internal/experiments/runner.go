package experiments

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/workload"
)

// runEnv is the fixed context of one experiment run: the generated
// workload, the drawn estimates, the simulation seed (shared by every
// policy and sweep point so all of them see identical traffic), and the
// unconstrained-proposed-policy reference response time the figures divide
// by.
type runEnv struct {
	w       *workload.Workload
	est     *netsim.Estimates
	simCfg  httpsim.Config
	simSeed uint64
	baseRT  float64
	// planWorkers is Options.planWorkers(), threaded into every core.Plan
	// call the run makes.
	planWorkers int
}

// stream labels for run derivation.
const (
	runWorkloadStream uint64 = iota + 101
	runEstimateStream
	runTrafficStream

	// table1Run is the run index whose workload the Table 1 audit draws:
	// run 0, so the audited workload is the one Run would use first.
	table1Run uint64 = 0
)

// newRunEnv builds run r.
func newRunEnv(opts *Options, r int) (*runEnv, error) {
	start := time.Now() //repllint:allow determinism — wall-clock progress narration; never feeds results
	root := rng.New(opts.Seed)
	wSeed := root.Split(runWorkloadStream, uint64(r)).Seed()
	w, err := workload.Generate(opts.Workload, wSeed)
	if err != nil {
		return nil, err
	}
	est, err := netsim.DrawEstimates(opts.Net, w.NumSites(), root.Split(runEstimateStream, uint64(r)))
	if err != nil {
		return nil, err
	}
	simCfg := httpsim.Config{
		RequestsPerSite: opts.requests(),
		Perturb:         opts.Perturb,
		Workers:         1, // runs parallelize at the outer level
	}
	env := &runEnv{
		w:           w,
		est:         est,
		simCfg:      simCfg,
		simSeed:     root.Split(runTrafficStream, uint64(r)).Seed(),
		planWorkers: opts.planWorkers(),
	}

	// Reference: the proposed policy with no constraints (full storage,
	// unconstrained processing everywhere) — the figures' denominator.
	base, _, err := env.simulatePlanned(unconstrainedBudgets(w), false)
	if err != nil {
		return nil, err
	}
	env.baseRT = base
	if env.baseRT <= 0 {
		return nil, fmt.Errorf("experiments: non-positive baseline response time")
	}
	opts.progressf("run %d: environment ready — %d pages / %d objects, baseline rt %.4gs (%.2fs)",
		r, w.NumPages(), w.NumObjects(), env.baseRT, time.Since(start).Seconds()) //repllint:allow determinism — wall-clock progress narration; never feeds results
	return env, nil
}

// unconstrainedBudgets relaxes every constraint: full storage, infinite
// site and repository capacity.
func unconstrainedBudgets(w *workload.Workload) model.Budgets {
	b := model.FullBudgets(w)
	for i := range b.SiteCapacity {
		b.SiteCapacity[i] = model.Infinite()
	}
	b.RepoCapacity = model.Infinite()
	return b
}

// simulate runs one policy over the run's fixed traffic and returns the
// composite mean response time.
func (e *runEnv) simulate(dec httpsim.Decider, warmup bool) (float64, error) {
	cfg := e.simCfg
	cfg.Warmup = warmup
	return simulateWithConfig(e, dec, cfg)
}

// simulateWithConfig is simulate with a caller-adjusted configuration
// (still on the run's fixed traffic seed).
func simulateWithConfig(e *runEnv, dec httpsim.Decider, cfg httpsim.Config) (float64, error) {
	res, err := httpsim.Run(e.w, e.est, dec, cfg, rng.New(e.simSeed))
	if err != nil {
		return 0, err
	}
	return res.CompositeMean(), nil
}

// simulatePlanned plans the proposed policy under budgets and simulates it,
// returning the composite mean response time plus the plan's statistics
// (for progress narration and assertions).
func (e *runEnv) simulatePlanned(b model.Budgets, distributedOffload bool) (float64, *core.Result, error) {
	env, err := model.NewEnv(e.w, e.est, b)
	if err != nil {
		return 0, nil, err
	}
	p, pr, err := core.Plan(env, core.Options{Workers: e.planWorkers, Distributed: distributedOffload})
	if err != nil {
		return 0, nil, err
	}
	rt, err := e.simulate(policies.NewStatic("Proposed", p), false)
	if err != nil {
		return 0, nil, err
	}
	return rt, pr, nil
}

// simulatePlannedWithConfig plans under budgets and simulates with a
// caller-adjusted configuration.
func simulatePlannedWithConfig(e *runEnv, b model.Budgets, cfg httpsim.Config) (float64, error) {
	env, err := model.NewEnv(e.w, e.est, b)
	if err != nil {
		return 0, err
	}
	p, _, err := core.Plan(env, core.Options{Workers: e.planWorkers})
	if err != nil {
		return 0, err
	}
	return simulateWithConfig(e, policies.NewStatic("Proposed", p), cfg)
}

// forEachRun executes fn(r, env) for every run, bounded by opts.Workers.
// Errors abort with the first failure.
func forEachRun(opts *Options, fn func(r int, env *runEnv) error) error {
	if err := opts.Validate(); err != nil {
		return err
	}
	workers := opts.workers()
	if workers > opts.Runs {
		workers = opts.Runs
	}
	errs := make([]error, opts.Runs)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for r := 0; r < opts.Runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			env, err := newRunEnv(opts, r)
			if err != nil {
				errs[r] = err
				return
			}
			errs[r] = fn(r, env)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// simulateFull runs a policy on the run's traffic and returns the full
// result (callers needing more than the composite mean).
func simulateFull(e *runEnv, dec httpsim.Decider) (*httpsim.Result, error) {
	return httpsim.Run(e.w, e.est, dec, e.simCfg, rng.New(e.simSeed))
}
