package experiments

import (
	"container/heap"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"repro/internal/admission"
	"repro/internal/faults"
	"repro/internal/rng"
	"repro/internal/stats"
)

// Overload scenario constants. The arithmetic is the study: the server's
// capacity is OverloadCapacity req/s, the base open-loop arrival rate is
// 0.6× capacity, and a 2-second flash crowd (a faults.LoadSpike) multiplies
// arrivals by 10×. Without protections every timed-out request respawns as
// OverloadRetries retries, so the post-spike effective load is
// base·(1+R) = 360 req/s > capacity — the system stays collapsed although
// the offered load (120 req/s) is comfortably below capacity. That is the
// metastable failure. With admission control, retry budgets and deadline
// propagation on, the backlog is bounded by the queue (MaxQueue·service =
// one drain window) and the budget caps amplification, so recovery is fast
// and structural.
const (
	// OverloadCapacity is the server's service rate in requests/second.
	OverloadCapacity = 200.0
	// OverloadBaseRate is the open-loop base arrival rate (0.6× capacity).
	OverloadBaseRate = 120.0
	// OverloadSpikeFactor multiplies arrivals during the flash crowd.
	OverloadSpikeFactor = 10.0
	// OverloadRetries is the unprotected client's retry count per request.
	OverloadRetries = 2
	// OverloadMaxQueue bounds the protected server's admission queue; with
	// 5 ms service that is a 250 ms drain window.
	OverloadMaxQueue = 50
	// OverloadBudgetRatio / OverloadBudgetCap parameterize the shared retry
	// budget: 0.1 token earned per success caps steady-state amplification
	// at ~1.1× offered load.
	OverloadBudgetRatio = 0.1
	OverloadBudgetCap   = 10.0
)

// Overload timing (all on the virtual clock — the sim never reads wall
// time, which is what makes the study bit-reproducible per seed).
var (
	OverloadDuration   = 30 * time.Second
	OverloadSpikeStart = 5 * time.Second
	OverloadSpikeEnd   = 7 * time.Second
	// OverloadService is one request's service time (1/capacity).
	OverloadService = 5 * time.Millisecond
	// OverloadDeadline is each attempt's end-to-end client deadline,
	// propagated to the server in the protected pass.
	OverloadDeadline = 500 * time.Millisecond
	// OverloadBackoff is the client's base retry backoff (doubled per
	// attempt, jittered in [d/2, d)).
	OverloadBackoff = 50 * time.Millisecond
	// OverloadRetryAfter is the protected server's nominal shed hint,
	// jittered in [d, 3d/2) exactly like the live admission layer.
	OverloadRetryAfter = 50 * time.Millisecond
	// OverloadCoDelTarget / OverloadCoDelInterval drive the sojourn law.
	OverloadCoDelTarget   = 5 * time.Millisecond
	OverloadCoDelInterval = 100 * time.Millisecond
	// OverloadSettle is how long after the spike the off pass is given
	// before its steady-state goodput is measured — generous, so the
	// collapse verdict measures the metastable equilibrium, not the tail of
	// the spike itself.
	OverloadSettle = 3 * time.Second
)

// stream labels for the overload study's derivations (disjoint from the
// runner's 101+, the client's 401+, the flash crowd's 601+, the scrub
// study's 701+ and the admission server's 801).
const (
	overloadArrivalStream uint64 = iota + 811
	overloadClientStream
	overloadShedStream
)

// OverloadPass is one pass's accounting (protections off or on).
type OverloadPass struct {
	// Requests counts new page requests; Attempts includes every retry.
	Requests int
	Attempts int
	// Amplification is Attempts/Requests — the retry storm factor.
	Amplification float64
	// Goodput counts responses delivered within their deadline; Failures
	// counts requests abandoned after exhausting retries (or budget).
	Goodput  int
	Failures int
	// Sheds counts 429s (queue bound, sojourn law, doomed deadline).
	Sheds int
	// DeadlineServed counts responses the server completed after the
	// client's deadline — pure wasted work. Deadline propagation makes this
	// structurally zero in the protected pass.
	DeadlineServed int
	// PeakQueue is the deepest the server queue ever got.
	PeakQueue int
	// PostSpikeGoodput is the mean goodput rate (req/s) from
	// SpikeEnd+Settle to the end of the run — the steady state the system
	// landed in after the crowd left.
	PostSpikeGoodput float64
	// RecoverMs is how long after the spike ended the trailing-1s goodput
	// first reached 95% of the base offered rate; -1 = never within the
	// run. The protected bound is one drain window (MaxQueue·service).
	RecoverMs int64
	// GoodputPerSec is the per-second goodput timeline (len =
	// Duration/1s), the figure's raw series.
	GoodputPerSec []int
}

// OverloadRun is one run: the same seeded arrival process played twice,
// once with every protection off and once with the full admission stack
// on.
type OverloadRun struct {
	Run int
	Off OverloadPass
	On  OverloadPass
}

// OverloadResult is the study's output: per-run accounting plus the
// goodput-over-time figure that makes the metastable collapse visible.
type OverloadResult struct {
	Runs     []OverloadRun
	Timeline *stats.Figure
}

// DrainWindow is the protected recovery bound: the time to serve a full
// admission queue.
func DrainWindow() time.Duration {
	return time.Duration(OverloadMaxQueue) * OverloadService
}

// Overload runs the metastable-failure study: an open-loop arrival ramp
// (base rate, 10× flash crowd, base rate again) against a single server,
// as a pure event-driven simulation on a virtual clock. The "off" pass has
// an unbounded FIFO queue, no deadline propagation and unbudgeted retries:
// after the crowd leaves, timed-out requests keep respawning retries and
// the effective load stays above capacity — goodput pins near zero for the
// rest of the run even though offered load is 60% of capacity. The "on"
// pass runs the same admission laws the live cluster uses (the CoDel
// sojourn law, the bounded queue, deadline drops at dequeue, the shared
// retry budget, jittered Retry-After honoring) and recovers within one
// drain window. Both passes consume disjoint Split streams of the run
// seed, so the whole result — tables and figure — is bit-reproducible.
func Overload(opts Options) (*OverloadResult, error) {
	if opts.Runs <= 0 {
		return nil, fmt.Errorf("experiments: Runs must be positive, got %d", opts.Runs)
	}
	runs := make([]OverloadRun, opts.Runs)
	workers := opts.workers()
	if workers > opts.Runs {
		workers = opts.Runs
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for r := 0; r < opts.Runs; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			root := rng.New(opts.Seed)
			off := simOverload(root, r, false)
			on := simOverload(root, r, true)
			runs[r] = OverloadRun{Run: r, Off: off, On: on}
			opts.progressf("overload run %d: off — post-spike %.0f req/s (recover %dms, amp %.2f); on — post-spike %.0f req/s (recover %dms, amp %.2f, sheds %d, deadline-served %d)",
				r, off.PostSpikeGoodput, off.RecoverMs, off.Amplification,
				on.PostSpikeGoodput, on.RecoverMs, on.Amplification, on.Sheds, on.DeadlineServed)
		}(r)
	}
	wg.Wait()

	// Feed the collector in run order so the figure is deterministic at any
	// worker count.
	col := newCollector()
	for _, run := range runs {
		for s, g := range run.Off.GoodputPerSec {
			col.add("Protections off", float64(s), float64(g))
		}
		for s, g := range run.On.GoodputPerSec {
			col.add("Protections on", float64(s), float64(g))
		}
	}
	fig := col.figure("Overload: goodput through a 10x flash crowd",
		"seconds", []string{"Protections off", "Protections on"})
	fig.YLabel = "goodput (requests/s served within deadline)"
	return &OverloadResult{Runs: runs, Timeline: fig}, nil
}

// simEvent kinds, processed in (time, seq) order.
const (
	evArrivalGen = iota // draw the next new request
	evAttempt           // one attempt reaches the server
	evDone              // the server finished serving
	evTimeout           // the client's deadline lapsed
)

// simReq is one request attempt's state.
type simReq struct {
	id       int // request identity (stable across retries)
	attempt  int // 0 = first try
	issued   time.Duration
	deadline time.Duration
	enq      time.Duration
	// responded: the server answered (success or shed) before the client
	// timed out; the timeout event then does nothing.
	responded bool
	// abandoned: the client timed out; a later completion is wasted work.
	abandoned bool
}

// simEvent is one heap entry.
type simEvent struct {
	t    time.Duration
	seq  int
	kind int
	req  *simReq
}

// eventHeap orders events by (time, insertion sequence) — a total,
// deterministic order.
type eventHeap []*simEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*simEvent)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// overloadSim is one pass's world state.
type overloadSim struct {
	protected bool
	events    eventHeap
	seq       int
	queue     []*simReq
	busy      bool
	codel     *admission.CoDel
	budget    *admission.RetryBudget // nil in the off pass (Spend → true)
	arrivals  *rng.Stream
	jitter    *rng.Stream
	shed      *rng.Stream
	plan      *faults.Plan
	pass      OverloadPass
	nextID    int
	// goodTimes records each within-deadline completion instant for the
	// trailing-window recovery scan.
	goodTimes []time.Duration
}

// simOverload plays one pass of the arrival ramp for run r.
func simOverload(root *rng.Stream, r int, protected bool) OverloadPass {
	mode := uint64(0)
	if protected {
		mode = 1
	}
	s := &overloadSim{
		protected: protected,
		arrivals:  root.Split(overloadArrivalStream, uint64(r), mode),
		jitter:    root.Split(overloadClientStream, uint64(r), mode),
		shed:      root.Split(overloadShedStream, uint64(r), mode),
		plan: &faults.Plan{LoadSpikes: []faults.LoadSpike{{
			Window: faults.Window{Start: OverloadSpikeStart, End: OverloadSpikeEnd},
			Factor: OverloadSpikeFactor,
		}}},
	}
	if protected {
		s.codel = admission.NewCoDel(OverloadCoDelTarget, OverloadCoDelInterval)
		s.budget = admission.NewRetryBudget(OverloadBudgetRatio, OverloadBudgetCap)
	}
	s.schedule(0, evArrivalGen, nil)
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*simEvent)
		if ev.t >= OverloadDuration {
			break
		}
		switch ev.kind {
		case evArrivalGen:
			s.newRequest(ev.t)
		case evAttempt:
			s.arrive(ev.t, ev.req)
		case evDone:
			s.complete(ev.t, ev.req)
		case evTimeout:
			s.timeout(ev.t, ev.req)
		}
	}
	s.finish()
	return s.pass
}

// schedule pushes an event at t.
func (s *overloadSim) schedule(t time.Duration, kind int, req *simReq) {
	s.seq++
	heap.Push(&s.events, &simEvent{t: t, seq: s.seq, kind: kind, req: req})
}

// newRequest issues a fresh request at t and draws the next arrival from
// the current (possibly spiked) rate.
func (s *overloadSim) newRequest(t time.Duration) {
	s.pass.Requests++
	s.nextID++
	req := &simReq{id: s.nextID, issued: t, deadline: t + OverloadDeadline}
	s.schedule(t, evAttempt, req)

	rate := s.plan.RateAt(OverloadBaseRate, t)
	u := s.arrivals.Float64()
	gap := time.Duration(-math.Log(1-u) / rate * float64(time.Second))
	if gap <= 0 {
		gap = time.Nanosecond
	}
	if next := t + gap; next < OverloadDuration {
		s.schedule(next, evArrivalGen, nil)
	}
}

// arrive lands one attempt at the server.
func (s *overloadSim) arrive(t time.Duration, req *simReq) {
	s.pass.Attempts++
	if s.protected && len(s.queue) >= OverloadMaxQueue {
		s.pass.Sheds++
		s.respondShed(t, req)
		return
	}
	req.enq = t
	s.queue = append(s.queue, req)
	if len(s.queue) > s.pass.PeakQueue {
		s.pass.PeakQueue = len(s.queue)
	}
	s.schedule(req.deadline, evTimeout, req)
	if !s.busy {
		s.startNext(t)
	}
}

// startNext dequeues until a servable request is found, applying the
// protected pass's sojourn and deadline drops.
func (s *overloadSim) startNext(t time.Duration) {
	for len(s.queue) > 0 {
		req := s.queue[0]
		s.queue = s.queue[1:]
		if s.protected {
			if s.codel.OnDequeue(t-req.enq, t) {
				s.pass.Sheds++
				if !req.abandoned {
					s.respondShed(t, req)
				}
				continue
			}
			if t+OverloadService > req.deadline {
				// Deadline propagation: the header says this work is doomed
				// — shed it instead of serving bytes nobody will wait for.
				s.pass.Sheds++
				if !req.abandoned {
					s.respondShed(t, req)
				}
				continue
			}
		}
		s.busy = true
		s.schedule(t+OverloadService, evDone, req)
		return
	}
	s.busy = false
}

// complete finishes serving a request at t.
func (s *overloadSim) complete(t time.Duration, req *simReq) {
	s.busy = false
	if !req.abandoned && t <= req.deadline {
		req.responded = true
		s.pass.Goodput++
		s.goodTimes = append(s.goodTimes, t)
		s.budget.Earn()
	} else {
		// The client is long gone: the server burned a service slot on a
		// response nobody received.
		s.pass.DeadlineServed++
	}
	s.startNext(t)
}

// timeout fires at the client's deadline: if the server has not answered,
// the client abandons the attempt and consults its retry policy.
func (s *overloadSim) timeout(t time.Duration, req *simReq) {
	if req.responded || req.abandoned {
		return
	}
	req.abandoned = true
	s.retry(t, req, 0)
}

// respondShed delivers a 429 at t with the jittered Retry-After hint; the
// client retries no sooner than the hint.
func (s *overloadSim) respondShed(t time.Duration, req *simReq) {
	req.responded = true
	hint := OverloadRetryAfter + time.Duration(s.shed.Uniform(0, float64(OverloadRetryAfter/2)))
	s.retry(t, req, hint)
}

// retry re-issues a failed request after max(backoff, hint), spending from
// the shared budget in the protected pass. Exhausted attempts or an empty
// budget end the request as a failure.
func (s *overloadSim) retry(t time.Duration, req *simReq, hint time.Duration) {
	if req.attempt >= OverloadRetries {
		s.pass.Failures++
		return
	}
	if !s.budget.Spend() {
		s.pass.Failures++
		return
	}
	d := OverloadBackoff << uint(req.attempt)
	wait := d/2 + time.Duration(s.jitter.Uniform(0, float64(d/2)))
	if hint > wait {
		wait = hint
	}
	issue := t + wait
	if issue >= OverloadDuration {
		s.pass.Failures++
		return
	}
	next := &simReq{id: req.id, attempt: req.attempt + 1, issued: issue, deadline: issue + OverloadDeadline}
	s.schedule(issue, evAttempt, next)
}

// finish derives the pass's summary statistics from the completion record.
func (s *overloadSim) finish() {
	p := &s.pass
	if p.Requests > 0 {
		p.Amplification = float64(p.Attempts) / float64(p.Requests)
	}
	secs := int(OverloadDuration / time.Second)
	p.GoodputPerSec = make([]int, secs)
	for _, ct := range s.goodTimes {
		if b := int(ct / time.Second); b < secs {
			p.GoodputPerSec[b]++
		}
	}
	// Steady state after the crowd left.
	from := OverloadSpikeEnd + OverloadSettle
	span := OverloadDuration - from
	n := 0
	for _, ct := range s.goodTimes {
		if ct >= from {
			n++
		}
	}
	p.PostSpikeGoodput = float64(n) / span.Seconds()
	// Recovery: first 100ms-aligned instant after the spike whose trailing
	// 1s window reaches 95% of the base offered rate.
	p.RecoverMs = -1
	want := int(0.95 * OverloadBaseRate)
	for at := OverloadSpikeEnd; at+time.Second <= OverloadDuration; at += 100 * time.Millisecond {
		n := 0
		for _, ct := range s.goodTimes {
			if ct >= at && ct < at+time.Second {
				n++
			}
		}
		if n >= want {
			p.RecoverMs = (at - OverloadSpikeEnd).Milliseconds()
			break
		}
	}
}

// Clean reports whether every run met the acceptance bar: the unprotected
// pass stays collapsed after the spike (goodput < 20% of capacity), the
// protected pass recovers within one drain window, caps retry
// amplification at 1.1×, and never serves a deadline-expired response.
func (r *OverloadResult) Clean() bool {
	for _, run := range r.Runs {
		if run.Off.PostSpikeGoodput >= 0.2*OverloadCapacity {
			return false
		}
		if run.On.RecoverMs < 0 || run.On.RecoverMs > DrainWindow().Milliseconds() {
			return false
		}
		if run.On.Amplification > 1.1 {
			return false
		}
		if run.On.DeadlineServed != 0 {
			return false
		}
	}
	return len(r.Runs) > 0
}

// Write renders the per-run table and the acceptance summary.
func (r *OverloadResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-4s %-5s %-9s %-9s %-6s %-8s %-10s %-11s %-9s %s\n",
		"run", "pass", "requests", "goodput", "amp", "sheds", "deadsrvd", "post-spike", "recover", "peakq"); err != nil {
		return err
	}
	row := func(run int, name string, p *OverloadPass) error {
		rec := "never"
		if p.RecoverMs >= 0 {
			rec = fmt.Sprintf("%dms", p.RecoverMs)
		}
		_, err := fmt.Fprintf(w, "%-4d %-5s %-9d %-9d %-6.2f %-8d %-10d %-11.0f %-9s %d\n",
			run, name, p.Requests, p.Goodput, p.Amplification, p.Sheds,
			p.DeadlineServed, p.PostSpikeGoodput, rec, p.PeakQueue)
		return err
	}
	for _, run := range r.Runs {
		if err := row(run.Run, "off", &run.Off); err != nil {
			return err
		}
		if err := row(run.Run, "on", &run.On); err != nil {
			return err
		}
	}
	verdict := "FAILED"
	if r.Clean() {
		verdict = "ok"
	}
	_, err := fmt.Fprintf(w, "overload study: %s — unprotected pass metastably collapsed after the spike; protections recovered within %v at ≤1.1x amplification with zero deadline-expired responses\n",
		verdict, DrainWindow())
	return err
}
