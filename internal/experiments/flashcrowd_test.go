package experiments

import (
	"bytes"
	"reflect"
	"testing"
)

func flashOpts() Options {
	o := Quick()
	o.Runs = 1
	o.RequestsPerSite = 1000 // enough samples that estimation noise stays under the trigger
	return o
}

func TestFlashCrowdStaticDegradesOnlineTracks(t *testing.T) {
	res, err := FlashCrowd(flashOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	run := res.Runs[0]
	if len(run.Epochs) != FlashCrowdEpochs+1 {
		t.Fatalf("got %d epochs, want %d", len(run.Epochs), FlashCrowdEpochs+1)
	}

	// Epoch 0 traffic matches the plan: estimation noise alone must not
	// trigger a re-plan.
	if run.Epochs[0].Triggered {
		t.Errorf("in-plan epoch-0 traffic triggered (L1=%.3f)", run.Epochs[0].DriftL1)
	}

	// The rotation must sting: the static plan's objective degrades.
	last := run.Epochs[len(run.Epochs)-1]
	if last.DStatic <= run.D0*1.02 {
		t.Errorf("static plan did not degrade under drift: D0=%.0f final=%.0f", run.D0, last.DStatic)
	}

	// The online planner acts, ships bytes, and tracks the drift.
	if run.Replans < 1 {
		t.Fatalf("online planner never re-planned (noops=%d)", run.Noops)
	}
	if run.CopyBytes <= 0 {
		t.Errorf("re-plans shipped no bytes")
	}
	if last.DOnline >= last.DStatic {
		t.Errorf("online planner no better than static at final epoch: %.0f vs %.0f", last.DOnline, last.DStatic)
	}
	staticGap := last.DStatic - last.DOracle
	onlineGap := last.DOnline - last.DOracle
	if onlineGap > staticGap/2 {
		t.Errorf("online planner tracks poorly: gap over oracle %.0f vs static's %.0f", onlineGap, staticGap)
	}

	// Delta shipping only: an epoch without a re-plan bills zero bytes.
	for _, ep := range run.Epochs {
		if !ep.Replanned && ep.CopyBytes != 0 {
			t.Errorf("epoch %d shipped %v without re-planning", ep.Epoch, ep.CopyBytes)
		}
		if ep.DOracle <= 0 || ep.DStatic <= 0 || ep.DOnline <= 0 {
			t.Errorf("epoch %d: non-positive objective %+v", ep.Epoch, ep)
		}
	}

	// Figure shape: three series over the full epoch grid.
	if got := len(res.Timeline.Series); got != 3 {
		t.Fatalf("timeline has %d series, want 3", got)
	}
	for _, s := range res.Timeline.Series {
		if len(s.X) != FlashCrowdEpochs+1 {
			t.Errorf("series %q has %d points, want %d", s.Name, len(s.X), FlashCrowdEpochs+1)
		}
	}
}

// TestFlashCrowdReproducible pins the study's bit-reproducibility: the same
// seed yields identical results at any worker count.
func TestFlashCrowdReproducible(t *testing.T) {
	opts := flashOpts()
	opts.Runs = 2
	opts.Workers = 1
	a, err := FlashCrowd(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	b, err := FlashCrowd(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatal("same seed produced different run accounting across worker counts")
	}
	if !reflect.DeepEqual(a.Timeline, b.Timeline) {
		t.Fatal("same seed produced different timelines across worker counts")
	}
	var ra, rb bytes.Buffer
	if err := a.Write(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Fatal("rendered reports differ")
	}
}
