package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/workload"
)

// planProbe plans the proposed policy under the environment and returns the
// placement (Figure 3 uses it to size the repository's capacity relative to
// the pre-offload load).
func planProbe(env *model.Env, workers int) (*model.Placement, *core.Result, error) {
	return core.Plan(env, core.Options{Workers: workers})
}

// Table1 generates one full workload per the options and returns its audit
// summary — the reproduction of the paper's Table 1 (and the §5.2 "1.8 GB
// average" storage claim).
func Table1(opts Options) (*workload.Summary, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	wSeed := rng.New(opts.Seed).Split(runWorkloadStream, table1Run).Seed()
	w, err := workload.Generate(opts.Workload, wSeed)
	if err != nil {
		return nil, err
	}
	return workload.Summarize(w), nil
}

// EquivalenceResult reports the §5.2 storage-equivalence claim: the
// smallest storage fraction at which the proposed policy matches the
// response time of ideal LRU (and Local) at 100 % storage. The paper finds
// ≈65 %.
type EquivalenceResult struct {
	// Fraction is the smallest sweep fraction whose proposed-policy
	// response time is at or below the LRU-at-100 % level.
	Fraction float64
	// ProposedAt holds the proposed policy's mean relative increase (%) per
	// storage fraction; LRUFull and LocalLevel are the reference levels.
	ProposedAt map[float64]float64
	LRUFull    float64
	LocalLevel float64
}

// StorageEquivalence measures the claim over the options' runs.
func StorageEquivalence(opts Options) (*EquivalenceResult, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		full := unconstrainedBudgets(env.w)
		lruPol, err := policies.NewLRU(env.w, full, env.simSeed+uint64(r))
		if err != nil {
			return err
		}
		lruRT, err := env.simulate(lruPol, true)
		if err != nil {
			return err
		}
		col.add("LRU@100", 100, stats.RelativeIncrease(lruRT, env.baseRT))

		localRT, err := env.simulate(policies.NewLocal(env.w), false)
		if err != nil {
			return err
		}
		col.add("Local", 100, stats.RelativeIncrease(localRT, env.baseRT))

		for _, frac := range StorageGrid {
			b := unconstrainedBudgets(env.w).Scale(env.w, frac, 1)
			for i := range b.SiteCapacity {
				b.SiteCapacity[i] = model.Infinite()
			}
			b.RepoCapacity = model.Infinite()
			rt, _, err := env.simulatePlanned(b, false)
			if err != nil {
				return err
			}
			col.add("Proposed", frac*100, stats.RelativeIncrease(rt, env.baseRT))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	col.mu.Lock()
	defer col.mu.Unlock()
	res := &EquivalenceResult{Fraction: 1, ProposedAt: make(map[float64]float64)}
	res.LRUFull = col.data["LRU@100"][100].Mean()
	res.LocalLevel = col.data["Local"][100].Mean()
	for _, frac := range StorageGrid {
		res.ProposedAt[frac] = col.data["Proposed"][frac*100].Mean()
	}
	for _, frac := range StorageGrid {
		if res.ProposedAt[frac] <= res.LRUFull {
			res.Fraction = frac
			break
		}
	}
	return res, nil
}

// Write renders the equivalence result.
func (r *EquivalenceResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "LRU @ 100%% storage: +%.1f%%  |  Local: +%.1f%%\n", r.LRUFull, r.LocalLevel); err != nil {
		return err
	}
	for _, frac := range StorageGrid {
		marker := ""
		if frac == r.Fraction { //repllint:allow float-compare — StorageGrid values are copied verbatim; exact match intended
			marker = "  <-- matches LRU@100%"
		}
		if _, err := fmt.Fprintf(w, "proposed @ %3.0f%% storage: %+.1f%%%s\n", frac*100, r.ProposedAt[frac], marker); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "equivalence fraction: %.0f%% (paper: ≈65%%)\n", r.Fraction*100)
	return err
}
