package experiments

import (
	"repro/internal/policies"
	"repro/internal/stats"
	"repro/internal/units"
)

// RedirectGrid is the per-chain redirection penalties swept by the
// redirection study, in seconds. 0 is the paper's ideal assumption; 0.25 s
// approximates one extra round trip through a redirector; larger values
// model DNS-based schemes with cold caches.
var RedirectGrid = []float64{0, 0.25, 0.5, 1.0, 2.0}

// RedirectStudy quantifies the paper's Section-6 argument: the proposed
// scheme performs its "redirection" inside the local server (rewriting
// URLs while serving the HTML, zero extra round trips), while
// redirection-based alternatives pay latency on every repository GET. The
// study simulates the ideal LRU baseline at 50 % storage with increasing
// per-GET redirection penalties against the proposed policy, on identical
// traffic — twice: once at the paper's Table-1 transfer rates (where
// multi-minute transfers drown any latency) and once at 100× those rates
// (broadband, where per-request latency dominates and the argument bites).
func RedirectStudy(opts Options) (*stats.Figure, error) {
	col := newCollector()
	if err := redirectPass(opts, col, 1, " (Table-1 rates)"); err != nil {
		return nil, err
	}
	fast := opts
	fast.Net.LocalRateLo *= 100
	fast.Net.LocalRateHi *= 100
	fast.Net.RepoRateLo *= 100
	fast.Net.RepoRateHi *= 100
	if err := redirectPass(fast, col, 1, " (100× rates)"); err != nil {
		return nil, err
	}
	fig := col.figure("Redirection cost: server-side rewriting vs per-GET redirection",
		"redirection penalty (s)", []string{
			"Proposed (Table-1 rates)", "LRU+redirect (Table-1 rates)",
			"Proposed (100× rates)", "LRU+redirect (100× rates)",
		})
	return fig, nil
}

// redirectPass runs one rate regime of the study.
func redirectPass(opts Options, col *collector, _ float64, suffix string) error {
	return forEachRun(&opts, func(r int, env *runEnv) error {
		// 50 % storage: a warm full-size cache never misses and would never
		// pay the penalty; at half storage both schemes have a realistic
		// repository stream. (Scale keeps the already-infinite capacities.)
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)

		// The proposed policy at the same storage, no penalty (its
		// "redirection" is the serving-time URL rewrite): a flat reference.
		oursRT, _, err := env.simulatePlanned(half, false)
		if err != nil {
			return err
		}
		for _, penalty := range RedirectGrid {
			lru, err := policies.NewLRU(env.w, half, env.simSeed+uint64(r))
			if err != nil {
				return err
			}
			cfg := env.simCfg
			cfg.Warmup = true
			cfg.RemoteRedirectPenalty = units.Seconds(penalty)
			res, err := simulateWithConfig(env, lru, cfg)
			if err != nil {
				return err
			}
			col.add("LRU+redirect"+suffix, penalty, stats.RelativeIncrease(res, env.baseRT))
			col.add("Proposed"+suffix, penalty, stats.RelativeIncrease(oursRT, env.baseRT))
		}
		return nil
	})
}
