package experiments

import (
	"bytes"
	"testing"
)

// TestOverloadAcceptance pins the study's whole point: without protections
// the post-spike retry storm keeps the system collapsed (goodput under 20%
// of capacity although offered load is 60% of it), and with the admission
// stack on, goodput recovers within one drain window, retry amplification
// stays within the budget's 1.1× bound, and no response is ever served
// past its deadline.
func TestOverloadAcceptance(t *testing.T) {
	opts := Quick()
	opts.Runs = 2
	res, err := Overload(opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range res.Runs {
		if run.Off.PostSpikeGoodput >= 0.2*OverloadCapacity {
			t.Errorf("run %d off: post-spike goodput %.0f req/s — expected metastable collapse under 20%% of capacity (%.0f)",
				run.Run, run.Off.PostSpikeGoodput, 0.2*OverloadCapacity)
		}
		if run.Off.RecoverMs >= 0 {
			t.Errorf("run %d off: recovered at %dms — an unprotected metastable failure must not recover", run.Run, run.Off.RecoverMs)
		}
		if run.On.RecoverMs < 0 || run.On.RecoverMs > DrainWindow().Milliseconds() {
			t.Errorf("run %d on: recover %dms, want within one drain window (%dms)",
				run.Run, run.On.RecoverMs, DrainWindow().Milliseconds())
		}
		if run.On.Amplification > 1.1 {
			t.Errorf("run %d on: retry amplification %.3f exceeds the 1.1x budget bound", run.Run, run.On.Amplification)
		}
		if run.On.DeadlineServed != 0 {
			t.Errorf("run %d on: %d responses served past their deadline — deadline propagation must make this zero", run.Run, run.On.DeadlineServed)
		}
		if run.On.PeakQueue > OverloadMaxQueue {
			t.Errorf("run %d on: peak queue %d exceeds the admission bound %d", run.Run, run.On.PeakQueue, OverloadMaxQueue)
		}
		// Both passes saw the same demand: the spike really was 10x.
		if run.On.Requests < 5000 || run.Off.Requests < 5000 {
			t.Errorf("run %d: suspiciously few requests (off %d, on %d)", run.Run, run.Off.Requests, run.On.Requests)
		}
	}
	if !res.Clean() {
		t.Error("Clean() = false on a passing result")
	}
}

// TestOverloadBitReproducible renders the same seed twice and requires
// byte-identical output — table and timeline figure both.
func TestOverloadBitReproducible(t *testing.T) {
	render := func(workers int) []byte {
		opts := Quick()
		opts.Runs = 2
		opts.Workers = workers
		res, err := Overload(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render(1)
	b := render(4)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed overload runs rendered differently:\n--- workers=1\n%s\n--- workers=4\n%s", a, b)
	}
}

// TestOverloadSeedSensitivity: a different seed draws a different arrival
// process — the reproducibility above is seed-derivation, not constants.
func TestOverloadSeedSensitivity(t *testing.T) {
	run := func(seed uint64) int {
		opts := Quick()
		opts.Runs = 1
		opts.Seed = seed
		res, err := Overload(opts)
		if err != nil {
			t.Fatal(err)
		}
		return res.Runs[0].Off.Requests
	}
	if run(1) == run(2) {
		t.Error("different seeds produced identical request counts — arrival stream not seed-derived")
	}
}
