package experiments

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/netsim"
)

func TestCriticalPathShape(t *testing.T) {
	res, err := CriticalPath(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pages == 0 {
		t.Fatal("no pages compared")
	}
	if res.Within > res.Pages {
		t.Fatalf("within %d > pages %d", res.Within, res.Pages)
	}
	if res.WinnerAgreement < 0 || res.WinnerAgreement > 1 {
		t.Fatalf("winner agreement %g outside [0,1]", res.WinnerAgreement)
	}
	if res.Transfer <= 0 {
		t.Fatal("no observed transfer time")
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "winner agreement") {
		t.Fatalf("unexpected rendering:\n%s", buf.String())
	}
}

// TestCriticalPathUnperturbed pins the study's validity: with the §5.1
// deviations turned off the simulator realizes exactly the conditions the
// planner assumed, so observed per-page D must essentially equal predicted
// D and the dominant chain must agree everywhere.
func TestCriticalPathUnperturbed(t *testing.T) {
	o := tiny()
	o.Perturb = netsim.NoPerturbConfig()
	res, err := CriticalPath(o)
	if err != nil {
		t.Fatal(err)
	}
	if res.MeanAbsRelErr > 0.01 {
		t.Fatalf("unperturbed mean |obs-pred|/pred = %.4f, want ~0", res.MeanAbsRelErr)
	}
	if res.Within != res.Pages {
		t.Fatalf("unperturbed run flagged %d of %d pages", res.Pages-res.Within, res.Pages)
	}
	if res.WinnerAgreement < 0.99 {
		t.Fatalf("unperturbed winner agreement %.3f, want ~1", res.WinnerAgreement)
	}
}
