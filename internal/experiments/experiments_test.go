package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

// tiny returns options small enough for unit tests: 2 runs, reduced
// workload, few requests.
func tiny() Options {
	o := Quick()
	o.Runs = 2
	o.RequestsPerSite = 120
	return o
}

func seriesByName(f *stats.Figure, name string) *stats.Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func TestOptionsValidate(t *testing.T) {
	o := Quick()
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	o.Runs = 0
	if err := o.Validate(); err == nil {
		t.Error("zero runs accepted")
	}
	o = Quick()
	o.Workload.Sites = 0
	if err := o.Validate(); err == nil {
		t.Error("bad workload config accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	fig, err := Figure1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Proposed", "LRU", "Local", "Remote"} {
		s := seriesByName(fig, name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.X) != len(StorageGrid) {
			t.Errorf("%s has %d points, want %d", name, len(s.X), len(StorageGrid))
		}
	}
	ours := seriesByName(fig, "Proposed")
	lru := seriesByName(fig, "LRU")
	remote := seriesByName(fig, "Remote")

	// At 100 % storage the proposed policy is the unconstrained baseline:
	// its relative increase must be ≈0 (same plan, same traffic).
	last := ours.Y[len(ours.Y)-1]
	if last < -1 || last > 1 {
		t.Errorf("proposed at 100%% storage = %+.2f%%, want ≈0", last)
	}
	// The paper's headline orderings.
	for i := range ours.Y {
		if ours.Y[i] > lru.Y[i]+2 { // small tolerance for run noise
			t.Errorf("at %v%% storage proposed (%.1f%%) worse than LRU (%.1f%%)",
				ours.X[i], ours.Y[i], lru.Y[i])
		}
	}
	if remote.Y[0] < 100 {
		t.Errorf("Remote reference = %+.1f%%, expected ≫ +100%%", remote.Y[0])
	}
	// Monotone-ish: less storage must not help the proposed policy.
	if ours.Y[0] < last-1 {
		t.Errorf("proposed at 10%% storage (%.1f%%) better than at 100%% (%.1f%%)", ours.Y[0], last)
	}
}

func TestFigure2Shape(t *testing.T) {
	fig, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	s := seriesByName(fig, "Proposed")
	if s == nil {
		t.Fatal("missing Proposed series")
	}
	if len(s.X) != len(CapacityGrid)+1 { // +1 for the 0 % anchor
		t.Fatalf("%d points, want %d", len(s.X), len(CapacityGrid)+1)
	}
	byX := map[float64]float64{}
	for i, x := range s.X {
		byX[x] = s.Y[i]
	}
	// Full capacity ≈ unconstrained; zero capacity is the worst point.
	if byX[100] > 5 {
		t.Errorf("at 100%% capacity: %+.1f%%, want ≈0", byX[100])
	}
	if byX[0] <= byX[100]+50 {
		t.Errorf("at 0%% capacity (%.1f%%) not dramatically worse than 100%% (%.1f%%)", byX[0], byX[100])
	}
	// The curve must be non-increasing in capacity (within noise).
	if byX[30] < byX[80]-2 {
		t.Errorf("more capacity hurt: 30%%→%.1f%%, 80%%→%.1f%%", byX[30], byX[80])
	}
}

func TestFigure3Shape(t *testing.T) {
	fig, err := Figure3(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"C(R)=90%", "C(R)=70%", "C(R)=50%"} {
		s := seriesByName(fig, name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.X) != len(CapacityGrid) {
			t.Errorf("%s has %d points", name, len(s.X))
		}
	}
	// A tighter repository must not help: at equal local capacity the 50 %
	// series sits at or above the 90 % one (within noise).
	s90, s50 := seriesByName(fig, "C(R)=90%"), seriesByName(fig, "C(R)=50%")
	for i := range s90.X {
		if s50.Y[i] < s90.Y[i]-3 {
			t.Errorf("at local %v%%: C(R)=50%% (%.1f%%) better than C(R)=90%% (%.1f%%)",
				s90.X[i], s50.Y[i], s90.Y[i])
		}
	}
}

func TestTable1Quick(t *testing.T) {
	sum, err := Table1(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Sites != 4 {
		t.Errorf("sites = %d", sum.Sites)
	}
	var sb strings.Builder
	if err := sum.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Hot pages") {
		t.Error("summary incomplete")
	}
}

func TestStorageEquivalence(t *testing.T) {
	res, err := StorageEquivalence(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fraction <= 0 || res.Fraction > 1 {
		t.Errorf("fraction = %v", res.Fraction)
	}
	// The proposed policy needs strictly less than full storage to match
	// LRU at 100 % — the §5.2 claim (≈65 % in the paper; exact value
	// depends on scale).
	if res.Fraction > 0.95 {
		t.Errorf("equivalence fraction %.0f%% — no storage savings found", res.Fraction*100)
	}
	var sb strings.Builder
	if err := res.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "equivalence fraction") {
		t.Error("report incomplete")
	}
}

func TestFigureTableRendering(t *testing.T) {
	fig, err := Figure2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var table, csv strings.Builder
	if err := fig.WriteTable(&table); err != nil {
		t.Fatal(err)
	}
	if err := fig.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(table.String(), "Figure 2") || !strings.Contains(csv.String(), "Proposed") {
		t.Error("rendered outputs incomplete")
	}
}
