package experiments

import (
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/stats"
)

// WeightGrid sweeps the α2/α1 ratio: 0 ignores optional downloads, the
// paper uses 0.5 (α1=2, α2=1), large values prioritize optional traffic.
var WeightGrid = []float64{0, 0.25, 0.5, 1, 2, 4}

// WeightsStudy probes the objective weights' "well defined natural
// meaning" (Section 3): under tight storage the planner must trade page
// retrieval time against optional download time, and the (α1, α2) weights
// pick the point on that Pareto front. For each α2/α1 ratio the study
// plans at 30 % storage and reports the simulated mean page time and mean
// optional time per view, each relative to the unconstrained reference.
func WeightsStudy(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		// Reference means from the unconstrained plan.
		refEnv, err := model.NewEnv(env.w, env.est, unconstrainedBudgets(env.w))
		if err != nil {
			return err
		}
		refPlan, _, err := core.Plan(refEnv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}
		refPage, refOpt, err := pageAndOptMeans(env, refPlan)
		if err != nil {
			return err
		}

		for _, ratio := range WeightGrid {
			b := unconstrainedBudgets(env.w).Scale(env.w, 0.3, 1)
			menv, err := model.NewEnv(env.w, env.est, b)
			if err != nil {
				return err
			}
			menv.Alpha1 = 2
			menv.Alpha2 = 2 * ratio
			p, _, err := core.Plan(menv, core.Options{Workers: env.planWorkers})
			if err != nil {
				return err
			}
			pageMean, optMean, err := pageAndOptMeans(env, p)
			if err != nil {
				return err
			}
			col.add("Page RT", ratio, stats.RelativeIncrease(pageMean, refPage))
			if refOpt > 0 {
				col.add("Optional RT", ratio, stats.RelativeIncrease(optMean, refOpt))
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Objective weights: page vs optional trade-off (30% storage)",
		"α2/α1 ratio (paper: 0.5)", []string{"Page RT", "Optional RT"})
	fig.YLabel = "% increase over the unconstrained plan"
	return fig, nil
}

// pageAndOptMeans simulates a placement on the run's traffic and returns
// the mean page retrieval time and mean optional seconds per view.
func pageAndOptMeans(env *runEnv, p *model.Placement) (pageMean, optMean float64, err error) {
	res, err := simulateFull(env, policies.NewStatic("w", p))
	if err != nil {
		return 0, 0, err
	}
	return res.PageRT.Mean(), res.OptPerView.Mean(), nil
}
