package experiments

import "testing"

func TestDegradedModeShape(t *testing.T) {
	fig, err := DegradedMode(tiny())
	if err != nil {
		t.Fatal(err)
	}
	names := []string{
		"Proposed (50% storage)", "Full replication",
		"No replication", "Repository only",
	}
	for _, name := range names {
		s := seriesByName(fig, name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.X) != len(AvailabilityGrid) {
			t.Errorf("%s has %d points, want %d", name, len(s.X), len(AvailabilityGrid))
		}
	}
	// The repository-only floor is availability-independent: flat.
	floor := seriesByName(fig, "Repository only")
	for i := 1; i < len(floor.Y); i++ {
		if floor.Y[i] != floor.Y[0] {
			t.Errorf("repository-only series not flat: %v", floor.Y)
		}
	}
	// Replication only helps while the site answers: as availability drops,
	// the replicated policies decay toward the repository-only floor.
	for _, name := range names[:2] {
		s := seriesByName(fig, name)
		healthy, worst := s.Y[0], s.Y[len(s.Y)-1]
		if worst <= healthy {
			t.Errorf("%s did not degrade: healthy %+.1f%%, 50%% availability %+.1f%%",
				name, healthy, worst)
		}
		if healthy >= floor.Y[0] {
			t.Errorf("%s healthy (%+.1f%%) no better than repository-only floor (%+.1f%%)",
				name, healthy, floor.Y[0])
		}
	}
}

func TestDegradedModeReproducible(t *testing.T) {
	a, err := DegradedMode(tiny())
	if err != nil {
		t.Fatal(err)
	}
	b, err := DegradedMode(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series count differs: %d vs %d", len(a.Series), len(b.Series))
	}
	for i, s := range a.Series {
		o := b.Series[i]
		if s.Name != o.Name {
			t.Fatalf("series order differs: %q vs %q", s.Name, o.Name)
		}
		for j := range s.Y {
			if s.Y[j] != o.Y[j] || s.X[j] != o.X[j] {
				t.Errorf("%s point %d differs: (%v, %v) vs (%v, %v)",
					s.Name, j, s.X[j], s.Y[j], o.X[j], o.Y[j])
			}
		}
	}
}
