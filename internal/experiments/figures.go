package experiments

import (
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/stats"
	"repro/internal/units"
)

// totalFlips sums the per-site processing-restoration flips of a plan.
func totalFlips(pr *core.Result) int64 {
	var n int64
	for _, s := range pr.Sites {
		n += int64(s.ProcFlips)
	}
	return n
}

// collector accumulates per-(series, x) relative response times across runs
// thread-safely (runs execute concurrently).
type collector struct {
	mu   sync.Mutex
	data map[string]map[float64]*stats.Accumulator
	xs   map[string][]float64 // insertion order per series
}

func newCollector() *collector {
	return &collector{
		data: make(map[string]map[float64]*stats.Accumulator),
		xs:   make(map[string][]float64),
	}
}

// add records one run's relative increase (percent) at x for the series.
func (c *collector) add(series string, x, relPct float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.data[series]
	if !ok {
		m = make(map[float64]*stats.Accumulator)
		c.data[series] = m
	}
	acc, ok := m[x]
	if !ok {
		acc = &stats.Accumulator{}
		m[x] = acc
		c.xs[series] = append(c.xs[series], x)
	}
	acc.Add(relPct)
}

// figure renders the collected series, in the given order, as a Figure.
func (c *collector) figure(title, xlabel string, order []string) *stats.Figure {
	c.mu.Lock()
	defer c.mu.Unlock()
	f := &stats.Figure{Title: title, XLabel: xlabel, YLabel: "% increase in response time vs unconstrained proposed"}
	for _, name := range order {
		m, ok := c.data[name]
		if !ok {
			continue
		}
		s := f.AddSeries(name)
		for _, x := range sortedKeys(c.xs[name], m) {
			acc := m[x]
			s.Add(x, acc.Mean(), acc.CI95())
		}
	}
	return f
}

func sortedKeys(order []float64, m map[float64]*stats.Accumulator) []float64 {
	// Preserve insertion order but deduplicate (runs insert the same grid).
	seen := make(map[float64]bool, len(order))
	out := make([]float64, 0, len(m))
	for _, x := range order {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// StorageGrid is the Figure-1 sweep of local storage fractions.
var StorageGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// CapacityGrid is the Figure-2/3 sweep of local processing fractions.
var CapacityGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// CentralGrid is Figure 3's repository capacity fractions.
var CentralGrid = []float64{0.9, 0.7, 0.5}

// Figure1 reproduces the paper's Figure 1: average response time versus
// local storage capacity with the processing constraint relaxed, for the
// proposed policy and ideal LRU, plus the flat Remote and Local reference
// levels (the paper reports +335 % and +23.8 %).
func Figure1(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		// Flat references, no constraints (§5.2).
		remoteRT, err := env.simulate(policies.NewRemote(env.w), false)
		if err != nil {
			return err
		}
		localRT, err := env.simulate(policies.NewLocal(env.w), false)
		if err != nil {
			return err
		}

		for _, frac := range StorageGrid {
			pointStart := time.Now() //repllint:allow determinism — wall-clock progress narration; never feeds results
			b := unconstrainedBudgets(env.w).Scale(env.w, frac, 1)
			// Scale keeps capacities; re-relax them explicitly.
			for i := range b.SiteCapacity {
				b.SiteCapacity[i] = model.Infinite()
			}
			b.RepoCapacity = model.Infinite()

			oursRT, pr, err := env.simulatePlanned(b, false)
			if err != nil {
				return err
			}
			col.add("Proposed", frac*100, stats.RelativeIncrease(oursRT, env.baseRT))

			lruPol, err := policies.NewLRU(env.w, b, env.simSeed+uint64(r))
			if err != nil {
				return err
			}
			lruRT, err := env.simulate(lruPol, true) // warm (ideal) cache
			if err != nil {
				return err
			}
			col.add("LRU", frac*100, stats.RelativeIncrease(lruRT, env.baseRT))

			col.add("Remote", frac*100, stats.RelativeIncrease(remoteRT, env.baseRT))
			col.add("Local", frac*100, stats.RelativeIncrease(localRT, env.baseRT))
			opts.progressf("fig1 run %d: storage %3.0f%% — plan D=%.1f feasible=%v, proposed %+.1f%%, lru %+.1f%% (%.2fs)",
				r, frac*100, pr.D, pr.Feasible,
				stats.RelativeIncrease(oursRT, env.baseRT), stats.RelativeIncrease(lruRT, env.baseRT),
				time.Since(pointStart).Seconds()) //repllint:allow determinism — wall-clock progress narration; never feeds results
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col.figure("Figure 1: response time vs local storage capacity", "storage %",
		[]string{"Proposed", "LRU", "Local", "Remote"}), nil
}

// Figure2 reproduces Figure 2: average response time versus local
// processing capacity at 100 % storage (the paper's double-exponential
// curve, reaching the Remote level at 0 % capacity).
func Figure2(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		for _, frac := range CapacityGrid {
			pointStart := time.Now() //repllint:allow determinism — wall-clock progress narration; never feeds results
			b := model.FullBudgets(env.w).Scale(env.w, 1, frac)
			b.RepoCapacity = model.Infinite()
			oursRT, pr, err := env.simulatePlanned(b, false)
			if err != nil {
				return err
			}
			col.add("Proposed", frac*100, stats.RelativeIncrease(oursRT, env.baseRT))
			opts.progressf("fig2 run %d: capacity %3.0f%% — plan D=%.1f flips=%d, proposed %+.1f%% (%.2fs)",
				r, frac*100, pr.D, totalFlips(pr),
				stats.RelativeIncrease(oursRT, env.baseRT), time.Since(pointStart).Seconds()) //repllint:allow determinism — wall-clock progress narration; never feeds results
		}
		// The 0 % anchor: everything is forced remote.
		b := model.FullBudgets(env.w).Scale(env.w, 1, 0)
		b.RepoCapacity = model.Infinite()
		zeroRT, _, err := env.simulatePlanned(b, false)
		if err != nil {
			return err
		}
		col.add("Proposed", 0, stats.RelativeIncrease(zeroRT, env.baseRT))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col.figure("Figure 2: response time vs local processing capacity (100% storage)",
		"processing capacity %", []string{"Proposed"}), nil
}

// Figure3 reproduces Figure 3: response time versus local processing
// capacity when the repository can serve only 90 %, 70 % or 50 % of the
// workload the sites' pre-offload plans direct at it, activating the
// off-loading negotiation.
func Figure3(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		for _, localFrac := range CapacityGrid {
			// Probe: plan with an unconstrained repository to find the
			// workload the local plans would impose on it.
			probe := model.FullBudgets(env.w).Scale(env.w, 1, localFrac)
			probe.RepoCapacity = model.Infinite()
			probeEnv, err := model.NewEnv(env.w, env.est, probe)
			if err != nil {
				return err
			}
			pp, _, err := planProbe(probeEnv, env.planWorkers)
			if err != nil {
				return err
			}
			preLoad := model.RepoLoad(probeEnv, pp)

			for _, centralFrac := range CentralGrid {
				pointStart := time.Now() //repllint:allow determinism — wall-clock progress narration; never feeds results
				b := model.FullBudgets(env.w).Scale(env.w, 1, localFrac)
				b.RepoCapacity = units.ReqPerSec(float64(preLoad) * centralFrac)
				rt, pr, err := env.simulatePlanned(b, false)
				if err != nil {
					return err
				}
				col.add(seriesName(centralFrac), localFrac*100, stats.RelativeIncrease(rt, env.baseRT))
				opts.progressf("fig3 run %d: local %3.0f%% central %2.0f%% — offload rounds=%d msgs=%d restored=%v, %+.1f%% (%.2fs)",
					r, localFrac*100, centralFrac*100, pr.Offload.Rounds, pr.Offload.Messages,
					pr.Offload.Restored, stats.RelativeIncrease(rt, env.baseRT), time.Since(pointStart).Seconds()) //repllint:allow determinism — wall-clock progress narration; never feeds results
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col.figure("Figure 3: response time vs local capacity under constrained repository",
		"local processing capacity %",
		[]string{seriesName(0.9), seriesName(0.7), seriesName(0.5)}), nil
}

func seriesName(centralFrac float64) string {
	switch centralFrac {
	case 0.9:
		return "C(R)=90%"
	case 0.7:
		return "C(R)=70%"
	case 0.5:
		return "C(R)=50%"
	}
	return "C(R)=?"
}
