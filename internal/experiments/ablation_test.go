package experiments

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

func TestAblations(t *testing.T) {
	res, err := Ablations(tiny())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, row := range res.Rows {
		byName[row.Name] = row
	}
	for _, want := range []string{
		"Proposed", "Proposed (unsorted PARTITION)", "Proposed @40% storage",
		"No re-partition @40% storage", "Refined @40% storage",
		"HalfSplit", "SizeThreshold(500K)", "Local",
	} {
		if _, ok := byName[want]; !ok {
			t.Fatalf("missing variant %q", want)
		}
	}
	// The full algorithm must beat every naive split on the cost model.
	if byName["Proposed"].DModel > byName["HalfSplit"].DModel {
		t.Errorf("Proposed D %.0f worse than HalfSplit %.0f", byName["Proposed"].DModel, byName["HalfSplit"].DModel)
	}
	if byName["Proposed"].DModel > byName["SizeThreshold(500K)"].DModel {
		t.Error("Proposed worse than SizeThreshold on the model")
	}
	// Sorted PARTITION must not lose to unsorted on the model objective.
	if byName["Proposed"].DModel > byName["Proposed (unsorted PARTITION)"].DModel*1.001 {
		t.Errorf("sorted PARTITION (D=%.0f) worse than unsorted (D=%.0f)",
			byName["Proposed"].DModel, byName["Proposed (unsorted PARTITION)"].DModel)
	}
	// Re-partition must help (or at least not hurt) at tight storage.
	if byName["Proposed @40% storage"].DModel > byName["No re-partition @40% storage"].DModel*1.001 {
		t.Errorf("re-partition hurt: %.0f vs %.0f",
			byName["Proposed @40% storage"].DModel, byName["No re-partition @40% storage"].DModel)
	}
	// The refinement extension must not make the model objective worse.
	if byName["Refined @40% storage"].DModel > byName["Proposed @40% storage"].DModel*1.001 {
		t.Errorf("refinement hurt the objective: %.0f vs %.0f",
			byName["Refined @40% storage"].DModel, byName["Proposed @40% storage"].DModel)
	}

	var sb strings.Builder
	if err := res.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "variant") || !strings.Contains(sb.String(), "Proposed") {
		t.Error("table rendering incomplete")
	}
}

func TestDrift(t *testing.T) {
	fig, err := Drift(tiny())
	if err != nil {
		t.Fatal(err)
	}
	stale := seriesByName(fig, "Stale plan")
	if stale == nil || len(stale.X) != len(DriftGrid) {
		t.Fatal("missing or mis-sized stale series")
	}
	byX := map[float64]float64{}
	for i, x := range stale.X {
		byX[x] = stale.Y[i]
	}
	// With no drift the stale plan IS the fresh plan: ≈0.
	if byX[0] < -1 || byX[0] > 1 {
		t.Errorf("0%% drift: stale plan %+.2f%%, want ≈0", byX[0])
	}
	// Full rotation must hurt the stale plan more than no rotation.
	if byX[100] <= byX[0] {
		t.Errorf("stale plan not degraded by full rotation: %+.2f%% vs %+.2f%%", byX[100], byX[0])
	}
}

func TestRedirectStudy(t *testing.T) {
	fig, err := RedirectStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, suffix := range []string{" (Table-1 rates)", " (100× rates)"} {
		lru := seriesByName(fig, "LRU+redirect"+suffix)
		if lru == nil || len(lru.X) != len(RedirectGrid) {
			t.Fatalf("missing LRU series%s", suffix)
		}
		// The penalty must worsen the redirect-based scheme.
		if lru.Y[len(lru.Y)-1] <= lru.Y[0] {
			t.Errorf("%s: redirection penalty did not hurt: %v -> %v", suffix, lru.Y[0], lru.Y[len(lru.Y)-1])
		}
		ours := seriesByName(fig, "Proposed"+suffix)
		for i := 1; i < len(ours.Y); i++ {
			if ours.Y[i] != ours.Y[0] {
				t.Errorf("%s: proposed reference should be flat, got %v vs %v", suffix, ours.Y[i], ours.Y[0])
			}
		}
	}
	// At broadband rates the per-GET penalty must matter far more than at
	// Table-1 rates (the transfer times no longer drown it).
	slow := seriesByName(fig, "LRU+redirect (Table-1 rates)")
	fast := seriesByName(fig, "LRU+redirect (100× rates)")
	slowRise := slow.Y[len(slow.Y)-1] - slow.Y[0]
	fastRise := fast.Y[len(fast.Y)-1] - fast.Y[0]
	if fastRise < 2*slowRise {
		t.Errorf("fast-network penalty rise (%.2f) not ≫ slow-network rise (%.2f)", fastRise, slowRise)
	}
}

func TestSensitivity(t *testing.T) {
	fig, err := Sensitivity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"Proposed", "LRU", "Local"} {
		s := seriesByName(fig, name)
		if s == nil || len(s.X) != len(SeverityGrid) {
			t.Fatalf("missing or mis-sized series %q", name)
		}
	}
	// The gap must survive at every severity: LRU stays above the
	// proposed policy (which is the 0-line by construction).
	lru := seriesByName(fig, "LRU")
	for i, y := range lru.Y {
		if y < -3 {
			t.Errorf("at severity %v LRU beat the proposed policy by %.1f%%", lru.X[i], -y)
		}
	}
}

func TestThresholdStudy(t *testing.T) {
	fig, err := ThresholdStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	dyn := seriesByName(fig, "Threshold dynamic")
	ours := seriesByName(fig, "Proposed (static plan)")
	if dyn == nil || ours == nil || len(dyn.X) != len(ThresholdGrid) {
		t.Fatal("missing series")
	}
	// The static plan's level is flat; the dynamic scheme's performance
	// varies with the threshold (the Section-6 critique) and should not
	// beat the plan at any threshold by a clear margin.
	for i := range dyn.X {
		if ours.Y[i] > dyn.Y[i]+5 {
			t.Errorf("at threshold %v the static plan (%.1f%%) clearly lost to dynamic (%.1f%%)",
				dyn.X[i], ours.Y[i], dyn.Y[i])
		}
	}
	// Sensitivity to the knob: the best and worst threshold should differ
	// noticeably.
	min, max := dyn.Y[0], dyn.Y[0]
	for _, y := range dyn.Y {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if max-min < 1 {
		t.Logf("note: dynamic scheme barely sensitive to threshold here (%.1f-%.1f)", min, max)
	}
}

func TestFigure1ShapeUnderZipf(t *testing.T) {
	// Robustness: the paper's orderings should not hinge on the two-class
	// popularity model.
	opts := tiny()
	opts.Workload.Popularity = workload.PopularityZipf
	opts.Workload.ZipfS = 0.8
	fig, err := Figure1(opts)
	if err != nil {
		t.Fatal(err)
	}
	ours := seriesByName(fig, "Proposed")
	lru := seriesByName(fig, "LRU")
	for i := range ours.Y {
		if ours.Y[i] > lru.Y[i]+2 {
			t.Errorf("under Zipf at %v%% storage proposed (%.1f%%) lost to LRU (%.1f%%)",
				ours.X[i], ours.Y[i], lru.Y[i])
		}
	}
}

func TestQueueingStudy(t *testing.T) {
	fig, err := QueueingStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	aware := seriesByName(fig, "Eq.8-aware plan")
	ignorant := seriesByName(fig, "Capacity-ignorant plan")
	if aware == nil || ignorant == nil || len(aware.X) != len(QueueingGrid) {
		t.Fatal("missing series")
	}
	// At the tightest capacity the ignorant plan must pay clearly more
	// queueing delay than the aware one, whose overhead stays small.
	if ignorant.Y[0] <= aware.Y[0] {
		t.Errorf("at %v%% capacity the ignorant plan's overhead (%.2f%%) not above the aware one's (%.2f%%)",
			aware.X[0], ignorant.Y[0], aware.Y[0])
	}
	for i, y := range aware.Y {
		if y > 5 {
			t.Errorf("aware plan's queueing overhead %.2f%% at %v%% capacity — Eq. 8 should bound the backlog", y, aware.X[i])
		}
	}
	// The ignorant plan's overhead grows as capacity shrinks.
	last := len(ignorant.Y) - 1
	if ignorant.Y[0] <= ignorant.Y[last] {
		t.Errorf("ignorant overhead not increasing as capacity drops: %.2f%% -> %.2f%%",
			ignorant.Y[last], ignorant.Y[0])
	}
}

func TestPeriodStudy(t *testing.T) {
	opts := tiny()
	opts.Runs = 1
	opts.RequestsPerSite = 80
	fig, err := PeriodStudy(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt := seriesByName(fig, "RT vs oracle")
	churn := seriesByName(fig, "Churn (GB moved)")
	if rt == nil || churn == nil || len(rt.X) != len(PeriodGrid) {
		t.Fatal("missing series")
	}
	byX := func(s *stats.Series) map[float64]float64 {
		m := map[float64]float64{}
		for i, x := range s.X {
			m[x] = s.Y[i]
		}
		return m
	}
	rtBy, churnBy := byX(rt), byX(churn)
	// Period 1 IS the oracle: zero RT penalty, maximal churn.
	if rtBy[1] < -0.5 || rtBy[1] > 0.5 {
		t.Errorf("period-1 RT penalty %.2f%%, want ≈0", rtBy[1])
	}
	// Never re-planning must cost more RT than period 1 and move no bytes.
	never := float64(PeriodEpochs)
	if rtBy[never] <= rtBy[1] {
		t.Errorf("never-replan RT penalty (%.2f%%) not above period-1 (%.2f%%)", rtBy[never], rtBy[1])
	}
	if churnBy[never] != 0 {
		t.Errorf("never-replan churn %.3f GB, want 0", churnBy[never])
	}
	// Churn decreases with the period.
	if churnBy[1] <= churnBy[6] {
		t.Errorf("churn not decreasing with period: %.3f vs %.3f GB", churnBy[1], churnBy[6])
	}
}

func TestWeightsStudy(t *testing.T) {
	fig, err := WeightsStudy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	page := seriesByName(fig, "Page RT")
	if page == nil || len(page.X) != len(WeightGrid) {
		t.Fatal("missing page series")
	}
	byX := map[float64]float64{}
	for i, x := range page.X {
		byX[x] = page.Y[i]
	}
	// Weighting optional traffic more can only hold page RT steady or
	// worsen it (the planner diverts storage to optional objects):
	// monotone within noise between the extremes.
	if byX[4] < byX[0]-2 {
		t.Errorf("page RT improved when optional weight grew: %v -> %v", byX[0], byX[4])
	}
	// The optional series exists when the workload drew optional pages.
	if opt := seriesByName(fig, "Optional RT"); opt != nil && len(opt.Y) > 0 {
		oByX := map[float64]float64{}
		for i, x := range opt.X {
			oByX[x] = opt.Y[i]
		}
		if oByX[4] > oByX[0]+2 {
			t.Errorf("optional RT worsened as its weight grew: %v -> %v", oByX[0], oByX[4])
		}
	}
}
