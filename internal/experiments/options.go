// Package experiments regenerates the paper's evaluation (Section 5): the
// Table-1 workload audit, Figure 1 (response time vs local storage,
// proposed policy vs ideal LRU, with the Remote/Local reference levels),
// Figure 2 (response time vs local processing capacity) and Figure 3
// (response time vs local capacity for constrained repository capacities),
// plus the §5.2 storage-equivalence claim (the proposed policy matching
// LRU/Local with ≈65 % of the storage). Every experiment averages over
// independent runs — fresh workload, estimates and request streams — and
// reports response times relative to the proposed policy with no
// constraints, exactly as the paper plots them.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"sync"

	"repro/internal/netsim"
	"repro/internal/workload"
)

// Options configures an experiment.
type Options struct {
	Workload workload.Config
	Net      netsim.Config
	Perturb  netsim.PerturbConfig

	// Runs is the number of independent repetitions averaged per point
	// (the paper uses 20).
	Runs int
	// Seed derives every run's workload, estimates and request streams.
	Seed uint64
	// Workers bounds run-level parallelism; 0 = GOMAXPROCS.
	Workers int
	// PlanWorkers bounds the intra-plan concurrency (core.Options.Workers)
	// of every Plan call an experiment makes. The default 0 means 1:
	// experiments already parallelize across runs, so nested planning pools
	// only help when Runs is small relative to the machine. Any value yields
	// byte-identical plans — this is a throughput knob, not a results knob.
	PlanWorkers int
	// RequestsPerSite overrides the workload config's request count when
	// positive.
	RequestsPerSite int
	// Progress, when non-nil, receives one formatted line per harness
	// event — run-environment setup and each sweep point's completion with
	// its wall-clock and plan statistics — so long sweeps can narrate.
	// Runs execute concurrently: the sink must serialize its own output
	// (ProgressWriter does).
	Progress func(format string, args ...interface{})
}

// Paper returns the full Table-1 configuration: 10 sites, 15,000 objects,
// 10,000 requests per site, 20 runs.
func Paper() Options {
	return Options{
		Workload: workload.DefaultConfig(),
		Net:      netsim.DefaultConfig(),
		Perturb:  netsim.DefaultPerturbConfig(),
		Runs:     20,
		Seed:     2026,
	}
}

// Quick returns a reduced configuration for tests and examples: the same
// distributions at ~50× less volume and 3 runs.
func Quick() Options {
	return Options{
		Workload: workload.SmallConfig(),
		Net:      netsim.DefaultConfig(),
		Perturb:  netsim.DefaultPerturbConfig(),
		Runs:     3,
		Seed:     2026,
	}
}

// Validate rejects unusable options.
func (o *Options) Validate() error {
	if err := o.Workload.Validate(); err != nil {
		return err
	}
	if err := o.Net.Validate(); err != nil {
		return err
	}
	if err := o.Perturb.Validate(); err != nil {
		return err
	}
	if o.Runs <= 0 {
		return fmt.Errorf("experiments: Runs must be positive, got %d", o.Runs)
	}
	if o.RequestsPerSite < 0 {
		return fmt.Errorf("experiments: negative RequestsPerSite")
	}
	if o.PlanWorkers < 0 {
		return fmt.Errorf("experiments: negative PlanWorkers")
	}
	return nil
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o *Options) planWorkers() int {
	if o.PlanWorkers > 0 {
		return o.PlanWorkers
	}
	return 1
}

func (o *Options) requests() int {
	if o.RequestsPerSite > 0 {
		return o.RequestsPerSite
	}
	return o.Workload.RequestsPerSite
}

// progressf reports one harness event to the Progress sink; no-op when the
// sink is unset.
func (o *Options) progressf(format string, args ...interface{}) {
	if o.Progress != nil {
		o.Progress(format, args...)
	}
}

// ProgressWriter returns a Progress sink writing one line per event to w,
// serialized by an internal mutex so concurrent runs interleave cleanly.
func ProgressWriter(w io.Writer) func(format string, args ...interface{}) {
	var mu sync.Mutex
	return func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Fprintf(w, format+"\n", args...)
	}
}
