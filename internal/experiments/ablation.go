package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// AblationRow is one policy variant's simulated performance relative to the
// unconstrained proposed policy.
type AblationRow struct {
	Name   string
	RelPct float64 // mean % increase over the baseline
	CI95   float64
	DModel float64 // objective under the cost model (mean over runs)
}

// AblationResult compares the full algorithm with its ablations and the
// naive splits — the design-choice study DESIGN.md §7 calls for.
type AblationResult struct {
	Rows []AblationRow
}

// Ablations measures, on identical traffic: the full planner, PARTITION
// without the decreasing-size sort, planning without the re-partitioning
// step (under 40 % storage where it matters), the naive HalfSplit and
// SizeThreshold policies, and the Local baseline.
func Ablations(opts Options) (*AblationResult, error) {
	type acc struct {
		rel stats.Accumulator
		d   stats.Accumulator
	}
	var mu sync.Mutex
	accs := map[string]*acc{}
	record := func(name string, rel, d float64) {
		mu.Lock()
		defer mu.Unlock()
		a, ok := accs[name]
		if !ok {
			a = &acc{}
			accs[name] = a
		}
		a.rel.Add(rel)
		a.d.Add(d)
	}

	err := forEachRun(&opts, func(r int, env *runEnv) error {
		measure := func(name string, b model.Budgets, planOpts core.Options) error {
			menv, err := model.NewEnv(env.w, env.est, b)
			if err != nil {
				return err
			}
			p, _, err := core.Plan(menv, planOpts)
			if err != nil {
				return err
			}
			rt, err := env.simulate(policies.NewStatic(name, p), false)
			if err != nil {
				return err
			}
			record(name, stats.RelativeIncrease(rt, env.baseRT), model.D(menv, p))
			return nil
		}

		full := unconstrainedBudgets(env.w)
		if err := measure("Proposed", full, core.Options{Workers: env.planWorkers}); err != nil {
			return err
		}
		if err := measure("Proposed (unsorted PARTITION)", full, core.Options{Workers: env.planWorkers, UnsortedPartition: true}); err != nil {
			return err
		}
		// The re-partitioning step only matters when storage forces
		// deallocations: compare at 40 % storage.
		tight := unconstrainedBudgets(env.w).Scale(env.w, 0.4, 1)
		for i := range tight.SiteCapacity {
			tight.SiteCapacity[i] = model.Infinite()
		}
		tight.RepoCapacity = model.Infinite()
		if err := measure("Proposed @40% storage", tight, core.Options{Workers: env.planWorkers}); err != nil {
			return err
		}
		if err := measure("No re-partition @40% storage", tight, core.Options{Workers: env.planWorkers, NoRepartition: true}); err != nil {
			return err
		}
		// Extension beyond the paper: the post-restoration refinement sweep.
		if err := measure("Refined @40% storage", tight, core.Options{Workers: env.planWorkers, Refine: true}); err != nil {
			return err
		}

		// Naive splits and the Local baseline, unconstrained.
		menv, err := model.NewEnv(env.w, env.est, full)
		if err != nil {
			return err
		}
		naive := []struct {
			name string
			pol  *policies.Static
		}{
			{"HalfSplit", policies.HalfSplit(env.w)},
			{"SizeThreshold(500K)", policies.SizeThreshold(env.w, int64(500*units.KB))},
			{"Local", policies.NewLocal(env.w)},
		}
		for _, n := range naive {
			rt, err := env.simulate(n.pol, false)
			if err != nil {
				return err
			}
			record(n.name, stats.RelativeIncrease(rt, env.baseRT), model.D(menv, n.pol.Placement()))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &AblationResult{}
	for name, a := range accs {
		res.Rows = append(res.Rows, AblationRow{
			Name:   name,
			RelPct: a.rel.Mean(),
			CI95:   a.rel.CI95(),
			DModel: a.d.Mean(),
		})
	}
	sort.Slice(res.Rows, func(i, j int) bool { return res.Rows[i].RelPct < res.Rows[j].RelPct })
	return res, nil
}

// Write renders the ablation table.
func (r *AblationResult) Write(w io.Writer) error {
	width := 0
	for _, row := range r.Rows {
		if len(row.Name) > width {
			width = len(row.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s  %-18s %s\n", width, "variant", "simulated RT", "model objective D"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-*s  %+7.1f%% ±%-6.1f  %.0f\n", width, row.Name, row.RelPct, row.CI95, row.DModel); err != nil {
			return err
		}
	}
	return nil
}

// DriftGrid is the hot-set rotation fractions of the drift experiment.
var DriftGrid = []float64{0, 0.25, 0.5, 0.75, 1.0}

// DriftResult measures how stale plans age as the access pattern shifts —
// the Section-4.1 motivation for periodic re-execution ("breaking news").
// For each rotation fraction it reports the response time of the plan made
// against the *old* frequencies versus a plan refreshed on the drifted
// ones, both simulated on the drifted traffic, relative to the refreshed
// plan's own unconstrained optimum.
func Drift(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		// Under 50 % storage the placement actually embodies popularity
		// choices; at 100 % both plans would store everything relevant.
		budget := func(w *workload.Workload) model.Budgets {
			b := model.FullBudgets(w).Scale(w, 0.5, 1)
			for i := range b.SiteCapacity {
				b.SiteCapacity[i] = model.Infinite()
			}
			b.RepoCapacity = model.Infinite()
			return b
		}

		staleEnv, err := model.NewEnv(env.w, env.est, budget(env.w))
		if err != nil {
			return err
		}
		stalePlan, _, err := core.Plan(staleEnv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}

		for _, frac := range DriftGrid {
			drifted, err := workload.Drift(env.w, frac, env.simSeed^uint64(1000+100*frac))
			if err != nil {
				return err
			}
			simOnDrift := func(p *model.Placement, name string) (float64, error) {
				cfg := env.simCfg
				res, err := httpsim.Run(drifted, env.est, policies.NewStatic(name, p), cfg, rng.New(env.simSeed))
				if err != nil {
					return 0, err
				}
				return res.CompositeMean(), nil
			}

			freshEnv, err := model.NewEnv(drifted, env.est, budget(drifted))
			if err != nil {
				return err
			}
			freshPlan, _, err := core.Plan(freshEnv, core.Options{Workers: env.planWorkers})
			if err != nil {
				return err
			}
			freshRT, err := simOnDrift(freshPlan, "fresh")
			if err != nil {
				return err
			}
			staleRT, err := simOnDrift(stalePlan, "stale")
			if err != nil {
				return err
			}
			col.add("Stale plan", frac*100, stats.RelativeIncrease(staleRT, freshRT))
			col.add("Re-planned", frac*100, 0)

			// The operational price of refreshing: bytes the repository
			// must push to the sites to realize the fresh plan.
			diff, err := model.Diff(stalePlan, freshPlan)
			if err != nil {
				return err
			}
			col.add("Migration (GB in)", frac*100, float64(diff.TotalAddedBytes())/float64(units.GB))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Drift: stale plans vs re-planning (50% storage)", "hot set rotated %",
		[]string{"Stale plan", "Re-planned", "Migration (GB in)"})
	fig.YLabel = "% increase in response time vs re-planned"
	return fig, nil
}
