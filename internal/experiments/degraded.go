package experiments

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/stats"
	"repro/internal/units"
)

// AvailabilityGrid is the per-view site availability swept by the
// degraded-mode study. 1 is a healthy cluster; 0.5 loses every other view's
// local replica.
var AvailabilityGrid = []float64{1, 0.99, 0.95, 0.9, 0.75, 0.5}

// DegradedFailoverDelay is the per-degraded-view detection-and-reroute cost
// the study charges, mirroring the live client's timeout + retry + fallback
// path.
var DegradedFailoverDelay = units.Seconds(0.25)

// DegradedMode quantifies the robustness claim behind the repository
// fallback: because the paper's repository is an always-on root holding every
// object, a site outage degrades a view to the remote chain instead of
// failing it. The study sweeps site availability and compares the proposed
// policy at 50 % storage against full replication (Local), no replication
// (Remote), and a repository-only system (availability 0 — the floor every
// policy decays toward), all on identical traffic with outage draws from a
// dedicated stream.
func DegradedMode(opts Options) (*stats.Figure, error) {
	type point struct {
		series string
		x, y   float64
	}
	// Runs execute concurrently; buffering each run's points and feeding the
	// collector in run order afterwards keeps the figure bit-identical per
	// seed (float accumulation order never depends on scheduling).
	perRun := make([][]point, opts.Runs)
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		add := func(series string, x, y float64) {
			perRun[r] = append(perRun[r], point{series, x, y})
		}
		// Plan the proposed policy once at half storage; the placement does
		// not depend on availability, only its realized response time does.
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		penv, err := model.NewEnv(env.w, env.est, half)
		if err != nil {
			return err
		}
		p, _, err := core.Plan(penv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}
		proposed := policies.NewStatic("Proposed", p)

		outageCfg := func(avail float64) httpsim.Config {
			cfg := env.simCfg
			cfg.Outage = httpsim.OutageConfig{
				Enabled:       true,
				Availability:  avail,
				FailoverDelay: DegradedFailoverDelay,
			}
			return cfg
		}

		// Repository-only floor: availability 0 degrades every view, so the
		// decider is irrelevant — one simulation, plotted flat.
		floorRT, err := simulateWithConfig(env, policies.NewRemote(env.w), outageCfg(0))
		if err != nil {
			return err
		}
		for _, avail := range AvailabilityGrid {
			cfg := outageCfg(avail)
			for _, pol := range []struct {
				name string
				dec  httpsim.Decider
			}{
				{"Proposed (50% storage)", proposed},
				{"Full replication", policies.NewLocal(env.w)},
				{"No replication", policies.NewRemote(env.w)},
			} {
				rt, err := simulateWithConfig(env, pol.dec, cfg)
				if err != nil {
					return err
				}
				add(pol.name, avail, stats.RelativeIncrease(rt, env.baseRT))
			}
			add("Repository only", avail, stats.RelativeIncrease(floorRT, env.baseRT))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	col := newCollector()
	for _, pts := range perRun {
		for _, p := range pts {
			col.add(p.series, p.x, p.y)
		}
	}
	return col.figure("Degraded mode: response time vs site availability",
		"site availability", []string{
			"Proposed (50% storage)", "Full replication",
			"No replication", "Repository only",
		}), nil
}
