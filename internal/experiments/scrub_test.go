package experiments

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func scrubOpts() Options {
	o := Quick()
	o.Runs = 1
	return o
}

// TestScrubSoakMeetsAcceptanceBar runs the chaos soak once and checks the
// tentpole's acceptance criteria directly: every injected corruption is
// caught (zero undetected), repair converges in one cycle, the post-repair
// sweep is clean, and both gray failures are flagged.
func TestScrubSoakMeetsAcceptanceBar(t *testing.T) {
	res, err := Scrub(scrubOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(res.Runs))
	}
	run := res.Runs[0]
	if run.Injected == 0 {
		t.Fatal("soak injected no corruption — it proves nothing")
	}
	if run.Undetected != 0 {
		t.Errorf("%d injected corruptions went undetected", run.Undetected)
	}
	if run.ScrubDetected != run.Injected {
		t.Errorf("scrub found %d of %d injected corruptions", run.ScrubDetected, run.Injected)
	}
	if run.FetchDetected == 0 {
		t.Error("no fetch ever degraded with reason corrupt — the serving-path check never fired")
	}
	if run.Residual != 0 || run.PostRepairCorrupt != 0 {
		t.Errorf("repair did not converge: residual=%d post-repair=%d", run.Residual, run.PostRepairCorrupt)
	}
	if run.RepairBytes == 0 {
		t.Error("anti-entropy repair shipped no bytes")
	}
	if !run.LimpDetected || !run.PartDetected {
		t.Errorf("gray failures not flagged: limp=%v partition=%v", run.LimpDetected, run.PartDetected)
	}
	// The three gray sites are distinct.
	if run.RotSite == run.LimpSite || run.RotSite == run.PartSite || run.LimpSite == run.PartSite {
		t.Errorf("gray failures collide: rot=%d limp=%d part=%d", run.RotSite, run.LimpSite, run.PartSite)
	}
	if !res.Clean() {
		t.Error("Clean() = false on a passing soak")
	}
	var buf bytes.Buffer
	if err := res.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "integrity soak: ok") {
		t.Errorf("report verdict missing:\n%s", buf.String())
	}
}

// TestScrubReproducible pins the acceptance bar's determinism clause: two
// same-seed soaks — at different worker counts — produce identical run
// accounting and byte-identical reports.
func TestScrubReproducible(t *testing.T) {
	opts := scrubOpts()
	opts.Runs = 2
	opts.Workers = 1
	a, err := Scrub(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 2
	b, err := Scrub(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Runs, b.Runs) {
		t.Fatalf("same seed produced different soak accounting:\n%+v\nvs\n%+v", a.Runs, b.Runs)
	}
	var ra, rb bytes.Buffer
	if err := a.Write(&ra); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(&rb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra.Bytes(), rb.Bytes()) {
		t.Fatal("rendered reports differ")
	}
}
