package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Flash-crowd scenario constants: each run builds one static half-storage
// plan, then plays FlashCrowdEpochs epochs of cumulative hot-set rotation
// (workload.Drift at FlashCrowdSwapFrac per epoch — §4.1's "breaking news"
// pattern). Every epoch spans FlashCrowdWindow seconds of sampled request
// traffic feeding a streaming estimator whose half-life is short enough
// that, by the end of an epoch, the previous epoch's mass has mostly
// decayed and the snapshot reflects current demand.
const (
	FlashCrowdEpochs   = 8
	FlashCrowdSwapFrac = 0.3
	FlashCrowdHalfLife = 30.0 // seconds
)

// FlashCrowdWindow is one epoch's traffic window.
var FlashCrowdWindow = units.Seconds(120)

// stream labels for the flash-crowd study's derivations (disjoint from the
// runner's 101+ range).
const (
	flashDriftStream uint64 = iota + 601
	flashTrafficStream
)

// FlashCrowdEpoch is one epoch's accounting within a run.
type FlashCrowdEpoch struct {
	Epoch int
	// DriftL1 is the detector's L1 divergence between the estimated
	// frequency vector and the live plan's baseline at the epoch's end.
	DriftL1   float64
	Triggered bool
	// Replanned reports the online planner shipped a new placement this
	// epoch; a triggered check whose re-plan left the placement unchanged
	// ships nothing and counts as a no-op instead.
	Replanned bool
	CopyBytes units.ByteSize
	// DStatic/DOnline/DOracle evaluate, under the epoch's true demand, the
	// initial static plan, the online planner's current plan, and a fresh
	// plan built from the true frequencies (the clairvoyant bound).
	DStatic float64
	DOnline float64
	DOracle float64
}

// FlashCrowdRun is one run's full episode.
type FlashCrowdRun struct {
	Run int
	// D0 is the static plan's objective under the initial demand — the
	// figure's reference level.
	D0        float64
	Epochs    []FlashCrowdEpoch
	Replans   int
	Noops     int
	CopyBytes units.ByteSize
}

// FlashCrowdResult is the study's output: per-run accounting plus the
// objective-over-epochs figure (static plan vs online planner vs oracle
// re-plan, relative to each run's initial objective).
type FlashCrowdResult struct {
	Runs     []FlashCrowdRun
	Timeline *stats.Figure
}

// FlashCrowd plays hot-page rotation against the adaptive planning loop.
// Each epoch the true demand drifts, sampled request traffic feeds the
// streaming estimator, and the drift detector decides whether the online
// planner re-plans — on the *estimated* workload, never the true one —
// shipping only the placement delta. The static plan pays the full
// staleness cost; the oracle re-plans on the true frequencies every epoch
// and bounds what any adaptation can achieve. Everything is analytic and
// seeded, so the result is bit-reproducible per seed at any worker count.
func FlashCrowd(opts Options) (*FlashCrowdResult, error) {
	runs := make([]FlashCrowdRun, opts.Runs)
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		root := rng.New(opts.Seed)

		// Static plan at half storage: replicas are a constrained resource,
		// so rotating the hot set genuinely strands them.
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		env0, err := model.NewEnv(env.w, env.est, half)
		if err != nil {
			return err
		}
		static, _, err := core.Plan(env0, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}
		d0 := model.D(env0, static)

		est, err := estimate.New(env.w, estimate.Config{HalfLife: FlashCrowdHalfLife})
		if err != nil {
			return err
		}
		det, err := estimate.NewDetector(estimate.BaselineVector(env.w), estimate.DetectorConfig{})
		if err != nil {
			return err
		}

		run := FlashCrowdRun{
			Run:    r,
			D0:     d0,
			Epochs: make([]FlashCrowdEpoch, 0, FlashCrowdEpochs+1),
		}
		wTrue := env.w    // current true demand (drifts cumulatively)
		envTrue := env0   // environment of the current true demand
		online := static  // the online planner's live placement
		envOnline := env0 // environment the live placement was planned from
		perSite := env.simCfg.RequestsPerSite

		for e := 0; e <= FlashCrowdEpochs; e++ {
			if e > 0 {
				wTrue, err = workload.Drift(wTrue, FlashCrowdSwapFrac,
					root.Split(flashDriftStream, uint64(r), uint64(e)).Seed())
				if err != nil {
					return err
				}
				envTrue, err = model.NewEnv(wTrue, env.est, half)
				if err != nil {
					return err
				}
				envTrue.Alpha1, envTrue.Alpha2 = env0.Alpha1, env0.Alpha2
			}

			// One epoch of sampled request traffic from the true demand.
			feedEpoch(wTrue, est, perSite,
				float64(FlashCrowdWindow)*float64(e), float64(FlashCrowdWindow),
				root.Split(flashTrafficStream, uint64(r), uint64(e)))

			// The online controller's drift check at the epoch boundary.
			snap := est.Snapshot(float64(FlashCrowdWindow) * float64(e+1))
			dec, err := det.Check(snap.FreqVector(env.w.NumPages()))
			if err != nil {
				return err
			}
			ep := FlashCrowdEpoch{Epoch: e, DriftL1: dec.L1, Triggered: dec.Trigger}
			if dec.Trigger {
				wEst, err := snap.EstimateWorkload(env.w)
				if err != nil {
					return err
				}
				envEst, err := model.NewEnv(wEst, env.est, half)
				if err != nil {
					return err
				}
				envEst.Alpha1, envEst.Alpha2 = env0.Alpha1, env0.Alpha2
				fresh, _, err := core.Plan(envEst, core.Options{Workers: env.planWorkers})
				if err != nil {
					return err
				}
				diff, err := model.Diff(online, fresh)
				if err != nil {
					return err
				}
				if diff.Changed() {
					delta := repair.ChangeDelta(envOnline, envEst, online, fresh)
					online, envOnline = fresh, envEst
					ep.Replanned = true
					ep.CopyBytes = delta.CopyBytes
					run.Replans++
					run.CopyBytes += delta.CopyBytes
				} else {
					run.Noops++
				}
				det.Rebase(estimate.BaselineVector(wEst))
			}

			// Clairvoyant bound: re-plan on the true frequencies.
			dOracle := d0
			if e > 0 {
				oracle, _, err := core.Plan(envTrue, core.Options{Workers: env.planWorkers})
				if err != nil {
					return err
				}
				dOracle = model.D(envTrue, oracle)
			}
			ep.DStatic = model.D(envTrue, static)
			ep.DOnline = model.D(envTrue, online)
			ep.DOracle = dOracle
			run.Epochs = append(run.Epochs, ep)
			opts.progressf("flashcrowd run %d epoch %d: L1=%.3f trigger=%v replan=%v copy=%s — D static %.0f / online %.0f / oracle %.0f",
				r, e, ep.DriftL1, ep.Triggered, ep.Replanned, ep.CopyBytes,
				ep.DStatic, ep.DOnline, ep.DOracle)
		}
		runs[r] = run
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Feed the collector in run order so the figure is deterministic at any
	// worker count.
	col := newCollector()
	for _, run := range runs {
		rel := func(d float64) float64 { return 100 * (d - run.D0) / run.D0 }
		for _, ep := range run.Epochs {
			col.add("Static plan", float64(ep.Epoch), rel(ep.DStatic))
			col.add("Online planner", float64(ep.Epoch), rel(ep.DOnline))
			col.add("Oracle re-plan", float64(ep.Epoch), rel(ep.DOracle))
		}
	}
	fig := col.figure("Flash crowd: objective under hot-page rotation",
		"epoch", []string{"Static plan", "Online planner", "Oracle re-plan"})
	fig.YLabel = "% increase in D vs initial placement"
	return &FlashCrowdResult{Runs: runs, Timeline: fig}, nil
}

// feedEpoch samples perSite requests per site from the workload's true
// frequencies (inverse-CDF over each site's pages) into the estimator, with
// timestamps spread uniformly over [t0, t0+window).
func feedEpoch(w *workload.Workload, est *estimate.Estimator, perSite int, t0, window float64, s *rng.Stream) {
	for i := range w.Sites {
		pages := w.Sites[i].Pages
		cum := make([]float64, len(pages))
		total := 0.0
		for idx, pid := range pages {
			total += float64(w.Pages[pid].Freq)
			cum[idx] = total
		}
		for n := 0; n < perSite; n++ {
			u := s.Float64() * total
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			t := t0 + window*float64(n)/float64(perSite)
			est.Observe(workload.SiteID(i), pages[lo], t)
		}
	}
}

// FinalGaps returns the mean final-epoch gap over the oracle, in percent,
// for the static plan and the online planner.
func (r *FlashCrowdResult) FinalGaps() (staticPct, onlinePct float64) {
	if len(r.Runs) == 0 {
		return 0, 0
	}
	for _, run := range r.Runs {
		last := run.Epochs[len(run.Epochs)-1]
		staticPct += 100 * (last.DStatic - last.DOracle) / last.DOracle
		onlinePct += 100 * (last.DOnline - last.DOracle) / last.DOracle
	}
	n := float64(len(r.Runs))
	return staticPct / n, onlinePct / n
}

// Write renders the per-run table and the tracking summary.
func (r *FlashCrowdResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-4s %-8s %-6s %-10s %-12s %-12s %-12s %-10s %s\n",
		"run", "replans", "noops", "copy", "D static", "D online", "D oracle", "static+%", "online+%"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		last := run.Epochs[len(run.Epochs)-1]
		if _, err := fmt.Fprintf(w, "%-4d %-8d %-6d %-10s %-12.0f %-12.0f %-12.0f %-10.1f %.1f\n",
			run.Run, run.Replans, run.Noops, run.CopyBytes,
			last.DStatic, last.DOnline, last.DOracle,
			100*(last.DStatic-last.DOracle)/last.DOracle,
			100*(last.DOnline-last.DOracle)/last.DOracle); err != nil {
			return err
		}
	}
	staticPct, onlinePct := r.FinalGaps()
	_, err := fmt.Fprintf(w, "final epoch vs oracle: static plan +%.1f%%, online planner +%.1f%%\n",
		staticPct, onlinePct)
	return err
}
