package experiments

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// PeriodEpochs is how many traffic epochs the period study simulates; each
// epoch the hot set rotates by PeriodDriftPerEpoch.
const (
	PeriodEpochs        = 12
	PeriodDriftPerEpoch = 0.15
)

// PeriodGrid is the re-planning periods swept, in epochs (0 = never
// re-plan after the initial placement).
var PeriodGrid = []int{1, 2, 3, 6, 0}

// PeriodStudy quantifies the execution-period trade-off the paper's
// Section 6 raises for adaptive schemes ("a small time period can result in
// creating replicas at one time slot only to delete them in the next one,
// while a large in changing the replication scheme too slowly"): traffic
// drifts every epoch; the planner re-runs every k epochs; the study reports
// the mean response time across epochs (relative to an oracle that re-plans
// every epoch) and the total replica bytes migrated — responsiveness versus
// churn, as a function of the period.
func PeriodStudy(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		budget := func(w *workload.Workload) model.Budgets {
			b := model.FullBudgets(w).Scale(w, 0.5, 1)
			for i := range b.SiteCapacity {
				b.SiteCapacity[i] = model.Infinite()
			}
			b.RepoCapacity = model.Infinite()
			return b
		}
		plan := func(w *workload.Workload) (*model.Placement, error) {
			menv, err := model.NewEnv(w, env.est, budget(w))
			if err != nil {
				return nil, err
			}
			p, _, err := core.Plan(menv, core.Options{Workers: env.planWorkers})
			return p, err
		}
		simulate := func(w *workload.Workload, p *model.Placement, epoch int) (float64, error) {
			cfg := env.simCfg
			res, err := httpsim.Run(w, env.est, policies.NewStatic("p", p), cfg,
				rng.New(env.simSeed).Split(uint64(epoch)))
			if err != nil {
				return 0, err
			}
			return res.CompositeMean(), nil
		}

		// The drifting traffic sequence, shared across all periods.
		epochs := make([]*workload.Workload, PeriodEpochs)
		cur := env.w
		for e := 0; e < PeriodEpochs; e++ {
			d, err := workload.Drift(cur, PeriodDriftPerEpoch, env.simSeed+uint64(7000+e))
			if err != nil {
				return err
			}
			epochs[e] = d
			cur = d
		}

		// Oracle: re-plan every epoch.
		oracleRT := make([]float64, PeriodEpochs)
		for e, w := range epochs {
			p, err := plan(w)
			if err != nil {
				return err
			}
			rt, err := simulate(w, p, e)
			if err != nil {
				return err
			}
			oracleRT[e] = rt
		}

		for _, period := range PeriodGrid {
			var current *model.Placement
			var prev *model.Placement
			var sumRel float64
			var churn units.ByteSize
			for e, w := range epochs {
				if current == nil || (period > 0 && e%period == 0) {
					p, err := plan(w)
					if err != nil {
						return err
					}
					if prev != nil {
						d, err := model.Diff(prev, p)
						if err != nil {
							return err
						}
						churn += d.TotalAddedBytes()
					}
					prev, current = p, p
				}
				rt, err := simulate(w, current, e)
				if err != nil {
					return err
				}
				sumRel += stats.RelativeIncrease(rt, oracleRT[e])
			}
			x := float64(period)
			if period == 0 {
				x = float64(PeriodEpochs) // "never" rendered at the far end
			}
			col.add("RT vs oracle", x, sumRel/float64(PeriodEpochs))
			col.add("Churn (GB moved)", x, float64(churn)/float64(units.GB))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Re-planning period: responsiveness vs churn (drift 15%/epoch, 50% storage)",
		"re-plan period (epochs; rightmost = never)", []string{"RT vs oracle", "Churn (GB moved)"})
	fig.YLabel = "mean % RT over per-epoch oracle / GB migrated"
	return fig, nil
}
