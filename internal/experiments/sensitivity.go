package experiments

import (
	"repro/internal/policies"
	"repro/internal/stats"
)

// SeverityGrid sweeps how far actual network conditions drift from the
// planner's estimates: 0 = none (actual == estimate), 1 = the paper's §5.1
// model, 2 = twice the deviation.
var SeverityGrid = []float64{0, 0.5, 1.0, 1.5, 2.0}

// Sensitivity measures the paper's robustness claim ("the proposed policy
// performed well ... even when the network attributes significantly vary
// from the estimations used during allocation decisions"): at each
// perturbation severity, the proposed policy (planned at 50 % storage on
// the *estimates*), the warm LRU baseline at the same storage and the
// Local policy are simulated under the scaled deviation model, each
// reported relative to the proposed policy itself at that severity — so
// the curves show whether the *gap* survives hostile conditions, not the
// general slowdown.
func Sensitivity(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		for _, severity := range SeverityGrid {
			cfg := env.simCfg
			cfg.Perturb = opts.Perturb.Scale(severity)

			oursRT, err := simulatePlannedWithConfig(env, half, cfg)
			if err != nil {
				return err
			}
			col.add("Proposed", severity, 0)

			lru, err := policies.NewLRU(env.w, half, env.simSeed+uint64(r))
			if err != nil {
				return err
			}
			lruCfg := cfg
			lruCfg.Warmup = true
			lruRT, err := simulateWithConfig(env, lru, lruCfg)
			if err != nil {
				return err
			}
			col.add("LRU", severity, stats.RelativeIncrease(lruRT, oursRT))

			localRT, err := simulateWithConfig(env, policies.NewLocal(env.w), cfg)
			if err != nil {
				return err
			}
			col.add("Local", severity, stats.RelativeIncrease(localRT, oursRT))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Sensitivity: estimate-vs-actual deviation severity (50% storage)",
		"perturbation severity (1 = paper)", []string{"Proposed", "LRU", "Local"})
	fig.YLabel = "% increase in response time vs proposed at same severity"
	return fig, nil
}
