package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/trace"
	"repro/internal/workload"
)

// CriticalPathTolerance is the relative deviation beyond which a page's
// observed Eq. 5 time is flagged against the planner's prediction.
var CriticalPathTolerance = 0.25

// CriticalPathStorage is the storage fraction the study plans at — tight
// enough that placements mix local and remote chains, so both Eq. 5 sides
// actually appear as critical paths.
var CriticalPathStorage = 0.5

// PageDeviation is one page's observed-vs-predicted comparison.
type PageDeviation struct {
	Page            int
	Views           int
	Observed        float64 // mean traced root duration (s)
	Predicted       float64 // model.PageTime under the planned placement (s)
	RelErr          float64 // (observed-predicted)/predicted
	ObservedWinner  string  // dominant Eq. 5 chain in the traces
	PredictedWinner string  // dominant chain in the model
}

// CriticalPathResult is the observed-vs-predicted-D study's output: how
// closely the traced simulator's per-page critical paths track the planner's
// Eq. 5 predictions under the §5.1 estimate-vs-actual deviations.
type CriticalPathResult struct {
	Runs      int
	Tolerance float64
	// Pages is the number of (run, page) comparisons; Within counts those
	// whose observed mean D landed inside the tolerance band.
	Pages, Within int
	// MeanAbsRelErr averages |observed-predicted|/predicted over all pages.
	MeanAbsRelErr float64
	// WinnerAgreement is the fraction of pages whose dominant observed chain
	// matches the model's predicted max side.
	WinnerAgreement float64
	// Observed time split totals across every traced view (seconds).
	Transfer, Queue, Overhead, RetryBackoff float64
	// Flagged lists run 0's out-of-tolerance pages, worst first.
	Flagged []PageDeviation
}

// CriticalPath plans the proposed policy at CriticalPathStorage, simulates
// it with tracing armed, and compares every page's observed critical path —
// mean traced D and the chain that won the Eq. 5 max — against the planner's
// prediction from the unperturbed estimates. The gap quantifies what the
// §5.1 deviations cost page by page, and the flagged list names the pages an
// operator would investigate first.
func CriticalPath(opts Options) (*CriticalPathResult, error) {
	type runAgg struct {
		pages, within, agree int
		sumAbsRel            float64
		xfer, queue, ovhd    float64
		retryBackoff         float64
		flagged              []PageDeviation // retained for run 0 only
	}
	perRun := make([]runAgg, opts.Runs)
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		budgets := unconstrainedBudgets(env.w).Scale(env.w, CriticalPathStorage, 1)
		penv, err := model.NewEnv(env.w, env.est, budgets)
		if err != nil {
			return err
		}
		p, _, err := core.Plan(penv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}
		cfg := env.simCfg
		cfg.Trace = trace.NewBuffer(0)
		if _, err := simulateWithConfig(env, policies.NewStatic("Proposed", p), cfg); err != nil {
			return err
		}
		a := trace.Analyze(cfg.Trace.Spans())

		agg := &perRun[r]
		agg.xfer, agg.queue, agg.ovhd, agg.retryBackoff = a.Transfer, a.Queue, a.Overhead, a.RetryBackoff
		for _, ps := range a.Pages {
			j := workload.PageID(ps.Page)
			predLocal := float64(model.PageLocalTime(penv, p, j))
			predRemote := float64(model.PageRemoteTime(penv, p, j))
			pred, predWinner := predLocal, "local"
			// Tie to remote, matching the simulator's max rule.
			if predRemote >= predLocal {
				pred, predWinner = predRemote, "remote"
			}
			if pred <= 0 || ps.Views == 0 {
				continue
			}
			obsWinner := "local"
			if ps.RemoteWins > ps.LocalWins {
				obsWinner = "remote"
			}
			rel := (ps.MeanD - pred) / pred
			agg.pages++
			agg.sumAbsRel += math.Abs(rel)
			if math.Abs(rel) <= CriticalPathTolerance {
				agg.within++
			}
			if obsWinner == predWinner {
				agg.agree++
			}
			if r == 0 && math.Abs(rel) > CriticalPathTolerance {
				agg.flagged = append(agg.flagged, PageDeviation{
					Page: ps.Page, Views: ps.Views,
					Observed: ps.MeanD, Predicted: pred, RelErr: rel,
					ObservedWinner: obsWinner, PredictedWinner: predWinner,
				})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	res := &CriticalPathResult{Runs: opts.Runs, Tolerance: CriticalPathTolerance}
	var sumAbsRel float64
	var agree int
	for r := range perRun {
		agg := &perRun[r]
		res.Pages += agg.pages
		res.Within += agg.within
		sumAbsRel += agg.sumAbsRel
		agree += agg.agree
		res.Transfer += agg.xfer
		res.Queue += agg.queue
		res.Overhead += agg.ovhd
		res.RetryBackoff += agg.retryBackoff
	}
	if res.Pages > 0 {
		res.MeanAbsRelErr = sumAbsRel / float64(res.Pages)
		res.WinnerAgreement = float64(agree) / float64(res.Pages)
	}
	res.Flagged = perRun[0].flagged
	sort.Slice(res.Flagged, func(i, j int) bool {
		a, b := math.Abs(res.Flagged[i].RelErr), math.Abs(res.Flagged[j].RelErr)
		if a > b {
			return true
		}
		if a < b {
			return false
		}
		return res.Flagged[i].Page < res.Flagged[j].Page
	})
	if len(res.Flagged) > 8 {
		res.Flagged = res.Flagged[:8]
	}
	return res, nil
}

// Write renders the study as aligned text.
func (r *CriticalPathResult) Write(w io.Writer) error {
	within := 0.0
	if r.Pages > 0 {
		within = 100 * float64(r.Within) / float64(r.Pages)
	}
	total := r.Transfer + r.Queue + r.Overhead + r.RetryBackoff
	pct := func(v float64) float64 {
		if total <= 0 {
			return 0
		}
		return 100 * v / total
	}
	if _, err := fmt.Fprintf(w,
		"pages compared: %d across %d runs (planned at %.0f%% storage)\n"+
			"within +/-%.0f%% of predicted D: %.1f%%   mean |obs-pred|/pred: %.1f%%\n"+
			"Eq. 5 winner agreement (observed chain == predicted max side): %.1f%%\n"+
			"observed time split: transfer %.1f%%  queue %.1f%%  overhead %.1f%%  retry/failover %.1f%%\n",
		r.Pages, r.Runs, 100*CriticalPathStorage,
		100*r.Tolerance, within, 100*r.MeanAbsRelErr,
		100*r.WinnerAgreement,
		pct(r.Transfer), pct(r.Queue), pct(r.Overhead), pct(r.RetryBackoff)); err != nil {
		return err
	}
	if len(r.Flagged) == 0 {
		_, err := fmt.Fprintf(w, "no pages outside tolerance in run 0\n")
		return err
	}
	if _, err := fmt.Fprintf(w, "run 0 pages outside tolerance (worst first):\n"); err != nil {
		return err
	}
	for _, d := range r.Flagged {
		if _, err := fmt.Fprintf(w, "  page %4d: observed %8.2fs vs predicted %8.2fs (%+.0f%%), winner obs=%s pred=%s, %d views\n",
			d.Page, d.Observed, d.Predicted, 100*d.RelErr, d.ObservedWinner, d.PredictedWinner, d.Views); err != nil {
			return err
		}
	}
	return nil
}
