package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// Scrub scenario constants: each run starts a live cluster under a
// gray-failure cocktail — ScrubRotCount replica-rot corruptions on the
// busiest site, a permanently limping second site, a control-partitioned
// third — then proves the integrity layer catches every injected corruption
// (at fetch time or within one scrub cycle) and the latency-aware
// supervisor flags both gray sites.
const (
	// ScrubRotCount is the number of stored replicas rotted on the rot site
	// (capped by how many replicas the plan actually stores there).
	ScrubRotCount = 6
	// ScrubFailThreshold / ScrubOKThreshold mirror the controller defaults.
	ScrubFailThreshold = 3
	ScrubOKThreshold   = 2
)

// Gray-failure tuning: the limp must dwarf loopback RTT noise while keeping
// the soak fast, and the probe cadence must detect within a short soak.
var (
	ScrubLimpLatency      = 15 * time.Millisecond
	ScrubLatencyThreshold = 3 * time.Millisecond
	ScrubProbeInterval    = 20 * time.Millisecond
	ScrubDetectTimeout    = 10 * time.Second
)

// stream labels for the scrub study's derivations (disjoint from the
// runner's 101+ range and the flash-crowd study's 601+).
const (
	scrubRotStream uint64 = iota + 701
	scrubFaultStream
	scrubClientStream
)

// ScrubRun is one run's chaos-soak accounting. Every field is a pure
// function of the seed (counts over seeded sets and plan-derived replica
// walks), so two same-seed soaks render byte-identical reports.
type ScrubRun struct {
	Run int
	// RotSite hosts the injected replica rot, LimpSite the persistent
	// latency inflation, PartSite the control-plane partition.
	RotSite  workload.SiteID
	LimpSite workload.SiteID
	PartSite workload.SiteID
	// Injected is the number of rotted replicas.
	Injected int
	// FetchDetected counts client fetches that hit a rotted replica and
	// degraded to the repository with reason "corrupt" — the end-to-end
	// check catching corruption on the serving path.
	FetchDetected int
	// ScrubDetected is the corrupt-replica count the first scrub cycle
	// found; the anti-entropy bound is one full cycle, so this must equal
	// Injected.
	ScrubDetected int
	// RepairBytes is the delta-only anti-entropy traffic (the rotted
	// replicas' bytes, nothing else).
	RepairBytes units.ByteSize
	// Residual is the corrupt count the second scrub cycle found (must be
	// 0), and PostRepairCorrupt the corrupt fallbacks in a full fetch sweep
	// after repair (must be 0).
	Residual          int
	PostRepairCorrupt int
	// Undetected is Injected minus the scrubber's findings: the integrity
	// violations nothing caught. The acceptance bar is exactly 0.
	Undetected int
	// LimpDetected / PartDetected report the supervisor walked the limping
	// and partitioned sites to Down within the soak's detection window.
	LimpDetected bool
	PartDetected bool
}

// ScrubResult is the study's output.
type ScrubResult struct {
	Runs []ScrubRun
}

// scrubConfig is the soak's tiny live-cluster workload: 3 sites and double-
// digit object counts keep each run's HTTP traffic in the hundreds of
// requests, with a single small MO class so replica fetches stay cheap.
func scrubConfig() workload.Config {
	c := workload.SmallConfig()
	c.Sites = 3
	c.PagesPerSiteMin = 6
	c.PagesPerSiteMax = 10
	c.GlobalObjects = 120
	c.ObjectsPerSite = 20
	c.ObjectsPerMax = 40
	c.CompulsoryMin = 2
	c.CompulsoryMax = 5
	c.OptionalMin = 2
	c.OptionalMax = 4
	c.MOClasses = []workload.SizeClass{{Frac: 1, Lo: 40 * units.KB, Hi: 80 * units.KB}}
	c.RequestsPerSite = 50
	return c
}

// Scrub runs the end-to-end integrity chaos soak. Each run: plan at half
// storage, start a live cluster with rot on the busiest site's replicas, a
// permanent limp window on the next site and a permanent control partition
// on the third; sweep every page with a verifying client (breaker and
// hedging off so degradations are a pure function of the rot set); run two
// scrub cycles (find-and-repair, then verify-clean); sweep again post-
// repair; and finally let the latency-aware supervisor demote both gray
// sites. The report proves the acceptance bar — zero undetected integrity
// violations, detection bounded by one scrub cycle — and contains only
// seed-derived counts, so same-seed soaks render byte-identical reports.
func Scrub(opts Options) (*ScrubResult, error) {
	opts.Workload = scrubConfig()
	runs := make([]ScrubRun, opts.Runs)
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		root := rng.New(opts.Seed)
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		penv, err := model.NewEnv(env.w, env.est, half)
		if err != nil {
			return err
		}
		p, _, err := core.Plan(penv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}

		n := env.w.NumSites()
		rotSite := busiestSite(env.w)
		limpSite := workload.SiteID((int(rotSite) + 1) % n)
		partSite := workload.SiteID((int(rotSite) + 2) % n)

		// Rot a seeded sample of the replicas the plan stores on the rot
		// site: every injected corruption is a stored replica, so the
		// scrubber's full walk is obligated to find each one.
		stored := p.StoredSet(rotSite).Members()
		rotCount := ScrubRotCount
		if rotCount > len(stored) {
			rotCount = len(stored)
		}
		rotStream := root.Split(scrubRotStream, uint64(r))
		rot := make([]int, 0, rotCount)
		for _, idx := range rotStream.SampleWithoutReplacement(len(stored), rotCount) {
			rot = append(rot, stored[idx])
		}
		sort.Ints(rot)

		plan := &faults.Plan{
			Seed:  root.Split(scrubFaultStream, uint64(r)).Seed(),
			Sites: make([]faults.Spec, n),
		}
		forever := []faults.Window{{Start: 0, End: 24 * time.Hour}}
		plan.Sites[rotSite].Rot = rot
		plan.Sites[limpSite].LimpLatency = ScrubLimpLatency
		plan.Sites[limpSite].Limps = forever
		plan.Sites[partSite].PartitionControl = forever

		cluster, err := webserve.StartClusterOptions(env.w, p, webserve.ClusterOptions{
			Metrics: true,
			Faults:  plan,
		})
		if err != nil {
			return err
		}
		defer cluster.Close()

		// Breaker and hedging off: with rot concentrated on one site a
		// tripped breaker would make later degradations depend on arrival
		// order, and the soak's counts must be a pure function of the seed.
		client := cluster.Client(webserve.ClientOptions{
			Retries:          1,
			BreakerThreshold: -1,
			JitterSeed:       root.Split(scrubClientStream, uint64(r)).Seed(),
		})
		corruptFB := cluster.Metrics.Counter("client.fallbacks_by.corrupt")

		sweep := func() error {
			for j := range env.w.Pages {
				if _, err := client.FetchPage(cluster.PageURL(workload.PageID(j)), workload.PageID(j)); err != nil {
					return fmt.Errorf("scrub run %d: page %d: %w", r, j, err)
				}
			}
			return nil
		}

		run := ScrubRun{
			Run: r, RotSite: rotSite, LimpSite: limpSite, PartSite: partSite,
			Injected: len(rot),
		}

		// Phase 1: serving-path detection. Every fetch that lands on a
		// rotted replica must degrade to the repository with reason corrupt
		// — never hand garbage to the caller.
		if err := sweep(); err != nil {
			return err
		}
		run.FetchDetected = int(corruptFB.Value())

		// Phase 2: anti-entropy. Cycle 1 finds and repairs every rotted
		// replica; cycle 2 proves the store verifies clean.
		scrubber := controller.NewScrubber(penv, cluster, controller.ScrubOptions{
			Metrics: cluster.Metrics,
		})
		cycle1, err := scrubber.RunCycle()
		if err != nil {
			return err
		}
		run.ScrubDetected = len(cycle1.Corrupt)
		run.RepairBytes = cycle1.RepairBytes
		run.Undetected = run.Injected - run.ScrubDetected
		cycle2, err := scrubber.RunCycle()
		if err != nil {
			return err
		}
		run.Residual = len(cycle2.Corrupt)

		// Phase 3: post-repair sweep — the serving path is clean again.
		before := corruptFB.Value()
		if err := sweep(); err != nil {
			return err
		}
		run.PostRepairCorrupt = int(corruptFB.Value() - before)

		// Phase 4: gray-failure health. The limping site answers every
		// probe 200 but over the latency threshold; the partitioned site is
		// unreachable to the supervisor while still serving clients. Both
		// must walk to Down.
		sup := controller.New(penv, p, cluster, controller.Options{
			ProbeInterval: ScrubProbeInterval,
			// Generous: the limping site must answer 200 (slow), not time
			// out — only then is its demotion the EWMA signal's doing.
			ProbeTimeout:     time.Second,
			FailThreshold:    ScrubFailThreshold,
			OKThreshold:      ScrubOKThreshold,
			LatencyThreshold: ScrubLatencyThreshold,
			Workers:          env.planWorkers,
		})
		sup.Start()
		run.LimpDetected = sup.WaitFor(func(states []controller.SiteState) bool {
			return states[limpSite] == controller.Down
		}, ScrubDetectTimeout)
		run.PartDetected = sup.WaitFor(func(states []controller.SiteState) bool {
			return states[partSite] == controller.Down
		}, ScrubDetectTimeout)
		sup.Stop()

		runs[r] = run
		opts.progressf("scrub run %d: rot site %d (%d replicas) — fetch-detected %d, scrub-detected %d, repaired %s, residual %d, undetected %d, limp %v, partition %v",
			r, rotSite, run.Injected, run.FetchDetected, run.ScrubDetected,
			run.RepairBytes, run.Residual, run.Undetected, run.LimpDetected, run.PartDetected)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ScrubResult{Runs: runs}, nil
}

// Clean reports whether every run met the acceptance bar: zero undetected
// corruptions, zero residual after repair, and both gray failures flagged.
func (r *ScrubResult) Clean() bool {
	for _, run := range r.Runs {
		if run.Undetected != 0 || run.Residual != 0 || run.PostRepairCorrupt != 0 ||
			!run.LimpDetected || !run.PartDetected {
			return false
		}
	}
	return len(r.Runs) > 0
}

// Write renders the per-run table and the acceptance summary.
func (r *ScrubResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-4s %-4s %-4s %-4s %-9s %-10s %-10s %-10s %-9s %-7s %-11s %-6s %s\n",
		"run", "rot", "limp", "part", "injected", "fetch-det", "scrub-det", "repair", "residual", "postfix", "undetected", "limp?", "part?"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%-4d %-4d %-4d %-4d %-9d %-10d %-10d %-10s %-9d %-7d %-11d %-6v %v\n",
			run.Run, run.RotSite, run.LimpSite, run.PartSite,
			run.Injected, run.FetchDetected, run.ScrubDetected, run.RepairBytes,
			run.Residual, run.PostRepairCorrupt, run.Undetected,
			run.LimpDetected, run.PartDetected); err != nil {
			return err
		}
	}
	verdict := "FAILED"
	if r.Clean() {
		verdict = "ok"
	}
	_, err := fmt.Fprintf(w, "integrity soak: %s — every injected corruption caught within one scrub cycle, both gray failures flagged\n", verdict)
	return err
}
