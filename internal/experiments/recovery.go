package experiments

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Recovery timeline constants: the experiment plays one scripted outage —
// the busiest site fails at RecoveryFailAt, the repaired plan is live one
// MTTR later, and the site returns after dwelling at the repaired plateau
// for a second MTTR — against a supervisor with the controller's default
// K-of-N thresholds scaled to a 1 s probe. The horizon adapts to the
// slowest run (the paper's repository links are modem-era, so re-homing a
// site's replicas is transfer-bound and takes hours, not seconds).
// Everything is analytic (model evaluation plus estimated re-replication
// transfer times), so the result is bit-reproducible per seed at any
// worker count.
var (
	RecoveryFailAt        = units.Seconds(10)
	RecoveryProbeInterval = units.Seconds(1)
)

// Probe thresholds mirrored from the controller defaults, plus the shared
// timeline grid resolution.
const (
	RecoveryFailThreshold = 3
	RecoveryOKThreshold   = 2
	RecoveryTimelineSteps = 120
)

// RecoveryRun is one run's scripted-outage accounting.
type RecoveryRun struct {
	Run        int
	FailedSite workload.SiteID
	Rehomed    int
	CopyBytes  units.ByteSize
	// MTTD is time-to-detection: FailThreshold consecutive probe misses.
	MTTD units.Seconds
	// MTTR is time-to-repair: detection plus the re-replication window (the
	// slowest survivor streaming its copy set from the repository).
	MTTR units.Seconds
	// RecoverTime is the symmetric path when the site returns: OKThreshold
	// probe hits plus copying the dropped replicas back.
	RecoverTime units.Seconds
	// DHealthy/DDegraded/DRepaired are the objective in the three plateaus;
	// DDegraded includes the per-view failover-delay charge the degraded
	// study uses (DegradedFailoverDelay on every down-site view).
	DHealthy  float64
	DDegraded float64
	DRepaired float64
	// Feasible reports Eq. 8-10 on the survivors under the repaired plan.
	Feasible bool
}

// RecoveryResult is the study's output: per-run accounting plus the D(t)
// trajectory figure (self-healing vs PR 3's fallback-only client, relative
// to the healthy objective).
type RecoveryResult struct {
	Runs     []RecoveryRun
	Timeline *stats.Figure
}

// Recovery plays the scripted outage through the repair planner and reports
// MTTR and the D-over-time trajectory. The "Self-healing" series pays the
// degraded objective only during detection + re-replication, then settles
// at the repaired objective until the returned site is restored; the
// "Fallback only" series (PR 3's client, no controller) pays the degraded
// objective for the whole outage.
func Recovery(opts Options) (*RecoveryResult, error) {
	runs := make([]RecoveryRun, opts.Runs)
	type schedule struct {
		repairedAt, returnAt, recoveredAt units.Seconds
		dHealthy, dDegraded, dRepaired    float64
	}
	scheds := make([]schedule, opts.Runs)
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		// Plan at half storage, like the degraded study: self-healing is
		// interesting precisely when replicas are a constrained resource.
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		penv, err := model.NewEnv(env.w, env.est, half)
		if err != nil {
			return err
		}
		p, _, err := core.Plan(penv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}

		// Fail the busiest site — the worst case the paper's static plan
		// leaves unprotected.
		failed := busiestSite(env.w)
		down := map[workload.SiteID]bool{failed: true}
		rp, err := repair.Compute(penv, p, []workload.SiteID{failed}, repair.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}

		failoverCharge := penv.Alpha1 * repair.DownFreq(env.w, down) * float64(DegradedFailoverDelay)
		run := RecoveryRun{
			Run:        r,
			FailedSite: failed,
			Rehomed:    len(rp.Delta.Rehomed),
			CopyBytes:  rp.Delta.CopyBytes,
			MTTD:       units.Seconds(RecoveryFailThreshold) * RecoveryProbeInterval,
			DHealthy:   rp.Delta.DHealthy,
			DDegraded:  rp.Delta.DBefore + failoverCharge,
			DRepaired:  rp.Delta.DAfter,
			Feasible:   rp.Delta.Feasible,
		}
		run.MTTR = run.MTTD + copyWindow(env, rp.Delta.Copies)
		rec := rp.Recover()
		run.RecoverTime = units.Seconds(RecoveryOKThreshold)*RecoveryProbeInterval + copyWindow(env, rec.Copies)
		runs[r] = run

		// Script this run's episode: repaired one MTTR after the failure,
		// the site dwells down for a second MTTR (so the repaired plateau
		// is as long as the repair), then recovery copies replicas back.
		repairedAt := RecoveryFailAt + run.MTTR
		returnAt := RecoveryFailAt + 2*run.MTTR
		scheds[r] = schedule{
			repairedAt:  repairedAt,
			returnAt:    returnAt,
			recoveredAt: returnAt + run.RecoverTime,
			dHealthy:    run.DHealthy,
			dDegraded:   run.DDegraded,
			dRepaired:   run.DRepaired,
		}
		opts.progressf("recovery run %d: site %d failed — %d pages re-homed, copy %s, MTTD %.1fs, MTTR %.1fs (D %.0f -> %.0f -> %.0f)",
			r, failed, run.Rehomed, run.CopyBytes, float64(run.MTTD), float64(run.MTTR),
			run.DHealthy, run.DDegraded, run.DRepaired)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Sample every run's step trajectory on a common grid spanning the
	// slowest episode (plus a settled tail), feeding the collector in run
	// order so the figure is deterministic at any worker count.
	var horizon units.Seconds
	for _, sc := range scheds {
		if sc.recoveredAt > horizon {
			horizon = sc.recoveredAt
		}
	}
	horizon *= 1.05
	step := horizon / RecoveryTimelineSteps
	col := newCollector()
	for _, sc := range scheds {
		rel := func(d float64) float64 { return 100 * (d - sc.dHealthy) / sc.dHealthy }
		for i := 0; i <= RecoveryTimelineSteps; i++ {
			t := units.Seconds(i) * step
			heal := sc.dHealthy
			switch {
			case t < RecoveryFailAt:
			case t < sc.repairedAt:
				heal = sc.dDegraded
			case t < sc.recoveredAt:
				heal = sc.dRepaired
			}
			fb := sc.dHealthy
			if t >= RecoveryFailAt && t < sc.returnAt {
				fb = sc.dDegraded
			}
			col.add("Self-healing", float64(t), rel(heal))
			col.add("Fallback only", float64(t), rel(fb))
		}
	}
	fig := col.figure("Recovery: objective over a scripted site outage",
		"time (s)", []string{"Self-healing", "Fallback only"})
	fig.YLabel = "% increase in D vs healthy placement"
	return &RecoveryResult{Runs: runs, Timeline: fig}, nil
}

// busiestSite returns the site hosting the highest total page-request rate
// (ties to the lowest ID) — deterministic per workload.
func busiestSite(w *workload.Workload) workload.SiteID {
	best, bestLoad := workload.SiteID(0), -1.0
	for i := range w.Sites {
		load := 0.0
		for _, pid := range w.Sites[i].Pages {
			load += float64(w.Pages[pid].Freq)
		}
		if load > bestLoad {
			best, bestLoad = workload.SiteID(i), load
		}
	}
	return best
}

// copyWindow is the re-replication wall clock: every survivor streams its
// copy set from the repository concurrently, so the window is the slowest
// survivor's estimated transfer time.
func copyWindow(env *runEnv, copies []repair.Copy) units.Seconds {
	var worst units.Seconds
	for _, c := range copies {
		if t := env.est.Sites[c.Site].RepoRate.TransferTime(c.Bytes); t > worst {
			worst = t
		}
	}
	return worst
}

// MeanMTTR averages MTTR over the runs.
func (r *RecoveryResult) MeanMTTR() units.Seconds {
	if len(r.Runs) == 0 {
		return 0
	}
	var sum units.Seconds
	for _, run := range r.Runs {
		sum += run.MTTR
	}
	return sum / units.Seconds(len(r.Runs))
}

// Write renders the per-run table and the MTTR summary.
func (r *RecoveryResult) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%-4s %-5s %-8s %-10s %-7s %-7s %-8s %-10s %-10s %-10s %s\n",
		"run", "site", "rehomed", "copy", "MTTD", "MTTR", "recover", "D healthy", "D degr", "D repair", "feasible"); err != nil {
		return err
	}
	for _, run := range r.Runs {
		if _, err := fmt.Fprintf(w, "%-4d %-5d %-8d %-10s %-7.1f %-7.1f %-8.1f %-10.0f %-10.0f %-10.0f %v\n",
			run.Run, run.FailedSite, run.Rehomed, run.CopyBytes,
			float64(run.MTTD), float64(run.MTTR), float64(run.RecoverTime),
			run.DHealthy, run.DDegraded, run.DRepaired, run.Feasible); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "mean MTTR: %.1fs (detection %.0fs probes + re-replication)\n",
		float64(r.MeanMTTR()), float64(units.Seconds(RecoveryFailThreshold)*RecoveryProbeInterval))
	return err
}
