package experiments

import (
	"repro/internal/core"
	"repro/internal/httpsim"
	"repro/internal/model"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// QueueingGrid is the capacity sweep of the queueing study.
var QueueingGrid = []float64{0.2, 0.4, 0.6, 0.8, 1.0}

// QueueingStudy isolates what the Eq. 8 processing constraint buys when
// server occupancy is real: for each capacity level, the Eq. 8-aware plan
// and a capacity-ignorant plan (computed as if capacity were unlimited)
// are each simulated twice — with the fluid queue on and off — and the
// *queueing overhead* (the on/off difference, as a percentage of the
// unconstrained reference time) is reported. The aware plan keeps every
// server's arrival rate at or below its drain rate, so its backlog stays
// bounded; the ignorant plan overloads the servers it was told to ignore
// and its backlog grows for the whole run. (Total response time is a
// different question: at Table-1 transfer rates, shedding load to the
// 0.3-2 KB/s repository can cost more than the queueing it avoids — an
// honest trade-off the EXPERIMENTS.md notes record.)
func QueueingStudy(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		// The capacity-ignorant plan never changes with the sweep.
		ignorantEnv, err := model.NewEnv(env.w, env.est, unconstrainedBudgets(env.w))
		if err != nil {
			return err
		}
		ignorantPlan, _, err := core.Plan(ignorantEnv, core.Options{Workers: env.planWorkers})
		if err != nil {
			return err
		}

		overhead := func(w *workload.Workload, p *model.Placement, name string) (float64, error) {
			cfg := env.simCfg
			cfg.Queueing = false
			off, err := simulateQueued(w, env, policies.NewStatic(name, p), cfg)
			if err != nil {
				return 0, err
			}
			cfg.Queueing = true
			on, err := simulateQueued(w, env, policies.NewStatic(name, p), cfg)
			if err != nil {
				return 0, err
			}
			return (on - off) / env.baseRT * 100, nil
		}

		for _, frac := range QueueingGrid {
			aware := model.FullBudgets(env.w).Scale(env.w, 1, frac)
			aware.RepoCapacity = model.Infinite()
			awareEnv, err := model.NewEnv(env.w, env.est, aware)
			if err != nil {
				return err
			}
			awarePlan, _, err := core.Plan(awareEnv, core.Options{Workers: env.planWorkers})
			if err != nil {
				return err
			}

			// The simulator's queues drain at the workload's site
			// capacities; hand it a copy scaled to this sweep point.
			scaled := scaleSiteCapacities(env.w, frac)

			awareOv, err := overhead(scaled, awarePlan, "aware")
			if err != nil {
				return err
			}
			ignorantOv, err := overhead(scaled, ignorantPlan, "ignorant")
			if err != nil {
				return err
			}
			col.add("Eq.8-aware plan", frac*100, awareOv)
			col.add("Capacity-ignorant plan", frac*100, ignorantOv)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Queueing overhead: what the Eq. 8 constraint buys (fluid-queue mode)",
		"site capacity %", []string{"Eq.8-aware plan", "Capacity-ignorant plan"})
	fig.YLabel = "queueing delay as % of unconstrained response time"
	return fig, nil
}

// scaleSiteCapacities returns a shallow workload copy whose site capacities
// are scaled by frac. Pages and objects are shared (read-only).
func scaleSiteCapacities(w *workload.Workload, frac float64) *workload.Workload {
	out := *w
	out.Sites = append([]workload.Site(nil), w.Sites...)
	for i := range out.Sites {
		out.Sites[i].Capacity = units.ReqPerSec(float64(w.Sites[i].Capacity) * frac)
	}
	return &out
}

// simulateQueued runs a policy on the scaled workload with the run's
// traffic seed. The placement indexes pages by ID, which the scaled copy
// shares with the original.
func simulateQueued(w *workload.Workload, env *runEnv, dec httpsim.Decider, cfg httpsim.Config) (float64, error) {
	res, err := httpsim.Run(w, env.est, dec, cfg, rng.New(env.simSeed))
	if err != nil {
		return 0, err
	}
	return res.CompositeMean(), nil
}
