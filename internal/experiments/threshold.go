package experiments

import (
	"repro/internal/policies"
	"repro/internal/stats"
)

// ThresholdGrid sweeps the replication-creation threshold of the dynamic
// baseline.
var ThresholdGrid = []int64{1, 2, 5, 10, 25, 50}

// ThresholdStudy demonstrates the paper's Section-6 critique of
// threshold-driven dynamic replication ("the use of threshold values makes
// the performance of the scheme dependent upon their chosen values"): the
// Threshold baseline is simulated at 50 % storage across creation
// thresholds, against the proposed static plan at the same storage, all on
// identical traffic and relative to the unconstrained proposed policy.
func ThresholdStudy(opts Options) (*stats.Figure, error) {
	col := newCollector()
	err := forEachRun(&opts, func(r int, env *runEnv) error {
		half := unconstrainedBudgets(env.w).Scale(env.w, 0.5, 1)
		oursRT, _, err := env.simulatePlanned(half, false)
		if err != nil {
			return err
		}
		for _, thr := range ThresholdGrid {
			pol, err := policies.NewThreshold(env.w, half, thr, 0)
			if err != nil {
				return err
			}
			// Warm like the LRU baseline: dynamic schemes adapt online, so
			// measuring from a cold start would conflate ramp-up with
			// steady state.
			rt, err := env.simulate(pol, true)
			if err != nil {
				return err
			}
			col.add("Threshold dynamic", float64(thr), stats.RelativeIncrease(rt, env.baseRT))
			col.add("Proposed (static plan)", float64(thr), stats.RelativeIncrease(oursRT, env.baseRT))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	fig := col.figure("Threshold-driven dynamic replication vs the static plan (50% storage)",
		"replication threshold (accesses)", []string{"Proposed (static plan)", "Threshold dynamic"})
	return fig, nil
}
