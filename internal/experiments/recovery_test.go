package experiments

import (
	"bytes"
	"testing"
)

func TestRecoveryShape(t *testing.T) {
	res, err := Recovery(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("got %d runs, want 2", len(res.Runs))
	}
	wantMTTD := float64(RecoveryFailThreshold) * float64(RecoveryProbeInterval)
	for _, run := range res.Runs {
		if run.Rehomed == 0 {
			t.Errorf("run %d: failing the busiest site re-homed no pages", run.Run)
		}
		if float64(run.MTTD) != wantMTTD {
			t.Errorf("run %d: MTTD %.1fs, want %.1fs", run.Run, float64(run.MTTD), wantMTTD)
		}
		if run.MTTR < run.MTTD {
			t.Errorf("run %d: MTTR %.1fs below detection time %.1fs", run.Run, float64(run.MTTR), float64(run.MTTD))
		}
		// Losing a site must hurt; repair must claw most of it back without
		// beating the unconstrained healthy plan.
		if run.DDegraded <= run.DHealthy {
			t.Errorf("run %d: degraded D %.0f not above healthy %.0f", run.Run, run.DDegraded, run.DHealthy)
		}
		// Note: no DRepaired >= DHealthy assertion — a re-homed community
		// inherits its new host's network estimates in the model, so moving
		// pages off a badly-connected site can (legitimately, per Eq. 5-7)
		// land below the healthy objective.
		if run.DRepaired >= run.DDegraded {
			t.Errorf("run %d: repaired D %.0f no better than degraded %.0f", run.Run, run.DRepaired, run.DDegraded)
		}
		if !run.Feasible {
			t.Errorf("run %d: repaired plan infeasible on survivors", run.Run)
		}
	}
	for _, name := range []string{"Self-healing", "Fallback only"} {
		s := seriesByName(res.Timeline, name)
		if s == nil {
			t.Fatalf("missing series %q", name)
		}
		if len(s.X) != RecoveryTimelineSteps+1 {
			t.Errorf("%s has %d points, want %d", name, len(s.X), RecoveryTimelineSteps+1)
		}
	}
	// Both trajectories start healthy and settle back at the baseline: the
	// horizon extends past the slowest run's recovery.
	heal := seriesByName(res.Timeline, "Self-healing")
	fb := seriesByName(res.Timeline, "Fallback only")
	last := len(heal.Y) - 1
	if heal.Y[0] != 0 || fb.Y[0] != 0 {
		t.Errorf("trajectories do not start at the healthy baseline: heal %+.2f%%, fallback %+.2f%%",
			heal.Y[0], fb.Y[0])
	}
	if heal.Y[last] != 0 || fb.Y[last] != 0 {
		t.Errorf("trajectories do not settle at the healthy baseline: heal %+.2f%%, fallback %+.2f%%",
			heal.Y[last], fb.Y[last])
	}
	// Area under the curve: the whole point of the controller. Self-healing
	// trades the degraded plateau for the cheaper repaired one halfway
	// through the outage, so its integrated penalty must be smaller.
	var healArea, fbArea float64
	for i := range heal.Y {
		healArea += heal.Y[i]
		fbArea += fb.Y[i]
	}
	if healArea >= fbArea {
		t.Errorf("self-healing area %.1f not below fallback-only area %.1f", healArea, fbArea)
	}
}

// TestRecoveryReproducible is the acceptance-criterion check: the study is a
// pure function of its options — rendering the per-run table and the timeline
// CSV twice yields byte-identical output.
func TestRecoveryReproducible(t *testing.T) {
	render := func() []byte {
		t.Helper()
		res, err := Recovery(tiny())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := res.Timeline.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := render()
	b := render()
	if !bytes.Equal(a, b) {
		t.Fatal("recovery study is not bit-reproducible across identical invocations")
	}
}
