package workload

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/units"
)

// Sub-stream labels for hierarchical seeding. Keeping them as named
// constants makes regenerated workloads stable across refactors.
const (
	streamObjects uint64 = iota + 1
	streamSitePool
	streamPages
	streamFreqs
	streamMirrors
)

// Generate builds a workload from the configuration and seed. Identical
// (config, seed) pairs yield byte-identical workloads.
func Generate(cfg Config, seed uint64) (*Workload, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(seed)
	w := &Workload{Config: cfg, Seed: seed}

	// Global object population: 15,000 MOs with Table-1 size classes.
	moSizes, err := cfg.moSampler()
	if err != nil {
		return nil, err
	}
	objStream := root.Split(streamObjects)
	w.Objects = make([]Object, cfg.GlobalObjects)
	for k := range w.Objects {
		w.Objects[k] = Object{ID: ObjectID(k), Size: units.ByteSize(moSizes.Draw(objStream))}
	}

	htmlSizes, err := cfg.htmlSampler()
	if err != nil {
		return nil, err
	}

	w.Sites = make([]Site, cfg.Sites)
	for i := range w.Sites {
		if err := generateSite(w, SiteID(i), root, htmlSizes); err != nil {
			return nil, err
		}
	}
	if cfg.MirrorHotPages > 0 {
		mirrorHotPages(w, root.Split(streamMirrors))
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generator produced invalid workload: %w", err)
	}
	return w, nil
}

// mirrorHotPages replicates every hot page onto MirrorHotPages additional
// sites (Section 3 treats each copy as a distinct page). Copies reference
// the same objects — which may lie outside the target site's own sampled
// pool, so the pool is extended — and the original's traffic is split
// evenly across all copies, preserving the global request rate.
func mirrorHotPages(w *Workload, s *rng.Stream) {
	if w.NumSites() < 2 {
		return
	}
	extra := w.Config.MirrorHotPages
	if extra > w.NumSites()-1 {
		extra = w.NumSites() - 1
	}

	poolSets := make([]map[ObjectID]bool, w.NumSites())
	for i := range poolSets {
		poolSets[i] = make(map[ObjectID]bool, len(w.Sites[i].Objects))
		for _, k := range w.Sites[i].Objects {
			poolSets[i][k] = true
		}
	}

	originals := len(w.Pages)
	for j := 0; j < originals; j++ {
		// Value copy: the appends below may reallocate w.Pages, which
		// would dangle a pointer. The slices inside are shared, immutable
		// content.
		src := w.Pages[j]
		if !src.Hot {
			continue
		}
		// Choose the target sites: a random sample of the other sites.
		var others []int
		for i := 0; i < w.NumSites(); i++ {
			if SiteID(i) != src.Site {
				others = append(others, i)
			}
		}
		targetsIdx := s.SampleWithoutReplacement(len(others), extra)

		splitFreq := units.ReqPerSec(float64(src.Freq) / float64(extra+1))
		w.Pages[j].Freq = splitFreq
		for _, ti := range targetsIdx {
			site := SiteID(others[ti])
			copyID := PageID(len(w.Pages))
			cp := Page{
				ID:       copyID,
				Site:     site,
				HTMLSize: src.HTMLSize,
				Freq:     splitFreq,
				Hot:      true,
				// Share the reference slices: content is immutable.
				Compulsory: src.Compulsory,
				Optional:   src.Optional,
			}
			for _, k := range src.Compulsory {
				if !poolSets[site][k] {
					poolSets[site][k] = true
					w.Sites[site].Objects = append(w.Sites[site].Objects, k)
				}
			}
			for _, l := range src.Optional {
				if !poolSets[site][l.Object] {
					poolSets[site][l.Object] = true
					w.Sites[site].Objects = append(w.Sites[site].Objects, l.Object)
				}
			}
			w.Sites[site].Pages = append(w.Sites[site].Pages, copyID)
			w.Pages = append(w.Pages, cp)
		}
	}
}

// generateSite populates site i: its object pool, its pages (HTML sizes,
// compulsory/optional object references) and its page frequencies.
func generateSite(w *Workload, i SiteID, root *rng.Stream, htmlSizes *rng.ClassedSampler) error {
	cfg := &w.Config
	poolStream := root.Split(streamSitePool, uint64(i))
	pageStream := root.Split(streamPages, uint64(i))
	freqStream := root.Split(streamFreqs, uint64(i))

	site := Site{ID: i, Capacity: cfg.SiteCapacity}

	// Object pool: a uniform sample of the global population (Table 1:
	// 1,500-4,500 MOs per local site).
	poolSize := poolStream.IntRange(cfg.ObjectsPerSite, cfg.ObjectsPerMax)
	pool := poolStream.SampleWithoutReplacement(cfg.GlobalObjects, poolSize)
	site.Objects = make([]ObjectID, len(pool))
	for idx, v := range pool {
		site.Objects[idx] = ObjectID(v)
	}

	nPages := pageStream.IntRange(cfg.PagesPerSiteMin, cfg.PagesPerSiteMax)

	// Frequency weights per mixture index, under the configured popularity
	// model; hotCount marks the leading indices flagged Hot.
	weights, hotCount, err := popularityWeights(cfg, nPages)
	if err != nil {
		return err
	}
	// Randomize which pages are hot: position r in the random permutation
	// maps to mixture index r, so the hot set is a random subset.
	perm := freqStream.Perm(nPages)

	linkProb := cfg.LinkProb()
	for r := 0; r < nPages; r++ {
		pid := PageID(len(w.Pages))
		p := Page{
			ID:       pid,
			Site:     i,
			HTMLSize: units.ByteSize(htmlSizes.Draw(pageStream)),
		}

		nComp := pageStream.IntRange(cfg.CompulsoryMin, cfg.CompulsoryMax)
		nOpt := 0
		if pageStream.Bool(cfg.OptionalPageFrac) {
			nOpt = pageStream.IntRange(cfg.OptionalMin, cfg.OptionalMax)
		}
		// One disjoint sample from the pool, split into compulsory and
		// optional (an object cannot be both: U'_jk = 0 when U_jk = 1).
		refs := pageStream.SampleWithoutReplacement(len(site.Objects), nComp+nOpt)
		p.Compulsory = make([]ObjectID, nComp)
		for idx := 0; idx < nComp; idx++ {
			p.Compulsory[idx] = site.Objects[refs[idx]]
		}
		if nOpt > 0 {
			p.Optional = make([]OptionalLink, nOpt)
			for idx := 0; idx < nOpt; idx++ {
				p.Optional[idx] = OptionalLink{Object: site.Objects[refs[nComp+idx]], Prob: linkProb}
			}
		}

		mixIdx := perm[r]
		p.Hot = mixIdx < hotCount
		p.Freq = units.ReqPerSec(float64(cfg.PageRatePerSite) * weights[mixIdx])

		site.Pages = append(site.Pages, pid)
		w.Pages = append(w.Pages, p)
	}

	w.Sites[i] = site
	return nil
}

// popularityWeights returns the normalized per-index frequency weights and
// the count of leading indices flagged Hot, under the configured model.
func popularityWeights(cfg *Config, n int) ([]float64, int, error) {
	weights := make([]float64, n)
	switch cfg.Popularity {
	case "", PopularityHotCold:
		hc, err := rng.NewHotCold(n, cfg.HotPageFrac, cfg.HotTrafficShare)
		if err != nil {
			return nil, 0, err
		}
		for i := range weights {
			weights[i] = hc.Weight(i)
		}
		return weights, hc.HotCount(), nil
	case PopularityZipf:
		sum := 0.0
		for i := range weights {
			weights[i] = 1 / math.Pow(float64(i+1), cfg.ZipfS)
			sum += weights[i]
		}
		for i := range weights {
			weights[i] /= sum
		}
		hot := int(float64(n)*cfg.HotPageFrac + 0.5)
		if hot < 1 {
			hot = 1
		}
		return weights, hot, nil
	}
	return nil, 0, fmt.Errorf("workload: unknown popularity model %q", cfg.Popularity)
}

// MustGenerate is Generate that panics on error, for tests and examples
// using known-valid configurations.
func MustGenerate(cfg Config, seed uint64) *Workload {
	w, err := Generate(cfg, seed)
	if err != nil {
		panic(err)
	}
	return w
}
