package workload

import (
	"math"
	"testing"
)

func TestDriftPreservesContent(t *testing.T) {
	w := MustGenerate(SmallConfig(), 91)
	d, err := Drift(w, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumPages() != w.NumPages() || d.NumObjects() != w.NumObjects() || d.NumSites() != w.NumSites() {
		t.Fatal("drift changed workload shape")
	}
	for j := range w.Pages {
		if len(d.Pages[j].Compulsory) != len(w.Pages[j].Compulsory) {
			t.Fatalf("page %d content changed", j)
		}
		if d.Pages[j].HTMLSize != w.Pages[j].HTMLSize {
			t.Fatalf("page %d HTML size changed", j)
		}
	}
}

func TestDriftKeepsSiteRates(t *testing.T) {
	w := MustGenerate(SmallConfig(), 92)
	d, err := Drift(w, 0.75, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Sites {
		sum := 0.0
		for _, pid := range d.Sites[i].Pages {
			sum += float64(d.Pages[pid].Freq)
		}
		if math.Abs(sum-float64(d.Config.PageRatePerSite)) > 1e-9 {
			t.Errorf("site %d rate %v after drift, want %v", i, sum, d.Config.PageRatePerSite)
		}
	}
}

func TestDriftZeroIsIdentityOfFrequencies(t *testing.T) {
	w := MustGenerate(SmallConfig(), 93)
	d, err := Drift(w, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	for j := range w.Pages {
		if d.Pages[j].Hot != w.Pages[j].Hot {
			t.Fatalf("page %d hotness changed at 0%% drift", j)
		}
		if math.Abs(float64(d.Pages[j].Freq-w.Pages[j].Freq)) > 1e-12 {
			t.Fatalf("page %d frequency changed at 0%% drift", j)
		}
	}
}

func TestDriftFullRotatesHotSet(t *testing.T) {
	w := MustGenerate(SmallConfig(), 94)
	d, err := Drift(w, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	// At 100 % rotation no originally-hot page stays hot (cold pool is
	// large enough in SmallConfig).
	for j := range w.Pages {
		if w.Pages[j].Hot && d.Pages[j].Hot {
			t.Fatalf("page %d stayed hot across full rotation", j)
		}
	}
	// Hot counts are preserved per site.
	for i := range w.Sites {
		count := func(wk *Workload) int {
			n := 0
			for _, pid := range wk.Sites[i].Pages {
				if wk.Pages[pid].Hot {
					n++
				}
			}
			return n
		}
		if count(w) != count(d) {
			t.Errorf("site %d hot count changed: %d -> %d", i, count(w), count(d))
		}
	}
}

func TestDriftDoesNotMutateOriginal(t *testing.T) {
	w := MustGenerate(SmallConfig(), 95)
	before := make([]bool, w.NumPages())
	for j := range w.Pages {
		before[j] = w.Pages[j].Hot
	}
	if _, err := Drift(w, 1, 11); err != nil {
		t.Fatal(err)
	}
	for j := range w.Pages {
		if w.Pages[j].Hot != before[j] {
			t.Fatal("Drift mutated the original workload")
		}
	}
}

func TestDriftValidation(t *testing.T) {
	w := MustGenerate(SmallConfig(), 96)
	if _, err := Drift(w, -0.1, 1); err == nil {
		t.Error("negative fraction accepted")
	}
	if _, err := Drift(w, 1.1, 1); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestDriftDeterministic(t *testing.T) {
	w := MustGenerate(SmallConfig(), 97)
	a, err := Drift(w, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Drift(w, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Pages {
		if a.Pages[j].Hot != b.Pages[j].Hot || a.Pages[j].Freq != b.Pages[j].Freq {
			t.Fatal("drift not deterministic")
		}
	}
}
