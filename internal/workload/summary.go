package workload

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/stats"
	"repro/internal/units"
)

// Summary is the generator audit: the realized values of every Table-1
// parameter, used to verify the synthetic workload matches the paper
// (including the "100 % storage ≈ 1.8 GB on average" claim of §5.2).
type Summary struct {
	Sites          int
	Pages          int
	Objects        int
	PagesPerSite   stats.Accumulator
	ObjectsPerSite stats.Accumulator
	CompPerPage    stats.Accumulator
	OptPerPage     stats.Accumulator // over pages that have optional MOs
	OptionalPages  int               // pages with ≥1 optional MO
	HTMLBytes      stats.Accumulator
	MOBytes        stats.Accumulator
	HotPages       int
	HotTraffic     float64           // fraction of request rate on hot pages
	FullStorage    stats.Accumulator // per-site 100 %-storage requirement (bytes)
	PageRate       stats.Accumulator // per-site aggregate f(W_j) sum
}

// Summarize computes the audit over a workload.
func Summarize(w *Workload) *Summary {
	s := &Summary{Sites: w.NumSites(), Pages: w.NumPages(), Objects: w.NumObjects()}
	for _, o := range w.Objects {
		s.MOBytes.Add(float64(o.Size))
	}
	var totalRate, hotRate float64
	for j := range w.Pages {
		p := &w.Pages[j]
		s.CompPerPage.Add(float64(len(p.Compulsory)))
		if len(p.Optional) > 0 {
			s.OptionalPages++
			s.OptPerPage.Add(float64(len(p.Optional)))
		}
		s.HTMLBytes.Add(float64(p.HTMLSize))
		totalRate += float64(p.Freq)
		if p.Hot {
			s.HotPages++
			hotRate += float64(p.Freq)
		}
	}
	if totalRate > 0 {
		s.HotTraffic = hotRate / totalRate
	}
	for i := range w.Sites {
		s.PagesPerSite.Add(float64(len(w.Sites[i].Pages)))
		s.ObjectsPerSite.Add(float64(len(w.Sites[i].Objects)))
		s.FullStorage.Add(float64(w.FullStorageBytes(SiteID(i))))
		var rate float64
		for _, pid := range w.Sites[i].Pages {
			rate += float64(w.Pages[pid].Freq)
		}
		s.PageRate.Add(rate)
	}
	return s
}

// Write renders the audit as an aligned two-column report.
func (s *Summary) Write(w io.Writer) error {
	rows := [][2]string{
		{"Local sites", fmt.Sprintf("%d", s.Sites)},
		{"Web pages (total)", fmt.Sprintf("%d", s.Pages)},
		{"Pages per site", fmt.Sprintf("%.0f (avg, range %.0f-%.0f)", s.PagesPerSite.Mean(), s.PagesPerSite.Min(), s.PagesPerSite.Max())},
		{"MOs in the network", fmt.Sprintf("%d", s.Objects)},
		{"MOs per site pool", fmt.Sprintf("%.0f (avg, range %.0f-%.0f)", s.ObjectsPerSite.Mean(), s.ObjectsPerSite.Min(), s.ObjectsPerSite.Max())},
		{"Compulsory MOs per page", fmt.Sprintf("%.1f (avg, range %.0f-%.0f)", s.CompPerPage.Mean(), s.CompPerPage.Min(), s.CompPerPage.Max())},
		{"Pages with optional MOs", fmt.Sprintf("%d (%.1f%%)", s.OptionalPages, 100*float64(s.OptionalPages)/float64(max(s.Pages, 1)))},
		{"Optional MOs per such page", fmt.Sprintf("%.1f (avg, range %.0f-%.0f)", s.OptPerPage.Mean(), s.OptPerPage.Min(), s.OptPerPage.Max())},
		{"HTML size", fmt.Sprintf("%s (avg)", units.ByteSize(s.HTMLBytes.Mean()))},
		{"MO size", fmt.Sprintf("%s (avg)", units.ByteSize(s.MOBytes.Mean()))},
		{"Hot pages", fmt.Sprintf("%d (%.1f%% of pages, %.1f%% of traffic)", s.HotPages, 100*float64(s.HotPages)/float64(max(s.Pages, 1)), 100*s.HotTraffic)},
		{"100% storage per site", fmt.Sprintf("%s (avg)", units.ByteSize(s.FullStorage.Mean()))},
		{"Page request rate per site", fmt.Sprintf("%.2f req/s (avg)", s.PageRate.Mean())},
	}
	width := 0
	for _, r := range rows {
		if len(r[0]) > width {
			width = len(r[0])
		}
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%-*s  %s\n", width, r[0], r[1]); err != nil {
			return err
		}
	}
	return nil
}

// TrafficShare returns, for one site, the fraction of its page-request rate
// carried by its top `frac` most-requested pages — used by tests to confirm
// the 10 %→60 % skew.
func TrafficShare(w *Workload, i SiteID, frac float64) float64 {
	pages := w.Sites[i].Pages
	freqs := make([]float64, len(pages))
	total := 0.0
	for idx, pid := range pages {
		freqs[idx] = float64(w.Pages[pid].Freq)
		total += freqs[idx]
	}
	if total == 0 {
		return 0
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(freqs)))
	top := int(float64(len(freqs))*frac + 0.5)
	sum := 0.0
	for idx := 0; idx < top && idx < len(freqs); idx++ {
		sum += freqs[idx]
	}
	return sum / total
}
