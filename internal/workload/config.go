package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// SizeClass mirrors rng.SizeClass for configuration with byte sizes.
type SizeClass struct {
	Frac float64        `json:"frac"`
	Lo   units.ByteSize `json:"lo"`
	Hi   units.ByteSize `json:"hi"`
}

// PopularityModel selects how page request frequencies are distributed.
type PopularityModel string

// Popularity models.
const (
	// PopularityHotCold is the paper's Table-1 skew: HotPageFrac of the
	// pages draw HotTrafficShare of the traffic, uniform within class.
	// The zero value selects it.
	PopularityHotCold PopularityModel = "hotcold"
	// PopularityZipf draws frequencies ∝ 1/rank^ZipfS — the standard
	// heavy-tailed model of the web-characterization literature, provided
	// as a robustness alternative (the paper's findings should not hinge
	// on the two-class shape).
	PopularityZipf PopularityModel = "zipf"
)

// Config holds every Table-1 workload parameter. DefaultConfig reproduces
// the paper's values; tests and examples shrink them via Scaled.
type Config struct {
	Sites int `json:"sites"` // number of local sites (10)

	PagesPerSiteMin int `json:"pagesPerSiteMin"` // 400
	PagesPerSiteMax int `json:"pagesPerSiteMax"` // 800

	// Popularity selects the frequency distribution; empty = hotcold.
	Popularity PopularityModel `json:"popularity,omitempty"`
	// ZipfS is the Zipf exponent when Popularity == PopularityZipf (≈0.8
	// in classic web traces).
	ZipfS float64 `json:"zipfS,omitempty"`

	// MirrorHotPages replicates each hot page onto this many additional
	// sites. Section 3: "if multiple copies of it exist we treat each copy
	// as a different page" — copies are distinct Page entries on distinct
	// sites referencing the same objects, with the page's traffic split
	// evenly among the copies. 0 (the paper's evaluation) disables it.
	MirrorHotPages int `json:"mirrorHotPages,omitempty"`

	HotPageFrac     float64 `json:"hotPageFrac"`     // 0.10
	HotTrafficShare float64 `json:"hotTrafficShare"` // 0.60

	CompulsoryMin int `json:"compulsoryMin"` // 5
	CompulsoryMax int `json:"compulsoryMax"` // 45

	OptionalPageFrac float64 `json:"optionalPageFrac"` // 0.10 of pages carry optional MOs
	OptionalMin      int     `json:"optionalMin"`      // 10
	OptionalMax      int     `json:"optionalMax"`      // 85

	GlobalObjects  int `json:"globalObjects"`  // 15,000
	ObjectsPerSite int `json:"objectsPerSite"` // lower bound, 1,500
	ObjectsPerMax  int `json:"objectsPerMax"`  // upper bound, 4,500

	HTMLClasses []SizeClass `json:"htmlClasses"` // 35 % 1-6K, 60 % 6-20K, 5 % 20-50K
	MOClasses   []SizeClass `json:"moClasses"`   // 30 % 40-300K, 60 % 300-800K, 10 % 800K-4M

	// OptionalInterestProb is the probability a user who downloaded a page
	// requests one or more of its optional MOs (0.10); OptionalRequestFrac
	// is the fraction of the page's optional links such a user requests
	// (0.30). The per-link probability U'_jk is their product.
	OptionalInterestProb float64 `json:"optionalInterestProb"`
	OptionalRequestFrac  float64 `json:"optionalRequestFrac"`

	SiteCapacity units.ReqPerSec `json:"siteCapacity"` // C(S_i) = 150 req/s
	RepoCapacity units.ReqPerSec `json:"repoCapacity"` // C(R); 0 = infinite

	// PageRatePerSite is the aggregate peak-hour page-request rate each site
	// receives, split across its pages by the hot/cold mixture. The paper
	// does not state it; 5 pages/s makes the all-local plan consume ≈ 85-90 %
	// of the 150 req/s capacity, which matches the Figure-2 narrative
	// (assumption documented in DESIGN.md §3.4).
	PageRatePerSite units.ReqPerSec `json:"pageRatePerSite"`

	RequestsPerSite int `json:"requestsPerSite"` // 10,000

	Alpha1 float64 `json:"alpha1"` // weight of D1 (page retrieval), 2
	Alpha2 float64 `json:"alpha2"` // weight of D2 (optional downloads), 1
}

// DefaultConfig returns the exact Table-1 parameters.
func DefaultConfig() Config {
	return Config{
		Sites:           10,
		PagesPerSiteMin: 400,
		PagesPerSiteMax: 800,
		HotPageFrac:     0.10,
		HotTrafficShare: 0.60,
		CompulsoryMin:   5,
		CompulsoryMax:   45,

		OptionalPageFrac: 0.10,
		OptionalMin:      10,
		OptionalMax:      85,

		GlobalObjects:  15000,
		ObjectsPerSite: 1500,
		ObjectsPerMax:  4500,

		HTMLClasses: []SizeClass{
			{Frac: 0.35, Lo: 1 * units.KB, Hi: 6 * units.KB},
			{Frac: 0.60, Lo: 6 * units.KB, Hi: 20 * units.KB},
			{Frac: 0.05, Lo: 20 * units.KB, Hi: 50 * units.KB},
		},
		MOClasses: []SizeClass{
			{Frac: 0.30, Lo: 40 * units.KB, Hi: 300 * units.KB},
			{Frac: 0.60, Lo: 300 * units.KB, Hi: 800 * units.KB},
			{Frac: 0.10, Lo: 800 * units.KB, Hi: 4 * units.MB},
		},

		OptionalInterestProb: 0.10,
		OptionalRequestFrac:  0.30,

		SiteCapacity: 150,
		RepoCapacity: 0, // infinite

		PageRatePerSite: 5,
		RequestsPerSite: 10000,

		Alpha1: 2,
		Alpha2: 1,
	}
}

// SmallConfig returns a reduced configuration suitable for unit tests and
// quick examples: same distributions and ratios, ~50× less content.
func SmallConfig() Config {
	c := DefaultConfig()
	c.Sites = 4
	c.PagesPerSiteMin = 30
	c.PagesPerSiteMax = 60
	c.GlobalObjects = 800
	c.ObjectsPerSite = 100
	c.ObjectsPerMax = 300
	c.CompulsoryMin = 3
	c.CompulsoryMax = 12
	c.OptionalMin = 4
	c.OptionalMax = 15
	c.RequestsPerSite = 400
	return c
}

// Validate rejects configurations the generator cannot honor.
func (c *Config) Validate() error {
	switch {
	case c.Sites <= 0:
		return fmt.Errorf("workload: Sites must be positive, got %d", c.Sites)
	case c.PagesPerSiteMin <= 0 || c.PagesPerSiteMax < c.PagesPerSiteMin:
		return fmt.Errorf("workload: bad pages-per-site range [%d,%d]", c.PagesPerSiteMin, c.PagesPerSiteMax)
	case c.HotPageFrac < 0 || c.HotPageFrac > 1:
		return fmt.Errorf("workload: HotPageFrac %v outside [0,1]", c.HotPageFrac)
	case c.HotTrafficShare < 0 || c.HotTrafficShare > 1:
		return fmt.Errorf("workload: HotTrafficShare %v outside [0,1]", c.HotTrafficShare)
	case c.CompulsoryMin <= 0 || c.CompulsoryMax < c.CompulsoryMin:
		return fmt.Errorf("workload: bad compulsory range [%d,%d]", c.CompulsoryMin, c.CompulsoryMax)
	case c.OptionalPageFrac < 0 || c.OptionalPageFrac > 1:
		return fmt.Errorf("workload: OptionalPageFrac %v outside [0,1]", c.OptionalPageFrac)
	case c.OptionalMin < 0 || c.OptionalMax < c.OptionalMin:
		return fmt.Errorf("workload: bad optional range [%d,%d]", c.OptionalMin, c.OptionalMax)
	case c.GlobalObjects <= 0:
		return fmt.Errorf("workload: GlobalObjects must be positive, got %d", c.GlobalObjects)
	case c.ObjectsPerSite <= 0 || c.ObjectsPerMax < c.ObjectsPerSite:
		return fmt.Errorf("workload: bad objects-per-site range [%d,%d]", c.ObjectsPerSite, c.ObjectsPerMax)
	case c.ObjectsPerMax > c.GlobalObjects:
		return fmt.Errorf("workload: ObjectsPerMax %d exceeds GlobalObjects %d", c.ObjectsPerMax, c.GlobalObjects)
	case len(c.HTMLClasses) == 0 || len(c.MOClasses) == 0:
		return fmt.Errorf("workload: size classes must be non-empty")
	case c.OptionalInterestProb < 0 || c.OptionalInterestProb > 1:
		return fmt.Errorf("workload: OptionalInterestProb %v outside [0,1]", c.OptionalInterestProb)
	case c.OptionalRequestFrac < 0 || c.OptionalRequestFrac > 1:
		return fmt.Errorf("workload: OptionalRequestFrac %v outside [0,1]", c.OptionalRequestFrac)
	case c.SiteCapacity < 0 || c.RepoCapacity < 0:
		return fmt.Errorf("workload: capacities must be non-negative")
	case c.PageRatePerSite <= 0:
		return fmt.Errorf("workload: PageRatePerSite must be positive, got %v", c.PageRatePerSite)
	case c.RequestsPerSite <= 0:
		return fmt.Errorf("workload: RequestsPerSite must be positive, got %d", c.RequestsPerSite)
	case c.Alpha1 < 0 || c.Alpha2 < 0 || c.Alpha1+c.Alpha2 == 0:
		return fmt.Errorf("workload: weights (%v,%v) invalid", c.Alpha1, c.Alpha2)
	}
	switch c.Popularity {
	case "", PopularityHotCold:
	case PopularityZipf:
		if c.ZipfS <= 0 {
			return fmt.Errorf("workload: Zipf popularity needs ZipfS > 0, got %v", c.ZipfS)
		}
	default:
		return fmt.Errorf("workload: unknown popularity model %q", c.Popularity)
	}
	// The compulsory+optional demand of a single page must fit in the
	// site's object pool.
	if c.CompulsoryMax+c.OptionalMax > c.ObjectsPerSite {
		return fmt.Errorf("workload: a page may need %d objects but the smallest site pool is %d",
			c.CompulsoryMax+c.OptionalMax, c.ObjectsPerSite)
	}
	if _, err := c.htmlSampler(); err != nil {
		return fmt.Errorf("workload: HTML classes: %w", err)
	}
	if _, err := c.moSampler(); err != nil {
		return fmt.Errorf("workload: MO classes: %w", err)
	}
	return nil
}

func toRNGClasses(cs []SizeClass) []rng.SizeClass {
	out := make([]rng.SizeClass, len(cs))
	for i, c := range cs {
		out[i] = rng.SizeClass{Frac: c.Frac, Lo: int64(c.Lo), Hi: int64(c.Hi)}
	}
	return out
}

func (c *Config) htmlSampler() (*rng.ClassedSampler, error) {
	return rng.NewClassedSampler(toRNGClasses(c.HTMLClasses))
}

func (c *Config) moSampler() (*rng.ClassedSampler, error) {
	return rng.NewClassedSampler(toRNGClasses(c.MOClasses))
}

// LinkProb returns the per-link optional request probability U'_jk implied
// by the interest/fraction parameters.
func (c *Config) LinkProb() float64 {
	return c.OptionalInterestProb * c.OptionalRequestFrac
}
