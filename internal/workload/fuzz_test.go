package workload

import (
	"strings"
	"testing"
)

// FuzzDecode hardens the workload JSON decoder: arbitrary input must never
// panic, and anything it accepts must satisfy Validate (Decode promises
// validated output).
func FuzzDecode(f *testing.F) {
	// Seed with a real workload and mutations of it.
	w := MustGenerate(SmallConfig(), 1)
	var sb strings.Builder
	if err := w.Encode(&sb); err != nil {
		f.Fatal(err)
	}
	valid := sb.String()
	f.Add(valid)
	f.Add(strings.Replace(valid, `"id": 0`, `"id": -1`, 1))
	f.Add(`{}`)
	f.Add(`{"objects":[{"id":0,"size":-5}],"pages":[],"sites":[]}`)
	f.Add(`not json at all`)
	f.Add(`{"objects":[{"id":0,"size":1}],"pages":[{"id":0,"site":9,"htmlSize":1,"freq":1,"compulsory":[0]}],"sites":[{"id":0,"pages":[0],"objects":[0]}]}`)

	f.Fuzz(func(t *testing.T, data string) {
		got, err := Decode(strings.NewReader(data))
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid workload: %v", err)
		}
	})
}
