package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Encode writes the workload as indented JSON.
func (w *Workload) Encode(dst io.Writer) error {
	enc := json.NewEncoder(dst)
	enc.SetIndent("", " ")
	if err := enc.Encode(w); err != nil {
		return fmt.Errorf("workload: encode: %w", err)
	}
	return nil
}

// Decode reads a workload from JSON and validates it, so corrupt or
// hand-edited files fail loudly instead of producing nonsense placements.
func Decode(src io.Reader) (*Workload, error) {
	var w Workload
	dec := json.NewDecoder(src)
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("workload: decode: %w", err)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return &w, nil
}

// SaveFile writes the workload to path.
func (w *Workload) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("workload: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := w.Encode(bw); err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("workload: %w", err)
	}
	return f.Close()
}

// LoadFile reads a workload from path.
func LoadFile(path string) (*Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	defer f.Close()
	return Decode(bufio.NewReader(f))
}
