package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/units"
)

func TestGenerateSmallValid(t *testing.T) {
	w := MustGenerate(SmallConfig(), 1)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.NumSites() != 4 {
		t.Errorf("sites = %d", w.NumSites())
	}
	if w.NumObjects() != 800 {
		t.Errorf("objects = %d", w.NumObjects())
	}
	if w.NumPages() < 4*30 || w.NumPages() > 4*60 {
		t.Errorf("pages = %d outside expected range", w.NumPages())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate(SmallConfig(), 99)
	b := MustGenerate(SmallConfig(), 99)
	var bufA, bufB bytes.Buffer
	if err := a.Encode(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bufB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
		t.Error("same (config, seed) produced different workloads")
	}
	c := MustGenerate(SmallConfig(), 100)
	var bufC bytes.Buffer
	if err := c.Encode(&bufC); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(bufA.Bytes(), bufC.Bytes()) {
		t.Error("different seeds produced identical workloads")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := func(mutate func(*Config)) Config {
		c := DefaultConfig()
		mutate(&c)
		return c
	}
	cases := map[string]Config{
		"zero sites":       bad(func(c *Config) { c.Sites = 0 }),
		"inverted pages":   bad(func(c *Config) { c.PagesPerSiteMax = c.PagesPerSiteMin - 1 }),
		"hot frac":         bad(func(c *Config) { c.HotPageFrac = 1.5 }),
		"hot share":        bad(func(c *Config) { c.HotTrafficShare = -0.1 }),
		"compulsory":       bad(func(c *Config) { c.CompulsoryMin = 0 }),
		"optional range":   bad(func(c *Config) { c.OptionalMax = c.OptionalMin - 1 }),
		"global objects":   bad(func(c *Config) { c.GlobalObjects = 0 }),
		"pool too big":     bad(func(c *Config) { c.ObjectsPerMax = c.GlobalObjects + 1 }),
		"page over pool":   bad(func(c *Config) { c.ObjectsPerSite = 10 }),
		"no HTML classes":  bad(func(c *Config) { c.HTMLClasses = nil }),
		"bad MO classes":   bad(func(c *Config) { c.MOClasses[0].Frac = 0.9 }),
		"interest prob":    bad(func(c *Config) { c.OptionalInterestProb = 2 }),
		"request frac":     bad(func(c *Config) { c.OptionalRequestFrac = -1 }),
		"neg capacity":     bad(func(c *Config) { c.SiteCapacity = -1 }),
		"zero page rate":   bad(func(c *Config) { c.PageRatePerSite = 0 }),
		"zero requests":    bad(func(c *Config) { c.RequestsPerSite = 0 }),
		"zero weights":     bad(func(c *Config) { c.Alpha1, c.Alpha2 = 0, 0 }),
		"negative weights": bad(func(c *Config) { c.Alpha1 = -1 }),
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	c := DefaultConfig()
	c.Sites = -1
	if _, err := Generate(c, 1); err == nil {
		t.Error("expected error")
	}
}

// TestWorkloadMatchesTable1 audits a full-size workload against the paper's
// Table 1 (experiment S2 in DESIGN.md). This is the slowest workload test
// (~1 s) but it pins the generator to the paper.
func TestWorkloadMatchesTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full Table-1 workload generation in -short mode")
	}
	w := MustGenerate(DefaultConfig(), 2026)
	s := Summarize(w)

	if s.Sites != 10 {
		t.Errorf("sites = %d, want 10", s.Sites)
	}
	if s.Objects != 15000 {
		t.Errorf("objects = %d, want 15000", s.Objects)
	}
	if s.PagesPerSite.Min() < 400 || s.PagesPerSite.Max() > 800 {
		t.Errorf("pages per site range [%v,%v], want within [400,800]", s.PagesPerSite.Min(), s.PagesPerSite.Max())
	}
	if s.ObjectsPerSite.Min() < 1500 || s.ObjectsPerSite.Max() > 4500 {
		t.Errorf("objects per site range [%v,%v]", s.ObjectsPerSite.Min(), s.ObjectsPerSite.Max())
	}
	if s.CompPerPage.Min() < 5 || s.CompPerPage.Max() > 45 {
		t.Errorf("compulsory per page range [%v,%v]", s.CompPerPage.Min(), s.CompPerPage.Max())
	}
	if s.OptPerPage.N() > 0 && (s.OptPerPage.Min() < 10 || s.OptPerPage.Max() > 85) {
		t.Errorf("optional per page range [%v,%v]", s.OptPerPage.Min(), s.OptPerPage.Max())
	}
	optFrac := float64(s.OptionalPages) / float64(s.Pages)
	if math.Abs(optFrac-0.10) > 0.02 {
		t.Errorf("optional page fraction = %v, want ~0.10", optFrac)
	}
	hotFrac := float64(s.HotPages) / float64(s.Pages)
	if math.Abs(hotFrac-0.10) > 0.01 {
		t.Errorf("hot page fraction = %v, want ~0.10", hotFrac)
	}
	if math.Abs(s.HotTraffic-0.60) > 0.02 {
		t.Errorf("hot traffic share = %v, want ~0.60", s.HotTraffic)
	}
	// §5.2: 100 % storage ≈ 1.8 GB on average.
	avgGB := s.FullStorage.Mean() / float64(units.GB)
	if avgGB < 1.4 || avgGB > 2.3 {
		t.Errorf("average 100%%-storage = %.2f GB, want ≈1.8 GB", avgGB)
	}
	// Aggregate page rate per site equals the configured 5 req/s.
	if math.Abs(s.PageRate.Mean()-5) > 1e-6 {
		t.Errorf("page rate per site = %v, want 5", s.PageRate.Mean())
	}
}

func TestTrafficShareSkew(t *testing.T) {
	w := MustGenerate(SmallConfig(), 7)
	for i := 0; i < w.NumSites(); i++ {
		share := TrafficShare(w, SiteID(i), 0.10)
		if share < 0.5 || share > 0.7 {
			t.Errorf("site %d: top-10%% pages carry %.2f of traffic, want ~0.60", i, share)
		}
	}
}

func TestPageFrequenciesSumToSiteRate(t *testing.T) {
	w := MustGenerate(SmallConfig(), 13)
	for i := range w.Sites {
		sum := 0.0
		for _, pid := range w.Sites[i].Pages {
			sum += float64(w.Pages[pid].Freq)
		}
		if math.Abs(sum-float64(w.Config.PageRatePerSite)) > 1e-9 {
			t.Errorf("site %d frequencies sum to %v, want %v", i, sum, w.Config.PageRatePerSite)
		}
	}
}

func TestOptionalRate(t *testing.T) {
	p := Page{Freq: 2, Optional: []OptionalLink{{Object: 0, Prob: 0.03}, {Object: 1, Prob: 0.03}}}
	got := float64(p.OptionalRate())
	if math.Abs(got-0.12) > 1e-12 {
		t.Errorf("OptionalRate = %v, want 0.12", got)
	}
}

func TestFullStorageIncludesEverything(t *testing.T) {
	w := MustGenerate(SmallConfig(), 21)
	for i := range w.Sites {
		full := w.FullStorageBytes(SiteID(i))
		html := w.HTMLStorageBytes(SiteID(i))
		if full <= html {
			t.Errorf("site %d: full storage %v not above HTML-only %v", i, full, html)
		}
	}
}

func TestFullStorageCountsSharedObjectsOnce(t *testing.T) {
	// Two pages sharing one object: the object's bytes appear once.
	w := &Workload{
		Objects: []Object{{ID: 0, Size: 100}},
		Pages: []Page{
			{ID: 0, Site: 0, HTMLSize: 10, Compulsory: []ObjectID{0}},
			{ID: 1, Site: 0, HTMLSize: 10, Compulsory: []ObjectID{0}},
		},
		Sites: []Site{{ID: 0, Pages: []PageID{0, 1}, Objects: []ObjectID{0}}},
	}
	if got := w.FullStorageBytes(0); got != 120 {
		t.Errorf("FullStorageBytes = %d, want 120", got)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	fresh := func() *Workload { return MustGenerate(SmallConfig(), 3) }

	w := fresh()
	w.Pages[0].Site = SiteID(w.NumSites()) // inconsistent with hosting lists
	if err := w.Validate(); err == nil {
		t.Error("bad page site not caught")
	}

	w = fresh()
	w.Pages[0].Compulsory = append(w.Pages[0].Compulsory, ObjectID(w.NumObjects()))
	if err := w.Validate(); err == nil {
		t.Error("out-of-range compulsory object not caught")
	}

	w = fresh()
	w.Pages[0].Compulsory = append(w.Pages[0].Compulsory, w.Pages[0].Compulsory[0])
	if err := w.Validate(); err == nil {
		t.Error("duplicate compulsory object not caught")
	}

	w = fresh()
	w.Objects[0].Size = 0
	if err := w.Validate(); err == nil {
		t.Error("zero object size not caught")
	}

	w = fresh()
	w.Pages[0].HTMLSize = -1
	if err := w.Validate(); err == nil {
		t.Error("negative HTML size not caught")
	}

	w = fresh()
	// Page hosted twice.
	w.Sites[1].Pages = append(w.Sites[1].Pages, w.Sites[0].Pages[0])
	if err := w.Validate(); err == nil {
		t.Error("page on two sites not caught")
	}

	w = fresh()
	// Make an object both compulsory and optional on a page that has optionals.
	for j := range w.Pages {
		if len(w.Pages[j].Optional) > 0 {
			w.Pages[j].Optional[0].Object = w.Pages[j].Compulsory[0]
			break
		}
	}
	if err := w.Validate(); err == nil {
		t.Error("compulsory∩optional overlap not caught")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	w := MustGenerate(SmallConfig(), 5)
	var buf bytes.Buffer
	if err := w.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := got.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	var buf1 bytes.Buffer
	if err := w.Encode(&buf1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("JSON round trip not identity")
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	if _, err := Decode(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	// Structurally valid JSON but semantically broken workload.
	if _, err := Decode(strings.NewReader(`{"objects":[{"id":5,"size":10}],"pages":[],"sites":[]}`)); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	w := MustGenerate(SmallConfig(), 8)
	path := t.TempDir() + "/w.json"
	if err := w.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPages() != w.NumPages() || got.Seed != w.Seed {
		t.Error("loaded workload differs")
	}
	if _, err := LoadFile(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing file should error")
	}
}

func TestSummaryWrite(t *testing.T) {
	w := MustGenerate(SmallConfig(), 9)
	s := Summarize(w)
	var sb strings.Builder
	if err := s.Write(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Local sites", "Hot pages", "storage per site"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestLinkProbsMatchConfig(t *testing.T) {
	w := MustGenerate(SmallConfig(), 10)
	want := w.Config.LinkProb()
	for j := range w.Pages {
		for _, l := range w.Pages[j].Optional {
			if l.Prob != want {
				t.Fatalf("page %d link prob %v, want %v", j, l.Prob, want)
			}
		}
	}
}

func TestZipfPopularity(t *testing.T) {
	cfg := SmallConfig()
	cfg.Popularity = PopularityZipf
	cfg.ZipfS = 0.8
	w := MustGenerate(cfg, 99)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-site rates still sum to the configured aggregate.
	for i := range w.Sites {
		sum := 0.0
		for _, pid := range w.Sites[i].Pages {
			sum += float64(w.Pages[pid].Freq)
		}
		if math.Abs(sum-float64(cfg.PageRatePerSite)) > 1e-9 {
			t.Errorf("site %d rate %v", i, sum)
		}
	}
	// Heavy tail: the top 10%% of pages carry well above 10%% of traffic
	// but a different share than the two-class model's fixed 60%%.
	share := TrafficShare(w, 0, 0.10)
	if share < 0.2 || share > 0.95 {
		t.Errorf("zipf top-10%% share = %v", share)
	}
	// Hot flags mark the highest-frequency pages.
	for _, pid := range w.Sites[0].Pages {
		if w.Pages[pid].Hot {
			for _, qid := range w.Sites[0].Pages {
				if !w.Pages[qid].Hot && w.Pages[qid].Freq > w.Pages[pid].Freq {
					t.Fatalf("cold page %d hotter than hot page %d", qid, pid)
				}
			}
		}
	}
}

func TestZipfValidation(t *testing.T) {
	cfg := SmallConfig()
	cfg.Popularity = PopularityZipf
	if err := cfg.Validate(); err == nil {
		t.Error("zipf without exponent accepted")
	}
	cfg.Popularity = "pareto"
	cfg.ZipfS = 1
	if err := cfg.Validate(); err == nil {
		t.Error("unknown popularity model accepted")
	}
}

func TestMirrorHotPages(t *testing.T) {
	cfg := SmallConfig()
	cfg.MirrorHotPages = 2
	w := MustGenerate(cfg, 121)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	base := MustGenerate(SmallConfig(), 121)
	if w.NumPages() <= base.NumPages() {
		t.Fatalf("mirroring added no pages: %d vs %d", w.NumPages(), base.NumPages())
	}
	// Total request rate is preserved (copies split the original's rate).
	var total, baseTotal float64
	for j := range w.Pages {
		total += float64(w.Pages[j].Freq)
	}
	for j := range base.Pages {
		baseTotal += float64(base.Pages[j].Freq)
	}
	if math.Abs(total-baseTotal) > 1e-6 {
		t.Errorf("total rate changed: %v vs %v", total, baseTotal)
	}
	// Copies are on different sites than the originals they mirror, and
	// reference the same content; every copy's objects are in its site's
	// pool (Validate checks referenced objects exist globally; pool
	// membership matters for the planner's reverse indexes).
	for j := base.NumPages(); j < w.NumPages(); j++ {
		cp := &w.Pages[j]
		if !cp.Hot {
			t.Fatalf("copy %d not hot", j)
		}
		pool := map[ObjectID]bool{}
		for _, k := range w.Sites[cp.Site].Objects {
			pool[k] = true
		}
		for _, k := range cp.Compulsory {
			if !pool[k] {
				t.Fatalf("copy %d references object %d outside site %d pool", j, k, cp.Site)
			}
		}
	}
}
