package workload

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// Drift returns a copy of the workload whose access pattern has shifted:
// at every site, swapFrac of the hot pages turn cold and an equal number of
// previously cold pages turn hot (the "breaking news" effect Section 4.1
// gives as the reason planned allocations go stale). Frequencies are
// re-dealt within the hot/cold mixture; the content — pages, objects,
// references, sizes — is untouched, so placements planned against the
// original workload remain structurally valid and can be simulated against
// the drifted one.
func Drift(w *Workload, swapFrac float64, seed uint64) (*Workload, error) {
	if swapFrac < 0 || swapFrac > 1 {
		return nil, fmt.Errorf("workload: swapFrac %v outside [0,1]", swapFrac)
	}
	out := &Workload{
		Config:  w.Config,
		Seed:    w.Seed,
		Objects: w.Objects, // shared: immutable content
		Pages:   append([]Page(nil), w.Pages...),
		Sites:   w.Sites, // shared: hosting and pools don't move
	}
	root := rng.New(seed)
	for i := range w.Sites {
		if err := driftSite(out, SiteID(i), swapFrac, root.Split(uint64(i))); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// driftSite rotates one site's hot set and re-deals its frequencies.
func driftSite(w *Workload, i SiteID, swapFrac float64, s *rng.Stream) error {
	pages := w.Sites[i].Pages
	var hot, cold []PageID
	for _, pid := range pages {
		if w.Pages[pid].Hot {
			hot = append(hot, pid)
		} else {
			cold = append(cold, pid)
		}
	}
	nSwap := int(float64(len(hot))*swapFrac + 0.5)
	if nSwap > len(cold) {
		nSwap = len(cold)
	}
	// Pick the leavers and the joiners.
	for _, idx := range s.SampleWithoutReplacement(len(hot), nSwap) {
		w.Pages[hot[idx]].Hot = false
	}
	for _, idx := range s.SampleWithoutReplacement(len(cold), nSwap) {
		w.Pages[cold[idx]].Hot = true
	}

	// Re-deal frequencies within the (possibly unchanged) class sizes.
	var nHot int
	for _, pid := range pages {
		if w.Pages[pid].Hot {
			nHot++
		}
	}
	total := float64(w.Config.PageRatePerSite)
	share := w.Config.HotTrafficShare
	if nHot == 0 || nHot == len(pages) {
		share = 1
		nHot = len(pages)
		for _, pid := range pages {
			w.Pages[pid].Hot = true
		}
	}
	for _, pid := range pages {
		p := &w.Pages[pid]
		if p.Hot {
			p.Freq = units.ReqPerSec(total * share / float64(nHot))
		} else {
			p.Freq = units.ReqPerSec(total * (1 - share) / float64(len(pages)-nHot))
		}
	}
	return nil
}
