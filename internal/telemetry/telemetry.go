// Package telemetry is the repo's stdlib-only instrumentation substrate:
// an atomic counter/gauge registry, fixed-bucket latency histograms with
// percentile extraction (the quantile math lives in internal/stats), a
// nestable phase timer (Span) for tracing planner stages, and text/JSON
// snapshot encoders served live by internal/webserve's /metrics endpoint.
//
// Everything is concurrency-safe and nil-tolerant: every method has a nil
// fast path, so instrumented code paths pay nothing — no allocation, no
// branch beyond the nil check — when telemetry is disabled. Hot loops hold
// a *Counter or *Histogram obtained once (possibly nil) and call Add /
// Observe unconditionally.
package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically-increasing atomic int64. The nil Counter is a
// valid no-op sink.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on nil.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically-set float64 (last-write-wins; Add is CAS-based).
// The nil Gauge is a valid no-op sink.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d to the gauge. No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry names and owns a set of counters, gauges and histograms.
// Registration (Counter/Gauge/Histogram lookups) takes a mutex; the returned
// instruments are lock-free. The nil Registry hands out nil instruments, so
// a single nil check at setup disables a whole instrumented layer.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	infos    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		infos:    make(map[string]string),
	}
}

// SetInfo records a named string fact (build metadata, config identity) that
// snapshots alongside the numeric instruments. Last write wins. No-op on a
// nil registry.
func (r *Registry) SetInfo(name, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.infos[name] = value
}

// Counter returns the named counter, creating it on first use. Returns nil
// on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// upper bounds on first use (later calls ignore bounds). Returns nil on a
// nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// counterNames returns the registered counter names, sorted.
func (r *Registry) counterNames() []string {
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
