package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers one registry from many goroutines — the
// race detector (ci.sh runs this package under -race) is the real assertion;
// the totals check catches lost updates.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const workers = 16
	const perWorker = 1000

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared")
			g := reg.Gauge("level")
			h := reg.Histogram("lat", LatencyBuckets)
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.01)
				// Interleave registration with updates.
				reg.Counter("shared").Add(0)
			}
		}(w)
	}
	wg.Wait()

	if got := reg.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter lost updates: got %d want %d", got, workers*perWorker)
	}
	if got := reg.Gauge("level").Value(); got != workers*perWorker {
		t.Errorf("gauge lost updates: got %g want %d", got, workers*perWorker)
	}
	if got := reg.Histogram("lat", nil).Count(); got != workers*perWorker {
		t.Errorf("histogram lost updates: got %d want %d", got, workers*perWorker)
	}
}

// TestNilRegistryIsNoOp verifies the disabled fast path: a nil registry
// hands out nil instruments whose methods are alloc-free no-ops.
func TestNilRegistryIsNoOp(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x")
	g := reg.Gauge("x")
	h := reg.Histogram("x", LatencyBuckets)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil instruments")
	}

	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(0.5)
	})
	if allocs != 0 {
		t.Errorf("disabled instruments allocate: %v allocs/op", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil instruments returned non-zero values")
	}
	snap := reg.Snapshot()
	if snap == nil || len(snap.Counters) != 0 {
		t.Error("nil registry snapshot not empty")
	}
}

func TestSnapshotEncodings(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b.requests").Add(7)
	reg.Counter("a.requests").Add(3)
	reg.Gauge("load").Set(0.5)
	h := reg.Histogram("rt", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}

	snap := reg.Snapshot()
	if len(snap.Counters) != 2 || snap.Counters[0].Name != "a.requests" {
		t.Fatalf("counters not sorted: %+v", snap.Counters)
	}
	if got := snap.CounterValue("b.requests"); got != 7 {
		t.Errorf("CounterValue = %d, want 7", got)
	}

	var jsonBuf bytes.Buffer
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if decoded.CounterValue("a.requests") != 3 {
		t.Error("JSON round-trip lost counter value")
	}
	if len(decoded.Histograms) != 1 || decoded.Histograms[0].Count != 4 {
		t.Errorf("JSON histogram wrong: %+v", decoded.Histograms)
	}
	// The overflow observation must appear as an overflow bucket.
	hasOverflow := false
	for _, b := range decoded.Histograms[0].Buckets {
		if b.Overflow {
			hasOverflow = true
		}
	}
	if !hasOverflow {
		t.Error("overflow bucket missing from snapshot")
	}

	var textBuf bytes.Buffer
	if err := snap.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	for _, want := range []string{"a.requests", "b.requests", "load", "rt", "p90"} {
		if !strings.Contains(text, want) {
			t.Errorf("text snapshot missing %q:\n%s", want, text)
		}
	}
}
