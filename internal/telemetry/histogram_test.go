package telemetry

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestHistogramMoments(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for _, v := range []float64{0.5, 1.5, 3, 6, 20} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // ignored
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 31.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("sum = %g, want %g", got, want)
	}
	if got, want := h.Mean(), 31.0/5; math.Abs(got-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", got, want)
	}
}

// TestHistogramQuantileTracksSample checks the fixed-bucket quantiles
// against the exact retained-sample percentiles within a bucket width.
func TestHistogramQuantileTracksSample(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	var exact stats.Sample
	// A deterministic skewed sequence across several buckets.
	v := 0.0015
	for i := 0; i < 2000; i++ {
		h.Observe(v)
		exact.Add(v)
		v *= 1.002
		if v > 0.1 {
			v = 0.0015
		}
	}
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(p)
		want := exact.Percentile(p)
		// The estimate must land within the bucket containing the exact
		// value (buckets double, so within a factor of 2).
		if got < want/2 || got > want*2 {
			t.Errorf("p%.0f: bucket quantile %g too far from exact %g", p*100, got, want)
		}
	}
}

func TestBucketQuantileEdges(t *testing.T) {
	bounds := []float64{1, 2, 4}
	counts := []int64{0, 10, 0, 0}
	// All mass in (1,2]: every quantile interpolates inside that bucket.
	if q := stats.BucketQuantile(bounds, counts, 0.5); q < 1 || q > 2 {
		t.Errorf("mid quantile %g outside (1,2]", q)
	}
	if q := stats.BucketQuantile(bounds, counts, 0); q < 1 || q > 2 {
		t.Errorf("p0 %g outside bucket", q)
	}
	// Overflow-only mass clamps to the last bound.
	if q := stats.BucketQuantile(bounds, []int64{0, 0, 0, 5}, 0.9); q != 4 {
		t.Errorf("overflow quantile = %g, want 4", q)
	}
	// Empty histogram.
	if q := stats.BucketQuantile(bounds, []int64{0, 0, 0, 0}, 0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	h := NewHistogram(LatencyBuckets)
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(0.02)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates: %v allocs/op", allocs)
	}
}
