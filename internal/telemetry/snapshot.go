package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Snapshot is a point-in-time copy of a registry's instruments, ordered by
// name so encodings are deterministic and diffable.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
	Infos      []InfoPoint      `json:"infos,omitempty"`
}

// InfoPoint is one string fact (build metadata and the like).
type InfoPoint struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// CounterPoint is one counter's snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugePoint is one gauge's snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram's snapshot: moments, the standard
// percentiles, and the populated buckets.
type HistogramPoint struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketPoint `json:"buckets,omitempty"`
}

// BucketPoint is one populated histogram bucket: its upper bound (+Inf is
// encoded as 0 count omission — the overflow bucket appears with Le == 0 and
// Overflow == true) and count.
type BucketPoint struct {
	Le       float64 `json:"le"`
	Count    int64   `json:"count"`
	Overflow bool    `json:"overflow,omitempty"`
}

// Snapshot copies the registry's current state. An empty (never nil)
// snapshot is returned for a nil registry.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{Counters: []CounterPoint{}}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.counterNames() {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Value: r.counters[name].Value()})
	}
	gnames := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)
	for _, name := range gnames {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Value: r.gauges[name].Value()})
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := r.hists[name]
		hp := HistogramPoint{
			Name:  name,
			Count: h.Count(),
			Sum:   h.Sum(),
			Mean:  h.Mean(),
			P50:   h.Quantile(0.50),
			P90:   h.Quantile(0.90),
			P99:   h.Quantile(0.99),
		}
		counts := h.bucketCounts()
		for i, c := range counts {
			if c == 0 {
				continue
			}
			bp := BucketPoint{Count: c}
			if i < len(h.bounds) {
				bp.Le = h.bounds[i]
			} else {
				bp.Overflow = true
			}
			hp.Buckets = append(hp.Buckets, bp)
		}
		s.Histograms = append(s.Histograms, hp)
	}
	inames := make([]string, 0, len(r.infos))
	for n := range r.infos {
		inames = append(inames, n)
	}
	sort.Strings(inames)
	for _, name := range inames {
		s.Infos = append(s.Infos, InfoPoint{Name: name, Value: r.infos[name]})
	}
	return s
}

// WriteJSON encodes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText renders the snapshot as aligned name/value lines.
func (s *Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if _, err := fmt.Fprintf(w, "%-40s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if _, err := fmt.Fprintf(w, "%-40s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if _, err := fmt.Fprintf(w, "%-40s n=%d mean=%.4g p50=%.4g p90=%.4g p99=%.4g\n",
			h.Name, h.Count, h.Mean, h.P50, h.P90, h.P99); err != nil {
			return err
		}
	}
	for _, in := range s.Infos {
		if _, err := fmt.Fprintf(w, "%-40s %s\n", in.Name, in.Value); err != nil {
			return err
		}
	}
	return nil
}

// CounterValue returns a snapshot counter by name (0 when absent).
func (s *Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Handler serves the registry — the /metrics endpoint. JSON by default;
// ?format=text (or an Accept header preferring text/plain) selects the
// aligned-text rendering. A nil registry serves empty snapshots.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		snap := r.Snapshot()
		wantText := req.URL.Query().Get("format") == "text"
		if !wantText && req.URL.Query().Get("format") == "" {
			accept := req.Header.Get("Accept")
			wantText = strings.HasPrefix(accept, "text/plain")
		}
		var err error
		if wantText {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			err = snap.WriteText(w)
		} else {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			err = snap.WriteJSON(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
