package telemetry

import (
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/stats"
)

// LatencyBuckets is the default bucket layout for response-time histograms:
// log-spaced upper bounds from 1 ms to ~65 s (doubling), in seconds. The
// paper's simulated page times land mid-range; loopback HTTP times land in
// the low buckets.
var LatencyBuckets = func() []float64 {
	b := make([]float64, 17)
	v := 0.001
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket concurrency-safe histogram: counts per bucket,
// total count and sum, all atomic, zero allocation per Observe. Bucket i
// holds observations <= bounds[i]; one overflow bucket catches the rest.
// The nil Histogram is a valid no-op sink.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram from sorted bucket upper bounds (a copy is
// taken). Empty bounds yield a single overflow bucket (count/sum only).
func NewHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one observation. No-op on nil; NaN is ignored.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	idx := sort.SearchFloat64s(h.bounds, v)
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the mean observation (0 when empty or nil).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// Quantile returns the p-quantile (p in [0,1]) estimated by linear
// interpolation inside the bucket holding the target rank — the fixed-bucket
// analogue of stats.Sample.Percentile, computed by stats.BucketQuantile.
// Returns 0 when empty or nil.
func (h *Histogram) Quantile(p float64) float64 {
	if h == nil {
		return 0
	}
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return stats.BucketQuantile(h.bounds, counts, p)
}

// bucketCounts snapshots the per-bucket counts (for encoders).
func (h *Histogram) bucketCounts() []int64 {
	counts := make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}
