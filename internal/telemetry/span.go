package telemetry

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Span is a nestable phase timer: it records a wall-clock interval, an
// optional "busy" accumulator for work spread across concurrent goroutines
// (the per-site planning phases overlap in time, so their busy time can
// exceed the wall time), named counters, and child spans. All mutation is
// concurrency-safe; the nil Span is a valid no-op sink, so traced code
// needs no separate disabled path.
type Span struct {
	name  string
	start time.Time
	wall  atomic.Int64 // ns, set by End (0 while running)
	busy  atomic.Int64 // ns, accumulated by AddBusy

	mu           sync.Mutex
	children     []*Span
	counterNames []string
	counters     map[string]*Counter
}

// NewSpan starts a new root span.
func NewSpan(name string) *Span {
	return &Span{name: name, start: time.Now()}
}

// Child starts a new child span under s. Returns nil on a nil span, so a
// disabled trace propagates for free.
//
//repllint:pure — observability only: the wall-clock read feeds span timing, never model state
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := NewSpan(name)
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End closes the span, fixing its wall duration. Idempotent; no-op on nil.
//
//repllint:pure — observability only: the wall-clock read feeds span timing, never model state
func (s *Span) End() {
	if s == nil {
		return
	}
	s.wall.CompareAndSwap(0, int64(time.Since(s.start)))
}

// AddBusy accumulates concurrent busy time into the span. No-op on nil.
func (s *Span) AddBusy(d time.Duration) {
	if s == nil {
		return
	}
	s.busy.Add(int64(d))
}

// Count adds n to the span's named counter, creating it on first use.
// No-op on nil.
func (s *Span) Count(name string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.counters == nil {
		s.counters = make(map[string]*Counter)
	}
	c, ok := s.counters[name]
	if !ok {
		c = &Counter{}
		s.counters[name] = c
		s.counterNames = append(s.counterNames, name)
	}
	s.mu.Unlock()
	c.Add(n)
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the span's wall duration: the closed interval, or the time
// since start if still running. 0 on nil.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	if w := s.wall.Load(); w != 0 {
		return time.Duration(w)
	}
	return time.Since(s.start)
}

// Busy returns the accumulated busy time (0 on nil).
func (s *Span) Busy() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.busy.Load())
}

// CounterValue returns the named counter's value (0 when absent or nil).
func (s *Span) CounterValue(name string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	c := s.counters[name]
	s.mu.Unlock()
	return c.Value()
}

// SpanCounter is one named span counter's value, as returned by Counters.
type SpanCounter struct {
	Name  string
	Value int64
}

// Counters returns the span's counters in creation order (nil on nil).
func (s *Span) Counters() []SpanCounter {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SpanCounter, 0, len(s.counterNames))
	for _, name := range s.counterNames {
		out = append(out, SpanCounter{Name: name, Value: s.counters[name].Value()})
	}
	return out
}

// Children returns the child spans in creation order (nil on nil).
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	s.mu.Unlock()
	return out
}

// Find returns the first child with the given name, or nil.
func (s *Span) Find(name string) *Span {
	for _, c := range s.Children() {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Events returns the number of trace events in the tree: one per span plus
// one per counter. Two traces of the same deterministic computation must
// report identical event counts regardless of worker scheduling.
func (s *Span) Events() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	n := 1 + len(s.counterNames)
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	for _, c := range kids {
		n += c.Events()
	}
	return n
}

// Write renders the span tree, one line per span with durations and
// counters:
//
//	plan                wall=1.8ms
//	  partition         wall=1.2ms busy=4.3ms  [pages=4123]
func (s *Span) Write(w io.Writer) error {
	return s.write(w, 0)
}

func (s *Span) write(w io.Writer, depth int) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	line := fmt.Sprintf("%*s%-*s wall=%s", depth*2, "", 22-depth*2, s.name, fmtDuration(s.Wall()))
	if b := s.busy.Load(); b != 0 {
		line += fmt.Sprintf(" busy=%s", fmtDuration(time.Duration(b)))
	}
	if len(s.counterNames) > 0 {
		line += "  ["
		for i, name := range s.counterNames {
			if i > 0 {
				line += " "
			}
			line += fmt.Sprintf("%s=%d", name, s.counters[name].Value())
		}
		line += "]"
	}
	kids := make([]*Span, len(s.children))
	copy(kids, s.children)
	s.mu.Unlock()
	if _, err := fmt.Fprintln(w, line); err != nil {
		return err
	}
	for _, c := range kids {
		if err := c.write(w, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// fmtDuration rounds a duration to a readable precision.
func fmtDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}
