package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTree(t *testing.T) {
	root := NewSpan("plan")
	part := root.Child("partition")
	part.Count("pages", 41)
	part.AddBusy(3 * time.Millisecond)
	part.End()
	store := root.Child("storage-restore")
	store.Count("deallocs", 7)
	store.End()
	root.End()

	if got := root.Find("partition"); got != part {
		t.Fatal("Find did not return the child")
	}
	if got := part.CounterValue("pages"); got != 41 {
		t.Errorf("pages counter = %d, want 41", got)
	}
	if part.Busy() != 3*time.Millisecond {
		t.Errorf("busy = %v", part.Busy())
	}
	if root.Wall() <= 0 {
		t.Error("root wall not positive after End")
	}
	// 3 spans + 2 counters.
	if got := root.Events(); got != 5 {
		t.Errorf("Events = %d, want 5", got)
	}

	var buf bytes.Buffer
	if err := root.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"plan", "partition", "storage-restore", "pages=41", "deallocs=7", "wall=", "busy="} {
		if !strings.Contains(out, want) {
			t.Errorf("span tree missing %q:\n%s", want, out)
		}
	}
}

func TestSpanNilIsNoOp(t *testing.T) {
	var s *Span
	c := s.Child("x")
	if c != nil {
		t.Fatal("nil span produced a child")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Count("n", 1)
		s.AddBusy(time.Millisecond)
		s.End()
		c.Count("n", 1)
	})
	if allocs != 0 {
		t.Errorf("nil span allocates: %v allocs/op", allocs)
	}
	if s.Events() != 0 || s.Wall() != 0 || s.Name() != "" || s.CounterValue("n") != 0 {
		t.Error("nil span returned non-zero state")
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil || buf.Len() != 0 {
		t.Error("nil span wrote output")
	}
}

// TestSpanConcurrent exercises concurrent child creation and counting — run
// under -race by ci.sh.
func TestSpanConcurrent(t *testing.T) {
	root := NewSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				root.Count("ops", 1)
				root.AddBusy(time.Microsecond)
			}
			c := root.Child("worker")
			c.Count("done", 1)
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	if got := root.CounterValue("ops"); got != 8*200 {
		t.Errorf("ops = %d, want %d", got, 8*200)
	}
	if got := len(root.Children()); got != 8 {
		t.Errorf("children = %d, want 8", got)
	}
	// 1 root + 1 root counter + 8 children with 1 counter each.
	if got := root.Events(); got != 1+1+8*2 {
		t.Errorf("Events = %d, want %d", got, 1+1+8*2)
	}
}
