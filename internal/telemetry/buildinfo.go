package telemetry

import (
	"runtime"
	"runtime/debug"
)

// RegisterBuildInfo publishes the process's build identity into the
// registry: a build.info gauge pinned at 1 (the Prometheus build_info
// idiom — its presence marks an instrumented process) plus string infos
// for the Go toolchain version and, when the binary embeds build metadata,
// the module path and version. No-op on a nil registry.
func RegisterBuildInfo(r *Registry) {
	if r == nil {
		return
	}
	r.Gauge("build.info").Set(1)
	r.SetInfo("build.go_version", runtime.Version())
	if bi, ok := debug.ReadBuildInfo(); ok {
		r.SetInfo("build.module", bi.Main.Path)
		if bi.Main.Version != "" {
			r.SetInfo("build.module_version", bi.Main.Version)
		}
	}
}
