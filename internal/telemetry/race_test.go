package telemetry

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
)

// TestConcurrentObserveSnapshot hammers one registry's counters, gauges and
// histograms from many goroutines while snapshotters run alongside, and
// checks the ordering invariant Observe guarantees: the bucket increment
// lands before the total count, so a reader that loads Count first and the
// buckets second can never see the buckets lag the count. Run under -race
// (scripts/ci.sh does) this also proves the whole hot path and the
// registry's lazy lookups are data-race free.
func TestConcurrentObserveSnapshot(t *testing.T) {
	const (
		writers = 8
		iters   = 2000
	)
	r := NewRegistry()
	h := r.Histogram("race.page_rt_seconds", LatencyBuckets)

	var stop atomic.Bool
	var wg sync.WaitGroup

	// Snapshot readers: the invariant check plus the text/JSON encoders.
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				// Count first, buckets second: every observation counted in
				// n had already incremented its bucket.
				n := h.Count()
				var inBuckets int64
				for _, c := range h.bucketCounts() {
					inBuckets += c
				}
				if inBuckets < n {
					t.Errorf("bucket sum %d < count %d: Observe ordering violated", inBuckets, n)
					return
				}
				snap := r.Snapshot()
				var buf bytes.Buffer
				if err := snap.WriteText(&buf); err != nil {
					t.Errorf("WriteText: %v", err)
					return
				}
				buf.Reset()
				if err := snap.WriteJSON(&buf); err != nil {
					t.Errorf("WriteJSON: %v", err)
					return
				}
			}
		}()
	}

	var writerWG sync.WaitGroup
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < iters; i++ {
				// Lazy lookups race the registry maps on purpose.
				r.Counter("race.requests_total").Inc()
				r.Gauge("race.inflight").Set(float64(i))
				h.Observe(float64(w*iters+i) * 0.0001)
			}
		}(w)
	}
	writerWG.Wait()
	stop.Store(true)
	wg.Wait()

	if got := h.Count(); got != writers*iters {
		t.Fatalf("histogram count = %d, want %d", got, writers*iters)
	}
	var inBuckets int64
	for _, c := range h.bucketCounts() {
		inBuckets += c
	}
	if inBuckets != writers*iters {
		t.Fatalf("final bucket sum = %d, want %d", inBuckets, writers*iters)
	}
	if got := r.Counter("race.requests_total").Value(); got != writers*iters {
		t.Fatalf("counter = %d, want %d", got, writers*iters)
	}
}
