package policies

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/model"
	"repro/internal/workload"
)

// Threshold is a dynamic replication baseline in the style of the
// threshold-driven create/delete schemes the paper's Section 6 surveys
// (Rabinovich et al.'s replica management): each site counts accesses per
// object; an object is replicated locally once its access count since the
// last decay epoch exceeds ReplicateAt, and replicas are dropped when a
// site needs space for hotter objects (least-recently-counted first). The
// paper's critique — "the use of threshold values makes the performance of
// the scheme dependent upon their chosen values" — is exactly what the
// ThresholdStudy experiment sweeps.
//
// State is partitioned per site (httpsim's concurrency contract).
type Threshold struct {
	w           *workload.Workload
	replicateAt int64
	epoch       int64 // accesses between count halvings (decay)

	counts []map[workload.ObjectID]int64
	since  []int64 // accesses since last decay, per site
	caches []*lru.Cache
}

// NewThreshold builds the baseline. budgets provides each site's storage
// capacity (shared with the other policies so comparisons are fair);
// replicateAt is the access-count threshold for creating a replica;
// decayEvery halves all counters after that many accesses at a site
// (keeping the counters adaptive, 0 disables decay).
func NewThreshold(w *workload.Workload, budgets model.Budgets, replicateAt int64, decayEvery int64) (*Threshold, error) {
	if len(budgets.Storage) != w.NumSites() {
		return nil, fmt.Errorf("policies: budgets for %d sites, workload has %d", len(budgets.Storage), w.NumSites())
	}
	if replicateAt < 1 {
		return nil, fmt.Errorf("policies: replicate threshold must be ≥1, got %d", replicateAt)
	}
	t := &Threshold{
		w:           w,
		replicateAt: replicateAt,
		epoch:       decayEvery,
		counts:      make([]map[workload.ObjectID]int64, w.NumSites()),
		since:       make([]int64, w.NumSites()),
		caches:      make([]*lru.Cache, w.NumSites()),
	}
	for i := range t.counts {
		t.counts[i] = make(map[workload.ObjectID]int64)
		moBudget := budgets.Storage[i] - w.HTMLStorageBytes(workload.SiteID(i))
		if moBudget < 0 {
			moBudget = 0
		}
		c, err := lru.New(int64(moBudget))
		if err != nil {
			return nil, err
		}
		t.caches[i] = c
	}
	return t, nil
}

// Name implements httpsim.Decider.
func (t *Threshold) Name() string {
	return fmt.Sprintf("Threshold(%d)", t.replicateAt)
}

// BeginPage implements httpsim.Decider.
func (t *Threshold) BeginPage(workload.PageID) {}

// serve counts the access and serves locally iff a replica exists; crossing
// the threshold creates one (evicting colder replicas by recency).
func (t *Threshold) serve(i workload.SiteID, k workload.ObjectID) bool {
	t.decay(i)
	t.counts[i][k]++
	t.since[i]++
	c := t.caches[i]
	if c.Access(int(k)) {
		return true
	}
	if t.counts[i][k] >= t.replicateAt {
		c.Put(int(k), int64(t.w.ObjectSize(k)))
		// The replica is created by this access; the object itself was
		// still fetched remotely this time (replication happens in the
		// background in such schemes).
	}
	return false
}

// decay halves every counter once the site's access epoch elapses.
func (t *Threshold) decay(i workload.SiteID) {
	if t.epoch <= 0 || t.since[i] < t.epoch {
		return
	}
	t.since[i] = 0
	for k, v := range t.counts[i] {
		if v <= 1 {
			delete(t.counts[i], k)
		} else {
			t.counts[i][k] = v / 2
		}
	}
}

// CompLocal implements httpsim.Decider.
func (t *Threshold) CompLocal(j workload.PageID, idx int) bool {
	pg := &t.w.Pages[j]
	return t.serve(pg.Site, pg.Compulsory[idx])
}

// OptLocal implements httpsim.Decider.
func (t *Threshold) OptLocal(j workload.PageID, idx int) bool {
	pg := &t.w.Pages[j]
	return t.serve(pg.Site, pg.Optional[idx].Object)
}

// Replicas returns how many objects site i currently replicates.
func (t *Threshold) Replicas(i workload.SiteID) int { return t.caches[i].Len() }
