package policies

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.SmallConfig(), 61)
}

func TestStaticDelegatesToPlacement(t *testing.T) {
	w := testWorkload(t)
	p := model.AllLocal(w)
	s := NewStatic("ours", p)
	if s.Name() != "ours" {
		t.Errorf("name = %q", s.Name())
	}
	s.BeginPage(0) // must be a no-op
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx := range w.Pages[j].Compulsory {
			if !s.CompLocal(pid, idx) {
				t.Fatalf("all-local static returned remote for page %d", j)
			}
		}
		for idx := range w.Pages[j].Optional {
			if !s.OptLocal(pid, idx) {
				t.Fatalf("all-local static returned remote optional for page %d", j)
			}
		}
	}
	if s.Placement() != p {
		t.Error("Placement() identity lost")
	}
}

func TestRemoteLocalNames(t *testing.T) {
	w := testWorkload(t)
	if NewRemote(w).Name() != "Remote" || NewLocal(w).Name() != "Local" {
		t.Error("baseline names wrong")
	}
	r := NewRemote(w)
	for idx := range w.Pages[0].Compulsory {
		if r.CompLocal(0, idx) {
			t.Fatal("remote policy served locally")
		}
	}
}

func TestSizeThreshold(t *testing.T) {
	w := testWorkload(t)
	thr := int64(500 * units.KB)
	s := SizeThreshold(w, thr)
	if !strings.Contains(s.Name(), "SizeThreshold") {
		t.Errorf("name = %q", s.Name())
	}
	for j := range w.Pages {
		pid := workload.PageID(j)
		for idx, k := range w.Pages[j].Compulsory {
			want := int64(w.ObjectSize(k)) >= thr
			if s.CompLocal(pid, idx) != want {
				t.Fatalf("page %d object %d: threshold decision wrong", j, k)
			}
		}
	}
	if err := s.Placement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestHalfSplit(t *testing.T) {
	w := testWorkload(t)
	s := HalfSplit(w)
	for j := range w.Pages {
		pid := workload.PageID(j)
		comp := w.Pages[j].Compulsory
		localCount := 0
		var minLocal units.ByteSize = 1 << 60
		var maxRemote units.ByteSize
		for idx, k := range comp {
			if s.CompLocal(pid, idx) {
				localCount++
				if w.ObjectSize(k) < minLocal {
					minLocal = w.ObjectSize(k)
				}
			} else if w.ObjectSize(k) > maxRemote {
				maxRemote = w.ObjectSize(k)
			}
		}
		if localCount != (len(comp)+1)/2 {
			t.Fatalf("page %d: %d/%d local, want larger half", j, localCount, len(comp))
		}
		if localCount > 0 && localCount < len(comp) && minLocal < maxRemote {
			t.Fatalf("page %d: local set not the largest objects (%v < %v)", j, minLocal, maxRemote)
		}
	}
	if err := s.Placement().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLRUServeAndInsert(t *testing.T) {
	w := testWorkload(t)
	l, err := NewLRU(w, model.FullBudgets(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "LRU" {
		t.Errorf("name = %q", l.Name())
	}
	// First access to any object is a miss (served remotely, inserted).
	j := workload.PageID(0)
	if l.CompLocal(j, 0) {
		t.Error("cold cache served locally")
	}
	// Second access is a hit (full budgets → admission 1).
	if !l.CompLocal(j, 0) {
		t.Error("warm object served remotely")
	}
	hits, misses, _, bytes := l.CacheStats(w.Pages[0].Site)
	if hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d", hits, misses)
	}
	if bytes <= 0 {
		t.Error("cache holds no bytes after insert")
	}
}

func TestLRUAdmissionUnconstrained(t *testing.T) {
	w := testWorkload(t)
	l, err := NewLRU(w, model.FullBudgets(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumSites(); i++ {
		if got := l.Admission(workload.SiteID(i)); got != 1 {
			t.Errorf("site %d admission = %v, want 1 under 150 req/s", i, got)
		}
	}
}

func TestLRUAdmissionThrottles(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w).Scale(w, 1, 0.05) // ~7.5 req/s, below demand
	l, err := NewLRU(w, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.NumSites(); i++ {
		a := l.Admission(workload.SiteID(i))
		if a <= 0 || a >= 1 {
			t.Errorf("site %d admission = %v, want in (0,1)", i, a)
		}
	}
	// Zero capacity → admission 0: every hit still goes to the repository.
	zb := model.FullBudgets(w).Scale(w, 1, 0)
	lz, err := NewLRU(w, zb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a := lz.Admission(0); a != 0 {
		t.Errorf("zero-capacity admission = %v", a)
	}
	lz.CompLocal(0, 0) // miss, inserts
	if lz.CompLocal(0, 0) {
		t.Error("zero-capacity site served a hit locally")
	}
}

func TestLRUZeroStorage(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w).Scale(w, 0, 1) // HTML only: zero MO cache
	l, err := NewLRU(w, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		if l.CompLocal(0, 0) {
			t.Fatal("zero-storage cache produced a hit")
		}
	}
}

func TestLRUEvictionUnderPressure(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w).Scale(w, 0.02, 1) // tiny cache
	l, err := NewLRU(w, b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Touch every object of site 0's pages; evictions must occur.
	for _, pid := range w.Sites[0].Pages {
		for idx := range w.Pages[pid].Compulsory {
			l.CompLocal(pid, idx)
		}
	}
	_, _, ev, bytes := l.CacheStats(0)
	if ev == 0 {
		t.Error("no evictions in a tiny cache")
	}
	moBudget := b.Storage[0] - w.HTMLStorageBytes(0)
	if bytes > moBudget {
		t.Errorf("cache bytes %v over budget %v", bytes, moBudget)
	}
}

func TestNewLRUValidation(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w)
	b.Storage = b.Storage[:1]
	if _, err := NewLRU(w, b, 1); err == nil {
		t.Error("mis-sized budgets accepted")
	}
}
