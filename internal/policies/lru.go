package policies

import (
	"fmt"

	"repro/internal/lru"
	"repro/internal/model"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// LRU is the paper's ideal LRU caching/redirection baseline: each site
// holds a byte-capacity LRU cache of multimedia objects; a cached object is
// served locally with zero redirection overhead, a miss is served by the
// repository and inserted into the cache (evicting by recency). The policy
// is subject only to the Eq. 8 processing constraint (§5.2): when serving
// every cached object locally would exceed the site's capacity, cache hits
// are served locally only with the admission probability that keeps the
// expected load at the capacity.
//
// State is partitioned per site, matching httpsim's concurrency contract
// (distinct sites may be simulated concurrently, one page view at a time
// within a site).
type LRU struct {
	w      *workload.Workload
	caches []*lru.Cache
	admit  []float64     // per-site local-serve probability for cache hits
	gates  []*rng.Stream // per-site admission randomness
}

// NewLRU builds the baseline for the given storage budgets (total bytes per
// site including HTML — the same Budgets the planner receives, so both
// policies compete for identical storage) and site capacities.
func NewLRU(w *workload.Workload, budgets model.Budgets, seed uint64) (*LRU, error) {
	if len(budgets.Storage) != w.NumSites() {
		return nil, fmt.Errorf("policies: budgets for %d sites, workload has %d", len(budgets.Storage), w.NumSites())
	}
	root := rng.New(seed)
	l := &LRU{
		w:      w,
		caches: make([]*lru.Cache, w.NumSites()),
		admit:  make([]float64, w.NumSites()),
		gates:  make([]*rng.Stream, w.NumSites()),
	}
	for i := range l.caches {
		id := workload.SiteID(i)
		moBudget := budgets.Storage[i] - w.HTMLStorageBytes(id)
		if moBudget < 0 {
			moBudget = 0
		}
		c, err := lru.New(int64(moBudget))
		if err != nil {
			return nil, err
		}
		l.caches[i] = c

		// Eq. 8 admission: scale local serving so the expected load fits.
		total, htmlOnly := allLocalLoad(w, id)
		capacity := float64(budgets.SiteCapacity[i])
		switch {
		case total <= capacity || total <= htmlOnly:
			l.admit[i] = 1
		case capacity <= htmlOnly:
			l.admit[i] = 0
		default:
			l.admit[i] = (capacity - htmlOnly) / (total - htmlOnly)
		}
		l.gates[i] = root.Split(uint64(i))
	}
	return l, nil
}

// Name implements httpsim.Decider.
func (l *LRU) Name() string { return "LRU" }

// BeginPage implements httpsim.Decider (per-object state only).
func (l *LRU) BeginPage(workload.PageID) {}

// serve looks object k up in site i's cache: a hit (subject to admission)
// serves locally and refreshes recency; a miss serves remotely and inserts.
func (l *LRU) serve(i workload.SiteID, k workload.ObjectID) bool {
	c := l.caches[i]
	if c.Access(int(k)) {
		if l.admit[i] >= 1 || l.gates[i].Bool(l.admit[i]) {
			return true
		}
		return false // cached, but capacity-throttled to the repository
	}
	c.Put(int(k), int64(l.w.ObjectSize(k)))
	return false
}

// CompLocal implements httpsim.Decider.
func (l *LRU) CompLocal(j workload.PageID, idx int) bool {
	pg := &l.w.Pages[j]
	return l.serve(pg.Site, pg.Compulsory[idx])
}

// OptLocal implements httpsim.Decider.
func (l *LRU) OptLocal(j workload.PageID, idx int) bool {
	pg := &l.w.Pages[j]
	return l.serve(pg.Site, pg.Optional[idx].Object)
}

// CacheStats reports per-site hit/miss/eviction counters (diagnostics).
func (l *LRU) CacheStats(i workload.SiteID) (hits, misses, evictions int64, bytes units.ByteSize) {
	c := l.caches[i]
	return c.Hits(), c.Misses(), c.Evictions(), units.ByteSize(c.Bytes())
}

// Admission returns the Eq. 8 admission probability of site i.
func (l *LRU) Admission(i workload.SiteID) float64 { return l.admit[i] }
