// Package policies provides the placement policies compared in the paper's
// evaluation (Section 5.2): the proposed partition-based placement (as a
// static Decider over a planned model.Placement), the Remote and Local
// single-chain baselines, the ideal LRU caching/redirection scheme with
// zero redirection overhead, and two naive-split ablations used to probe
// PARTITION's design choices.
package policies

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/workload"
)

// Static serves every request according to a fixed placement — the shape of
// the proposed policy and of the Remote/Local baselines. It is stateless
// per request and safe for concurrent use.
type Static struct {
	name string
	p    *model.Placement
}

// NewStatic wraps a placement as a Decider.
func NewStatic(name string, p *model.Placement) *Static {
	return &Static{name: name, p: p}
}

// NewRemote returns the paper's "download all from the repository" policy.
// (HTML always comes from the local server; only MOs are in question.)
func NewRemote(w *workload.Workload) *Static {
	return &Static{name: "Remote", p: model.AllRemote(w)}
}

// NewLocal returns the paper's "download all from the local servers"
// policy. Neither baseline is subject to the Eq. 8-10 constraints (§5.2).
func NewLocal(w *workload.Workload) *Static {
	return &Static{name: "Local", p: model.AllLocal(w)}
}

// Name implements httpsim.Decider.
func (s *Static) Name() string { return s.name }

// BeginPage implements httpsim.Decider (no per-view state).
func (s *Static) BeginPage(workload.PageID) {}

// CompLocal implements httpsim.Decider.
func (s *Static) CompLocal(j workload.PageID, idx int) bool { return s.p.CompLocal(j, idx) }

// OptLocal implements httpsim.Decider.
func (s *Static) OptLocal(j workload.PageID, idx int) bool { return s.p.OptLocal(j, idx) }

// Placement exposes the wrapped placement (for reporting).
func (s *Static) Placement() *model.Placement { return s.p }

// allLocalLoad returns the Eq. 8 load site i would carry if every MO
// download (compulsory and expected optional) were served locally, plus the
// HTML floor — the demand an unconstrained cache would create.
func allLocalLoad(w *workload.Workload, i workload.SiteID) (total, htmlOnly float64) {
	for _, pid := range w.Sites[i].Pages {
		pg := &w.Pages[pid]
		f := float64(pg.Freq)
		htmlOnly += f
		perView := 1.0 + float64(len(pg.Compulsory))
		for _, l := range pg.Optional {
			perView += l.Prob
		}
		total += f * perView
	}
	return total, htmlOnly
}

// SizeThreshold returns a static ablation policy: compulsory objects of at
// least the threshold are served locally (big objects gain the most from
// the faster local link), smaller ones remotely; optional links follow the
// same rule. It ignores all constraints.
func SizeThreshold(w *workload.Workload, threshold int64) *Static {
	p := model.NewPlacement(w)
	for j := range w.Pages {
		pg := &w.Pages[j]
		for idx, k := range pg.Compulsory {
			if int64(w.ObjectSize(k)) >= threshold {
				p.Store(pg.Site, k)
				p.SetCompLocal(workload.PageID(j), idx, true)
			}
		}
		for idx, l := range pg.Optional {
			if int64(w.ObjectSize(l.Object)) >= threshold {
				p.Store(pg.Site, l.Object)
				p.SetOptLocal(workload.PageID(j), idx, true)
			}
		}
	}
	return &Static{name: fmt.Sprintf("SizeThreshold(%d)", threshold), p: p}
}

// HalfSplit returns a static ablation policy that serves every page's
// larger-half compulsory objects locally and the rest remotely — the
// "split by count, not by time balance" strawman.
func HalfSplit(w *workload.Workload) *Static {
	p := model.NewPlacement(w)
	for j := range w.Pages {
		pg := &w.Pages[j]
		// Indices sorted by decreasing size; first half local.
		order := make([]int, len(pg.Compulsory))
		for i := range order {
			order[i] = i
		}
		for a := 0; a < len(order); a++ {
			for b := a + 1; b < len(order); b++ {
				if w.ObjectSize(pg.Compulsory[order[b]]) > w.ObjectSize(pg.Compulsory[order[a]]) {
					order[a], order[b] = order[b], order[a]
				}
			}
		}
		for rank, idx := range order {
			if rank < (len(order)+1)/2 {
				p.Store(pg.Site, pg.Compulsory[idx])
				p.SetCompLocal(workload.PageID(j), idx, true)
			}
		}
		for idx, l := range pg.Optional {
			p.Store(pg.Site, l.Object)
			p.SetOptLocal(workload.PageID(j), idx, true)
		}
	}
	return &Static{name: "HalfSplit", p: p}
}
