package policies

import (
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func TestThresholdValidation(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w)
	if _, err := NewThreshold(w, b, 0, 0); err == nil {
		t.Error("zero threshold accepted")
	}
	short := b
	short.Storage = short.Storage[:1]
	if _, err := NewThreshold(w, short, 2, 0); err == nil {
		t.Error("mis-sized budgets accepted")
	}
}

func TestThresholdReplicatesAfterN(t *testing.T) {
	w := testWorkload(t)
	pol, err := NewThreshold(w, model.FullBudgets(w), 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(pol.Name(), "Threshold(3)") {
		t.Errorf("name = %q", pol.Name())
	}
	j := workload.PageID(0)
	// Accesses 1 and 2: remote, no replica. Access 3: crosses the
	// threshold — still served remotely (replication is asynchronous) but
	// the replica now exists, so access 4 is local.
	for n := 1; n <= 3; n++ {
		if pol.CompLocal(j, 0) {
			t.Fatalf("access %d served locally before replication", n)
		}
	}
	if !pol.CompLocal(j, 0) {
		t.Fatal("access after replication still remote")
	}
	if pol.Replicas(w.Pages[0].Site) != 1 {
		t.Errorf("replicas = %d", pol.Replicas(w.Pages[0].Site))
	}
}

func TestThresholdOneIsCacheOnFirstTouch(t *testing.T) {
	w := testWorkload(t)
	pol, err := NewThreshold(w, model.FullBudgets(w), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	j := workload.PageID(0)
	if pol.CompLocal(j, 0) {
		t.Fatal("first touch served locally")
	}
	if !pol.CompLocal(j, 0) {
		t.Fatal("second touch not local with threshold 1")
	}
}

func TestThresholdRespectsStorage(t *testing.T) {
	w := testWorkload(t)
	b := model.FullBudgets(w).Scale(w, 0.02, 1) // tiny replica budget
	pol, err := NewThreshold(w, b, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Touch many objects repeatedly: replicas must stay within budget.
	for pass := 0; pass < 2; pass++ {
		for _, pid := range w.Sites[0].Pages {
			for idx := range w.Pages[pid].Compulsory {
				pol.CompLocal(pid, idx)
			}
		}
	}
	// The cache enforces its byte budget internally; replica count must be
	// far below the total objects touched.
	touched := map[workload.ObjectID]bool{}
	for _, pid := range w.Sites[0].Pages {
		for _, k := range w.Pages[pid].Compulsory {
			touched[k] = true
		}
	}
	if pol.Replicas(0) >= len(touched) {
		t.Errorf("replicas %d not bounded by storage (touched %d)", pol.Replicas(0), len(touched))
	}
}

func TestThresholdDecay(t *testing.T) {
	w := testWorkload(t)
	pol, err := NewThreshold(w, model.FullBudgets(w), 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	j := workload.PageID(0)
	// 50 accesses with decay every 10: the counter keeps halving, so the
	// threshold of 100 is never crossed.
	for n := 0; n < 50; n++ {
		if pol.CompLocal(j, 0) {
			t.Fatal("decayed counter crossed a high threshold")
		}
	}
	if pol.Replicas(w.Pages[0].Site) != 0 {
		t.Error("replica created despite decay")
	}
}

func TestThresholdOptionalPath(t *testing.T) {
	w := testWorkload(t)
	var pid workload.PageID = -1
	for j := range w.Pages {
		if len(w.Pages[j].Optional) > 0 {
			pid = workload.PageID(j)
			break
		}
	}
	if pid < 0 {
		t.Skip("no optional pages drawn")
	}
	pol, err := NewThreshold(w, model.FullBudgets(w), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pol.OptLocal(pid, 0) {
		t.Fatal("first optional touch local")
	}
	if !pol.OptLocal(pid, 0) {
		t.Fatal("second optional touch not local")
	}
}
