// Package repair turns a (placement, down-site set) pair into a
// deterministic repair plan: the control-plane half of the self-healing
// story. The paper's planner computes one static X/X′ placement and assumes
// every site stays up; when a site dies, every view of its pages degrades to
// the repository's remote chain (Eq. 5 with nothing local) until a human
// replans. This package replans mechanically instead: the dead site's rows
// are zeroed, its pages are re-homed onto surviving sites, the re-homed
// pages run the paper's own PARTITION admission at their new hosts, and the
// Eq. 8-10 constraint restorations plus the off-loading negotiation re-run
// on the survivors only — all through the existing core.Planner machinery,
// so a repair is bit-reproducible for a given (workload, estimates,
// down-set) at any worker count. A symmetric Recover path describes the
// return journey when the site comes back.
//
// The plan is purely declarative: it names the pages re-homed, the replicas
// each survivor must copy in (the re-replication traffic), and the predicted
// objective before and after. internal/controller applies it to a live
// webserve.Cluster; internal/experiments charges its copy bytes against the
// estimated repository rates to model time-to-repair.
package repair

import (
	"encoding/json"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Options controls repair planning.
type Options struct {
	// Workers bounds the per-site restoration concurrency, exactly like
	// core.Options.Workers: 0 means GOMAXPROCS, 1 forces sequential
	// execution, and every value produces byte-identical repair plans.
	Workers int
	// Journal, when non-nil, records one "repair.planned" event per Compute
	// with the down set, re-home count, copy traffic, and the predicted
	// objective before/after. The event is bookkeeping only — it never
	// influences the plan, which stays a pure function of (env, p, down).
	Journal *trace.Journal
}

// Rehome records one page's move off a dead site.
type Rehome struct {
	Page workload.PageID `json:"page"`
	From workload.SiteID `json:"from"`
	To   workload.SiteID `json:"to"`
}

// Copy is the re-replication work order for one surviving site: the objects
// the repaired placement stores there that the pre-failure placement did
// not. The repository holds every object, so each copy streams from it.
type Copy struct {
	Site    workload.SiteID     `json:"site"`
	Objects []workload.ObjectID `json:"objects"`
	Bytes   units.ByteSize      `json:"bytes"`
}

// Delta summarizes what a repair plan changes and predicts.
type Delta struct {
	Rehomed []Rehome `json:"rehomed"`
	Copies  []Copy   `json:"copies,omitempty"`
	// CopyBytes is the total re-replication traffic across all survivors.
	CopyBytes units.ByteSize `json:"copyBytes"`
	// DHealthy is the objective of the original placement with every site up.
	DHealthy float64 `json:"dHealthy"`
	// DBefore is the predicted degraded objective while the down sites'
	// views run entirely over the repository chain (the state PR 3's
	// fallback client leaves the system in).
	DBefore float64 `json:"dBefore"`
	// DAfter is the predicted objective under the repaired placement.
	DAfter float64 `json:"dAfter"`
	// Feasible reports Eq. 8-10 on the survivors under the repaired
	// placement (a false value means the survivors cannot absorb the dead
	// site's workload within their budgets; the plan still helps, but some
	// constraint is violated).
	Feasible bool `json:"feasible"`
}

// Plan is a complete repair: the re-homed environment, the repaired
// placement over it, and the delta against the pre-failure state.
type Plan struct {
	// Down is the sorted, deduplicated dead-site set the plan repairs.
	Down []workload.SiteID
	// Env is the repaired planning environment: the re-homed workload (dead
	// sites host nothing), the original estimates, and budgets with the dead
	// sites zeroed.
	Env *model.Env
	// Placement is the repaired placement over Env.W.
	Placement *model.Placement
	// Delta is the change summary and objective prediction.
	Delta Delta

	origEnv  *model.Env
	origPlan *model.Placement
}

// Original returns the pre-failure environment and placement — what Recover
// reinstates when the down sites return.
func (rp *Plan) Original() (*model.Env, *model.Placement) { return rp.origEnv, rp.origPlan }

// Compute builds the repair plan for placement p (over env) with the sites
// in down dead. At least one site must survive. The computation is a pure
// function of (env, p, down): no randomness, no wall clock, and the same
// bytes from Encode at every Options.Workers value.
func Compute(env *model.Env, p *model.Placement, down []workload.SiteID, opts Options) (*Plan, error) {
	w := env.W
	downSet, err := normalizeDown(w, down)
	if err != nil {
		return nil, err
	}
	survivors := w.NumSites() - len(downSet)
	if survivors < 1 {
		return nil, fmt.Errorf("repair: no surviving site (%d of %d down)", len(downSet), w.NumSites())
	}
	if err := p.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("repair: pre-failure placement: %w", err)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// The new homes: each dead page goes to the survivor with the most
	// relative headroom at assignment time (pages visited in ID order, so
	// the rule is deterministic).
	target := assignHomes(env, downSet)

	w2 := rehomeWorkload(w, target)
	b2 := zeroDownBudgets(env.Budgets, downSet)
	env2, err := model.NewEnv(w2, env.Est, b2)
	if err != nil {
		return nil, err
	}
	env2.Alpha1, env2.Alpha2 = env.Alpha1, env.Alpha2

	// Seed the planner with the pre-failure placement restricted to the
	// survivors — the dead sites' rows and stores zeroed, the re-homed
	// pages all-remote.
	seed := model.NewPlacement(w2)
	for i := 0; i < w.NumSites(); i++ {
		id := workload.SiteID(i)
		if downSet[id] {
			continue
		}
		p.StoredSet(id).ForEach(func(k int) bool {
			seed.Store(id, workload.ObjectID(k))
			return true
		})
	}
	for j := range w.Pages {
		pid := workload.PageID(j)
		if _, moved := target[pid]; moved {
			continue
		}
		for idx := range w.Pages[j].Compulsory {
			seed.SetCompLocal(pid, idx, p.CompLocal(pid, idx))
		}
		for idx := range w.Pages[j].Optional {
			seed.SetOptLocal(pid, idx, p.OptLocal(pid, idx))
		}
	}
	pl := core.NewPlanner(env2)
	if err := pl.AdoptPlacement(seed); err != nil {
		return nil, fmt.Errorf("repair: seed placement: %w", err)
	}

	// Re-run the compulsory/optional split for the dead sites' pages at
	// their new hosts (PARTITION admission, page-ID order).
	moved := make([]workload.PageID, 0, len(target))
	for pid := range target {
		moved = append(moved, pid)
	}
	sort.Slice(moved, func(a, b int) bool { return moved[a] < moved[b] })
	for _, pid := range moved {
		pl.AdmitPage(pid)
	}

	// Restore Eq. 10 and Eq. 8 on the survivors. Distinct sites touch
	// disjoint planner state, so the pool is deterministic at any width —
	// the same argument as core.Plan's restoration phase.
	var surviving []workload.SiteID
	for i := 0; i < w.NumSites(); i++ {
		if !downSet[workload.SiteID(i)] {
			surviving = append(surviving, workload.SiteID(i))
		}
	}
	restore := func(i workload.SiteID) {
		pl.RestoreStorageSite(i)
		pl.RestoreProcessingSite(i)
	}
	if workers <= 1 || len(surviving) <= 1 {
		for _, i := range surviving {
			restore(i)
		}
	} else {
		sites := make(chan workload.SiteID)
		var wg sync.WaitGroup
		n := workers
		if n > len(surviving) {
			n = len(surviving)
		}
		for g := 0; g < n; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range sites {
					restore(i)
				}
			}()
		}
		for _, i := range surviving {
			sites <- i
		}
		close(sites)
		wg.Wait()
	}

	// Eq. 9: the repository absorbed the dead site's whole local service, so
	// re-negotiate off-loading with the survivors (dead sites have zero
	// capacity and accept nothing).
	pl.OffloadParallel(nil, workers, nil)

	repaired := pl.Placement()
	report := model.Evaluate(env2, repaired)

	rp := &Plan{
		Down:      downKeys(downSet),
		Env:       env2,
		Placement: repaired,
		origEnv:   env,
		origPlan:  p,
	}
	rp.Delta = Delta{
		Rehomed:  rehomeList(w, target),
		DHealthy: model.D(env, p),
		DBefore:  DegradedD(env, p, downSet),
		DAfter:   model.D(env2, repaired),
		Feasible: report.Feasible(),
	}
	rp.Delta.Copies, rp.Delta.CopyBytes = copySets(w, p, repaired, surviving)
	opts.Journal.Record("repair.planned",
		trace.A("down", fmt.Sprint(rp.Down)),
		trace.I("rehomed", int64(len(rp.Delta.Rehomed))),
		trace.I("copy_bytes", int64(rp.Delta.CopyBytes)),
		trace.F("d_healthy", rp.Delta.DHealthy),
		trace.F("d_degraded", rp.Delta.DBefore),
		trace.F("d_after", rp.Delta.DAfter))
	return rp, nil
}

// Recover describes the return journey once every down site is back: the
// original placement is reinstated, the re-homed pages move home, and each
// survivor re-copies the replicas the repair dropped (the returned site's
// own replicas survived on its disk, so it copies nothing). The result is a
// Delta whose DBefore is the repaired objective and whose DAfter is the
// healthy one.
func (rp *Plan) Recover() Delta {
	w := rp.origEnv.W
	back := make([]Rehome, len(rp.Delta.Rehomed))
	for i, r := range rp.Delta.Rehomed {
		back[i] = Rehome{Page: r.Page, From: r.To, To: r.From}
	}
	var survivors []workload.SiteID
	downSet := make(map[workload.SiteID]bool, len(rp.Down))
	for _, i := range rp.Down {
		downSet[i] = true
	}
	for i := 0; i < w.NumSites(); i++ {
		if !downSet[workload.SiteID(i)] {
			survivors = append(survivors, workload.SiteID(i))
		}
	}
	copies, bytes := copySets(w, rp.Placement, rp.origPlan, survivors)
	return Delta{
		Rehomed:   back,
		Copies:    copies,
		CopyBytes: bytes,
		DHealthy:  rp.Delta.DHealthy,
		DBefore:   rp.Delta.DAfter,
		DAfter:    rp.Delta.DHealthy,
		Feasible:  true,
	}
}

// DegradedD predicts the objective of placement p when the sites in down
// are unreachable and unrepaired: every view of a down site's pages fetches
// the HTML and all compulsory objects over the repository chain (Eq. 4 with
// everything remote — PR 3's degraded client), and every optional request
// goes remote. Pages on surviving sites are untouched: their server and the
// repository are both up.
func DegradedD(env *model.Env, p *model.Placement, down map[workload.SiteID]bool) float64 {
	w := env.W
	var d1, d2 float64
	for j := range w.Pages {
		pid := workload.PageID(j)
		pg := &w.Pages[j]
		f := float64(pg.Freq)
		if !down[pg.Site] {
			d1 += f * float64(model.PageTime(env, p, pid))
			d2 += f * float64(model.PageOptionalTime(env, p, pid))
			continue
		}
		est := env.Est.Sites[pg.Site]
		bytes := pg.HTMLSize
		for _, k := range pg.Compulsory {
			bytes += w.ObjectSize(k)
		}
		d1 += f * float64(est.RepoOvhd+est.RepoRate.TransferTime(bytes))
		for _, l := range pg.Optional {
			d2 += f * l.Prob * float64(est.RepoOvhd+est.RepoRate.TransferTime(w.ObjectSize(l.Object)))
		}
	}
	return env.Alpha1*d1 + env.Alpha2*d2
}

// DownFreq returns the total page-request rate the down sites hosted — the
// traffic a repair re-homes (and the weight a per-view failover delay
// multiplies in the recovery experiment).
func DownFreq(w *workload.Workload, down map[workload.SiteID]bool) float64 {
	sum := 0.0
	for j := range w.Pages {
		if down[w.Pages[j].Site] {
			sum += float64(w.Pages[j].Freq)
		}
	}
	return sum
}

// Encode renders the plan deterministically: the down set, the delta, and
// the repaired placement, as one JSON document. Two equal plans encode to
// identical bytes — the property the determinism tests pin.
func (rp *Plan) Encode() ([]byte, error) {
	var placement json.RawMessage
	var buf placementBuffer
	if err := rp.Placement.Encode(&buf); err != nil {
		return nil, err
	}
	placement = json.RawMessage(buf.data)
	return json.MarshalIndent(struct {
		Down      []workload.SiteID `json:"down"`
		Delta     Delta             `json:"delta"`
		Placement json.RawMessage   `json:"placement"`
	}{rp.Down, rp.Delta, placement}, "", "  ")
}

// placementBuffer collects Placement.Encode output (it writes a trailing
// newline; trim it so the raw message nests cleanly).
type placementBuffer struct{ data []byte }

func (b *placementBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	for len(b.data) > 0 && b.data[len(b.data)-1] == '\n' {
		b.data = b.data[:len(b.data)-1]
	}
	return len(p), nil
}

// normalizeDown validates and dedups the down set.
func normalizeDown(w *workload.Workload, down []workload.SiteID) (map[workload.SiteID]bool, error) {
	if len(down) == 0 {
		return nil, fmt.Errorf("repair: empty down set")
	}
	set := make(map[workload.SiteID]bool, len(down))
	for _, i := range down {
		if i < 0 || int(i) >= w.NumSites() {
			return nil, fmt.Errorf("repair: down site %d out of range (workload has %d sites)", i, w.NumSites())
		}
		set[i] = true
	}
	return set, nil
}

// downKeys returns the sorted down set.
func downKeys(set map[workload.SiteID]bool) []workload.SiteID {
	out := make([]workload.SiteID, 0, len(set))
	for i := range set {
		out = append(out, i)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// assignHomes picks each dead page's new host. Pages are visited in ID
// order; for each, the candidate pool is the survivors with remaining
// Eq. 8 capacity headroom (all survivors when none has any), and the
// winner is the candidate whose repository link serves the page's
// worst-case remote chain (HTML + every compulsory object over
// RepoOvhd/RepoRate) fastest — at tight storage most re-homed bytes flow
// over that link, so picking by load share alone can hand a community to
// a slow survivor and make the repair worse than the repository fallback
// it replaces. Ties fall back to the smallest projected load share (load
// over capacity when finite), then the lowest site ID, and the headroom
// guard keeps any one well-connected survivor from absorbing more traffic
// than Eq. 8 lets it serve.
func assignHomes(env *model.Env, down map[workload.SiteID]bool) map[workload.PageID]workload.SiteID {
	w, b := env.W, env.Budgets
	load := make([]float64, w.NumSites())
	for j := range w.Pages {
		load[w.Pages[j].Site] += float64(w.Pages[j].Freq)
	}
	share := func(i workload.SiteID, extra float64) float64 {
		v := load[i] + extra
		if c := float64(b.SiteCapacity[i]); c > 0 && !math.IsInf(c, 1) {
			return v / c
		}
		return v
	}
	headroom := func(i workload.SiteID, extra float64) bool {
		c := float64(b.SiteCapacity[i])
		if c <= 0 || math.IsInf(c, 1) {
			return true
		}
		return load[i]+extra <= c
	}
	target := make(map[workload.PageID]workload.SiteID)
	for j := range w.Pages {
		pg := &w.Pages[j]
		if !down[pg.Site] {
			continue
		}
		bytes := pg.HTMLSize
		for _, k := range pg.Compulsory {
			bytes += w.ObjectSize(k)
		}
		pick := func(requireHeadroom bool) workload.SiteID {
			best := workload.SiteID(-1)
			bestT, bestShare := math.Inf(1), math.Inf(1)
			for i := 0; i < w.NumSites(); i++ {
				id := workload.SiteID(i)
				if down[id] || (requireHeadroom && !headroom(id, float64(pg.Freq))) {
					continue
				}
				est := env.Est.Sites[id]
				t := float64(est.RepoOvhd + est.RepoRate.TransferTime(bytes))
				s := share(id, float64(pg.Freq))
				if t < bestT || (t == bestT && s < bestShare) { //repllint:allow float-compare — exact-bits tie-break; an epsilon would make the argmin order-dependent
					best, bestT, bestShare = id, t, s
				}
			}
			return best
		}
		best := pick(true)
		if best < 0 {
			best = pick(false)
		}
		target[workload.PageID(j)] = best
		load[best] += float64(pg.Freq)
	}
	return target
}

// rehomeWorkload clones w with each page in target moved to its new host:
// Pages[j].Site updated, per-site page lists rebuilt in page-ID order, and
// each gaining site's object pool extended with the references it inherits.
// Object and page identities are untouched, so placements over the clone
// index identically to placements over w.
func rehomeWorkload(w *workload.Workload, target map[workload.PageID]workload.SiteID) *workload.Workload {
	w2 := &workload.Workload{
		Config:  w.Config,
		Seed:    w.Seed,
		Objects: w.Objects,
		Pages:   append([]workload.Page(nil), w.Pages...),
		Sites:   append([]workload.Site(nil), w.Sites...),
	}
	for pid, to := range target {
		w2.Pages[pid].Site = to
	}
	pages := make([][]workload.PageID, len(w2.Sites))
	for j := range w2.Pages {
		pages[w2.Pages[j].Site] = append(pages[w2.Pages[j].Site], workload.PageID(j))
	}
	for i := range w2.Sites {
		w2.Sites[i].Pages = pages[i]
		w2.Sites[i].Objects = extendPool(w, w2.Sites[i].Objects, pages[i])
	}
	return w2
}

// extendPool unions a site's object pool with the references of its (new)
// page list, sorted ascending.
func extendPool(w *workload.Workload, pool []workload.ObjectID, pages []workload.PageID) []workload.ObjectID {
	seen := make(map[workload.ObjectID]bool, len(pool))
	out := append([]workload.ObjectID(nil), pool...)
	for _, k := range pool {
		seen[k] = true
	}
	for _, pid := range pages {
		pg := &w.Pages[pid]
		for _, k := range pg.Compulsory {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
		for _, l := range pg.Optional {
			if !seen[l.Object] {
				seen[l.Object] = true
				out = append(out, l.Object)
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// zeroDownBudgets copies the budgets with every dead site's storage and
// capacity zeroed: Eq. 8-10 on survivors only.
func zeroDownBudgets(b model.Budgets, down map[workload.SiteID]bool) model.Budgets {
	out := model.Budgets{
		Storage:      append([]units.ByteSize(nil), b.Storage...),
		SiteCapacity: append([]units.ReqPerSec(nil), b.SiteCapacity...),
		RepoCapacity: b.RepoCapacity,
	}
	for i := range out.Storage {
		if down[workload.SiteID(i)] {
			out.Storage[i] = 0
			out.SiteCapacity[i] = 0
		}
	}
	return out
}

// rehomeList renders the target map as a sorted Rehome list.
func rehomeList(w *workload.Workload, target map[workload.PageID]workload.SiteID) []Rehome {
	out := make([]Rehome, 0, len(target))
	for pid, to := range target {
		out = append(out, Rehome{Page: pid, From: w.Pages[pid].Site, To: to})
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Page < out[b].Page })
	return out
}

// copySets lists, per surviving site, the objects placement b stores there
// that placement a does not — the replicas to stream from the repository.
func copySets(w *workload.Workload, a, b *model.Placement, survivors []workload.SiteID) ([]Copy, units.ByteSize) {
	var out []Copy
	var total units.ByteSize
	for _, i := range survivors {
		var c Copy
		c.Site = i
		b.StoredSet(i).ForEach(func(kk int) bool {
			k := workload.ObjectID(kk)
			if !a.IsStored(i, k) {
				c.Objects = append(c.Objects, k)
				c.Bytes += w.ObjectSize(k)
			}
			return true
		})
		if len(c.Objects) > 0 {
			out = append(out, c)
			total += c.Bytes
		}
	}
	return out, total
}
