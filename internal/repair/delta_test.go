package repair

import (
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/workload"
)

func deltaEnv(t *testing.T, w *workload.Workload, storageFrac float64) *model.Env {
	t.Helper()
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w).Scale(w, storageFrac, 1))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestChangeDeltaIdenticalPlacementsShipNothing(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 52)
	env := deltaEnv(t, w, 0.4)
	p, _, err := core.Plan(env, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := ChangeDelta(env, env, p, p)
	if d.CopyBytes != 0 || len(d.Copies) != 0 {
		t.Fatalf("identical placements shipped %v in %d copies", d.CopyBytes, len(d.Copies))
	}
	if d.DBefore != d.DAfter {
		t.Fatalf("identical placements changed D: %.6f -> %.6f", d.DBefore, d.DAfter)
	}
	if !d.Feasible {
		t.Fatal("planned placement reported infeasible")
	}
}

func TestChangeDeltaUnderDrift(t *testing.T) {
	w := workload.MustGenerate(workload.SmallConfig(), 52)
	env := deltaEnv(t, w, 0.4)
	stale, _, err := core.Plan(env, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Drifted demand: rotate hot sets, re-plan, and summarize the switch.
	w2, err := workload.Drift(w, 0.6, 77)
	if err != nil {
		t.Fatal(err)
	}
	env2, err := model.NewEnv(w2, env.Est, env.Budgets)
	if err != nil {
		t.Fatal(err)
	}
	env2.Alpha1, env2.Alpha2 = env.Alpha1, env.Alpha2
	fresh, _, err := core.Plan(env2, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := ChangeDelta(env, env2, stale, fresh)

	// The fresh plan must beat the stale one under the drifted demand, and
	// the bill must account exactly for the copy sets it lists.
	if d.DAfter > d.DBefore {
		t.Errorf("re-plan made D worse under drift: %.4f -> %.4f", d.DBefore, d.DAfter)
	}
	var sum int64
	for _, c := range d.Copies {
		if len(c.Objects) == 0 {
			t.Fatalf("site %d has an empty copy set", c.Site)
		}
		for _, k := range c.Objects {
			if stale.IsStored(c.Site, k) {
				t.Fatalf("site %d asked to copy object %d it already stores", c.Site, k)
			}
			if !fresh.IsStored(c.Site, k) {
				t.Fatalf("site %d asked to copy object %d the fresh plan does not store", c.Site, k)
			}
			sum += int64(w.ObjectSize(k))
		}
	}
	if sum != int64(d.CopyBytes) {
		t.Fatalf("CopyBytes %d != sum of copy sets %d", d.CopyBytes, sum)
	}
	// DHealthy is the stale plan under its own estimates.
	if d.DHealthy <= 0 {
		t.Fatalf("DHealthy = %v", d.DHealthy)
	}
}
