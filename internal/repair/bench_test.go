package repair

import (
	"testing"

	"repro/internal/workload"
)

// BenchmarkRepairPlan measures the repair planner's hot path — the full
// Compute pipeline (re-home, seeded adoption, per-page admission, survivor
// restoration, off-loading) for a single-site outage. The name matches
// cmd/benchdiff's Plan filter, so a regression here fails the CI gate.
func BenchmarkRepairPlan(b *testing.B) {
	env, p := scaffold(b, 42)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Compute(env, p, []workload.SiteID{0}, Options{Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepairPlanParallel is the same outage repaired with the full
// worker pool — the delta against BenchmarkRepairPlan is what the
// restoration/off-loading parallelism buys on a repair.
func BenchmarkRepairPlanParallel(b *testing.B) {
	env, p := scaffold(b, 42)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Compute(env, p, []workload.SiteID{0}, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
