package repair

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/workload"
)

// scaffold builds a planned environment: a small seeded workload, drawn
// estimates, constrained budgets (50 % MO storage so restoration has work
// to do) and the full paper pipeline's placement over it.
func scaffold(t testing.TB, seed uint64) (*model.Env, *model.Placement) {
	t.Helper()
	w := workload.MustGenerate(workload.SmallConfig(), seed)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	b := model.FullBudgets(w).Scale(w, 0.5, 1)
	env, err := model.NewEnv(w, est, b)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := core.Plan(env, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return env, p
}

// TestRepairWorkersDeterminismProperty is the acceptance property: for a
// given (workload seed, down-set), Compute emits byte-identical plans at
// every Workers count. Run under -race in CI's heal stage.
func TestRepairWorkersDeterminismProperty(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		env, p := scaffold(t, seed)
		down := []workload.SiteID{0}

		ref, err := Compute(env, p, down, Options{Workers: 1})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		refBytes, err := ref.Encode()
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 16} {
			rp, err := Compute(env, p, down, Options{Workers: workers})
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			got, err := rp.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refBytes, got) {
				t.Fatalf("seed %d: workers=%d plan differs from workers=1", seed, workers)
			}
		}
	}
}

// TestRepairPlanShape checks the structural promises: every dead page is
// re-homed to a survivor, the repaired placement satisfies the model
// invariants, the dead site stores nothing and serves nothing, and the
// delta's copy lists are exactly the survivors' store growth.
func TestRepairPlanShape(t *testing.T) {
	env, p := scaffold(t, 7)
	dead := workload.SiteID(1)
	rp, err := Compute(env, p, []workload.SiteID{dead}, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if err := rp.Placement.CheckInvariants(); err != nil {
		t.Fatalf("repaired placement: %v", err)
	}
	if err := rp.Env.W.Validate(); err != nil {
		t.Fatalf("re-homed workload: %v", err)
	}
	if got := rp.Placement.StoredSet(dead).Count(); got != 0 {
		t.Fatalf("dead site still stores %d objects", got)
	}
	if len(rp.Env.W.Sites[dead].Pages) != 0 {
		t.Fatalf("dead site still hosts %d pages", len(rp.Env.W.Sites[dead].Pages))
	}

	moved := make(map[workload.PageID]bool)
	for _, r := range rp.Delta.Rehomed {
		if r.From != dead {
			t.Fatalf("re-home of page %d claims source %d, want %d", r.Page, r.From, dead)
		}
		if r.To == dead {
			t.Fatalf("page %d re-homed onto the dead site", r.Page)
		}
		if rp.Env.W.Pages[r.Page].Site != r.To {
			t.Fatalf("page %d: workload says site %d, delta says %d", r.Page, rp.Env.W.Pages[r.Page].Site, r.To)
		}
		moved[r.Page] = true
	}
	for _, pid := range env.W.Sites[dead].Pages {
		if !moved[pid] {
			t.Fatalf("dead page %d not re-homed", pid)
		}
	}

	// Copies = repaired stores minus original stores, survivors only.
	var copyTotal int
	for _, c := range rp.Delta.Copies {
		if c.Site == dead {
			t.Fatal("copy order addressed to the dead site")
		}
		for _, k := range c.Objects {
			if p.IsStored(c.Site, k) {
				t.Fatalf("site %d ordered to copy object %d it already stores", c.Site, k)
			}
			if !rp.Placement.IsStored(c.Site, k) {
				t.Fatalf("site %d ordered to copy object %d the repaired placement does not store", c.Site, k)
			}
		}
		copyTotal += len(c.Objects)
	}
	var growth int
	for i := 0; i < env.W.NumSites(); i++ {
		id := workload.SiteID(i)
		if id == dead {
			continue
		}
		rp.Placement.StoredSet(id).ForEach(func(k int) bool {
			if !p.IsStored(id, workload.ObjectID(k)) {
				growth++
			}
			return true
		})
	}
	if copyTotal != growth {
		t.Fatalf("copy orders cover %d objects, store growth is %d", copyTotal, growth)
	}
}

// TestRepairObjectiveOrdering checks the predicted objectives are coherent:
// the unrepaired degraded state is worse than healthy, and the repair
// strictly improves on it (on these workloads the survivors have headroom,
// so local service beats the all-remote repository chain).
func TestRepairObjectiveOrdering(t *testing.T) {
	env, p := scaffold(t, 13)
	rp, err := Compute(env, p, []workload.SiteID{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := rp.Delta
	if !(d.DBefore > d.DHealthy) {
		t.Fatalf("degraded D %.4f not worse than healthy %.4f", d.DBefore, d.DHealthy)
	}
	if !(d.DAfter < d.DBefore) {
		t.Fatalf("repaired D %.4f not better than degraded %.4f", d.DAfter, d.DBefore)
	}
	if model.D(rp.Env, rp.Placement) != d.DAfter {
		t.Fatal("DAfter does not match a fresh model evaluation of the repaired placement")
	}
}

// TestRecoverSymmetry checks the return journey: Recover's re-homes invert
// the repair's, its copies restore exactly the survivor replicas the repair
// dropped, and its objective endpoints swap back to healthy.
func TestRecoverSymmetry(t *testing.T) {
	env, p := scaffold(t, 21)
	dead := workload.SiteID(2)
	rp, err := Compute(env, p, []workload.SiteID{dead}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rec := rp.Recover()

	if len(rec.Rehomed) != len(rp.Delta.Rehomed) {
		t.Fatalf("recover re-homes %d pages, repair moved %d", len(rec.Rehomed), len(rp.Delta.Rehomed))
	}
	for i, r := range rec.Rehomed {
		f := rp.Delta.Rehomed[i]
		if r.Page != f.Page || r.From != f.To || r.To != f.From {
			t.Fatalf("recover re-home %v does not invert %v", r, f)
		}
	}
	for _, c := range rec.Copies {
		for _, k := range c.Objects {
			if !p.IsStored(c.Site, k) {
				t.Fatalf("recover orders site %d to copy object %d the original placement never stored", c.Site, k)
			}
			if rp.Placement.IsStored(c.Site, k) {
				t.Fatalf("recover orders site %d to copy object %d the repaired placement kept", c.Site, k)
			}
		}
	}
	if rec.DBefore != rp.Delta.DAfter || rec.DAfter != rp.Delta.DHealthy {
		t.Fatal("recover objective endpoints are not the repair's reversed")
	}

	oe, op := rp.Original()
	if oe != env || op != p {
		t.Fatal("Original does not return the pre-failure env/placement")
	}
}

// TestRepairRejectsBadDownSets covers the error paths.
func TestRepairRejectsBadDownSets(t *testing.T) {
	env, p := scaffold(t, 5)
	if _, err := Compute(env, p, nil, Options{}); err == nil {
		t.Fatal("empty down set accepted")
	}
	if _, err := Compute(env, p, []workload.SiteID{workload.SiteID(env.W.NumSites())}, Options{}); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	all := make([]workload.SiteID, env.W.NumSites())
	for i := range all {
		all[i] = workload.SiteID(i)
	}
	if _, err := Compute(env, p, all, Options{}); err == nil {
		t.Fatal("all-sites-down accepted")
	}
}

// TestRepairMultiSiteDown exercises a two-site outage: both sites' pages
// re-homed, plan still invariant-clean and encodable.
func TestRepairMultiSiteDown(t *testing.T) {
	env, p := scaffold(t, 31)
	if env.W.NumSites() < 3 {
		t.Skip("need 3 sites")
	}
	rp, err := Compute(env, p, []workload.SiteID{0, 2, 0}, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rp.Down) != 2 || rp.Down[0] != 0 || rp.Down[1] != 2 {
		t.Fatalf("down set not deduped/sorted: %v", rp.Down)
	}
	if err := rp.Placement.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := rp.Encode(); err != nil {
		t.Fatal(err)
	}
}

// TestDownFreq pins the re-homed traffic accounting.
func TestDownFreq(t *testing.T) {
	env, _ := scaffold(t, 11)
	down := map[workload.SiteID]bool{1: true}
	var want float64
	for j := range env.W.Pages {
		if env.W.Pages[j].Site == 1 {
			want += float64(env.W.Pages[j].Freq)
		}
	}
	if got := DownFreq(env.W, down); got != want {
		t.Fatalf("DownFreq = %v, want %v", got, want)
	}
}
