package repair

import (
	"repro/internal/model"
	"repro/internal/workload"
)

// ChangeDelta summarizes shipping placement to in place of from with every
// site up — the adaptive re-planning counterpart of a repair plan's delta.
// envOld is the environment the current plan was built from, envNew the
// re-estimated one; both must share from/to's site and object universe.
// Copies lists, per site, only the objects to stores there that from does
// not (each streams from the repository), so an unchanged placement yields
// no copies and zero CopyBytes — adaptation ships deltas, never a full
// re-copy. DHealthy is the old plan under the old estimates, DBefore the
// old plan under the new estimates (the staleness cost), DAfter the new
// plan under the new estimates. Like everything in this package the result
// is a pure function of its inputs.
func ChangeDelta(envOld, envNew *model.Env, from, to *model.Placement) Delta {
	w := envNew.W
	all := make([]workload.SiteID, w.NumSites())
	for i := range all {
		all[i] = workload.SiteID(i)
	}
	copies, bytes := copySets(w, from, to, all)
	return Delta{
		Copies:    copies,
		CopyBytes: bytes,
		DHealthy:  model.D(envOld, from),
		DBefore:   model.D(envNew, from),
		DAfter:    model.D(envNew, to),
		Feasible:  model.Evaluate(envNew, to).Feasible(),
	}
}
