package stats

import (
	"math"
	"strings"
	"testing"
)

func TestWritePlotBasic(t *testing.T) {
	f := &Figure{Title: "T", XLabel: "x"}
	a := f.AddSeries("up")
	b := f.AddSeries("down")
	for i := 0; i <= 10; i++ {
		a.Add(float64(i), float64(i), 0)
		b.Add(float64(i), float64(10-i), 0)
	}
	var sb strings.Builder
	if err := f.WritePlot(&sb, 40, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"T", "*=up", "o=down", "(x: x)", "10", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + axis + x labels + legend
	if len(lines) != 1+10+1+1+1 {
		t.Errorf("plot has %d lines:\n%s", len(lines), out)
	}
	// The increasing series ends top-right: the top row's glyph sits in
	// the right half.
	top := lines[1]
	if !strings.Contains(top, "*") || strings.Index(top, "*") < len(top)/2 {
		t.Errorf("increasing series not at top-right:\n%s", out)
	}
}

func TestWritePlotEmptyAndDegenerate(t *testing.T) {
	f := &Figure{}
	var sb strings.Builder
	if err := f.WritePlot(&sb, 20, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty figure should say so")
	}

	// A single point and NaN entries must not panic.
	g := &Figure{}
	s := g.AddSeries("p")
	s.Add(5, 7, 0)
	s.Add(6, math.NaN(), 0)
	sb.Reset()
	if err := g.WritePlot(&sb, 20, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Error("single point not plotted")
	}
}

func TestWritePlotClampsTinyDimensions(t *testing.T) {
	f := &Figure{}
	s := f.AddSeries("s")
	s.Add(0, 1, 0)
	s.Add(1, 2, 0)
	var sb strings.Builder
	if err := f.WritePlot(&sb, 1, 1); err != nil {
		t.Fatal(err)
	}
	if len(sb.String()) == 0 {
		t.Error("no output at clamped dimensions")
	}
}
