// Package stats provides the measurement plumbing for the experiment
// harness: streaming moments (Welford), weighted means, percentiles over
// retained samples, confidence intervals over experiment runs, and the
// relative-increase metric the paper's figures plot.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator computes streaming count/mean/variance/min/max without
// retaining samples (Welford's algorithm). The zero value is ready to use.
type Accumulator struct {
	n          int64
	mean, m2   float64
	min, max   float64
	weightSum  float64
	wmeanNum   float64
	hasSamples bool
}

// Add records an unweighted observation.
func (a *Accumulator) Add(x float64) { a.AddWeighted(x, 1) }

// AddWeighted records an observation with weight w (w must be positive;
// non-positive weights are ignored). The unweighted moments use the sample
// once regardless of w; the weighted mean uses w.
func (a *Accumulator) AddWeighted(x, w float64) {
	if w <= 0 || math.IsNaN(x) {
		return
	}
	a.n++
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if !a.hasSamples || x < a.min {
		a.min = x
	}
	if !a.hasSamples || x > a.max {
		a.max = x
	}
	a.hasSamples = true
	a.weightSum += w
	a.wmeanNum += w * x
}

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the unweighted sample mean (0 if empty).
func (a *Accumulator) Mean() float64 { return a.mean }

// WeightedMean returns the weight-averaged mean (0 if empty).
func (a *Accumulator) WeightedMean() float64 {
	if a.weightSum == 0 {
		return 0
	}
	return a.wmeanNum / a.weightSum
}

// Sum returns the weighted sum Σ w·x.
func (a *Accumulator) Sum() float64 { return a.wmeanNum }

// WeightSum returns Σ w.
func (a *Accumulator) WeightSum() float64 { return a.weightSum }

// Variance returns the unbiased sample variance (0 for n < 2).
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// StdErr returns the standard error of the mean.
func (a *Accumulator) StdErr() float64 {
	if a.n == 0 {
		return 0
	}
	return a.StdDev() / math.Sqrt(float64(a.n))
}

// Min returns the smallest observation (0 if empty).
func (a *Accumulator) Min() float64 {
	if !a.hasSamples {
		return 0
	}
	return a.min
}

// Max returns the largest observation (0 if empty).
func (a *Accumulator) Max() float64 {
	if !a.hasSamples {
		return 0
	}
	return a.max
}

// CI95 returns the half-width of a ~95 % normal-approximation confidence
// interval around the mean. The harness averages 20 runs per point (as the
// paper does), where the normal approximation is adequate.
func (a *Accumulator) CI95() float64 { return 1.96 * a.StdErr() }

// Merge folds another accumulator into this one (Chan et al. parallel
// variance update), so per-worker accumulators can be combined.
func (a *Accumulator) Merge(b *Accumulator) {
	if b.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *b
		return
	}
	n := a.n + b.n
	d := b.mean - a.mean
	a.m2 += b.m2 + d*d*float64(a.n)*float64(b.n)/float64(n)
	a.mean += d * float64(b.n) / float64(n)
	a.n = n
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	a.weightSum += b.weightSum
	a.wmeanNum += b.wmeanNum
}

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g [%.4g, %.4g]", a.n, a.Mean(), a.CI95(), a.Min(), a.Max())
}

// Sample retains observations for percentile queries. Use for modest sample
// counts (per-run response-time distributions).
type Sample struct {
	xs     []float64
	sorted bool
}

// Add appends an observation.
func (s *Sample) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	s.xs = append(s.xs, x)
	s.sorted = false
}

// N returns the number of retained observations.
func (s *Sample) N() int { return len(s.xs) }

// Values returns the retained observations in insertion order (or sorted
// order if a percentile has been queried). The slice is the internal
// buffer; callers must not mutate it.
func (s *Sample) Values() []float64 { return s.xs }

// Mean returns the sample mean (0 if empty).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// Percentile returns the p-quantile (p in [0,1]) using linear interpolation
// between closest ranks; 0 if empty. p is clamped to [0,1].
func (s *Sample) Percentile(p float64) float64 {
	if len(s.xs) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.xs)
		s.sorted = true
	}
	if p <= 0 {
		return s.xs[0]
	}
	if p >= 1 {
		return s.xs[len(s.xs)-1]
	}
	pos := p * float64(len(s.xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s.xs[lo]
	}
	frac := pos - float64(lo)
	return s.xs[lo]*(1-frac) + s.xs[hi]*frac
}

// Median returns the 50th percentile.
func (s *Sample) Median() float64 { return s.Percentile(0.5) }

// BucketQuantile returns the p-quantile of a fixed-bucket histogram given
// the sorted bucket upper bounds and the per-bucket counts (len(bounds)+1,
// the last being the overflow bucket). Within the bucket holding the target
// rank the value is linearly interpolated between the bucket's edges — the
// fixed-bucket analogue of Sample.Percentile's closest-ranks interpolation.
// The first bucket's lower edge is 0 (the histograms hold non-negative
// latencies); the overflow bucket cannot be interpolated and clamps to the
// last bound. Returns 0 when the histogram is empty; p is clamped to [0,1].
func BucketQuantile(bounds []float64, counts []int64, p float64) float64 {
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	rank := p * float64(total)
	cum := 0.0
	for i, c := range counts {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if next >= rank || i == len(counts)-1 {
			if i >= len(bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				if len(bounds) == 0 {
					return 0
				}
				return bounds[len(bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			hi := bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return bounds[len(bounds)-1]
}

// RelativeIncrease returns (value/base − 1) expressed in percent — the
// y-axis of the paper's figures ("% increase in response time" over the
// unconstrained proposed policy). A non-positive base yields NaN.
func RelativeIncrease(value, base float64) float64 {
	if base <= 0 {
		return math.NaN()
	}
	return (value/base - 1) * 100
}
