package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero accumulator not zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.N() != 8 {
		t.Errorf("N = %d", a.N())
	}
	if math.Abs(a.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic set is 4; sample variance 32/7.
	if math.Abs(a.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7)
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
}

func TestAccumulatorWeighted(t *testing.T) {
	var a Accumulator
	a.AddWeighted(10, 1)
	a.AddWeighted(20, 3)
	if got := a.WeightedMean(); math.Abs(got-17.5) > 1e-12 {
		t.Errorf("WeightedMean = %v, want 17.5", got)
	}
	if got := a.Mean(); math.Abs(got-15) > 1e-12 {
		t.Errorf("unweighted Mean = %v, want 15", got)
	}
	if a.Sum() != 70 || a.WeightSum() != 4 {
		t.Errorf("Sum/WeightSum = %v/%v", a.Sum(), a.WeightSum())
	}
}

func TestAccumulatorIgnoresBadInput(t *testing.T) {
	var a Accumulator
	a.AddWeighted(5, 0)
	a.AddWeighted(5, -1)
	a.Add(math.NaN())
	if a.N() != 0 {
		t.Errorf("bad inputs were recorded: N=%d", a.N())
	}
}

func TestAccumulatorMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	var whole, left, right, empty Accumulator
	for i, x := range xs {
		whole.Add(x)
		if i < 4 {
			left.Add(x)
		} else {
			right.Add(x)
		}
	}
	left.Merge(&right)
	if left.N() != whole.N() {
		t.Fatalf("merged N = %d", left.N())
	}
	if math.Abs(left.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged Mean = %v, want %v", left.Mean(), whole.Mean())
	}
	if math.Abs(left.Variance()-whole.Variance()) > 1e-10 {
		t.Errorf("merged Variance = %v, want %v", left.Variance(), whole.Variance())
	}
	if left.Min() != 1 || left.Max() != 10 {
		t.Errorf("merged Min/Max = %v/%v", left.Min(), left.Max())
	}
	// Merging an empty accumulator is a no-op; merging into empty copies.
	before := left
	left.Merge(&empty)
	if left != before {
		t.Error("merging empty changed state")
	}
	empty.Merge(&whole)
	if empty.N() != whole.N() || empty.Mean() != whole.Mean() {
		t.Error("merge into empty did not copy")
	}
}

func TestAccumulatorMergeProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		k := int(split) % len(clean)
		var whole, a, b Accumulator
		for i, x := range clean {
			whole.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) < 1e-6 &&
			math.Abs(a.Variance()-whole.Variance()) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStdErrAndCI(t *testing.T) {
	var a Accumulator
	for i := 0; i < 100; i++ {
		a.Add(float64(i % 2)) // variance 0.2525..., mean 0.5
	}
	if a.StdErr() <= 0 {
		t.Error("StdErr should be positive")
	}
	if math.Abs(a.CI95()-1.96*a.StdErr()) > 1e-12 {
		t.Error("CI95 should be 1.96*StdErr")
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(0.5) != 0 || s.Mean() != 0 {
		t.Error("empty sample should give zeros")
	}
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if got := s.Percentile(0); got != 1 {
		t.Errorf("p0 = %v", got)
	}
	if got := s.Percentile(1); got != 100 {
		t.Errorf("p100 = %v", got)
	}
	if got := s.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("median = %v, want 50.5", got)
	}
	if got := s.Percentile(0.95); math.Abs(got-95.05) > 1e-9 {
		t.Errorf("p95 = %v, want 95.05", got)
	}
	if got := s.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	// Adding after a percentile query must re-sort.
	s.Add(0.5)
	if got := s.Percentile(0); got != 0.5 {
		t.Errorf("p0 after add = %v", got)
	}
}

func TestPercentileClamps(t *testing.T) {
	var s Sample
	s.Add(3)
	s.Add(1)
	if s.Percentile(-0.5) != 1 || s.Percentile(2) != 3 {
		t.Error("out-of-range p should clamp")
	}
}

func TestRelativeIncrease(t *testing.T) {
	if got := RelativeIncrease(2, 1); math.Abs(got-100) > 1e-12 {
		t.Errorf("RelativeIncrease(2,1) = %v", got)
	}
	if got := RelativeIncrease(1, 1); got != 0 {
		t.Errorf("RelativeIncrease(1,1) = %v", got)
	}
	if got := RelativeIncrease(0.5, 1); math.Abs(got+50) > 1e-12 {
		t.Errorf("RelativeIncrease(0.5,1) = %v", got)
	}
	if !math.IsNaN(RelativeIncrease(1, 0)) {
		t.Error("zero base should give NaN")
	}
}

func TestAccumulatorString(t *testing.T) {
	var a Accumulator
	a.Add(1)
	a.Add(2)
	if s := a.String(); s == "" {
		t.Error("String empty")
	}
}
