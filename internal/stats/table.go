package stats

import (
	"fmt"
	"io"
	"strings"
)

// Series is one named line of an experiment figure: parallel X (sweep
// parameter) and Y (metric) slices, plus optional per-point error bars.
type Series struct {
	Name string
	X    []float64
	Y    []float64
	Err  []float64 // optional; same length as Y when present
}

// Add appends a point.
func (s *Series) Add(x, y, err float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Err = append(s.Err, err)
}

// Figure is a set of series over a common sweep — the in-memory form of one
// paper figure, renderable as an aligned text table or CSV.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries appends and returns a new named series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// xs returns the union of all X values in first-seen order. Experiment
// sweeps share the X grid, so in practice this is just the grid.
func (f *Figure) xs() []float64 {
	var out []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}

// lookup returns the y (and error) of series s at x.
func lookup(s *Series, x float64) (y, e float64, ok bool) {
	for i, xv := range s.X {
		if xv == x { //repllint:allow float-compare — series x-values are copied verbatim from the grid; exact match intended
			e := 0.0
			if i < len(s.Err) {
				e = s.Err[i]
			}
			return s.Y[i], e, true
		}
	}
	return 0, 0, false
}

// WriteTable renders the figure as an aligned text table, one row per X
// value, one column pair (value ± err) per series.
func (f *Figure) WriteTable(w io.Writer) error {
	xs := f.xs()
	header := []string{f.XLabel}
	for _, s := range f.Series {
		header = append(header, s.Name)
	}
	rows := [][]string{header}
	for _, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, e, ok := lookup(s, x); ok {
				if e > 0 {
					row = append(row, fmt.Sprintf("%.2f ±%.2f", y, e))
				} else {
					row = append(row, fmt.Sprintf("%.2f", y))
				}
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}

	widths := make([]int, len(header))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if f.Title != "" {
		if _, err := fmt.Fprintf(w, "%s  (y: %s)\n", f.Title, f.YLabel); err != nil {
			return err
		}
	}
	for ri, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
		if ri == 0 {
			total := 0
			for _, wd := range widths {
				total += wd + 2
			}
			if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteCSV renders the figure as CSV: x, then per-series value and error
// columns.
func (f *Figure) WriteCSV(w io.Writer) error {
	cols := []string{csvEscape(f.XLabel)}
	for _, s := range f.Series {
		cols = append(cols, csvEscape(s.Name), csvEscape(s.Name+"_err"))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, x := range f.xs() {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, e, ok := lookup(s, x); ok {
				row = append(row, fmt.Sprintf("%g", y), fmt.Sprintf("%g", e))
			} else {
				row = append(row, "", "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// WriteMarkdown renders the figure as a GitHub-flavored Markdown table:
// one row per X value, one column per series (value ±err when an error bar
// is present), headed by the figure title as an H3 and the Y label as a
// caption line.
func (f *Figure) WriteMarkdown(w io.Writer) error {
	if f.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", f.Title); err != nil {
			return err
		}
	}
	if f.YLabel != "" {
		if _, err := fmt.Fprintf(w, "*y: %s*\n\n", f.YLabel); err != nil {
			return err
		}
	}
	cols := []string{mdEscape(f.XLabel)}
	for _, s := range f.Series {
		cols = append(cols, mdEscape(s.Name))
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(cols, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(cols))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, x := range f.xs() {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, e, ok := lookup(s, x); ok {
				if e > 0 {
					row = append(row, fmt.Sprintf("%.2f ±%.2f", y, e))
				} else {
					row = append(row, fmt.Sprintf("%.2f", y))
				}
			} else {
				row = append(row, "–")
			}
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", "\\|")
}
