package stats

import (
	"strings"
	"testing"
)

func buildFigure() *Figure {
	f := &Figure{Title: "Figure 1", XLabel: "storage %", YLabel: "% increase"}
	a := f.AddSeries("ours")
	a.Add(20, 15.0, 1.0)
	a.Add(100, 0.0, 0.0)
	b := f.AddSeries("lru")
	b.Add(20, 18.0, 2.0)
	b.Add(100, 24.0, 1.5)
	return f
}

func TestWriteTable(t *testing.T) {
	f := buildFigure()
	var sb strings.Builder
	if err := f.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 1", "storage %", "ours", "lru", "15.00 ±1.00", "24.00 ±1.50", "0.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 data rows
		t.Errorf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestWriteTableMissingPoint(t *testing.T) {
	f := &Figure{XLabel: "x"}
	a := f.AddSeries("a")
	a.Add(1, 10, 0)
	b := f.AddSeries("b")
	b.Add(2, 20, 0)
	var sb strings.Builder
	if err := f.WriteTable(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-") {
		t.Errorf("missing points should render as '-':\n%s", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	f := buildFigure()
	var sb strings.Builder
	if err := f.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 rows, got %d lines", len(lines))
	}
	if lines[0] != "storage %,ours,ours_err,lru,lru_err" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "20,15,1,18,2") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"plain":      "plain",
		"with,comma": `"with,comma"`,
		`q"uote`:     `"q""uote"`,
		"new\nline":  "\"new\nline\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWriteMarkdown(t *testing.T) {
	f := buildFigure()
	var sb strings.Builder
	if err := f.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### Figure 1", "| storage % | ours | lru |", "| --- | --- | --- |", "| 20 | 15.00 ±1.00 | 18.00 ±2.00 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	f := &Figure{XLabel: "a|b"}
	s := f.AddSeries("x|y")
	s.Add(1, 2, 0)
	var sb strings.Builder
	if err := f.WriteMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `a\|b`) || !strings.Contains(sb.String(), `x\|y`) {
		t.Errorf("pipes not escaped:\n%s", sb.String())
	}
}
