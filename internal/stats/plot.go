package stats

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// plotGlyphs mark the series in a text plot, in order.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// WritePlot renders the figure as a text chart: Y is scaled into `height`
// rows, X into `width` columns, one glyph per series, points connected
// nearest-cell. It complements WriteTable for terminal use — the paper's
// figure *shapes* (crossovers, knees, orderings) are visible at a glance.
func (f *Figure) WritePlot(w io.Writer, width, height int) error {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}

	// Bounds over all series.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range f.Series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			points++
		}
	}
	if points == 0 {
		_, err := fmt.Fprintln(w, "(no data)")
		return err
	}
	if maxX == minX { //repllint:allow float-compare — degenerate-range guard; exact equality is the condition
		maxX = minX + 1
	}
	if maxY == minY { //repllint:allow float-compare — degenerate-range guard; exact equality is the condition
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - minX) / (maxX - minX) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		r := int((maxY - y) / (maxY - minY) * float64(height-1))
		if r < 0 {
			r = 0
		}
		if r >= height {
			r = height - 1
		}
		return r
	}

	for si, s := range f.Series {
		g := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.X {
			if math.IsNaN(s.Y[i]) {
				continue
			}
			grid[row(s.Y[i])][col(s.X[i])] = g
		}
	}

	if f.Title != "" {
		if _, err := fmt.Fprintln(w, f.Title); err != nil {
			return err
		}
	}
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	labelW := len(yTop)
	if len(yBot) > labelW {
		labelW = len(yBot)
	}
	for r := range grid {
		label := strings.Repeat(" ", labelW)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", labelW, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", labelW, yBot)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  %-*g%*g   (x: %s)\n",
		strings.Repeat(" ", labelW), width/2, minX, width-width/2, maxX, f.XLabel); err != nil {
		return err
	}
	var legend []string
	for si, s := range f.Series {
		legend = append(legend, fmt.Sprintf("%c=%s", plotGlyphs[si%len(plotGlyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "%s  %s\n", strings.Repeat(" ", labelW), strings.Join(legend, "  "))
	return err
}
