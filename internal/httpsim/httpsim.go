// Package httpsim is the request-level simulator of the paper's Section 5:
// it draws page requests per site (10,000 each under Table 1) from the
// hot/cold popularity mixture, serves each page over two parallel persistent
// connections — local server and repository — with per-request transfer
// rates and overheads perturbed around the planner's estimates (the §5.1
// model), draws the optional-object follow-up requests, and aggregates
// response-time statistics. An optional fluid-queue mode adds server
// occupancy delays, relaxing the paper's constant-processing-time
// assumption (an extension, benchmarked as an ablation).
package httpsim

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/accesslog"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Decider is the policy under simulation: for each page view it says which
// compulsory objects are served locally, and whether a requested optional
// link is served locally. Implementations may mutate per-site state (the
// LRU baseline does); the simulator guarantees calls for distinct sites
// never run concurrently with each other only if the implementation is
// site-partitioned — which all policies in internal/policies are.
type Decider interface {
	// Name identifies the policy in reports.
	Name() string
	// CompLocal reports, for one view of page j, whether the idx-th
	// compulsory object is downloaded from the local server.
	CompLocal(j workload.PageID, idx int) bool
	// OptLocal reports whether the idx-th optional link of page j — which
	// the simulated user decided to request — is downloaded locally.
	OptLocal(j workload.PageID, idx int) bool
	// BeginPage is called once per page view before the Comp/Opt queries,
	// letting stateful policies (LRU) update their structures.
	BeginPage(j workload.PageID)
}

// Config controls a simulation run.
type Config struct {
	// RequestsPerSite is the number of page requests drawn per site.
	RequestsPerSite int
	// Perturb is the §5.1 estimate-vs-actual deviation model.
	Perturb netsim.PerturbConfig
	// Queueing enables the fluid-queue server-occupancy extension.
	Queueing bool
	// Warmup runs the full request sequence once, unmeasured, before the
	// measured pass — the "ideal" (warm) start for cache-based policies.
	Warmup bool
	// Workers bounds cross-site concurrency; 0 = sites, 1 = sequential.
	Workers int
	// RetainSamples keeps every page response time for percentile queries
	// (costs memory proportional to the request count).
	RetainSamples bool
	// RemoteRedirectPenalty models redirection-based schemes (the paper's
	// Section-6 comparison): when positive, every repository-served HTTP
	// request pays it — the paper's complaint is precisely that "the other
	// schemes need to redirect each HTTP GET request separately", while
	// its own rewrite amortizes one computation over all of a page's
	// objects. The paper's scheme and its ideal-LRU baseline use 0.
	RemoteRedirectPenalty units.Seconds
	// Telemetry, when non-nil, receives per-request latency histograms
	// (httpsim.page_rt_seconds, httpsim.opt_rt_seconds) and chain-split /
	// request counters from the measured pass, so policy comparisons can
	// report distributions rather than only means. The nil default adds no
	// work and no allocation to the request loop.
	Telemetry *telemetry.Registry
	// Outage models partial site failure (the degraded mode of the live
	// cluster's repository fallback). The zero value simulates a perfectly
	// healthy cluster.
	Outage OutageConfig
	// Trace, when non-nil, receives the measured pass's span forest: one
	// "page" root per view with per-chain time splits on the simulator's
	// virtual clock, in the same vocabulary the live webserve client emits.
	// Span IDs draw from a dedicated Split-derived stream and views are
	// appended in deterministic site-then-request order, so equal seeds
	// yield a byte-identical JSONL export (pinned by the trace-golden CI
	// stage). Warmup passes emit nothing.
	Trace *trace.Buffer
	// AccessTap, when non-nil, receives one Observe per measured page view
	// (site, page, view-start seconds on the virtual clock) — the simulated
	// counterpart of the live cluster's access-log tap, feeding the adaptive
	// planner's frequency estimator. Warmup passes are not observed, and the
	// tap never perturbs any random stream, so arming it cannot shift the
	// simulated sequences. Must be safe for concurrent use (sites run in
	// parallel).
	AccessTap accesslog.Tap
}

// OutageConfig is the simulator's degraded mode: each page view finds its
// local site unavailable with probability 1-Availability, in which case the
// whole view — HTML, every compulsory object, every optional request — is
// served by the repository (the paper's always-on root; Eq. 5 degenerates
// to the remote chain) and pays FailoverDelay seconds of detection and
// retry cost. Outage draws come from a dedicated random stream, so enabling
// the mode never perturbs the request sequence policies are compared on.
type OutageConfig struct {
	// Enabled turns the mode on; with it off the other fields are ignored.
	Enabled bool
	// Availability is the probability a page view finds its site up, in
	// [0, 1]. 0 models a repository-only system (every view degraded).
	Availability float64
	// FailoverDelay is added to every degraded view's response time — the
	// cost of discovering the outage and re-routing (timeouts, retries).
	FailoverDelay units.Seconds
}

// Validate rejects unusable outage configs.
func (o *OutageConfig) Validate() error {
	if !o.Enabled {
		return nil
	}
	if o.Availability < 0 || o.Availability > 1 {
		return fmt.Errorf("httpsim: Availability %v outside [0, 1]", o.Availability)
	}
	if o.FailoverDelay < 0 {
		return fmt.Errorf("httpsim: negative FailoverDelay")
	}
	return nil
}

// DefaultConfig returns the paper's simulation parameters for a workload.
func DefaultConfig(w *workload.Workload) Config {
	return Config{
		RequestsPerSite: w.Config.RequestsPerSite,
		Perturb:         netsim.DefaultPerturbConfig(),
	}
}

// Result aggregates a run.
type Result struct {
	Policy string

	// PageRT accumulates Eq. 5 response times, one per page view.
	PageRT stats.Accumulator
	// OptPerView accumulates the total optional-download seconds per page
	// view (zero for views that requested nothing).
	OptPerView stats.Accumulator
	// OptRT accumulates individual optional download times.
	OptRT stats.Accumulator
	// SitePageRT breaks PageRT down per site.
	SitePageRT []stats.Accumulator
	// Samples holds every page response time when Config.RetainSamples.
	Samples stats.Sample

	// LocalRequests / RepoRequests count HTTP requests by server side.
	LocalRequests, RepoRequests int64
	// DegradedViews counts page views served entirely by the repository
	// because their local site was unavailable (Config.Outage).
	DegradedViews int64

	alpha1, alpha2 float64

	// spans is this partial result's site-local span forest; Run merges the
	// partials in site order into Config.Trace so the export order is
	// deterministic despite cross-site concurrency.
	spans []trace.Span
}

// newResult builds an empty result for a workload.
func newResult(policy string, w *workload.Workload) *Result {
	return &Result{
		Policy:     policy,
		SitePageRT: make([]stats.Accumulator, w.NumSites()),
		alpha1:     w.Config.Alpha1,
		alpha2:     w.Config.Alpha2,
	}
}

// CompositeMean returns the headline response-time metric: the α-weighted
// blend of the mean page retrieval time and the mean optional time per view
// (DESIGN.md §3.9), matching the weights of the planner's objective.
func (r *Result) CompositeMean() float64 {
	den := r.alpha1 + r.alpha2
	if den == 0 {
		return r.PageRT.Mean()
	}
	return (r.alpha1*r.PageRT.Mean() + r.alpha2*r.OptPerView.Mean()) / den
}

// pagePicker draws pages of one site proportionally to f(W_j).
type pagePicker struct {
	pages []workload.PageID
	cum   []float64 // cumulative frequency
}

func newPagePicker(w *workload.Workload, i workload.SiteID) (*pagePicker, error) {
	pages := w.Sites[i].Pages
	if len(pages) == 0 {
		return nil, fmt.Errorf("httpsim: site %d hosts no pages", i)
	}
	cum := make([]float64, len(pages))
	total := 0.0
	for idx, pid := range pages {
		total += float64(w.Pages[pid].Freq)
		cum[idx] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("httpsim: site %d has zero total frequency", i)
	}
	return &pagePicker{pages: pages, cum: cum}, nil
}

func (pp *pagePicker) draw(s *rng.Stream) workload.PageID {
	u := s.Float64() * pp.cum[len(pp.cum)-1]
	idx := sort.SearchFloat64s(pp.cum, u)
	if idx >= len(pp.pages) {
		idx = len(pp.pages) - 1
	}
	return pp.pages[idx]
}

// Run simulates the policy over the workload. The stream seeds everything:
// two runs with equal (workload, estimates, config, stream seed) produce
// identical request sequences and perturbations regardless of the policy,
// so policies are compared on exactly the same traffic.
func Run(w *workload.Workload, est *netsim.Estimates, dec Decider, cfg Config, stream *rng.Stream) (*Result, error) {
	if cfg.RequestsPerSite <= 0 {
		return nil, fmt.Errorf("httpsim: RequestsPerSite must be positive, got %d", cfg.RequestsPerSite)
	}
	if err := cfg.Perturb.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Outage.Validate(); err != nil {
		return nil, err
	}
	if len(est.Sites) != w.NumSites() {
		return nil, fmt.Errorf("httpsim: %d estimates for %d sites", len(est.Sites), w.NumSites())
	}

	res := &Result{
		Policy:     dec.Name(),
		SitePageRT: make([]stats.Accumulator, w.NumSites()),
		alpha1:     w.Config.Alpha1,
		alpha2:     w.Config.Alpha2,
	}

	workers := cfg.Workers
	if workers <= 0 || workers > w.NumSites() {
		workers = w.NumSites()
	}

	type siteOut struct {
		site    int
		partial *Result
		err     error
	}
	outs := make([]siteOut, w.NumSites())

	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < w.NumSites(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			partial, err := runSite(w, est, dec, cfg, stream.Split(uint64(i)), workload.SiteID(i))
			outs[i] = siteOut{site: i, partial: partial, err: err}
		}(i)
	}
	wg.Wait()

	for _, o := range outs {
		if o.err != nil {
			return nil, o.err
		}
		res.PageRT.Merge(&o.partial.PageRT)
		res.OptPerView.Merge(&o.partial.OptPerView)
		res.OptRT.Merge(&o.partial.OptRT)
		res.SitePageRT[o.site] = o.partial.SitePageRT[o.site]
		res.LocalRequests += o.partial.LocalRequests
		res.RepoRequests += o.partial.RepoRequests
		res.DegradedViews += o.partial.DegradedViews
		cfg.Trace.Add(o.partial.spans...)
		if cfg.RetainSamples {
			for _, v := range o.partial.Samples.Values() {
				res.Samples.Add(v)
			}
		}
	}
	return res, nil
}

// runSite simulates one site's request stream.
func runSite(w *workload.Workload, est *netsim.Estimates, dec Decider, cfg Config, stream *rng.Stream, i workload.SiteID) (*Result, error) {
	picker, err := newPagePicker(w, i)
	if err != nil {
		return nil, err
	}

	partial := &Result{SitePageRT: make([]stats.Accumulator, w.NumSites()), alpha1: w.Config.Alpha1, alpha2: w.Config.Alpha2}

	if cfg.Warmup {
		warmCfg := cfg
		warmCfg.Warmup = false
		// Identical sequence (same sub-streams), metrics discarded.
		if err := simulatePass(w, est, dec, warmCfg, stream, i, picker, nil); err != nil {
			return nil, err
		}
	}
	if err := simulatePass(w, est, dec, cfg, stream, i, picker, partial); err != nil {
		return nil, err
	}
	return partial, nil
}

// Stream labels for the per-site request simulation. Record (trace.go)
// derives its page/perturb/opt streams with the same labels so a recorded
// trace pins exactly the sequences the live simulator would draw. The
// values are load-bearing: Split folds them into the seed derivation, so
// renumbering silently changes every golden result.
const (
	simPageStream uint64 = iota + 1
	simPerturbStream
	simOptStream
	simArrivalStream
	simOutageStream
	// simTraceStream feeds span-ID generation only; Config.Trace therefore
	// cannot shift the page/perturb/optional/outage sequences.
	simTraceStream
)

// simulatePass runs RequestsPerSite page views; when out is nil the pass is
// a warmup (state advances, nothing recorded).
func simulatePass(w *workload.Workload, est *netsim.Estimates, dec Decider, cfg Config, stream *rng.Stream, i workload.SiteID, picker *pagePicker, out *Result) error {
	pageStream := stream.Split(simPageStream)
	perturbStream := stream.Split(simPerturbStream)
	optStream := stream.Split(simOptStream)
	arrivalStream := stream.Split(simArrivalStream)
	// Outage draws come from their own stream so enabling degraded mode
	// cannot shift the page/perturbation/optional sequences.
	outageStream := stream.Split(simOutageStream)

	perturber, err := netsim.NewPerturber(cfg.Perturb, est.Site(int(i)), perturbStream)
	if err != nil {
		return err
	}

	// Telemetry instruments, fetched once per pass; all nil (no-op, zero
	// allocation per request) when disabled or during warmup. Sites run
	// concurrently, so the instruments' atomics are the synchronization.
	// The span emitter materializes the measured pass as a trace forest;
	// its ID stream is Split-derived, so arming it never perturbs the
	// request sequences policies are compared on.
	var em *spanEmitter
	if out != nil && cfg.Trace != nil {
		em = &spanEmitter{ids: trace.NewIDGen(stream.Split(simTraceStream)), site: int(i)}
	}

	var pageHist, optHist *telemetry.Histogram
	var cLocalReq, cRepoReq, cSplit, cLocalOnly, cRemoteOnly, cDegraded *telemetry.Counter
	if out != nil {
		reg := cfg.Telemetry
		pageHist = reg.Histogram("httpsim.page_rt_seconds", telemetry.LatencyBuckets)
		optHist = reg.Histogram("httpsim.opt_rt_seconds", telemetry.LatencyBuckets)
		cLocalReq = reg.Counter("httpsim.requests.local")
		cRepoReq = reg.Counter("httpsim.requests.repo")
		cSplit = reg.Counter("httpsim.views.split")
		cLocalOnly = reg.Counter("httpsim.views.local_only")
		cRemoteOnly = reg.Counter("httpsim.views.remote_only")
		cDegraded = reg.Counter("httpsim.views.degraded")
	}

	// Fluid queues for the occupancy extension; the repository queue is
	// per-site here (each site's runner is independent), which models the
	// repository as horizontally partitioned per region — the conservative
	// reading for an "infinite capacity" repository, and documented as part
	// of the extension.
	var siteQ, repoQ *fluidQueue
	var clock float64
	var interArrival float64
	// tclock is the span timeline when queueing is off: views serialize at
	// their own response times, which keeps Start values deterministic.
	var tclock float64
	if cfg.Queueing {
		siteCap := float64(w.Sites[i].Capacity)
		repoCap := float64(w.Config.RepoCapacity)
		siteQ = newFluidQueue(siteCap)
		repoQ = newFluidQueue(repoCap)
		totalRate := 0.0
		for _, pid := range w.Sites[i].Pages {
			totalRate += float64(w.Pages[pid].Freq)
		}
		interArrival = 1 / totalRate
	}

	for n := 0; n < cfg.RequestsPerSite; n++ {
		j := picker.draw(pageStream)
		pg := &w.Pages[j]
		dec.BeginPage(j)

		// Per-request actual network attributes — always drawn in the same
		// order so different policies see identical conditions.
		localRate := perturber.LocalRate()
		repoRate := perturber.RepoRate()
		localOvhd := perturber.LocalOvhd()
		repoOvhd := perturber.RepoOvhd()

		// Degraded mode: with the site down for this view, every transfer —
		// the HTML included — degenerates to the repository chain.
		siteUp := true
		if cfg.Outage.Enabled {
			siteUp = outageStream.Bool(cfg.Outage.Availability)
		}

		var localBytes, remoteBytes units.ByteSize
		var localReqs, repoReqs int64
		if siteUp {
			localBytes = pg.HTMLSize
			localReqs = 1
		} else {
			remoteBytes = pg.HTMLSize
			repoReqs = 1
		}
		for idx, k := range pg.Compulsory {
			// The decider is always consulted so stateful policies (LRU)
			// evolve identically whether or not the site is up.
			if dec.CompLocal(j, idx) && siteUp {
				localBytes += w.ObjectSize(k)
				localReqs++
			} else {
				remoteBytes += w.ObjectSize(k)
				repoReqs++
			}
		}

		var localT, remoteT units.Seconds
		var localXfer, remoteXfer, remoteOvhdEff units.Seconds
		if localReqs > 0 {
			localXfer = localRate.TransferTime(localBytes)
			localT = localOvhd + localXfer
		}
		if repoReqs > 0 {
			remoteXfer = repoRate.TransferTime(remoteBytes)
			penalty := units.Seconds(float64(cfg.RemoteRedirectPenalty) * float64(repoReqs))
			// Addition order matches the pre-instrumentation expression so
			// golden simulation results stay bit-identical.
			remoteT = repoOvhd + remoteXfer + penalty
			remoteOvhdEff = repoOvhd + penalty
		}
		if !siteUp {
			remoteT += cfg.Outage.FailoverDelay
		}

		var localQD, remoteQD units.Seconds
		if cfg.Queueing {
			clock += arrivalStream.Uniform(0, 2*interArrival) // mean 1/rate
			if localReqs > 0 {
				localQD = units.Seconds(siteQ.delay(clock, float64(localReqs)))
				localT += localQD
			}
			if repoReqs > 0 {
				remoteQD = units.Seconds(repoQ.delay(clock, float64(repoReqs)))
				remoteT += remoteQD
			}
		}

		pageRT := float64(units.MaxSeconds(localT, remoteT))
		viewStart := tclock
		if cfg.Queueing {
			viewStart = clock
		}
		if out != nil && cfg.AccessTap != nil {
			cfg.AccessTap.Observe(i, j, viewStart)
		}
		var vTID trace.TraceID
		var vRoot trace.SpanID
		if em != nil {
			vTID, vRoot = em.emitView(j, viewStart, pageRT, siteUp, cfg.Outage.FailoverDelay,
				&viewTiming{total: localT, transfer: localXfer, queue: localQD, overhead: localOvhd,
					bytes: localBytes, requests: localReqs},
				&viewTiming{total: remoteT, transfer: remoteXfer, queue: remoteQD, overhead: remoteOvhdEff,
					bytes: remoteBytes, requests: repoReqs})
		}
		pageHist.Observe(pageRT)
		// Chain-split classification of the compulsory set (the HTML
		// itself is local when the site is up, so localReqs > 1 means
		// local objects). Degraded views form their own class.
		switch {
		case !siteUp:
			cDegraded.Inc()
		case repoReqs > 0 && localReqs > 1:
			cSplit.Inc()
		case repoReqs > 0:
			cRemoteOnly.Inc()
		default:
			cLocalOnly.Inc()
		}

		// Optional follow-ups: the user requests optional objects with the
		// page's interest probability, then picks the configured fraction
		// of the links, uniformly, each over a fresh connection (Eq. 6).
		optTotal := 0.0
		if len(pg.Optional) > 0 && optStream.Bool(w.Config.OptionalInterestProb) {
			want := int(float64(len(pg.Optional))*w.Config.OptionalRequestFrac + 0.5)
			if want < 1 {
				want = 1
			}
			for _, idx := range optStream.SampleWithoutReplacement(len(pg.Optional), want) {
				size := w.ObjectSize(pg.Optional[idx].Object)
				// Fresh per-download draws for both sides keep the stream
				// consumption policy-independent.
				lr, rr := perturber.LocalRate(), perturber.RepoRate()
				lo, ro := perturber.LocalOvhd(), perturber.RepoOvhd()
				optLocal := dec.OptLocal(j, idx) && siteUp
				var t units.Seconds
				if optLocal {
					t = lo + lr.TransferTime(size)
					localReqs++
				} else {
					t = ro + rr.TransferTime(size) + cfg.RemoteRedirectPenalty
					repoReqs++
				}
				if cfg.Queueing {
					if optLocal {
						t += units.Seconds(siteQ.delay(clock, 1))
					} else {
						t += units.Seconds(repoQ.delay(clock, 1))
					}
				}
				if em != nil {
					chain := "remote"
					if optLocal {
						chain = "local"
					}
					// Optionals serialize after the page completes.
					em.emitOpt(vTID, vRoot, pg.Optional[idx].Object, chain, viewStart+pageRT+optTotal, t)
				}
				optTotal += float64(t)
				optHist.Observe(float64(t))
				if out != nil {
					out.OptRT.Add(float64(t))
				}
			}
		}

		cLocalReq.Add(localReqs)
		cRepoReq.Add(repoReqs)
		tclock += pageRT + optTotal
		if out != nil {
			out.PageRT.Add(pageRT)
			out.SitePageRT[i].Add(pageRT)
			out.OptPerView.Add(optTotal)
			out.LocalRequests += localReqs
			out.RepoRequests += repoReqs
			if !siteUp {
				out.DegradedViews++
			}
			if cfg.RetainSamples {
				out.Samples.Add(pageRT)
			}
		}
	}
	if em != nil {
		out.spans = em.spans
	}
	return nil
}
