package httpsim

import (
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// spanEmitter materializes one site's measured pass as a span forest on the
// simulator's virtual clock: one "page" root per view, a "chain" span per
// Eq. 5 side carrying the transfer/queue/overhead split, a "failover" span
// on degraded views, and an "opt" span per optional follow-up. The same
// vocabulary the live client emits (internal/trace), so one analyzer reads
// both. IDs come from a dedicated Split-derived stream, and the forest is
// appended in view order — the whole export is a pure function of the run
// seed, which the trace-golden CI stage pins byte for byte.
type spanEmitter struct {
	ids   *trace.IDGen
	site  int
	spans []trace.Span
}

// viewTiming carries one chain's components, pre-split by cause.
type viewTiming struct {
	total    units.Seconds
	transfer units.Seconds
	queue    units.Seconds
	overhead units.Seconds
	bytes    units.ByteSize
	requests int64
}

// emitView appends the span tree of one page view and returns the root
// span's trace ID so optional follow-ups can parent under it.
func (em *spanEmitter) emitView(j workload.PageID, start, pageRT float64, siteUp bool, failover units.Seconds, local, remote *viewTiming) (trace.TraceID, trace.SpanID) {
	tid := em.ids.TraceID()
	root := trace.Span{
		Trace: tid,
		ID:    em.ids.SpanID(),
		Name:  trace.SpanPage,
		Kind:  trace.KindSim,
		Start: start,
		Dur:   pageRT,
		Attrs: []trace.Attr{
			trace.I(trace.AttrPage, int64(j)),
			trace.I(trace.AttrSite, int64(em.site)),
		},
	}
	if !siteUp {
		root.Attrs = append(root.Attrs, trace.A(trace.AttrDegraded, "true"))
	}
	em.spans = append(em.spans, root)
	if local.requests > 0 {
		em.emitChain(tid, root.ID, "local", start, local)
	}
	if remote.requests > 0 {
		chainID := em.emitChain(tid, root.ID, "remote", start, remote)
		if !siteUp && failover > 0 {
			em.spans = append(em.spans, trace.Span{
				Trace:  tid,
				ID:     em.ids.SpanID(),
				Parent: chainID,
				Name:   trace.SpanFailover,
				Kind:   trace.KindSim,
				Start:  start,
				Dur:    float64(failover),
			})
		}
	}
	return tid, root.ID
}

// emitChain appends one Eq. 5 chain span with its time split.
func (em *spanEmitter) emitChain(tid trace.TraceID, parent trace.SpanID, kind string, start float64, t *viewTiming) trace.SpanID {
	id := em.ids.SpanID()
	em.spans = append(em.spans, trace.Span{
		Trace:  tid,
		ID:     id,
		Parent: parent,
		Name:   trace.SpanChain,
		Kind:   trace.KindSim,
		Start:  start,
		Dur:    float64(t.total),
		Attrs: []trace.Attr{
			trace.A(trace.AttrChain, kind),
			trace.I(trace.AttrBytes, int64(t.bytes)),
			trace.I("requests", t.requests),
			trace.F(trace.AttrXferS, float64(t.transfer)),
			trace.F(trace.AttrQueueS, float64(t.queue)),
			trace.F(trace.AttrOvhdS, float64(t.overhead)),
		},
	})
	return id
}

// emitOpt appends one optional-download span under the view's root.
func (em *spanEmitter) emitOpt(tid trace.TraceID, parent trace.SpanID, k workload.ObjectID, chain string, start float64, dur units.Seconds) {
	em.spans = append(em.spans, trace.Span{
		Trace:  tid,
		ID:     em.ids.SpanID(),
		Parent: parent,
		Name:   trace.SpanOpt,
		Kind:   trace.KindSim,
		Start:  start,
		Dur:    float64(dur),
		Attrs: []trace.Attr{
			trace.I(trace.AttrObject, int64(k)),
			trace.A(trace.AttrChain, chain),
		},
	})
}
