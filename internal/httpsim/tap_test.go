package httpsim

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/estimate"
	"repro/internal/policies"
	"repro/internal/rng"
)

// TestAccessTapDeterministic pins the simulator half of the estimator
// determinism property: the same seed and the same config must drive the
// tap to a byte-identical estimator snapshot, even though sites observe
// concurrently (the estimator shards per site, and within a site the
// simulator is sequential).
func TestAccessTapDeterministic(t *testing.T) {
	w, netEst := simEnv(t, 44)
	var encs [][]byte
	for rep := 0; rep < 2; rep++ {
		est, err := estimate.New(w, estimate.Config{HalfLife: 60})
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig(w)
		cfg.RequestsPerSite = 500
		cfg.AccessTap = est
		if _, err := Run(w, netEst, policies.NewLocal(w), cfg, rng.New(3)); err != nil {
			t.Fatal(err)
		}
		enc, err := est.Snapshot(1e6).Encode()
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enc)
	}
	if !bytes.Equal(encs[0], encs[1]) {
		t.Fatal("same seed + same sim config produced different estimator snapshots")
	}
}

// TestAccessTapDoesNotPerturbSim verifies arming the tap cannot shift the
// simulated sequences: results with and without the tap are identical.
func TestAccessTapDoesNotPerturbSim(t *testing.T) {
	w, netEst := simEnv(t, 45)
	run := func(withTap bool) *Result {
		cfg := DefaultConfig(w)
		cfg.RequestsPerSite = 300
		if withTap {
			est, err := estimate.New(w, estimate.Config{HalfLife: 60})
			if err != nil {
				t.Fatal(err)
			}
			cfg.AccessTap = est
		}
		res, err := Run(w, netEst, policies.NewLocal(w), cfg, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain, tapped := run(false), run(true)
	if plain.PageRT.N() != tapped.PageRT.N() || math.Abs(plain.PageRT.Mean()-tapped.PageRT.Mean()) > 0 {
		t.Fatalf("tap perturbed the simulation: mean %.9f vs %.9f", plain.PageRT.Mean(), tapped.PageRT.Mean())
	}
}

// TestAccessTapCountsViews: the tap sees exactly RequestsPerSite views per
// site on the measured pass and nothing from warmup.
func TestAccessTapCountsViews(t *testing.T) {
	w, netEst := simEnv(t, 46)
	est, err := estimate.New(w, estimate.Config{HalfLife: 1e12})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 250
	cfg.Warmup = true // warmup pass must not be observed
	cfg.AccessTap = est
	if _, err := Run(w, netEst, policies.NewLocal(w), cfg, rng.New(12)); err != nil {
		t.Fatal(err)
	}
	snap := est.Snapshot(1e6)
	for _, se := range snap.Sites {
		var total float64
		for _, pw := range se.Pages {
			total += pw.Weight
		}
		if got := int64(total + 0.5); got != 250 {
			t.Errorf("site %d: tap observed %d views, want 250", se.Site, got)
		}
	}
}
