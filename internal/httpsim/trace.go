package httpsim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/units"
	"repro/internal/workload"
)

// TraceEvent is one page view in a recorded request trace: the page, the
// optional links the user requested (indices into the page's Optional
// list), and the actual per-request network attributes drawn for it. A
// trace pins *traffic and network conditions*; policies replayed over it
// decide only the local/remote split.
type TraceEvent struct {
	Page      workload.PageID `json:"page"`
	Optional  []int           `json:"optional,omitempty"`
	LocalRate units.Rate      `json:"localRate"`
	RepoRate  units.Rate      `json:"repoRate"`
	LocalOvhd units.Seconds   `json:"localOvhd"`
	RepoOvhd  units.Seconds   `json:"repoOvhd"`
	// Per-optional-download draws, parallel to Optional (local and repo
	// variants so the replay is policy-independent).
	OptLocalRate []units.Rate    `json:"optLocalRate,omitempty"`
	OptRepoRate  []units.Rate    `json:"optRepoRate,omitempty"`
	OptLocalOvhd []units.Seconds `json:"optLocalOvhd,omitempty"`
	OptRepoOvhd  []units.Seconds `json:"optRepoOvhd,omitempty"`
}

// Trace is a per-site recorded request sequence.
type Trace struct {
	NumSites int            `json:"numSites"`
	NumPages int            `json:"numPages"`
	Events   [][]TraceEvent `json:"events"` // indexed by site
}

// Record draws a trace for the workload using the same distributions the
// live simulator uses: pages by popularity, optional requests by the
// interest/fraction model, and per-request §5.1 perturbations around the
// estimates. Replaying any policy over it with Replay yields exactly what
// Run would have measured for that (workload, estimates, config, seed).
func Record(w *workload.Workload, est *netsim.Estimates, cfg Config, stream *rng.Stream) (*Trace, error) {
	if cfg.RequestsPerSite <= 0 {
		return nil, fmt.Errorf("httpsim: RequestsPerSite must be positive, got %d", cfg.RequestsPerSite)
	}
	if err := cfg.Perturb.Validate(); err != nil {
		return nil, err
	}
	if len(est.Sites) != w.NumSites() {
		return nil, fmt.Errorf("httpsim: %d estimates for %d sites", len(est.Sites), w.NumSites())
	}
	tr := &Trace{
		NumSites: w.NumSites(),
		NumPages: w.NumPages(),
		Events:   make([][]TraceEvent, w.NumSites()),
	}
	for i := 0; i < w.NumSites(); i++ {
		site := workload.SiteID(i)
		siteStream := stream.Split(uint64(i))
		pageStream := siteStream.Split(simPageStream)
		perturbStream := siteStream.Split(simPerturbStream)
		optStream := siteStream.Split(simOptStream)

		picker, err := newPagePicker(w, site)
		if err != nil {
			return nil, err
		}
		perturber, err := netsim.NewPerturber(cfg.Perturb, est.Site(i), perturbStream)
		if err != nil {
			return nil, err
		}

		events := make([]TraceEvent, 0, cfg.RequestsPerSite)
		for n := 0; n < cfg.RequestsPerSite; n++ {
			j := picker.draw(pageStream)
			pg := &w.Pages[j]
			ev := TraceEvent{
				Page:      j,
				LocalRate: perturber.LocalRate(),
				RepoRate:  perturber.RepoRate(),
				LocalOvhd: perturber.LocalOvhd(),
				RepoOvhd:  perturber.RepoOvhd(),
			}
			if len(pg.Optional) > 0 && optStream.Bool(w.Config.OptionalInterestProb) {
				want := int(float64(len(pg.Optional))*w.Config.OptionalRequestFrac + 0.5)
				if want < 1 {
					want = 1
				}
				ev.Optional = optStream.SampleWithoutReplacement(len(pg.Optional), want)
				for range ev.Optional {
					ev.OptLocalRate = append(ev.OptLocalRate, perturber.LocalRate())
					ev.OptRepoRate = append(ev.OptRepoRate, perturber.RepoRate())
					ev.OptLocalOvhd = append(ev.OptLocalOvhd, perturber.LocalOvhd())
					ev.OptRepoOvhd = append(ev.OptRepoOvhd, perturber.RepoOvhd())
				}
			}
			events = append(events, ev)
		}
		tr.Events[i] = events
	}
	return tr, nil
}

// Validate checks a trace against a workload.
func (tr *Trace) Validate(w *workload.Workload) error {
	if tr.NumSites != w.NumSites() || tr.NumPages != w.NumPages() {
		return fmt.Errorf("httpsim: trace shaped (%d sites, %d pages) for workload (%d, %d)",
			tr.NumSites, tr.NumPages, w.NumSites(), w.NumPages())
	}
	if len(tr.Events) != w.NumSites() {
		return fmt.Errorf("httpsim: trace has %d event lists for %d sites", len(tr.Events), w.NumSites())
	}
	for i, events := range tr.Events {
		for n, ev := range events {
			if ev.Page < 0 || int(ev.Page) >= w.NumPages() {
				return fmt.Errorf("httpsim: site %d event %d references page %d", i, n, ev.Page)
			}
			pg := &w.Pages[ev.Page]
			if pg.Site != workload.SiteID(i) {
				return fmt.Errorf("httpsim: site %d event %d requests page %d hosted elsewhere", i, n, ev.Page)
			}
			if len(ev.OptLocalRate) != len(ev.Optional) || len(ev.OptRepoRate) != len(ev.Optional) ||
				len(ev.OptLocalOvhd) != len(ev.Optional) || len(ev.OptRepoOvhd) != len(ev.Optional) {
				return fmt.Errorf("httpsim: site %d event %d has inconsistent optional draws", i, n)
			}
			for _, idx := range ev.Optional {
				if idx < 0 || idx >= len(pg.Optional) {
					return fmt.Errorf("httpsim: site %d event %d optional index %d out of range", i, n, idx)
				}
			}
			if ev.LocalRate <= 0 || ev.RepoRate <= 0 {
				return fmt.Errorf("httpsim: site %d event %d has non-positive rates", i, n)
			}
		}
	}
	return nil
}

// Replay measures a policy over a recorded trace. Stateful policies see the
// views in recorded order per site.
func Replay(w *workload.Workload, tr *Trace, dec Decider) (*Result, error) {
	if err := tr.Validate(w); err != nil {
		return nil, err
	}
	out := newResult(dec.Name(), w)
	for i, events := range tr.Events {
		site := workload.SiteID(i)
		for _, ev := range events {
			j := ev.Page
			pg := &w.Pages[j]
			dec.BeginPage(j)

			localBytes := pg.HTMLSize
			var remoteBytes units.ByteSize
			localReqs, repoReqs := int64(1), int64(0)
			for idx, k := range pg.Compulsory {
				if dec.CompLocal(j, idx) {
					localBytes += w.ObjectSize(k)
					localReqs++
				} else {
					remoteBytes += w.ObjectSize(k)
					repoReqs++
				}
			}
			localT := ev.LocalOvhd + ev.LocalRate.TransferTime(localBytes)
			var remoteT units.Seconds
			if repoReqs > 0 {
				remoteT = ev.RepoOvhd + ev.RepoRate.TransferTime(remoteBytes)
			}
			pageRT := float64(units.MaxSeconds(localT, remoteT))

			optTotal := 0.0
			for oi, idx := range ev.Optional {
				size := w.ObjectSize(pg.Optional[idx].Object)
				var t units.Seconds
				if dec.OptLocal(j, idx) {
					t = ev.OptLocalOvhd[oi] + ev.OptLocalRate[oi].TransferTime(size)
					localReqs++
				} else {
					t = ev.OptRepoOvhd[oi] + ev.OptRepoRate[oi].TransferTime(size)
					repoReqs++
				}
				optTotal += float64(t)
				out.OptRT.Add(float64(t))
			}

			out.PageRT.Add(pageRT)
			out.SitePageRT[site].Add(pageRT)
			out.OptPerView.Add(optTotal)
			out.LocalRequests += localReqs
			out.RepoRequests += repoReqs
		}
	}
	return out, nil
}

// Encode writes the trace as JSON.
func (tr *Trace) Encode(dst io.Writer) error {
	if err := json.NewEncoder(dst).Encode(tr); err != nil {
		return fmt.Errorf("httpsim: encode trace: %w", err)
	}
	return nil
}

// DecodeTrace reads and validates a trace for the workload.
func DecodeTrace(w *workload.Workload, src io.Reader) (*Trace, error) {
	var tr Trace
	if err := json.NewDecoder(src).Decode(&tr); err != nil {
		return nil, fmt.Errorf("httpsim: decode trace: %w", err)
	}
	if err := tr.Validate(w); err != nil {
		return nil, err
	}
	return &tr, nil
}

// SaveFile writes the trace to path.
func (tr *Trace) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("httpsim: %w", err)
	}
	bw := bufio.NewWriter(f)
	if err := tr.Encode(bw); err != nil {
		_ = f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		_ = f.Close()
		return fmt.Errorf("httpsim: %w", err)
	}
	return f.Close()
}

// LoadTraceFile reads a trace for the workload from path.
func LoadTraceFile(w *workload.Workload, path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("httpsim: %w", err)
	}
	defer f.Close()
	return DecodeTrace(w, bufio.NewReader(f))
}
