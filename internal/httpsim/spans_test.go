package httpsim

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/trace"
)

// traceRun runs the simulator with tracing armed and returns the span
// forest's JSONL export.
func traceRun(t *testing.T, seed uint64, queueing, warmup bool) ([]trace.Span, []byte) {
	t.Helper()
	w, est := simEnv(t, 41)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 100
	cfg.Queueing = queueing
	cfg.Warmup = warmup
	cfg.Trace = trace.NewBuffer(0)
	if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(seed)); err != nil {
		t.Fatal(err)
	}
	spans := cfg.Trace.Spans()
	var buf bytes.Buffer
	if err := trace.WriteJSONL(&buf, spans); err != nil {
		t.Fatal(err)
	}
	return spans, buf.Bytes()
}

// TestTraceGolden pins the tentpole determinism guarantee: the same seed
// yields a byte-identical span-forest export, across runs and despite
// cross-site concurrency. The CI trace-golden stage re-checks this from a
// cold process.
func TestTraceGolden(t *testing.T) {
	_, a := traceRun(t, 7, false, false)
	_, b := traceRun(t, 7, false, false)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different span-forest exports")
	}
	_, c := traceRun(t, 8, false, false)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical span forests")
	}
	// Warmup must not change the measured pass's forest.
	_, d := traceRun(t, 7, false, true)
	if !bytes.Equal(a, d) {
		t.Fatal("warmup pass leaked spans into the measured forest")
	}
}

// TestTraceSpanShape validates the emitted tree: every view has a page
// root whose duration equals the Eq. 5 max of its chains, and every chain
// span's transfer/queue/overhead split sums to its duration.
func TestTraceSpanShape(t *testing.T) {
	spans, _ := traceRun(t, 7, true, false)
	if len(spans) == 0 {
		t.Fatal("no spans emitted")
	}
	roots := make(map[trace.TraceID]*trace.Span)
	for i := range spans {
		s := &spans[i]
		if s.Name == trace.SpanPage {
			if s.Parent != 0 {
				t.Fatalf("page span has parent: %+v", s)
			}
			roots[s.Trace] = s
		}
	}
	w, _ := simEnv(t, 41)
	wantViews := 100 * w.NumSites()
	if len(roots) != wantViews {
		t.Fatalf("got %d page roots, want %d", len(roots), wantViews)
	}
	chains := 0
	for i := range spans {
		s := &spans[i]
		if s.Name != trace.SpanChain {
			continue
		}
		chains++
		root := roots[s.Trace]
		if root == nil || s.Parent != root.ID {
			t.Fatalf("chain not parented under its page root: %+v", s)
		}
		xfer, _ := strconv.ParseFloat(s.Attr(trace.AttrXferS), 64)
		queue, _ := strconv.ParseFloat(s.Attr(trace.AttrQueueS), 64)
		ovhd, _ := strconv.ParseFloat(s.Attr(trace.AttrOvhdS), 64)
		if diff := math.Abs(xfer + queue + ovhd - s.Dur); diff > 1e-9 {
			t.Fatalf("chain split %g+%g+%g != dur %g: %+v", xfer, queue, ovhd, s.Dur, s)
		}
		if k := s.Attr(trace.AttrChain); k != "local" && k != "remote" {
			t.Fatalf("chain kind %q", k)
		}
	}
	if chains < wantViews {
		t.Fatalf("only %d chain spans for %d views", chains, wantViews)
	}

	// The analyzer reads the forest directly: observed D per trace is the
	// root duration, and the winner is the max chain.
	a := trace.Analyze(spans)
	if a.Traces != wantViews {
		t.Fatalf("Analyze saw %d traces, want %d", a.Traces, wantViews)
	}
	if a.LocalWins+a.RemoteWins != wantViews {
		t.Fatalf("wins %d+%d != views %d", a.LocalWins, a.RemoteWins, wantViews)
	}
	if a.Queue <= 0 {
		t.Fatal("queueing run recorded no queue time")
	}
}

// TestTraceDegradedViews checks outage runs mark degraded roots and emit
// failover spans the analyzer books under retry/backoff time.
func TestTraceDegradedViews(t *testing.T) {
	w, est := simEnv(t, 41)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 100
	cfg.Outage = OutageConfig{Enabled: true, Availability: 0.5, FailoverDelay: 2.5}
	cfg.Trace = trace.NewBuffer(0)
	res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedViews == 0 {
		t.Fatal("no degraded views at 50% availability")
	}
	a := trace.Analyze(cfg.Trace.Spans())
	if int64(a.DegradedViews) != res.DegradedViews {
		t.Fatalf("trace says %d degraded views, result says %d", a.DegradedViews, res.DegradedViews)
	}
	if a.RetryBackoff < 2.5*float64(res.DegradedViews) {
		t.Fatalf("failover time %g < %g", a.RetryBackoff, 2.5*float64(res.DegradedViews))
	}
}
