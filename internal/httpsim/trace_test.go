package httpsim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/policies"
	"repro/internal/rng"
)

func TestRecordReplayMatchesRun(t *testing.T) {
	// Replaying a recorded trace must reproduce Run's measurements exactly
	// (same seeds, no queueing, no warmup).
	w, est := simEnv(t, 81)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	cfg.Workers = 1

	tr, err := Record(w, est, cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, mk := range []func() Decider{
		func() Decider { return policies.NewLocal(w) },
		func() Decider { return policies.NewRemote(w) },
	} {
		live, err := Run(w, est, mk(), cfg, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		replayed, err := Replay(w, tr, mk())
		if err != nil {
			t.Fatal(err)
		}
		if live.PageRT.N() != replayed.PageRT.N() {
			t.Fatalf("%s: view counts %d vs %d", live.Policy, live.PageRT.N(), replayed.PageRT.N())
		}
		if math.Abs(live.PageRT.Mean()-replayed.PageRT.Mean()) > 1e-9 {
			t.Errorf("%s: mean page RT live %v vs replay %v", live.Policy, live.PageRT.Mean(), replayed.PageRT.Mean())
		}
		if math.Abs(live.OptPerView.Mean()-replayed.OptPerView.Mean()) > 1e-9 {
			t.Errorf("%s: optional means differ", live.Policy)
		}
		if live.LocalRequests != replayed.LocalRequests || live.RepoRequests != replayed.RepoRequests {
			t.Errorf("%s: request counters differ", live.Policy)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	w, est := simEnv(t, 82)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 50
	tr, err := Record(w, est, cfg, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeTrace(w, &buf)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Replay(w, tr, policies.NewLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(w, got, policies.NewLocal(w))
	if err != nil {
		t.Fatal(err)
	}
	if a.PageRT.Mean() != b.PageRT.Mean() {
		t.Error("decoded trace replays differently")
	}
}

func TestTraceSaveLoadFile(t *testing.T) {
	w, est := simEnv(t, 83)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 30
	tr, err := Record(w, est, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.json"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceFile(w, path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTraceFile(w, t.TempDir()+"/nope.json"); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTraceValidation(t *testing.T) {
	w, est := simEnv(t, 84)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 20
	tr, err := Record(w, est, cfg, rng.New(8))
	if err != nil {
		t.Fatal(err)
	}

	bad := *tr
	bad.NumSites = 99
	if err := bad.Validate(w); err == nil {
		t.Error("shape mismatch accepted")
	}

	tr2, _ := Record(w, est, cfg, rng.New(8))
	tr2.Events[0][0].Page = -1
	if err := tr2.Validate(w); err == nil {
		t.Error("negative page accepted")
	}

	tr3, _ := Record(w, est, cfg, rng.New(8))
	// Move a page to the wrong site's stream.
	other := w.Sites[1].Pages[0]
	tr3.Events[0][0].Page = other
	if err := tr3.Validate(w); err == nil {
		t.Error("cross-site page accepted")
	}

	tr4, _ := Record(w, est, cfg, rng.New(8))
	tr4.Events[0][0].LocalRate = 0
	if err := tr4.Validate(w); err == nil {
		t.Error("zero rate accepted")
	}

	if _, err := DecodeTrace(w, strings.NewReader("{oops")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestRecordValidation(t *testing.T) {
	w, est := simEnv(t, 85)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 0
	if _, err := Record(w, est, cfg, rng.New(1)); err == nil {
		t.Error("zero requests accepted")
	}
}

func TestTraceDeterministic(t *testing.T) {
	w, est := simEnv(t, 86)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 40
	a, err := Record(w, est, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(w, est, cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var ba, bb bytes.Buffer
	if err := a.Encode(&ba); err != nil {
		t.Fatal(err)
	}
	if err := b.Encode(&bb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba.Bytes(), bb.Bytes()) {
		t.Error("identical seeds produced different traces")
	}
}
