package httpsim

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/workload"
)

func simEnv(t *testing.T, seed uint64) (*workload.Workload, *netsim.Estimates) {
	t.Helper()
	w := workload.MustGenerate(workload.SmallConfig(), seed)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	return w, est
}

func TestRunBasic(t *testing.T) {
	w, est := simEnv(t, 41)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 200
	res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.PageRT.N(), int64(200*w.NumSites()); got != want {
		t.Errorf("page samples = %d, want %d", got, want)
	}
	if res.PageRT.Mean() <= 0 {
		t.Error("mean page RT not positive")
	}
	if res.Policy != "Local" {
		t.Errorf("policy name %q", res.Policy)
	}
	// All-local policy issues no repository requests.
	if res.RepoRequests != 0 {
		t.Errorf("Local policy sent %d repo requests", res.RepoRequests)
	}
	if res.LocalRequests <= int64(200*w.NumSites()) {
		t.Error("local requests should exceed one per view (HTML + objects)")
	}
}

func TestRunRemotePolicy(t *testing.T) {
	w, est := simEnv(t, 42)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 200
	res, err := Run(w, est, policies.NewRemote(w), cfg, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Remote policy: one local HTML request per view, everything else repo.
	if got, want := res.LocalRequests, int64(200*w.NumSites()); got != want {
		t.Errorf("local requests = %d, want %d (HTML only)", got, want)
	}
	if res.RepoRequests == 0 {
		t.Error("remote policy sent no repo requests")
	}
}

func TestRunDeterministic(t *testing.T) {
	w, est := simEnv(t, 43)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	run := func() float64 {
		res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		return res.PageRT.Mean()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs differ: %v vs %v", a, b)
	}
}

func TestRunSequentialMatchesParallel(t *testing.T) {
	w, est := simEnv(t, 44)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	cfg.Workers = 1
	seq, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	par, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.PageRT.Mean()-par.PageRT.Mean()) > 1e-12 {
		t.Errorf("worker counts changed results: %v vs %v", seq.PageRT.Mean(), par.PageRT.Mean())
	}
	if seq.LocalRequests != par.LocalRequests || seq.RepoRequests != par.RepoRequests {
		t.Error("request counters differ across worker counts")
	}
}

func TestPoliciesSeeSameTraffic(t *testing.T) {
	// The same seed must produce identical page sequences and perturbations
	// for different policies: with an identity perturbation and fixed
	// estimates, the Local policy's local chain equals the Remote policy's
	// local HTML chain plus the MO bytes — verify via request counts, which
	// depend only on the traffic.
	w, est := simEnv(t, 45)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 100
	l, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(w, est, policies.NewRemote(w), cfg, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if l.LocalRequests+l.RepoRequests != r.LocalRequests+r.RepoRequests {
		t.Errorf("total request counts differ: %d vs %d",
			l.LocalRequests+l.RepoRequests, r.LocalRequests+r.RepoRequests)
	}
	if l.OptPerView.N() != r.OptPerView.N() {
		t.Error("view counts differ across policies")
	}
}

func TestRemoteSlowerThanLocal(t *testing.T) {
	// Table-1 rates make the repository ~5× slower per byte; the Remote
	// policy must lose clearly (the paper reports +335 % vs +23.8 %).
	w, est := simEnv(t, 46)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 300
	l, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	r, err := Run(w, est, policies.NewRemote(w), cfg, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	if r.PageRT.Mean() < 2*l.PageRT.Mean() {
		t.Errorf("Remote mean %v not ≫ Local mean %v", r.PageRT.Mean(), l.PageRT.Mean())
	}
}

func TestIdentityPerturbationMatchesModel(t *testing.T) {
	// With NoPerturbConfig the simulated mean page time must equal the
	// cost model's frequency-weighted prediction (same placement, same
	// estimates), up to sampling noise of the page mixture.
	w, est := simEnv(t, 47)
	cfg := DefaultConfig(w)
	cfg.Perturb = netsim.NoPerturbConfig()
	cfg.RequestsPerSite = 4000

	p := model.AllLocal(w)
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, est, policies.NewStatic("ours", p), cfg, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	// Model prediction: Σ f·Time / Σ f (mean over views).
	var num, den float64
	for j := range w.Pages {
		f := float64(w.Pages[j].Freq)
		num += f * float64(model.PageTime(env, p, workload.PageID(j)))
		den += f
	}
	want := num / den
	got := res.PageRT.Mean()
	if math.Abs(got-want)/want > 0.05 {
		t.Errorf("simulated mean %v deviates from model %v by >5%%", got, want)
	}
}

func TestQueueingAddsDelay(t *testing.T) {
	w, est := simEnv(t, 48)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 500
	base, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Queueing = true
	queued, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	if queued.PageRT.Mean() < base.PageRT.Mean() {
		t.Errorf("queueing decreased mean RT: %v < %v", queued.PageRT.Mean(), base.PageRT.Mean())
	}
}

func TestRetainSamples(t *testing.T) {
	w, est := simEnv(t, 49)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 100
	cfg.RetainSamples = true
	res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples.N() != int(res.PageRT.N()) {
		t.Errorf("retained %d samples for %d views", res.Samples.N(), res.PageRT.N())
	}
	if res.Samples.Percentile(0.99) < res.Samples.Median() {
		t.Error("p99 below median")
	}
}

func TestRunValidation(t *testing.T) {
	w, est := simEnv(t, 50)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 0
	if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(1)); err == nil {
		t.Error("zero requests accepted")
	}
	cfg = DefaultConfig(w)
	cfg.Perturb.LocalRate = nil
	if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(1)); err == nil {
		t.Error("invalid perturb config accepted")
	}
	bad := &netsim.Estimates{Sites: est.Sites[:1]}
	if _, err := Run(w, bad, policies.NewLocal(w), DefaultConfig(w), rng.New(1)); err == nil {
		t.Error("estimate count mismatch accepted")
	}
}

func TestCompositeMean(t *testing.T) {
	r := &Result{alpha1: 2, alpha2: 1}
	r.PageRT.Add(9)
	r.OptPerView.Add(3)
	if got, want := r.CompositeMean(), (2*9.0+1*3.0)/3.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("CompositeMean = %v, want %v", got, want)
	}
	z := &Result{}
	z.PageRT.Add(5)
	if z.CompositeMean() != 5 {
		t.Error("zero weights should fall back to page mean")
	}
}

func TestFluidQueue(t *testing.T) {
	q := newFluidQueue(10) // 0.1 s per request
	if d := q.delay(0, 1); d != 0 {
		t.Errorf("first arrival waited %v", d)
	}
	// Immediately after: backlog 0.1 s.
	if d := q.delay(0, 1); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("second arrival waited %v, want 0.1", d)
	}
	// After a long gap the backlog drains fully.
	if d := q.delay(100, 1); d != 0 {
		t.Errorf("post-drain arrival waited %v", d)
	}
	// Infinite capacity: never any delay.
	inf := newFluidQueue(0)
	for i := 0; i < 10; i++ {
		if inf.delay(float64(i), 100) != 0 {
			t.Fatal("infinite-capacity queue delayed")
		}
	}
}

func TestRemoteRedirectPenaltyPerGET(t *testing.T) {
	// With an identity perturbation and the Remote policy, the penalty
	// adds exactly penalty×(compulsory count) to every page's remote
	// chain (which always dominates at Table-1 rates), so the mean page
	// RT shifts by penalty×E[compulsory].
	w, est := simEnv(t, 51)
	cfg := DefaultConfig(w)
	cfg.Perturb = netsim.NoPerturbConfig()
	cfg.RequestsPerSite = 400

	base, err := Run(w, est, policies.NewRemote(w), cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	cfg.RemoteRedirectPenalty = 2
	pen, err := Run(w, est, policies.NewRemote(w), cfg, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	shift := pen.PageRT.Mean() - base.PageRT.Mean()
	// Expected shift: 2s × mean compulsory count over the drawn pages.
	// Approximate with the workload's frequency-weighted mean.
	var num, den float64
	for j := range w.Pages {
		f := float64(w.Pages[j].Freq)
		num += f * float64(len(w.Pages[j].Compulsory))
		den += f
	}
	want := 2 * num / den
	if math.Abs(shift-want)/want > 0.1 {
		t.Errorf("penalty shift %.2fs, want ≈%.2fs", shift, want)
	}
}

func TestLRUParallelSites(t *testing.T) {
	// The LRU baseline's per-site state must be safe under the simulator's
	// cross-site concurrency (exercised under -race in CI).
	w, est := simEnv(t, 52)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	cfg.Workers = 4
	cfg.Warmup = true
	lru, err := policies.NewLRU(w, model.FullBudgets(w), 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, est, lru, cfg, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	if res.PageRT.N() != int64(150*w.NumSites()) {
		t.Errorf("views = %d", res.PageRT.N())
	}
	// Warm full-budget LRU serves everything locally after warmup.
	if res.RepoRequests != 0 {
		t.Errorf("warm full-size LRU sent %d repo requests", res.RepoRequests)
	}
}
