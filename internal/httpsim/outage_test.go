package httpsim

import (
	"strings"
	"testing"

	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/units"
)

// outageCfg returns a small config with degraded mode armed.
func outageCfg(t *testing.T, avail float64) (Config, int64) {
	t.Helper()
	w, _ := simEnv(t, 51)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 200
	cfg.Outage = OutageConfig{Enabled: true, Availability: avail, FailoverDelay: 0.05}
	return cfg, int64(200 * w.NumSites())
}

func TestOutageDeterministic(t *testing.T) {
	w, est := simEnv(t, 51)
	cfg, _ := outageCfg(t, 0.7)
	run := func() (float64, int64) {
		res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(9))
		if err != nil {
			t.Fatal(err)
		}
		return res.PageRT.Mean(), res.DegradedViews
	}
	m1, d1 := run()
	m2, d2 := run()
	if m1 != m2 || d1 != d2 {
		t.Errorf("identical degraded runs differ: (%v, %d) vs (%v, %d)", m1, d1, m2, d2)
	}
	if d1 == 0 {
		t.Error("availability 0.7 produced no degraded views")
	}
}

func TestOutageDoesNotPerturbHealthyRuns(t *testing.T) {
	// Availability 1 must reproduce the disabled-mode run exactly: outage
	// draws come from a dedicated stream and a certain draw consumes none.
	w, est := simEnv(t, 52)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	base, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Outage = OutageConfig{Enabled: true, Availability: 1, FailoverDelay: 1}
	up, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if up.DegradedViews != 0 {
		t.Errorf("availability 1 degraded %d views", up.DegradedViews)
	}
	if base.PageRT.Mean() != up.PageRT.Mean() {
		t.Errorf("armed-but-healthy outage changed RT: %v vs %v",
			base.PageRT.Mean(), up.PageRT.Mean())
	}
}

func TestOutageInflatesResponseTime(t *testing.T) {
	w, est := simEnv(t, 51)
	means := make([]float64, 0, 3)
	for _, avail := range []float64{1, 0.5, 0} {
		cfg, _ := outageCfg(t, avail)
		res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		means = append(means, res.PageRT.Mean())
	}
	if !(means[0] < means[1] && means[1] < means[2]) {
		t.Errorf("RT not monotone in unavailability: %v", means)
	}
}

func TestOutageAvailabilityZeroIsRepositoryOnly(t *testing.T) {
	w, est := simEnv(t, 51)
	cfg, views := outageCfg(t, 0)
	res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.DegradedViews != views {
		t.Errorf("degraded views = %d, want all %d", res.DegradedViews, views)
	}
	if res.LocalRequests != 0 {
		t.Errorf("repository-only run issued %d local requests", res.LocalRequests)
	}
	if res.RepoRequests == 0 {
		t.Error("repository-only run issued no repo requests")
	}
}

func TestOutageValidation(t *testing.T) {
	w, est := simEnv(t, 51)
	for _, bad := range []OutageConfig{
		{Enabled: true, Availability: -0.1},
		{Enabled: true, Availability: 1.5},
		{Enabled: true, Availability: 0.5, FailoverDelay: units.Seconds(-1)},
	} {
		cfg := DefaultConfig(w)
		cfg.Outage = bad
		if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(1)); err == nil {
			t.Errorf("config %+v accepted", bad)
		} else if !strings.Contains(err.Error(), "httpsim") {
			t.Errorf("unexpected error text %q", err)
		}
	}
	// Disabled mode ignores out-of-range fields.
	cfg := DefaultConfig(w)
	cfg.Outage = OutageConfig{Enabled: false, Availability: -5}
	if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(1)); err != nil {
		t.Errorf("disabled outage rejected: %v", err)
	}
}
