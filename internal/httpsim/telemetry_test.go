package httpsim

import (
	"testing"

	"repro/internal/policies"
	"repro/internal/rng"
	"repro/internal/telemetry"
)

// TestRunTelemetry reconciles the simulator's telemetry against the result:
// one page-RT observation per view, request counters matching the result's
// own totals, and the three chain-split counters partitioning the views.
func TestRunTelemetry(t *testing.T) {
	w, est := simEnv(t, 46)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 150
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	res, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()

	views := int64(150 * w.NumSites())
	var pageHist *telemetry.HistogramPoint
	for i := range snap.Histograms {
		if snap.Histograms[i].Name == "httpsim.page_rt_seconds" {
			pageHist = &snap.Histograms[i]
		}
	}
	if pageHist == nil {
		t.Fatal("no page RT histogram recorded")
	}
	if pageHist.Count != views {
		t.Errorf("page RT observations = %d, want %d views", pageHist.Count, views)
	}
	if diff := pageHist.Mean - res.PageRT.Mean(); diff > 1e-9 || diff < -1e-9 {
		t.Errorf("histogram mean %v != accumulator mean %v", pageHist.Mean, res.PageRT.Mean())
	}
	if pageHist.P50 <= 0 || pageHist.P99 < pageHist.P50 {
		t.Errorf("implausible percentiles: p50=%v p99=%v", pageHist.P50, pageHist.P99)
	}

	if got := snap.CounterValue("httpsim.requests.local"); got != res.LocalRequests {
		t.Errorf("local request counter = %d, result says %d", got, res.LocalRequests)
	}
	if got := snap.CounterValue("httpsim.requests.repo"); got != res.RepoRequests {
		t.Errorf("repo request counter = %d, result says %d", got, res.RepoRequests)
	}
	split := snap.CounterValue("httpsim.views.split")
	localOnly := snap.CounterValue("httpsim.views.local_only")
	remoteOnly := snap.CounterValue("httpsim.views.remote_only")
	if split+localOnly+remoteOnly != views {
		t.Errorf("chain-split counters %d+%d+%d don't partition %d views",
			split, localOnly, remoteOnly, views)
	}
	// The all-local policy never touches the repository.
	if split != 0 || remoteOnly != 0 {
		t.Errorf("Local policy produced split=%d remote_only=%d views", split, remoteOnly)
	}
}

// TestRunTelemetryWarmupExcluded keeps warmup passes out of the metrics:
// with Warmup on, the histogram still holds exactly one observation per
// measured view.
func TestRunTelemetryWarmupExcluded(t *testing.T) {
	w, est := simEnv(t, 47)
	cfg := DefaultConfig(w)
	cfg.RequestsPerSite = 80
	cfg.Warmup = true
	reg := telemetry.NewRegistry()
	cfg.Telemetry = reg
	if _, err := Run(w, est, policies.NewLocal(w), cfg, rng.New(5)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	var count int64 = -1
	for _, h := range snap.Histograms {
		if h.Name == "httpsim.page_rt_seconds" {
			count = h.Count
		}
	}
	if want := int64(80 * w.NumSites()); count != want {
		t.Errorf("page RT observations = %d, want %d (warmup must not count)", count, want)
	}
}
