package httpsim

import "math"

// fluidQueue models server occupancy as a fluid backlog: each HTTP request
// deposits 1/capacity seconds of processing work, the backlog drains in
// real time, and an arrival waits for the backlog it finds. This is the
// queueing extension that relaxes the paper's constant-processing-time
// assumption; it deliberately stays fluid (no per-request event ordering)
// so a simulation run stays O(requests).
type fluidQueue struct {
	perReq  float64 // seconds of work per request; 0 = infinite capacity
	backlog float64 // seconds of work outstanding
	last    float64 // clock of the previous interaction
}

// newFluidQueue builds a queue for a server of the given capacity in
// requests/second. Non-positive or infinite capacity disables queueing.
func newFluidQueue(capacity float64) *fluidQueue {
	q := &fluidQueue{}
	if capacity > 0 && !math.IsInf(capacity, 1) {
		q.perReq = 1 / capacity
	}
	return q
}

// delay advances the queue to time now, records nreqs arriving requests,
// and returns the waiting time those requests experience. now must not
// decrease between calls.
//
//repllint:hotpath — fluid-queue update, called per simulated request
func (q *fluidQueue) delay(now, nreqs float64) float64 {
	if q.perReq == 0 {
		return 0
	}
	elapsed := now - q.last
	if elapsed > 0 {
		q.backlog -= elapsed
		if q.backlog < 0 {
			q.backlog = 0
		}
		q.last = now
	}
	d := q.backlog
	q.backlog += nreqs * q.perReq
	return d
}
