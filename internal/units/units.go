// Package units provides the value types shared across the repro module:
// byte sizes, transfer rates and request rates. They are thin wrappers over
// float64/int64 that keep the cost-model code dimensionally honest — the
// paper's B(S_i) notation (seconds per byte) and our bytes-per-second rates
// are easy to confuse otherwise.
package units

import (
	"fmt"
	"math"
	"time"
)

// ByteSize is a size in bytes. It is an int64 so that exact storage
// accounting (Eq. 10 of the paper) never accumulates floating-point error.
type ByteSize int64

// Common byte-size units.
const (
	Byte ByteSize = 1
	KB            = 1 << 10 * Byte
	MB            = 1 << 20 * Byte
	GB            = 1 << 30 * Byte
)

// String renders the size using the largest unit that keeps the mantissa
// readable, e.g. "1.75GB", "640KB", "12B".
func (b ByteSize) String() string {
	switch {
	case b >= GB || b <= -GB:
		return fmt.Sprintf("%.2fGB", float64(b)/float64(GB))
	case b >= MB || b <= -MB:
		return fmt.Sprintf("%.2fMB", float64(b)/float64(MB))
	case b >= KB || b <= -KB:
		return fmt.Sprintf("%.2fKB", float64(b)/float64(KB))
	}
	return fmt.Sprintf("%dB", int64(b))
}

// Rate is a data transfer rate in bytes per second.
type Rate float64

// Common rates.
const (
	BytePerSec Rate = 1
	KBPerSec        = 1024 * BytePerSec
	MBPerSec        = 1024 * KBPerSec
)

// String renders the rate, e.g. "3.00KB/s".
func (r Rate) String() string {
	switch {
	case r >= MBPerSec:
		return fmt.Sprintf("%.2fMB/s", float64(r)/float64(MBPerSec))
	case r >= KBPerSec:
		return fmt.Sprintf("%.2fKB/s", float64(r)/float64(KBPerSec))
	}
	return fmt.Sprintf("%.2fB/s", float64(r))
}

// TransferTime returns how long moving b bytes at rate r takes, in seconds.
// A non-positive rate yields +Inf: in the cost model an unreachable server
// must lose every max(...) comparison rather than panic.
func (r Rate) TransferTime(b ByteSize) Seconds {
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(b) / float64(r))
}

// Seconds is a duration in seconds, kept as float64 because the cost model
// is analytic (fractions of perturbed estimates) rather than tick-based.
type Seconds float64

// Duration converts to time.Duration, saturating on overflow.
func (s Seconds) Duration() time.Duration {
	d := float64(s) * float64(time.Second)
	if d > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	if d < math.MinInt64 {
		return time.Duration(math.MinInt64)
	}
	return time.Duration(d)
}

// String renders the duration with millisecond precision, e.g. "1.275s".
func (s Seconds) String() string {
	return fmt.Sprintf("%.3fs", float64(s))
}

// IsFinite reports whether the value is neither NaN nor ±Inf.
func (s Seconds) IsFinite() bool {
	return !math.IsNaN(float64(s)) && !math.IsInf(float64(s), 0)
}

// ReqPerSec is a request rate in HTTP requests per second — the unit of the
// paper's processing capacities C(S_i), C(R) and page frequencies f(W_j).
type ReqPerSec float64

// String renders the request rate, e.g. "150.0req/s".
func (r ReqPerSec) String() string {
	return fmt.Sprintf("%.1freq/s", float64(r))
}

// MaxSeconds returns the larger of a and b; it is the max of Eq. 5.
func MaxSeconds(a, b Seconds) Seconds {
	if a > b {
		return a
	}
	return b
}
