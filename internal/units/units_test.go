package units

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestByteSizeString(t *testing.T) {
	cases := []struct {
		in   ByteSize
		want string
	}{
		{0, "0B"},
		{12, "12B"},
		{KB, "1.00KB"},
		{640 * KB, "640.00KB"},
		{MB, "1.00MB"},
		{1800 * MB, "1.76GB"},
		{GB, "1.00GB"},
		{-2 * KB, "-2.00KB"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("ByteSize(%d).String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestRateString(t *testing.T) {
	cases := []struct {
		in   Rate
		want string
	}{
		{3 * KBPerSec, "3.00KB/s"},
		{0.5 * KBPerSec, "512.00B/s"},
		{2 * MBPerSec, "2.00MB/s"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("Rate.String() = %q, want %q", got, c.want)
		}
	}
}

func TestTransferTime(t *testing.T) {
	// 10 KB at 5 KB/s is 2 seconds.
	got := (5 * KBPerSec).TransferTime(10 * KB)
	if math.Abs(float64(got)-2) > 1e-12 {
		t.Errorf("TransferTime = %v, want 2s", got)
	}
}

func TestTransferTimeZeroRate(t *testing.T) {
	got := Rate(0).TransferTime(KB)
	if !math.IsInf(float64(got), 1) {
		t.Errorf("zero rate should give +Inf, got %v", got)
	}
	got = Rate(-1).TransferTime(KB)
	if !math.IsInf(float64(got), 1) {
		t.Errorf("negative rate should give +Inf, got %v", got)
	}
}

func TestTransferTimeZeroBytes(t *testing.T) {
	if got := (3 * KBPerSec).TransferTime(0); got != 0 {
		t.Errorf("zero bytes should take 0s, got %v", got)
	}
}

func TestSecondsDuration(t *testing.T) {
	if got := Seconds(1.5).Duration(); got != 1500*time.Millisecond {
		t.Errorf("Duration = %v, want 1.5s", got)
	}
	if got := Seconds(math.Inf(1)).Duration(); got != time.Duration(math.MaxInt64) {
		t.Errorf("infinite seconds should saturate, got %v", got)
	}
	if got := Seconds(math.Inf(-1)).Duration(); got != time.Duration(math.MinInt64) {
		t.Errorf("negative infinite seconds should saturate, got %v", got)
	}
}

func TestSecondsIsFinite(t *testing.T) {
	if !Seconds(1).IsFinite() {
		t.Error("1s should be finite")
	}
	if Seconds(math.Inf(1)).IsFinite() {
		t.Error("+Inf should not be finite")
	}
	if Seconds(math.NaN()).IsFinite() {
		t.Error("NaN should not be finite")
	}
}

func TestMaxSeconds(t *testing.T) {
	if got := MaxSeconds(1, 2); got != 2 {
		t.Errorf("MaxSeconds(1,2) = %v", got)
	}
	if got := MaxSeconds(3, 2); got != 3 {
		t.Errorf("MaxSeconds(3,2) = %v", got)
	}
}

func TestMaxSecondsProperties(t *testing.T) {
	// max is commutative and idempotent, and the result is one of the inputs.
	f := func(a, b float64) bool {
		x, y := Seconds(a), Seconds(b)
		m := MaxSeconds(x, y)
		if m != MaxSeconds(y, x) {
			return false
		}
		if m != x && m != y {
			return false
		}
		return m >= x && m >= y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTimeMonotone(t *testing.T) {
	// More bytes never transfer faster at the same rate.
	f := func(a, b uint32, r float64) bool {
		rate := Rate(math.Abs(r)) + 1
		small, big := ByteSize(a), ByteSize(a)+ByteSize(b)
		return rate.TransferTime(small) <= rate.TransferTime(big)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReqPerSecString(t *testing.T) {
	if got := ReqPerSec(150).String(); got != "150.0req/s" {
		t.Errorf("ReqPerSec.String() = %q", got)
	}
}
