package bitset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestSetClearTest(t *testing.T) {
	s := New(130) // spans three words
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestCount(t *testing.T) {
	s := New(200)
	if s.Count() != 0 {
		t.Fatal("empty set count != 0")
	}
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	if got, want := s.Count(), 67; got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	s.Set(3) // idempotent
	if s.Count() != 67 {
		t.Error("double Set changed count")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for name, fn := range map[string]func(){
		"Set(-1)":   func() { s.Set(-1) },
		"Set(10)":   func() { s.Set(10) },
		"Test(10)":  func() { s.Test(10) },
		"Clear(-1)": func() { s.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestCapacityMismatchPanics(t *testing.T) {
	a, b := New(10), New(11)
	defer func() {
		if recover() == nil {
			t.Error("UnionWith with mismatched capacity did not panic")
		}
	}()
	a.UnionWith(b)
}

func TestSetOps(t *testing.T) {
	a, b := New(100), New(100)
	for i := 0; i < 100; i += 2 {
		a.Set(i) // evens
	}
	for i := 0; i < 100; i += 3 {
		b.Set(i) // multiples of 3
	}

	u := a.Clone()
	u.UnionWith(b)
	i := a.Clone()
	i.IntersectWith(b)
	d := a.Clone()
	d.DifferenceWith(b)

	for k := 0; k < 100; k++ {
		even, triple := k%2 == 0, k%3 == 0
		if u.Test(k) != (even || triple) {
			t.Errorf("union wrong at %d", k)
		}
		if i.Test(k) != (even && triple) {
			t.Errorf("intersection wrong at %d", k)
		}
		if d.Test(k) != (even && !triple) {
			t.Errorf("difference wrong at %d", k)
		}
	}
}

func TestEqualAndClone(t *testing.T) {
	a := New(70)
	a.Set(5)
	a.Set(69)
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b.Set(6)
	if a.Equal(b) {
		t.Error("diverged clone still equal")
	}
	if a.Equal(New(71)) {
		t.Error("different capacities reported equal")
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(64), New(64)
	a.Set(0)
	a.Set(63)
	b.Set(10)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Error("CopyFrom did not copy")
	}
	if b.Test(10) {
		t.Error("CopyFrom kept old bit")
	}
}

func TestResetAndAny(t *testing.T) {
	s := New(100)
	if s.Any() {
		t.Error("empty set Any() = true")
	}
	s.Set(99)
	if !s.Any() {
		t.Error("Any() = false after Set")
	}
	s.Reset()
	if s.Any() || s.Count() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestForEachOrderAndEarlyStop(t *testing.T) {
	s := New(300)
	want := []int{1, 64, 65, 128, 250, 299}
	for _, i := range want {
		s.Set(i)
	}
	var got []int
	s.ForEach(func(i int) bool {
		got = append(got, i)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %d bits, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order: got %v, want %v", got, want)
		}
	}
	// Early stop after two elements.
	count := 0
	s.ForEach(func(i int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d bits", count)
	}
}

func TestMembers(t *testing.T) {
	s := New(80)
	in := []int{3, 64, 79}
	for _, i := range in {
		s.Set(i)
	}
	got := s.Members()
	if len(got) != 3 || got[0] != 3 || got[1] != 64 || got[2] != 79 {
		t.Errorf("Members = %v", got)
	}
}

func TestString(t *testing.T) {
	s := New(10)
	if got := s.String(); got != "{}" {
		t.Errorf("empty String = %q", got)
	}
	s.Set(1)
	s.Set(5)
	if got := s.String(); got != "{1, 5}" {
		t.Errorf("String = %q", got)
	}
	big := New(100)
	for i := 0; i < 100; i++ {
		big.Set(i)
	}
	if got := big.String(); len(got) == 0 || got[len(got)-1] != '}' {
		t.Errorf("big String malformed: %q", got)
	}
}

func TestZeroCapacity(t *testing.T) {
	s := New(0)
	if s.Any() || s.Count() != 0 || s.Len() != 0 {
		t.Error("zero-capacity set misbehaves")
	}
	s2 := New(-5)
	if s2.Len() != 0 {
		t.Error("negative capacity should clamp to 0")
	}
}

// property: building a set from any list of indices yields exactly the
// distinct indices back, sorted.
func TestRoundTripProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		s := New(1 << 16)
		uniq := map[int]bool{}
		for _, r := range raw {
			s.Set(int(r))
			uniq[int(r)] = true
		}
		want := make([]int, 0, len(uniq))
		for k := range uniq {
			want = append(want, k)
		}
		sort.Ints(want)
		got := s.Members()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return s.Count() == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// property: De Morgan-ish identity |A| = |A∩B| + |A\B|.
func TestPartitionProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a, b := New(256), New(256)
		for _, x := range xs {
			a.Set(int(x))
		}
		for _, y := range ys {
			b.Set(int(y))
		}
		inter := a.Clone()
		inter.IntersectWith(b)
		diff := a.Clone()
		diff.DifferenceWith(b)
		return a.Count() == inter.Count()+diff.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSetAndCount(b *testing.B) {
	s := New(15000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Set(i % 15000)
		if i%1024 == 0 {
			_ = s.Count()
		}
	}
}
