// Package bitset implements a dense, fixed-capacity bitset over uint64
// words. The replication planner manipulates sets over the global object
// population (Table 1: 15,000 MOs) — membership of an object in a server's
// store, rows of the X/X' allocation matrices — and a packed bitset keeps
// those operations cache-friendly and allocation-free on the hot path.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a fixed-capacity bitset. The zero value is an empty set of
// capacity 0; use New for a useful one.
type Set struct {
	n     int
	words []uint64
}

// New returns an empty set able to hold bits [0, n).
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// Len returns the capacity of the set (number of addressable bits).
func (s *Set) Len() int { return s.n }

// check panics on out-of-range indices: the planner indexes sets with
// validated object IDs, so a bad index is a programming error, not an
// input error.
func (s *Set) check(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.check(i)
	s.words[i/wordBits] |= 1 << (uint(i) % wordBits)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.check(i)
	s.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
}

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	s.check(i)
	return s.words[i/wordBits]&(1<<(uint(i)%wordBits)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Clone returns a deep copy.
func (s *Set) Clone() *Set {
	c := &Set{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with the contents of o. Capacities must match.
func (s *Set) CopyFrom(o *Set) {
	s.mustMatch(o)
	copy(s.words, o.words)
}

func (s *Set) mustMatch(o *Set) {
	if s.n != o.n {
		panic(fmt.Sprintf("bitset: capacity mismatch %d vs %d", s.n, o.n))
	}
}

// UnionWith sets s = s ∪ o.
func (s *Set) UnionWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith sets s = s ∩ o.
func (s *Set) IntersectWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &= w
	}
}

// DifferenceWith sets s = s \ o.
func (s *Set) DifferenceWith(o *Set) {
	s.mustMatch(o)
	for i, w := range o.words {
		s.words[i] &^= w
	}
}

// Equal reports whether two sets of equal capacity hold the same bits.
func (s *Set) Equal(o *Set) bool {
	if s.n != o.n {
		return false
	}
	for i, w := range s.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Any reports whether at least one bit is set.
func (s *Set) Any() bool {
	for _, w := range s.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// ForEach calls fn for every set bit in ascending order; fn returning false
// stops the iteration early.
func (s *Set) ForEach(fn func(i int) bool) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*wordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// Members returns the set bits in ascending order.
func (s *Set) Members() []int {
	out := make([]int, 0, s.Count())
	s.ForEach(func(i int) bool {
		out = append(out, i)
		return true
	})
	return out
}

// String renders the set as "{1, 5, 9}"; big sets are summarized.
func (s *Set) String() string {
	const maxShown = 32
	var b strings.Builder
	b.WriteByte('{')
	shown := 0
	s.ForEach(func(i int) bool {
		if shown > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d", i)
		shown++
		return shown < maxShown
	})
	if c := s.Count(); c > maxShown {
		fmt.Fprintf(&b, ", …(%d total)", c)
	}
	b.WriteByte('}')
	return b.String()
}
