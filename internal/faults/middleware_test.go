package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// payload is the fixed body served by the test handler.
var payload = bytes1k()

func bytes1k() []byte {
	b := make([]byte, 1024)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

// okHandler serves the payload with a declared Content-Length.
func okHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		rw.Header().Set("Content-Length", strconv.Itoa(len(payload)))
		rw.Write(payload)
	})
}

// startFaulty serves okHandler behind the spec's middleware.
func startFaulty(t *testing.T, spec Spec, clock func() time.Duration, m Metrics) *httptest.Server {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Middleware(NewInjector(spec, 7), clock, m, okHandler()))
	t.Cleanup(srv.Close)
	return srv
}

func TestMiddlewarePassthrough(t *testing.T) {
	srv := startFaulty(t, Spec{}, nil, Metrics{})
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) != len(payload) {
		t.Fatalf("clean request: err=%v, %d bytes (want %d)", err, len(body), len(payload))
	}
}

func TestMiddlewareFail(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := MetricsFor(reg, "faults.test.")
	srv := startFaulty(t, Spec{ErrorRate: 1}, nil, m)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %s, want 503", resp.Status)
	}
	if got := m.Failures.Value(); got != 1 {
		t.Errorf("failure counter = %d, want 1", got)
	}
}

func TestMiddlewareReset(t *testing.T) {
	m := MetricsFor(telemetry.NewRegistry(), "faults.test.")
	srv := startFaulty(t, Spec{ResetRate: 1}, nil, m)
	resp, err := http.Get(srv.URL)
	if err == nil {
		resp.Body.Close()
		t.Fatal("reset-faulted request succeeded")
	}
	if m.Resets.Value() == 0 {
		t.Error("reset not counted")
	}
}

func TestMiddlewareTruncate(t *testing.T) {
	m := MetricsFor(telemetry.NewRegistry(), "faults.test.")
	srv := startFaulty(t, Spec{TruncateRate: 1}, nil, m)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err) // headers arrive fine; the body is what breaks
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("truncated body read cleanly (%d bytes)", len(body))
	}
	if len(body) >= len(payload) {
		t.Fatalf("truncated response delivered %d bytes, want < %d", len(body), len(payload))
	}
	if m.Truncations.Value() == 0 {
		t.Error("truncation not counted")
	}
}

func TestMiddlewareLatency(t *testing.T) {
	const delay = 30 * time.Millisecond
	srv := startFaulty(t, Spec{Latency: delay}, nil, Metrics{})
	start := time.Now()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if took := time.Since(start); took < delay {
		t.Fatalf("request took %v, injected latency is %v", took, delay)
	}
}

func TestMiddlewareOutageClock(t *testing.T) {
	spec := Spec{Outages: []Window{{Start: 0, End: time.Second}}}
	var mu sync.Mutex
	elapsed := time.Duration(0)
	clock := func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		return elapsed
	}
	srv := startFaulty(t, spec, clock, Metrics{})

	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("inside window: %s, want 503", resp.Status)
	}

	// Advance past the window: the server heals.
	mu.Lock()
	elapsed = 2 * time.Second
	mu.Unlock()
	resp, err = http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after window: %s, want 200", resp.Status)
	}
}

// TestMiddlewareConcurrent hammers a faulty server from many goroutines —
// the injector's stream locking and the counters must be race-clean.
func TestMiddlewareConcurrent(t *testing.T) {
	m := MetricsFor(telemetry.NewRegistry(), "faults.test.")
	srv := startFaulty(t, Spec{ErrorRate: 0.3, ResetRate: 0.2, TruncateRate: 0.2}, nil, m)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{Timeout: 5 * time.Second}
			for i := 0; i < 20; i++ {
				resp, err := client.Get(srv.URL)
				if err != nil {
					continue // resets are expected
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	total := m.Failures.Value() + m.Resets.Value() + m.Truncations.Value()
	if total == 0 {
		t.Error("no faults injected across 160 requests at ~70% fault rate")
	}
}
