package faults

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro/internal/htmlrefs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Metrics counts what the middleware actually injected. All fields are
// nil-tolerant telemetry counters, so the zero Metrics is a no-op sink.
type Metrics struct {
	Failures    *telemetry.Counter // 503s (rate-drawn, outage- and partition-window)
	Resets      *telemetry.Counter // connections dropped before any byte
	Truncations *telemetry.Counter // bodies cut mid-transfer
	Corruptions *telemetry.Counter // bodies served with a bit-flip (wire or rot)
	Delayed     *telemetry.Counter // requests that slept an injected delay

	// Journal, when non-nil, receives one "fault.injected" event per
	// injected fault (kind + site), so the flight recorder interleaves the
	// chaos the middleware caused with the control plane's reaction to it.
	Journal *trace.Journal
	// Site labels this middleware's journal events ("repo" or a site index).
	Site string
}

// record books one injected fault of the given kind into the journal.
func (m Metrics) record(kind string) {
	m.Journal.Record("fault.injected",
		trace.A("kind", kind),
		trace.A(trace.AttrSite, m.Site))
}

// MetricsFor registers the middleware counters under prefix (e.g.
// "faults.site.0.") in the registry. A nil registry yields no-op counters.
func MetricsFor(reg *telemetry.Registry, prefix string) Metrics {
	return Metrics{
		Failures:    reg.Counter(prefix + "injected_failures"),    //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		Resets:      reg.Counter(prefix + "injected_resets"),      //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		Truncations: reg.Counter(prefix + "injected_truncations"), //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		Corruptions: reg.Counter(prefix + "injected_corruptions"), //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		Delayed:     reg.Counter(prefix + "injected_delays"),      //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	}
}

// Middleware wraps next with fault injection driven by the injector. clock
// reports the elapsed time since the plan was armed (it feeds the outage,
// limp and partition windows); a nil clock pins elapsed to 0, which keeps
// rate faults working and makes windows starting at 0 permanent.
//
// Reset and Truncate abort the connection via http.ErrAbortHandler — the
// mechanism net/http itself designates for "drop this connection without a
// valid response" — so clients observe EOF / unexpected EOF exactly as
// they would from a crashing server. Corrupt (and replica rot on /mo/
// paths) serves a complete, well-formed response whose body carries a
// deterministic bit-flip: only an end-to-end payload check can tell.
func Middleware(inj *Injector, clock func() time.Duration, m Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		elapsed := time.Duration(0)
		if clock != nil {
			elapsed = clock()
		}
		d := inj.DecideRequest(elapsed, req.URL.Path)
		if d.Delay > 0 {
			m.Delayed.Inc()
			m.record("delay")
			// Sleep the injected latency, but stop the moment the client
			// gives up — a vanished caller must release the connection (and
			// any admission slot held around this middleware) immediately.
			t := time.NewTimer(d.Delay) //repllint:allow determinism — injected latency is a real wall-clock delay by design
			select {
			case <-t.C:
			case <-req.Context().Done():
				t.Stop()
				panic(http.ErrAbortHandler)
			}
		}
		switch d.Action {
		case Fail:
			m.Failures.Inc()
			m.record("fail")
			http.Error(rw, "fault injected: server unavailable", http.StatusServiceUnavailable)
		case Reset:
			m.Resets.Inc()
			m.record("reset")
			panic(http.ErrAbortHandler)
		case Truncate:
			m.Truncations.Inc()
			m.record("truncate")
			tw := &truncatingWriter{rw: rw}
			next.ServeHTTP(tw, req)
			// Push the partial body out of the server's buffer before
			// dropping the connection, so the client observes a short body
			// rather than no response at all.
			if f, ok := rw.(http.Flusher); ok {
				f.Flush()
			}
			panic(http.ErrAbortHandler)
		case Corrupt:
			m.Corruptions.Inc()
			m.record("corrupt")
			next.ServeHTTP(&corruptingWriter{rw: rw, frac: d.CorruptFrac, mask: d.CorruptMask}, req)
		default:
			// Replica rot: a stored object whose bytes went bad. Persistent
			// (same flip every read, from RotFlip's pure derivation) until
			// the anti-entropy repair clears it.
			if k, ok := htmlrefs.ParseMOPath(req.URL.Path); ok && inj.Rotted(int(k)) {
				frac, mask := inj.RotFlip(int(k))
				m.Corruptions.Inc()
				m.record("rot")
				next.ServeHTTP(&corruptingWriter{rw: rw, frac: frac, mask: mask}, req)
				return
			}
			next.ServeHTTP(rw, req)
		}
	})
}

// errTruncated is the sentinel the truncating writer returns once its byte
// budget is spent; handlers' io.Copy loops stop on it.
var errTruncated = errors.New("faults: response truncated by injection")

// truncatingWriter forwards roughly half of the declared response body and
// then fails every further write. The wrapping middleware drops the
// connection afterwards, so the client sees a short body against the full
// Content-Length — the classic mid-transfer failure.
type truncatingWriter struct {
	rw      http.ResponseWriter
	limit   int64 // bytes still allowed; set at WriteHeader time
	started bool
}

func (t *truncatingWriter) Header() http.Header { return t.rw.Header() }

func (t *truncatingWriter) WriteHeader(status int) {
	t.start()
	t.rw.WriteHeader(status)
}

// start fixes the byte budget from the declared Content-Length: half of it
// (at least one byte, so the response visibly starts), or 512 bytes for
// undeclared (chunked) bodies.
func (t *truncatingWriter) start() {
	if t.started {
		return
	}
	t.started = true
	t.limit = 512
	if cl, err := strconv.ParseInt(t.rw.Header().Get("Content-Length"), 10, 64); err == nil && cl > 0 {
		t.limit = cl / 2
		if t.limit < 1 {
			t.limit = 1
		}
	}
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	t.start()
	if t.limit <= 0 {
		return 0, errTruncated
	}
	if int64(len(p)) > t.limit {
		p = p[:t.limit]
	}
	n, err := t.rw.Write(p)
	t.limit -= int64(n)
	if err != nil {
		return n, err
	}
	if t.limit <= 0 {
		return n, errTruncated
	}
	return n, nil
}

// corruptingWriter forwards the full response body but XORs the byte at
// offset frac·Content-Length with mask. The transfer completes normally —
// same length, same status, valid HTTP — which is exactly what makes this
// a gray failure: only an end-to-end payload verification catches it.
type corruptingWriter struct {
	rw      http.ResponseWriter
	frac    float64
	mask    byte
	started bool
	target  int64 // absolute offset of the byte to flip; -1 = none left
	written int64
}

func (c *corruptingWriter) Header() http.Header { return c.rw.Header() }

func (c *corruptingWriter) WriteHeader(status int) {
	c.start()
	c.rw.WriteHeader(status)
}

// start fixes the flip offset from the declared Content-Length; undeclared
// (chunked) bodies flip their first byte.
func (c *corruptingWriter) start() {
	if c.started {
		return
	}
	c.started = true
	c.target = 0
	if cl, err := strconv.ParseInt(c.rw.Header().Get("Content-Length"), 10, 64); err == nil && cl > 0 {
		c.target = int64(c.frac * float64(cl))
		if c.target >= cl {
			c.target = cl - 1
		}
	}
}

func (c *corruptingWriter) Write(p []byte) (int, error) {
	c.start()
	if c.target >= c.written && c.target < c.written+int64(len(p)) {
		// Copy-on-write: p may alias a caller buffer that is reused.
		q := make([]byte, len(p))
		copy(q, p)
		q[c.target-c.written] ^= c.mask
		c.target = -1
		p = q
	}
	n, err := c.rw.Write(p)
	c.written += int64(n)
	return n, err
}
