package faults

import "repro/internal/rng"

// Injector-seed stream labels, disjoint from the plan-generation labels so
// a plan and its injectors never share randomness.
const (
	injRepoStream uint64 = iota + 311
	injSiteStream
)

// RepoInjector builds the repository's injector, seeded from the plan.
// Returns nil on a nil plan (no injection).
func (p *Plan) RepoInjector() *Injector {
	if p == nil {
		return nil
	}
	return NewInjector(p.Repo, rng.New(p.Seed).Split(injRepoStream).Seed())
}

// SiteInjector builds site i's injector, seeded from the plan. Returns nil
// on a nil plan; out-of-range sites get a quiet injector.
func (p *Plan) SiteInjector(i int) *Injector {
	if p == nil {
		return nil
	}
	return NewInjector(p.SiteSpec(i), rng.New(p.Seed).Split(injSiteStream, uint64(i)).Seed())
}
