package faults

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestGrayWindowsConsumeNoRandomness extends the outage-window guarantee to
// every gray mode: limp, partition and rot decisions never shift the
// rate-driven decision stream, so arming chaos windows cannot change which
// request draws which fault.
func TestGrayWindowsConsumeNoRandomness(t *testing.T) {
	spec := Spec{ErrorRate: 0.5}
	gray := spec
	gray.Rot = []int{1, 2, 3}
	gray.LimpLatency = 5 * time.Millisecond
	gray.Limps = []Window{{Start: time.Second, End: 2 * time.Second}}
	gray.PartitionControl = []Window{{Start: 3 * time.Second, End: 4 * time.Second}}
	gray.PartitionData = []Window{{Start: 5 * time.Second, End: 6 * time.Second}}
	if err := gray.Validate(); err != nil {
		t.Fatal(err)
	}

	plain := NewInjector(spec, 5)
	grayed := NewInjector(gray, 5)

	for i := 0; i < 100; i++ {
		// Window-driven decisions, none of which may touch the stream.
		if d := grayed.DecideRequest(3500*time.Millisecond, HealthzPath); d.Action != Fail {
			t.Fatalf("control partition served healthz: %v", d.Action)
		}
		if d := grayed.DecideRequest(5500*time.Millisecond, "/mo/9"); d.Action != Reset {
			t.Fatalf("data partition served data path: %v", d.Action)
		}
		got := grayed.Decide(0)
		want := plain.Decide(0)
		// The limp windows are closed at elapsed 0 and rot never touches
		// Decide, so the rate stream must stay aligned with the plain one.
		if got != want {
			t.Fatalf("decision %d shifted after gray-window draws: %+v vs %+v", i, got, want)
		}
	}
}

// TestLimpWindowsAreExactAndRandomless pins the slow-node mode: inside a
// limp window every decision carries exactly LimpLatency extra delay with no
// jitter, outside it nothing, and a rate-free spec never consumes a draw.
func TestLimpWindowsAreExactAndRandomless(t *testing.T) {
	spec := Spec{
		LimpLatency: 7 * time.Millisecond,
		Limps:       []Window{{Start: time.Second, End: 2 * time.Second}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 11)
	for i := 0; i < 50; i++ {
		in := inj.DecideRequest(1500*time.Millisecond, "/mo/1")
		if in.Action != None || in.Delay != 7*time.Millisecond {
			t.Fatalf("inside limp window: %+v, want none/7ms", in)
		}
		out := inj.DecideRequest(2500*time.Millisecond, "/mo/1")
		if out.Action != None || out.Delay != 0 {
			t.Fatalf("outside limp window: %+v, want none/0", out)
		}
	}
}

// TestPartialPartitionsKeyOnPath pins the two asymmetric partition modes:
// a control partition fails only the health endpoint while data flows, a
// data partition resets data paths while the health endpoint stays green —
// the supervisor and the clients see opposite worlds.
func TestPartialPartitionsKeyOnPath(t *testing.T) {
	forever := []Window{{Start: 0, End: time.Hour}}

	control := NewInjector(Spec{PartitionControl: forever}, 1)
	if d := control.DecideRequest(time.Minute, HealthzPath); d.Action != Fail {
		t.Errorf("control partition: healthz decided %v, want fail", d.Action)
	}
	if d := control.DecideRequest(time.Minute, "/mo/3"); d.Action != None {
		t.Errorf("control partition: data path decided %v, want none", d.Action)
	}

	data := NewInjector(Spec{PartitionData: forever}, 1)
	if d := data.DecideRequest(time.Minute, HealthzPath); d.Action != None {
		t.Errorf("data partition: healthz decided %v, want none", d.Action)
	}
	if d := data.DecideRequest(time.Minute, "/page/0"); d.Action != Reset {
		t.Errorf("data partition: data path decided %v, want reset", d.Action)
	}
}

// TestRotFlipIsPureAndClearable pins replica rot's contract: the flip
// parameters are a pure function of (seed, object) — the same wrong bytes on
// every read, like on-disk bit-rot — the mask never leaves a byte unchanged,
// and ClearRot models the anti-entropy re-write.
func TestRotFlipIsPureAndClearable(t *testing.T) {
	spec := Spec{Rot: []int{3, 7}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := NewInjector(spec, 42), NewInjector(spec, 42)
	for _, k := range []int{3, 7} {
		if !a.Rotted(k) {
			t.Fatalf("object %d not rotted", k)
		}
		f1, m1 := a.RotFlip(k)
		f2, m2 := a.RotFlip(k)
		f3, m3 := b.RotFlip(k)
		if f1 != f2 || m1 != m2 || f1 != f3 || m1 != m3 {
			t.Fatalf("object %d flip not pure: (%v,%v) (%v,%v) (%v,%v)", k, f1, m1, f2, m2, f3, m3)
		}
		if m1 == 0 {
			t.Fatalf("object %d mask is zero — the flip would be a no-op", k)
		}
	}
	if a.Rotted(5) {
		t.Fatal("unlisted object reported rotted")
	}
	if got := a.RotCount(); got != 2 {
		t.Fatalf("RotCount = %d, want 2", got)
	}
	a.ClearRot(3)
	if a.Rotted(3) || a.RotCount() != 1 {
		t.Fatal("ClearRot did not repair the replica")
	}
	// The other injector is untouched: rot state is per-injector.
	if !b.Rotted(3) {
		t.Fatal("ClearRot leaked across injectors")
	}
}

// TestMiddlewareCorrupt pins the wire-corruption mode: the response
// completes with the right status and length but exactly one byte differs —
// invisible to the transport, visible only end to end.
func TestMiddlewareCorrupt(t *testing.T) {
	m := MetricsFor(telemetry.NewRegistry(), "faults.test.")
	srv := startFaulty(t, Spec{CorruptRate: 1}, nil, m)
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || len(body) != len(payload) {
		t.Fatalf("corrupt response not gray: %s, %d bytes (want 200, %d)", resp.Status, len(body), len(payload))
	}
	diff := 0
	for i := range body {
		if body[i] != payload[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1", diff)
	}
	if m.Corruptions.Value() == 0 {
		t.Error("corruption not counted")
	}
}

// TestMiddlewareRotPersistsUntilCleared serves a rotted /mo/ replica and
// checks the defining properties: the same corrupted bytes on every read,
// other objects untouched, and clean service after ClearRot.
func TestMiddlewareRotPersistsUntilCleared(t *testing.T) {
	spec := Spec{Rot: []int{3}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(spec, 9)
	m := MetricsFor(telemetry.NewRegistry(), "faults.test.")
	srv := httptest.NewServer(Middleware(inj, nil, m, okHandler()))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v %s", path, err, resp.Status)
		}
		return body
	}

	first := get("/mo/3")
	if string(first) == string(payload) {
		t.Fatal("rotted replica served clean bytes")
	}
	if string(get("/mo/3")) != string(first) {
		t.Fatal("rot is not persistent: two reads differ")
	}
	if string(get("/mo/4")) != string(payload) {
		t.Fatal("rot leaked onto an unlisted object")
	}
	if m.Corruptions.Value() < 2 {
		t.Errorf("rot serves not counted as corruptions: %d", m.Corruptions.Value())
	}

	inj.ClearRot(3)
	if string(get("/mo/3")) != string(payload) {
		t.Fatal("replica still corrupt after ClearRot")
	}
}
