package faults

import (
	"bytes"
	"reflect"
	"testing"
)

// seedPlans returns the generated plans the fuzz corpus is seeded from:
// every chaos level the CLIs expose plus the hand-built edges (quiet plan,
// full outage, empty cluster).
func seedPlans(tb testing.TB) []*Plan {
	tb.Helper()
	var plans []*Plan
	for _, level := range []float64{0, 0.3, 0.6, 1} {
		cfg := DefaultPlanConfig()
		cfg.Level = level
		p, err := Generate(cfg, 4, 7)
		if err != nil {
			tb.Fatal(err)
		}
		plans = append(plans, p)
	}
	plans = append(plans,
		&Plan{Seed: 0},
		&Plan{Seed: 99, Repo: FullOutage(), Sites: []Spec{FullOutage(), {}}},
	)
	return plans
}

// FuzzPlanRoundTrip pins the canonical-JSON contract Plan.Encode/Decode
// promise: any bytes that decode to a valid plan re-encode to a canonical
// form that is lossless (decodes to a deeply equal plan) and order-stable
// (re-encoding the decoded plan reproduces the same bytes). Invalid inputs
// must be rejected with an error, never a panic.
func FuzzPlanRoundTrip(f *testing.F) {
	for _, p := range seedPlans(f) {
		enc, err := p.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	f.Add([]byte(`{"seed":1,"sites":null}`))
	f.Add([]byte(`{"seed":1,"repo":{"error_rate":2}}`)) // invalid: rate > 1
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // invalid input rejected cleanly: nothing to round-trip
		}
		enc1, err := p.Encode()
		if err != nil {
			t.Fatalf("valid plan failed to encode: %v", err)
		}
		q, err := Decode(enc1)
		if err != nil {
			t.Fatalf("canonical encoding failed to decode: %v", err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("round trip lost information:\n was %#v\n now %#v", p, q)
		}
		enc2, err := q.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical encoding unstable:\n%s\nvs\n%s", enc1, enc2)
		}
	})
}
