package faults

import (
	"bytes"
	"testing"
	"time"
)

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultPlanConfig()
	a, err := Generate(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same seed produced different plan bytes:\n%s\nvs\n%s", ab, bb)
	}

	c, err := Generate(cfg, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := c.Encode()
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical plans")
	}

	// Round-trip through Decode preserves the plan.
	back, err := Decode(ab)
	if err != nil {
		t.Fatal(err)
	}
	bb2, _ := back.Encode()
	if !bytes.Equal(ab, bb2) {
		t.Fatal("Decode/Encode round trip changed the plan")
	}
}

func TestGenerateSiteIndependence(t *testing.T) {
	cfg := DefaultPlanConfig()
	small, err := Generate(cfg, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(cfg, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ab, _ := (&Plan{Sites: []Spec{small.Sites[i]}}).Encode()
		bb, _ := (&Plan{Sites: []Spec{big.Sites[i]}}).Encode()
		if !bytes.Equal(ab, bb) {
			t.Errorf("site %d spec changed when the cluster grew", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{ErrorRate: -0.1},
		{ErrorRate: 1.1},
		{ErrorRate: 0.5, ResetRate: 0.4, TruncateRate: 0.2}, // sum > 1
		{Latency: -time.Second},
		{Outages: []Window{{Start: time.Second, End: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated despite being invalid", i)
		}
	}
	good := Spec{ErrorRate: 0.3, ResetRate: 0.3, TruncateRate: 0.3, Latency: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{ErrorRate: 0.2, ResetRate: 0.2, TruncateRate: 0.2, Latency: time.Millisecond, LatencyJitter: time.Millisecond}
	const n = 500
	run := func() []Decision {
		inj := NewInjector(spec, 99)
		out := make([]Decision, n)
		for i := range out {
			out[i] = inj.Decide(0)
		}
		return out
	}
	a, b := run(), run()
	var faulted int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Action != None {
			faulted++
		}
	}
	// ≈60 % of decisions should fault; allow wide slack.
	if faulted < n/4 || faulted > n {
		t.Errorf("%d/%d faulted decisions, expected roughly 60%%", faulted, n)
	}
}

func TestOutageWindowsConsumeNoRandomness(t *testing.T) {
	spec := Spec{ErrorRate: 0.5}
	withOutage := spec
	withOutage.Outages = []Window{{Start: time.Second, End: 2 * time.Second}}

	plain := NewInjector(spec, 5)
	outaged := NewInjector(withOutage, 5)

	// Interleave outage-window decisions; the rate-driven stream must not
	// shift relative to the plain injector.
	for i := 0; i < 100; i++ {
		if d := outaged.Decide(1500 * time.Millisecond); d.Action != Fail {
			t.Fatalf("decision inside outage window was %v, want fail", d.Action)
		}
		got := outaged.Decide(0)
		want := plain.Decide(0)
		if got != want {
			t.Fatalf("decision %d shifted after outage draws: %+v vs %+v", i, got, want)
		}
	}
}

func TestFullOutage(t *testing.T) {
	inj := NewInjector(FullOutage(), 1)
	for _, at := range []time.Duration{0, time.Second, time.Hour, 24 * 365 * time.Hour} {
		if d := inj.Decide(at); d.Action != Fail {
			t.Fatalf("FullOutage at %v decided %v, want fail", at, d.Action)
		}
	}
}

func TestNilPlanIsQuiet(t *testing.T) {
	var p *Plan
	if !p.SiteSpec(0).Quiet() || !p.RepoSpec().Quiet() {
		t.Fatal("nil plan is not quiet")
	}
	real := &Plan{Sites: []Spec{{ErrorRate: 0.5}}}
	if real.SiteSpec(0).Quiet() {
		t.Fatal("real spec reported quiet")
	}
	if !real.SiteSpec(5).Quiet() {
		t.Fatal("out-of-range site not quiet")
	}
}

// TestLoadSpikeRateAt pins the demand-side fault arithmetic: outside every
// spike window RateAt is the base rate, inside one it is multiplied by the
// factor, and overlapping spikes compound. A nil plan is the identity.
func TestLoadSpikeRateAt(t *testing.T) {
	p := &Plan{LoadSpikes: []LoadSpike{
		{Window: Window{Start: 1 * time.Second, End: 3 * time.Second}, Factor: 10},
		{Window: Window{Start: 2 * time.Second, End: 4 * time.Second}, Factor: 2},
	}}
	cases := []struct {
		at   time.Duration
		want float64
	}{
		{0, 100},
		{1 * time.Second, 1000},         // window start is inclusive
		{2500 * time.Millisecond, 2000}, // overlap compounds
		{3 * time.Second, 200},          // window end is exclusive
		{3500 * time.Millisecond, 200},
		{4 * time.Second, 100},
	}
	for _, c := range cases {
		if got := p.RateAt(100, c.at); got != c.want {
			t.Errorf("RateAt(100, %v) = %v, want %v", c.at, got, c.want)
		}
	}
	var nilPlan *Plan
	if got := nilPlan.RateAt(100, time.Second); got != 100 {
		t.Errorf("nil plan RateAt = %v, want base", got)
	}
}

// TestLoadSpikeValidateAndRoundTrip: bad windows and non-positive factors
// are rejected; a valid spike survives the canonical JSON round trip.
func TestLoadSpikeValidateAndRoundTrip(t *testing.T) {
	bad := []Plan{
		{LoadSpikes: []LoadSpike{{Window: Window{Start: 2 * time.Second, End: time.Second}, Factor: 2}}},
		{LoadSpikes: []LoadSpike{{Window: Window{Start: 0, End: time.Second}, Factor: 0}}},
		{LoadSpikes: []LoadSpike{{Window: Window{Start: 0, End: time.Second}, Factor: -1}}},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Errorf("bad spike plan %d validated", i)
		}
	}

	p := &Plan{Seed: 7, Sites: []Spec{{}}, LoadSpikes: []LoadSpike{
		{Window: Window{Start: 5 * time.Second, End: 7 * time.Second}, Factor: 10},
	}}
	enc, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := q.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("spike plan not canonical:\n%s\nvs\n%s", enc, enc2)
	}
	if got := q.RateAt(120, 6*time.Second); got != 1200 {
		t.Errorf("decoded plan RateAt = %v, want 1200", got)
	}
}
