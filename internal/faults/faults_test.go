package faults

import (
	"bytes"
	"testing"
	"time"
)

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultPlanConfig()
	a, err := Generate(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg, 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Fatalf("same seed produced different plan bytes:\n%s\nvs\n%s", ab, bb)
	}

	c, err := Generate(cfg, 10, 43)
	if err != nil {
		t.Fatal(err)
	}
	cb, _ := c.Encode()
	if bytes.Equal(ab, cb) {
		t.Fatal("different seeds produced identical plans")
	}

	// Round-trip through Decode preserves the plan.
	back, err := Decode(ab)
	if err != nil {
		t.Fatal(err)
	}
	bb2, _ := back.Encode()
	if !bytes.Equal(ab, bb2) {
		t.Fatal("Decode/Encode round trip changed the plan")
	}
}

func TestGenerateSiteIndependence(t *testing.T) {
	cfg := DefaultPlanConfig()
	small, err := Generate(cfg, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(cfg, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		ab, _ := (&Plan{Sites: []Spec{small.Sites[i]}}).Encode()
		bb, _ := (&Plan{Sites: []Spec{big.Sites[i]}}).Encode()
		if !bytes.Equal(ab, bb) {
			t.Errorf("site %d spec changed when the cluster grew", i)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{ErrorRate: -0.1},
		{ErrorRate: 1.1},
		{ErrorRate: 0.5, ResetRate: 0.4, TruncateRate: 0.2}, // sum > 1
		{Latency: -time.Second},
		{Outages: []Window{{Start: time.Second, End: 0}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d validated despite being invalid", i)
		}
	}
	good := Spec{ErrorRate: 0.3, ResetRate: 0.3, TruncateRate: 0.3, Latency: time.Millisecond}
	if err := good.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestInjectorDeterminism(t *testing.T) {
	spec := Spec{ErrorRate: 0.2, ResetRate: 0.2, TruncateRate: 0.2, Latency: time.Millisecond, LatencyJitter: time.Millisecond}
	const n = 500
	run := func() []Decision {
		inj := NewInjector(spec, 99)
		out := make([]Decision, n)
		for i := range out {
			out[i] = inj.Decide(0)
		}
		return out
	}
	a, b := run(), run()
	var faulted int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across identically-seeded injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Action != None {
			faulted++
		}
	}
	// ≈60 % of decisions should fault; allow wide slack.
	if faulted < n/4 || faulted > n {
		t.Errorf("%d/%d faulted decisions, expected roughly 60%%", faulted, n)
	}
}

func TestOutageWindowsConsumeNoRandomness(t *testing.T) {
	spec := Spec{ErrorRate: 0.5}
	withOutage := spec
	withOutage.Outages = []Window{{Start: time.Second, End: 2 * time.Second}}

	plain := NewInjector(spec, 5)
	outaged := NewInjector(withOutage, 5)

	// Interleave outage-window decisions; the rate-driven stream must not
	// shift relative to the plain injector.
	for i := 0; i < 100; i++ {
		if d := outaged.Decide(1500 * time.Millisecond); d.Action != Fail {
			t.Fatalf("decision inside outage window was %v, want fail", d.Action)
		}
		got := outaged.Decide(0)
		want := plain.Decide(0)
		if got != want {
			t.Fatalf("decision %d shifted after outage draws: %+v vs %+v", i, got, want)
		}
	}
}

func TestFullOutage(t *testing.T) {
	inj := NewInjector(FullOutage(), 1)
	for _, at := range []time.Duration{0, time.Second, time.Hour, 24 * 365 * time.Hour} {
		if d := inj.Decide(at); d.Action != Fail {
			t.Fatalf("FullOutage at %v decided %v, want fail", at, d.Action)
		}
	}
}

func TestNilPlanIsQuiet(t *testing.T) {
	var p *Plan
	if !p.SiteSpec(0).Quiet() || !p.RepoSpec().Quiet() {
		t.Fatal("nil plan is not quiet")
	}
	real := &Plan{Sites: []Spec{{ErrorRate: 0.5}}}
	if real.SiteSpec(0).Quiet() {
		t.Fatal("real spec reported quiet")
	}
	if !real.SiteSpec(5).Quiet() {
		t.Fatal("out-of-range site not quiet")
	}
}
