package faults

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// Action is what the injector does to one request.
type Action int

const (
	// None serves the request untouched (beyond any injected delay).
	None Action = iota
	// Fail answers 503 Service Unavailable without running the handler.
	Fail
	// Reset drops the connection before any response byte.
	Reset
	// Truncate serves part of the response body, then drops the connection.
	Truncate
)

// String names the action for logs and test failures.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	}
	return "unknown"
}

// Decision is the injector's verdict for one request.
type Decision struct {
	Action Action
	// Delay is injected before the action (including before a clean serve).
	Delay time.Duration
}

// Injector turns a Spec into a deterministic per-request decision stream.
// It is safe for concurrent use; concurrent requests serialize on one
// internal stream, so the decision *sequence* is seed-determined even
// though which request observes which decision depends on arrival order.
type Injector struct {
	spec Spec

	mu     sync.Mutex
	stream *rng.Stream
}

// NewInjector builds an injector for the spec, its randomness derived from
// seed. The spec must have passed Validate.
func NewInjector(spec Spec, seed uint64) *Injector {
	return &Injector{spec: spec, stream: rng.New(seed)}
}

// Spec returns the injector's spec.
func (in *Injector) Spec() Spec { return in.spec }

// Decide returns the fault decision for a request arriving at the given
// elapsed time since the plan was armed. Outage windows dominate: inside
// one, every request Fails with no randomness consumed, so an outage does
// not shift the post-outage decision stream.
func (in *Injector) Decide(elapsed time.Duration) Decision {
	for _, w := range in.spec.Outages {
		if w.Contains(elapsed) {
			return Decision{Action: Fail}
		}
	}
	if in.spec.Quiet() {
		return Decision{}
	}

	in.mu.Lock()
	var d Decision
	if in.spec.LatencyJitter > 0 {
		d.Delay = in.spec.Latency + time.Duration(in.stream.Uniform(0, float64(in.spec.LatencyJitter)))
	} else {
		d.Delay = in.spec.Latency
	}
	// One uniform variate picks among the mutually-exclusive fault kinds.
	u := in.stream.Float64()
	in.mu.Unlock()

	switch {
	case u < in.spec.ErrorRate:
		d.Action = Fail
	case u < in.spec.ErrorRate+in.spec.ResetRate:
		d.Action = Reset
	case u < in.spec.ErrorRate+in.spec.ResetRate+in.spec.TruncateRate:
		d.Action = Truncate
	}
	return d
}
