package faults

import (
	"sync"
	"time"

	"repro/internal/rng"
)

// Action is what the injector does to one request.
type Action int

const (
	// None serves the request untouched (beyond any injected delay).
	None Action = iota
	// Fail answers 503 Service Unavailable without running the handler.
	Fail
	// Reset drops the connection before any response byte.
	Reset
	// Truncate serves part of the response body, then drops the connection.
	Truncate
	// Corrupt serves the full response body with a deterministic bit-flip:
	// the transfer succeeds at the transport layer and only an end-to-end
	// check can tell.
	Corrupt
)

// String names the action for logs and test failures.
func (a Action) String() string {
	switch a {
	case None:
		return "none"
	case Fail:
		return "fail"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return "unknown"
}

// HealthzPath is the health endpoint the partial-partition windows key on.
const HealthzPath = "/healthz"

// Decision is the injector's verdict for one request.
type Decision struct {
	Action Action
	// Delay is injected before the action (including before a clean serve).
	Delay time.Duration
	// CorruptFrac and CorruptMask parameterize a Corrupt action: the byte
	// at offset CorruptFrac·body-length is XORed with CorruptMask.
	CorruptFrac float64
	CorruptMask byte
}

// rotFlipStream labels the child streams that derive a rotted replica's
// deterministic flip parameters (pure functions of the injector seed and
// object ID — no draw ever touches the request-decision stream).
const rotFlipStream uint64 = 331

// Injector turns a Spec into a deterministic per-request decision stream.
// It is safe for concurrent use; concurrent requests serialize on one
// internal stream, so the decision *sequence* is seed-determined even
// though which request observes which decision depends on arrival order.
type Injector struct {
	spec Spec
	seed uint64

	mu     sync.Mutex
	stream *rng.Stream
	rot    map[int]bool // mutable: anti-entropy repair clears entries
}

// NewInjector builds an injector for the spec, its randomness derived from
// seed. The spec must have passed Validate.
func NewInjector(spec Spec, seed uint64) *Injector {
	in := &Injector{spec: spec, seed: seed, stream: rng.New(seed)}
	if len(spec.Rot) > 0 {
		in.rot = make(map[int]bool, len(spec.Rot))
		for _, k := range spec.Rot {
			in.rot[k] = true
		}
	}
	return in
}

// Spec returns the injector's spec.
func (in *Injector) Spec() Spec { return in.spec }

// Rotted reports whether object k's replica is currently rotted here.
func (in *Injector) Rotted(k int) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rot[k]
}

// ClearRot marks object k's replica repaired: subsequent serves are clean.
// The anti-entropy loop calls this after re-shipping the replica from the
// repository. Safe under concurrent serving.
func (in *Injector) ClearRot(k int) {
	if in == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.rot, k)
}

// RotCount returns how many replicas are still rotted.
func (in *Injector) RotCount() int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.rot)
}

// RotFlip returns the deterministic flip parameters for rotted object k —
// a pure function of (injector seed, k), so a rotted replica serves the
// *same* wrong bytes on every read, exactly like on-disk bit-rot.
func (in *Injector) RotFlip(k int) (frac float64, mask byte) {
	s := rng.New(in.seed).Split(rotFlipStream, uint64(k))
	frac = s.Float64()
	mask = byte(s.IntN(255) + 1) // never zero: the flip must change the byte
	return frac, mask
}

// Decide returns the fault decision for a request with no path context —
// equivalent to DecideRequest with an empty path (partition windows and rot
// never fire).
func (in *Injector) Decide(elapsed time.Duration) Decision {
	return in.DecideRequest(elapsed, "")
}

// DecideRequest returns the fault decision for a request to path arriving
// at the given elapsed time since the plan was armed. Window-driven modes
// dominate and consume no randomness — an outage, limp or partition never
// shifts the post-window decision stream:
//
//   - outage windows fail everything;
//   - control partitions fail only HealthzPath, data partitions reset
//     everything else;
//   - limp windows add the fixed LimpLatency to the delay.
//
// Rot is handled separately (Rotted/RotFlip): it keys on the object served,
// which only the middleware knows.
func (in *Injector) DecideRequest(elapsed time.Duration, path string) Decision {
	for _, w := range in.spec.Outages {
		if w.Contains(elapsed) {
			return Decision{Action: Fail}
		}
	}
	if path == HealthzPath {
		for _, w := range in.spec.PartitionControl {
			if w.Contains(elapsed) {
				return Decision{Action: Fail}
			}
		}
	} else if path != "" {
		for _, w := range in.spec.PartitionData {
			if w.Contains(elapsed) {
				return Decision{Action: Reset}
			}
		}
	}
	var limp time.Duration
	if in.spec.LimpLatency > 0 {
		for _, w := range in.spec.Limps {
			if w.Contains(elapsed) {
				limp = in.spec.LimpLatency
				break
			}
		}
	}
	if in.spec.quietRates() {
		return Decision{Delay: limp}
	}

	in.mu.Lock()
	d := Decision{Delay: limp}
	if in.spec.LatencyJitter > 0 {
		d.Delay += in.spec.Latency + time.Duration(in.stream.Uniform(0, float64(in.spec.LatencyJitter)))
	} else {
		d.Delay += in.spec.Latency
	}
	// One uniform variate picks among the mutually-exclusive fault kinds.
	u := in.stream.Float64()
	switch {
	case u < in.spec.ErrorRate:
		d.Action = Fail
	case u < in.spec.ErrorRate+in.spec.ResetRate:
		d.Action = Reset
	case u < in.spec.ErrorRate+in.spec.ResetRate+in.spec.TruncateRate:
		d.Action = Truncate
	case u < in.spec.ErrorRate+in.spec.ResetRate+in.spec.TruncateRate+in.spec.CorruptRate:
		d.Action = Corrupt
		// Flip parameters drawn only on the corrupt branch: the decision
		// sequence stays a pure function of the seed and arrival order.
		d.CorruptFrac = in.stream.Float64()
		d.CorruptMask = byte(in.stream.IntN(255) + 1)
	}
	in.mu.Unlock()
	return d
}

// quietRates reports whether the randomized per-request part of the spec
// (rates and latency) injects nothing — the window-driven gray modes are
// judged separately, without consuming randomness.
func (s Spec) quietRates() bool {
	return s.ErrorRate == 0 && s.ResetRate == 0 && s.TruncateRate == 0 &&
		s.CorruptRate == 0 && s.Latency == 0 && s.LatencyJitter == 0
}
