// Package faults is the deterministic fault-injection engine behind the
// repo's robustness experiments. The paper's Section 2 treats the central
// repository as the always-on authoritative root and the local replicas as
// accelerators; this package supplies the failure side of that contract: a
// seeded Plan assigns each server (the repository and every site) a fault
// Spec — error rates, connection resets, truncated bodies, injected latency
// and timed outage windows — and an Injector turns a Spec into a
// reproducible per-request decision stream. The same seed always yields the
// same plan bytes and the same decision sequence, so degraded-mode runs are
// exactly repeatable.
//
// Two consumers exist: internal/webserve wraps each server's handler in
// Middleware (live loopback chaos), and internal/httpsim models outages
// analytically via its Config.Outage (the simulator does not need
// per-request byte faults — a view either finds its site up or down).
package faults

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/rng"
)

// Window is a half-open [Start, End) interval of elapsed time since the
// plan was armed, during which the server is fully out: every request fails
// before the handler runs.
type Window struct {
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`
}

// Contains reports whether elapsed falls inside the window.
func (w Window) Contains(elapsed time.Duration) bool {
	return elapsed >= w.Start && elapsed < w.End
}

// Spec describes one server's fault behaviour. Rates are per-request
// probabilities drawn from a single uniform variate, so they are mutually
// exclusive and must sum to at most 1.
type Spec struct {
	// ErrorRate is the probability a request is answered 503 instead of
	// being served.
	ErrorRate float64 `json:"error_rate,omitempty"`
	// ResetRate is the probability the connection is dropped before any
	// response byte (the client sees EOF / connection reset).
	ResetRate float64 `json:"reset_rate,omitempty"`
	// TruncateRate is the probability the response body is cut partway
	// through and the connection dropped (the client sees an unexpected
	// EOF mid-body).
	TruncateRate float64 `json:"truncate_rate,omitempty"`
	// CorruptRate is the probability a response body is served with a
	// deterministic bit-flip — wire corruption the receiver can only catch
	// end to end (the payloads are self-verifying, so it always can).
	CorruptRate float64 `json:"corrupt_rate,omitempty"`
	// Latency is added to every request before it is served.
	Latency time.Duration `json:"latency,omitempty"`
	// LatencyJitter adds a uniform extra delay in [0, LatencyJitter).
	LatencyJitter time.Duration `json:"latency_jitter,omitempty"`
	// Outages lists full-failure windows; during one, every request fails
	// with 503 regardless of the rates above.
	Outages []Window `json:"outages,omitempty"`

	// Gray failures — the modes /healthz cannot see (or sees wrongly).
	// All of them are window- or set-driven with zero randomness consumed,
	// so arming them never shifts the rate-fault decision stream.

	// Rot lists object IDs whose stored replica is persistently corrupt at
	// this server: every /mo/<id> response for a rotted object carries a
	// deterministic seeded bit-flip until the rot is cleared (an
	// anti-entropy repair re-writing the replica).
	Rot []int `json:"rot,omitempty"`
	// LimpLatency is the extra fixed delay added to every request during a
	// Limps window — a limping (slow-node) server, distinct from the
	// one-shot Latency above: it is persistent, exact, and consumes no
	// randomness, so a latency-aware health check can prove it detected it.
	LimpLatency time.Duration `json:"limp_latency,omitempty"`
	// Limps lists the limping windows.
	Limps []Window `json:"limps,omitempty"`
	// PartitionControl lists windows during which only the control plane is
	// cut: /healthz fails while data paths serve normally — the site looks
	// dead to the supervisor but fine to clients.
	PartitionControl []Window `json:"partition_control,omitempty"`
	// PartitionData lists the inverse partial partition: data paths drop
	// their connections while /healthz keeps answering 200 — the site looks
	// fine to the supervisor but dead to clients.
	PartitionData []Window `json:"partition_data,omitempty"`
}

// Validate rejects unusable specs.
func (s *Spec) Validate() error {
	for _, r := range []float64{s.ErrorRate, s.ResetRate, s.TruncateRate, s.CorruptRate} {
		if r < 0 || r > 1 {
			return fmt.Errorf("faults: rate %v outside [0, 1]", r)
		}
	}
	if sum := s.ErrorRate + s.ResetRate + s.TruncateRate + s.CorruptRate; sum > 1 {
		return fmt.Errorf("faults: rates sum to %v > 1", sum)
	}
	if s.Latency < 0 || s.LatencyJitter < 0 || s.LimpLatency < 0 {
		return fmt.Errorf("faults: negative latency")
	}
	for _, k := range s.Rot {
		if k < 0 {
			return fmt.Errorf("faults: negative rot object %d", k)
		}
	}
	for _, ws := range [][]Window{s.Outages, s.Limps, s.PartitionControl, s.PartitionData} {
		for _, w := range ws {
			if w.End < w.Start || w.Start < 0 {
				return fmt.Errorf("faults: window [%v, %v) is invalid", w.Start, w.End)
			}
		}
	}
	return nil
}

// Quiet reports whether the spec injects nothing.
func (s Spec) Quiet() bool {
	return s.ErrorRate == 0 && s.ResetRate == 0 && s.TruncateRate == 0 &&
		s.CorruptRate == 0 && s.Latency == 0 && s.LatencyJitter == 0 &&
		len(s.Outages) == 0 && len(s.Rot) == 0 &&
		s.LimpLatency == 0 && len(s.Limps) == 0 &&
		len(s.PartitionControl) == 0 && len(s.PartitionData) == 0
}

// FullOutage returns a spec that fails every request forever — the
// "dead site" used by the degraded-mode acceptance tests.
func FullOutage() Spec {
	return Spec{Outages: []Window{{Start: 0, End: time.Duration(1<<63 - 1)}}}
}

// Plan is a cluster-wide fault assignment: one spec for the repository and
// one per site, plus the seed that derives every injector's decision
// stream. Plans marshal to canonical JSON, so equal plans have equal bytes.
type Plan struct {
	Seed  uint64 `json:"seed"`
	Repo  Spec   `json:"repo"`
	Sites []Spec `json:"sites"`
	// LoadSpikes are demand-side fault windows: while elapsed time is inside
	// a spike, the offered arrival rate of any load generator consulting
	// RateAt is multiplied by Factor. A flash crowd is a fault of the
	// environment, not of a server, so it lives in the plan next to the
	// supply-side windows — same clock, same JSON round-trip, same
	// reproducibility.
	LoadSpikes []LoadSpike `json:"load_spikes,omitempty"`
}

// LoadSpike is one demand surge: the window it occupies on the plan clock
// and the multiplicative factor it applies to the base arrival rate.
type LoadSpike struct {
	Window
	Factor float64 `json:"factor"`
}

// Validate rejects unusable plans.
func (p *Plan) Validate() error {
	if err := p.Repo.Validate(); err != nil {
		return fmt.Errorf("repo: %w", err)
	}
	for i := range p.Sites {
		if err := p.Sites[i].Validate(); err != nil {
			return fmt.Errorf("site %d: %w", i, err)
		}
	}
	for i, sp := range p.LoadSpikes {
		if sp.End <= sp.Start {
			return fmt.Errorf("load spike %d: empty window [%v, %v)", i, sp.Start, sp.End)
		}
		if sp.Factor <= 0 {
			return fmt.Errorf("load spike %d: factor %v must be positive", i, sp.Factor)
		}
	}
	return nil
}

// RateAt returns the offered arrival rate at elapsed time on the plan
// clock: base multiplied by every containing spike's factor (overlapping
// spikes compound). Nil-tolerant — a nil plan never spikes.
func (p *Plan) RateAt(base float64, elapsed time.Duration) float64 {
	if p == nil {
		return base
	}
	rate := base
	for _, sp := range p.LoadSpikes {
		if sp.Contains(elapsed) {
			rate *= sp.Factor
		}
	}
	return rate
}

// Encode renders the plan as canonical (indented, key-ordered) JSON. Two
// plans generated from the same (config, sites, seed) encode to identical
// bytes — the property the determinism tests pin.
func (p *Plan) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Decode parses a plan previously produced by Encode. The result is
// normalized to the canonical in-memory form (empty slices nil, exactly
// what Encode omits), so decoding is lossless against re-encoding.
func Decode(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("faults: decode plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.normalize()
	return &p, nil
}

// normalize collapses empty slices to nil — the canonical form Encode's
// omitempty produces — so Decode∘Encode is the identity on decoded plans.
func (p *Plan) normalize() {
	if len(p.Sites) == 0 {
		p.Sites = nil
	}
	if len(p.LoadSpikes) == 0 {
		p.LoadSpikes = nil
	}
	p.Repo.normalize()
	for i := range p.Sites {
		p.Sites[i].normalize()
	}
}

// normalize collapses a spec's empty slices to nil (what omitempty emits).
func (s *Spec) normalize() {
	if len(s.Outages) == 0 {
		s.Outages = nil
	}
	if len(s.Rot) == 0 {
		s.Rot = nil
	}
	if len(s.Limps) == 0 {
		s.Limps = nil
	}
	if len(s.PartitionControl) == 0 {
		s.PartitionControl = nil
	}
	if len(s.PartitionData) == 0 {
		s.PartitionData = nil
	}
}

// SiteSpec returns site i's spec (the zero quiet spec when the plan has
// fewer sites). Nil-tolerant: a nil plan injects nothing anywhere.
func (p *Plan) SiteSpec(i int) Spec {
	if p == nil || i < 0 || i >= len(p.Sites) {
		return Spec{}
	}
	return p.Sites[i]
}

// RepoSpec returns the repository's spec (quiet on a nil plan).
func (p *Plan) RepoSpec() Spec {
	if p == nil {
		return Spec{}
	}
	return p.Repo
}

// PlanConfig parameterizes Generate: Level scales every drawn rate, so one
// knob sweeps a cluster from healthy (0) to badly degraded (1).
type PlanConfig struct {
	// Level in [0, 1] scales the drawn per-request fault rates.
	Level float64
	// MaxLatency bounds the per-server injected base latency.
	MaxLatency time.Duration
	// OutageProb is the probability each site receives one outage window.
	OutageProb float64
	// OutageMax bounds an outage window's length.
	OutageMax time.Duration
	// Horizon is the time span within which outage windows start.
	Horizon time.Duration
	// CorruptLevel in [0, 1] scales a drawn per-request wire-corruption
	// rate (≤4 % at level 1). Zero (the default) draws nothing — and, by
	// drawing from its own child stream, leaves every pre-existing plan's
	// bytes untouched.
	CorruptLevel float64
	// FaultRepo also draws faults for the repository. Off by default: the
	// paper's repository is the always-on root, and keeping it clean is
	// what makes degraded-mode fallback meaningful.
	FaultRepo bool
}

// DefaultPlanConfig returns a moderate chaos profile: a few percent of
// requests faulted at Level 1, tens of milliseconds of latency, and
// occasional sub-second outage windows inside a one-minute horizon.
func DefaultPlanConfig() PlanConfig {
	return PlanConfig{
		Level:      1,
		MaxLatency: 30 * time.Millisecond,
		OutageProb: 0.25,
		OutageMax:  500 * time.Millisecond,
		Horizon:    time.Minute,
	}
}

// Validate rejects unusable configs.
func (c *PlanConfig) Validate() error {
	if c.Level < 0 || c.Level > 1 {
		return fmt.Errorf("faults: Level %v outside [0, 1]", c.Level)
	}
	if c.OutageProb < 0 || c.OutageProb > 1 {
		return fmt.Errorf("faults: OutageProb %v outside [0, 1]", c.OutageProb)
	}
	if c.CorruptLevel < 0 || c.CorruptLevel > 1 {
		return fmt.Errorf("faults: CorruptLevel %v outside [0, 1]", c.CorruptLevel)
	}
	if c.MaxLatency < 0 || c.OutageMax < 0 || c.Horizon < 0 {
		return fmt.Errorf("faults: negative duration")
	}
	return nil
}

// Stream labels for plan generation; fixed so plans are stable across
// refactors that reorder the drawing code.
const (
	planRepoStream uint64 = iota + 301
	planSiteStream
	// planCorruptStream feeds the wire-corruption rate draws. A separate
	// child stream (not extra draws inside drawSpec) so plans generated
	// before corruption existed keep byte-identical Encode output.
	planCorruptStream
)

// Generate draws a fault plan for a cluster of the given size. Generation
// is a pure function of (cfg, sites, seed): per-server specs come from
// independent child streams, so adding a site never perturbs the others.
func Generate(cfg PlanConfig, sites int, seed uint64) (*Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if sites < 0 {
		return nil, fmt.Errorf("faults: negative site count %d", sites)
	}
	root := rng.New(seed)
	p := &Plan{Seed: seed, Sites: make([]Spec, sites)}
	if cfg.FaultRepo {
		p.Repo = drawSpec(cfg, root.Split(planRepoStream))
	}
	for i := 0; i < sites; i++ {
		p.Sites[i] = drawSpec(cfg, root.Split(planSiteStream, uint64(i)))
	}
	if cfg.CorruptLevel > 0 {
		for i := 0; i < sites; i++ {
			p.Sites[i].CorruptRate = cfg.CorruptLevel *
				root.Split(planCorruptStream, uint64(i)).Uniform(0, 0.04)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// drawSpec draws one server's spec. At Level 1 the expected per-request
// fault probability is ≈6 % split across the three kinds.
func drawSpec(cfg PlanConfig, s *rng.Stream) Spec {
	spec := Spec{
		ErrorRate:    cfg.Level * s.Uniform(0, 0.04),
		ResetRate:    cfg.Level * s.Uniform(0, 0.02),
		TruncateRate: cfg.Level * s.Uniform(0, 0.02),
	}
	if cfg.MaxLatency > 0 {
		spec.Latency = time.Duration(cfg.Level * s.Uniform(0, float64(cfg.MaxLatency)))
		spec.LatencyJitter = spec.Latency / 2
	}
	if s.Bool(cfg.OutageProb) && cfg.OutageMax > 0 {
		start := time.Duration(s.Uniform(0, float64(cfg.Horizon)))
		length := time.Duration(s.Uniform(float64(cfg.OutageMax)/4, float64(cfg.OutageMax)))
		spec.Outages = []Window{{Start: start, End: start + length}}
	}
	return spec
}
