// Package accesslog implements the statistics-collection side of the
// paper's Section 2 ("based on statistics collected, such as page access
// frequency, each local server decides ...") and Section 4.1's motivation
// for periodic re-execution: page-access counters are turned into
// frequency estimates, which yield a refreshed workload the planner can
// re-plan against.
package accesslog

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/units"
	"repro/internal/workload"
)

// Tap receives one callback per served page view, the hook the streaming
// estimator (internal/estimate) plugs into both the live server path
// (webserve.ClusterOptions.AccessTap, cluster-uptime seconds) and the
// simulator (httpsim.Config.AccessTap, virtual-clock seconds).
// Implementations must be safe for concurrent use: the live path calls
// Observe from every serving goroutine.
type Tap interface {
	Observe(site workload.SiteID, page workload.PageID, t float64)
}

// Counts maps pages to observed request counts over some window.
type Counts map[workload.PageID]int64

// Merge adds other's counts into c.
func (c Counts) Merge(other Counts) {
	for k, v := range other {
		c[k] += v
	}
}

// Total returns the sum of all counts.
func (c Counts) Total() int64 {
	var t int64
	for _, v := range c {
		t += v
	}
	return t
}

// EstimateWorkload returns a copy of the workload whose page frequencies
// are re-estimated from observed access counts: within each site, a page's
// frequency is its Laplace-smoothed share of the site's observed requests,
// scaled to the site's aggregate peak rate. Smoothing (add-one) keeps
// never-observed pages plannable instead of pinning them to zero — small
// windows would otherwise starve the cold tail. Hot flags are recomputed
// as the top HotPageFrac pages per site (diagnostic only; the planner uses
// frequencies, not flags).
func EstimateWorkload(w *workload.Workload, counts Counts) (*workload.Workload, error) {
	for pid := range counts {
		if pid < 0 || int(pid) >= w.NumPages() {
			return nil, fmt.Errorf("accesslog: count for unknown page %d", pid)
		}
		if counts[pid] < 0 {
			return nil, fmt.Errorf("accesslog: negative count for page %d", pid)
		}
	}
	out := &workload.Workload{
		Config:  w.Config,
		Seed:    w.Seed,
		Objects: w.Objects,
		Pages:   append([]workload.Page(nil), w.Pages...),
		Sites:   w.Sites,
	}
	for i := range w.Sites {
		pages := w.Sites[i].Pages
		var total int64
		for _, pid := range pages {
			total += counts[pid]
		}
		// Laplace smoothing: every page gets +1 pseudo-count.
		denom := float64(total) + float64(len(pages))
		rate := float64(w.Config.PageRatePerSite)
		for _, pid := range pages {
			share := (float64(counts[pid]) + 1) / denom
			out.Pages[pid].Freq = units.ReqPerSec(rate * share)
		}
		markHot(out, workload.SiteID(i))
	}
	return out, nil
}

// markHot sets the Hot flag on the top HotPageFrac pages of the site by
// estimated frequency.
func markHot(w *workload.Workload, i workload.SiteID) {
	pages := append([]workload.PageID(nil), w.Sites[i].Pages...)
	sort.Slice(pages, func(a, b int) bool {
		fa, fb := w.Pages[pages[a]].Freq, w.Pages[pages[b]].Freq
		if fa != fb { //repllint:allow float-compare — exact-bits tie-break keeps the comparator a strict weak order
			return fa > fb
		}
		return pages[a] < pages[b]
	})
	hot := int(float64(len(pages))*w.Config.HotPageFrac + 0.5)
	if hot < 1 {
		hot = 1
	}
	for rank, pid := range pages {
		w.Pages[pid].Hot = rank < hot
	}
}

// TopPages returns the n most-requested pages in counts, ties broken by ID.
func (c Counts) TopPages(n int) []workload.PageID {
	type kv struct {
		pid workload.PageID
		n   int64
	}
	all := make([]kv, 0, len(c))
	for pid, v := range c {
		all = append(all, kv{pid, v})
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].n != all[b].n {
			return all[a].n > all[b].n
		}
		return all[a].pid < all[b].pid
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]workload.PageID, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].pid
	}
	return out
}

// EWMA is a streaming exponentially-decayed access counter: each page's
// weight decays with half-life h, so bursts ("breaking news") surface
// quickly and fade when the story ages. It tracks one site's pages; not
// safe for concurrent use (one collector per serving goroutine, merged via
// Snapshot + Counts.Merge-style aggregation).
type EWMA struct {
	halfLife float64 // seconds
	now      float64
	weights  map[workload.PageID]float64
	updated  map[workload.PageID]float64
}

// NewEWMA builds a decayed counter with the given half-life in seconds.
func NewEWMA(halfLifeSeconds float64) (*EWMA, error) {
	if halfLifeSeconds <= 0 {
		return nil, fmt.Errorf("accesslog: half-life must be positive, got %v", halfLifeSeconds)
	}
	return &EWMA{
		halfLife: halfLifeSeconds,
		weights:  make(map[workload.PageID]float64),
		updated:  make(map[workload.PageID]float64),
	}, nil
}

// Observe records one access to page pid at time t (seconds, monotone
// non-decreasing).
func (e *EWMA) Observe(pid workload.PageID, t float64) {
	if t > e.now {
		e.now = t
	}
	e.weights[pid] = e.decayed(pid) + 1
	e.updated[pid] = e.now
}

// decayed returns pid's weight decayed to e.now.
func (e *EWMA) decayed(pid workload.PageID) float64 {
	w, ok := e.weights[pid]
	if !ok {
		return 0
	}
	dt := e.now - e.updated[pid]
	if dt <= 0 {
		return w
	}
	return w * math.Exp2(-dt/e.halfLife)
}

// Weight returns pid's current decayed weight.
func (e *EWMA) Weight(pid workload.PageID) float64 { return e.decayed(pid) }

// Advance moves the clock forward without observations.
func (e *EWMA) Advance(t float64) {
	if t > e.now {
		e.now = t
	}
}

// Snapshot rounds the decayed weights into Counts usable by
// EstimateWorkload (scaled by 1000 to keep precision through the integer
// interface).
func (e *EWMA) Snapshot() Counts {
	out := make(Counts, len(e.weights))
	for pid := range e.weights {
		if w := e.decayed(pid); w > 1e-9 {
			out[pid] = int64(w * 1000)
		}
	}
	return out
}
