package accesslog

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.SmallConfig(), 31)
}

// drawCounts samples page requests from the workload's true frequencies.
func drawCounts(w *workload.Workload, perSite int, seed uint64) Counts {
	s := rng.New(seed)
	counts := make(Counts)
	for i := range w.Sites {
		pages := w.Sites[i].Pages
		cum := make([]float64, len(pages))
		total := 0.0
		for idx, pid := range pages {
			total += float64(w.Pages[pid].Freq)
			cum[idx] = total
		}
		for n := 0; n < perSite; n++ {
			u := s.Float64() * total
			lo, hi := 0, len(cum)-1
			for lo < hi {
				mid := (lo + hi) / 2
				if cum[mid] < u {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			counts[pages[lo]]++
		}
	}
	return counts
}

func TestEstimateWorkloadRecoversFrequencies(t *testing.T) {
	w := testWorkload(t)
	counts := drawCounts(w, 20000, 7)
	est, err := EstimateWorkload(w, counts)
	if err != nil {
		t.Fatal(err)
	}
	if err := est.Validate(); err != nil {
		t.Fatal(err)
	}
	// Per-site rates are preserved.
	for i := range est.Sites {
		sum := 0.0
		for _, pid := range est.Sites[i].Pages {
			sum += float64(est.Pages[pid].Freq)
		}
		if math.Abs(sum-float64(w.Config.PageRatePerSite)) > 1e-9 {
			t.Errorf("site %d estimated rate %v", i, sum)
		}
	}
	// With 20k samples/site the estimated hot flags recover the true hot
	// set almost exactly.
	agree, total := 0, 0
	for j := range w.Pages {
		total++
		if est.Pages[j].Hot == w.Pages[j].Hot {
			agree++
		}
	}
	if frac := float64(agree) / float64(total); frac < 0.95 {
		t.Errorf("hot-set recovery %.2f, want ≥0.95", frac)
	}
	// Frequencies correlate: the known-hot pages must be estimated above
	// the known-cold ones on average.
	var hotMean, coldMean float64
	var hotN, coldN int
	for j := range w.Pages {
		if w.Pages[j].Hot {
			hotMean += float64(est.Pages[j].Freq)
			hotN++
		} else {
			coldMean += float64(est.Pages[j].Freq)
			coldN++
		}
	}
	if hotMean/float64(hotN) <= 2*coldMean/float64(coldN) {
		t.Error("estimated hot pages not clearly hotter than cold ones")
	}
}

func TestEstimateWorkloadSmoothsUnseen(t *testing.T) {
	w := testWorkload(t)
	// One single observation: everything else must still get a positive
	// frequency (Laplace smoothing).
	counts := Counts{w.Sites[0].Pages[0]: 1}
	est, err := EstimateWorkload(w, counts)
	if err != nil {
		t.Fatal(err)
	}
	for j := range est.Pages {
		if est.Pages[j].Freq <= 0 {
			t.Fatalf("page %d got zero frequency", j)
		}
	}
}

func TestEstimateWorkloadValidation(t *testing.T) {
	w := testWorkload(t)
	if _, err := EstimateWorkload(w, Counts{workload.PageID(w.NumPages()): 1}); err == nil {
		t.Error("unknown page accepted")
	}
	if _, err := EstimateWorkload(w, Counts{0: -1}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestEstimateDoesNotMutateOriginal(t *testing.T) {
	w := testWorkload(t)
	before := w.Pages[0].Freq
	counts := drawCounts(w, 100, 9)
	if _, err := EstimateWorkload(w, counts); err != nil {
		t.Fatal(err)
	}
	if w.Pages[0].Freq != before {
		t.Error("EstimateWorkload mutated the input")
	}
}

func TestCountsMergeTotalTop(t *testing.T) {
	a := Counts{1: 5, 2: 3}
	b := Counts{2: 2, 3: 7}
	a.Merge(b)
	if a[2] != 5 || a[3] != 7 {
		t.Errorf("merge wrong: %v", a)
	}
	if a.Total() != 17 {
		t.Errorf("total = %d", a.Total())
	}
	top := a.TopPages(2)
	if len(top) != 2 || top[0] != 3 || top[1] != 1 {
		t.Errorf("top = %v", top)
	}
	if got := a.TopPages(10); len(got) != 3 {
		t.Errorf("overlong top = %v", got)
	}
}

func TestEWMADecay(t *testing.T) {
	e, err := NewEWMA(10) // half-life 10 s
	if err != nil {
		t.Fatal(err)
	}
	e.Observe(1, 0)
	if w := e.Weight(1); math.Abs(w-1) > 1e-12 {
		t.Fatalf("fresh weight = %v", w)
	}
	e.Advance(10)
	if w := e.Weight(1); math.Abs(w-0.5) > 1e-9 {
		t.Errorf("weight after one half-life = %v, want 0.5", w)
	}
	e.Advance(20)
	if w := e.Weight(1); math.Abs(w-0.25) > 1e-9 {
		t.Errorf("weight after two half-lives = %v, want 0.25", w)
	}
}

func TestEWMABurstSurfaces(t *testing.T) {
	e, err := NewEWMA(60)
	if err != nil {
		t.Fatal(err)
	}
	// Page 1 accumulated slowly long ago; page 2 bursts now.
	for i := 0; i < 20; i++ {
		e.Observe(1, float64(i))
	}
	for i := 0; i < 10; i++ {
		e.Observe(2, 600+float64(i))
	}
	if e.Weight(2) <= e.Weight(1) {
		t.Errorf("burst (%.2f) did not overtake stale bulk (%.2f)", e.Weight(2), e.Weight(1))
	}
	snap := e.Snapshot()
	if snap[2] <= snap[1] {
		t.Errorf("snapshot does not reflect burst: %v", snap)
	}
}

func TestEWMAValidation(t *testing.T) {
	if _, err := NewEWMA(0); err == nil {
		t.Error("zero half-life accepted")
	}
	if _, err := NewEWMA(-1); err == nil {
		t.Error("negative half-life accepted")
	}
}
