// Package netsim models the network attributes of the paper's environment:
// the *estimated* per-site transfer rates and connection overheads the
// planner uses when deciding the object partition, and the *actual*
// per-request values the simulator draws, which deviate from the estimates
// according to the §5.1 perturbation model (60 % of local requests within
// ±10 % of the estimate, 30 % at 1/3-1/2 of it, 10 % at 1/6-1/4; repository
// within ±20 %; local overhead −10 %..+50 %).
package netsim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// Config holds the estimation ranges of Table 1. Estimates are drawn once
// per (site, run).
type Config struct {
	LocalRateLo units.Rate `json:"localRateLo"` // B(S_i) lower bound, 3 KB/s
	LocalRateHi units.Rate `json:"localRateHi"` // 10 KB/s
	RepoRateLo  units.Rate `json:"repoRateLo"`  // B(R,S_i) lower bound, 0.3 KB/s
	RepoRateHi  units.Rate `json:"repoRateHi"`  // 2 KB/s

	LocalOvhdLo units.Seconds `json:"localOvhdLo"` // Ovhd(S_i) lower bound, 1.275 s
	LocalOvhdHi units.Seconds `json:"localOvhdHi"` // 1.775 s
	RepoOvhdLo  units.Seconds `json:"repoOvhdLo"`  // Ovhd(R,S_i) lower bound, 1.975 s
	RepoOvhdHi  units.Seconds `json:"repoOvhdHi"`  // 2.475 s
}

// DefaultConfig returns the Table-1 network parameters.
func DefaultConfig() Config {
	return Config{
		LocalRateLo: 3 * units.KBPerSec,
		LocalRateHi: 10 * units.KBPerSec,
		RepoRateLo:  0.3 * units.KBPerSec,
		RepoRateHi:  2 * units.KBPerSec,
		LocalOvhdLo: 1.275,
		LocalOvhdHi: 1.775,
		RepoOvhdLo:  1.975,
		RepoOvhdHi:  2.475,
	}
}

// Validate rejects non-physical configurations.
func (c *Config) Validate() error {
	switch {
	case c.LocalRateLo <= 0 || c.LocalRateHi < c.LocalRateLo:
		return fmt.Errorf("netsim: bad local rate range [%v,%v]", c.LocalRateLo, c.LocalRateHi)
	case c.RepoRateLo <= 0 || c.RepoRateHi < c.RepoRateLo:
		return fmt.Errorf("netsim: bad repo rate range [%v,%v]", c.RepoRateLo, c.RepoRateHi)
	case c.LocalOvhdLo < 0 || c.LocalOvhdHi < c.LocalOvhdLo:
		return fmt.Errorf("netsim: bad local overhead range [%v,%v]", c.LocalOvhdLo, c.LocalOvhdHi)
	case c.RepoOvhdLo < 0 || c.RepoOvhdHi < c.RepoOvhdLo:
		return fmt.Errorf("netsim: bad repo overhead range [%v,%v]", c.RepoOvhdLo, c.RepoOvhdHi)
	}
	return nil
}

// SiteEstimate holds the planner-visible network attributes of one site:
// B(S_i), B(R,S_i), Ovhd(S_i), Ovhd(R,S_i).
type SiteEstimate struct {
	LocalRate units.Rate    `json:"localRate"`
	RepoRate  units.Rate    `json:"repoRate"`
	LocalOvhd units.Seconds `json:"localOvhd"`
	RepoOvhd  units.Seconds `json:"repoOvhd"`
}

// Estimates is the per-site set of estimated network attributes for a run.
type Estimates struct {
	Sites []SiteEstimate `json:"sites"`
}

// DrawEstimates draws one estimate per site from the configured ranges.
func DrawEstimates(cfg Config, numSites int, stream *rng.Stream) (*Estimates, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if numSites <= 0 {
		return nil, fmt.Errorf("netsim: numSites must be positive, got %d", numSites)
	}
	e := &Estimates{Sites: make([]SiteEstimate, numSites)}
	for i := range e.Sites {
		s := stream.Split(uint64(i))
		e.Sites[i] = SiteEstimate{
			LocalRate: units.Rate(s.Uniform(float64(cfg.LocalRateLo), float64(cfg.LocalRateHi))),
			RepoRate:  units.Rate(s.Uniform(float64(cfg.RepoRateLo), float64(cfg.RepoRateHi))),
			LocalOvhd: units.Seconds(s.Uniform(float64(cfg.LocalOvhdLo), float64(cfg.LocalOvhdHi))),
			RepoOvhd:  units.Seconds(s.Uniform(float64(cfg.RepoOvhdLo), float64(cfg.RepoOvhdHi))),
		}
	}
	return e, nil
}

// Site returns the estimate for site i.
func (e *Estimates) Site(i int) SiteEstimate { return e.Sites[i] }
