package netsim

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/units"
)

func TestDrawEstimatesRanges(t *testing.T) {
	cfg := DefaultConfig()
	e, err := DrawEstimates(cfg, 50, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sites) != 50 {
		t.Fatalf("sites = %d", len(e.Sites))
	}
	for i, s := range e.Sites {
		if s.LocalRate < cfg.LocalRateLo || s.LocalRate > cfg.LocalRateHi {
			t.Errorf("site %d LocalRate %v out of range", i, s.LocalRate)
		}
		if s.RepoRate < cfg.RepoRateLo || s.RepoRate > cfg.RepoRateHi {
			t.Errorf("site %d RepoRate %v out of range", i, s.RepoRate)
		}
		if s.LocalOvhd < cfg.LocalOvhdLo || s.LocalOvhd > cfg.LocalOvhdHi {
			t.Errorf("site %d LocalOvhd %v out of range", i, s.LocalOvhd)
		}
		if s.RepoOvhd < cfg.RepoOvhdLo || s.RepoOvhd > cfg.RepoOvhdHi {
			t.Errorf("site %d RepoOvhd %v out of range", i, s.RepoOvhd)
		}
		// In the paper's environment the repository is always the slower
		// path per byte.
		if s.RepoRate >= s.LocalRate {
			t.Errorf("site %d: repo rate %v not below local rate %v", i, s.RepoRate, s.LocalRate)
		}
	}
}

func TestDrawEstimatesDeterministic(t *testing.T) {
	a, _ := DrawEstimates(DefaultConfig(), 10, rng.New(5))
	b, _ := DrawEstimates(DefaultConfig(), 10, rng.New(5))
	for i := range a.Sites {
		if a.Sites[i] != b.Sites[i] {
			t.Fatalf("site %d estimates differ across identical seeds", i)
		}
	}
}

func TestDrawEstimatesValidation(t *testing.T) {
	if _, err := DrawEstimates(DefaultConfig(), 0, rng.New(1)); err == nil {
		t.Error("zero sites accepted")
	}
	bad := DefaultConfig()
	bad.LocalRateHi = bad.LocalRateLo - 1
	if _, err := DrawEstimates(bad, 3, rng.New(1)); err == nil {
		t.Error("inverted rate range accepted")
	}
	bad = DefaultConfig()
	bad.RepoOvhdLo = -1
	if _, err := DrawEstimates(bad, 3, rng.New(1)); err == nil {
		t.Error("negative overhead accepted")
	}
}

func TestPerturbConfigValidation(t *testing.T) {
	good := DefaultPerturbConfig()
	if err := good.Validate(); err != nil {
		t.Errorf("default perturb config invalid: %v", err)
	}
	bad := DefaultPerturbConfig()
	bad.LocalRate[0].Frac = 0.5 // no longer sums to 1
	if err := bad.Validate(); err == nil {
		t.Error("non-normalized mixture accepted")
	}
	bad2 := DefaultPerturbConfig()
	bad2.RepoRate = nil
	if err := bad2.Validate(); err == nil {
		t.Error("empty mixture accepted")
	}
	bad3 := DefaultPerturbConfig()
	bad3.LocalOvhd[0].Lo = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero factor accepted")
	}
}

func TestPerturberMixtureFractions(t *testing.T) {
	est := SiteEstimate{LocalRate: 6 * units.KBPerSec, RepoRate: units.KBPerSec, LocalOvhd: 1.5, RepoOvhd: 2.2}
	p, err := NewPerturber(DefaultPerturbConfig(), est, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 100000
	var near, mid, far int
	for i := 0; i < n; i++ {
		f := float64(p.LocalRate()) / float64(est.LocalRate)
		switch {
		case f >= 0.9 && f <= 1.1:
			near++
		case f >= 1.0/3-1e-9 && f <= 0.5+1e-9:
			mid++
		case f >= 1.0/6-1e-9 && f <= 0.25+1e-9:
			far++
		default:
			t.Fatalf("local rate factor %v outside every class", f)
		}
	}
	if got := float64(near) / n; math.Abs(got-0.6) > 0.01 {
		t.Errorf("±10%% class frequency = %v, want 0.6", got)
	}
	if got := float64(mid) / n; math.Abs(got-0.3) > 0.01 {
		t.Errorf("1/3-1/2 class frequency = %v, want 0.3", got)
	}
	if got := float64(far) / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("1/6-1/4 class frequency = %v, want 0.1", got)
	}
}

func TestPerturberRepoAndOverheadBounds(t *testing.T) {
	est := SiteEstimate{LocalRate: 6 * units.KBPerSec, RepoRate: units.KBPerSec, LocalOvhd: 1.5, RepoOvhd: 2.2}
	p, err := NewPerturber(DefaultPerturbConfig(), est, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		if f := float64(p.RepoRate()) / float64(est.RepoRate); f < 0.8 || f > 1.2 {
			t.Fatalf("repo rate factor %v outside ±20%%", f)
		}
		if f := float64(p.LocalOvhd()) / float64(est.LocalOvhd); f < 0.9 || f > 1.5 {
			t.Fatalf("local overhead factor %v outside [-10%%,+50%%]", f)
		}
		if f := float64(p.RepoOvhd()) / float64(est.RepoOvhd); f < 0.8 || f > 1.2 {
			t.Fatalf("repo overhead factor %v outside ±20%%", f)
		}
	}
}

func TestNoPerturbIsIdentity(t *testing.T) {
	est := SiteEstimate{LocalRate: 5 * units.KBPerSec, RepoRate: units.KBPerSec, LocalOvhd: 1.3, RepoOvhd: 2.0}
	p, err := NewPerturber(NoPerturbConfig(), est, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if p.LocalRate() != est.LocalRate || p.RepoRate() != est.RepoRate {
			t.Fatal("identity perturbation changed a rate")
		}
		if p.LocalOvhd() != est.LocalOvhd || p.RepoOvhd() != est.RepoOvhd {
			t.Fatal("identity perturbation changed an overhead")
		}
	}
	if p.Estimate() != est {
		t.Error("Estimate() does not round-trip")
	}
}

func TestNewPerturberRejectsBadConfig(t *testing.T) {
	bad := DefaultPerturbConfig()
	bad.LocalRate = nil
	if _, err := NewPerturber(bad, SiteEstimate{}, rng.New(1)); err == nil {
		t.Error("bad config accepted")
	}
}

func TestPerturbScale(t *testing.T) {
	base := DefaultPerturbConfig()
	id := base.Scale(0)
	if err := id.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, c := range id.LocalRate {
		if c.Lo != 1 || c.Hi != 1 {
			t.Errorf("severity 0 not identity: %+v", c)
		}
	}
	same := base.Scale(1)
	for i, c := range same.LocalRate {
		if math.Abs(c.Lo-base.LocalRate[i].Lo) > 1e-12 || math.Abs(c.Hi-base.LocalRate[i].Hi) > 1e-12 {
			t.Errorf("severity 1 changed class %d: %+v", i, c)
		}
	}
	harsh := base.Scale(3)
	if err := harsh.Validate(); err != nil {
		t.Fatal(err)
	}
	// The congestion class (1/6..1/4) scaled by 3 would go negative — it
	// must clamp positive.
	for _, c := range harsh.LocalRate {
		if c.Lo <= 0 {
			t.Errorf("scaled class not clamped: %+v", c)
		}
		if c.Hi < c.Lo {
			t.Errorf("inverted class after scale: %+v", c)
		}
	}
}
