package netsim

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/units"
)

// FactorClass is one row of the perturbation mixture: with probability Frac,
// the actual value is the estimate multiplied by a uniform draw in [Lo, Hi].
type FactorClass struct {
	Frac float64 `json:"frac"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

// PerturbConfig describes how actual per-request network attributes deviate
// from the planner's estimates (§5.1). The defaults deliberately degrade
// local performance far more than the repository's, to stress plans that
// replicated aggressively on optimistic estimates.
type PerturbConfig struct {
	LocalRate []FactorClass `json:"localRate"` // 60 % ±10 %, 30 % ×[1/3,1/2], 10 % ×[1/6,1/4]
	RepoRate  []FactorClass `json:"repoRate"`  // ±20 %
	LocalOvhd []FactorClass `json:"localOvhd"` // −10 %..+50 %
	RepoOvhd  []FactorClass `json:"repoOvhd"`  // ±20 %
}

// DefaultPerturbConfig returns the §5.1 perturbation model.
func DefaultPerturbConfig() PerturbConfig {
	return PerturbConfig{
		LocalRate: []FactorClass{
			{Frac: 0.60, Lo: 0.90, Hi: 1.10},
			{Frac: 0.30, Lo: 1.0 / 3.0, Hi: 0.5},
			{Frac: 0.10, Lo: 1.0 / 6.0, Hi: 0.25},
		},
		RepoRate:  []FactorClass{{Frac: 1, Lo: 0.80, Hi: 1.20}},
		LocalOvhd: []FactorClass{{Frac: 1, Lo: 0.90, Hi: 1.50}},
		RepoOvhd:  []FactorClass{{Frac: 1, Lo: 0.80, Hi: 1.20}},
	}
}

// NoPerturbConfig returns an identity perturbation (actual == estimate) —
// useful for validating that the planner is optimal under its own model.
func NoPerturbConfig() PerturbConfig {
	id := []FactorClass{{Frac: 1, Lo: 1, Hi: 1}}
	return PerturbConfig{LocalRate: id, RepoRate: id, LocalOvhd: id, RepoOvhd: id}
}

// Scale returns a perturbation whose deviation from the identity is the
// base's scaled by severity: each class bound b becomes 1 + severity·(b−1),
// clamped to stay positive. Severity 0 is the identity, 1 the base model,
// 2 twice as hostile — the knob behind the sensitivity study of how far
// actual conditions may drift from the planner's estimates before its
// advantage erodes.
func (c PerturbConfig) Scale(severity float64) PerturbConfig {
	scale := func(cs []FactorClass) []FactorClass {
		out := make([]FactorClass, len(cs))
		for i, f := range cs {
			lo := 1 + severity*(f.Lo-1)
			hi := 1 + severity*(f.Hi-1)
			if lo < 1e-3 {
				lo = 1e-3
			}
			if hi < lo {
				hi = lo
			}
			out[i] = FactorClass{Frac: f.Frac, Lo: lo, Hi: hi}
		}
		return out
	}
	return PerturbConfig{
		LocalRate: scale(c.LocalRate),
		RepoRate:  scale(c.RepoRate),
		LocalOvhd: scale(c.LocalOvhd),
		RepoOvhd:  scale(c.RepoOvhd),
	}
}

func validateClasses(name string, cs []FactorClass) error {
	if len(cs) == 0 {
		return fmt.Errorf("netsim: %s perturbation classes empty", name)
	}
	sum := 0.0
	for i, c := range cs {
		if c.Frac <= 0 {
			return fmt.Errorf("netsim: %s class %d has non-positive fraction", name, i)
		}
		if c.Lo <= 0 || c.Hi < c.Lo {
			return fmt.Errorf("netsim: %s class %d has bad factor range [%v,%v]", name, i, c.Lo, c.Hi)
		}
		sum += c.Frac
	}
	if sum < 1-1e-9 || sum > 1+1e-9 {
		return fmt.Errorf("netsim: %s class fractions sum to %v, want 1", name, sum)
	}
	return nil
}

// Validate checks all four mixtures.
func (c *PerturbConfig) Validate() error {
	if err := validateClasses("LocalRate", c.LocalRate); err != nil {
		return err
	}
	if err := validateClasses("RepoRate", c.RepoRate); err != nil {
		return err
	}
	if err := validateClasses("LocalOvhd", c.LocalOvhd); err != nil {
		return err
	}
	return validateClasses("RepoOvhd", c.RepoOvhd)
}

// Perturber draws actual per-request network attributes around a site's
// estimates. One Perturber serves one site within one simulation run; it is
// not safe for concurrent use (each worker owns its own stream).
type Perturber struct {
	cfg PerturbConfig
	est SiteEstimate
	s   *rng.Stream
}

// NewPerturber builds a perturber for one site.
func NewPerturber(cfg PerturbConfig, est SiteEstimate, stream *rng.Stream) (*Perturber, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Perturber{cfg: cfg, est: est, s: stream}, nil
}

func drawFactor(cs []FactorClass, s *rng.Stream) float64 {
	u := s.Float64()
	acc := 0.0
	for _, c := range cs {
		acc += c.Frac
		if u < acc {
			return s.Uniform(c.Lo, c.Hi)
		}
	}
	last := cs[len(cs)-1]
	return s.Uniform(last.Lo, last.Hi)
}

// LocalRate returns the actual transfer rate for one request served by the
// local site.
func (p *Perturber) LocalRate() units.Rate {
	return units.Rate(float64(p.est.LocalRate) * drawFactor(p.cfg.LocalRate, p.s))
}

// RepoRate returns the actual transfer rate for one request served by the
// repository for this site's clients.
func (p *Perturber) RepoRate() units.Rate {
	return units.Rate(float64(p.est.RepoRate) * drawFactor(p.cfg.RepoRate, p.s))
}

// LocalOvhd returns the actual connection overhead of one local request.
func (p *Perturber) LocalOvhd() units.Seconds {
	return units.Seconds(float64(p.est.LocalOvhd) * drawFactor(p.cfg.LocalOvhd, p.s))
}

// RepoOvhd returns the actual connection overhead of one repository request.
func (p *Perturber) RepoOvhd() units.Seconds {
	return units.Seconds(float64(p.est.RepoOvhd) * drawFactor(p.cfg.RepoOvhd, p.s))
}

// Estimate returns the site estimate the perturber perturbs around.
func (p *Perturber) Estimate() SiteEstimate { return p.est }
