package controller

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/webserve"
)

// AdaptOptions tunes the adaptive re-planning loop.
type AdaptOptions struct {
	// Interval is the drift-check period in continuous mode (default 1s).
	// One-shot callers use CheckNow and never start the loop.
	Interval time.Duration
	// Detector configures the drift thresholds (estimate.DetectorConfig
	// zero values take that package's defaults).
	Detector estimate.DetectorConfig
	// Workers bounds the re-planning concurrency (0 = GOMAXPROCS); plans
	// are identical at any width.
	Workers int
	// Metrics, when non-nil, receives the adapt counters (adapt.checks,
	// adapt.triggers, adapt.replans, adapt.noops, adapt.copy_bytes) and the
	// adapt.drift_l1 gauge.
	Metrics *telemetry.Registry
	// Log, when non-nil, receives one line per check outcome.
	Log io.Writer
	// Journal, when non-nil, records every drift check ("adapt.check"),
	// re-plan ("adapt.replanned" + "plan.applied" mode=adapt) and no-op
	// ("adapt.noop") as structured events.
	Journal *trace.Journal
}

func (o AdaptOptions) normalize() AdaptOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	return o
}

// Cycle is one drift check's outcome.
type Cycle struct {
	// Decision is the detector's verdict on this check.
	Decision estimate.Decision
	// Replanned reports that a new placement shipped to the cluster.
	Replanned bool
	// Noop reports that the detector triggered but re-planning produced a
	// placement identical to the live one, so nothing shipped.
	Noop bool
	// Delta is the shipped (or would-be) change summary; nil when the
	// detector did not trigger. On a re-plan, Delta.CopyBytes is the
	// bytes-moved cost journaled for the adaptation.
	Delta *repair.Delta
}

// Adapter closes the loop the paper's §4.1 leaves open: it watches a
// streaming frequency estimate (fed by the cluster's access-log tap),
// detects drift against the traffic the live plan was built from, and when
// the drift is worth acting on re-runs the planner and ships only the plan
// delta through Cluster.ApplyPlan — journaling bytes-moved as the cost.
// Placement targets are CDN-style clusters, so an unchanged placement is
// explicitly recognized and never re-copied.
//
// Use CheckNow for a synchronous one-shot cycle (replserve -adapt without
// -serve), or Start/Stop for the continuous loop.
type Adapter struct {
	cluster *webserve.Cluster
	est     *estimate.Estimator
	det     *estimate.Detector
	opts    AdaptOptions
	start   time.Time

	mu        sync.Mutex
	env       *model.Env       // environment the live plan was built from
	plan      *model.Placement // the live placement
	checks    int
	triggers  int
	replans   int
	noops     int
	copyBytes units.ByteSize
	lastErr   error

	cChecks, cTriggers, cReplans, cNoops, cCopyBytes *telemetry.Counter
	gDriftL1                                         *telemetry.Gauge

	stop chan struct{}
	done chan struct{}
}

// NewAdapter builds the adaptive loop for a running cluster. env and p are
// the environment and placement the cluster currently serves (the drift
// baseline); est must be the estimator wired into the cluster as its
// access tap.
func NewAdapter(env *model.Env, p *model.Placement, cluster *webserve.Cluster, est *estimate.Estimator, opts AdaptOptions) (*Adapter, error) {
	det, err := estimate.NewDetector(estimate.BaselineVector(env.W), opts.Detector)
	if err != nil {
		return nil, err
	}
	opts = opts.normalize()
	a := &Adapter{
		cluster: cluster,
		est:     est,
		det:     det,
		opts:    opts,
		env:     env,
		plan:    p,
		start:   time.Now(),
	}
	if reg := opts.Metrics; reg != nil {
		a.cChecks = reg.Counter("adapt.checks")
		a.cTriggers = reg.Counter("adapt.triggers")
		a.cReplans = reg.Counter("adapt.replans")
		a.cNoops = reg.Counter("adapt.noops")
		a.cCopyBytes = reg.Counter("adapt.copy_bytes")
		a.gDriftL1 = reg.Gauge("adapt.drift_l1")
	}
	return a, nil
}

// Start launches the continuous loop: one CheckNow per Interval on the
// cluster-uptime clock. Stop ends it.
func (a *Adapter) Start() {
	a.stop = make(chan struct{})
	a.done = make(chan struct{})
	go a.loop()
}

// Stop ends the loop and waits for it to exit.
func (a *Adapter) Stop() {
	close(a.stop)
	<-a.done
}

func (a *Adapter) loop() {
	defer close(a.done)
	ticker := time.NewTicker(a.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			if _, err := a.CheckNow(time.Since(a.start).Seconds()); err != nil {
				a.mu.Lock()
				a.lastErr = err
				a.mu.Unlock()
				a.opts.Journal.Record("adapt.error", trace.A(trace.AttrReason, err.Error()))
				a.logf("%v", err)
			}
		}
	}
}

// CheckNow runs one synchronous adapt cycle at estimator time t (seconds):
// snapshot the estimate, check drift, and — when the detector triggers —
// re-plan against the re-estimated workload and ship the placement delta.
// Serialized internally; safe to call concurrently with the loop.
func (a *Adapter) CheckNow(t float64) (*Cycle, error) {
	a.mu.Lock()
	defer a.mu.Unlock()

	snap := a.est.Snapshot(t)
	dec, err := a.det.Check(snap.FreqVector(a.env.W.NumPages()))
	if err != nil {
		return nil, fmt.Errorf("controller: drift check: %w", err)
	}
	a.checks++
	a.cChecks.Inc()
	a.gDriftL1.Set(dec.L1)
	a.opts.Journal.Record("adapt.check",
		trace.F("l1", dec.L1),
		trace.F("topk_churn", dec.TopKChurn),
		trace.A("trigger", fmt.Sprint(dec.Trigger)))
	out := &Cycle{Decision: dec}
	if !dec.Trigger {
		return out, nil
	}
	a.triggers++
	a.cTriggers.Inc()
	a.logf("drift trigger: L1=%.3f topk=%.2f, re-planning", dec.L1, dec.TopKChurn)

	// Re-estimate the workload from the snapshot and re-plan against it.
	w2, err := snap.EstimateWorkload(a.env.W)
	if err != nil {
		return nil, fmt.Errorf("controller: re-estimate: %w", err)
	}
	env2, err := model.NewEnv(w2, a.env.Est, a.env.Budgets)
	if err != nil {
		return nil, fmt.Errorf("controller: re-estimated env: %w", err)
	}
	env2.Alpha1, env2.Alpha2 = a.env.Alpha1, a.env.Alpha2
	fresh, _, err := core.Plan(env2, core.Options{Workers: a.opts.Workers})
	if err != nil {
		return nil, fmt.Errorf("controller: re-plan: %w", err)
	}

	delta := repair.ChangeDelta(a.env, env2, a.plan, fresh)
	out.Delta = &delta

	// Only ship a delta: an unchanged placement (no new replicas, no
	// flipped local/remote marks) must cost zero bytes and zero churn.
	diff, err := model.Diff(a.plan, fresh)
	if err != nil {
		return nil, fmt.Errorf("controller: plan diff: %w", err)
	}
	if !diff.Changed() {
		a.noops++
		a.cNoops.Inc()
		a.env = env2 // the re-estimated traffic is the new baseline
		a.det.Rebase(estimate.BaselineVector(w2))
		a.opts.Journal.Record("adapt.noop",
			trace.F("l1", dec.L1),
			trace.F("d_stale", delta.DBefore))
		a.logf("re-plan is a no-op (placement unchanged), baseline rebased")
		out.Noop = true
		return out, nil
	}

	if err := a.cluster.ApplyPlan(w2, fresh); err != nil {
		return nil, fmt.Errorf("controller: adapt apply: %w", err)
	}
	a.env = env2
	a.plan = fresh
	a.replans++
	a.copyBytes += delta.CopyBytes
	a.cReplans.Inc()
	a.cCopyBytes.Add(int64(delta.CopyBytes))
	a.det.Rebase(estimate.BaselineVector(w2))
	a.opts.Journal.Record("adapt.replanned",
		trace.I("copy_bytes", int64(delta.CopyBytes)),
		trace.F("d_stale", delta.DBefore),
		trace.F("d_after", delta.DAfter))
	a.opts.Journal.Record("plan.applied",
		trace.A("mode", "adapt"),
		trace.I("copy_bytes", int64(delta.CopyBytes)))
	a.logf("adapted: D %.4f -> %.4f, %d bytes copied",
		delta.DBefore, delta.DAfter, int64(delta.CopyBytes))
	out.Replanned = true
	return out, nil
}

func (a *Adapter) logf(format string, args ...interface{}) {
	if a.opts.Log != nil {
		fmt.Fprintf(a.opts.Log, "adapt: "+format+"\n", args...)
	}
}

// Counts returns how many checks, triggers, re-plans and no-ops the
// adapter has performed.
func (a *Adapter) Counts() (checks, triggers, replans, noops int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.checks, a.triggers, a.replans, a.noops
}

// CopyBytes returns the total adaptation traffic shipped so far.
func (a *Adapter) CopyBytes() units.ByteSize {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.copyBytes
}

// Current returns the environment and placement the cluster serves now.
func (a *Adapter) Current() (*model.Env, *model.Placement) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.env, a.plan
}

// Err returns the last loop error, nil if none.
func (a *Adapter) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}
