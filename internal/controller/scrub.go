package controller

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/htmlrefs"
	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// ScrubOptions tunes the background integrity scrubber.
type ScrubOptions struct {
	// Interval is the scrub period in continuous mode (default 2s). One-shot
	// callers use RunCycle and never start the loop.
	Interval time.Duration
	// Timeout bounds each verification fetch (default 5s).
	Timeout time.Duration
	// Metrics, when non-nil, receives the scrub counters (scrub.cycles,
	// scrub.objects, scrub.clean, scrub.corrupt, scrub.errors, scrub.repairs,
	// scrub.repair_bytes).
	Metrics *telemetry.Registry
	// Log, when non-nil, receives one line per finding and repair.
	Log io.Writer
	// Journal, when non-nil, records every finding ("scrub.corrupt"), repair
	// ("scrub.repaired" + "plan.applied" mode=scrub) and cycle summary
	// ("scrub.cycle") as structured events.
	Journal *trace.Journal
}

func (o ScrubOptions) normalize() ScrubOptions {
	if o.Interval <= 0 {
		o.Interval = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// Finding is one corrupt replica the scrubber caught: site i's stored copy
// of object k failed end-to-end verification.
type Finding struct {
	Site   workload.SiteID
	Object workload.ObjectID
	Reason string
}

// ScrubCycle is one full scrub pass's outcome.
type ScrubCycle struct {
	// Checked counts replicas fetched and verified (down sites are skipped).
	Checked int
	// Clean counts replicas that verified.
	Clean int
	// Corrupt lists the replicas that failed verification.
	Corrupt []Finding
	// Errors counts fetch failures (site unreachable mid-scrub, timeouts) —
	// availability problems for the supervisor, not integrity findings.
	Errors int
	// Repaired reports that the corrupt replicas were re-shipped and
	// re-verified clean this cycle.
	Repaired bool
	// RepairBytes is the anti-entropy traffic: only the corrupt replicas'
	// bytes, never a full re-copy.
	RepairBytes units.ByteSize
}

// Scrubber is the anti-entropy loop: it walks the live placement replica by
// replica, re-fetches each stored object from its site, and verifies the
// self-describing payload end to end — the only check that catches replica
// rot and wire corruption, which are invisible to availability probes (the
// transfer succeeds; the bytes are wrong). A finding prunes the replica
// from a shadow placement, prices the delta-only repair with the same
// machinery adaptive re-planning uses, re-ships the replicas through
// ApplyPlan, and re-verifies. The paper assumes replicas, once placed, stay
// byte-identical to the repository master; this loop enforces that
// assumption instead of trusting it.
//
// Use RunCycle for a synchronous one-shot pass (replserve -scrub without
// -serve), or Start/Stop for the continuous loop. The scrubber composes
// with the supervisor and the adapter: it reads whatever placement is live
// via Cluster.CurrentPlan, so a repair or adaptation mid-scrub is picked up
// on the next cycle.
type Scrubber struct {
	env     *model.Env
	cluster *webserve.Cluster
	opts    ScrubOptions
	http    *http.Client

	mu          sync.Mutex
	cycles      int
	objects     int
	clean       int
	corrupt     int
	fetchErrs   int
	repairs     int
	repairBytes units.ByteSize
	lastErr     error

	cCycles, cObjects, cClean, cCorrupt *telemetry.Counter
	cErrors, cRepairs, cRepairBytes     *telemetry.Counter

	stop chan struct{}
	done chan struct{}
}

// NewScrubber builds the integrity loop for a running cluster. env is the
// planning environment the cluster serves (used to price repair deltas).
func NewScrubber(env *model.Env, cluster *webserve.Cluster, opts ScrubOptions) *Scrubber {
	opts = opts.normalize()
	s := &Scrubber{
		env:     env,
		cluster: cluster,
		opts:    opts,
		http:    &http.Client{Timeout: opts.Timeout},
	}
	if reg := opts.Metrics; reg != nil {
		s.cCycles = reg.Counter("scrub.cycles")
		s.cObjects = reg.Counter("scrub.objects")
		s.cClean = reg.Counter("scrub.clean")
		s.cCorrupt = reg.Counter("scrub.corrupt")
		s.cErrors = reg.Counter("scrub.errors")
		s.cRepairs = reg.Counter("scrub.repairs")
		s.cRepairBytes = reg.Counter("scrub.repair_bytes")
	}
	return s
}

// Start launches the continuous loop: one RunCycle per Interval. Stop ends it.
func (s *Scrubber) Start() {
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

// Stop ends the loop and waits for it to exit.
func (s *Scrubber) Stop() {
	close(s.stop)
	<-s.done
}

func (s *Scrubber) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if _, err := s.RunCycle(); err != nil {
				s.mu.Lock()
				s.lastErr = err
				s.mu.Unlock()
				s.opts.Journal.Record("scrub.error", trace.A(trace.AttrReason, err.Error()))
				s.logf("%v", err)
			}
		}
	}
}

// fetch retrieves one replica's bytes from site i.
func (s *Scrubber) fetch(base string, k workload.ObjectID) ([]byte, error) {
	resp, err := s.http.Get(base + htmlrefs.MOPath(k))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("scrub: GET %s%s: %s", base, htmlrefs.MOPath(k), resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// RunCycle walks the live placement once: every replica the plan claims a
// live site stores is fetched and verified against the workload's payload
// contract (including provenance — a header claiming another source is a
// finding too). Corrupt replicas are pruned from a shadow placement, the
// delta back to the full plan priced with repair.ChangeDelta (so
// RepairBytes counts exactly the re-shipped replicas), re-shipped via
// ApplyPlan, cleared in the fault injectors, and re-verified. Serialized
// internally; safe to call concurrently with the loop.
func (s *Scrubber) RunCycle() (*ScrubCycle, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	w, p := s.cluster.CurrentPlan()
	out := &ScrubCycle{}
	s.cycles++
	s.cCycles.Inc()
	for i := 0; i < w.NumSites(); i++ {
		site := workload.SiteID(i)
		if s.cluster.SiteDown(i) {
			continue
		}
		base := s.cluster.SiteBases[i]
		p.StoredSet(site).ForEach(func(ki int) bool {
			k := workload.ObjectID(ki)
			out.Checked++
			s.objects++
			s.cObjects.Inc()
			data, err := s.fetch(base, k)
			if err != nil {
				out.Errors++
				s.fetchErrs++
				s.cErrors.Inc()
				return true
			}
			if verr := webserve.VerifyObjectFrom(w, i, k, data); verr != nil {
				out.Corrupt = append(out.Corrupt, Finding{Site: site, Object: k, Reason: verr.Error()})
				s.corrupt++
				s.cCorrupt.Inc()
				s.opts.Journal.Record("scrub.corrupt",
					trace.I(trace.AttrSite, int64(i)),
					trace.I(trace.AttrObject, int64(k)),
					trace.A(trace.AttrReason, verr.Error()))
				s.logf("corrupt replica: site %d object %d: %v", i, k, verr)
				return true
			}
			out.Clean++
			s.clean++
			s.cClean.Inc()
			return true
		})
	}

	if len(out.Corrupt) > 0 {
		if err := s.repairFindings(w, p, out); err != nil {
			return out, err
		}
	}
	s.opts.Journal.Record("scrub.cycle",
		trace.I("checked", int64(out.Checked)),
		trace.I("corrupt", int64(len(out.Corrupt))),
		trace.I("errors", int64(out.Errors)))
	return out, nil
}

// repairFindings is the anti-entropy step: prune the corrupt replicas from
// a shadow copy of the plan, price the delta back to the full plan, re-ship
// it, and re-verify each repaired replica.
func (s *Scrubber) repairFindings(w *workload.Workload, p *model.Placement, out *ScrubCycle) error {
	pruned := p.Clone()
	for _, f := range out.Corrupt {
		pruned.Unstore(f.Site, f.Object)
	}
	// from=pruned, to=p: Copies lists exactly the corrupt replicas, so
	// CopyBytes prices the delta-only repair traffic.
	delta := repair.ChangeDelta(s.env, s.env, pruned, p)
	if err := s.cluster.ApplyPlan(w, p); err != nil {
		return fmt.Errorf("scrub: repair apply: %w", err)
	}
	for _, f := range out.Corrupt {
		s.cluster.ClearRot(int(f.Site), f.Object)
	}
	for _, f := range out.Corrupt {
		data, err := s.fetch(s.cluster.SiteBases[f.Site], f.Object)
		if err != nil {
			return fmt.Errorf("scrub: re-verify fetch site %d object %d: %w", f.Site, f.Object, err)
		}
		if verr := webserve.VerifyObjectFrom(w, int(f.Site), f.Object, data); verr != nil {
			return fmt.Errorf("scrub: replica still corrupt after repair: site %d object %d: %w",
				f.Site, f.Object, verr)
		}
	}
	out.Repaired = true
	out.RepairBytes = delta.CopyBytes
	s.repairs++
	s.repairBytes += delta.CopyBytes
	s.cRepairs.Inc()
	s.cRepairBytes.Add(int64(delta.CopyBytes))
	s.opts.Journal.Record("scrub.repaired",
		trace.I("replicas", int64(len(out.Corrupt))),
		trace.I("copy_bytes", int64(delta.CopyBytes)))
	s.opts.Journal.Record("plan.applied",
		trace.A("mode", "scrub"),
		trace.I("copy_bytes", int64(delta.CopyBytes)))
	s.logf("repaired %d replicas, %d bytes re-shipped", len(out.Corrupt), int64(delta.CopyBytes))
	return nil
}

func (s *Scrubber) logf(format string, args ...interface{}) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "scrub: "+format+"\n", args...)
	}
}

// Counts returns the scrubber's lifetime totals.
func (s *Scrubber) Counts() (cycles, objects, corrupt, repairs int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycles, s.objects, s.corrupt, s.repairs
}

// RepairBytes returns the total anti-entropy traffic shipped so far.
func (s *Scrubber) RepairBytes() units.ByteSize {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairBytes
}

// Err returns the last loop error, nil if none.
func (s *Scrubber) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}
