package controller

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/estimate"
	"repro/internal/model"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// adaptEnv builds a planned deployment with tight storage (so placements
// are selective and drift actually moves replicas) plus the estimator
// wired in as the cluster's access tap.
func adaptEnv(t *testing.T, storageFrac float64) (*model.Env, *model.Placement, *webserve.Cluster, *estimate.Estimator) {
	t.Helper()
	env, _ := healEnv(t)
	budgets := model.FullBudgets(env.W).Scale(env.W, storageFrac, 1)
	tight, err := model.NewEnv(env.W, env.Est, budgets)
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := core.Plan(tight, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	est, err := estimate.New(tight.W, estimate.Config{HalfLife: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := webserve.StartClusterOptions(tight.W, p, webserve.ClusterOptions{AccessTap: est})
	if err != nil {
		t.Fatal(err)
	}
	return tight, p, cluster, est
}

// coldest returns the site's lowest-frequency page.
func coldest(w *workload.Workload, i int) workload.PageID {
	pages := w.Sites[i].Pages
	best := pages[0]
	for _, pid := range pages {
		if w.Pages[pid].Freq < w.Pages[best].Freq {
			best = pid
		}
	}
	return best
}

// observeBaseline feeds traffic proportional to the planned frequencies.
func observeBaseline(w *workload.Workload, est *estimate.Estimator, t float64) {
	for i := range w.Sites {
		for _, pid := range w.Sites[i].Pages {
			n := int(float64(w.Pages[pid].Freq) * 10)
			if n < 1 {
				n = 1
			}
			for r := 0; r < n; r++ {
				est.Observe(workload.SiteID(i), pid, t)
			}
		}
	}
}

// observeFlashCrowd hammers every site's coldest page — the "breaking
// news" drift of §4.1.
func observeFlashCrowd(w *workload.Workload, est *estimate.Estimator, t float64) {
	for i := range w.Sites {
		hot := coldest(w, i)
		for r := 0; r < 400; r++ {
			est.Observe(workload.SiteID(i), hot, t)
		}
		for _, pid := range w.Sites[i].Pages {
			est.Observe(workload.SiteID(i), pid, t)
		}
	}
}

func TestAdapterReplansOnDrift(t *testing.T) {
	env, p, cluster, est := adaptEnv(t, 0.3)
	defer cluster.Close()
	reg := telemetry.NewRegistry()
	journal := trace.NewJournal(256)
	a, err := NewAdapter(env, p, cluster, est, AdaptOptions{Workers: 1, Metrics: reg, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}

	// In-plan traffic: no trigger.
	observeBaseline(env.W, est, 1)
	cyc, err := a.CheckNow(1)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Decision.Trigger {
		t.Fatalf("in-plan traffic triggered a re-plan: %+v", cyc.Decision)
	}

	// Flash crowd on the cold pages: trigger + re-plan + shipped delta.
	observeFlashCrowd(env.W, est, 2)
	cyc, err = a.CheckNow(2)
	if err != nil {
		t.Fatal(err)
	}
	if !cyc.Decision.Trigger {
		t.Fatalf("flash crowd did not trigger: %+v", cyc.Decision)
	}
	if !cyc.Replanned {
		t.Fatalf("flash crowd triggered but did not re-plan (noop=%v)", cyc.Noop)
	}
	if cyc.Delta == nil || cyc.Delta.CopyBytes <= 0 {
		t.Fatalf("re-plan shipped no bytes: %+v", cyc.Delta)
	}
	shipped := *cyc.Delta
	if shipped.DAfter >= shipped.DBefore {
		t.Errorf("adaptation did not improve predicted D: %.4f -> %.4f", shipped.DBefore, shipped.DAfter)
	}

	// The cluster now serves the fresh placement: a newly-hot page's local
	// object count matches the plan.
	_, fresh := a.Current()
	hot := coldest(env.W, 0)
	wantLocal := 0
	for idx := range env.W.Pages[hot].Compulsory {
		if fresh.CompLocal(hot, idx) {
			wantLocal++
		}
	}
	client := webserve.NewClient(env.W)
	res, err := client.FetchPage(cluster.PageURL(hot), hot)
	if err != nil {
		t.Fatal(err)
	}
	if res.LocalChain.Objects != wantLocal {
		t.Errorf("cluster serves %d local objects for hot page, placement says %d", res.LocalChain.Objects, wantLocal)
	}

	// The baseline was rebased onto the adapted plan: the same flash-crowd
	// traffic no longer drifts.
	observeFlashCrowd(env.W, est, 3)
	cyc, err = a.CheckNow(3)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Decision.Trigger {
		t.Fatalf("post-adaptation traffic still triggers: %+v", cyc.Decision)
	}

	checks, triggers, replans, noops := a.Counts()
	if checks != 3 || triggers != 1 || replans != 1 || noops != 0 {
		t.Errorf("counts = (%d checks, %d triggers, %d replans, %d noops), want (3, 1, 1, 0)", checks, triggers, replans, noops)
	}
	if a.CopyBytes() != shipped.CopyBytes {
		t.Errorf("CopyBytes accounting off: adapter %v, delta %v", a.CopyBytes(), shipped.CopyBytes)
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "adapt.replans"); got != 1 {
		t.Errorf("adapt.replans = %d, want 1", got)
	}
	if got := counterValue(t, snap, "adapt.copy_bytes"); got <= 0 {
		t.Errorf("adapt.copy_bytes = %d, want > 0", got)
	}
	assertJournalHas(t, journal, "adapt.check")
	assertJournalHas(t, journal, "adapt.replanned")
	assertJournalHas(t, journal, "plan.applied")
}

func TestAdapterNoopShipsNothing(t *testing.T) {
	// Unconstrained storage: every plan stores everything, so even a
	// triggered re-plan yields an identical placement — the adapter must
	// recognize it and ship zero bytes (never a full re-copy).
	env, p, cluster, est := adaptEnv(t, 1)
	defer cluster.Close()
	journal := trace.NewJournal(256)
	a, err := NewAdapter(env, p, cluster, est, AdaptOptions{Workers: 1, Journal: journal})
	if err != nil {
		t.Fatal(err)
	}
	observeFlashCrowd(env.W, est, 1)
	cyc, err := a.CheckNow(1)
	if err != nil {
		t.Fatal(err)
	}
	if !cyc.Decision.Trigger {
		t.Fatalf("flash crowd did not trigger: %+v", cyc.Decision)
	}
	if !cyc.Noop || cyc.Replanned {
		t.Fatalf("unconstrained re-plan should be a noop, got replanned=%v noop=%v (delta %+v)", cyc.Replanned, cyc.Noop, cyc.Delta)
	}
	if cyc.Delta.CopyBytes != 0 || len(cyc.Delta.Copies) != 0 {
		t.Fatalf("noop shipped bytes: %+v", cyc.Delta)
	}
	if a.CopyBytes() != 0 {
		t.Fatalf("noop accounted copy bytes: %v", a.CopyBytes())
	}
	assertJournalHas(t, journal, "adapt.noop")
	// And a second identical burst stays quiet: the baseline was rebased.
	observeFlashCrowd(env.W, est, 2)
	cyc, err = a.CheckNow(2)
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Decision.Trigger {
		t.Fatalf("noop did not rebase the baseline: %+v", cyc.Decision)
	}
}

func counterValue(t *testing.T, snap *telemetry.Snapshot, name string) int64 {
	t.Helper()
	for _, c := range snap.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	t.Fatalf("counter %q missing from snapshot", name)
	return 0
}

func assertJournalHas(t *testing.T, j *trace.Journal, typ string) {
	t.Helper()
	for _, ev := range j.Events() {
		if strings.HasPrefix(ev.Type, typ) {
			return
		}
	}
	t.Errorf("journal has no %q event", typ)
}
