// Package controller is the self-healing supervisor: a probe loop over
// every site's /healthz endpoint drives a per-site state machine
// (up → suspect → down → recovering → up), and the down/up transitions
// trigger the repair planner — the repaired placement is pushed into the
// live cluster with no restarts, and the original placement reinstated when
// every dead site returns. The paper plans once and assumes sites stay up;
// this loop closes the gap between that static plan and a production
// system's churn (ROADMAP: production-scale north star).
//
// Detection is K-of-N: a site must fail FailThreshold consecutive probes
// before it is declared down (one lost probe makes it suspect, not dead),
// and must answer OKThreshold consecutive probes before a recovery is
// attempted — both thresholds damp flapping. Every transition is recorded
// and counted in telemetry.
package controller

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/repair"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// SiteState is one site's position in the supervisor's state machine.
type SiteState int

const (
	// Up: the site answers probes and serves its (possibly repaired) pages.
	Up SiteState = iota
	// Suspect: at least one probe failed, fewer than FailThreshold in a row.
	Suspect
	// Down: FailThreshold consecutive probes failed; the site's pages are
	// re-homed by the active repair plan.
	Down
	// Recovering: a down site answered OKThreshold consecutive probes; the
	// supervisor is reinstating the pre-failure placement.
	Recovering
)

func (s SiteState) String() string {
	switch s {
	case Up:
		return "up"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	default:
		return fmt.Sprintf("SiteState(%d)", int(s))
	}
}

// Transition is one recorded state change.
type Transition struct {
	At   time.Duration // since Start
	Site workload.SiteID
	From SiteState
	To   SiteState
}

// Options tunes the supervisor.
type Options struct {
	// ProbeInterval is the health-check period (default 250ms).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default ProbeInterval).
	ProbeTimeout time.Duration
	// FailThreshold is K: consecutive failed probes before a site is
	// declared down (default 3).
	FailThreshold int
	// OKThreshold is the consecutive successful probes a down site must
	// answer before recovery (default 2).
	OKThreshold int
	// LatencyThreshold, when positive, arms limping-node detection: a probe
	// that answers 200 but whose EWMA round-trip time exceeds the threshold
	// counts as a *failed* probe, so a site that is up-but-crawling walks
	// the same suspect → down path as a dead one instead of hiding behind
	// its 200s. Zero (the default) keeps the previous any-200-is-healthy
	// behaviour.
	LatencyThreshold time.Duration
	// LatencyAlpha is the EWMA smoothing factor in (0, 1] for the per-site
	// probe-latency estimate (default 0.3). Higher values react faster but
	// flap more on one slow probe; the EWMA exists precisely so a single
	// GC pause does not condemn a healthy site.
	LatencyAlpha float64
	// Workers bounds the repair planner's concurrency (0 = GOMAXPROCS).
	Workers int
	// Metrics, when non-nil, receives the controller counters
	// (controller.probes, controller.probe_failures, controller.repairs,
	// controller.recoveries, controller.transitions) and the
	// controller.sites_down gauge.
	Metrics *telemetry.Registry
	// Log, when non-nil, receives one line per transition and repair.
	Log io.Writer
	// Journal, when non-nil, is the control-plane flight recorder: every
	// probe transition, repair plan, placement push, and supervisor error
	// lands in it as a structured event. On a reconcile failure the journal
	// is additionally dumped to Log, so the recorder's tail survives the
	// crash it explains. Share one journal with webserve.ClusterOptions to
	// expose it at /debug/journal.
	Journal *trace.Journal
}

func (o Options) normalize() Options {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 250 * time.Millisecond
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = o.ProbeInterval
	}
	if o.FailThreshold <= 0 {
		o.FailThreshold = 3
	}
	if o.OKThreshold <= 0 {
		o.OKThreshold = 2
	}
	if o.LatencyAlpha <= 0 || o.LatencyAlpha > 1 {
		o.LatencyAlpha = 0.3
	}
	return o
}

// Supervisor runs the control loop against one cluster.
type Supervisor struct {
	env     *model.Env
	healthy *model.Placement
	cluster *webserve.Cluster
	opts    Options
	probe   *http.Client
	start   time.Time

	mu          sync.Mutex
	states      []SiteState
	fails       []int
	oks         []int
	ewma        []float64    // smoothed probe RTT per site, seconds; 0 = no sample yet
	lastRTT     []float64    // last raw probe RTT per site, seconds
	plan        *repair.Plan // active repair plan; nil while healthy
	transitions []Transition
	repairs     int
	recoveries  int
	lastErr     error

	cProbes, cProbeFails, cRepairs, cRecoveries, cTransitions *telemetry.Counter
	cProbesShed                                               *telemetry.Counter
	gDown                                                     *telemetry.Gauge

	stop chan struct{}
	done chan struct{}
}

// New builds a supervisor for a running cluster. env and placement are the
// healthy planning environment and the placement the cluster was started
// with — the state every recovery restores.
func New(env *model.Env, p *model.Placement, cluster *webserve.Cluster, opts Options) *Supervisor {
	opts = opts.normalize()
	s := &Supervisor{
		env:     env,
		healthy: p,
		cluster: cluster,
		opts:    opts,
		probe:   &http.Client{Timeout: opts.ProbeTimeout},
		states:  make([]SiteState, env.W.NumSites()),
		fails:   make([]int, env.W.NumSites()),
		oks:     make([]int, env.W.NumSites()),
		ewma:    make([]float64, env.W.NumSites()),
		lastRTT: make([]float64, env.W.NumSites()),
	}
	if reg := opts.Metrics; reg != nil {
		s.cProbes = reg.Counter("controller.probes")
		s.cProbeFails = reg.Counter("controller.probe_failures")
		s.cProbesShed = reg.Counter("controller.probes_shed")
		s.cRepairs = reg.Counter("controller.repairs")
		s.cRecoveries = reg.Counter("controller.recoveries")
		s.cTransitions = reg.Counter("controller.transitions")
		s.gDown = reg.Gauge("controller.sites_down")
	}
	return s
}

// Start launches the probe loop. Stop ends it.
func (s *Supervisor) Start() {
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop()
}

// Stop ends the probe loop and waits for it to exit.
func (s *Supervisor) Stop() {
	close(s.stop)
	<-s.done
}

func (s *Supervisor) loop() {
	defer close(s.done)
	ticker := time.NewTicker(s.opts.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			s.tick()
		}
	}
}

// tick probes every site once and feeds the state machine.
func (s *Supervisor) tick() {
	n := s.env.W.NumSites()
	ok := make([]bool, n)
	rtt := make([]time.Duration, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ok[i], rtt[i] = s.probeSite(i)
		}(i)
	}
	wg.Wait()
	s.observe(ok, rtt)
}

// probeSite performs one /healthz check and reports its round-trip time
// (meaningful only when ok).
func (s *Supervisor) probeSite(i int) (bool, time.Duration) {
	s.cProbes.Inc()
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, s.cluster.SiteBases[i]+"/healthz", nil)
	if err != nil {
		s.cProbeFails.Inc()
		return false, 0
	}
	t0 := time.Now()
	resp, err := s.probe.Do(req)
	if err != nil {
		s.cProbeFails.Inc()
		return false, 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	rtt := time.Since(t0)
	if resp.StatusCode == http.StatusTooManyRequests {
		// An admission shed is a live server policing its queue, not a
		// failure. Treating it as one would have the supervisor kill-and-
		// repair exactly the overloaded sites — the feedback loop that turns
		// a flash crowd into an outage.
		s.cProbesShed.Inc()
		return true, rtt
	}
	if resp.StatusCode != http.StatusOK {
		s.cProbeFails.Inc()
		return false, 0
	}
	return true, rtt
}

// observe advances every site's state machine on one probe round, then
// reconciles the cluster if any site crossed the down or recovered edge.
// A 200 whose EWMA-smoothed RTT exceeds LatencyThreshold is demoted to a
// failed probe — the limping-node signal: a site can answer health checks
// forever while serving data at a crawl, and before this signal the only
// way it left Up was a hard timeout.
func (s *Supervisor) observe(ok []bool, rtt []time.Duration) {
	s.mu.Lock()
	now := time.Since(s.start)
	wentDown, cameBack := false, false
	for i := range ok {
		if ok[i] {
			r := rtt[i].Seconds()
			s.lastRTT[i] = r
			if s.ewma[i] == 0 {
				s.ewma[i] = r
			} else {
				a := s.opts.LatencyAlpha
				s.ewma[i] = a*r + (1-a)*s.ewma[i]
			}
			if s.opts.LatencyThreshold > 0 && s.ewma[i] > s.opts.LatencyThreshold.Seconds() {
				ok[i] = false // healthy answer, unhealthy latency: limping
				s.cProbeFails.Inc()
			}
		}
		st := s.states[i]
		switch {
		case ok[i]:
			s.fails[i] = 0
			switch st {
			case Suspect:
				s.setState(i, Up, now)
			case Down:
				s.oks[i]++
				if s.oks[i] >= s.opts.OKThreshold {
					s.setState(i, Recovering, now)
					cameBack = true
				}
			}
		default:
			s.oks[i] = 0
			switch st {
			case Up:
				s.fails[i] = 1
				s.setState(i, Suspect, now)
			case Suspect:
				s.fails[i]++
				if s.fails[i] >= s.opts.FailThreshold {
					s.setState(i, Down, now)
					wentDown = true
				}
			case Recovering:
				// Flapped during recovery: back to down.
				s.setState(i, Down, now)
			}
		}
	}
	s.mu.Unlock()
	if wentDown || cameBack {
		s.reconcile()
	}
}

// setState records a transition (mu held). The journal event carries the
// site's latency picture (last raw probe RTT and its EWMA, milliseconds) so
// a limping-driven demotion is explainable post-hoc: a down transition with
// a healthy-looking RTT means timeouts, one with a fat EWMA means limping.
func (s *Supervisor) setState(i int, to SiteState, at time.Duration) {
	from := s.states[i]
	if from == to {
		return
	}
	s.states[i] = to
	s.transitions = append(s.transitions, Transition{At: at, Site: workload.SiteID(i), From: from, To: to})
	s.cTransitions.Inc()
	s.opts.Journal.Record("probe.transition",
		trace.I(trace.AttrSite, int64(i)),
		trace.A("from", from.String()),
		trace.A("to", to.String()),
		trace.F("rtt_ms", s.lastRTT[i]*1e3),
		trace.F("ewma_ms", s.ewma[i]*1e3))
	s.logf("t=%v site %d: %v -> %v (rtt %.2fms ewma %.2fms)",
		at.Round(time.Millisecond), i, from, to, s.lastRTT[i]*1e3, s.ewma[i]*1e3)
}

// reconcile drives the cluster to match the current down set: a repair plan
// over the down sites, or the healthy placement when none remain. Sites in
// Recovering move to Up once the placement push succeeds.
func (s *Supervisor) reconcile() {
	s.mu.Lock()
	var down []workload.SiteID
	for i, st := range s.states {
		if st == Down {
			down = append(down, workload.SiteID(i))
		}
	}
	s.gDown.Set(float64(len(down)))
	s.mu.Unlock()

	if len(down) == 0 {
		// Full recovery: reinstate the healthy placement and routing.
		if err := s.cluster.ApplyPlan(s.env.W, s.healthy); err != nil {
			s.fail(fmt.Errorf("controller: recovery apply: %w", err))
			return
		}
		s.mu.Lock()
		s.plan = nil
		s.recoveries++
		now := time.Since(s.start)
		for i, st := range s.states {
			if st == Recovering {
				s.setState(i, Up, now)
			}
		}
		s.mu.Unlock()
		s.cRecoveries.Inc()
		s.opts.Journal.Record("plan.applied",
			trace.A("mode", "recovery"),
			trace.I("sites_down", 0))
		s.opts.Journal.Record("controller.recovered")
		s.logf("recovered: healthy placement reinstated")
		return
	}

	plan, err := repair.Compute(s.env, s.healthy, down, repair.Options{Workers: s.opts.Workers, Journal: s.opts.Journal})
	if err != nil {
		s.fail(fmt.Errorf("controller: repair plan: %w", err))
		return
	}
	if err := s.cluster.ApplyPlan(plan.Env.W, plan.Placement); err != nil {
		s.fail(fmt.Errorf("controller: repair apply: %w", err))
		return
	}
	s.mu.Lock()
	s.plan = plan
	s.repairs++
	now := time.Since(s.start)
	for i, st := range s.states {
		if st == Recovering {
			// Partial recovery: this site is healthy again but others are
			// still down; the fresh plan no longer re-homes its pages.
			s.setState(i, Up, now)
		}
	}
	s.mu.Unlock()
	s.cRepairs.Inc()
	s.opts.Journal.Record("plan.applied",
		trace.A("mode", "repair"),
		trace.I("sites_down", int64(len(down))),
		trace.I("rehomed", int64(len(plan.Delta.Rehomed))))
	s.logf("repaired: %d sites down, %d pages re-homed, D %.4f -> %.4f (degraded %.4f)",
		len(down), len(plan.Delta.Rehomed), plan.Delta.DHealthy, plan.Delta.DAfter, plan.Delta.DBefore)
}

// fail records a reconcile error (visible via Err) without killing the loop,
// and dumps the journal's tail to Log — the flight recorder's whole point is
// explaining this moment.
func (s *Supervisor) fail(err error) {
	s.mu.Lock()
	s.lastErr = err
	s.mu.Unlock()
	s.opts.Journal.Record("supervisor.error", trace.A(trace.AttrReason, err.Error()))
	s.logf("%v", err)
	if s.opts.Journal != nil && s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "controller: journal dump (%d events, %d dropped):\n",
			len(s.opts.Journal.Events()), s.opts.Journal.Dropped())
		_ = s.opts.Journal.WriteText(s.opts.Log)
	}
}

func (s *Supervisor) logf(format string, args ...interface{}) {
	if s.opts.Log != nil {
		fmt.Fprintf(s.opts.Log, "controller: "+format+"\n", args...)
	}
}

// States snapshots the per-site states.
func (s *Supervisor) States() []SiteState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SiteState(nil), s.states...)
}

// Transitions snapshots the recorded transitions.
func (s *Supervisor) Transitions() []Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Transition(nil), s.transitions...)
}

// CurrentPlan returns the active repair plan, nil while healthy.
func (s *Supervisor) CurrentPlan() *repair.Plan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.plan
}

// Counts returns how many repairs and recoveries the supervisor has applied.
func (s *Supervisor) Counts() (repairs, recoveries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.repairs, s.recoveries
}

// Latency returns site i's last raw probe RTT and its EWMA estimate
// (zero until the first successful probe).
func (s *Supervisor) Latency(i int) (last, ewma time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.lastRTT[i] * float64(time.Second)),
		time.Duration(s.ewma[i] * float64(time.Second))
}

// Err returns the last reconcile error, nil if none.
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// WaitFor polls until pred over the state snapshot holds or the timeout
// expires; it reports whether the predicate was met. A test/CLI helper —
// the loop itself never blocks on it.
func (s *Supervisor) WaitFor(pred func([]SiteState) bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if pred(s.States()) {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(s.opts.ProbeInterval / 4)
	}
}
