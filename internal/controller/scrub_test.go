package controller

import (
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// TestScrubberFindsAndRepairsRot is the anti-entropy unit test: rot three
// stored replicas, run one cycle (every rotted replica found, repaired
// delta-only, re-verified), then a second cycle that must come back clean.
func TestScrubberFindsAndRepairsRot(t *testing.T) {
	penv, p := healEnv(t)
	stored := p.StoredSet(0).Members()
	if len(stored) < 3 {
		t.Fatalf("site 0 stores only %d replicas", len(stored))
	}
	rot := stored[:3]

	plan := &faults.Plan{Seed: 7, Sites: make([]faults.Spec, penv.W.NumSites())}
	plan.Sites[0].Rot = append([]int(nil), rot...)
	cluster, err := webserve.StartClusterOptions(penv.W, p, webserve.ClusterOptions{
		Metrics: true,
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	journal := trace.NewJournal(256)
	s := NewScrubber(penv, cluster, ScrubOptions{Metrics: cluster.Metrics, Journal: journal})

	cyc, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Errors != 0 {
		t.Fatalf("scrub saw %d fetch errors on a healthy cluster", cyc.Errors)
	}
	if len(cyc.Corrupt) != len(rot) {
		t.Fatalf("cycle 1 found %d corrupt replicas, want %d: %+v", len(cyc.Corrupt), len(rot), cyc.Corrupt)
	}
	found := map[int]bool{}
	var wantBytes units.ByteSize
	for _, f := range cyc.Corrupt {
		if f.Site != 0 {
			t.Fatalf("finding on site %d, rot was injected on site 0", f.Site)
		}
		found[int(f.Object)] = true
	}
	for _, k := range rot {
		if !found[k] {
			t.Fatalf("rotted object %d not found", k)
		}
		wantBytes += penv.W.ObjectSize(workload.ObjectID(k))
	}
	if !cyc.Repaired {
		t.Fatal("cycle 1 did not repair")
	}
	// Delta-only repair: exactly the rotted replicas' bytes are re-shipped.
	if cyc.RepairBytes != wantBytes {
		t.Fatalf("repair shipped %v, want %v (the rotted replicas only)", cyc.RepairBytes, wantBytes)
	}
	if cluster.RotRemaining() != 0 {
		t.Fatalf("%d replicas still rotted after repair", cluster.RotRemaining())
	}

	cyc2, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if len(cyc2.Corrupt) != 0 || cyc2.Repaired {
		t.Fatalf("cycle 2 not clean: %d corrupt, repaired=%v", len(cyc2.Corrupt), cyc2.Repaired)
	}

	// Telemetry and journal agree with the cycle accounting.
	if got := cluster.Metrics.Counter("scrub.corrupt").Value(); got != int64(len(rot)) {
		t.Errorf("scrub.corrupt = %d, want %d", got, len(rot))
	}
	if got := cluster.Metrics.Counter("scrub.repairs").Value(); got != 1 {
		t.Errorf("scrub.repairs = %d, want 1", got)
	}
	var findings, repairs int
	for _, ev := range journal.Events() {
		switch ev.Type {
		case "scrub.corrupt":
			findings++
		case "scrub.repaired":
			repairs++
		}
	}
	if findings != len(rot) || repairs != 1 {
		t.Errorf("journal has %d scrub.corrupt / %d scrub.repaired events, want %d / 1", findings, repairs, len(rot))
	}
}

// TestScrubberSkipsDownSites pins availability/integrity separation: a dead
// site's replicas are the supervisor's problem, not integrity findings.
func TestScrubberSkipsDownSites(t *testing.T) {
	penv, p := healEnv(t)
	cluster, err := webserve.StartClusterOptions(penv.W, p, webserve.ClusterOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.KillSite(0); err != nil {
		t.Fatal(err)
	}

	s := NewScrubber(penv, cluster, ScrubOptions{})
	cyc, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if cyc.Errors != 0 {
		t.Fatalf("scrubbing around a dead site produced %d errors", cyc.Errors)
	}
	if len(cyc.Corrupt) != 0 {
		t.Fatalf("dead site produced %d integrity findings", len(cyc.Corrupt))
	}
}

// TestScrubberRaceWithChaosAndFetches is the -race soak: the continuous
// scrub loop, a chaos fault plan, live verifying clients and rot repair all
// run concurrently against one cluster. Every fetch must still succeed (the
// repository fallback absorbs the chaos) and the scrubber must converge on
// zero rotted replicas.
func TestScrubberRaceWithChaosAndFetches(t *testing.T) {
	penv, p := healEnv(t)
	stored := p.StoredSet(1).Members()
	n := 4
	if n > len(stored) {
		n = len(stored)
	}
	plan := &faults.Plan{Seed: 11, Sites: make([]faults.Spec, penv.W.NumSites())}
	plan.Sites[1].Rot = append([]int(nil), stored[:n]...)
	plan.Sites[2].ErrorRate = 0.05
	plan.Sites[2].CorruptRate = 0.05
	cluster, err := webserve.StartClusterOptions(penv.W, p, webserve.ClusterOptions{
		Metrics: true,
		Faults:  plan,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	s := NewScrubber(penv, cluster, ScrubOptions{
		Interval: 20 * time.Millisecond,
		Metrics:  cluster.Metrics,
	})
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			client := cluster.Client(webserve.ClientOptions{
				Retries:     2,
				BackoffBase: time.Millisecond,
				JitterSeed:  uint64(g + 1),
			})
			site := g % penv.W.NumSites()
			for i := 0; i < 6; i++ {
				pid := penv.W.Sites[site].Pages[i%len(penv.W.Sites[site].Pages)]
				if _, err := client.FetchPage(cluster.PageURL(pid), pid); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for cluster.RotRemaining() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := cluster.RotRemaining(); got != 0 {
		t.Fatalf("%d replicas still rotted after the soak", got)
	}
	if err := s.Err(); err != nil {
		t.Fatalf("scrub loop error: %v", err)
	}
	cycles, _, corrupt, repairs := s.Counts()
	if cycles == 0 || corrupt < n || repairs == 0 {
		t.Fatalf("soak accounting off: cycles=%d corrupt=%d repairs=%d (want ≥1/≥%d/≥1)", cycles, corrupt, repairs, n)
	}
}

// TestSupervisorDetectsLimpingSite pins the latency-aware health layer end
// to end: a site that answers every probe 200-but-slow walks to Down via the
// EWMA threshold, with the probe RTT recorded on the journal transitions.
func TestSupervisorDetectsLimpingSite(t *testing.T) {
	penv, p := healEnv(t)
	plan := &faults.Plan{Seed: 3, Sites: make([]faults.Spec, penv.W.NumSites())}
	plan.Sites[1].LimpLatency = 30 * time.Millisecond
	plan.Sites[1].Limps = []faults.Window{{Start: 0, End: time.Hour}}
	cluster, err := webserve.StartClusterOptions(penv.W, p, webserve.ClusterOptions{Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	journal := trace.NewJournal(256)
	s := New(penv, p, cluster, Options{
		ProbeInterval: 20 * time.Millisecond,
		// Far above the limp: every probe answers 200, so only the latency
		// threshold can demote the site — the gray path under test.
		ProbeTimeout:     2 * time.Second,
		FailThreshold:    3,
		OKThreshold:      2,
		LatencyThreshold: 5 * time.Millisecond,
		Workers:          1,
		Journal:          journal,
		Metrics:          telemetry.NewRegistry(),
	})
	s.Start()
	defer s.Stop()

	if !s.WaitFor(func(states []SiteState) bool { return states[1] == Down }, 10*time.Second) {
		t.Fatalf("limping site never declared down; states=%v", s.States())
	}
	if states := s.States(); states[0] == Down || states[2] == Down {
		t.Fatalf("healthy sites demoted: %v", states)
	}
	_, ewma := s.Latency(1)
	if ewma < 5*time.Millisecond {
		t.Errorf("limping site's EWMA %v below the threshold that demoted it", ewma)
	}
	var sawRTT bool
	for _, ev := range journal.Events() {
		if ev.Type == "probe.transition" && ev.Field("rtt_ms") != "" {
			sawRTT = true
		}
	}
	if !sawRTT {
		t.Error("no probe.transition journal event carries rtt_ms")
	}
}

// TestObserveLatencyDemotion drives the EWMA branch synthetically: probes
// that succeed over the threshold count as failures; probes under it heal.
func TestObserveLatencyDemotion(t *testing.T) {
	penv, p := healEnv(t)
	cluster, err := webserve.StartCluster(penv.W, p)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	s := New(penv, p, cluster, Options{
		FailThreshold:    2,
		OKThreshold:      1,
		LatencyThreshold: 10 * time.Millisecond,
		LatencyAlpha:     1, // no smoothing: each probe's RTT is the EWMA
		Workers:          1,
	})
	slow := []time.Duration{50 * time.Millisecond, time.Millisecond, time.Millisecond}
	fast := []time.Duration{time.Millisecond, time.Millisecond, time.Millisecond}

	s.observe([]bool{true, true, true}, slow)
	if st := s.States()[0]; st != Suspect {
		t.Fatalf("after one slow probe: %v, want suspect", st)
	}
	s.observe([]bool{true, true, true}, slow)
	if st := s.States()[0]; st != Down {
		t.Fatalf("after two slow probes: %v, want down", st)
	}
	s.observe([]bool{true, true, true}, fast)
	if st := s.States()[0]; st != Up {
		t.Fatalf("after a fast probe: %v, want up", st)
	}
	if states := s.States(); states[1] != Up || states[2] != Up {
		t.Fatalf("fast sites demoted: %v", states)
	}
}
