package controller

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/webserve"
	"repro/internal/workload"
)

// healEnv builds a 3-site planned deployment small enough to probe fast.
func healEnv(t *testing.T) (*model.Env, *model.Placement) {
	t.Helper()
	cfg := workload.SmallConfig()
	cfg.Sites = 3
	cfg.PagesPerSiteMin, cfg.PagesPerSiteMax = 4, 6
	cfg.GlobalObjects, cfg.ObjectsPerSite, cfg.ObjectsPerMax = 90, 30, 45
	cfg.MOClasses = []workload.SizeClass{
		{Frac: 0.5, Lo: 2 * units.KB, Hi: 8 * units.KB},
		{Frac: 0.5, Lo: 8 * units.KB, Hi: 32 * units.KB},
	}
	w := workload.MustGenerate(cfg, 66)
	est, err := netsim.DrawEstimates(netsim.DefaultConfig(), w.NumSites(), rng.New(66))
	if err != nil {
		t.Fatal(err)
	}
	env, err := model.NewEnv(w, est, model.FullBudgets(w))
	if err != nil {
		t.Fatal(err)
	}
	p, _, err := core.Plan(env, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	return env, p
}

// TestStateMachineTransitions drives the supervisor's observe step with
// synthetic probe rounds — no timing, fully deterministic — and checks the
// damping thresholds, the repair on the down edge, and the recovery once
// the site answers again.
func TestStateMachineTransitions(t *testing.T) {
	env, p := healEnv(t)
	cluster, err := webserve.StartCluster(env.W, p)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	journal := trace.NewJournal(128)
	s := New(env, p, cluster, Options{FailThreshold: 3, OKThreshold: 2, Workers: 1, Journal: journal})
	up, down := []bool{true, true, true}, []bool{false, true, true}
	noRTT := make([]time.Duration, 3)

	// One lost probe suspects, the next success clears — no repair.
	s.observe(down, noRTT)
	if st := s.States()[0]; st != Suspect {
		t.Fatalf("after 1 failure: %v, want suspect", st)
	}
	s.observe(up, noRTT)
	if st := s.States()[0]; st != Up {
		t.Fatalf("after recovery probe: %v, want up", st)
	}
	if s.CurrentPlan() != nil {
		t.Fatal("a suspect blip triggered a repair")
	}

	// FailThreshold consecutive failures declare the site down and repair.
	for i := 0; i < 3; i++ {
		s.observe(down, noRTT)
	}
	if st := s.States()[0]; st != Down {
		t.Fatalf("after 3 failures: %v, want down", st)
	}
	plan := s.CurrentPlan()
	if plan == nil {
		t.Fatal("down transition produced no repair plan")
	}
	for _, pid := range env.W.Sites[0].Pages {
		if to := cluster.Route(pid); to == 0 {
			t.Fatalf("page %d still routed to the dead site", pid)
		}
	}

	// One good probe is not recovery; an interleaved failure resets.
	s.observe(up, noRTT)
	s.observe(down, noRTT)
	s.observe(up, noRTT)
	if st := s.States()[0]; st != Down {
		t.Fatalf("after flapping: %v, want down", st)
	}
	// OKThreshold consecutive successes recover and reinstate routing.
	s.observe(up, noRTT)
	if st := s.States()[0]; st != Up {
		t.Fatalf("after %d good probes: %v, want up", 2, st)
	}
	if s.CurrentPlan() != nil {
		t.Fatal("recovery left a repair plan active")
	}
	for _, pid := range env.W.Sites[0].Pages {
		if to := cluster.Route(pid); to != 0 {
			t.Fatalf("page %d routed to %d after recovery, want home site 0", pid, to)
		}
	}
	repairs, recoveries := s.Counts()
	if repairs != 1 || recoveries != 1 {
		t.Fatalf("repairs=%d recoveries=%d, want 1 and 1", repairs, recoveries)
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}

	// The flight recorder saw the whole episode: every transition, the
	// repair plan, both placement pushes, and the final recovery.
	counts := make(map[string]int)
	for _, tc := range trace.CountEventTypes(journal.Events()) {
		counts[tc.Type] = tc.Count
	}
	// up→suspect, suspect→up, up→suspect, suspect→down, down→recovering,
	// recovering→up (the flap while down never leaves the Down state).
	if counts["probe.transition"] != 6 {
		t.Fatalf("probe.transition events = %d, want 6; journal: %+v", counts["probe.transition"], journal.Events())
	}
	for typ, want := range map[string]int{
		"repair.planned":       1,
		"plan.applied":         2, // one repair push, one recovery push
		"controller.recovered": 1,
	} {
		if counts[typ] != want {
			t.Fatalf("%s events = %d, want %d", typ, counts[typ], want)
		}
	}
	// The repair.planned event carries the plan's prediction.
	for _, ev := range journal.Events() {
		if ev.Type == "repair.planned" {
			for _, k := range []string{"down", "rehomed", "d_healthy", "d_degraded", "d_after"} {
				if ev.Field(k) == "" {
					t.Fatalf("repair.planned missing field %q: %+v", k, ev)
				}
			}
		}
	}
}

// TestHealEndToEnd is the acceptance test: under a killed site the running
// supervisor detects the failure within the probe window, converges to a
// repaired placement, and steady-state fetches of every page complete with
// ZERO repository fallbacks — versus PR 3's permanent degraded mode — then
// a restart recovers the original placement.
func TestHealEndToEnd(t *testing.T) {
	env, p := healEnv(t)
	reg := telemetry.NewRegistry()
	cluster, err := webserve.StartClusterOptions(env.W, p, webserve.ClusterOptions{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	s := New(env, p, cluster, Options{
		ProbeInterval: 20 * time.Millisecond,
		FailThreshold: 3,
		OKThreshold:   2,
		Workers:       2,
		Metrics:       reg,
	})
	s.Start()
	defer func() {
		if s.stop != nil {
			select {
			case <-s.done:
			default:
				s.Stop()
			}
		}
	}()

	fetchAll := func(label string, wantSite0Home bool) {
		t.Helper()
		client := cluster.Client(webserve.ClientOptions{
			Timeout:     2 * time.Second,
			Retries:     2,
			BackoffBase: time.Millisecond,
			BackoffMax:  4 * time.Millisecond,
		})
		client.Verify = true
		for j := range env.W.Pages {
			pid := workload.PageID(j)
			res, err := client.FetchPage(cluster.PageURL(pid), pid)
			if err != nil {
				t.Fatalf("%s: page %d: %v", label, pid, err)
			}
			if res.Degraded() {
				t.Fatalf("%s: page %d degraded (fallbacks=%d degradedHTML=%v) — the repaired cluster must serve without the repository fallback",
					label, pid, res.Fallbacks, res.DegradedHTML)
			}
		}
		for _, pid := range env.W.Sites[0].Pages {
			home := cluster.Route(pid) == 0
			if home != wantSite0Home {
				t.Fatalf("%s: page %d routed to site %d", label, pid, cluster.Route(pid))
			}
		}
	}

	fetchAll("healthy", true)

	if err := cluster.KillSite(0); err != nil {
		t.Fatal(err)
	}
	if !s.WaitFor(func(st []SiteState) bool { return st[0] == Down }, 5*time.Second) {
		t.Fatalf("site 0 never declared down; states=%v", s.States())
	}
	if s.CurrentPlan() == nil {
		t.Fatal("down site has no active repair plan")
	}
	// Steady state under repair: every page — including the dead site's,
	// now re-homed — served with zero fallbacks.
	fetchAll("repaired", false)
	if reg.Counter("controller.repairs").Value() == 0 {
		t.Fatal("repair not counted in telemetry")
	}

	if err := cluster.RestartSite(0); err != nil {
		t.Fatal(err)
	}
	if !s.WaitFor(func(st []SiteState) bool {
		for _, v := range st {
			if v != Up {
				return false
			}
		}
		return true
	}, 5*time.Second) {
		t.Fatalf("cluster never recovered; states=%v", s.States())
	}
	if s.CurrentPlan() != nil {
		t.Fatal("recovered supervisor still holds a repair plan")
	}
	fetchAll("recovered", true)
	if reg.Counter("controller.recoveries").Value() == 0 {
		t.Fatal("recovery not counted in telemetry")
	}
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if v := reg.Counter("controller.probes").Value(); v == 0 {
		t.Fatal("probe loop never probed")
	}
}
