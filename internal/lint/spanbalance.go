package lint

import (
	"go/ast"
	"go/types"
)

// SpanBalanceAnalyzer enforces span lifecycle balance: every span-creating
// call (trace.Tracer StartTrace/StartRemote, Active.StartChild, telemetry
// NewSpan/Child, and the repro facade's NewSpan) must either reach .End()
// inside the enclosing function — directly, deferred, or in a nested
// closure — or visibly escape it (returned, stored, passed along), in which
// case the lifetime is the receiver's problem. A span that is assigned and
// then silently dropped never closes: the tracer's open-span accounting
// drifts and exported forests hold half-open spans. Deliberate
// cross-function lifetimes carry //repllint:allow span-balance with a
// justification.
var SpanBalanceAnalyzer = &Analyzer{
	Name: "span-balance",
	Doc: "every trace/telemetry span creation must be .End()ed in the same " +
		"function or escape it",
	Run: runSpanBalance,
}

// spanCreators maps a defining package name to its span-creating function
// and method names. Matching is by type-resolved callee, not source text,
// so receiver variables named anything (including "trace") resolve
// correctly.
var spanCreators = map[string]map[string]bool{
	"trace":     {"StartTrace": true, "StartRemote": true, "StartChild": true},
	"telemetry": {"NewSpan": true, "Child": true},
	"repro":     {"NewSpan": true},
}

func runSpanBalance(p *Pass) {
	p.eachFile(func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				p.spanScan(fd.Body)
			}
		}
	})
}

// spanScan finds span creations whose innermost enclosing function body is
// scope. Nested function literals get their own scan — a span created
// inside a closure must close (or escape) within that closure.
func (p *Pass) spanScan(scope *ast.BlockStmt) {
	ast.Inspect(scope, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.FuncLit:
			p.spanScan(nn.Body)
			return false
		case *ast.AssignStmt:
			p.checkSpanAssign(nn, scope)
		case *ast.ExprStmt:
			if call, ok := nn.X.(*ast.CallExpr); ok {
				if name, ok := p.spanCreatorCall(call); ok {
					p.Reportf(call.Pos(), "span from %s is discarded and can never be ended", name)
				}
			}
		}
		return true
	})
}

// checkSpanAssign inspects one assignment for creator calls whose resulting
// span neither ends nor escapes the scope.
func (p *Pass) checkSpanAssign(as *ast.AssignStmt, scope *ast.BlockStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			continue
		}
		name, ok := p.spanCreatorCall(call)
		if !ok {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue // assigned into a field or element: the span escapes
		}
		if id.Name == "_" {
			p.Reportf(call.Pos(), "span from %s is discarded and can never be ended", name)
			continue
		}
		obj := p.Pkg.Info.Defs[id]
		if obj == nil {
			obj = p.Pkg.Info.Uses[id] // plain = to a pre-declared variable
		}
		if obj == nil || p.spanClosed(scope, obj) {
			continue
		}
		p.Reportf(call.Pos(), "span %s from %s is never ended (.End()) and never leaves the function", id.Name, name)
	}
}

// spanCreatorCall resolves a call's callee and reports whether it is a span
// creator, returning its package-qualified name.
func (p *Pass) spanCreatorCall(call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		id = fun.Sel
	case *ast.Ident:
		id = fun
	default:
		return "", false
	}
	fn, ok := p.Pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	names := spanCreators[fn.Pkg().Name()]
	if names == nil || !names[fn.Name()] {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// spanClosed reports whether obj (a span variable) is balanced within
// scope: an .End() call on it counts as closed, and any other use outside
// a method/field selection — returned, passed as an argument, compared,
// stored — counts as an escape, which also satisfies the rule.
func (p *Pass) spanClosed(scope *ast.BlockStmt, obj types.Object) bool {
	ended := false
	benign := make(map[*ast.Ident]bool)
	ast.Inspect(scope, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.SelectorExpr:
			if id, ok := nn.X.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
				benign[id] = true
			}
		case *ast.AssignStmt:
			for _, l := range nn.Lhs {
				if id, ok := l.(*ast.Ident); ok {
					if p.Pkg.Info.Defs[id] == obj || p.Pkg.Info.Uses[id] == obj {
						benign[id] = true
					}
				}
			}
		case *ast.CallExpr:
			if sel, ok := nn.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "End" {
				if id, ok := sel.X.(*ast.Ident); ok && p.Pkg.Info.Uses[id] == obj {
					ended = true
				}
			}
		}
		return true
	})
	if ended {
		return true
	}
	escaped := false
	ast.Inspect(scope, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !benign[id] && p.Pkg.Info.Uses[id] == obj {
			escaped = true
		}
		return true
	})
	return escaped
}
