package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GoroutineLeakAnalyzer flags `go` statements whose spawned function has
// no reachable termination: an infinite `for` (or empty `select {}`) with
// no way out on any path, either directly in the spawned body or in a
// function the spawned body unconditionally calls. The hedge-leg and
// supervisor-loop shutdown bugs of PRs 8–9 are exactly this shape — a
// background goroutine that outlives its request or its supervisor — and
// this rule makes reintroducing them a build failure.
//
// A loop counts as exitable when it contains, outside nested function
// literals and reachable by the loop itself:
//
//   - a return statement;
//   - a break that targets the loop (an unlabeled break inside a nested
//     for/switch/select does NOT exit the loop — the classic
//     `for { select { ...: break } }` leak is flagged);
//   - a goto (conservatively assumed to leave the loop);
//   - a call that never returns control: panic, runtime.Goexit, os.Exit,
//     log.Fatal*.
//
// The never-terminates fact propagates through static calls (a goroutine
// body whose last act is calling a forever-loop helper leaks just the
// same), but not across nested `go` statements or function-literal
// creation — spawning a blocked child does not block the parent.
var GoroutineLeakAnalyzer = &GraphAnalyzer{
	Name: "goroutine-leak",
	Doc: "flag go statements spawning functions with no reachable termination " +
		"(infinite for/select{} without return, break, or exit call on any path)",
	Run: runGoroutineLeak,
}

func runGoroutineLeak(p *GraphPass) {
	g := p.Graph

	// Seed: functions directly containing an unexitable infinite loop.
	seeds := make(map[*Node]*Mark)
	for _, n := range g.Nodes {
		if pos, ok := foreverLoop(n.Pkg, n.Decl.Body); ok {
			seeds[n] = &Mark{Reason: "infinite loop with no exit", Pos: pos}
		}
	}
	// Propagate over non-literal, non-spawn edges only.
	forever := propagateUp(g, seeds, false)

	for _, n := range g.Nodes {
		for _, sp := range n.Spawns {
			switch {
			case sp.Lit != nil:
				checkSpawnedLit(p, n, sp, forever)
			case sp.Callee != nil:
				if m := forever[sp.Callee]; m != nil {
					p.Reportf(n, sp.Stmt.Pos(), chain(p.Fset, forever, sp.Callee),
						"goroutine never terminates: %s — give it a ctx/done-channel exit path or annotate with %s goroutine-leak",
						strings.Join(chainTail(forever, sp.Callee), " → "), allowPrefix)
				}
			}
		}
	}
}

// checkSpawnedLit analyzes a `go func(){...}()` literal: its own loops,
// plus direct calls to never-terminating module functions.
func checkSpawnedLit(p *GraphPass, n *Node, sp GoSpawn, forever map[*Node]*Mark) {
	if pos, ok := foreverLoop(n.Pkg, sp.Lit.Body); ok {
		lpos := p.Fset.Position(pos)
		p.Reportf(n, sp.Stmt.Pos(), nil,
			"goroutine never terminates: spawned func literal has an infinite loop with no exit at %s:%d — give it a ctx/done-channel exit path or annotate with %s goroutine-leak",
			lpos.Filename, lpos.Line, allowPrefix)
		return
	}
	// A literal that (outside nested literals) calls a forever function
	// never returns either.
	var hit *Node
	ast.Inspect(sp.Lit.Body, func(an ast.Node) bool {
		if hit != nil {
			return false
		}
		switch an.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			// A nested spawn is its own GoSpawn; skip its call expression.
			return false
		}
		call, isCall := an.(*ast.CallExpr)
		if !isCall {
			return true
		}
		if fn := staticCallee(n.Pkg.Info, call); fn != nil {
			if callee := p.Graph.NodeOf(fn); callee != nil && forever[callee] != nil {
				hit = callee
			}
		}
		return true
	})
	if hit != nil {
		p.Reportf(n, sp.Stmt.Pos(), chain(p.Fset, forever, hit),
			"goroutine never terminates: %s — give it a ctx/done-channel exit path or annotate with %s goroutine-leak",
			strings.Join(chainTail(forever, hit), " → "), allowPrefix)
	}
}

// foreverLoop scans one function body (skipping nested function literals)
// for an infinite loop or empty select with no exit, returning its
// position.
func foreverLoop(pkg *Package, body *ast.BlockStmt) (token.Pos, bool) {
	var at token.Pos
	found := false
	ast.Inspect(body, func(an ast.Node) bool {
		if found {
			return false
		}
		switch st := an.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			if len(st.Body.List) == 0 {
				at, found = st.Pos(), true
				return false
			}
		case *ast.ForStmt:
			if st.Cond == nil && !loopExits(pkg, st) {
				at, found = st.Pos(), true
				return false
			}
		}
		return true
	})
	return at, found
}

// loopExits reports whether the infinite loop has any way out: a return, a
// break targeting it (an unlabeled break only when no nested breakable
// statement intervenes; a labeled break must target an enclosing labeled
// statement and so always escapes), a goto, or a never-returns call — all
// outside nested function literals.
func loopExits(pkg *Package, loop *ast.ForStmt) bool {
	exits := false
	// depth counts the breakable statements (for/range/switch/select)
	// between the loop body and the node, so an unlabeled break can be
	// attributed to the right construct.
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		if exits || n == nil {
			return
		}
		switch st := n.(type) {
		case *ast.FuncLit:
			return
		case *ast.ReturnStmt:
			exits = true
			return
		case *ast.BranchStmt:
			switch st.Tok {
			case token.BREAK:
				if st.Label != nil || depth == 0 {
					exits = true
				}
			case token.GOTO:
				exits = true
			}
			return
		case *ast.CallExpr:
			if neverReturnsCall(pkg, st) {
				exits = true
				return
			}
		case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			depth++
		}
		for _, c := range directChildren(n) {
			walk(c, depth)
		}
	}
	for _, c := range directChildren(loop.Body) {
		walk(c, 0)
	}
	return exits
}

// directChildren returns n's immediate AST children.
func directChildren(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true // n itself; descend one level
		}
		if c == nil {
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}

// neverReturnsCall reports whether the call never returns control: the
// panic builtin, runtime.Goexit, os.Exit, or log.Fatal*.
func neverReturnsCall(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := pkg.Info.Uses[fun].(*types.Builtin); ok && b.Name() == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		switch fn.Pkg().Path() + "." + fn.Name() {
		case "runtime.Goexit", "os.Exit":
			return true
		case "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
