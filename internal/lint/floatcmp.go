package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// FloatCompareAnalyzer flags == and != between floating-point operands.
// The planner scores flips with accumulated float arithmetic (Eq. 5–10 cost
// deltas); exact equality on such values is either accidentally true on one
// architecture and false on another, or a tie-break that silently depends
// on rounding. Compare against an epsilon, or restructure so the tie-break
// is integral.
//
// One carve-out: comparison against constant zero stays legal. Zero is
// exactly representable, `x == 0` is the universal "unset / empty" sentinel
// (weight sums, α-denominators, rate specs), and flagging it would bury
// the real findings under allow directives. Test files are out of scope
// (the loader skips them), and deliberate non-zero sentinel checks can
// carry an allow directive.
var FloatCompareAnalyzer = &Analyzer{
	Name: "float-compare",
	Doc:  "forbid ==/!= between floating-point operands outside tests (comparison against constant 0 is exempt)",
	Run:  runFloatCompare,
}

func runFloatCompare(p *Pass) {
	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			if !isFloat(p, bin.X) && !isFloat(p, bin.Y) {
				return true
			}
			if isConstZero(p, bin.X) || isConstZero(p, bin.Y) {
				return true
			}
			p.Reportf(bin.OpPos, "%s between floating-point operands; compare with an epsilon or restructure the tie-break", bin.Op)
			return true
		})
	})
}

// isConstZero reports whether e is a compile-time constant equal to zero.
func isConstZero(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	switch tv.Value.Kind() {
	case constant.Int, constant.Float:
		return constant.Sign(tv.Value) == 0
	}
	return false
}

func isFloat(p *Pass, e ast.Expr) bool {
	tv, ok := p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
