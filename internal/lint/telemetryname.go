package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// TelemetryNameAnalyzer enforces metric-name hygiene at registry call
// sites. Names must be string literals — a computed name defeats grep,
// dashboards, and the snapshot goldens — and must match the repo's
// dotted lower-case convention (e.g. "httpsim.page_rt_seconds").
var TelemetryNameAnalyzer = &Analyzer{
	Name: "telemetry-naming",
	Doc: "telemetry registry metric names must be string literals matching " +
		"^[a-z]+(\\.[a-z0-9_]+)+$",
	Run: runTelemetryName,
}

var metricNameRE = regexp.MustCompile(`^[a-z]+(\.[a-z0-9_]+)+$`)

// registryLookups are the telemetry.Registry methods whose first argument
// is a metric name.
var registryLookups = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runTelemetryName(p *Pass) {
	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryLookups[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "telemetry" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			arg := call.Args[0]
			lit, ok := arg.(*ast.BasicLit)
			if !ok {
				p.Reportf(arg.Pos(), "metric name passed to %s must be a string literal, not a computed value", sel.Sel.Name)
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			if !metricNameRE.MatchString(name) {
				p.Reportf(arg.Pos(), "metric name %q does not match %s", name, metricNameRE)
			}
			return true
		})
	})
}
