package lint

import (
	"fmt"
	"go/token"
)

// This file is the facts engine: per-function facts seeded by local
// inspection and propagated over the call graph to a fixpoint. Two
// directions exist:
//
//   - propagateUp: callee facts infect callers ("calls something impure",
//     "calls something that never returns"). Rounds of breadth-first
//     relaxation over the node list give shortest chains, and scanning each
//     node's call sites in source order makes the chosen chain — and
//     therefore every reported message — deterministic.
//   - propagateDown: caller facts infect callees ("reachable from a hot
//     root"), used by the allocation gate.
//
// Every mark remembers the next hop toward its root cause and the call
// site inside the marked function, so a full chain can be reconstructed
// for any finding without storing whole paths.

// Mark is one propagated fact on one function.
type Mark struct {
	// Reason is set on seed marks only: the root cause, e.g. "time.Now
	// (wall clock)".
	Reason string
	// Via is the next node toward the root cause (nil on seeds).
	Via *Node
	// Pos is the responsible site inside this function: the seeding
	// expression, or the call site of Via.
	Pos token.Pos
	// Depth is the chain length to the root cause (0 on seeds).
	Depth int
}

// propagateUp computes the least fixpoint of "n is marked if n seeds or n
// calls a marked function". Pure-asserted nodes never take a mark, cutting
// propagation at the trust boundary. When useLitEdges is false, edges
// whose call site sits inside a function literal or `go` statement are
// ignored (termination facts do not cross a spawn).
func propagateUp(g *Graph, seeds map[*Node]*Mark, useLitEdges bool) map[*Node]*Mark {
	marked := make(map[*Node]*Mark, len(seeds))
	for n, m := range seeds {
		if !n.Pure {
			marked[n] = m
		}
	}
	for changed := true; changed; {
		changed = false
		round := make(map[*Node]*Mark)
		for _, n := range g.Nodes {
			if n.Pure || marked[n] != nil {
				continue
			}
			for _, e := range n.Calls {
				if !useLitEdges && e.InLit {
					continue
				}
				if m := marked[e.Callee]; m != nil {
					round[n] = &Mark{Via: e.Callee, Pos: e.Pos, Depth: m.Depth + 1}
					changed = true
					break
				}
			}
		}
		for n, m := range round {
			marked[n] = m
		}
	}
	return marked
}

// propagateDown computes forward reachability from the seed set: "n is
// marked if n seeds or a marked function calls n". Via points back toward
// the seed (the caller), Pos is the call site inside that caller.
func propagateDown(g *Graph, seeds map[*Node]*Mark) map[*Node]*Mark {
	marked := make(map[*Node]*Mark, len(seeds))
	for n, m := range seeds {
		marked[n] = m
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			m := marked[n]
			if m == nil {
				continue
			}
			for _, e := range n.Calls {
				if marked[e.Callee] == nil {
					marked[e.Callee] = &Mark{Via: n, Pos: e.Pos, Depth: m.Depth + 1}
					changed = true
				}
			}
		}
	}
	return marked
}

// chain renders the fact chain rooted at n as display hops: each entry is
// "pkg.Func (file:line)" ending at the seed's reason. The fset resolves
// positions; hops are capped defensively (cycles cannot occur in a
// fixpoint chain, but a cap keeps a future bug from hanging reports).
func chain(fset *token.FileSet, marks map[*Node]*Mark, n *Node) []string {
	var out []string
	for hops := 0; n != nil && hops < 64; hops++ {
		m := marks[n]
		if m == nil {
			out = append(out, n.ShortName())
			break
		}
		pos := fset.Position(m.Pos)
		out = append(out, fmt.Sprintf("%s (%s:%d)", n.ShortName(), pos.Filename, pos.Line))
		if m.Via == nil {
			out = append(out, m.Reason)
			break
		}
		n = m.Via
	}
	return out
}

// GraphAnalyzer is one whole-module rule running over the call graph.
type GraphAnalyzer struct {
	Name string
	Doc  string
	Run  func(*GraphPass)
}

// GraphPass carries one graph analyzer's run over the whole module.
type GraphPass struct {
	Analyzer *GraphAnalyzer
	Graph    *Graph
	Fset     *token.FileSet
	// Baseline is the hotpath-alloc regression baseline; nil means an
	// all-zero baseline (every allocation in a hot function reports).
	Baseline *HotpathBaseline

	findings []Finding
}

// Reportf records a finding attributed to node n's package (so its
// //repllint:allow directives apply) at pos, with an optional chain.
func (p *GraphPass) Reportf(n *Node, pos token.Pos, chain []string, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:   p.Fset.Position(pos),
		Rule:  p.Analyzer.Name,
		Msg:   fmt.Sprintf(format, args...),
		Chain: chain,
		pkg:   n.Pkg,
	})
}

// GraphAnalyzers is the interprocedural suite in reporting order.
var GraphAnalyzers = []*GraphAnalyzer{
	DeterminismTaintAnalyzer,
	GoroutineLeakAnalyzer,
	HotpathAllocAnalyzer,
}

// GraphByName returns the graph analyzers with the given names, or all of
// them when names is empty. Unknown names are an error.
func GraphByName(names []string) ([]*GraphAnalyzer, error) {
	if len(names) == 0 {
		return GraphAnalyzers, nil
	}
	byName := make(map[string]*GraphAnalyzer, len(GraphAnalyzers))
	for _, a := range GraphAnalyzers {
		byName[a.Name] = a
	}
	out := make([]*GraphAnalyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown graph rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunGraph builds the call graph over the packages and runs the graph
// analyzers, returning surviving (non-suppressed) findings in position
// order. fset must be the loader's file set.
func RunGraph(fset *token.FileSet, pkgs []*Package, analyzers []*GraphAnalyzer, baseline *HotpathBaseline) []Finding {
	g := BuildGraph(pkgs)
	var out []Finding
	for _, az := range analyzers {
		pass := &GraphPass{Analyzer: az, Graph: g, Fset: fset, Baseline: baseline}
		az.Run(pass)
		for _, f := range pass.findings {
			if f.pkg != nil && f.pkg.Directives.Allows(f.Rule, f.Pos) {
				continue
			}
			out = append(out, f)
		}
	}
	sortFindings(out)
	return out
}
