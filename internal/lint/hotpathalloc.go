package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strings"
)

// HotpathAllocAnalyzer is the standing allocation gate for ROADMAP item 5
// (the planner allocation diet). Functions annotated //repllint:hotpath —
// the planner's flip scoring, the fluid-queue update, the estimator
// ingest, the admission decision — are roots; hotness propagates forward
// through the call graph, and every heap-allocating construct inside a hot
// function is counted per kind:
//
//	make      make(...) of any type
//	new       new(T)
//	composite composite literals (T{...}, &T{...}, []T{...}, map[...]{...})
//	append    append(...) — may grow the backing array
//	closure   function literals (the closure object itself escapes)
//
// Counts are compared against a committed baseline (.repllint-hotpath.json
// at the module root): only *regressions* — a (function, kind) count above
// its baseline — report, so the sweep that shrinks allocations ratchets
// down and new allocations cannot silently creep back. Sites beyond the
// baseline count report individually in source order; refresh the file
// with `repllint -write-hotpath-baseline` when a new allocation is
// deliberate and reviewed.
var HotpathAllocAnalyzer = &GraphAnalyzer{
	Name: "hotpath-alloc",
	Doc: "flag heap allocations (make/new/composite/append/closure) in //repllint:hotpath " +
		"functions and everything they reach, beyond the committed per-function baseline",
	Run: runHotpathAlloc,
}

// HotpathBaselineName is the baseline file's name at the module root.
const HotpathBaselineName = ".repllint-hotpath.json"

// HotpathBaseline is the committed allocation budget: stable function full
// names (types.Func.FullName) to per-kind site counts.
type HotpathBaseline struct {
	Comment   string                    `json:"comment,omitempty"`
	Functions map[string]map[string]int `json:"functions"`
}

// allowance returns the budgeted count for (function, kind); absent
// entries budget zero.
func (b *HotpathBaseline) allowance(fn, kind string) int {
	if b == nil {
		return 0
	}
	return b.Functions[fn][kind]
}

// LoadHotpathBaseline reads a baseline file. A missing file is not an
// error: it loads as the zero baseline.
func LoadHotpathBaseline(path string) (*HotpathBaseline, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &HotpathBaseline{Functions: map[string]map[string]int{}}, nil
	}
	if err != nil {
		return nil, err
	}
	var b HotpathBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing hotpath baseline %s: %w", path, err)
	}
	if b.Functions == nil {
		b.Functions = map[string]map[string]int{}
	}
	return &b, nil
}

// WriteHotpathBaseline computes the current hot-set allocation counts over
// the module's call graph and writes them to path, returning the number of
// hot functions recorded. encoding/json sorts map keys, so the file is
// byte-stable for a given tree.
func WriteHotpathBaseline(g *Graph, path string) (int, error) {
	b := &HotpathBaseline{
		Comment: "hotpath-alloc baseline: per-function allocation-site counts for " +
			"//repllint:hotpath roots and everything they reach; regenerate with repllint -write-hotpath-baseline",
		Functions: map[string]map[string]int{},
	}
	hot := hotSet(g)
	for _, n := range g.Nodes {
		if hot[n] == nil {
			continue
		}
		counts := map[string]int{}
		for kind, sites := range allocSites(n) {
			if len(sites) > 0 {
				counts[kind] = len(sites)
			}
		}
		if len(counts) > 0 {
			b.Functions[n.FullName()] = counts
		}
	}
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return 0, err
	}
	return len(b.Functions), os.WriteFile(path, append(data, '\n'), 0o644)
}

// hotSet propagates hotness forward from the //repllint:hotpath roots.
func hotSet(g *Graph) map[*Node]*Mark {
	seeds := make(map[*Node]*Mark)
	for _, n := range g.Nodes {
		if n.Hot {
			seeds[n] = &Mark{Reason: "//repllint:hotpath root", Pos: n.Decl.Pos()}
		}
	}
	return propagateDown(g, seeds)
}

// allocKinds is the reporting order of allocation kinds.
var allocKinds = []string{"make", "new", "composite", "append", "closure"}

// allocSites collects the allocating constructs in one function body
// (function literals included — a closure's allocations happen when the
// enclosing function runs), keyed by kind, in source order.
func allocSites(n *Node) map[string][]token.Pos {
	sites := make(map[string][]token.Pos)
	ast.Inspect(n.Decl.Body, func(an ast.Node) bool {
		switch e := an.(type) {
		case *ast.CompositeLit:
			sites["composite"] = append(sites["composite"], e.Pos())
		case *ast.FuncLit:
			sites["closure"] = append(sites["closure"], e.Pos())
		case *ast.CallExpr:
			id, ok := ast.Unparen(e.Fun).(*ast.Ident)
			if !ok {
				return true
			}
			if _, isBuiltin := n.Pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			switch id.Name {
			case "make":
				sites["make"] = append(sites["make"], e.Pos())
			case "new":
				sites["new"] = append(sites["new"], e.Pos())
			case "append":
				sites["append"] = append(sites["append"], e.Pos())
			}
		}
		return true
	})
	return sites
}

func runHotpathAlloc(p *GraphPass) {
	g := p.Graph
	hot := hotSet(g)

	for _, n := range g.Nodes {
		m := hot[n]
		if m == nil {
			continue
		}
		sites := allocSites(n)
		for _, kind := range allocKinds {
			cur := sites[kind]
			base := p.Baseline.allowance(n.FullName(), kind)
			if len(cur) <= base {
				continue
			}
			hotVia := strings.Join(hotChain(hot, n), " ← ")
			// Report each site beyond the budget, lexically: the baseline
			// is position-independent, so moving an allocation around never
			// fires, only adding one does.
			for _, pos := range cur[base:] {
				p.Reportf(n, pos, chain(p.Fset, hot, n),
					"hot-path allocation regression: %s #%d in %s (baseline %d) — hot via %s; shrink it or refresh %s with -write-hotpath-baseline",
					kind, len(cur), n.ShortName(), base, hotVia, HotpathBaselineName)
			}
		}
	}
}

// hotChain renders the hop path from n back to its hotpath root.
func hotChain(hot map[*Node]*Mark, n *Node) []string {
	var out []string
	for hops := 0; n != nil && hops < 64; hops++ {
		out = append(out, n.ShortName())
		m := hot[n]
		if m == nil || m.Via == nil {
			break
		}
		n = m.Via
	}
	return out
}

// sortedFunctionNames returns the baseline's function keys in order (used
// by the CLI's baseline summary).
func (b *HotpathBaseline) sortedFunctionNames() []string {
	if b == nil {
		return nil
	}
	names := make([]string, 0, len(b.Functions))
	for name := range b.Functions {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
