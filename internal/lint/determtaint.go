package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DeterminismTaintAnalyzer is the interprocedural companion to the
// per-package determinism rule. That rule only sees *direct* calls: a
// helper in internal/stats that reads the wall clock is invisible to it
// when internal/core reaches the helper through two layers of indirection.
// This analyzer seeds "impure" facts at ambient-state entry points —
// wall clock, environment, the global math/rand generator, map-order-
// dependent results — anywhere in the module, propagates them through the
// call graph to a fixpoint, and reports every call site inside the
// deterministic entry packages (core, repair, httpsim, estimate,
// admission) whose callee is transitively impure, together with the full
// chain from an exported entry point down to the root cause.
//
// Reporting discipline (keeps one real defect to one finding):
//
//   - direct ambient calls inside the entry packages are the per-package
//     determinism rule's findings, not ours;
//   - a call to an impure function in the *same* entry package is not
//     reported — the chain will be reported where that callee itself
//     crosses out of the package;
//   - a call into another entry package is not reported either, for the
//     same reason; the frontier call site inside that package reports it.
//
// Seeds already suppressed at source (a justified //repllint:allow
// determinism or sorted-iteration on the ambient call) do not taint, and
// //repllint:pure cuts propagation entirely — see callgraph.go.
var DeterminismTaintAnalyzer = &GraphAnalyzer{
	Name: "determinism-taint",
	Doc: "propagate ambient-state impurity (wall clock, env, global rand, map-order results) " +
		"through the whole-module call graph and report tainted call chains reaching " +
		"core/repair/httpsim/estimate/admission entry points",
	Run: runDeterminismTaint,
}

// TaintEntryPackages names the packages whose exported functions are the
// determinism-taint entry points: the deterministic model packages that
// must stay bit-reproducible, plus admission, whose control laws are
// clock-agnostic by design (deadlines are wall-clock protocol state and
// carry their own justification).
var TaintEntryPackages = map[string]bool{
	"core":      true,
	"repair":    true,
	"httpsim":   true,
	"estimate":  true,
	"admission": true,
}

func runDeterminismTaint(p *GraphPass) {
	g := p.Graph
	impure := propagateUp(g, taintSeeds(g), true)
	entry := entryReach(g)

	for _, n := range g.Nodes {
		if !TaintEntryPackages[n.Pkg.Name] || n.Pure {
			continue
		}
		ep := entry[n]
		if ep == nil {
			continue // not reachable from any exported entry point
		}
		for _, e := range n.Calls {
			m := impure[e.Callee]
			if m == nil || TaintEntryPackages[e.Callee.Pkg.Name] {
				continue
			}
			full := append(entryChain(p.Fset, entry, n), chain(p.Fset, impure, e.Callee)...)
			p.Reportf(n, e.Pos, full,
				"call to %s is determinism-tainted (%s); reachable from entry %s — break the chain, assert //repllint:pure at a reviewed boundary, or annotate with %s determinism-taint",
				e.Callee.ShortName(), strings.Join(chainTail(impure, e.Callee), " → "),
				ep.entry.ShortName(), allowPrefix)
		}
	}
}

// taintSeeds scans every function body for ambient-state entry points and
// returns the seed marks. The forbidden sets are shared with the
// per-package determinism rule, so the two rules can never drift apart.
func taintSeeds(g *Graph) map[*Node]*Mark {
	seeds := make(map[*Node]*Mark)
	for _, n := range g.Nodes {
		if n.Pure {
			continue
		}
		node := n
		ast.Inspect(n.Decl.Body, func(an ast.Node) bool {
			if seeds[node] != nil {
				return false // first seed in source order wins
			}
			sel, ok := an.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := node.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			key := path + "." + name
			reason := ""
			if r, bad := forbiddenFuncs[key]; bad {
				reason = key + " (" + r + ")"
			} else if (path == "math/rand" || path == "math/rand/v2") &&
				fn.Type().(*types.Signature).Recv() == nil && !globalRandExempt[name] {
				reason = key + " (global rand)"
			}
			if reason == "" {
				return true
			}
			pos := node.Pkg.Fset.Position(sel.Pos())
			if node.Pkg.Directives.Allows("determinism", pos) ||
				node.Pkg.Directives.Allows("determinism-taint", pos) {
				return true // justified at source; does not taint callers
			}
			seeds[node] = &Mark{Reason: reason, Pos: sel.Pos()}
			return false
		})
		if seeds[node] != nil {
			continue
		}
		if pos, ok := mapOrderResultSeed(n); ok {
			seeds[node] = &Mark{Reason: "map-order-dependent result", Pos: pos}
		}
	}
	return seeds
}

// mapOrderResultSeed reports whether the function builds a result whose
// element order follows map iteration: a map range appending to a slice
// declared outside the loop, with no later sort.*/slices.Sort* on it.
// This mirrors the sorted-iteration rule's core check (which flags it
// per-package); a justified allow there keeps the function from seeding.
func mapOrderResultSeed(n *Node) (token.Pos, bool) {
	found := false
	var at token.Pos
	ast.Inspect(n.Decl.Body, func(an ast.Node) bool {
		if found {
			return false
		}
		rng, isRange := an.(*ast.RangeStmt)
		if !isRange || !isMapTypeIn(n.Pkg, rng.X) {
			return true
		}
		ast.Inspect(rng.Body, func(bn ast.Node) bool {
			if found {
				return false
			}
			call, isCall := bn.(*ast.CallExpr)
			if !isCall {
				return true
			}
			id, isIdent := call.Fun.(*ast.Ident)
			if !isIdent || id.Name != "append" || !isBuiltinIn(n.Pkg, id) || len(call.Args) == 0 {
				return true
			}
			target, isIdent := call.Args[0].(*ast.Ident)
			if !isIdent || declaredInsideIn(n.Pkg, target, rng) || sortedAfterIn(n.Pkg, n.Decl.Body, rng, target) {
				return true
			}
			rpos := n.Pkg.Fset.Position(rng.Pos())
			if n.Pkg.Directives.Allows("sorted-iteration", rpos) ||
				n.Pkg.Directives.Allows("determinism-taint", rpos) {
				return true
			}
			found, at = true, rng.Pos()
			return false
		})
		return !found
	})
	return at, found
}

// entryMark records how a node is reached from an exported entry point of
// the taint entry packages.
type entryMark struct {
	entry *Node // the exported entry function
	via   *Node // caller hop toward the entry (nil when n is the entry)
}

// entryReach walks forward from every exported function of the entry
// packages and records, for each reachable node, one deterministic path
// back to an entry.
func entryReach(g *Graph) map[*Node]*entryMark {
	reach := make(map[*Node]*entryMark)
	for _, n := range g.Nodes {
		if TaintEntryPackages[n.Pkg.Name] && ast.IsExported(n.Fn.Name()) {
			reach[n] = &entryMark{entry: n}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			m := reach[n]
			if m == nil {
				continue
			}
			for _, e := range n.Calls {
				if reach[e.Callee] == nil {
					reach[e.Callee] = &entryMark{entry: m.entry, via: n}
					changed = true
				}
			}
		}
	}
	return reach
}

// entryChain renders the path entry → ... → n (inclusive) as display hops.
func entryChain(fset *token.FileSet, reach map[*Node]*entryMark, n *Node) []string {
	var rev []*Node
	for cur := n; cur != nil; {
		rev = append(rev, cur)
		m := reach[cur]
		if m == nil || m.via == nil || len(rev) >= 64 {
			break
		}
		cur = m.via
	}
	out := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		cur := rev[i]
		pos := fset.Position(cur.Decl.Pos())
		out = append(out, fmt.Sprintf("%s (%s:%d)", cur.ShortName(), pos.Filename, pos.Line))
	}
	return out
}

// chainTail renders the compact single-line form of the impurity chain
// from a callee down to the root cause, without positions.
func chainTail(marks map[*Node]*Mark, n *Node) []string {
	var out []string
	for hops := 0; n != nil && hops < 64; hops++ {
		out = append(out, n.ShortName())
		m := marks[n]
		if m == nil {
			break
		}
		if m.Via == nil {
			out = append(out, m.Reason)
			break
		}
		n = m.Via
	}
	return out
}
