package lint

import (
	"go/ast"
	"go/types"
)

// CtxSleepAnalyzer forbids bare time.Sleep on HTTP handler paths. A handler
// that sleeps (injected latency, throttling, pacing) keeps its goroutine —
// and its admission slot — alive after the client has hung up; under a
// disconnect storm those zombie sleeps are exactly the queue inflation that
// turns an overload transient into a metastable failure. Handler code must
// instead select on the request context alongside a time.Timer so a gone
// client releases the slot immediately. Deliberate exceptions carry
// //repllint:allow ctx-aware-sleep with a justification.
var CtxSleepAnalyzer = &Analyzer{
	Name: "ctx-aware-sleep",
	Doc: "time.Sleep in http.Handler paths must be a select on the request " +
		"context (time.NewTimer + req.Context().Done()) so client disconnects release the goroutine",
	Run: runCtxSleep,
}

func runCtxSleep(p *Pass) {
	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			var ft *ast.FuncType
			var body *ast.BlockStmt
			switch nn := n.(type) {
			case *ast.FuncDecl:
				ft, body = nn.Type, nn.Body
			case *ast.FuncLit:
				ft, body = nn.Type, nn.Body
			default:
				return true
			}
			if body == nil || !p.isHandlerSignature(ft) {
				return true
			}
			p.ctxSleepScan(body)
			// Nested literals were scanned as part of the handler body (they
			// still run on the request path); don't descend again.
			return false
		})
	})
}

// isHandlerSignature reports whether the function takes an
// http.ResponseWriter or a *http.Request — the shapes handlers and
// handler-path helpers have.
func (p *Pass) isHandlerSignature(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		tv, ok := p.Pkg.Info.Types[field.Type]
		if !ok {
			continue
		}
		t := tv.Type
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		if !ok {
			continue
		}
		obj := named.Obj()
		if obj.Pkg() == nil || obj.Pkg().Path() != "net/http" {
			continue
		}
		if obj.Name() == "Request" || obj.Name() == "ResponseWriter" {
			return true
		}
	}
	return false
}

// ctxSleepScan reports every time.Sleep reachable in a handler body,
// including inside nested function literals (goroutines spawned per request
// still hold per-request resources).
func (p *Pass) ctxSleepScan(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			p.Reportf(call.Pos(), "time.Sleep on an http.Handler path ignores client disconnects; select on req.Context().Done() with a time.Timer instead, or annotate with %s", allowPrefix)
		}
		return true
	})
}
