package lint

import (
	"go/ast"
	"go/types"
)

// DeterminismAnalyzer forbids ambient-state entry points — wall clock,
// global math/rand, environment — inside the deterministic packages. Every
// reproducibility property test in this repo (byte-identical plans at any
// worker count, bit-identical experiment output per seed) assumes those
// packages compute pure functions of their inputs and seeds; one stray
// time.Now() silently voids them.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock, global math/rand, and environment access in the " +
		"deterministic packages (core, repair, faults, httpsim, netsim, workload, policies, experiments)",
	Run: runDeterminism,
}

// forbiddenFuncs maps "pkgpath.Func" to a short reason. math/rand
// constructors (New, NewSource, NewZipf) stay legal: they take explicit
// seeds and are what internal/rng itself is built from. Everything touching
// the process-global generator or the wall clock is out.
var forbiddenFuncs = map[string]string{
	"time.Now":       "wall clock",
	"time.Since":     "wall clock",
	"time.Until":     "wall clock",
	"time.Sleep":     "wall clock",
	"time.After":     "wall clock",
	"time.AfterFunc": "wall clock",
	"time.Tick":      "wall clock",
	"time.NewTicker": "wall clock",
	"time.NewTimer":  "wall clock",

	"os.Getenv":    "ambient environment",
	"os.LookupEnv": "ambient environment",
	"os.Environ":   "ambient environment",
}

// globalRandExempt lists the math/rand package-level functions that do NOT
// touch the shared global generator.
var globalRandExempt = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

func runDeterminism(p *Pass) {
	if !DeterministicPackages[p.Pkg.Name] {
		return
	}
	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path, name := fn.Pkg().Path(), fn.Name()
			key := path + "." + name
			if reason, bad := forbiddenFuncs[key]; bad {
				p.Reportf(sel.Pos(), "%s (%s) is forbidden in deterministic package %q; thread a seed/clock in, or annotate with %s", key, reason, p.Pkg.Name, allowPrefix)
				return true
			}
			if (path == "math/rand" || path == "math/rand/v2") && fn.Type().(*types.Signature).Recv() == nil && !globalRandExempt[name] {
				p.Reportf(sel.Pos(), "global %s.%s is forbidden in deterministic package %q; use a labeled rng.Stream instead", path, name, p.Pkg.Name)
			}
			return true
		})
	})
}
