package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the whole-module call graph the interprocedural
// analyzers (determinism-taint, goroutine-leak, hotpath-alloc) run over.
// The graph is deliberately conservative in the staticcheck fact-engine
// tradition, but bounded so a repo-sized lint run stays instant:
//
//   - static calls (package functions, concrete methods) become direct
//     edges;
//   - calls through an interface method resolve to every module type that
//     implements the interface (method-set dispatch); interfaces declared
//     outside the module (io.Writer, http.Handler, ...) are treated as
//     opaque — a documented soundness boundary, see DESIGN §16;
//   - a module function referenced as a *value* (passed as a callback,
//     assigned to a variable or field) gets a may-call edge from the
//     referencing function, since the graph cannot see where the value is
//     eventually invoked;
//   - function-literal bodies are attributed to their enclosing declared
//     function: a closure's calls are the closure creator's calls. Edges
//     that originate inside a literal are marked, because goroutine-
//     termination facts must not flow through them (a blocked closure does
//     not block its creator);
//   - package-level var initializers have no enclosing function and are
//     skipped.
//
// Two function-level directives are parsed from declaration doc comments:
//
//	//repllint:hotpath — <why this function is a hot root>
//	//repllint:pure — <why ambient effects below here cannot escape>
//
// hotpath marks a root for the allocation-regression analyzer. pure is a
// reviewed trust assertion that cuts fact propagation: the function and
// everything only reachable through it is treated as
// deterministic-by-contract (used for observability-only wall-clock reads
// whose values never feed plan bytes or experiment output).

// Node is one declared function (or method) with a body.
type Node struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package

	Hot  bool // //repllint:hotpath directive on the declaration
	Pure bool // //repllint:pure directive on the declaration

	Calls  []Edge    // outgoing edges, in call-site order
	Spawns []GoSpawn // go statements inside this function, in order
}

// Edge is one may-call relationship from a node to a module function.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	// Dynamic marks interface-dispatch and function-value edges, which
	// over-approximate the real callees.
	Dynamic bool
	// InLit marks edges whose call site sits inside a function literal of
	// the caller. Termination facts do not propagate across them.
	InLit bool
}

// GoSpawn is one `go` statement: either a function literal spawned in
// place, a resolved module function, or an unresolvable dynamic target
// (Callee == nil && Lit == nil).
type GoSpawn struct {
	Stmt   *ast.GoStmt
	Callee *Node        // static target, when resolvable
	Lit    *ast.FuncLit // literal target, when spawned in place
}

// Graph is the whole-module call graph.
type Graph struct {
	Pkgs  []*Package
	Nodes []*Node // deterministic order: package load order, then source order
	byFn  map[*types.Func]*Node
}

// NodeOf returns the graph node for fn, or nil when fn has no body in the
// analyzed packages.
func (g *Graph) NodeOf(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return g.byFn[fn]
}

const (
	hotpathPrefix = "//repllint:hotpath"
	purePrefix    = "//repllint:pure"
)

// BuildGraph constructs the call graph over the given packages. The
// packages must all come from one Loader so types.Object identities agree
// across them.
func BuildGraph(pkgs []*Package) *Graph {
	g := &Graph{Pkgs: pkgs, byFn: make(map[*types.Func]*Node)}

	// Pass 1: one node per declared function body, in deterministic order
	// (pkgs arrive sorted by import path, files sorted by name, decls in
	// source order).
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &Node{Fn: fn, Decl: fd, Pkg: pkg}
				n.Hot = declHasDirective(fd, hotpathPrefix)
				n.Pure = declHasDirective(fd, purePrefix)
				g.Nodes = append(g.Nodes, n)
				g.byFn[fn] = n
			}
		}
	}

	disp := newDispatcher(g)
	for _, n := range g.Nodes {
		g.collectEdges(n, disp)
	}
	return g
}

// declHasDirective reports whether the declaration's doc comment carries
// the directive (a comment line above the func keyword with no blank line
// between belongs to the doc group).
func declHasDirective(fd *ast.FuncDecl, prefix string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.HasPrefix(c.Text, prefix) {
			return true
		}
	}
	return false
}

// dispatcher precomputes the module's named types so interface calls can
// resolve to every implementing method.
type dispatcher struct {
	g *Graph
	// named lists the module's named (non-interface) types in
	// deterministic order.
	named []*types.Named
}

func newDispatcher(g *Graph) *dispatcher {
	d := &dispatcher{g: g}
	for _, pkg := range g.Pkgs {
		scope := pkg.Types.Scope()
		names := scope.Names() // already sorted
		for _, name := range names {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			d.named = append(d.named, named)
		}
	}
	return d
}

// implementers returns the module methods that a call to iface.method may
// reach. Only interfaces declared in the module are dispatched; foreign
// interfaces return nil (opaque).
func (d *dispatcher) implementers(iface *types.Interface, method string) []*Node {
	var out []*Node
	for _, named := range d.named {
		t := types.Type(named)
		if !types.Implements(t, iface) {
			t = types.NewPointer(named)
			if !types.Implements(t, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(t, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			if n := d.g.NodeOf(fn); n != nil {
				out = append(out, n)
			}
		}
	}
	return out
}

// moduleInterface reports whether the interface type is declared by one of
// the analyzed packages (only those are dispatched).
func (d *dispatcher) moduleInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	for _, p := range d.g.Pkgs {
		if p.Types == pkg {
			return true
		}
	}
	return false
}

// collectEdges walks one declaration body and fills in Calls and Spawns.
func (g *Graph) collectEdges(n *Node, disp *dispatcher) {
	info := n.Pkg.Info
	// consumed marks identifiers that appear in call position so the
	// function-value pass below does not double-count them.
	consumed := make(map[*ast.Ident]bool)
	// goCalls marks the call expression of each `go` statement: the spawn
	// still taints the spawner, but termination facts must not flow back.
	goCalls := make(map[*ast.CallExpr]bool)
	var litDepth int

	var walk func(ast.Node) bool
	walk = func(node ast.Node) bool {
		switch nn := node.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(nn.Body, walk)
			litDepth--
			return false
		case *ast.GoStmt:
			g.addSpawn(n, nn, info)
			goCalls[nn.Call] = true
			// The spawned expression (args, literal body) still walks below
			// through the CallExpr case.
			return true
		case *ast.CallExpr:
			g.addCallEdges(n, nn, info, disp, consumed, litDepth > 0 || goCalls[nn])
			return true
		case *ast.Ident:
			if consumed[nn] {
				return true
			}
			if fn, ok := info.Uses[nn].(*types.Func); ok {
				if callee := g.NodeOf(fn); callee != nil && callee != n {
					n.Calls = append(n.Calls, Edge{Callee: callee, Pos: nn.Pos(), Dynamic: true, InLit: litDepth > 0})
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(n.Decl.Body, walk)
}

// addSpawn records the `go` statement's target.
func (g *Graph) addSpawn(n *Node, st *ast.GoStmt, info *types.Info) {
	sp := GoSpawn{Stmt: st}
	switch fun := ast.Unparen(st.Call.Fun).(type) {
	case *ast.FuncLit:
		sp.Lit = fun
	default:
		if fn := staticCallee(info, st.Call); fn != nil {
			sp.Callee = g.NodeOf(fn)
		}
	}
	n.Spawns = append(n.Spawns, sp)
}

// addCallEdges resolves one call expression into zero or more edges.
func (g *Graph) addCallEdges(n *Node, call *ast.CallExpr, info *types.Info, disp *dispatcher, consumed map[*ast.Ident]bool, inLit bool) {
	fun := ast.Unparen(call.Fun)
	// Unwrap generic instantiations: F[T](x).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(idx.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch f := fun.(type) {
	case *ast.Ident:
		consumed[f] = true
		if fn, ok := info.Uses[f].(*types.Func); ok {
			if callee := g.NodeOf(fn); callee != nil && callee != n {
				n.Calls = append(n.Calls, Edge{Callee: callee, Pos: call.Pos(), InLit: inLit})
			}
		}
	case *ast.SelectorExpr:
		consumed[f.Sel] = true
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			recv := sel.Recv()
			if iface, ok := recv.Underlying().(*types.Interface); ok {
				if disp.moduleInterface(recv) {
					for _, callee := range disp.implementers(iface, sel.Obj().Name()) {
						if callee != n {
							n.Calls = append(n.Calls, Edge{Callee: callee, Pos: call.Pos(), Dynamic: true, InLit: inLit})
						}
					}
				}
				return
			}
			if fn, ok := sel.Obj().(*types.Func); ok {
				if callee := g.NodeOf(fn); callee != nil && callee != n {
					n.Calls = append(n.Calls, Edge{Callee: callee, Pos: call.Pos(), InLit: inLit})
				}
			}
			return
		}
		// Qualified package function: pkg.F().
		if fn, ok := info.Uses[f.Sel].(*types.Func); ok {
			if callee := g.NodeOf(fn); callee != nil && callee != n {
				n.Calls = append(n.Calls, Edge{Callee: callee, Pos: call.Pos(), InLit: inLit})
			}
		}
	}
}

// staticCallee resolves a call expression to its *types.Func when the
// target is a plain identifier or selector (no interface dispatch).
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch f := fun.(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[f]; ok && sel.Kind() == types.MethodVal {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil
			}
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

// ShortName renders a node as pkgname.Func or pkgname.(*Recv).Method —
// the form used in chain messages.
func (n *Node) ShortName() string {
	fn := n.Fn
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		ptr := ""
		if p, ok := recv.(*types.Pointer); ok {
			recv = p.Elem()
			ptr = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			return n.Pkg.Name + ".(" + ptr + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return n.Pkg.Name + "." + fn.Name()
}

// FullName renders the stable, position-independent key used by the
// hotpath-alloc baseline file.
func (n *Node) FullName() string { return n.Fn.FullName() }

// sortNodesByPos orders nodes by source position for deterministic
// reporting helpers.
func sortNodesByPos(fset *token.FileSet, nodes []*Node) {
	sort.Slice(nodes, func(i, j int) bool {
		a, b := fset.Position(nodes[i].Decl.Pos()), fset.Position(nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
}
