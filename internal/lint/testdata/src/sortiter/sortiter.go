// sorted-iteration fixture: map ranges with order-sensitive effects must
// be guarded by the collect-then-sort idiom; pure reductions stay silent.
package sortiter

import (
	"fmt"
	"io"
	"sort"

	"telemetry"
)

// KeysSorted is the sanctioned idiom: collect, then sort.
func KeysSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// KeysUnsorted leaks map order into the returned slice.
func KeysUnsorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "sorted-iteration: map range appends to .keys. without a later sort"
		keys = append(keys, k)
	}
	return keys
}

// Emit writes in map order — no later sort can repair that.
func Emit(w io.Writer, m map[string]int) {
	for k, v := range m { // want "sorted-iteration: map range writes output via fmt.Fprintf"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// Count mutates telemetry per key in map order.
func Count(reg *telemetry.Registry, m map[string]int) {
	c := reg.Counter("lint.fixture.count")
	for range m { // want "sorted-iteration: map range mutates telemetry via c.Inc"
		c.Inc()
	}
}

// Sum is an order-insensitive reduction: silent.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// LocalScratch appends only to a slice declared inside the loop: silent.
func LocalScratch(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// SliceSorted uses sort.Slice with a closure referencing the target.
func SliceSorted(m map[int]string) []int {
	ids := make([]int, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}
