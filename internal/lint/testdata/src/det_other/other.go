// Negative determinism fixture: "other" is not one of the deterministic
// packages, so wall-clock use here is silent.
package other

import "time"

// Stamp may read the wall clock freely.
func Stamp() time.Time { return time.Now() }
