// Package hotalloc exercises the hotpath-alloc analyzer against a zero
// baseline: every allocating construct in the hot set reports, anything
// outside it stays quiet.
package hotalloc

// Stats is a value type allocated on the hot path.
type Stats struct{ count int }

// Hot is the annotated root.
//
//repllint:hotpath — fixture root
func Hot(n int) []int {
	buf := make([]int, 0, n)     // want "hot-path allocation regression: make"
	s := Stats{count: n}         // want "hot-path allocation regression: composite"
	buf = append(buf, s.count)   // want "hot-path allocation regression: append"
	f := func() int { return n } // want "hot-path allocation regression: closure"
	_ = f()
	_ = helper(n)
	return buf
}

// helper is hot by propagation from Hot.
func helper(n int) *Stats {
	p := new(Stats) // want "hot-path allocation regression: new #1 in hotalloc.helper .baseline 0. — hot via hotalloc.helper ← hotalloc.Hot"
	p.count = n
	return p
}

// Cold allocates freely: it is not reachable from any hot root.
func Cold(n int) []int {
	return make([]int, n)
}
