// Package rng is a minimal stand-in for repro/internal/rng so the lint
// fixtures type-check without pulling in the real module. The rng-stream
// analyzer keys on the package name ("rng"), the receiver type name
// ("Stream"), and the method name ("Split"), all of which match.
package rng

// Stream mirrors the real deterministic stream type.
type Stream struct{ seed uint64 }

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{seed: seed} }

// Split mirrors the real label-derivation signature.
func (s *Stream) Split(labels ...uint64) *Stream {
	child := s.seed
	for _, l := range labels {
		child ^= l
	}
	return &Stream{seed: child}
}

// IntN exists so fixtures can consume a stream.
func (s *Stream) IntN(n int) int { return int(s.seed) % n }
