// Package goroleak exercises the goroutine-leak analyzer: spawned
// functions with no reachable termination report at the go statement,
// through literals and static call chains alike; everything with an exit
// path stays quiet.
package goroleak

import (
	"context"
	"os"
)

// spin never terminates: the seed fact.
func spin() {
	for {
	}
}

// relay never terminates by transitivity: it unconditionally calls spin.
func relay() {
	spin()
}

// block parks forever on an empty select.
func block() {
	select {}
}

// drain's unlabeled break targets the select, not the for: the classic
// supervisor-loop leak.
func drain(ch chan int) {
	for {
		select {
		case <-ch:
			break
		}
	}
}

// escape's labeled break really does exit the loop.
func escape(ch chan int) {
loop:
	for {
		select {
		case <-ch:
			break loop
		}
	}
}

// worker has a return on the done path.
func worker(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
	}
}

// bail leaves through os.Exit: process exit is termination, not a leak.
func bail() {
	for {
		os.Exit(1)
	}
}

// Spawn is the fixture's spawn site collection.
func Spawn(ctx context.Context, ch chan int, done chan struct{}) {
	go spin()    // want "goroutine never terminates: goroleak.spin → infinite loop with no exit"
	go relay()   // want "goroutine never terminates: goroleak.relay → goroleak.spin → infinite loop with no exit"
	go block()   // want "goroutine never terminates: goroleak.block → infinite loop with no exit"
	go drain(ch) // want "goroutine never terminates: goroleak.drain → infinite loop with no exit"
	go func() {  // want "spawned func literal has an infinite loop with no exit"
		for {
		}
	}()
	go func() { // want "goroutine never terminates: goroleak.spin → infinite loop with no exit"
		spin()
	}()

	go worker(done)
	go escape(ch)
	go bail()
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-ch:
			}
		}
	}()
}
