// telemetry-naming fixture: registry metric names must be string literals
// in dotted lower-case form.
package telemetryname

import "telemetry"

// Register exercises conforming and violating name shapes.
func Register(reg *telemetry.Registry, dynamic string) {
	_ = reg.Counter("httpsim.requests.local")
	_ = reg.Gauge("controller.sites.up")
	_ = reg.Histogram("core.plan_seconds.p99", nil)
	_ = reg.Counter("BadName")         // want "telemetry-naming: metric name .BadName. does not match"
	_ = reg.Counter("trailing.")       // want "telemetry-naming: metric name .trailing.. does not match"
	_ = reg.Counter("plain")           // want "telemetry-naming: metric name .plain. does not match"
	_ = reg.Counter(dynamic)           // want "telemetry-naming: metric name passed to Counter must be a string literal"
	_ = reg.Counter("site." + dynamic) // want "telemetry-naming: metric name passed to Counter must be a string literal"
}
