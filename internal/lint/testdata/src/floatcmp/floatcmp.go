// float-compare fixture: equality between float operands fires; constant
// zero sentinels, ordered comparisons, and integers stay silent.
package floatcmp

// Cmp exercises the flagged and exempt comparison shapes.
func Cmp(a, b float64, i, j int) bool {
	if a == b { // want "float-compare: == between floating-point operands"
		return true
	}
	if a != b { // want "float-compare: != between floating-point operands"
		return false
	}
	if a == 0 { // constant-zero sentinel: exempt
		return false
	}
	if 0.0 != b { // constant zero on either side: exempt
		return false
	}
	if i == j { // integers: out of scope
		return true
	}
	return a < b
}

const half = 0.5

// Sentinel shows a non-zero constant compare (fires) and a deliberate
// sentinel suppressed with an allow directive.
func Sentinel(x float64) bool {
	if x == half { // want "float-compare: == between floating-point operands"
		return true
	}
	if x == 1.0 { //repllint:allow float-compare — deliberate exact sentinel
		return true
	}
	return false
}
