// rng-stream fixture: Split labels must be named constants, and named
// label constants must not alias one another.
package rngsplit

import "rng"

const (
	labelA uint64 = iota + 1
	labelB
)

// aliasA collides with labelA — both are used as Split labels below.
const aliasA uint64 = 1

// Use exercises the legal and illegal label shapes.
func Use(i int) {
	root := rng.New(7)
	_ = root.Split(1)         // want "rng-stream: .*label 1 is a numeric literal"
	_ = root.Split(uint64(2)) // want "rng-stream: .*label 2 is a numeric literal"
	_ = root.Split(labelA)
	_ = root.Split(labelB, uint64(i))
	_ = root.Split(aliasA) // want "rng-stream: stream label constants aliasA, labelA all equal 1"
}
