// Positive determinism fixture: the package is named "core", one of the
// deterministic packages, so every ambient-state entry point must fire.
package core

import (
	"math/rand"
	"os"
	"time"
)

// Bad reaches for every forbidden ambient-state entry point.
func Bad() time.Duration {
	start := time.Now()      // want "determinism: time.Now \(wall clock\)"
	_ = os.Getenv("HOME")    // want "determinism: os.Getenv \(ambient environment\)"
	_ = rand.Intn(4)         // want "determinism: global math/rand.Intn"
	rand.Shuffle(1, nil)     // want "determinism: global math/rand.Shuffle"
	time.Sleep(time.Second)  // want "determinism: time.Sleep \(wall clock\)"
	return time.Since(start) // want "determinism: time.Since \(wall clock\)"
}

// Good shows the legal constructions: explicit-seed constructors and plain
// duration arithmetic never touch ambient state.
func Good(epoch time.Time) (*rand.Rand, time.Duration) {
	r := rand.New(rand.NewSource(42))
	return r, epoch.Sub(time.Unix(0, 0))
}
