// Package ctxsleep exercises the ctx-aware-sleep rule: a bare time.Sleep
// anywhere on an http.Handler path (handler funcs, middleware closures,
// per-request goroutines) must become a select on the request context, so a
// disconnected client releases the goroutine and its admission slot.
package ctxsleep

import (
	"net/http"
	"time"
)

// badHandler sleeps on the request path: a gone client keeps the goroutine.
func badHandler(w http.ResponseWriter, req *http.Request) {
	time.Sleep(10 * time.Millisecond) // want "ctx-aware-sleep: time.Sleep on an http.Handler path"
	w.WriteHeader(http.StatusOK)
}

// badMiddleware hides the sleep inside the handler closure it returns — the
// closure has the handler signature, so the rule still fires.
func badMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		time.Sleep(time.Millisecond) // want "ctx-aware-sleep: time.Sleep on an http.Handler path"
		next.ServeHTTP(w, req)
	})
}

// badRequestHelper has no ResponseWriter, but it takes the request: it runs
// on the request path and must stay context-aware.
func badRequestHelper(req *http.Request) {
	time.Sleep(time.Millisecond) // want "ctx-aware-sleep: time.Sleep on an http.Handler path"
}

// badSpawned sleeps in a goroutine launched per request — the goroutine
// outlives a disconnected client just the same.
func badSpawned(w http.ResponseWriter, req *http.Request) {
	go func() {
		time.Sleep(time.Millisecond) // want "ctx-aware-sleep: time.Sleep on an http.Handler path"
	}()
}

// goodHandler does it right: a timer raced against the request context.
func goodHandler(w http.ResponseWriter, req *http.Request) {
	t := time.NewTimer(10 * time.Millisecond)
	select {
	case <-t.C:
	case <-req.Context().Done():
		t.Stop()
		return
	}
	w.WriteHeader(http.StatusOK)
}

// allowedHandler documents a deliberate exception.
func allowedHandler(w http.ResponseWriter, req *http.Request) {
	time.Sleep(time.Millisecond) //repllint:allow ctx-aware-sleep — fixture: deliberate exception
}

// notAHandler sleeps outside any request path: the rule stays quiet.
func notAHandler(d time.Duration) {
	time.Sleep(d)
}
