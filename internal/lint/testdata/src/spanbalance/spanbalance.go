// Package spanbalance exercises the span-balance rule: every span creation
// must reach .End() in the enclosing function, escape it, or carry an allow
// directive.
package spanbalance

import (
	"telemetry"
	"trace"
)

// balanced spans are quiet: direct End, deferred End, and End inside a
// nested closure (the closure is its own scope for spans it creates) all
// count.
func balanced(tr *trace.Tracer) {
	root := tr.StartTrace("page")
	defer root.End()
	ch := root.StartChild("chain")
	ch.SetAttr()
	ch.End()
	go func() {
		bg := root.StartChild("background")
		bg.End()
	}()
}

// escapes hands the span to the caller — its lifetime, its problem.
func escapes(tr *trace.Tracer) *trace.Active {
	s := tr.StartTrace("page")
	return s
}

var sink *trace.Active

// stored escapes into package state; likewise fine.
func stored(tr *trace.Tracer) {
	s := tr.StartTrace("page")
	sink = s
}

// leaks never end and never leave.
func leaks(tr *trace.Tracer) {
	s := tr.StartTrace("page") // want "never ended"
	s.SetAttr()
	tr.StartTrace("page")             // want "discarded"
	_ = tr.StartRemote("serve", 1, 2) // want "discarded"
}

// leakChild leaks only the child: the closure creates bg but never closes
// it, while the root is deferred-closed in the outer scope.
func leakChild(tr *trace.Tracer) {
	root := tr.StartTrace("page")
	defer root.End()
	go func() {
		bg := root.StartChild("background") // want "never ended"
		bg.SetAttr()
	}()
}

// telemetrySpans covers the telemetry creator pair; s's only other use is
// as the Child receiver, which neither ends it nor lets it escape.
func telemetrySpans() {
	s := telemetry.NewSpan("plan") // want "never ended"
	c := s.Child("partition")
	c.End()
}

// allowed documents a deliberate cross-function lifetime.
func allowed(tr *trace.Tracer) {
	s := tr.StartTrace("page") //repllint:allow span-balance — closed by the shutdown hook in fixture-land
	s.SetAttr()
}
