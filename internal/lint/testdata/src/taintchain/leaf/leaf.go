// Package leaf is the bottom of the taint-chain fixture: the only
// package that touches ambient state directly.
package leaf

import (
	"sort"
	"time"
)

// Stamp reads the wall clock: the taint root.
func Stamp() int64 {
	return time.Now().UnixNano()
}

// Allowed reads the clock too, but the justified allow at the source
// keeps it from seeding taint in its callers.
func Allowed() int64 {
	return time.Now().UnixNano() //repllint:allow determinism-taint — fixture: reviewed at source
}

// Collect returns map keys in iteration order: a map-order-dependent
// result, the non-call taint seed.
func Collect(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Sorted is the compliant twin: collect, then sort.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
