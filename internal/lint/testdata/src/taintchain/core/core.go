// Package core mirrors the real entry package by name: its exported
// functions are determinism-taint entry points, and the fixture proves a
// taint chain of depth three (Plan → hub.Mix → leaf.Stamp → time.Now)
// reports at the cross-package frontier with the full call path.
package core

import "taintchain/hub"

// Plan is the entry point of the depth-three chain.
func Plan() int64 {
	return hub.Mix() // want "determinism-taint: call to hub.Mix is determinism-tainted .hub.Mix → leaf.Stamp → time.Now .wall clock..; reachable from entry core.Plan"
}

// PlanOrder hits the map-order seed two hops down.
func PlanOrder(m map[string]int) []string {
	return hub.Gather(m) // want "determinism-taint: call to hub.Gather is determinism-tainted .hub.Gather → leaf.Collect → map-order-dependent result.; reachable from entry core.PlanOrder"
}

// PlanQuiet's callee asserts //repllint:pure: no finding.
func PlanQuiet() {
	hub.Quiet()
}

// PlanClean reaches only source-justified or compliant helpers: no
// finding.
func PlanClean(m map[string]int) []string {
	return hub.Clean(m)
}

// PlanSuppressed demonstrates suppressing the frontier finding itself.
func PlanSuppressed() int64 {
	return hub.Mix() //repllint:allow determinism-taint — fixture: frontier-site suppression
}

// hidden is not reachable from any exported entry point, so its tainted
// call does not report.
func hidden() int64 {
	return hub.Mix()
}
