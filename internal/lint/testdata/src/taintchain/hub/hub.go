// Package hub is the intermediate helper of the taint-chain fixture:
// impurity flows through it without any direct ambient access, which is
// exactly what the per-package determinism rule cannot see.
package hub

import "taintchain/leaf"

// Mix is impure by transitivity: it calls leaf.Stamp.
func Mix() int64 {
	return leaf.Stamp() + 1
}

// Gather is impure through the map-order seed in leaf.Collect.
func Gather(m map[string]int) []string {
	return leaf.Collect(m)
}

// Quiet calls the clock-touching leaf too, but asserts the reviewed
// boundary: callers stay clean.
//
//repllint:pure — fixture: reviewed boundary, result discarded
func Quiet() {
	_ = leaf.Stamp()
}

// Clean only reaches source-justified or compliant leaf helpers, so it
// carries no taint.
func Clean(m map[string]int) []string {
	_ = leaf.Allowed()
	return leaf.Sorted(m)
}
