//repllint:allow determinism — whole-file exemption: this file is the documented wall-clock boundary

// Determinism suppression fixture, file scope: the directive above sits
// before the package clause, so nothing in this file fires.
package faults

import "time"

// WallClock is exempt via the file-header directive.
func WallClock() time.Time { return time.Now() }
