// Determinism suppression fixture, line scope: a directive on the same
// line or the line immediately above silences exactly one finding.
package faults

import "time"

// Spans measures wall time with sanctioned annotations and one violation.
func Spans() time.Duration {
	start := time.Now() //repllint:allow determinism — span telemetry only; never feeds plan state
	//repllint:allow determinism — line-above form
	mid := time.Now()
	_ = mid
	return time.Since(start) // want "determinism: time.Since \(wall clock\)"
}
