// error-discipline fixture: silently dropped errors and unwrapped
// fmt.Errorf causes fire; explicit drops and the print-family exemptions
// stay silent.
package errcheck

import (
	"errors"
	"fmt"
	"strings"
)

func work() error { return nil }

func pair() (int, error) { return 0, nil }

// Drop exercises statement-position error discards.
func Drop() {
	work()     // want "error-discipline: error result dropped"
	pair()     // want "error-discipline: error result dropped"
	_ = work() // explicit drop: silent
	n, _ := pair()
	_ = n
	fmt.Println("hello") // print family: exempt
	var sb strings.Builder
	sb.WriteString("x") // documented to never fail: exempt
	_ = sb.String()
}

// Wrap formats an error without wrapping it.
func Wrap(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("context: %v", err) // want "error-discipline: fmt.Errorf formats an error without %w"
}

// Wrapped uses %w: silent.
func Wrapped(err error) error {
	return fmt.Errorf("context: %w", err)
}

// Rewrapped mixes %w with %v for a secondary cause: silent.
func Rewrapped(err error) error {
	return fmt.Errorf("op %s failed: %w (also %v)", "x", err, errors.New("aux"))
}
