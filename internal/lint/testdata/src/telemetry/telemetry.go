// Package telemetry is a minimal stand-in for repro/internal/telemetry so
// the lint fixtures type-check. The telemetry-naming and sorted-iteration
// analyzers key on the package name ("telemetry") plus the registry lookup
// and mutation method names, all mirrored here.
package telemetry

// Registry mirrors the real metric registry lookups.
type Registry struct{}

// Counter returns the named counter.
func (r *Registry) Counter(name string) *Counter { return &Counter{} }

// Gauge returns the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

// Histogram returns the named histogram.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram { return &Histogram{} }

// Counter is a monotonic metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Gauge is a set-to-value metric.
type Gauge struct{ v float64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.v = v }

// Histogram is a bucketed metric.
type Histogram struct{ n int64 }

// Observe records v.
func (h *Histogram) Observe(v float64) { h.n++ }

// Span is a nestable phase timer, mirrored for the span-balance rule.
type Span struct{}

// NewSpan starts a new root span.
func NewSpan(name string) *Span { return &Span{} }

// Child starts a nested span.
func (s *Span) Child(name string) *Span { return &Span{} }

// End closes the span.
func (s *Span) End() {}
