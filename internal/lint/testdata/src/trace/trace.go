// Package trace is a minimal stand-in for repro/internal/trace so the
// span-balance fixtures type-check. The analyzer keys on the package name
// ("trace") plus the span-creating method names, all mirrored here.
package trace

// Tracer mints request-scoped spans.
type Tracer struct{}

// Active is an in-flight span.
type Active struct{}

// StartTrace opens a new root span under a fresh trace ID.
func (t *Tracer) StartTrace(name string) *Active { return &Active{} }

// StartRemote opens a span continuing a propagated trace context.
func (t *Tracer) StartRemote(name string, trace, parent uint64) *Active { return &Active{} }

// StartChild opens a child span.
func (a *Active) StartChild(name string) *Active { return &Active{} }

// SetAttr annotates the span.
func (a *Active) SetAttr() {}

// End closes the span and flushes it to the buffer.
func (a *Active) End() {}
