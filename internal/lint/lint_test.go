package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader is shared across fixture cases so the stdlib source
// importer's work is paid once.
var fixtureLoader *Loader

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	if fixtureLoader == nil {
		l, err := NewLoader("testdata/src", "")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		fixtureLoader = l
	}
	pkg, err := fixtureLoader.Load(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	return pkg
}

var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants extracts the `// want "regex"` expectations from a fixture
// package, keyed by filename and line.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantArgRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					byLine := wants[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*regexp.Regexp)
						wants[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], re)
				}
			}
		}
	}
	return wants
}

// checkFixture runs the named rules over one fixture package and verifies
// the findings against the fixture's want comments, both directions.
func checkFixture(t *testing.T, dir string, rules ...string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	azs, err := ByName(rules)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackages([]*Package{pkg}, azs)
	checkWants(t, findings, collectWants(t, pkg))
}

// checkGraphFixture loads a multi-package fixture tree, runs the named
// graph analyzers over its call graph (zero hotpath baseline), and
// verifies the findings against the want comments of every package.
func checkGraphFixture(t *testing.T, dirs []string, rules ...string) {
	t.Helper()
	var pkgs []*Package
	wants := make(map[string]map[int][]*regexp.Regexp)
	for _, d := range dirs {
		pkg := loadFixture(t, d)
		pkgs = append(pkgs, pkg)
		for file, byLine := range collectWants(t, pkg) {
			wants[file] = byLine
		}
	}
	azs, err := GraphByName(rules)
	if err != nil {
		t.Fatal(err)
	}
	checkWants(t, RunGraph(pkgs[0].Fset, pkgs, azs, nil), wants)
}

// checkWants verifies findings against want expectations, both directions.
func checkWants(t *testing.T, findings []Finding, wants map[string]map[int][]*regexp.Regexp) {
	t.Helper()
	for _, f := range findings {
		text := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
		matched := false
		res := wants[f.Pos.Filename][f.Pos.Line]
		for i, re := range res {
			if re.MatchString(text) {
				wants[f.Pos.Filename][f.Pos.Line] = append(res[:i], res[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text)
		}
	}
	for file, byLine := range wants {
		for line, res := range byLine {
			for _, re := range res {
				t.Errorf("%s:%d: expected finding matching %q, got none", file, line, re)
			}
		}
	}
}

// TestFixtures proves every rule both fires on violations and stays quiet
// on compliant code, per the golden // want comments in testdata/src.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir   string
		rules []string
	}{
		{"det_core", []string{"determinism"}},
		{"det_allow", []string{"determinism"}},
		{"det_other", []string{"determinism"}},
		{"rngsplit", []string{"rng-stream"}},
		{"sortiter", []string{"sorted-iteration"}},
		{"floatcmp", []string{"float-compare"}},
		{"telemetryname", []string{"telemetry-naming"}},
		{"errcheck", []string{"error-discipline"}},
		{"spanbalance", []string{"span-balance"}},
		{"ctxsleep", []string{"ctx-aware-sleep"}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) { checkFixture(t, c.dir, c.rules...) })
	}
}

// TestGraphFixtures proves the interprocedural analyzers both fire on
// violations and stay quiet on compliant code, per the golden // want
// comments — including the cross-package taint chain through an
// intermediate helper package.
func TestGraphFixtures(t *testing.T) {
	cases := []struct {
		name  string
		dirs  []string
		rules []string
	}{
		{"taintchain", []string{"taintchain/core", "taintchain/hub", "taintchain/leaf"}, []string{"determinism-taint"}},
		{"goroleak", []string{"goroleak"}, []string{"goroutine-leak"}},
		{"hotalloc", []string{"hotalloc"}, []string{"hotpath-alloc"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) { checkGraphFixture(t, c.dirs, c.rules...) })
	}
}

// TestTaintChainDepth pins the acceptance shape of the cross-package
// fixture: the core.Plan finding carries the full call path, depth three
// from entry to root cause (Plan → hub.Mix → leaf.Stamp → time.Now).
func TestTaintChainDepth(t *testing.T) {
	pkgs := []*Package{
		loadFixture(t, "taintchain/core"),
		loadFixture(t, "taintchain/hub"),
		loadFixture(t, "taintchain/leaf"),
	}
	findings := RunGraph(pkgs[0].Fset, pkgs, []*GraphAnalyzer{DeterminismTaintAnalyzer}, nil)
	var plan *Finding
	for i, f := range findings {
		if strings.Contains(f.Msg, "entry core.Plan ") || strings.HasSuffix(f.Msg, "entry core.Plan — break the chain, assert //repllint:pure at a reviewed boundary, or annotate with //repllint:allow determinism-taint") {
			plan = &findings[i]
			break
		}
	}
	if plan == nil {
		t.Fatalf("no finding for entry core.Plan among %d findings", len(findings))
	}
	if len(plan.Chain) < 4 {
		t.Fatalf("chain too short, want >= 4 hops (3 calls + root cause): %q", plan.Chain)
	}
	for i, wantHop := range []string{"core.Plan", "hub.Mix", "leaf.Stamp", "time.Now"} {
		if !strings.Contains(plan.Chain[i], wantHop) {
			t.Errorf("chain hop %d = %q, want it to mention %q (full: %q)", i, plan.Chain[i], wantHop, plan.Chain)
		}
	}
}

// TestHotpathBaselineGates proves the allocation gate is a ratchet: the
// current tree round-trips through -write-hotpath-baseline to a clean run,
// and lowering any budget resurfaces exactly the regressed kind.
func TestHotpathBaselineGates(t *testing.T) {
	pkg := loadFixture(t, "hotalloc")
	g := BuildGraph([]*Package{pkg})

	zero := RunGraph(pkg.Fset, []*Package{pkg}, []*GraphAnalyzer{HotpathAllocAnalyzer}, nil)
	if len(zero) != 5 {
		t.Fatalf("zero baseline: %d findings, want 5 (make/composite/append/closure/new)", len(zero))
	}

	path := filepath.Join(t.TempDir(), HotpathBaselineName)
	nfn, err := WriteHotpathBaseline(g, path)
	if err != nil {
		t.Fatal(err)
	}
	if nfn != 2 {
		t.Fatalf("baseline recorded %d functions, want 2 (Hot, helper)", nfn)
	}
	base, err := LoadHotpathBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if clean := RunGraph(pkg.Fset, []*Package{pkg}, []*GraphAnalyzer{HotpathAllocAnalyzer}, base); len(clean) != 0 {
		t.Fatalf("current counts against their own baseline should be clean, got %v", clean)
	}

	base.Functions["hotalloc.helper"]["new"] = 0
	regressed := RunGraph(pkg.Fset, []*Package{pkg}, []*GraphAnalyzer{HotpathAllocAnalyzer}, base)
	if len(regressed) != 1 || !strings.Contains(regressed[0].Msg, "new #1 in hotalloc.helper") {
		t.Fatalf("lowered budget should fire exactly the new-kind regression, got %v", regressed)
	}

	missing, err := LoadHotpathBaseline(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil || missing == nil || len(missing.Functions) != 0 {
		t.Fatalf("missing baseline should load as zero budget, got %v, %v", missing, err)
	}
}

// TestModuleClean runs the full suite — per-package rules, graph rules,
// and the stale-allow audit in strict mode — over the real module: the
// tree must stay finding-free, so CI can gate on `repllint -strict-allow`.
func TestModuleClean(t *testing.T) {
	res, err := RunModuleOpts("../..", ModuleOptions{
		Analyzers:   Analyzers,
		Graph:       GraphAnalyzers,
		StrictAllow: true,
	})
	if err != nil {
		t.Fatalf("RunModuleOpts: %v", err)
	}
	for _, f := range res.Findings {
		t.Errorf("%s", f)
	}
}

func TestSelectAnalyzers(t *testing.T) {
	pa, ga, err := SelectAnalyzers(nil)
	if err != nil || len(pa) != len(Analyzers) || len(ga) != len(GraphAnalyzers) {
		t.Fatalf("SelectAnalyzers(nil) = %d+%d, err %v; want full suites", len(pa), len(ga), err)
	}
	pa, ga, err = SelectAnalyzers([]string{"determinism", "goroutine-leak"})
	if err != nil || len(pa) != 1 || len(ga) != 1 || pa[0].Name != "determinism" || ga[0].Name != "goroutine-leak" {
		t.Fatalf("mixed-suite selection failed: %v %v %v", pa, ga, err)
	}
	if _, _, err := SelectAnalyzers([]string{"nope"}); err == nil {
		t.Fatal("SelectAnalyzers(nope) should fail")
	}
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != len(Analyzers) {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want %d, nil", len(all), err, len(Analyzers))
	}
	got, err := ByName([]string{"determinism", "rng-stream"})
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "rng-stream" {
		t.Fatalf("ByName(determinism, rng-stream) = %v, %v", got, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//repllint:allow determinism — spans only", []string{"determinism"}, true},
		{"//repllint:allow determinism,float-compare justification", []string{"determinism", "float-compare"}, true},
		{"// repllint:allow determinism", nil, false}, // space breaks the directive on purpose
		{"//repllint:allow", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		rules, ok := parseAllow(c.text)
		if ok != c.ok || strings.Join(rules, "|") != strings.Join(c.want, "|") {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, rules, ok, c.want, c.ok)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && !strings.Contains(root, "/") {
		t.Fatalf("unexpected module root %q", root)
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Fatal("FindModuleRoot(/) should fail")
	}
}
