package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// fixtureLoader is shared across fixture cases so the stdlib source
// importer's work is paid once.
var fixtureLoader *Loader

func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	if fixtureLoader == nil {
		l, err := NewLoader("testdata/src", "")
		if err != nil {
			t.Fatalf("NewLoader: %v", err)
		}
		fixtureLoader = l
	}
	pkg, err := fixtureLoader.Load(dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	return pkg
}

var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

// collectWants extracts the `// want "regex"` expectations from a fixture
// package, keyed by filename and line.
func collectWants(t *testing.T, pkg *Package) map[string]map[int][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]map[int][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantArgRE.FindAllStringSubmatch(c.Text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					byLine := wants[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*regexp.Regexp)
						wants[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], re)
				}
			}
		}
	}
	return wants
}

// checkFixture runs the named rules over one fixture package and verifies
// the findings against the fixture's want comments, both directions.
func checkFixture(t *testing.T, dir string, rules ...string) {
	t.Helper()
	pkg := loadFixture(t, dir)
	azs, err := ByName(rules)
	if err != nil {
		t.Fatal(err)
	}
	findings := RunPackages([]*Package{pkg}, azs)
	wants := collectWants(t, pkg)

	for _, f := range findings {
		text := fmt.Sprintf("%s: %s", f.Rule, f.Msg)
		matched := false
		res := wants[f.Pos.Filename][f.Pos.Line]
		for i, re := range res {
			if re.MatchString(text) {
				wants[f.Pos.Filename][f.Pos.Line] = append(res[:i], res[i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s", f.Pos.Filename, f.Pos.Line, text)
		}
	}
	for file, byLine := range wants {
		for line, res := range byLine {
			for _, re := range res {
				t.Errorf("%s:%d: expected finding matching %q, got none", file, line, re)
			}
		}
	}
}

// TestFixtures proves every rule both fires on violations and stays quiet
// on compliant code, per the golden // want comments in testdata/src.
func TestFixtures(t *testing.T) {
	cases := []struct {
		dir   string
		rules []string
	}{
		{"det_core", []string{"determinism"}},
		{"det_allow", []string{"determinism"}},
		{"det_other", []string{"determinism"}},
		{"rngsplit", []string{"rng-stream"}},
		{"sortiter", []string{"sorted-iteration"}},
		{"floatcmp", []string{"float-compare"}},
		{"telemetryname", []string{"telemetry-naming"}},
		{"errcheck", []string{"error-discipline"}},
		{"spanbalance", []string{"span-balance"}},
		{"ctxsleep", []string{"ctx-aware-sleep"}},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) { checkFixture(t, c.dir, c.rules...) })
	}
}

// TestModuleClean runs the full suite over the real module: the tree must
// stay finding-free, so CI can gate on `repllint`.
func TestModuleClean(t *testing.T) {
	findings, err := RunModule("../..", Analyzers)
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName(nil)
	if err != nil || len(all) != len(Analyzers) {
		t.Fatalf("ByName(nil) = %d analyzers, err %v; want %d, nil", len(all), err, len(Analyzers))
	}
	got, err := ByName([]string{"determinism", "rng-stream"})
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "rng-stream" {
		t.Fatalf("ByName(determinism, rng-stream) = %v, %v", got, err)
	}
	if _, err := ByName([]string{"nope"}); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//repllint:allow determinism — spans only", []string{"determinism"}, true},
		{"//repllint:allow determinism,float-compare justification", []string{"determinism", "float-compare"}, true},
		{"// repllint:allow determinism", nil, false}, // space breaks the directive on purpose
		{"//repllint:allow", nil, false},
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		rules, ok := parseAllow(c.text)
		if ok != c.ok || strings.Join(rules, "|") != strings.Join(c.want, "|") {
			t.Errorf("parseAllow(%q) = %v, %v; want %v, %v", c.text, rules, ok, c.want, c.ok)
		}
	}
}

func TestFindModuleRoot(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(root, "repo") && !strings.Contains(root, "/") {
		t.Fatalf("unexpected module root %q", root)
	}
	if _, err := FindModuleRoot("/"); err == nil {
		t.Fatal("FindModuleRoot(/) should fail")
	}
}
