package lint

import (
	"go/ast"
	"go/types"
)

// SortedIterAnalyzer flags map iteration whose body has order-sensitive
// effects. Go randomizes map iteration order per run, so a map range that
// appends to an outer slice, writes output, or mutates telemetry makes the
// result depend on the runtime's hash seed — exactly the nondeterminism the
// byte-identical-plan and bit-reproducible-experiment tests exist to rule
// out.
//
// The accepted idiom is "collect keys, sort, range the slice": a map range
// that only appends keys/values to a slice is fine when the same function
// later passes that slice to sort.* or slices.Sort*. Direct writes and
// telemetry mutation from inside a map range are always flagged — no
// after-the-fact sort can fix an already-emitted order.
var SortedIterAnalyzer = &Analyzer{
	Name: "sorted-iteration",
	Doc: "map ranges with order-sensitive effects (append to outer slice without a later sort, " +
		"output writes, telemetry mutation) are nondeterministic",
	Run: runSortedIter,
}

func runSortedIter(p *Pass) {
	p.eachFile(func(f *ast.File) {
		// Examine every function body independently so "later sort" is
		// scoped to the innermost enclosing function.
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkFuncMapRanges(p, body)
			}
			return true
		})
	})
}

// checkFuncMapRanges inspects one function body. Nested function literals
// are skipped here; the outer Inspect visits them separately.
func checkFuncMapRanges(p *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(p, rng.X) {
			return true
		}
		checkMapRange(p, body, rng)
		return true
	})
}

func checkMapRange(p *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt) {
	var appendTargets []*ast.Ident
	reported := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			// A builtin append whose target is assigned outside the loop
			// makes the slice's element order follow map order.
			if fun.Name == "append" && isBuiltin(p, fun) && len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok {
					appendTargets = append(appendTargets, id)
				}
			}
		case *ast.SelectorExpr:
			if isOutputWrite(p, fun) {
				p.Reportf(rng.Pos(), "map range writes output via %s in map order; iterate a sorted key slice instead", selString(fun))
				reported = true
				return false
			}
			if isTelemetryMutation(p, fun) {
				p.Reportf(rng.Pos(), "map range mutates telemetry via %s in map order; iterate a sorted key slice instead", selString(fun))
				reported = true
				return false
			}
		}
		return true
	})
	if reported {
		return
	}
	for _, target := range appendTargets {
		if declaredInside(p, target, rng) {
			continue // loop-local scratch; order cannot escape
		}
		if sortedAfter(p, funcBody, rng, target) {
			continue
		}
		p.Reportf(rng.Pos(), "map range appends to %q without a later sort.* call on it; sort before the order can feed output", target.Name)
		return // one finding per range is enough
	}
}

// isMapType reports whether expr has map underlying type.
func isMapType(p *Pass, expr ast.Expr) bool { return isMapTypeIn(p.Pkg, expr) }

// isMapTypeIn is the package-level form, shared with the determinism-taint
// seed scan.
func isMapTypeIn(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isBuiltin(p *Pass, id *ast.Ident) bool { return isBuiltinIn(p.Pkg, id) }

func isBuiltinIn(pkg *Package, id *ast.Ident) bool {
	_, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// declaredInside reports whether the identifier's declaration lies within
// the range statement (a loop-local accumulator).
func declaredInside(p *Pass, id *ast.Ident, rng *ast.RangeStmt) bool {
	return declaredInsideIn(p.Pkg, id, rng)
}

func declaredInsideIn(pkg *Package, id *ast.Ident, rng *ast.RangeStmt) bool {
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}

// sortedAfter reports whether, lexically after the range loop inside the
// same function body, a sort.* / slices.Sort* call mentions the append
// target — the "collect then sort" idiom.
func sortedAfter(p *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	return sortedAfterIn(p.Pkg, funcBody, rng, target)
}

func sortedAfterIn(pkg *Package, funcBody *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	tobj := pkg.Info.Uses[target]
	if tobj == nil {
		return false
	}
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fp := fn.Pkg().Path(); fp != "sort" && fp != "slices" {
			return true
		}
		// Does any argument (or the closure body of sort.Slice's less
		// function) reference the same object as the append target?
		for _, arg := range call.Args {
			refs := false
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pkg.Info.Uses[id] == tobj {
					refs = true
					return false
				}
				return true
			})
			if refs {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isOutputWrite reports whether a selector call emits bytes to an output
// sink in iteration order: fmt print-family functions and io-style Write*
// methods. Writes into in-memory builders are included on purpose — they
// almost always become output — and the rare order-insensitive use is what
// the allow directive is for.
func isOutputWrite(p *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Encode":
		return true
	}
	return false
}

// isTelemetryMutation reports whether a selector call mutates a metric from
// the telemetry package (Counter.Add/Inc, Gauge.Set/Add, Histogram.Observe,
// registry lookups are reads and stay legal).
func isTelemetryMutation(p *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "telemetry" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	switch fn.Name() {
	case "Add", "Inc", "Set", "Observe", "AddBusy":
		return true
	}
	return false
}

func selString(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
