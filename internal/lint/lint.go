// Package lint is a repo-specific static-analysis suite. It mechanically
// enforces the conventions every reproducibility claim in this repository
// rests on: no wall-clock or ambient randomness inside the deterministic
// packages, named-constant discipline for rng stream labels, sorted
// iteration before anything that feeds output, no float equality, telemetry
// metric-name hygiene, error-handling discipline, and span lifecycle
// balance (every trace/telemetry span creation reaches End or escapes).
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types, go/importer) — no golang.org/x/tools — honoring the repo's
// stdlib-only rule. The cmd/repllint driver loads every package in the
// module, type-checks it, runs every analyzer, and exits nonzero on any
// finding.
//
// # Suppression
//
// A finding can be suppressed with a directive comment:
//
//	//repllint:allow <rule> — <one-line justification>
//
// placed either on the same line as (or the line immediately above) the
// offending expression, or in the file header before the package clause to
// exempt the whole file. The justification text is free-form but required by
// convention; reviews treat a bare allow as a smell.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
)

// Finding is one analyzer hit, formatted as "file:line: rule: message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
	// Chain is the interprocedural call path behind the finding (graph
	// analyzers only): each hop "pkg.Func (file:line)", ending at the root
	// cause. Empty for single-function findings.
	Chain []string
	// Severity is "" (error) or "warning" (advisory, does not fail a run).
	Severity string

	pkg *Package // owning package, for suppression lookup
}

// String renders the canonical file:line: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule. Run inspects a single type-checked package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// DeterministicPackages names the packages whose outputs must be a pure
// function of (inputs, seed). The determinism and sorted-iteration rules key
// on the package name: every one of these lives at repro/internal/<name>.
var DeterministicPackages = map[string]bool{
	"core":        true,
	"repair":      true,
	"faults":      true,
	"httpsim":     true,
	"netsim":      true,
	"workload":    true,
	"policies":    true,
	"experiments": true,
	"estimate":    true,
}

// Analyzers is the full suite in reporting order.
var Analyzers = []*Analyzer{
	DeterminismAnalyzer,
	RNGStreamAnalyzer,
	SortedIterAnalyzer,
	FloatCompareAnalyzer,
	TelemetryNameAnalyzer,
	ErrorDisciplineAnalyzer,
	SpanBalanceAnalyzer,
	CtxSleepAnalyzer,
}

// ByName returns the analyzers with the given names, or all of them when
// names is empty. Unknown names are an error.
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackages runs the analyzers over already-loaded packages and returns
// the surviving (non-suppressed) findings sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			pass := &Pass{Analyzer: az, Pkg: pkg}
			az.Run(pass)
			for _, f := range pass.findings {
				if !pkg.Directives.Allows(f.Rule, f.Pos) {
					f.pkg = pkg
					out = append(out, f)
				}
			}
		}
	}
	sortFindings(out)
	return out
}

// sortFindings orders findings by (file, line, rule).
func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
}

// RunModule loads every package under the module rooted at dir, type-checks
// it, and runs the per-package analyzers.
func RunModule(dir string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// SelectAnalyzers resolves rule names across both suites: per-package
// analyzers and whole-module graph analyzers. Empty names select
// everything.
func SelectAnalyzers(names []string) ([]*Analyzer, []*GraphAnalyzer, error) {
	if len(names) == 0 {
		return Analyzers, GraphAnalyzers, nil
	}
	pkgByName := make(map[string]*Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		pkgByName[a.Name] = a
	}
	graphByName := make(map[string]*GraphAnalyzer, len(GraphAnalyzers))
	for _, a := range GraphAnalyzers {
		graphByName[a.Name] = a
	}
	var pa []*Analyzer
	var ga []*GraphAnalyzer
	for _, n := range names {
		switch {
		case pkgByName[n] != nil:
			pa = append(pa, pkgByName[n])
		case graphByName[n] != nil:
			ga = append(ga, graphByName[n])
		default:
			return nil, nil, fmt.Errorf("lint: unknown rule %q", n)
		}
	}
	return pa, ga, nil
}

// ModuleOptions configures a full-module run across both suites.
type ModuleOptions struct {
	// Analyzers and Graph select the rules; both nil-able. A nil slice
	// runs none of that suite (use SelectAnalyzers(nil) for everything).
	Analyzers []*Analyzer
	Graph     []*GraphAnalyzer
	// BaselinePath points at the hotpath-alloc baseline; "" uses
	// <root>/.repllint-hotpath.json (a missing file is a zero baseline).
	BaselinePath string
	// StrictAllow promotes stale //repllint:allow directives to error
	// findings. Only meaningful when both full suites ran — a partial run
	// leaves legitimately-matched allows unmatched.
	StrictAllow bool
}

// ModuleResult is a full-module run's outcome.
type ModuleResult struct {
	// Findings are the error findings, sorted by position. Includes stale
	// allows when StrictAllow was set.
	Findings []Finding
	// Stale lists the stale-allow audit results (severity "warning"),
	// whether or not StrictAllow promoted them into Findings.
	Stale []Finding
}

// RunModuleOpts loads the module at dir and runs both analyzer suites plus
// the stale-suppression audit.
func RunModuleOpts(dir string, opts ModuleOptions) (*ModuleResult, error) {
	pkgs, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	res := &ModuleResult{}
	res.Findings = RunPackages(pkgs, opts.Analyzers)
	if len(opts.Graph) > 0 && len(pkgs) > 0 {
		path := opts.BaselinePath
		if path == "" {
			root, rootErr := filepath.Abs(dir)
			if rootErr != nil {
				return nil, rootErr
			}
			path = filepath.Join(root, HotpathBaselineName)
		}
		baseline, err := LoadHotpathBaseline(path)
		if err != nil {
			return nil, err
		}
		res.Findings = append(res.Findings, RunGraph(pkgs[0].Fset, pkgs, opts.Graph, baseline)...)
	}
	res.Stale = staleFindings(pkgs)
	if opts.StrictAllow {
		for _, f := range res.Stale {
			f.Severity = ""
			res.Findings = append(res.Findings, f)
		}
	}
	sortFindings(res.Findings)
	return res, nil
}

// staleFindings runs the suppression audit over every package: allow
// directives that matched no finding during this process's analyzer runs.
func staleFindings(pkgs []*Package) []Finding {
	known := make(map[string]bool, len(Analyzers)+len(GraphAnalyzers))
	for _, a := range Analyzers {
		known[a.Name] = true
	}
	for _, a := range GraphAnalyzers {
		known[a.Name] = true
	}
	var out []Finding
	for _, pkg := range pkgs {
		for _, site := range pkg.Directives.Stale() {
			msg := fmt.Sprintf("%s %s suppresses nothing (stale) — the offending code moved or was fixed; delete the directive", allowPrefix, site.Rule)
			if !known[site.Rule] {
				msg = fmt.Sprintf("%s %s names an unknown rule — fix the rule name or delete the directive", allowPrefix, site.Rule)
			}
			out = append(out, Finding{
				Pos:      token.Position{Filename: site.File, Line: site.DeclLine},
				Rule:     "stale-allow",
				Msg:      msg,
				Severity: "warning",
				pkg:      pkg,
			})
		}
	}
	sortFindings(out)
	return out
}

// eachFile applies fn to every file of the pass's package.
func (p *Pass) eachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
