// Package lint is a repo-specific static-analysis suite. It mechanically
// enforces the conventions every reproducibility claim in this repository
// rests on: no wall-clock or ambient randomness inside the deterministic
// packages, named-constant discipline for rng stream labels, sorted
// iteration before anything that feeds output, no float equality, telemetry
// metric-name hygiene, error-handling discipline, and span lifecycle
// balance (every trace/telemetry span creation reaches End or escapes).
//
// The suite is built only on the standard library (go/parser, go/ast,
// go/types, go/importer) — no golang.org/x/tools — honoring the repo's
// stdlib-only rule. The cmd/repllint driver loads every package in the
// module, type-checks it, runs every analyzer, and exits nonzero on any
// finding.
//
// # Suppression
//
// A finding can be suppressed with a directive comment:
//
//	//repllint:allow <rule> — <one-line justification>
//
// placed either on the same line as (or the line immediately above) the
// offending expression, or in the file header before the package clause to
// exempt the whole file. The justification text is free-form but required by
// convention; reviews treat a bare allow as a smell.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
)

// Finding is one analyzer hit, formatted as "file:line: rule: message".
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

// String renders the canonical file:line: rule: message form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Rule, f.Msg)
}

// Analyzer is one named rule. Run inspects a single type-checked package and
// reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	findings []Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.findings = append(p.findings, Finding{
		Pos:  p.Pkg.Fset.Position(pos),
		Rule: p.Analyzer.Name,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// DeterministicPackages names the packages whose outputs must be a pure
// function of (inputs, seed). The determinism and sorted-iteration rules key
// on the package name: every one of these lives at repro/internal/<name>.
var DeterministicPackages = map[string]bool{
	"core":        true,
	"repair":      true,
	"faults":      true,
	"httpsim":     true,
	"netsim":      true,
	"workload":    true,
	"policies":    true,
	"experiments": true,
	"estimate":    true,
}

// Analyzers is the full suite in reporting order.
var Analyzers = []*Analyzer{
	DeterminismAnalyzer,
	RNGStreamAnalyzer,
	SortedIterAnalyzer,
	FloatCompareAnalyzer,
	TelemetryNameAnalyzer,
	ErrorDisciplineAnalyzer,
	SpanBalanceAnalyzer,
	CtxSleepAnalyzer,
}

// ByName returns the analyzers with the given names, or all of them when
// names is empty. Unknown names are an error.
func ByName(names []string) ([]*Analyzer, error) {
	if len(names) == 0 {
		return Analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(Analyzers))
	for _, a := range Analyzers {
		byName[a.Name] = a
	}
	out := make([]*Analyzer, 0, len(names))
	for _, n := range names {
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// RunPackages runs the analyzers over already-loaded packages and returns
// the surviving (non-suppressed) findings sorted by position.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			pass := &Pass{Analyzer: az, Pkg: pkg}
			az.Run(pass)
			for _, f := range pass.findings {
				if !pkg.Directives.Allows(f.Rule, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Rule < b.Rule
	})
	return out
}

// RunModule loads every package under the module rooted at dir, type-checks
// it, and runs the analyzers.
func RunModule(dir string, analyzers []*Analyzer) ([]Finding, error) {
	pkgs, err := LoadModule(dir)
	if err != nil {
		return nil, err
	}
	return RunPackages(pkgs, analyzers), nil
}

// eachFile applies fn to every file of the pass's package.
func (p *Pass) eachFile(fn func(*ast.File)) {
	for _, f := range p.Pkg.Files {
		fn(f)
	}
}
