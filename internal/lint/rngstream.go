package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
)

// RNGStreamAnalyzer enforces the stream-label discipline around
// rng.Stream.Split. Split derives child seeds purely from (seed, labels...),
// so labels ARE the namespace: a magic literal is impossible to audit for
// collisions, and two distinct named constants with the same value silently
// alias two streams that were meant to be independent — correlated draws
// that no property test will catch. Every label must therefore be a named
// constant (or a runtime value such as a loop index), and the named label
// constants used within one package must be pairwise distinct.
var RNGStreamAnalyzer = &Analyzer{
	Name: "rng-stream",
	Doc: "rng.Stream.Split labels must be named constants (never numeric literals), " +
		"and label constants within a package must not collide",
	Run: runRNGStream,
}

func runRNGStream(p *Pass) {
	// Named constants used as Split arguments anywhere in this package,
	// with one representative use site each, for the collision check.
	labels := make(map[*types.Const]ast.Node)

	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isStreamSplit(p, sel) {
				return true
			}
			for _, arg := range call.Args {
				expr := unwrapConversions(p, arg)
				switch e := expr.(type) {
				case *ast.BasicLit:
					p.Reportf(arg.Pos(), "rng.Stream.Split label %s is a numeric literal; declare a named stream constant (e.g. `fooStream uint64 = iota + N`)", e.Value)
				case *ast.Ident:
					if c, ok := p.Pkg.Info.Uses[e].(*types.Const); ok {
						labels[c] = arg
					}
				case *ast.SelectorExpr:
					if c, ok := p.Pkg.Info.Uses[e.Sel].(*types.Const); ok {
						labels[c] = arg
					}
				}
			}
			return true
		})
	})

	// Collision check: two distinct named constants with equal values, both
	// used as Split labels in this package.
	byValue := make(map[string][]*types.Const)
	for c := range labels {
		if c.Val().Kind() != constant.Int {
			continue
		}
		key := c.Val().ExactString()
		byValue[key] = append(byValue[key], c)
	}
	keys := make([]string, 0, len(byValue))
	for k := range byValue {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		consts := byValue[k]
		if len(consts) < 2 {
			continue
		}
		sort.Slice(consts, func(i, j int) bool { return consts[i].Name() < consts[j].Name() })
		names := ""
		for i, c := range consts {
			if i > 0 {
				names += ", "
			}
			names += c.Name()
		}
		p.Reportf(labels[consts[0]].Pos(), "stream label constants %s all equal %s: aliased labels derive identical child streams", names, k)
	}
}

// isStreamSplit reports whether sel resolves to the Split method of
// rng.Stream (keyed on package name + receiver type name so the testdata
// fixture rng package matches too).
func isStreamSplit(p *Pass, sel *ast.SelectorExpr) bool {
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Split" || fn.Pkg() == nil || fn.Pkg().Name() != "rng" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Stream"
}

// unwrapConversions strips parens and type conversions (uint64(x) etc.) so
// the underlying label expression is judged, not its packaging.
func unwrapConversions(p *Pass, e ast.Expr) ast.Expr {
	for {
		switch v := e.(type) {
		case *ast.ParenExpr:
			e = v.X
		case *ast.CallExpr:
			if len(v.Args) != 1 {
				return e
			}
			if tv, ok := p.Pkg.Info.Types[v.Fun]; ok && tv.IsType() {
				e = v.Args[0]
				continue
			}
			return e
		default:
			return e
		}
	}
}
