package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseDirectiveFixture parses one synthetic source file and returns its
// directives plus the fileset (positions are 1-based lines of src).
func parseDirectiveFixture(t *testing.T, src string) (*Directives, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return ParseDirectives(fset, []*ast.File{f}), fset
}

func at(line int) token.Position {
	return token.Position{Filename: "fix.go", Line: line}
}

// TestDirectivesMultiRule covers comma-separated rule lists: one directive
// suppresses every named rule on its line, and nothing else.
func TestDirectivesMultiRule(t *testing.T) {
	d, _ := parseDirectiveFixture(t, `package fix

func f() {
	_ = 1 //repllint:allow determinism,float-compare — fixture: both rules, one comment
}
`)
	if !d.Allows("determinism", at(4)) {
		t.Error("first rule of the list should be allowed")
	}
	if !d.Allows("float-compare", at(4)) {
		t.Error("second rule of the list should be allowed")
	}
	if d.Allows("sorted-iteration", at(4)) {
		t.Error("unlisted rule must not be allowed")
	}
	if d.Allows("determinism", at(6)) {
		t.Error("line-scope allow must not leak to other lines")
	}
}

// TestDirectivesFileScope covers the header placement: a directive before
// the package clause exempts the whole file, at every line.
func TestDirectivesFileScope(t *testing.T) {
	d, _ := parseDirectiveFixture(t, `//repllint:allow determinism — fixture: whole-file exemption
package fix

func f() {}
`)
	for _, line := range []int{1, 4, 100} {
		if !d.Allows("determinism", at(line)) {
			t.Errorf("file-scope allow should cover line %d", line)
		}
	}
	if d.Allows("float-compare", at(4)) {
		t.Error("file scope covers only the named rule")
	}
	if d.Allows("determinism", token.Position{Filename: "other.go", Line: 4}) {
		t.Error("file scope must not leak to other files")
	}
}

// TestDirectivesPlacement covers line-above vs trailing placement: both
// match the finding line; two lines above does not.
func TestDirectivesPlacement(t *testing.T) {
	d, _ := parseDirectiveFixture(t, `package fix

func f() {
	//repllint:allow determinism — fixture: line above
	_ = 1
	_ = 2 //repllint:allow float-compare — fixture: trailing
	//repllint:allow sorted-iteration — fixture: two lines above the target

	_ = 3
}
`)
	if !d.Allows("determinism", at(5)) {
		t.Error("line-above placement should match the next line")
	}
	if !d.Allows("determinism", at(4)) {
		t.Error("a directive also matches its own line")
	}
	if !d.Allows("float-compare", at(6)) {
		t.Error("trailing placement should match its line")
	}
	if d.Allows("sorted-iteration", at(9)) {
		t.Error("a directive two lines above must not match")
	}
}

// TestDirectivesMalformed covers the rejected shapes: a space after //, a
// bare prefix without rules, and plain comments. None may suppress, and
// none may register a declared site for the stale audit.
func TestDirectivesMalformed(t *testing.T) {
	d, _ := parseDirectiveFixture(t, `package fix

func f() {
	_ = 1 // repllint:allow determinism — space breaks the directive
	_ = 2 //repllint:allow
	_ = 3 // a plain comment mentioning determinism
}
`)
	for line := 1; line <= 7; line++ {
		if d.Allows("determinism", at(line)) {
			t.Errorf("malformed directive must not suppress (line %d)", line)
		}
	}
	if got := len(d.declared); got != 0 {
		t.Errorf("malformed directives registered %d declared sites, want 0", got)
	}
}

// TestDirectivesStale covers the audit bookkeeping: declared sites appear
// in source order, Allows marks exactly the matching entry used, and
// Stale returns the rest — with DeclLine pointing at the comment even for
// file-scope and line-above placement.
func TestDirectivesStale(t *testing.T) {
	d, _ := parseDirectiveFixture(t, `//repllint:allow rng-stream — fixture: file scope, never used
package fix

func f() {
	_ = 1 //repllint:allow determinism — fixture: used below
	//repllint:allow float-compare — fixture: line above, used
	_ = 2
	_ = 3 //repllint:allow sorted-iteration — fixture: stays stale
}
`)
	if got := len(d.declared); got != 4 {
		t.Fatalf("declared %d sites, want 4", got)
	}
	if d.declared[0] != (AllowSite{File: "fix.go", Line: 0, Rule: "rng-stream", DeclLine: 1}) {
		t.Errorf("file-scope site = %+v, want Line 0 / DeclLine 1", d.declared[0])
	}

	if !d.Allows("determinism", at(5)) || !d.Allows("float-compare", at(7)) {
		t.Fatal("expected suppressions did not match")
	}
	stale := d.Stale()
	if len(stale) != 2 {
		t.Fatalf("Stale() = %+v, want the rng-stream and sorted-iteration sites", stale)
	}
	if stale[0].Rule != "rng-stream" || stale[1].Rule != "sorted-iteration" {
		t.Errorf("stale order = %s, %s; want rng-stream then sorted-iteration", stale[0].Rule, stale[1].Rule)
	}
	if stale[1].DeclLine != 8 {
		t.Errorf("trailing stale DeclLine = %d, want 8", stale[1].DeclLine)
	}

	// Using the remaining entries drains the audit.
	if !d.Allows("rng-stream", at(3)) || !d.Allows("sorted-iteration", at(8)) {
		t.Fatal("expected suppressions did not match")
	}
	if left := d.Stale(); len(left) != 0 {
		t.Errorf("all entries used, Stale() = %+v, want none", left)
	}

	// nil receiver: total no-ops.
	var nilD *Directives
	if nilD.Allows("determinism", at(1)) || nilD.Stale() != nil {
		t.Error("nil Directives must not allow or report stale")
	}
}
