package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives holds the parsed //repllint:allow suppressions for one
// package. Two scopes exist:
//
//   - file scope: the directive appears in the file header (before the
//     package clause) and exempts the whole file from the named rules;
//   - line scope: the directive sits on the same line as the finding, or on
//     the line immediately above it.
//
// The directive text is "//repllint:allow rule[,rule] [justification]".
//
// Every parsed (file, line, rule) entry is also recorded so the driver can
// audit suppressions after a full run: an allow that matched no finding is
// stale — either the offending code is gone, the rule changed, or the rule
// name is misspelled — and -strict-allow turns those into errors.
type Directives struct {
	// fileAllow maps filename -> rules exempted for the whole file.
	fileAllow map[string]map[string]bool
	// lineAllow maps filename -> line -> rules exempted on that line.
	lineAllow map[string]map[int]map[string]bool

	// declared lists every allow entry in source order; used marks the
	// entries that suppressed at least one finding.
	declared []AllowSite
	used     map[AllowSite]bool
}

// AllowSite is one declared (file, line, rule) allow entry. Line is 0 for
// file-scope directives (the position is still recorded in DeclLine).
type AllowSite struct {
	File string
	Line int // matching line; 0 = whole file
	Rule string
	// DeclLine is the line the directive comment itself sits on (differs
	// from Line for file-scope entries and line-above placement).
	DeclLine int
}

const allowPrefix = "//repllint:allow"

// ParseDirectives scans every comment of the files for allow directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fileAllow: make(map[string]map[string]bool),
		lineAllow: make(map[string]map[int]map[string]bool),
		used:      make(map[AllowSite]bool),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line < pkgLine {
					set := d.fileAllow[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						d.fileAllow[pos.Filename] = set
					}
					for _, r := range rules {
						set[r] = true
						d.declared = append(d.declared, AllowSite{File: pos.Filename, Line: 0, Rule: r, DeclLine: pos.Line})
					}
					continue
				}
				lines := d.lineAllow[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.lineAllow[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, r := range rules {
					set[r] = true
					d.declared = append(d.declared, AllowSite{File: pos.Filename, Line: pos.Line, Rule: r, DeclLine: pos.Line})
				}
			}
		}
	}
	return d
}

// parseAllow extracts the rule names from one comment, or ok=false when the
// comment is not an allow directive. Rules are the first whitespace-free
// token after the prefix, comma-separated; everything after is the
// free-form justification.
func parseAllow(text string) (rules []string, ok bool) {
	rest, found := strings.CutPrefix(text, allowPrefix)
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

// Allows reports whether a finding of the given rule at pos is suppressed,
// and marks the matching directive as used for the stale audit.
func (d *Directives) Allows(rule string, pos token.Position) bool {
	if d == nil {
		return false
	}
	if d.fileAllow[pos.Filename][rule] {
		d.markUsed(pos.Filename, 0, rule)
		return true
	}
	lines := d.lineAllow[pos.Filename]
	if lines[pos.Line][rule] {
		d.markUsed(pos.Filename, pos.Line, rule)
		return true
	}
	if lines[pos.Line-1][rule] {
		d.markUsed(pos.Filename, pos.Line-1, rule)
		return true
	}
	return false
}

// markUsed flags the declared entry matching (file, line, rule).
func (d *Directives) markUsed(file string, line int, rule string) {
	for _, site := range d.declared {
		if site.File == file && site.Line == line && site.Rule == rule {
			d.used[site] = true
			return
		}
	}
}

// Stale returns the declared allow entries that never suppressed a finding,
// in source order. Call only after every relevant analyzer ran; an allow
// for a rule that was not part of the run would report as a false stale.
func (d *Directives) Stale() []AllowSite {
	if d == nil {
		return nil
	}
	var out []AllowSite
	for _, site := range d.declared {
		if !d.used[site] {
			out = append(out, site)
		}
	}
	return out
}
