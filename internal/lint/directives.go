package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directives holds the parsed //repllint:allow suppressions for one
// package. Two scopes exist:
//
//   - file scope: the directive appears in the file header (before the
//     package clause) and exempts the whole file from the named rules;
//   - line scope: the directive sits on the same line as the finding, or on
//     the line immediately above it.
//
// The directive text is "//repllint:allow rule[,rule] [justification]".
type Directives struct {
	// fileAllow maps filename -> rules exempted for the whole file.
	fileAllow map[string]map[string]bool
	// lineAllow maps filename -> line -> rules exempted on that line.
	lineAllow map[string]map[int]map[string]bool
}

const allowPrefix = "//repllint:allow"

// ParseDirectives scans every comment of the files for allow directives.
func ParseDirectives(fset *token.FileSet, files []*ast.File) *Directives {
	d := &Directives{
		fileAllow: make(map[string]map[string]bool),
		lineAllow: make(map[string]map[int]map[string]bool),
	}
	for _, f := range files {
		pkgLine := fset.Position(f.Package).Line
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rules, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if pos.Line < pkgLine {
					set := d.fileAllow[pos.Filename]
					if set == nil {
						set = make(map[string]bool)
						d.fileAllow[pos.Filename] = set
					}
					for _, r := range rules {
						set[r] = true
					}
					continue
				}
				lines := d.lineAllow[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					d.lineAllow[pos.Filename] = lines
				}
				set := lines[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					lines[pos.Line] = set
				}
				for _, r := range rules {
					set[r] = true
				}
			}
		}
	}
	return d
}

// parseAllow extracts the rule names from one comment, or ok=false when the
// comment is not an allow directive. Rules are the first whitespace-free
// token after the prefix, comma-separated; everything after is the
// free-form justification.
func parseAllow(text string) (rules []string, ok bool) {
	rest, found := strings.CutPrefix(text, allowPrefix)
	if !found {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	for _, r := range strings.Split(fields[0], ",") {
		if r = strings.TrimSpace(r); r != "" {
			rules = append(rules, r)
		}
	}
	return rules, len(rules) > 0
}

// Allows reports whether a finding of the given rule at pos is suppressed.
func (d *Directives) Allows(rule string, pos token.Position) bool {
	if d == nil {
		return false
	}
	if d.fileAllow[pos.Filename][rule] {
		return true
	}
	lines := d.lineAllow[pos.Filename]
	return lines[pos.Line][rule] || lines[pos.Line-1][rule]
}
