package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	Path       string // import path ("repro/internal/core")
	Name       string // package name ("core")
	Dir        string // absolute directory
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	Directives *Directives
}

// Loader resolves and type-checks packages. Module-internal import paths
// are mapped onto directories under the module root and checked from
// source; everything else (the standard library) is delegated to the
// stdlib source importer. No external tooling is involved, so the loader
// works identically for the real module and for the testdata fixture trees.
type Loader struct {
	Fset    *token.FileSet
	Root    string // absolute module root directory
	ModPath string // module path from go.mod; "" for fixture trees

	std   types.Importer
	cache map[string]*Package
	stack map[string]bool // import-cycle detection
}

// NewLoader returns a loader for the tree rooted at root. modPath is the
// module path that prefixes internal import paths; pass "" for fixture
// trees whose packages import each other by bare directory name.
func NewLoader(root, modPath string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		Root:    abs,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		stack:   make(map[string]bool),
	}, nil
}

// dirFor maps an import path onto a directory inside the tree, or "" when
// the path is not ours (stdlib).
func (l *Loader) dirFor(path string) string {
	switch {
	case l.ModPath != "" && path == l.ModPath:
		return l.Root
	case l.ModPath != "" && strings.HasPrefix(path, l.ModPath+"/"):
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
	case l.ModPath == "":
		d := filepath.Join(l.Root, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d
		}
	}
	return ""
}

// Import implements types.Importer so a types.Config can resolve both
// module-internal and stdlib dependencies through this loader.
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir := l.dirFor(path); dir != "" {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given import path
// (memoized). Test files are skipped: the rules scope themselves to
// non-test code, and test-only imports would drag in packages the checker
// does not need.
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.stack[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	l.stack[path] = true
	defer delete(l.stack, path)

	dir := l.dirFor(path)
	if dir == "" {
		return nil, fmt.Errorf("lint: %q is not inside %s", path, l.Root)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	for _, fn := range names {
		f, err := parser.ParseFile(l.Fset, fn, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, typeErrs[0])
	}

	pkg := &Package{
		Path:       path,
		Name:       files[0].Name.Name,
		Dir:        dir,
		Fset:       l.Fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: ParseDirectives(l.Fset, files),
	}
	l.cache[path] = pkg
	return pkg, nil
}

// LoadModule discovers every package in the module rooted at dir (walking
// the tree, skipping testdata and hidden directories), loads each, and
// returns them sorted by import path.
func LoadModule(dir string) ([]*Package, error) {
	root, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	l, err := NewLoader(root, modPath)
	if err != nil {
		return nil, err
	}

	var paths []string
	err = filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, filepath.Dir(p))
		if err != nil {
			return err
		}
		ip := modPath
		if rel != "." {
			ip = modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	paths = dedupe(paths)

	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// modulePath reads the module path from go.mod at root.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// FindModuleRoot walks up from dir until it finds a go.mod.
func FindModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

func dedupe(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || s[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}
