package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ErrorDisciplineAnalyzer enforces two error-handling rules outside tests:
//
//  1. an expression statement that discards an error result is flagged
//     (write `_ = f()` to drop one deliberately — that survives review;
//     a bare call does not);
//  2. fmt.Errorf with an error-typed argument must wrap it with %w, so
//     errors.Is/As keep working across package boundaries.
//
// Print-family functions whose error nobody checks in practice (fmt.Print*
// and friends, strings.Builder / bytes.Buffer writes, which are documented
// to never fail) are excluded from rule 1.
var ErrorDisciplineAnalyzer = &Analyzer{
	Name: "error-discipline",
	Doc:  "flag dropped error returns and fmt.Errorf that formats an error without %w",
	Run:  runErrorDiscipline,
}

// droppedErrorExempt lists callees whose returned error is conventionally
// ignored. Keys are "pkgpath.Func" for functions and "Type.Method" for
// methods on the named receiver type.
var droppedErrorExempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,

	// Documented to never return a non-nil error.
	"Builder.Write":       true,
	"Builder.WriteString": true,
	"Builder.WriteByte":   true,
	"Builder.WriteRune":   true,
	"Buffer.Write":        true,
	"Buffer.WriteString":  true,
	"Buffer.WriteByte":    true,
	"Buffer.WriteRune":    true,
}

func runErrorDiscipline(p *Pass) {
	p.eachFile(func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := st.X.(*ast.CallExpr); ok {
					checkDroppedError(p, call)
				}
			case *ast.CallExpr:
				checkErrorfWrap(p, st)
			}
			return true
		})
	})
}

// checkDroppedError flags a statement-position call whose results include
// an error.
func checkDroppedError(p *Pass, call *ast.CallExpr) {
	tv, ok := p.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return
	}
	if !resultsIncludeError(tv.Type) {
		return
	}
	if name := calleeKey(p, call); name != "" && droppedErrorExempt[name] {
		return
	}
	p.Reportf(call.Pos(), "error result dropped; handle it or assign to _ explicitly")
}

func resultsIncludeError(t types.Type) bool {
	switch rt := t.(type) {
	case *types.Tuple:
		for i := 0; i < rt.Len(); i++ {
			if isErrorType(rt.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(rt)
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// calleeKey renders the called function as "pkgpath.Func" or
// "RecvType.Method" for the exemption table, or "" when unresolvable.
func calleeKey(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() == nil {
		if fn.Pkg() == nil {
			return fn.Name()
		}
		return fn.Pkg().Path() + "." + fn.Name()
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name() + "." + fn.Name()
}

// checkErrorfWrap flags fmt.Errorf calls that pass an error argument but
// whose format literal never uses %w.
func checkErrorfWrap(p *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return
	}
	fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := call.Args[0].(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := p.Pkg.Info.Types[arg]
		if ok && tv.Type != nil && isErrorType(tv.Type) {
			p.Reportf(call.Pos(), "fmt.Errorf formats an error without %%w; wrap it so errors.Is/As see the cause")
			return
		}
	}
}
