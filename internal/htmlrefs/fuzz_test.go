package htmlrefs

import (
	"testing"
)

// FuzzParseRefs hardens the hand-rolled HTML scanner: for arbitrary input
// it must not panic, and every reference it reports must carry a valid
// in-bounds byte range whose content round-trips to the same object ID.
// (`go test -fuzz=FuzzParseRefs ./internal/htmlrefs` explores further; the
// seed corpus runs on every `go test`.)
func FuzzParseRefs(f *testing.F) {
	f.Add([]byte(`<img src="http://repo/mo/12">`))
	f.Add([]byte(`<a href="/mo/99">x</a>`))
	f.Add([]byte(`<img\nsrc="/mo/3"\n>`))
	f.Add([]byte(`<IMG SRC="/MO/3">`))
	f.Add([]byte(`<img data-src="/mo/7">`))
	f.Add([]byte(`<`))
	f.Add([]byte(``))
	f.Add([]byte(`<img src="/mo/`))
	f.Add([]byte(`<a href="/mo/18446744073709551616">`)) // overflows int
	f.Add([]byte(`plain text /mo/5`))
	f.Add([]byte(`<embed src="/mo/1"><source src="/mo/2">`))

	f.Fuzz(func(t *testing.T, doc []byte) {
		refs := ParseRefs(doc)
		for _, r := range refs {
			if r.Start < 0 || r.End > len(doc) || r.Start >= r.End {
				t.Fatalf("ref range [%d,%d) out of bounds for %d-byte doc", r.Start, r.End, len(doc))
			}
			url := string(doc[r.Start:r.End])
			k, ok := parseMOURL(url)
			if !ok {
				t.Fatalf("reported ref %q does not parse back", url)
			}
			if k != r.Object {
				t.Fatalf("ref object %d but range holds %d", r.Object, k)
			}
		}
	})
}

// FuzzParseMOPath hardens the URL path parser.
func FuzzParseMOPath(f *testing.F) {
	f.Add("/mo/1")
	f.Add("/mo/")
	f.Add("/mo/-3")
	f.Add("/page/5")
	f.Add("/mo/99999999999999999999")
	f.Fuzz(func(t *testing.T, path string) {
		if k, ok := ParseMOPath(path); ok && k < 0 {
			t.Fatalf("accepted negative object ID %d from %q", k, path)
		}
		if j, ok := ParsePagePath(path); ok && j < 0 {
			t.Fatalf("accepted negative page ID %d from %q", j, path)
		}
	})
}
