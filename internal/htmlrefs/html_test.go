package htmlrefs

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/units"
	"repro/internal/workload"
)

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	return workload.MustGenerate(workload.SmallConfig(), 55)
}

func TestPaths(t *testing.T) {
	if MOPath(42) != "/mo/42" || PagePath(7) != "/page/7" {
		t.Error("path rendering wrong")
	}
	if k, ok := ParseMOPath("/mo/42"); !ok || k != 42 {
		t.Error("ParseMOPath failed")
	}
	for _, bad := range []string{"/mo/", "/mo/x", "/mo/-1", "/page/3", "/other"} {
		if _, ok := ParseMOPath(bad); ok {
			t.Errorf("ParseMOPath accepted %q", bad)
		}
	}
	if j, ok := ParsePagePath("/page/9"); !ok || j != 9 {
		t.Error("ParsePagePath failed")
	}
	if _, ok := ParsePagePath("/mo/9"); ok {
		t.Error("ParsePagePath accepted an MO path")
	}
}

func TestRenderPageSize(t *testing.T) {
	w := testWorkload(t)
	doc := RenderPage(w, 0, "http://repo")
	// Padded to approximately HTMLSize (within one filler paragraph).
	want := int(w.Pages[0].HTMLSize)
	if len(doc) < want-200 {
		t.Errorf("document %d bytes, want ≈%d", len(doc), want)
	}
	if !bytes.HasPrefix(doc, []byte("<!DOCTYPE html>")) {
		t.Error("not an HTML document")
	}
}

func TestParseRefsRecoversAll(t *testing.T) {
	w := testWorkload(t)
	for j := range w.Pages {
		pid := workload.PageID(j)
		doc := RenderPage(w, pid, "http://repo.example:8080")
		refs := ParseRefs(doc)
		var comp, opt int
		for _, r := range refs {
			if r.Optional {
				opt++
			} else {
				comp++
			}
			// The byte range must hold the URL it claims.
			url := string(doc[r.Start:r.End])
			if k, ok := parseMOURL(url); !ok || k != r.Object {
				t.Fatalf("page %d: range [%d,%d) holds %q, not object %d", j, r.Start, r.End, url, r.Object)
			}
		}
		if comp != len(w.Pages[j].Compulsory) {
			t.Fatalf("page %d: parsed %d compulsory refs, want %d", j, comp, len(w.Pages[j].Compulsory))
		}
		if opt != len(w.Pages[j].Optional) {
			t.Fatalf("page %d: parsed %d optional refs, want %d", j, opt, len(w.Pages[j].Optional))
		}
	}
}

func TestParseRefsIgnoresNoise(t *testing.T) {
	doc := []byte(`<html><body>
<img src="http://cdn/logo.png">
<a href="http://elsewhere/page/3">not an MO</a>
<img data-src="/mo/7" alt="lazy — no real src">
<IMG SRC="http://repo/mo/12">
<a href="/mo/99">relative optional</a>
<p>plain /mo/5 text is not a tag</p>
</body></html>`)
	refs := ParseRefs(doc)
	if len(refs) != 2 {
		t.Fatalf("parsed %d refs, want 2: %+v", len(refs), refs)
	}
	if refs[0].Object != 12 || refs[0].Optional {
		t.Errorf("first ref = %+v, want compulsory M12", refs[0])
	}
	if refs[1].Object != 99 || !refs[1].Optional {
		t.Errorf("second ref = %+v, want optional M99", refs[1])
	}
}

func TestParseRefsMalformed(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte(""),
		[]byte("<"),
		[]byte("<img src=\"/mo/3"),       // unterminated attribute
		[]byte("<img src=/mo/3>"),        // unquoted (unsupported, skipped)
		[]byte("no tags at all /mo/3"),   // no tags
		[]byte("<img\nsrc=\"/mo/3\"\n>"), // newlines inside tag
	}
	for i, doc := range cases {
		refs := ParseRefs(doc) // must not panic
		if i == len(cases)-1 && len(refs) != 1 {
			t.Errorf("newline tag: parsed %d refs, want 1", len(refs))
		}
	}
}

func TestBuildRefDBAndServe(t *testing.T) {
	w := testWorkload(t)
	p := model.AllLocal(w)
	const repoBase = "http://repo.example"
	const localBase = "http://s0.example"
	db, err := BuildRefDB(w, 0, p, repoBase)
	if err != nil {
		t.Fatal(err)
	}
	if db.Pages() != len(w.Sites[0].Pages) {
		t.Errorf("db has %d pages", db.Pages())
	}

	pid := w.Sites[0].Pages[0]
	doc, ok := db.Serve(pid, localBase)
	if !ok {
		t.Fatal("hosted page not served")
	}
	// All-local: every MO URL must now point at the local server.
	if bytes.Contains(doc, []byte(repoBase+MOPathPrefix)) {
		t.Error("all-local page still references the repository")
	}
	refs := ParseRefs(doc)
	if len(refs) != len(w.Pages[pid].Compulsory)+len(w.Pages[pid].Optional) {
		t.Errorf("served doc has %d refs", len(refs))
	}
	for _, r := range refs {
		url := string(doc[r.Start:r.End])
		if !strings.HasPrefix(url, localBase) {
			t.Fatalf("ref %d not rewritten: %q", r.Object, url)
		}
	}

	if _, ok := db.Serve(workload.PageID(w.NumPages()+5), localBase); ok {
		t.Error("served a page out of range")
	}
}

func TestServeAllRemoteKeepsRepoURLs(t *testing.T) {
	w := testWorkload(t)
	p := model.AllRemote(w)
	const repoBase = "http://repo.example"
	db, err := BuildRefDB(w, 0, p, repoBase)
	if err != nil {
		t.Fatal(err)
	}
	pid := w.Sites[0].Pages[0]
	doc, _ := db.Serve(pid, "http://s0.example")
	stored := RenderPage(w, pid, repoBase)
	if !bytes.Equal(doc, stored) {
		t.Error("all-remote serving should be the identity rewrite")
	}
}

func TestServeMixedSplit(t *testing.T) {
	w := testWorkload(t)
	// Build a mixed placement: alternate compulsory objects local.
	p := model.NewPlacement(w)
	for j := range w.Pages {
		pg := &w.Pages[j]
		for idx, k := range pg.Compulsory {
			if idx%2 == 0 {
				p.Store(pg.Site, k)
				p.SetCompLocal(workload.PageID(j), idx, true)
			}
		}
	}
	const repoBase = "http://repo.example"
	const localBase = "http://s1.example"
	db, err := BuildRefDB(w, 1, p, repoBase)
	if err != nil {
		t.Fatal(err)
	}
	pid := w.Sites[1].Pages[0]
	doc, _ := db.Serve(pid, localBase)
	refs := ParseRefs(doc)
	pg := &w.Pages[pid]
	compIdx := map[workload.ObjectID]int{}
	for idx, k := range pg.Compulsory {
		compIdx[k] = idx
	}
	for _, r := range refs {
		url := string(doc[r.Start:r.End])
		if r.Optional {
			if !strings.HasPrefix(url, repoBase) {
				t.Fatalf("optional M%d should stay remote: %q", r.Object, url)
			}
			continue
		}
		wantLocal := compIdx[r.Object]%2 == 0
		isLocal := strings.HasPrefix(url, localBase)
		if isLocal != wantLocal {
			t.Fatalf("M%d (idx %d): local=%v want %v (%q)", r.Object, compIdx[r.Object], isLocal, wantLocal, url)
		}
	}
}

func TestApplyPlacementUpdatesServing(t *testing.T) {
	w := testWorkload(t)
	const repoBase = "http://repo.example"
	const localBase = "http://s0.example"
	db, err := BuildRefDB(w, 0, model.AllRemote(w), repoBase)
	if err != nil {
		t.Fatal(err)
	}
	pid := w.Sites[0].Pages[0]
	before, _ := db.Serve(pid, localBase)
	if bytes.Contains(before, []byte(localBase)) {
		t.Fatal("all-remote serving contains local URLs")
	}
	if err := db.ApplyPlacement(w, model.AllLocal(w)); err != nil {
		t.Fatal(err)
	}
	after, _ := db.Serve(pid, localBase)
	if bytes.Contains(after, []byte(repoBase+MOPathPrefix)) {
		t.Fatal("placement update did not take effect")
	}
}

func TestRefDBDecisions(t *testing.T) {
	w := testWorkload(t)
	db, err := BuildRefDB(w, 0, model.AllLocal(w), "http://repo")
	if err != nil {
		t.Fatal(err)
	}
	pid := w.Sites[0].Pages[0]
	refs, local, ok := db.Decisions(pid)
	if !ok || len(refs) != len(local) {
		t.Fatal("decisions unavailable")
	}
	for _, v := range local {
		if !v {
			t.Fatal("all-local decisions should be true")
		}
	}
	if _, _, ok := db.Decisions(workload.PageID(w.NumPages() + 1)); ok {
		t.Error("decisions for unknown page")
	}
}

func TestRenderDeterministic(t *testing.T) {
	w := testWorkload(t)
	a := RenderPage(w, 3, "http://repo")
	b := RenderPage(w, 3, "http://repo")
	if !bytes.Equal(a, b) {
		t.Error("rendering not deterministic")
	}
}

func TestPadRespectsTarget(t *testing.T) {
	var b strings.Builder
	pad(&b, 5*units.KB)
	if b.Len() < 4*1024 || b.Len() > 6*1024 {
		t.Errorf("pad produced %d bytes for 5KB target", b.Len())
	}
}

// TestParseRefsSingleQuotesUnsupported documents a deliberate limitation:
// the scanner only recognizes double-quoted attribute values, which is what
// RenderPage emits. Hand-authored single-quoted documents are not split
// candidates (the reference DB validates coverage at build time, so such a
// page would fail loudly in BuildRefDB rather than silently misroute).
func TestParseRefsSingleQuotesUnsupported(t *testing.T) {
	doc := []byte(`<img src='/mo/3'>`)
	if refs := ParseRefs(doc); len(refs) != 0 {
		t.Errorf("single-quoted attribute unexpectedly parsed: %+v", refs)
	}
}
