package htmlrefs

import (
	"testing"

	"repro/internal/model"
	"repro/internal/workload"
)

func benchWorkload(b *testing.B) *workload.Workload {
	b.Helper()
	return workload.MustGenerate(workload.SmallConfig(), 55)
}

// BenchmarkParseRefs measures the HTML reference scanner on a realistic
// page (the parse happens once per page creation/update in the paper's
// system).
func BenchmarkParseRefs(b *testing.B) {
	w := benchWorkload(b)
	doc := RenderPage(w, 0, "http://repo.example")
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if refs := ParseRefs(doc); len(refs) == 0 {
			b.Fatal("no refs")
		}
	}
}

// BenchmarkServeRewrite measures the on-the-fly URL rewrite — the per-page
// serving cost the paper argues is "minimal compared to the network
// latency".
func BenchmarkServeRewrite(b *testing.B) {
	w := benchWorkload(b)
	db, err := BuildRefDB(w, 0, model.AllLocal(w), "http://repo.example")
	if err != nil {
		b.Fatal(err)
	}
	pid := w.Sites[0].Pages[0]
	doc, _ := db.Serve(pid, "http://s0.example")
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := db.Serve(pid, "http://s0.example"); !ok {
			b.Fatal("page lost")
		}
	}
}

// BenchmarkBuildRefDB measures one site's database construction (page
// creation time, not serving time).
func BenchmarkBuildRefDB(b *testing.B) {
	w := benchWorkload(b)
	p := model.AllLocal(w)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildRefDB(w, 0, p, "http://repo.example"); err != nil {
			b.Fatal(err)
		}
	}
}
