package htmlrefs

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/model"
	"repro/internal/workload"
)

// PageEntry is the reference database's record for one page: the stored
// document, its parsed references (sorted by position), and the per-
// reference local/remote decision. The paper's Section 2 prescribes exactly
// this: "the above information is included in a reference database together
// with the position of the URLs in the HTML document".
type PageEntry struct {
	Doc   []byte
	Refs  []Ref
	Local []bool // parallel to Refs: serve from the local server?
	// Weight is each reference's access weight (parallel to Refs):
	// compulsory objects are always needed (weight 1), optional ones carry
	// the workload's per-link access probability — the paper's per-object
	// access weights, which brownout uses to drop the least-valuable
	// content first.
	Weight []float64
	// optMedian is the median optional-reference weight, the tier-1
	// brownout threshold (0 when the page has no optional references).
	optMedian float64
}

// RefDB is one local server's reference database. It is built by parsing
// each hosted page once (at "page creation/update" time) and updated when
// the replication plan changes; lookups at serving time are read-only and
// safe for concurrent use with updates guarded by an RWMutex (plans change
// rarely, pages are served constantly).
type RefDB struct {
	mu      sync.RWMutex
	site    workload.SiteID
	entries map[workload.PageID]*PageEntry
}

// BuildRefDB parses every page hosted at site i (rendered against
// repoBase) and applies the placement's decisions.
func BuildRefDB(w *workload.Workload, i workload.SiteID, p *model.Placement, repoBase string) (*RefDB, error) {
	db := &RefDB{site: i, entries: make(map[workload.PageID]*PageEntry, len(w.Sites[i].Pages))}
	for _, pid := range w.Sites[i].Pages {
		doc := RenderPage(w, pid, repoBase)
		refs := ParseRefs(doc)
		sort.Slice(refs, func(a, b int) bool { return refs[a].Start < refs[b].Start })
		entry := &PageEntry{Doc: doc, Refs: refs, Local: make([]bool, len(refs))}
		if err := validateRefs(w, pid, refs); err != nil {
			return nil, err
		}
		setWeights(w, pid, entry)
		db.entries[pid] = entry
	}
	if err := db.ApplyPlacement(w, p); err != nil {
		return nil, err
	}
	return db, nil
}

// validateRefs checks that parsing recovered exactly the page's references.
func validateRefs(w *workload.Workload, pid workload.PageID, refs []Ref) error {
	pg := &w.Pages[pid]
	comp := map[workload.ObjectID]bool{}
	opt := map[workload.ObjectID]bool{}
	for _, r := range refs {
		if r.Optional {
			opt[r.Object] = true
		} else {
			comp[r.Object] = true
		}
	}
	if len(comp) != len(pg.Compulsory) || len(opt) != len(pg.Optional) {
		return fmt.Errorf("htmlrefs: page %d parsed %d/%d refs, workload has %d/%d",
			pid, len(comp), len(opt), len(pg.Compulsory), len(pg.Optional))
	}
	for _, k := range pg.Compulsory {
		if !comp[k] {
			return fmt.Errorf("htmlrefs: page %d compulsory object %d not recovered", pid, k)
		}
	}
	for _, l := range pg.Optional {
		if !opt[l.Object] {
			return fmt.Errorf("htmlrefs: page %d optional object %d not recovered", pid, l.Object)
		}
	}
	return nil
}

// ApplyPlacement updates every page's local/remote decisions from a new
// placement — the step that follows a replication-plan refresh.
func (db *RefDB) ApplyPlacement(w *workload.Workload, p *model.Placement) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	for pid, entry := range db.entries {
		if err := applyEntry(w, pid, entry, p); err != nil {
			return err
		}
	}
	return nil
}

// applyEntry sets one entry's local/remote decisions from the placement.
func applyEntry(w *workload.Workload, pid workload.PageID, entry *PageEntry, p *model.Placement) error {
	pg := &w.Pages[pid]
	compIdx := make(map[workload.ObjectID]int, len(pg.Compulsory))
	for idx, k := range pg.Compulsory {
		compIdx[k] = idx
	}
	optIdx := make(map[workload.ObjectID]int, len(pg.Optional))
	for idx, l := range pg.Optional {
		optIdx[l.Object] = idx
	}
	for ri, r := range entry.Refs {
		if r.Optional {
			idx, ok := optIdx[r.Object]
			if !ok {
				return fmt.Errorf("htmlrefs: page %d references unknown optional object %d", pid, r.Object)
			}
			entry.Local[ri] = p.OptLocal(pid, idx)
		} else {
			idx, ok := compIdx[r.Object]
			if !ok {
				return fmt.Errorf("htmlrefs: page %d references unknown compulsory object %d", pid, r.Object)
			}
			entry.Local[ri] = p.CompLocal(pid, idx)
		}
	}
	return nil
}

// Rebuild replaces the database wholesale for a (possibly re-homed)
// workload: the site's page list under w is re-parsed, the placement's
// decisions applied, and the entry map swapped in atomically with respect
// to Serve readers. This is how a live server adopts a repair plan that
// moves pages onto or off it — no restart; a concurrent reader sees either
// the old database or the new one, never a mix. w must index objects
// identically to the construction workload (repair's re-homed clones do).
func (db *RefDB) Rebuild(w *workload.Workload, p *model.Placement, repoBase string) error {
	entries := make(map[workload.PageID]*PageEntry, len(w.Sites[db.site].Pages))
	for _, pid := range w.Sites[db.site].Pages {
		doc := RenderPage(w, pid, repoBase)
		refs := ParseRefs(doc)
		sort.Slice(refs, func(a, b int) bool { return refs[a].Start < refs[b].Start })
		if err := validateRefs(w, pid, refs); err != nil {
			return err
		}
		entry := &PageEntry{Doc: doc, Refs: refs, Local: make([]bool, len(refs))}
		if err := applyEntry(w, pid, entry, p); err != nil {
			return err
		}
		setWeights(w, pid, entry)
		entries[pid] = entry
	}
	db.mu.Lock()
	db.entries = entries
	db.mu.Unlock()
	return nil
}

// setWeights fills the entry's per-reference access weights from the
// workload: 1 for compulsory references, the link's access probability for
// optional ones, and the optional median that thresholds tier-1 brownout.
func setWeights(w *workload.Workload, pid workload.PageID, entry *PageEntry) {
	pg := &w.Pages[pid]
	prob := make(map[workload.ObjectID]float64, len(pg.Optional))
	for _, l := range pg.Optional {
		prob[l.Object] = l.Prob
	}
	entry.Weight = make([]float64, len(entry.Refs))
	var opt []float64
	for ri, r := range entry.Refs {
		if r.Optional {
			entry.Weight[ri] = prob[r.Object]
			opt = append(opt, prob[r.Object])
		} else {
			entry.Weight[ri] = 1
		}
	}
	entry.optMedian = 0
	if len(opt) > 0 {
		sort.Float64s(opt)
		entry.optMedian = opt[len(opt)/2]
	}
}

// Pages returns the number of pages in the database.
func (db *RefDB) Pages() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.entries)
}

// Serve produces the document for page pid as sent to a client: stored
// bytes with every locally-assigned reference rewritten from the repository
// base URL to localBase — the paper's on-the-fly replacement. ok is false
// for pages this server does not host.
func (db *RefDB) Serve(pid workload.PageID, localBase string) ([]byte, bool) {
	doc, _, ok := db.ServeTier(pid, localBase, 0)
	return doc, ok
}

// ServeTier is Serve under a brownout tier: tier 0 is full fidelity; at
// tier 1 the optional references whose access weight falls below the
// page's optional median are dropped (lowest-weight MOs first — the
// paper's per-object access weights ordering the sacrifice); at tier 2 and
// above every optional reference is dropped. Compulsory references always
// survive — a browned-out page still renders. A dropped reference's URL is
// rewritten to "#", so clients neither follow nor count it. dropped
// reports how many references were removed.
func (db *RefDB) ServeTier(pid workload.PageID, localBase string, tier int) (doc []byte, dropped int, ok bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.entries[pid]
	if !ok {
		return nil, 0, false
	}
	var out bytes.Buffer
	out.Grow(len(entry.Doc) + 64)
	prev := 0
	for ri, r := range entry.Refs {
		if r.Optional && tier > 0 &&
			(tier >= 2 || entry.Weight[ri] < entry.optMedian) {
			out.Write(entry.Doc[prev:r.Start])
			out.WriteString("#")
			prev = r.End
			dropped++
			continue
		}
		if !entry.Local[ri] {
			continue
		}
		out.Write(entry.Doc[prev:r.Start])
		out.WriteString(localBase)
		out.WriteString(MOPath(r.Object))
		prev = r.End
	}
	out.Write(entry.Doc[prev:])
	return out.Bytes(), dropped, true
}

// Decisions returns a copy of the page's reference decisions (diagnostics
// and tests).
func (db *RefDB) Decisions(pid workload.PageID) ([]Ref, []bool, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	entry, ok := db.entries[pid]
	if !ok {
		return nil, nil, false
	}
	return append([]Ref(nil), entry.Refs...), append([]bool(nil), entry.Local...), true
}
