// Package htmlrefs implements the page-handling machinery of the paper's
// Section 2: rendering synthetic HTML documents that embed a page's
// multimedia objects, parsing documents to extract those references ("upon
// creation or update of an HTML file ... the server parses the document and
// retrieves the URLs of multimedia content"), the per-server reference
// database that records which objects are to be downloaded locally, and the
// on-the-fly URL rewriting a local server performs while serving the HTML
// ("the local server queries the reference database and replaces on the fly
// the remote URLs with the local ones").
package htmlrefs

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/units"
	"repro/internal/workload"
)

// MOPathPrefix is the URL path prefix under which multimedia objects are
// served on both the repository and the local servers: /mo/<objectID>.
const MOPathPrefix = "/mo/"

// PagePathPrefix is the URL path prefix of pages on local servers:
// /page/<pageID>.
const PagePathPrefix = "/page/"

// MOPath returns the URL path of object k.
func MOPath(k workload.ObjectID) string {
	return MOPathPrefix + strconv.Itoa(int(k))
}

// PagePath returns the URL path of page j.
func PagePath(j workload.PageID) string {
	return PagePathPrefix + strconv.Itoa(int(j))
}

// ParseMOPath extracts the object ID from a /mo/<id> path; ok is false for
// anything else.
func ParseMOPath(path string) (workload.ObjectID, bool) {
	if !strings.HasPrefix(path, MOPathPrefix) {
		return 0, false
	}
	id, err := strconv.Atoi(path[len(MOPathPrefix):])
	if err != nil || id < 0 {
		return 0, false
	}
	return workload.ObjectID(id), true
}

// ParsePagePath extracts the page ID from a /page/<id> path.
func ParsePagePath(path string) (workload.PageID, bool) {
	if !strings.HasPrefix(path, PagePathPrefix) {
		return 0, false
	}
	id, err := strconv.Atoi(path[len(PagePathPrefix):])
	if err != nil || id < 0 {
		return 0, false
	}
	return workload.PageID(id), true
}

// RenderPage produces the stored form of page j's HTML document H_j: a
// valid document embedding every compulsory object as an <img> and every
// optional object as an <a href> link, with all MO URLs pointing at the
// repository (repoBase, e.g. "http://repo.example.com") — the form pages
// have *before* the serving-time rewrite. Filler prose pads the document to
// approximately the page's HTMLSize.
func RenderPage(w *workload.Workload, j workload.PageID, repoBase string) []byte {
	pg := &w.Pages[j]
	var b strings.Builder
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html>\n<head><title>W%d</title></head>\n<body>\n", j)
	fmt.Fprintf(&b, "<h1>Page W%d (site S%d)</h1>\n", j, pg.Site)
	for _, k := range pg.Compulsory {
		fmt.Fprintf(&b, "<img src=\"%s%s\" alt=\"M%d\">\n", repoBase, MOPath(k), k)
	}
	if len(pg.Optional) > 0 {
		b.WriteString("<ul>\n")
		for _, l := range pg.Optional {
			fmt.Fprintf(&b, "<li><a href=\"%s%s\">optional M%d</a></li>\n", repoBase, MOPath(l.Object), l.Object)
		}
		b.WriteString("</ul>\n")
	}
	pad(&b, pg.HTMLSize)
	b.WriteString("</body>\n</html>\n")
	return []byte(b.String())
}

// pad appends filler paragraphs until the document reaches target bytes
// (skipped when the references alone already exceed it).
func pad(b *strings.Builder, target units.ByteSize) {
	const filler = "<p>Lorem ipsum dolor sit amet, consectetur adipiscing elit, sed do eiusmod tempor incididunt ut labore et dolore magna aliqua.</p>\n"
	for units.ByteSize(b.Len()) < target-units.ByteSize(len(filler)) {
		b.WriteString(filler)
	}
}

// Ref is one multimedia reference found in a document: the object, whether
// it is an embedded (compulsory) image or an optional link, and the byte
// range [Start, End) of the URL value inside the document.
type Ref struct {
	Object   workload.ObjectID
	Optional bool
	Start    int
	End      int
}

// ParseRefs scans an HTML document for MO references. It is a small,
// purpose-built scanner (stdlib only): it walks tags, finds src/href
// attribute values whose path component matches /mo/<id>, and classifies
// <img>/<embed>/<source> as compulsory and <a> as optional. Offsets index
// into the original byte slice so rewrites can splice in place.
func ParseRefs(doc []byte) []Ref {
	var refs []Ref
	i := 0
	for i < len(doc) {
		lt := indexByteFrom(doc, '<', i)
		if lt < 0 {
			break
		}
		gt := indexByteFrom(doc, '>', lt)
		if gt < 0 {
			break
		}
		tag := doc[lt+1 : gt]
		name, attrs := splitTag(tag)
		var wantAttr string
		var optional bool
		switch strings.ToLower(name) {
		case "img", "embed", "source":
			wantAttr = "src"
		case "a":
			wantAttr = "href"
			optional = true
		}
		if wantAttr != "" {
			if start, end, ok := findAttrValue(attrs, wantAttr); ok {
				absStart := lt + 1 + len(name) + start
				absEnd := lt + 1 + len(name) + end
				url := string(doc[absStart:absEnd])
				if k, ok := parseMOURL(url); ok {
					refs = append(refs, Ref{Object: k, Optional: optional, Start: absStart, End: absEnd})
				}
			}
		}
		i = gt + 1
	}
	return refs
}

func indexByteFrom(b []byte, c byte, from int) int {
	for i := from; i < len(b); i++ {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// splitTag separates a tag's name from its attribute section.
func splitTag(tag []byte) (name string, attrs []byte) {
	for i, c := range tag {
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			return string(tag[:i]), tag[i:]
		}
	}
	return string(tag), nil
}

// findAttrValue locates attr="value" inside an attribute section and
// returns the value's byte range relative to the section start.
func findAttrValue(attrs []byte, attr string) (start, end int, ok bool) {
	lower := strings.ToLower(string(attrs))
	needle := attr + "=\""
	pos := 0
	for {
		idx := strings.Index(lower[pos:], needle)
		if idx < 0 {
			return 0, 0, false
		}
		idx += pos
		// Must be preceded by whitespace (not part of a longer name).
		if idx > 0 {
			prev := lower[idx-1]
			if prev != ' ' && prev != '\t' && prev != '\n' && prev != '\r' {
				pos = idx + 1
				continue
			}
		}
		valStart := idx + len(needle)
		valEnd := strings.IndexByte(lower[valStart:], '"')
		if valEnd < 0 {
			return 0, 0, false
		}
		return valStart, valStart + valEnd, true
	}
}

// parseMOURL extracts the object ID from an absolute or relative MO URL.
func parseMOURL(url string) (workload.ObjectID, bool) {
	idx := strings.Index(url, MOPathPrefix)
	if idx < 0 {
		return 0, false
	}
	// Nothing after the host part may precede the path except the scheme
	// and host themselves; accept any prefix and require the remainder to
	// be digits.
	rest := url[idx+len(MOPathPrefix):]
	if rest == "" {
		return 0, false
	}
	id, err := strconv.Atoi(rest)
	if err != nil || id < 0 {
		return 0, false
	}
	return workload.ObjectID(id), true
}
