// Package lru implements a byte-capacity LRU cache over integer keys — the
// substrate for the paper's "ideal LRU caching/redirection" baseline, which
// caches multimedia objects at each local site and evicts by recency when
// the storage budget is exceeded.
package lru

import "fmt"

// node is a doubly-linked-list entry; the list is maintained in recency
// order with the most recently used item at the head.
type node struct {
	key        int
	size       int64
	prev, next *node
}

// Cache is a byte-capacity LRU cache. The zero value is not usable; call
// New. Not safe for concurrent use.
type Cache struct {
	capacity int64
	used     int64
	items    map[int]*node
	head     *node // most recently used
	tail     *node // least recently used

	hits, misses int64
	evictions    int64
}

// New returns a cache holding at most capacity bytes. Capacity zero is
// legal (every Put evicts immediately and Contains is always false).
func New(capacity int64) (*Cache, error) {
	if capacity < 0 {
		return nil, fmt.Errorf("lru: negative capacity %d", capacity)
	}
	return &Cache{capacity: capacity, items: make(map[int]*node)}, nil
}

// Capacity returns the byte capacity.
func (c *Cache) Capacity() int64 { return c.capacity }

// Bytes returns the bytes currently held.
func (c *Cache) Bytes() int64 { return c.used }

// Len returns the number of cached items.
func (c *Cache) Len() int { return len(c.items) }

// Hits and Misses return the Access counters; Evictions counts evicted
// items.
func (c *Cache) Hits() int64      { return c.hits }
func (c *Cache) Misses() int64    { return c.misses }
func (c *Cache) Evictions() int64 { return c.evictions }

// detach removes n from the recency list.
func (c *Cache) detach(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// pushFront inserts n at the head (most recently used).
func (c *Cache) pushFront(n *node) {
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

// Contains reports whether key is cached without touching recency.
func (c *Cache) Contains(key int) bool {
	_, ok := c.items[key]
	return ok
}

// Access records a use of key: on a hit the item moves to the front and
// Access returns true; on a miss it returns false (the caller decides
// whether to Put). Hit/miss counters update either way.
func (c *Cache) Access(key int) bool {
	n, ok := c.items[key]
	if !ok {
		c.misses++
		return false
	}
	c.hits++
	c.detach(n)
	c.pushFront(n)
	return true
}

// Put inserts (or refreshes) key with the given size at the front, evicting
// least-recently-used items until the cache fits. It returns the evicted
// keys. An item larger than the whole capacity is not cached (it would
// evict everything for nothing) and is reported as the single "evicted"
// key. Sizes must be non-negative.
func (c *Cache) Put(key int, size int64) (evicted []int) {
	if size < 0 {
		panic(fmt.Sprintf("lru: negative size %d for key %d", size, key))
	}
	if n, ok := c.items[key]; ok {
		c.used += size - n.size
		n.size = size
		c.detach(n)
		c.pushFront(n)
	} else if size > c.capacity {
		return []int{key}
	} else {
		n := &node{key: key, size: size}
		c.items[key] = n
		c.pushFront(n)
		c.used += size
	}
	for c.used > c.capacity && c.tail != nil {
		victim := c.tail
		if victim.key == key {
			// The refreshed item itself no longer fits; drop it.
			c.remove(victim)
			evicted = append(evicted, victim.key)
			break
		}
		c.remove(victim)
		evicted = append(evicted, victim.key)
	}
	c.evictions += int64(len(evicted))
	return evicted
}

// remove detaches and deletes n.
func (c *Cache) remove(n *node) {
	c.detach(n)
	delete(c.items, n.key)
	c.used -= n.size
}

// Remove deletes key if present, reporting whether it was.
func (c *Cache) Remove(key int) bool {
	n, ok := c.items[key]
	if !ok {
		return false
	}
	c.remove(n)
	return true
}

// Keys returns the cached keys from most to least recently used.
func (c *Cache) Keys() []int {
	out := make([]int, 0, len(c.items))
	for n := c.head; n != nil; n = n.next {
		out = append(out, n.key)
	}
	return out
}

// checkInvariants verifies list/map/byte consistency (test helper).
func (c *Cache) checkInvariants() error {
	var bytes int64
	count := 0
	var prev *node
	for n := c.head; n != nil; n = n.next {
		if n.prev != prev {
			return fmt.Errorf("lru: broken prev link at key %d", n.key)
		}
		if m, ok := c.items[n.key]; !ok || m != n {
			return fmt.Errorf("lru: list node %d not in map", n.key)
		}
		bytes += n.size
		count++
		prev = n
	}
	if c.tail != prev {
		return fmt.Errorf("lru: tail mismatch")
	}
	if count != len(c.items) {
		return fmt.Errorf("lru: list has %d nodes, map has %d", count, len(c.items))
	}
	if bytes != c.used {
		return fmt.Errorf("lru: bytes %d != used %d", bytes, c.used)
	}
	if c.used > c.capacity {
		return fmt.Errorf("lru: used %d exceeds capacity %d", c.used, c.capacity)
	}
	return nil
}
