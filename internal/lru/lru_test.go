package lru

import (
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, cap int64) *Cache {
	t.Helper()
	c, err := New(cap)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsNegative(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBasicPutAccess(t *testing.T) {
	c := mustNew(t, 100)
	if c.Access(1) {
		t.Error("hit on empty cache")
	}
	if ev := c.Put(1, 40); len(ev) != 0 {
		t.Errorf("unexpected evictions %v", ev)
	}
	if !c.Access(1) {
		t.Error("miss after Put")
	}
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Errorf("counters hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if c.Bytes() != 40 || c.Len() != 1 {
		t.Errorf("bytes=%d len=%d", c.Bytes(), c.Len())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictionOrder(t *testing.T) {
	c := mustNew(t, 100)
	c.Put(1, 40)
	c.Put(2, 40)
	c.Access(1)        // 1 is now MRU
	ev := c.Put(3, 40) // must evict 2 (LRU), not 1
	if len(ev) != 1 || ev[0] != 2 {
		t.Errorf("evicted %v, want [2]", ev)
	}
	if !c.Contains(1) || !c.Contains(3) || c.Contains(2) {
		t.Error("wrong survivors")
	}
	if c.Evictions() != 1 {
		t.Errorf("evictions = %d", c.Evictions())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestEvictMultiple(t *testing.T) {
	c := mustNew(t, 100)
	c.Put(1, 30)
	c.Put(2, 30)
	c.Put(3, 30)
	ev := c.Put(4, 90) // evicts 1, 2, 3
	if len(ev) != 3 {
		t.Errorf("evicted %v", ev)
	}
	if c.Len() != 1 || !c.Contains(4) {
		t.Error("only key 4 should remain")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedItemNotCached(t *testing.T) {
	c := mustNew(t, 50)
	c.Put(1, 40)
	ev := c.Put(2, 60)
	if len(ev) != 1 || ev[0] != 2 {
		t.Errorf("oversized put evicted %v, want itself", ev)
	}
	if !c.Contains(1) || c.Contains(2) {
		t.Error("oversized item displaced the cache")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshResize(t *testing.T) {
	c := mustNew(t, 100)
	c.Put(1, 40)
	c.Put(2, 40)
	c.Put(1, 70) // grow key 1; 40+70 > 100 → evict 2
	if c.Contains(2) {
		t.Error("refresh did not evict to fit")
	}
	if c.Bytes() != 70 {
		t.Errorf("bytes = %d", c.Bytes())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshBeyondCapacityDropsSelf(t *testing.T) {
	c := mustNew(t, 50)
	c.Put(1, 40)
	ev := c.Put(1, 80) // refreshed beyond capacity
	found := false
	for _, k := range ev {
		if k == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("refresh-beyond-capacity evicted %v, want to include 1", ev)
	}
	if c.Contains(1) || c.Bytes() != 0 {
		t.Errorf("cache should be empty, bytes=%d", c.Bytes())
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRemove(t *testing.T) {
	c := mustNew(t, 100)
	c.Put(1, 10)
	if !c.Remove(1) {
		t.Error("Remove missed present key")
	}
	if c.Remove(1) {
		t.Error("Remove found absent key")
	}
	if c.Bytes() != 0 || c.Len() != 0 {
		t.Error("remove did not release bytes")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroCapacity(t *testing.T) {
	c := mustNew(t, 0)
	ev := c.Put(1, 1)
	if len(ev) != 1 || c.Contains(1) {
		t.Error("zero-capacity cache retained an item")
	}
	ev = c.Put(2, 0) // zero-size item fits in zero capacity
	if len(ev) != 0 || !c.Contains(2) {
		t.Error("zero-size item should fit")
	}
	if err := c.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestKeysOrder(t *testing.T) {
	c := mustNew(t, 100)
	c.Put(1, 10)
	c.Put(2, 10)
	c.Put(3, 10)
	c.Access(1)
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != 1 || keys[1] != 3 || keys[2] != 2 {
		t.Errorf("Keys = %v, want [1 3 2]", keys)
	}
}

func TestPanicOnNegativeSize(t *testing.T) {
	c := mustNew(t, 10)
	defer func() {
		if recover() == nil {
			t.Error("negative size did not panic")
		}
	}()
	c.Put(1, -5)
}

// Property test: after any operation sequence the invariants hold and the
// byte usage never exceeds capacity.
func TestCacheProperties(t *testing.T) {
	type op struct {
		Key  uint8
		Size uint8
		Kind uint8 // 0 put, 1 access, 2 remove
	}
	f := func(capacity uint16, ops []op) bool {
		c, err := New(int64(capacity))
		if err != nil {
			return false
		}
		for _, o := range ops {
			switch o.Kind % 3 {
			case 0:
				c.Put(int(o.Key), int64(o.Size))
			case 1:
				c.Access(int(o.Key))
			case 2:
				c.Remove(int(o.Key))
			}
			if err := c.checkInvariants(); err != nil {
				t.Logf("invariant violated: %v", err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccessHit(b *testing.B) {
	c, _ := New(1 << 20)
	for i := 0; i < 1000; i++ {
		c.Put(i, 1000)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(i % 1000)
	}
}

func BenchmarkPutEvict(b *testing.B) {
	c, _ := New(1 << 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(i, 128)
	}
}
