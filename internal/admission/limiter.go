package admission

import (
	"context"
	"sync"
	"time"
)

// Verdict is the outcome of one admission decision.
type Verdict int

const (
	// Admitted lets the request through; the caller must release the slot.
	Admitted Verdict = iota
	// ShedQueue rejects instantly: the wait queue is at its bound.
	ShedQueue
	// ShedSojourn rejects at dequeue: the CoDel law saw a standing queue.
	ShedSojourn
	// ShedDeadline rejects doomed work: the request's propagated deadline
	// already passed (or will pass before it can be served).
	ShedDeadline
	// Aborted means the client went away while queued (context canceled);
	// no response is owed.
	Aborted
)

// String names a verdict for counters and journal events.
func (v Verdict) String() string {
	switch v {
	case Admitted:
		return "admitted"
	case ShedQueue:
		return "queue_full"
	case ShedSojourn:
		return "sojourn"
	case ShedDeadline:
		return "deadline"
	case Aborted:
		return "aborted"
	}
	return "unknown"
}

// Shed reports whether the verdict is a load-shedding rejection (one that
// should answer 429).
func (v Verdict) Shed() bool {
	return v == ShedQueue || v == ShedSojourn || v == ShedDeadline
}

// waiter is one queued request.
type waiter struct {
	ch      chan struct{} // buffered(1); receives the grant
	enq     time.Duration
	granted bool
	gone    bool // abandoned while queued; skip at grant time
}

// Endpoint is one endpoint class's bounded admission queue: an AIMD-tuned
// concurrency limit in front of a FIFO wait queue policed by CoDel sojourn
// shedding. The clock is whatever monotone origin the caller's `now`
// values use.
type Endpoint struct {
	mu    sync.Mutex
	cfg   Config
	codel *CoDel
	limit int
	act   int
	queue []*waiter

	// AIMD bookkeeping: multiplicative decrease at most once per Interval,
	// additive increase after a full Interval without sheds.
	lastShed     time.Duration
	lastDecrease time.Duration
	lastIncrease time.Duration
	shedEver     bool
}

// NewEndpoint builds an endpoint queue from a normalized config.
func NewEndpoint(cfg Config) *Endpoint {
	cfg = cfg.normalize()
	return &Endpoint{
		cfg:   cfg,
		codel: NewCoDel(cfg.Target, cfg.Interval),
		limit: cfg.InitialLimit,
	}
}

// Limit returns the current AIMD concurrency limit.
func (e *Endpoint) Limit() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.limit
}

// Active returns the in-flight request count (diagnostics and tests).
func (e *Endpoint) Active() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.act
}

// QueueLen returns the current wait-queue depth.
func (e *Endpoint) QueueLen() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, w := range e.queue {
		if !w.gone {
			n++
		}
	}
	return n
}

// Admit runs one request through the admission gate. clock supplies `now`
// on the endpoint's monotone timeline; deadline (zero = none) is the
// request's absolute wall-clock deadline; ctx aborts the wait when the
// client disconnects. On Admitted the caller must call release() exactly
// once when the request finishes. sawDrop reports a CoDel state
// transition into shedding (for journal events).
//
//repllint:hotpath — admission decision, called per live request
func (e *Endpoint) Admit(ctx context.Context, clock func() time.Duration, deadline time.Time) (v Verdict, release func()) {
	now := clock()
	e.mu.Lock()
	e.growLocked(now)
	// Doomed on arrival: shed before spending any queue slot on it.
	if !deadline.IsZero() && !time.Now().Before(deadline) {
		e.mu.Unlock()
		return ShedDeadline, nil
	}
	if e.act < e.limit && len(e.queue) == 0 {
		e.act++
		// An empty queue is a zero sojourn: feeds CoDel's "below target"
		// reset so shedding disarms as soon as the standing queue clears.
		e.codel.OnDequeue(0, now)
		e.mu.Unlock()
		return Admitted, e.releaseFunc()
	}
	if len(e.queue) >= e.cfg.MaxQueue {
		e.shedLocked(now)
		e.mu.Unlock()
		return ShedQueue, nil
	}
	w := &waiter{ch: make(chan struct{}, 1), enq: now}
	e.queue = append(e.queue, w)
	e.mu.Unlock()

	var deadlineC <-chan time.Time
	if !deadline.IsZero() {
		t := time.NewTimer(time.Until(deadline))
		defer t.Stop()
		deadlineC = t.C
	}
	select {
	case <-w.ch:
		// Granted: the slot is ours, but the wait itself may disqualify
		// the request — CoDel on the observed sojourn, deadline on the
		// wall clock.
		now = clock()
		e.mu.Lock()
		sojourn := now - w.enq
		shed := e.codel.OnDequeue(sojourn, now)
		if shed {
			e.shedLocked(now)
		}
		expired := !deadline.IsZero() && !time.Now().Before(deadline)
		if shed || expired {
			e.act--
			e.grantLocked()
			e.mu.Unlock()
			if expired {
				return ShedDeadline, nil
			}
			return ShedSojourn, nil
		}
		e.mu.Unlock()
		return Admitted, e.releaseFunc()
	case <-ctx.Done():
		return e.abandon(w, clock, Aborted)
	case <-deadlineC:
		return e.abandon(w, clock, ShedDeadline)
	}
}

// abandon marks a queued waiter gone, unless a grant raced in — then the
// grant wins and the request proceeds down the granted path's checks.
func (e *Endpoint) abandon(w *waiter, clock func() time.Duration, v Verdict) (Verdict, func()) {
	e.mu.Lock()
	if w.granted {
		// The grant arrived concurrently; we own a slot. For an aborted
		// client the work is pointless — give the slot back. For a
		// deadline it is equally doomed.
		e.act--
		e.grantLocked()
		e.mu.Unlock()
		return v, nil
	}
	w.gone = true
	if v == ShedDeadline {
		e.shedLocked(clock())
	}
	e.mu.Unlock()
	return v, nil
}

// releaseFunc returns the once-only slot release for an admitted request.
func (e *Endpoint) releaseFunc() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			e.mu.Lock()
			e.act--
			e.grantLocked()
			e.mu.Unlock()
		})
	}
}

// grantLocked hands freed slots to queued waiters, skipping abandoned
// ones. Caller holds e.mu.
func (e *Endpoint) grantLocked() {
	for e.act < e.limit && len(e.queue) > 0 {
		w := e.queue[0]
		e.queue = e.queue[1:]
		if w.gone {
			continue
		}
		w.granted = true
		e.act++
		w.ch <- struct{}{}
	}
}

// shedLocked books one shed for AIMD: multiplicative decrease, at most
// once per control interval. Caller holds e.mu.
func (e *Endpoint) shedLocked(now time.Duration) {
	e.lastShed, e.shedEver = now, true
	if now-e.lastDecrease < e.cfg.Interval {
		return
	}
	e.lastDecrease = now
	e.limit /= 2
	if e.limit < e.cfg.MinLimit {
		e.limit = e.cfg.MinLimit
	}
}

// growLocked books the additive increase: +1 after a full interval with no
// sheds. Caller holds e.mu.
func (e *Endpoint) growLocked(now time.Duration) {
	if e.shedEver && now-e.lastShed < e.cfg.Interval {
		return
	}
	if now-e.lastIncrease < e.cfg.Interval {
		return
	}
	e.lastIncrease = now
	if e.limit < e.cfg.MaxLimit {
		e.limit++
	}
}

// Brownout is the degradation controller: it watches the shed rate over a
// sliding window and walks a fidelity tier up (drop low-weight optional
// content, then all of it) under sustained pressure, back down with
// hysteresis once pressure clears. Tier 0 is full fidelity; MaxTier is
// maximal degradation short of refusing.
type Brownout struct {
	mu     sync.Mutex
	cfg    Config
	tier   int
	start  time.Duration // current window's start
	admits int
	sheds  int
}

// MaxTier is the deepest brownout tier (drop every optional reference).
const MaxTier = 2

// NewBrownout builds the controller from a normalized config.
func NewBrownout(cfg Config) *Brownout {
	return &Brownout{cfg: cfg.normalize()}
}

// Tier returns the current degradation tier.
func (b *Brownout) Tier() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tier
}

// Observe books one admission decision (shed or not) at `now` and returns
// the tier along with whether this observation changed it. Window rollover
// happens here: when the observation window is complete, the shed rate
// decides the walk direction and the counters reset.
func (b *Brownout) Observe(shed bool, now time.Duration) (tier int, changed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if shed {
		b.sheds++
	} else {
		b.admits++
	}
	if now-b.start < b.cfg.BrownoutWindow {
		return b.tier, false
	}
	total := b.sheds + b.admits
	rate := 0.0
	if total > 0 {
		rate = float64(b.sheds) / float64(total)
	}
	prev := b.tier
	switch {
	case rate > b.cfg.BrownoutUp && b.tier < MaxTier:
		b.tier++
	case rate < b.cfg.BrownoutDown && b.tier > 0:
		b.tier--
	}
	b.start = now
	b.sheds, b.admits = 0, 0
	return b.tier, b.tier != prev
}
