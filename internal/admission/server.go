package admission

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Stream label for the Retry-After jitter (Split-derived from Config.Seed;
// disjoint from every other consumer's label range).
const retryAfterStream uint64 = 801

// Metrics is the admission layer's counter set; all fields are
// nil-tolerant, so the zero Metrics is a no-op sink.
type Metrics struct {
	Admitted    *telemetry.Counter // requests that reached the handler
	ShedSojourn *telemetry.Counter // 429s from the CoDel sojourn law
	ShedQueue   *telemetry.Counter // 429s from the queue bound
	ShedDead    *telemetry.Counter // 429s for deadline-doomed work
	Aborts      *telemetry.Counter // clients that vanished while queued

	// Journal, when non-nil, receives the admission state transitions:
	// "admission.saturated" / "admission.recovered" when the CoDel law
	// enters/leaves shedding, "admission.brownout" on tier changes. Steady
	// states are counters' business — the journal records the edges.
	Journal *trace.Journal
	// Site labels this server's journal events ("repo" or a site index).
	Site string
}

// MetricsFor registers the admission counters under prefix (e.g.
// "admission.site.0.") in the registry. A nil registry yields no-op
// counters.
func MetricsFor(reg *telemetry.Registry, prefix string) Metrics {
	return Metrics{
		Admitted:    reg.Counter(prefix + "admitted"),         //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		ShedSojourn: reg.Counter(prefix + "shed_by.sojourn"),  //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		ShedQueue:   reg.Counter(prefix + "shed_by.queue"),    //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		ShedDead:    reg.Counter(prefix + "shed_by.deadline"), //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
		Aborts:      reg.Counter(prefix + "queue_aborts"),     //repllint:allow telemetry-naming — per-site metric namespace; suffixes are literal
	}
}

// count books one verdict.
func (m Metrics) count(v Verdict) {
	switch v {
	case Admitted:
		m.Admitted.Inc()
	case ShedSojourn:
		m.ShedSojourn.Inc()
	case ShedQueue:
		m.ShedQueue.Inc()
	case ShedDeadline:
		m.ShedDead.Inc()
	case Aborted:
		m.Aborts.Inc()
	}
}

// Server is one HTTP server's admission layer: an Endpoint per request
// class (pages, objects, everything else — separate queues so a page
// stampede cannot starve object fetches), the brownout controller, and
// the seeded Retry-After jitter stream.
type Server struct {
	cfg   Config
	clock func() time.Duration
	page  *Endpoint
	mo    *Endpoint
	other *Endpoint
	brown *Brownout
	m     Metrics

	jmu    sync.Mutex
	jitter *rng.Stream

	smu        sync.Mutex
	saturated  bool // last journaled CoDel state, per-server
	journaling bool
}

// NewServer builds a server admission layer. clock reports elapsed time on
// the server's monotone timeline (e.g. since the cluster was armed); nil
// pins it to a process-start-relative wall clock.
func NewServer(cfg Config, clock func() time.Duration, m Metrics) *Server {
	cfg = cfg.normalize()
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	return &Server{
		cfg:    cfg,
		clock:  clock,
		page:   NewEndpoint(cfg),
		mo:     NewEndpoint(cfg),
		other:  NewEndpoint(cfg),
		brown:  NewBrownout(cfg),
		m:      m,
		jitter: rng.New(cfg.Seed).Split(retryAfterStream),
	}
}

// Tier returns the current brownout tier (0 = full fidelity).
func (s *Server) Tier() int { return s.brown.Tier() }

// Endpoint returns the admission queue for an endpoint class name ("page",
// "mo", "other") — diagnostics and tests.
func (s *Server) Endpoint(class string) *Endpoint {
	switch class {
	case "page":
		return s.page
	case "mo":
		return s.mo
	default:
		return s.other
	}
}

// endpointFor classifies a request path. String prefixes, not the htmlrefs
// parsers: admission runs in front of everything (health probes included)
// and must not import the content layer.
func (s *Server) endpointFor(path string) *Endpoint {
	switch {
	case strings.HasPrefix(path, "/page/"):
		return s.page
	case strings.HasPrefix(path, "/mo/"):
		return s.mo
	default:
		return s.other
	}
}

// retryAfter draws the jittered retry hint in [d, 3d/2).
func (s *Server) retryAfter() time.Duration {
	d := s.cfg.RetryAfter
	s.jmu.Lock()
	defer s.jmu.Unlock()
	return d + time.Duration(s.jitter.Uniform(0, float64(d/2)))
}

// Middleware wraps next with the admission gate: every request passes
// through its endpoint class's bounded queue; sheds answer 429 with the
// jittered Retry-After hint; brownout pressure is fed from every decision.
func (s *Server) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		ep := s.endpointFor(req.URL.Path)
		deadline, _ := ParseDeadline(req.Header.Get(DeadlineHeader))
		v, release := ep.Admit(req.Context(), s.clock, deadline)
		s.m.count(v)
		now := s.clock()
		s.noteState(ep, now)
		s.noteBrownout(v.Shed(), now)
		switch {
		case v == Admitted:
			defer release()
			next.ServeHTTP(rw, req)
		case v == Aborted:
			// The client is gone; no response can reach it. Drop the
			// connection the way net/http prescribes.
			panic(http.ErrAbortHandler)
		default:
			ra := s.retryAfter()
			secs := int((ra + time.Second - 1) / time.Second)
			if secs < 1 {
				secs = 1
			}
			rw.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
			rw.Header().Set(RetryAfterMillisHeader, fmt.Sprintf("%d", ra.Milliseconds()))
			http.Error(rw, "overloaded: request shed ("+v.String()+")", http.StatusTooManyRequests)
		}
	})
}

// noteState journals CoDel saturation edges: entering the shedding state
// on any endpoint emits "admission.saturated", leaving it on all of them
// "admission.recovered".
func (s *Server) noteState(ep *Endpoint, now time.Duration) {
	ep.mu.Lock()
	dropping := ep.codel.Dropping()
	ep.mu.Unlock()
	if !dropping {
		dropping = s.anyDropping()
	}
	s.smu.Lock()
	changed := dropping != s.saturated
	s.saturated = dropping
	s.smu.Unlock()
	if !changed {
		return
	}
	event := "admission.recovered"
	if dropping {
		event = "admission.saturated"
	}
	s.m.Journal.Record(event,
		trace.A(trace.AttrSite, s.m.Site),
		trace.I("elapsed_ms", now.Milliseconds()))
}

// anyDropping reports whether any endpoint's CoDel law is shedding.
func (s *Server) anyDropping() bool {
	for _, ep := range []*Endpoint{s.page, s.mo, s.other} {
		ep.mu.Lock()
		d := ep.codel.Dropping()
		ep.mu.Unlock()
		if d {
			return true
		}
	}
	return false
}

// noteBrownout feeds one decision into the brownout controller and
// journals tier changes.
func (s *Server) noteBrownout(shed bool, now time.Duration) {
	tier, changed := s.brown.Observe(shed, now)
	if !changed {
		return
	}
	s.m.Journal.Record("admission.brownout",
		trace.A(trace.AttrSite, s.m.Site),
		trace.I("tier", int64(tier)),
		trace.I("elapsed_ms", now.Milliseconds()))
}
