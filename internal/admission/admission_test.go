package admission

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestCoDelShedsOnStandingQueue pins the control law: sojourn above target
// must persist for a full interval before the first shed, and while it
// does, sheds tighten as interval/√count.
func TestCoDelShedsOnStandingQueue(t *testing.T) {
	c := NewCoDel(5*time.Millisecond, 100*time.Millisecond)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	// A burst above target inside one interval never sheds.
	if c.OnDequeue(ms(10), ms(0)) {
		t.Fatal("first over-target sojourn shed immediately")
	}
	if c.OnDequeue(ms(10), ms(50)) {
		t.Fatal("shed before a full interval above target")
	}
	// At one full interval the standing queue is real: shedding starts.
	if !c.OnDequeue(ms(10), ms(100)) {
		t.Fatal("no shed after a full interval above target")
	}
	if !c.Dropping() {
		t.Fatal("law not in dropping state after first shed")
	}
	// Next shed comes interval/√2 ≈ 70.7ms later, not immediately.
	if c.OnDequeue(ms(10), ms(120)) {
		t.Fatal("second shed fired before the √-law gap")
	}
	if !c.OnDequeue(ms(10), ms(171)) {
		t.Fatal("second shed missing after the √-law gap")
	}
	// A below-target sojourn disarms everything.
	if c.OnDequeue(ms(1), ms(180)) {
		t.Fatal("below-target sojourn shed")
	}
	if c.Dropping() {
		t.Fatal("law still dropping after the queue cleared")
	}
}

// TestRetryBudgetArithmetic pins the token bucket: starts full, spends one
// per retry, earns ratio per success, caps at max, and a nil budget always
// allows.
func TestRetryBudgetArithmetic(t *testing.T) {
	b := NewRetryBudget(0.1, 2)
	if got := b.Tokens(); got != 2 {
		t.Fatalf("fresh budget has %v tokens, want 2 (full)", got)
	}
	if !b.Spend() || !b.Spend() {
		t.Fatal("full budget refused a spend")
	}
	if b.Spend() {
		t.Fatal("empty budget allowed a spend")
	}
	for i := 0; i < 10; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got < 0.999 || got > 1.001 {
		t.Fatalf("10 earns at 0.1 = %v tokens, want 1", got)
	}
	if !b.Spend() {
		t.Fatal("earned token not spendable")
	}
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got > 2 {
		t.Fatalf("budget exceeded its cap: %v > 2", got)
	}
	var nb *RetryBudget
	if !nb.Spend() {
		t.Fatal("nil budget must always allow")
	}
	nb.Earn() // must not panic
}

// TestEndpointAIMD pins the auto-tuner: sheds halve the limit (at most
// once per interval, floored at MinLimit), clean intervals add one back
// (capped at MaxLimit).
func TestEndpointAIMD(t *testing.T) {
	cfg := Config{InitialLimit: 16, MinLimit: 4, MaxLimit: 32, Interval: 100 * time.Millisecond}
	e := NewEndpoint(cfg)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	e.mu.Lock()
	e.shedLocked(ms(200))
	e.mu.Unlock()
	if got := e.Limit(); got != 8 {
		t.Fatalf("limit after one shed = %d, want 8", got)
	}
	// A second shed inside the same interval must not halve again.
	e.mu.Lock()
	e.shedLocked(ms(250))
	e.mu.Unlock()
	if got := e.Limit(); got != 8 {
		t.Fatalf("limit after back-to-back sheds = %d, want 8 (one decrease per interval)", got)
	}
	e.mu.Lock()
	e.shedLocked(ms(301))
	e.mu.Unlock()
	if got := e.Limit(); got != 4 {
		t.Fatalf("limit after next-interval shed = %d, want 4", got)
	}
	// Floor.
	e.mu.Lock()
	e.shedLocked(ms(402))
	e.mu.Unlock()
	if got := e.Limit(); got != 4 {
		t.Fatalf("limit fell below MinLimit: %d", got)
	}
	// Clean intervals grow additively.
	e.mu.Lock()
	e.growLocked(ms(503))
	e.mu.Unlock()
	if got := e.Limit(); got != 5 {
		t.Fatalf("limit after one clean interval = %d, want 5", got)
	}
	e.mu.Lock()
	e.growLocked(ms(520)) // same interval: no growth
	e.mu.Unlock()
	if got := e.Limit(); got != 5 {
		t.Fatalf("limit grew twice in one interval: %d", got)
	}
}

// TestEndpointQueueBound pins the backstop: with the concurrency limit and
// the queue both full, further arrivals shed instantly as queue_full.
func TestEndpointQueueBound(t *testing.T) {
	cfg := Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 2, Target: time.Hour, Interval: time.Hour}
	e := NewEndpoint(cfg)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }

	v, rel := e.Admit(context.Background(), clock, time.Time{})
	if v != Admitted {
		t.Fatalf("first request not admitted: %v", v)
	}
	// Fill the queue with two waiters.
	done := make(chan Verdict, 2)
	for i := 0; i < 2; i++ {
		go func() {
			v, r := e.Admit(context.Background(), clock, time.Time{})
			if r != nil {
				defer r()
			}
			done <- v
		}()
	}
	waitFor(t, func() bool { return e.QueueLen() == 2 })
	v2, _ := e.Admit(context.Background(), clock, time.Time{})
	if v2 != ShedQueue {
		t.Fatalf("over-bound arrival verdict = %v, want ShedQueue", v2)
	}
	rel()
	if got := <-done; got != Admitted {
		t.Fatalf("queued request verdict = %v, want Admitted", got)
	}
	if got := <-done; got != Admitted {
		t.Fatalf("queued request verdict = %v, want Admitted", got)
	}
}

// TestEndpointDeadlineShed pins deadline awareness end to end: expired-on-
// arrival work sheds without queueing, and a queued request whose deadline
// lapses is shed instead of served.
func TestEndpointDeadlineShed(t *testing.T) {
	cfg := Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 8, Target: time.Hour, Interval: time.Hour}
	e := NewEndpoint(cfg)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }

	if v, _ := e.Admit(context.Background(), clock, time.Now().Add(-time.Second)); v != ShedDeadline {
		t.Fatalf("expired-on-arrival verdict = %v, want ShedDeadline", v)
	}

	v, rel := e.Admit(context.Background(), clock, time.Time{})
	if v != Admitted {
		t.Fatalf("setup admit failed: %v", v)
	}
	got := make(chan Verdict, 1)
	go func() {
		v, r := e.Admit(context.Background(), clock, time.Now().Add(30*time.Millisecond))
		if r != nil {
			r()
		}
		got <- v
	}()
	// Hold the slot past the waiter's deadline.
	time.Sleep(60 * time.Millisecond)
	if v := <-got; v != ShedDeadline {
		t.Fatalf("lapsed-in-queue verdict = %v, want ShedDeadline", v)
	}
	rel()
	if e.QueueLen() != 0 {
		t.Fatalf("abandoned waiter still queued: %d", e.QueueLen())
	}
}

// TestEndpointAbortedClient pins the disconnect path: a canceled context
// abandons the queued waiter and the slot cascade skips it.
func TestEndpointAbortedClient(t *testing.T) {
	cfg := Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 8, Target: time.Hour, Interval: time.Hour}
	e := NewEndpoint(cfg)
	start := time.Now()
	clock := func() time.Duration { return time.Since(start) }

	_, rel := e.Admit(context.Background(), clock, time.Time{})
	ctx, cancel := context.WithCancel(context.Background())
	got := make(chan Verdict, 1)
	go func() {
		v, r := e.Admit(ctx, clock, time.Time{})
		if r != nil {
			r()
		}
		got <- v
	}()
	waitFor(t, func() bool { return e.QueueLen() == 1 })
	cancel()
	if v := <-got; v != Aborted {
		t.Fatalf("canceled waiter verdict = %v, want Aborted", v)
	}
	rel()
	if e.Active() != 0 {
		t.Fatalf("slot leaked to an aborted waiter: active=%d", e.Active())
	}
}

// TestBrownoutWalksTiersWithHysteresis pins the degradation controller:
// sustained shed pressure raises the tier one window at a time up to
// MaxTier; pressure below the down-threshold walks it back.
func TestBrownoutWalksTiersWithHysteresis(t *testing.T) {
	cfg := Config{BrownoutWindow: 10 * time.Millisecond, BrownoutUp: 0.1, BrownoutDown: 0.01}
	b := NewBrownout(cfg)
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }

	// Window 1: 50% sheds → tier 1.
	b.Observe(true, ms(1))
	b.Observe(false, ms(2))
	tier, changed := b.Observe(true, ms(11))
	if tier != 1 || !changed {
		t.Fatalf("after shed-heavy window: tier=%d changed=%v, want 1 true", tier, changed)
	}
	// Window 2: still shedding → tier 2 and pinned at MaxTier after.
	b.Observe(true, ms(12))
	tier, _ = b.Observe(true, ms(22))
	if tier != MaxTier {
		t.Fatalf("after second shed window: tier=%d, want %d", tier, MaxTier)
	}
	b.Observe(true, ms(23))
	tier, changed = b.Observe(true, ms(33))
	if tier != MaxTier || changed {
		t.Fatalf("tier left [0, MaxTier]: tier=%d changed=%v", tier, changed)
	}
	// Intermediate shed rate (between thresholds): hold.
	b.Observe(true, ms(34))
	for i := 0; i < 20; i++ {
		b.Observe(false, ms(35))
	}
	tier, changed = b.Observe(false, ms(44))
	if tier != MaxTier || changed {
		t.Fatalf("hysteresis band moved the tier: tier=%d changed=%v", tier, changed)
	}
	// Clean windows walk back down.
	for w := 0; w < 2; w++ {
		base := 45 + w*11
		for i := 0; i < 5; i++ {
			b.Observe(false, ms(base+i))
		}
		b.Observe(false, ms(base+10))
	}
	if got := b.Tier(); got != 0 {
		t.Fatalf("tier after clean windows = %d, want 0", got)
	}
}

// TestMiddlewareShedsWith429AndRetryAfter pins the HTTP surface: a full
// queue answers 429 with both Retry-After headers, counts the shed, and
// admitted requests reach the handler with the slot released after.
func TestMiddlewareShedsWith429AndRetryAfter(t *testing.T) {
	reg := telemetry.NewRegistry()
	cfg := Config{InitialLimit: 1, MinLimit: 1, MaxQueue: 1, Target: time.Hour, Interval: time.Hour,
		RetryAfter: 20 * time.Millisecond, Seed: 7}
	s := NewServer(cfg, nil, MetricsFor(reg, "admission.test."))

	release := make(chan struct{})
	started := make(chan struct{}, 8)
	h := s.Middleware(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		started <- struct{}{}
		<-release
		rw.WriteHeader(http.StatusOK)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()
	defer close(release)

	// Occupy the slot and the single queue seat.
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/mo/0")
			if err == nil {
				if resp.StatusCode == http.StatusOK {
					okCount.Add(1)
				}
				resp.Body.Close()
			}
		}()
	}
	<-started // the first is in the handler
	waitFor(t, func() bool { return s.Endpoint("mo").QueueLen() == 1 })

	resp, err := http.Get(srv.URL + "/mo/0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}
	raMs := resp.Header.Get(RetryAfterMillisHeader)
	if raMs == "" {
		t.Errorf("429 missing %s", RetryAfterMillisHeader)
	}
	if got := reg.Counter("admission.test.shed_by.queue").Value(); got != 1 {
		t.Errorf("shed_by.queue = %d, want 1", got)
	}
	release <- struct{}{} // finish the in-handler request
	<-started             // the queued request reaches the handler
	release <- struct{}{} // finish it too
	wg.Wait()
	if okCount.Load() != 2 {
		t.Errorf("held requests completed = %d, want 2", okCount.Load())
	}
	if got := reg.Counter("admission.test.admitted").Value(); got != 2 {
		t.Errorf("admitted = %d, want 2", got)
	}
}

// TestMiddlewareShedsDoomedDeadline pins deadline propagation on the HTTP
// surface: a request whose X-Repl-Deadline already passed is shed without
// reaching the handler.
func TestMiddlewareShedsDoomedDeadline(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := NewServer(Config{}, nil, MetricsFor(reg, "admission.test."))
	var reached atomic.Int64
	h := s.Middleware(http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
		reached.Add(1)
	}))
	srv := httptest.NewServer(h)
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/page/0", nil)
	req.Header.Set(DeadlineHeader, FormatDeadline(time.Now().Add(-time.Second)))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("doomed request status = %d, want 429", resp.StatusCode)
	}
	if reached.Load() != 0 {
		t.Fatal("doomed request reached the handler")
	}
	if got := reg.Counter("admission.test.shed_by.deadline").Value(); got != 1 {
		t.Errorf("shed_by.deadline = %d, want 1", got)
	}

	// A healthy deadline passes through.
	req2, _ := http.NewRequest(http.MethodGet, srv.URL+"/page/0", nil)
	req2.Header.Set(DeadlineHeader, FormatDeadline(time.Now().Add(time.Minute)))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK || reached.Load() != 1 {
		t.Fatalf("live-deadline request: status=%d reached=%d, want 200/1", resp2.StatusCode, reached.Load())
	}
}

// TestRetryAfterJitterSeeded pins reproducibility: same seed, same jitter
// sequence; the hint stays in [d, 3d/2).
func TestRetryAfterJitterSeeded(t *testing.T) {
	mk := func(seed uint64) []time.Duration {
		s := NewServer(Config{RetryAfter: 100 * time.Millisecond, Seed: seed}, nil, Metrics{})
		out := make([]time.Duration, 8)
		for i := range out {
			out[i] = s.retryAfter()
		}
		return out
	}
	a, b := mk(42), mk(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed jitter diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 100*time.Millisecond || a[i] >= 150*time.Millisecond {
			t.Fatalf("jitter %v outside [100ms, 150ms)", a[i])
		}
	}
	c := mk(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical jitter")
	}
}

// waitFor polls cond up to 2s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
