// Package admission is the serving stack's overload protection. The
// paper's objective D (Eq. 4/5) assumes stable queues; as utilization
// approaches capacity the queueing term diverges and a real cluster does
// not degrade gracefully — it collapses, and naive client retries then
// hold it collapsed long after the triggering spike ends (a metastable
// failure). This package supplies both halves of the defense:
//
//   - Server side: a bounded, deadline-aware admission queue per endpoint
//     class, shedding by CoDel-style sojourn time (latency over a target,
//     not queue length), per-endpoint concurrency limits with an AIMD
//     auto-tuner, 429 responses with a seeded-jitter Retry-After hint, and
//     a brownout controller that degrades page fidelity under sustained
//     shed pressure before the server refuses outright.
//
//   - Client side: a token-bucket retry budget — earn a fraction of a
//     token per success, spend one per retry — capping cluster-wide retry
//     amplification near (1 + earn ratio)× offered load no matter how hard
//     the servers push back.
//
// Every control law here is clock-agnostic: state machines take explicit
// `now` values instead of reading the wall clock, so the identical code
// runs under real time in internal/webserve and under a virtual clock in
// the bit-reproducible experiments.Overload study.
package admission

import (
	"strconv"
	"sync"
	"time"
)

// HTTP header vocabulary shared between client and servers.
const (
	// DeadlineHeader carries the client's absolute end-to-end deadline as
	// Unix nanoseconds. Client and servers share a machine (loopback
	// cluster), so one clock domain suffices; a server uses it to shed
	// work that is already doomed to miss its deadline instead of serving
	// a response nobody will wait for.
	DeadlineHeader = "X-Repl-Deadline"
	// RetryAfterMillisHeader is the jittered retry hint at millisecond
	// precision. The standard Retry-After header is whole seconds — far
	// too coarse for loopback timescales — so servers send both and the
	// client prefers this one.
	RetryAfterMillisHeader = "X-Repl-Retry-After-Ms"
	// BrownoutHeader reports the fidelity tier a page was served at
	// (absent or 0 = full fidelity; see Brownout).
	BrownoutHeader = "X-Repl-Brownout"
)

// FormatDeadline renders an absolute deadline for DeadlineHeader.
func FormatDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixNano(), 10)
}

// ParseDeadline parses a DeadlineHeader value; ok is false for absent or
// malformed values.
func ParseDeadline(s string) (time.Time, bool) {
	if s == "" {
		return time.Time{}, false
	}
	ns, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Config tunes one server's admission control. The zero value of each
// field selects the default noted on it.
type Config struct {
	// Target is the CoDel sojourn target: queueing delay persistently
	// above it sheds load. Default 5ms — far above a healthy loopback
	// handler, far below any client deadline worth honoring.
	Target time.Duration
	// Interval is the CoDel control interval (how long sojourn must stay
	// above Target before shedding starts, and the base spacing of
	// subsequent sheds). Default 100ms.
	Interval time.Duration
	// InitialLimit is each endpoint's starting concurrency limit (default
	// 32); the AIMD tuner moves it within [MinLimit, MaxLimit] (defaults
	// 4 and 256) — halving on shed pressure, adding one per clean
	// interval.
	InitialLimit int
	MinLimit     int
	MaxLimit     int
	// MaxQueue bounds each endpoint's wait queue; arrivals beyond it are
	// shed instantly (the queue bound is the backstop — CoDel should act
	// first). Default 128.
	MaxQueue int
	// RetryAfter is the nominal retry hint sent with a 429; the actual
	// value is jittered in [d, 3d/2) on a seeded stream so a fleet of
	// budgeted clients does not return in lockstep. Default 50ms.
	RetryAfter time.Duration
	// Seed seeds the Retry-After jitter stream.
	Seed uint64
	// BrownoutUp / BrownoutDown are the shed-rate thresholds (fraction of
	// decisions in a BrownoutWindow that were sheds) for raising and
	// lowering the degradation tier. Defaults 0.10 and 0.01.
	BrownoutUp   float64
	BrownoutDown float64
	// BrownoutWindow is the shed-rate observation window (default 500ms).
	BrownoutWindow time.Duration
}

// normalize resolves zero fields to the documented defaults.
func (c Config) normalize() Config {
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.InitialLimit <= 0 {
		c.InitialLimit = 32
	}
	if c.MinLimit <= 0 {
		c.MinLimit = 4
	}
	if c.MaxLimit <= 0 {
		c.MaxLimit = 256
	}
	if c.InitialLimit < c.MinLimit {
		c.InitialLimit = c.MinLimit
	}
	if c.MaxLimit < c.InitialLimit {
		c.MaxLimit = c.InitialLimit
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 128
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 50 * time.Millisecond
	}
	if c.BrownoutUp <= 0 {
		c.BrownoutUp = 0.10
	}
	if c.BrownoutDown <= 0 {
		c.BrownoutDown = 0.01
	}
	if c.BrownoutWindow <= 0 {
		c.BrownoutWindow = 500 * time.Millisecond
	}
	return c
}

// CoDel is the Controlled-Delay shedding law on queue sojourn times,
// adapted from Nichols & Jacobson: shedding starts only after sojourn has
// stayed above Target for a full Interval (a standing queue, not a burst),
// and while it persists, sheds are spaced Interval/√count apart — gentle
// pressure that tightens the longer the overload lasts. All methods take
// explicit `now` values (any monotone origin); the caller serializes
// access.
type CoDel struct {
	Target   time.Duration
	Interval time.Duration

	firstAbove time.Duration // when sojourn first exceeded Target
	haveFirst  bool
	dropping   bool
	dropNext   time.Duration
	count      int
}

// NewCoDel builds the law with explicit parameters.
func NewCoDel(target, interval time.Duration) *CoDel {
	return &CoDel{Target: target, Interval: interval}
}

// Dropping reports whether the law is currently in its shedding state.
func (c *CoDel) Dropping() bool { return c.dropping }

// OnDequeue observes one request's queue sojourn at dequeue time and
// reports whether to shed it.
func (c *CoDel) OnDequeue(sojourn, now time.Duration) bool {
	if sojourn < c.Target {
		// Below target: the standing queue is gone; disarm.
		c.haveFirst = false
		c.dropping = false
		c.count = 0
		return false
	}
	if !c.haveFirst {
		c.haveFirst = true
		c.firstAbove = now + c.Interval
		return false
	}
	if !c.dropping {
		if now < c.firstAbove {
			return false
		}
		// Sojourn has been above target for a full interval: start
		// shedding.
		c.dropping = true
		c.count = 1
		c.dropNext = now + c.nextGap()
		return true
	}
	if now < c.dropNext {
		return false
	}
	c.count++
	c.dropNext = now + c.nextGap()
	return true
}

// nextGap is the Interval/√count control law: the longer the overload
// persists, the closer together the sheds. count is the sheds so far, so
// the upcoming (count+1-th) shed is Interval/√(count+1) away.
func (c *CoDel) nextGap() time.Duration {
	return time.Duration(float64(c.Interval) / sqrtf(float64(c.count+1)))
}

// sqrtf is Newton's method on float64 — enough precision for a shed
// spacing, and keeps the hot path free of math imports.
func sqrtf(x float64) float64 {
	if x <= 0 {
		return 1
	}
	g := x
	for i := 0; i < 20; i++ {
		g = (g + x/g) / 2
	}
	return g
}

// RetryBudget is the client-side token bucket that caps retry
// amplification: every success earns `ratio` tokens (capped at `max`),
// every retry spends one. With ratio r, total retries can never exceed
// r × successes plus the initial fill, so cluster-wide offered load stays
// within about (1+r)× the original request rate no matter how many
// requests fail — the property that breaks retry storms. The bucket
// starts full (a cold client may retry), and a nil *RetryBudget disables
// budgeting (Spend always allows).
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	ratio  float64
	max    float64
}

// NewRetryBudget builds a budget earning `ratio` tokens per success with
// bucket capacity `max`. Non-positive arguments select the defaults 0.1
// and 10.
func NewRetryBudget(ratio, max float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if max <= 0 {
		max = 10
	}
	return &RetryBudget{tokens: max, ratio: ratio, max: max}
}

// Earn credits one success.
func (b *RetryBudget) Earn() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.max {
		b.tokens = b.max
	}
	b.mu.Unlock()
}

// Spend consumes one retry token, reporting whether the retry may proceed.
// A nil budget always allows.
func (b *RetryBudget) Spend() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	// The epsilon forgives float accumulation: ten 0.1-earns sum to just
	// under 1.0, and that token was genuinely earned.
	if b.tokens < 1-1e-9 {
		return false
	}
	b.tokens--
	if b.tokens < 0 {
		b.tokens = 0
	}
	return true
}

// Tokens returns the current balance (diagnostics and tests).
func (b *RetryBudget) Tokens() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
