package trace

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/rng"
)

func TestIDGenDeterministicAndNonZero(t *testing.T) {
	g1 := NewIDGen(rng.New(7).Split(idStream))
	g2 := NewIDGen(rng.New(7).Split(idStream))
	for i := 0; i < 1000; i++ {
		a, b := g1.TraceID(), g2.TraceID()
		if a != b {
			t.Fatalf("draw %d: %x != %x — ID sequence not a pure function of seed", i, a, b)
		}
		if a == 0 {
			t.Fatalf("draw %d: zero ID", i)
		}
	}
	g3 := NewIDGen(rng.New(8).Split(idStream))
	if g3.TraceID() == NewIDGen(rng.New(7).Split(idStream)).TraceID() {
		t.Fatal("different seeds produced the same first ID")
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	tr, sp := TraceID(0xdeadbeef01020304), SpanID(0x0000000000000001)
	v := FormatHeader(tr, sp)
	if len(v) != 33 {
		t.Fatalf("header %q has length %d, want 33", v, len(v))
	}
	gotT, gotS, ok := ParseHeader(v)
	if !ok || gotT != tr || gotS != sp {
		t.Fatalf("roundtrip: got (%x,%x,%v), want (%x,%x,true)", gotT, gotS, ok, tr, sp)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 33), strings.Repeat("z", 16) + "-" + strings.Repeat("0", 16)} {
		if _, _, ok := ParseHeader(bad); ok {
			t.Errorf("ParseHeader(%q) accepted malformed input", bad)
		}
	}
}

func TestBufferBoundDropsNewest(t *testing.T) {
	b := NewBuffer(2)
	b.Add(Span{ID: 1}, Span{ID: 2}, Span{ID: 3})
	if got := b.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if got := b.Dropped(); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
	spans := b.Spans()
	if spans[0].ID != 1 || spans[1].ID != 2 {
		t.Fatalf("bound evicted the head: %+v", spans)
	}
}

func TestNilSafety(t *testing.T) {
	var b *Buffer
	b.Add(Span{})
	if b.Len() != 0 || b.Spans() != nil || b.Dropped() != 0 {
		t.Fatal("nil Buffer not inert")
	}
	var tr *Tracer
	a := tr.StartTrace(SpanPage)
	if a != nil {
		t.Fatal("nil Tracer started a non-nil span")
	}
	a.SetAttr(A("k", "v"))
	a.Event(SpanRetry)
	c := a.StartChild(SpanChain)
	if c != nil {
		t.Fatal("nil Active spawned a non-nil child")
	}
	if hv := a.HeaderValue(); hv != "" {
		t.Fatalf("nil Active header = %q, want empty", hv)
	}
	a.End()
	if NewTracer(nil, 1, KindClient) != nil {
		t.Fatal("NewTracer(nil buffer) should return nil")
	}
	var j *Journal
	j.Record("x")
	if j.Total() != 0 || j.Events() != nil {
		t.Fatal("nil Journal not inert")
	}
}

func TestTracerSpanTreeAndEndIdempotent(t *testing.T) {
	buf := NewBuffer(0)
	tr := NewTracer(buf, 11, KindClient)
	root := tr.StartTrace(SpanPage)
	root.SetAttr(I(AttrPage, 3))
	child := root.StartChild(SpanChain)
	child.SetAttr(A(AttrChain, "local"))
	root.Event(SpanRetry, A(AttrReason, "timeout"))
	child.End()
	child.End() // idempotent
	root.End()

	spans := buf.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3 (double End must not duplicate)", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	rootS, chainS, retryS := byName[SpanPage], byName[SpanChain], byName[SpanRetry]
	if rootS.Parent != 0 {
		t.Fatalf("root parent = %x, want 0", rootS.Parent)
	}
	if chainS.Parent != rootS.ID || chainS.Trace != rootS.Trace {
		t.Fatalf("chain not parented under root: %+v vs %+v", chainS, rootS)
	}
	if retryS.Parent != rootS.ID || retryS.Dur != 0 {
		t.Fatalf("event span wrong: %+v", retryS)
	}
	if retryS.Attr(AttrReason) != "timeout" {
		t.Fatalf("event attr lost: %+v", retryS)
	}
	if got, want := root.HeaderValue(), FormatHeader(rootS.Trace, rootS.ID); got != want {
		t.Fatalf("HeaderValue = %q, want %q", got, want)
	}
}

func TestJSONLRoundTripAndDeterminism(t *testing.T) {
	spans := []Span{
		{Trace: 1, ID: 2, Name: SpanPage, Kind: KindSim, Start: 0.5, Dur: 1.25, Attrs: []Attr{I(AttrPage, 7)}},
		{Trace: 1, ID: 3, Parent: 2, Name: SpanChain, Kind: KindSim, Start: 0.5, Dur: 1.0, Attrs: []Attr{A(AttrChain, "remote"), F(AttrXferS, 0.75)}},
	}
	var b1, b2 bytes.Buffer
	if err := WriteJSONL(&b1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&b2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("JSONL export not byte-deterministic")
	}
	back, err := ReadJSONL(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(spans) {
		t.Fatalf("roundtrip length %d, want %d", len(back), len(spans))
	}
	for i := range spans {
		if back[i].Trace != spans[i].Trace || back[i].ID != spans[i].ID ||
			back[i].Name != spans[i].Name || back[i].Dur != spans[i].Dur ||
			back[i].Attr(AttrChain) != spans[i].Attr(AttrChain) {
			t.Fatalf("span %d mismatch: %+v vs %+v", i, back[i], spans[i])
		}
	}
}

func TestChromeExportValidAndDeterministic(t *testing.T) {
	spans := []Span{
		{Trace: 9, ID: 1, Name: SpanPage, Kind: KindSim, Start: 0, Dur: 2, Attrs: []Attr{I(AttrPage, 1)}},
		{Trace: 9, ID: 2, Parent: 1, Name: SpanChain, Start: 0, Dur: 1.5, Attrs: []Attr{A(AttrChain, "local")}},
		{Trace: 10, ID: 3, Name: SpanPage, Start: 2, Dur: 1},
	}
	var b1, b2 bytes.Buffer
	if err := WriteChrome(&b1, spans); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b2, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Chrome export not byte-deterministic")
	}
	var file struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b1.Bytes(), &file); err != nil {
		t.Fatalf("Chrome export is not valid JSON: %v", err)
	}
	if len(file.TraceEvents) != 3 || file.DisplayTimeUnit != "ms" {
		t.Fatalf("unexpected container: %+v", file)
	}
	ev := file.TraceEvents[0]
	if ev.Ph != "X" || ev.Dur != 2e6 || ev.Args["trace"] != "0000000000000009" {
		t.Fatalf("unexpected event: %+v", ev)
	}
	if file.TraceEvents[0].Tid != 1 || file.TraceEvents[2].Tid != 2 {
		t.Fatalf("tids not assigned in first-seen trace order: %+v", file.TraceEvents)
	}
	if file.TraceEvents[1].Args["parent"] != "0000000000000001" {
		t.Fatalf("parent missing from args: %+v", file.TraceEvents[1])
	}
}

func TestJournalRingWrap(t *testing.T) {
	j := NewJournal(4)
	for i := int64(0); i < 10; i++ {
		j.Record("ev", I("i", i))
	}
	if j.Total() != 10 {
		t.Fatalf("Total = %d, want 10", j.Total())
	}
	if j.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", j.Dropped())
	}
	evs := j.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(6 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (oldest-to-newest rotation broken)", i, ev.Seq, wantSeq)
		}
	}
	if evs[0].Field("i") != "6" {
		t.Fatalf("field lost in rotation: %+v", evs[0])
	}
}

func TestJournalJSONLRoundTripAndCounts(t *testing.T) {
	j := NewJournal(16)
	j.Record("probe.transition", A("site", "s1"), A("to", "down"))
	j.Record("repair.planned", I("rehomed", 12))
	j.Record("probe.transition", A("site", "s1"), A("to", "up"))
	var buf bytes.Buffer
	if err := j.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 3 || back[1].Field("rehomed") != "12" {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	counts := CountEventTypes(back)
	if len(counts) != 2 || counts[0].Type != "probe.transition" || counts[0].Count != 2 {
		t.Fatalf("CountEventTypes = %+v", counts)
	}
}

func TestJournalHandler(t *testing.T) {
	j := NewJournal(8)
	j.Record("plan.applied", I("moved", 3))
	h := JournalHandler(j)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/journal", nil))
	evs, err := ReadEventsJSONL(rec.Body)
	if err != nil || len(evs) != 1 || evs[0].Type != "plan.applied" {
		t.Fatalf("JSONL body bad: %v %+v", err, evs)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/journal?format=text", nil))
	if !strings.Contains(rec.Body.String(), "plan.applied") || !strings.Contains(rec.Body.String(), "moved=3") {
		t.Fatalf("text body bad: %q", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	JournalHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/journal", nil))
	if rec.Code != 404 {
		t.Fatalf("nil journal served %d, want 404", rec.Code)
	}
}

// synthTrace builds one page-view trace for the analyzer tests.
func synthTrace(tid TraceID, page int, d, localD, remoteD float64, degraded bool, extra ...Span) []Span {
	attrs := []Attr{I(AttrPage, int64(page))}
	if degraded {
		attrs = append(attrs, A(AttrDegraded, "true"))
	}
	spans := []Span{{Trace: tid, ID: 1, Name: SpanPage, Dur: d, Attrs: attrs}}
	if localD > 0 {
		spans = append(spans, Span{Trace: tid, ID: 2, Parent: 1, Name: SpanChain, Dur: localD,
			Attrs: []Attr{A(AttrChain, "local"), F(AttrXferS, localD*0.8), F(AttrQueueS, localD*0.2)}})
	}
	if remoteD > 0 {
		spans = append(spans, Span{Trace: tid, ID: 3, Parent: 1, Name: SpanChain, Dur: remoteD,
			Attrs: []Attr{A(AttrChain, "remote"), F(AttrXferS, remoteD)}})
	}
	for i := range extra {
		extra[i].Trace = tid
		extra[i].Parent = 1
	}
	return append(spans, extra...)
}

func TestAnalyzeCriticalPath(t *testing.T) {
	var spans []Span
	// Page 1, view A: local chain wins (2.0 > 1.0).
	spans = append(spans, synthTrace(100, 1, 2.0, 2.0, 1.0, false)...)
	// Page 1, view B: remote chain wins, with a retry + backoff.
	spans = append(spans, synthTrace(101, 1, 3.0, 1.0, 3.0, false,
		Span{ID: 4, Name: SpanRetry, Attrs: []Attr{A(AttrReason, "timeout")}},
		Span{ID: 5, Name: SpanBackoff, Dur: 0.25})...)
	// Page 2: degraded view — remote wins regardless of chains.
	spans = append(spans, synthTrace(102, 2, 5.0, 0, 0, true,
		Span{ID: 6, Name: SpanFallback, Attrs: []Attr{A(AttrReason, "reset")}})...)
	// An orphaned server span: ignored by trace accounting.
	spans = append(spans, Span{Trace: 999, ID: 7, Name: SpanServe, Dur: 0.1})

	a := Analyze(spans)
	if a.Traces != 3 {
		t.Fatalf("Traces = %d, want 3", a.Traces)
	}
	if a.LocalWins != 1 || a.RemoteWins != 2 {
		t.Fatalf("wins = %d local / %d remote, want 1/2", a.LocalWins, a.RemoteWins)
	}
	if a.Retries != 1 || a.Fallbacks != 1 || a.DegradedViews != 1 {
		t.Fatalf("retries=%d fallbacks=%d degraded=%d, want 1/1/1", a.Retries, a.Fallbacks, a.DegradedViews)
	}
	if a.RetryBackoff != 0.25 {
		t.Fatalf("RetryBackoff = %g, want 0.25", a.RetryBackoff)
	}

	p1 := a.PageStat(1)
	if p1 == nil || p1.Views != 2 {
		t.Fatalf("page 1 stats bad: %+v", p1)
	}
	if p1.MeanD != 2.5 {
		t.Fatalf("page 1 MeanD = %g, want 2.5", p1.MeanD)
	}
	if p1.LocalWins != 1 || p1.RemoteWins != 1 {
		t.Fatalf("page 1 wins = %d/%d, want 1/1", p1.LocalWins, p1.RemoteWins)
	}
	// View A: xfer 1.6+1.0, queue 0.4. View B: xfer 0.8+3.0, queue 0.2.
	if got, want := p1.Transfer, 1.6+1.0+0.8+3.0; !close(got, want) {
		t.Fatalf("page 1 Transfer = %g, want %g", got, want)
	}
	if got, want := p1.Queue, 0.6; !close(got, want) {
		t.Fatalf("page 1 Queue = %g, want %g", got, want)
	}
	if a.PageStat(3) != nil {
		t.Fatal("PageStat(3) should be nil")
	}

	slow := a.TopSlowest(2)
	if len(slow) != 2 || slow[0].Page != 2 || slow[0].D != 5.0 || slow[1].D != 3.0 {
		t.Fatalf("TopSlowest = %+v", slow)
	}
	if slow[0].Winner != "remote" {
		t.Fatalf("degraded view winner = %q, want remote", slow[0].Winner)
	}

	names := a.NameCounts()
	if len(names) == 0 || names[0].Name != SpanPage && names[0].Name != SpanChain {
		t.Fatalf("NameCounts = %+v", names)
	}
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}
