// Package trace is the repo's request-scoped distributed-tracing layer: a
// span model shared by the live HTTP system (internal/webserve) and the
// fluid simulator (internal/httpsim), deterministic trace/span identifiers
// drawn from dedicated seeded rng streams (the same seed yields the
// identical span forest), an `X-Repl-Trace` propagation header, Chrome
// trace-event and JSONL exporters (export.go), a bounded ring-buffer event
// journal for the control plane (journal.go), and an Eq. 5 critical-path
// analyzer over recorded span forests (analyze.go).
//
// The design follows the repo's telemetry idiom: every entry point is
// nil-tolerant, so a disabled tracer costs one nil check and zero
// allocations on the instrumented path.
package trace

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/rng"
)

// TraceID identifies one request tree (one page view, end to end).
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// Attr is one string-valued span or journal attribute. Values are
// pre-formatted strings so encoding is trivially deterministic.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{Key: key, Value: value} }

// I builds an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Value: strconv.FormatInt(v, 10)} }

// F builds a float attribute (shortest round-trippable form, so encodings
// are byte-stable for equal values).
func F(key string, v float64) Attr {
	return Attr{Key: key, Value: strconv.FormatFloat(v, 'g', -1, 64)}
}

// Span is one completed timed operation. Times are float64 seconds since
// the owning buffer's epoch — the simulator's virtual clock and the live
// system's wall clock fit the same schema, which is what makes simulated
// and real executions directly comparable.
type Span struct {
	Trace  TraceID `json:"trace"`
	ID     SpanID  `json:"id"`
	Parent SpanID  `json:"parent,omitempty"` // 0 = root
	Name   string  `json:"name"`
	Kind   string  `json:"kind,omitempty"` // client | server | sim
	Start  float64 `json:"start"`          // seconds since epoch
	Dur    float64 `json:"dur"`            // seconds
	Attrs  []Attr  `json:"attrs,omitempty"`
}

// Attr returns the value of the named attribute ("" when absent).
func (s *Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// Shared span names. The webserve client and the httpsim fluid model emit
// the same vocabulary so one analyzer reads both.
const (
	SpanPage     = "page"     // root: one page view; attrs page, site
	SpanChain    = "chain"    // one Eq. 5 parallel chain; attr chain=local|remote
	SpanHTML     = "html"     // the page document fetch
	SpanMO       = "mo"       // one multimedia-object fetch
	SpanOpt      = "opt"      // one optional-object follow-up
	SpanBackoff  = "backoff"  // one retry backoff sleep
	SpanRetry    = "retry"    // zero-duration marker: one extra attempt
	SpanFallback = "fallback" // a repository-fallback fetch
	SpanBreaker  = "breaker"  // zero-duration marker: a breaker decision
	SpanServe    = "serve"    // server-side handling of one request
	SpanFailover = "failover" // simulated degraded-view failover cost
	SpanHedge    = "hedge"    // zero-duration marker: a hedge leg launched
)

// Span kinds.
const (
	KindClient = "client"
	KindServer = "server"
	KindSim    = "sim"
)

// Common attribute keys.
const (
	AttrPage     = "page"
	AttrSite     = "site"
	AttrChain    = "chain" // "local" | "remote"
	AttrObject   = "object"
	AttrBytes    = "bytes"
	AttrReason   = "reason"
	AttrStatus   = "status"
	AttrDegraded = "degraded"
	AttrQueueS   = "queue_s"
	AttrXferS    = "transfer_s"
	AttrOvhdS    = "overhead_s"
)

// Buffer collects completed spans. Append order is the canonical export
// order, so deterministic producers (httpsim) must append deterministically;
// concurrent producers (the live client and servers) get safe appends and
// accept scheduler-dependent order. A nil Buffer drops everything.
type Buffer struct {
	mu      sync.Mutex
	spans   []Span
	max     int
	dropped int64
}

// NewBuffer returns a buffer keeping at most max spans (0 = unbounded).
// Once full, further spans are counted as dropped rather than evicting old
// ones: for post-mortem analysis the head of a run matters more than an
// arbitrary suffix.
func NewBuffer(max int) *Buffer {
	return &Buffer{max: max}
}

// Add appends completed spans. No-op on nil.
func (b *Buffer) Add(spans ...Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, s := range spans {
		if b.max > 0 && len(b.spans) >= b.max {
			b.dropped++
			continue
		}
		b.spans = append(b.spans, s)
	}
}

// Spans snapshots the buffered spans in append order (nil-safe).
func (b *Buffer) Spans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Span(nil), b.spans...)
}

// Len returns the number of buffered spans.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Dropped returns how many spans were discarded by the bound.
func (b *Buffer) Dropped() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// IDGen allocates non-zero trace and span IDs from a seeded rng stream:
// the ID sequence is a pure function of the stream's seed, so equal seeds
// yield identical span forests. Safe for concurrent use.
type IDGen struct {
	mu sync.Mutex
	s  *rng.Stream
}

// NewIDGen wraps a dedicated rng stream. The stream must not be shared
// with any other consumer — ID draws would shift its sequence.
func NewIDGen(s *rng.Stream) *IDGen {
	return &IDGen{s: s}
}

// next returns the next non-zero draw.
func (g *IDGen) next() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if v := g.s.Uint64(); v != 0 {
			return v
		}
	}
}

// TraceID allocates a trace identifier.
func (g *IDGen) TraceID() TraceID { return TraceID(g.next()) }

// SpanID allocates a span identifier.
func (g *IDGen) SpanID() SpanID { return SpanID(g.next()) }

// Header is the propagation header carrying "<trace>-<span>" in fixed-width
// hex: the client stamps it on every request, servers parent their serve
// spans under it.
const Header = "X-Repl-Trace"

// FormatHeader renders the header value for a (trace, parent span) pair.
func FormatHeader(t TraceID, s SpanID) string {
	return fmt.Sprintf("%016x-%016x", uint64(t), uint64(s))
}

// ParseHeader parses a header value; ok is false for anything malformed.
func ParseHeader(v string) (TraceID, SpanID, bool) {
	if len(v) != 33 || v[16] != '-' {
		return 0, 0, false
	}
	t, err := strconv.ParseUint(v[:16], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	s, err := strconv.ParseUint(v[17:], 16, 64)
	if err != nil {
		return 0, 0, false
	}
	return TraceID(t), SpanID(s), true
}

// Tracer starts live (wall-clock) spans against a shared buffer and epoch.
// One Tracer per process — the webserve cluster, its clients and its
// servers share one, so every span lands on a single timeline. The nil
// Tracer starts nil Actives; every Active method no-ops on nil, so a
// disabled trace propagates for free through the whole call graph.
type Tracer struct {
	buf   *Buffer
	ids   *IDGen
	epoch time.Time
	kind  string
}

// idStream is the dedicated rng stream label for live span IDs, disjoint
// from every other consumer of the seed (webserve's client uses 401/402).
const idStream uint64 = 421

// NewTracer builds a tracer emitting kind-tagged spans into buf, with IDs
// drawn from the seed's dedicated stream. Returns nil on a nil buffer, so
// callers wire `opts.Trace` through unconditionally.
func NewTracer(buf *Buffer, seed uint64, kind string) *Tracer {
	if buf == nil {
		return nil
	}
	return &Tracer{
		buf:   buf,
		ids:   NewIDGen(rng.New(seed).Split(idStream)),
		epoch: time.Now(),
		kind:  kind,
	}
}

// WithKind returns a tracer view emitting spans of a different kind while
// sharing this tracer's buffer, ID stream and epoch — the cluster's client
// and servers land on one timeline with collision-free span IDs.
func (t *Tracer) WithKind(kind string) *Tracer {
	if t == nil {
		return nil
	}
	return &Tracer{buf: t.buf, ids: t.ids, epoch: t.epoch, kind: kind}
}

// Now returns seconds since the tracer's epoch (0 on nil).
func (t *Tracer) Now() float64 {
	if t == nil {
		return 0
	}
	return time.Since(t.epoch).Seconds()
}

// Active is a started, not-yet-ended span. End completes it into the
// buffer; every started Active must be ended on all paths (the repllint
// span-balance rule enforces a matching End textually).
type Active struct {
	tr    *Tracer
	start time.Time

	mu    sync.Mutex
	span  Span
	ended bool
}

// start begins a span with the given identity.
func (t *Tracer) start(name string, trace TraceID, parent SpanID) *Active {
	if t == nil {
		return nil
	}
	now := time.Now()
	return &Active{
		tr:    t,
		start: now,
		span: Span{
			Trace:  trace,
			ID:     t.ids.SpanID(),
			Parent: parent,
			Name:   name,
			Kind:   t.kind,
			Start:  now.Sub(t.epoch).Seconds(),
		},
	}
}

// StartTrace starts a new root span under a fresh trace ID.
func (t *Tracer) StartTrace(name string) *Active {
	if t == nil {
		return nil
	}
	return t.start(name, t.ids.TraceID(), 0)
}

// StartRemote starts a span parented under a propagated (trace, span)
// context — the server half of a client request.
func (t *Tracer) StartRemote(name string, trace TraceID, parent SpanID) *Active {
	if t == nil {
		return nil
	}
	return t.start(name, trace, parent)
}

// StartChild starts a child span under a (nil on a nil receiver).
func (a *Active) StartChild(name string) *Active {
	if a == nil {
		return nil
	}
	return a.tr.start(name, a.span.Trace, a.span.ID)
}

// SetAttr attaches an attribute. No-op on nil or after End.
func (a *Active) SetAttr(attrs ...Attr) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.ended {
		a.span.Attrs = append(a.span.Attrs, attrs...)
	}
}

// Event records a zero-duration child span (a point annotation: one retry,
// one breaker decision). No-op on nil.
func (a *Active) Event(name string, attrs ...Attr) {
	if a == nil {
		return
	}
	ev := a.tr.start(name, a.span.Trace, a.span.ID)
	ev.SetAttr(attrs...)
	ev.endWithDur(0)
}

// Context returns the span's (trace, span) identity for propagation.
// Zero values on nil.
func (a *Active) Context() (TraceID, SpanID) {
	if a == nil {
		return 0, 0
	}
	return a.span.Trace, a.span.ID
}

// HeaderValue renders the propagation header for requests issued under
// this span ("" on nil — callers skip the header entirely).
func (a *Active) HeaderValue() string {
	if a == nil {
		return ""
	}
	return FormatHeader(a.span.Trace, a.span.ID)
}

// End completes the span into the tracer's buffer. Idempotent; no-op on
// nil.
func (a *Active) End() {
	if a == nil {
		return
	}
	a.endWithDur(time.Since(a.start).Seconds())
}

// endWithDur completes with an explicit duration.
func (a *Active) endWithDur(dur float64) {
	a.mu.Lock()
	if a.ended {
		a.mu.Unlock()
		return
	}
	a.ended = true
	s := a.span
	s.Dur = dur
	a.mu.Unlock()
	a.tr.buf.Add(s)
}
