package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"
)

// Event is one control-plane journal entry: a monotone sequence number,
// seconds since the journal was armed, a dotted event type, and structured
// fields.
type Event struct {
	Seq    uint64  `json:"seq"`
	At     float64 `json:"at"` // seconds since the journal's epoch
	Type   string  `json:"type"`
	Fields []Attr  `json:"fields,omitempty"`
}

// Field returns the value of the named field ("" when absent).
func (e *Event) Field(key string) string {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return ""
}

// Journal is the control plane's flight recorder: a bounded ring buffer of
// structured events (probe transitions, repair plans, ApplyPlan
// reconciles, breaker decisions, injected faults). Appends are O(1) and
// never block the control loop; once the ring is full the oldest events
// are overwritten — a flight recorder keeps the most recent history. The
// nil Journal drops everything, so recording sites need no disabled path.
type Journal struct {
	mu    sync.Mutex
	epoch time.Time
	ring  []Event
	next  uint64 // total events ever appended (== next Seq)
}

// DefaultJournalCap is the ring size used when NewJournal is given a
// non-positive capacity: enough for hours of control-plane churn, small
// enough to dump wholesale into a log on failure.
const DefaultJournalCap = 1024

// NewJournal returns a journal holding the last capacity events
// (DefaultJournalCap when capacity <= 0).
func NewJournal(capacity int) *Journal {
	if capacity <= 0 {
		capacity = DefaultJournalCap
	}
	return &Journal{epoch: time.Now(), ring: make([]Event, 0, capacity)}
}

// Record appends one event. No-op on nil.
//
//repllint:pure — observability only: the wall-clock timestamp feeds the flight recorder, never model state
func (j *Journal) Record(typ string, fields ...Attr) {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ev := Event{
		Seq:    j.next,
		At:     time.Since(j.epoch).Seconds(),
		Type:   typ,
		Fields: fields,
	}
	if len(j.ring) < cap(j.ring) {
		j.ring = append(j.ring, ev)
	} else {
		j.ring[int(j.next)%cap(j.ring)] = ev
	}
	j.next++
}

// Events snapshots the retained events, oldest to newest (nil-safe).
func (j *Journal) Events() []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.ring) < cap(j.ring) || j.next == uint64(len(j.ring)) {
		return append([]Event(nil), j.ring...)
	}
	// Full ring: the oldest entry sits right where the next write lands.
	out := make([]Event, 0, len(j.ring))
	head := int(j.next) % cap(j.ring)
	out = append(out, j.ring[head:]...)
	out = append(out, j.ring[:head]...)
	return out
}

// Total returns how many events were ever recorded (0 on nil).
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Dropped returns how many events the ring has overwritten.
func (j *Journal) Dropped() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next <= uint64(cap(j.ring)) {
		return 0
	}
	return j.next - uint64(cap(j.ring))
}

// WriteJSONL dumps the retained events as JSONL, oldest first.
func (j *Journal) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range j.Events() {
		if err := enc.Encode(&ev); err != nil {
			return fmt.Errorf("trace: encode journal event: %w", err)
		}
	}
	return bw.Flush()
}

// WriteText dumps the retained events as readable lines:
//
//	#12  t=1.204s  repair.planned  down=1 rehomed=37
func (j *Journal) WriteText(w io.Writer) error {
	for _, ev := range j.Events() {
		line := fmt.Sprintf("#%-5d t=%.3fs  %-20s", ev.Seq, ev.At, ev.Type)
		for _, f := range ev.Fields {
			line += fmt.Sprintf(" %s=%s", f.Key, f.Value)
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

// ReadEventsJSONL reads a JSONL event stream until EOF.
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var out []Event
	for {
		var ev Event
		if err := dec.Decode(&ev); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decode journal event: %w", err)
		}
		out = append(out, ev)
	}
}

// TypeCount is one event type's tally, as returned by CountEventTypes.
type TypeCount struct {
	Type  string
	Count int
}

// CountEventTypes tallies events by type, sorted by descending count then
// type name — the journal summary replreport and repltrace print.
func CountEventTypes(events []Event) []TypeCount {
	m := make(map[string]int)
	for i := range events {
		m[events[i].Type]++
	}
	out := make([]TypeCount, 0, len(m))
	for t, n := range m {
		out = append(out, TypeCount{Type: t, Count: n})
	}
	sort.Slice(out, func(i, k int) bool {
		if out[i].Count != out[k].Count {
			return out[i].Count > out[k].Count
		}
		return out[i].Type < out[k].Type
	})
	return out
}

// JournalHandler serves the journal at an HTTP endpoint (/debug/journal):
// JSONL by default, readable text with ?format=text. A nil journal serves
// 404 — the endpoint is only mounted when the flight recorder is armed,
// but a handler built before arming must stay safe.
func JournalHandler(j *Journal) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if j == nil {
			http.NotFound(w, req)
			return
		}
		var err error
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			err = j.WriteText(w)
		} else {
			w.Header().Set("Content-Type", "application/jsonl; charset=utf-8")
			err = j.WriteJSONL(w)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
