package trace

import (
	"sort"
	"strconv"
)

// PageStats aggregates every recorded view of one page: how often each
// Eq. 5 chain dominated the max, and where the time went.
type PageStats struct {
	Page  int
	Views int
	// TotalD / MeanD are the summed and mean root-span durations — the
	// observed Eq. 5 page time.
	TotalD, MeanD float64
	// LocalWins / RemoteWins count views whose critical path was the local
	// (site) or remote (repository) chain.
	LocalWins, RemoteWins int
	// Transfer, Queue and Overhead split chain time by cause where the
	// producer recorded the split (httpsim does; the live client's chain
	// durations count wholly as Transfer).
	Transfer, Queue, Overhead float64
	// RetryBackoff is the total backoff-sleep time, Retries/Fallbacks the
	// event counts, Degraded the views served off the repository master
	// copy.
	RetryBackoff       float64
	Retries, Fallbacks int
	Degraded           int
}

// TraceSummary is one page view, ranked by observed time.
type TraceSummary struct {
	Trace  TraceID
	Page   int
	D      float64
	Winner string // "local" | "remote"
}

// NameCount is one span name's tally.
type NameCount struct {
	Name  string
	Count int
}

// Analysis is the critical-path breakdown of a recorded span forest.
type Analysis struct {
	Spans  int
	Traces int // page-rooted traces

	// Pages is the per-page aggregation, sorted by page ID.
	Pages []PageStats
	// LocalWins / RemoteWins total the Eq. 5 dominant-chain split.
	LocalWins, RemoteWins int
	// Time split totals (seconds) across every trace.
	Transfer, Queue, Overhead, RetryBackoff float64
	Retries, Fallbacks, BreakerEvents       int
	DegradedViews                           int

	// views holds every page view, for TopSlowest.
	views []TraceSummary
	// names tallies span names.
	names map[string]int
}

// Analyze groups spans by trace and reduces each page-rooted trace to its
// Eq. 5 critical path: which chain won the max, and how the time divides
// into transfer, queue, protocol overhead and retry/backoff. Spans from
// the live client and the simulator are handled identically — they share
// one vocabulary.
func Analyze(spans []Span) *Analysis {
	a := &Analysis{Spans: len(spans), names: make(map[string]int)}
	byTrace := make(map[TraceID][]*Span)
	order := make([]TraceID, 0, 64) // first-seen order keeps output deterministic
	for i := range spans {
		s := &spans[i]
		a.names[s.Name]++
		if _, ok := byTrace[s.Trace]; !ok {
			order = append(order, s.Trace)
		}
		byTrace[s.Trace] = append(byTrace[s.Trace], s)
	}

	pages := make(map[int]*PageStats)
	for _, tid := range order {
		group := byTrace[tid]
		var root *Span
		for _, s := range group {
			if s.Parent == 0 && s.Name == SpanPage {
				root = s
				break
			}
		}
		if root == nil {
			continue // not a page trace (orphaned server spans, etc.)
		}
		a.Traces++
		page, _ := strconv.Atoi(root.Attr(AttrPage))
		ps := pages[page]
		if ps == nil {
			ps = &PageStats{Page: page}
			pages[page] = ps
		}
		ps.Views++
		ps.TotalD += root.Dur

		var localDur, remoteDur float64
		var sawLocal, sawRemote bool
		degraded := root.Attr(AttrDegraded) == "true"
		for _, s := range group {
			switch s.Name {
			case SpanChain:
				xfer, queue, ovhd := chainSplit(s)
				ps.Transfer += xfer
				ps.Queue += queue
				ps.Overhead += ovhd
				a.Transfer += xfer
				a.Queue += queue
				a.Overhead += ovhd
				switch s.Attr(AttrChain) {
				case "local":
					sawLocal = true
					if s.Dur > localDur {
						localDur = s.Dur
					}
				case "remote":
					sawRemote = true
					if s.Dur > remoteDur {
						remoteDur = s.Dur
					}
				}
			case SpanBackoff:
				ps.RetryBackoff += s.Dur
				a.RetryBackoff += s.Dur
			case SpanRetry:
				ps.Retries++
				a.Retries++
			case SpanFallback:
				ps.Fallbacks++
				a.Fallbacks++
			case SpanBreaker:
				a.BreakerEvents++
			case SpanFailover:
				ps.RetryBackoff += s.Dur
				a.RetryBackoff += s.Dur
			}
		}
		winner := "local"
		switch {
		case degraded:
			winner = "remote"
		case sawRemote && (!sawLocal || remoteDur >= localDur):
			winner = "remote"
		}
		if winner == "remote" {
			ps.RemoteWins++
			a.RemoteWins++
		} else {
			ps.LocalWins++
			a.LocalWins++
		}
		if degraded {
			ps.Degraded++
			a.DegradedViews++
		}
		a.views = append(a.views, TraceSummary{Trace: tid, Page: page, D: root.Dur, Winner: winner})
	}

	a.Pages = make([]PageStats, 0, len(pages))
	for _, ps := range pages {
		if ps.Views > 0 {
			ps.MeanD = ps.TotalD / float64(ps.Views)
		}
		a.Pages = append(a.Pages, *ps)
	}
	sort.Slice(a.Pages, func(i, j int) bool { return a.Pages[i].Page < a.Pages[j].Page })
	return a
}

// chainSplit extracts a chain span's recorded time split. Producers that
// annotate transfer_s/queue_s/overhead_s (httpsim) are read exactly; bare
// chain spans (the live client) count wholly as transfer.
func chainSplit(s *Span) (transfer, queue, overhead float64) {
	any := false
	if v := s.Attr(AttrXferS); v != "" {
		transfer, _ = strconv.ParseFloat(v, 64)
		any = true
	}
	if v := s.Attr(AttrQueueS); v != "" {
		queue, _ = strconv.ParseFloat(v, 64)
		any = true
	}
	if v := s.Attr(AttrOvhdS); v != "" {
		overhead, _ = strconv.ParseFloat(v, 64)
		any = true
	}
	if !any {
		transfer = s.Dur
	}
	return transfer, queue, overhead
}

// TopSlowest returns the n slowest page views, descending by observed D
// (ties broken by trace ID for determinism).
func (a *Analysis) TopSlowest(n int) []TraceSummary {
	out := append([]TraceSummary(nil), a.views...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].D > out[j].D {
			return true
		}
		if out[i].D < out[j].D {
			return false
		}
		return out[i].Trace < out[j].Trace
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// NameCounts returns span-name tallies sorted by descending count then
// name.
func (a *Analysis) NameCounts() []NameCount {
	out := make([]NameCount, 0, len(a.names))
	for name, n := range a.names {
		out = append(out, NameCount{Name: name, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// PageStat returns the stats of one page (nil when the page never appeared).
func (a *Analysis) PageStat(page int) *PageStats {
	idx := sort.Search(len(a.Pages), func(i int) bool { return a.Pages[i].Page >= page })
	if idx < len(a.Pages) && a.Pages[idx].Page == page {
		return &a.Pages[idx]
	}
	return nil
}
